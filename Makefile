GO ?= go

.PHONY: all build test check bench clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the CI gate: formatting, clean build, vet, and the full test
# suite under the race detector.
check:
	@unformatted=$$(gofmt -l .); if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; fi
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test -race ./...

# bench runs a short microbenchmark sweep (for quick before/after deltas)
# and regenerates the experiment tables into BENCH_PR.json — the committed
# trajectory baseline CI diffs new runs against (see .github/workflows/ci.yml).
bench:
	$(GO) test -run '^$$' -bench . -benchtime=100x -benchmem .
	$(GO) run ./cmd/apiary-bench -json BENCH_PR.json

clean:
	rm -f BENCH_NEW.json
	$(GO) clean ./...
