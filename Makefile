GO ?= go

# Coverage floor for `make cover` (total statement coverage of
# internal/... across the full suite). Measured 90.9% when the gate was
# introduced; the floor leaves ~3 points of headroom for legitimate churn.
# Raise it when coverage durably improves — never lower it to make a PR
# pass.
COVER_FLOOR ?= 88.0

.PHONY: all build test check cover chaos migrate bench scenario scenario-golden clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the CI gate: formatting, clean build, vet, and the full test
# suite under the race detector.
check:
	@unformatted=$$(gofmt -l .); if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; fi
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test -race ./...

# cover enforces the statement-coverage floor above.
cover:
	$(GO) test -count=1 -coverprofile=cover.out -coverpkg=./internal/... ./...
	@total=$$($(GO) tool cover -func=cover.out | awk '/^total:/ {sub("%","",$$3); print $$3}'); \
	echo "total coverage: $$total% (floor: $(COVER_FLOOR)%)"; \
	awk -v t="$$total" -v f="$(COVER_FLOOR)" 'BEGIN { exit (t+0 < f+0) }' || \
		{ echo "coverage $$total% fell below the $(COVER_FLOOR)% floor"; exit 1; }

# chaos runs the fault-injection suite the way CI's chaos job does: the
# fault, failover and fleet differential + soak tests under the race
# detector, the breaker/admission unit tests, plus a bounded fuzz of the
# plan decoder.
chaos:
	$(GO) test -race -count=1 -run 'TestFault|TestParsePlan|TestValidate|TestPlanRoundTrip' ./internal/fault/
	$(GO) test -race -count=1 -run 'TestFailover|TestRegisterReplicaSet|TestContainedFault|TestUnloadDropsGroups' ./internal/core/
	$(GO) test -race -count=1 -run 'TestBreaker|TestShell|TestRequester|TestLoadBalancer' ./internal/accel/ ./internal/apps/
	$(GO) test -race -count=1 ./internal/cluster/
	$(GO) test -race -run TestFaultSoak -timeout 10m ./internal/fault/
	$(GO) test -race -run TestFailoverSoak -timeout 10m ./internal/core/
	$(GO) test -fuzz=FuzzFaultPlanParse -fuzztime=30s ./internal/fault/
	$(GO) test -fuzz=FuzzSnapshotRestore -fuzztime=30s ./internal/core/

# migrate runs the live-migration gates the way CI's chaos job does: the
# kernel checkpoint/restore and chaos-migrate unit tests, the on-board and
# cross-board migration differentials (client-visible outcomes identical to
# an unmigrated control outside the bounded window, bit-exact across shard
# and worker counts), the mid-transfer abort, the orchestrator directive
# tests, the checkpointable-app contract tests, and a bounded fuzz of the
# snapshot decoder.
migrate:
	$(GO) test -race -count=1 -run 'TestSnapshot|TestCheckpoint|TestMigrate|TestRestoreRejects|TestChaosMigrateFault' ./internal/core/
	$(GO) test -race -count=1 -run 'TestMigrate|TestDrainBoard|TestScheduledDirectives' ./internal/cluster/
	$(GO) test -race -count=1 -run 'TestMigrate' -timeout 10m ./internal/load/
	$(GO) test -race -count=1 -run 'TestRequesterQuiescing|TestKVStoreSaveRestore|TestStageSaveRestore' ./internal/apps/
	$(GO) test -race -count=1 -run 'TestParsePlanMigrate|TestInjector' ./internal/fault/
	$(GO) test -fuzz=FuzzSnapshotRestore -fuzztime=30s ./internal/core/

# bench runs a short microbenchmark sweep (for quick before/after deltas)
# and regenerates the experiment tables into BENCH_PR.json — the committed
# trajectory baseline CI diffs new runs against (see .github/workflows/ci.yml).
bench:
	$(GO) test -run '^$$' -bench . -benchtime=100x -benchmem .
	$(GO) run ./cmd/apiary-bench -json BENCH_PR.json

# scenario runs the open-loop load-harness gates the way CI's scenario job
# does: the committed smoke scenario vs its golden fingerprint, the
# serial-vs-sharded-vs-fleet differential, record/replay equality, and a
# bounded fuzz of the scenario decoder.
scenario:
	$(GO) test -race -count=1 -run 'TestScenarioGolden|TestScenarioDifferential|TestReplayFingerprint' ./internal/load/
	$(GO) test -fuzz=FuzzScenarioParse -fuzztime=30s ./internal/load/

# scenario-golden regenerates the committed smoke-scenario fingerprint.
# Commit the refreshed internal/load/testdata/smoke.golden and include
# `scenario-baseline-refresh` in the commit message so CI skips the stale
# diff for that push (see .github/workflows/ci.yml).
scenario-golden:
	UPDATE_SCENARIO_GOLDEN=1 $(GO) test -count=1 -run TestScenarioGolden ./internal/load/

clean:
	rm -f BENCH_NEW.json BENCH_PAR.json cover.out
	$(GO) clean ./...
