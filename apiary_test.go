package apiary_test

import (
	"testing"

	"apiary"
)

// TestPublicAPIQuickstart runs the package-doc example verbatim through the
// public surface only.
func TestPublicAPIQuickstart(t *testing.T) {
	sys, err := apiary.NewSystem(apiary.SystemConfig{})
	if err != nil {
		t.Fatal(err)
	}
	sum := apiary.NewChecksum()
	client := apiary.NewRequester(apiary.FirstUserService, 100, 50,
		func(i int) []byte { return []byte("hello") }, nil)
	_, err = sys.Kernel.LoadApp(apiary.AppSpec{
		Name: "quick",
		Accels: []apiary.AppAccel{
			{Name: "sum", New: func() apiary.Accelerator { return sum },
				Service: apiary.FirstUserService},
			{Name: "client", New: func() apiary.Accelerator { return client },
				Connect: []apiary.ServiceID{apiary.FirstUserService}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sys.RunUntil(client.Done, 5_000_000) {
		t.Fatalf("quickstart incomplete: %d/%d", client.Responses(), 100)
	}
	if client.Errors() != 0 {
		t.Fatalf("errors: %d", client.Errors())
	}
}

func TestPublicAPINetworkPath(t *testing.T) {
	sys, err := apiary.NewSystem(apiary.SystemConfig{WithNet: true, NodeID: 1})
	if err != nil {
		t.Fatal(err)
	}
	bridge := apiary.NewNetBridge(8080)
	bridge.Process = func(in []byte) ([]byte, apiary.ErrCode) {
		return append([]byte("echo:"), in...), apiary.EOK
	}
	if _, err := sys.Kernel.LoadApp(apiary.AppSpec{
		Name: "echo",
		Accels: []apiary.AppAccel{
			{Name: "b", New: func() apiary.Accelerator { return bridge }, WantNet: true},
		},
	}); err != nil {
		t.Fatal(err)
	}
	client := apiary.NewSoftClient(sys, 50, apiary.LinkConfig{Gbps: 100})
	var got []byte
	client.OnDatagram(func(_ apiary.NetNodeID, _ uint16, data []byte, _ apiary.TraceCtx) { got = data })
	if err := client.Send(1, 8080, []byte("net")); err != nil {
		t.Fatal(err)
	}
	if !sys.RunUntil(func() bool { return got != nil }, 5_000_000) {
		t.Fatal("no network echo")
	}
	if string(got) != "echo:net" {
		t.Fatalf("echo = %q", got)
	}
}
