// Benchmarks: one testing.B per experiment in EXPERIMENTS.md (E1-E13), each
// regenerating its table and reporting headline metrics, plus
// microbenchmarks of the hot substrate paths (NoC, monitor, allocators,
// codecs, transport).
//
//	go test -bench=. -benchmem
//	go test -bench=BenchmarkE4 -benchtime=1x   # one full E4 run
package apiary_test

import (
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"apiary"
	"apiary/internal/accel"
	"apiary/internal/apps"
	"apiary/internal/bench"
	"apiary/internal/cluster"
	"apiary/internal/core"
	"apiary/internal/memseg"
	"apiary/internal/msg"
	"apiary/internal/netsim"
	"apiary/internal/noc"
	"apiary/internal/obs"
	"apiary/internal/sim"
)

// runExperiment executes an experiment b.N times and lets report extract
// custom metrics from the last result.
func runExperiment(b *testing.B, id string, report func(r bench.Result, b *testing.B)) {
	b.Helper()
	e, ok := bench.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	var last bench.Result
	for i := 0; i < b.N; i++ {
		last = e.Run()
	}
	if report != nil {
		report(last, b)
	}
}

// metric parses a float out of a result cell (strips trailing unit junk).
func metric(r bench.Result, row int, col string) float64 {
	s := r.Cell(row, col)
	s = strings.TrimSuffix(strings.Split(s, "/")[0], "x")
	v, _ := strconv.ParseFloat(s, 64)
	return v
}

func BenchmarkE1Table1(b *testing.B) {
	runExperiment(b, "e1", func(r bench.Result, b *testing.B) {
		b.ReportMetric(metric(r, 3, "LogicCells"), "VU29P_cells")
	})
}

func BenchmarkE2Figure1(b *testing.B) {
	runExperiment(b, "e2", nil)
}

func BenchmarkE3MonitorOverhead(b *testing.B) {
	runExperiment(b, "e3", func(r bench.Result, b *testing.B) {
		b.ReportMetric(metric(r, len(r.Rows)-1, "Overhead%"), "VU29P_64tile_ovh_%")
	})
}

func BenchmarkE4Latency(b *testing.B) {
	runExperiment(b, "e4", func(r bench.Result, b *testing.B) {
		b.ReportMetric(metric(r, 0, "Direct-p50us"), "direct_64B_p50_us")
		b.ReportMetric(metric(r, 0, "Hosted-p50us"), "hosted_64B_p50_us")
		b.ReportMetric(metric(r, 0, "Speedup-p50"), "speedup_64B")
	})
}

func BenchmarkE5Energy(b *testing.B) {
	runExperiment(b, "e5", func(r bench.Result, b *testing.B) {
		b.ReportMetric(metric(r, 0, "Hosted/Direct"), "energy_ratio_64B")
	})
}

func BenchmarkE6IPC(b *testing.B) {
	runExperiment(b, "e6", func(r bench.Result, b *testing.B) {
		b.ReportMetric(metric(r, 0, "RTT-p50cy"), "ipc_8B_rtt_cycles")
		b.ReportMetric(metric(r, 0, "CheckOverhead%"), "cap_overhead_%")
	})
}

func BenchmarkE7RateLimit(b *testing.B) {
	runExperiment(b, "e7", func(r bench.Result, b *testing.B) {
		b.ReportMetric(metric(r, 1, "VictimOK"), "victim_ok_limited")
	})
}

func BenchmarkE8FailStop(b *testing.B) {
	runExperiment(b, "e8", nil)
}

func BenchmarkE9Preemption(b *testing.B) {
	runExperiment(b, "e9", nil)
}

func BenchmarkE10SegVsPage(b *testing.B) {
	runExperiment(b, "e10", func(r bench.Result, b *testing.B) {
		last := len(r.Rows) - 1 // paged row
		b.ReportMetric(metric(r, last, "WastedMB"), "paged_wasted_MB")
		b.ReportMetric(metric(r, last, "XlateEntries"), "paged_entries")
		b.ReportMetric(metric(r, 0, "XlateEntries"), "segment_entries")
	})
}

func BenchmarkE11Scenario(b *testing.B) {
	runExperiment(b, "e11", nil)
}

func BenchmarkE12ScaleOut(b *testing.B) {
	runExperiment(b, "e12", func(r bench.Result, b *testing.B) {
		b.ReportMetric(metric(r, 2, "Speedup"), "speedup_4_replicas")
	})
}

func BenchmarkE13Portability(b *testing.B) {
	runExperiment(b, "e13", func(r bench.Result, b *testing.B) {
		b.ReportMetric(metric(r, 0, "RTT-p50us"), "v7_10g_rtt_us")
		b.ReportMetric(metric(r, 1, "RTT-p50us"), "usp_100g_rtt_us")
	})
}

func BenchmarkE14RemoteService(b *testing.B) {
	runExperiment(b, "e14", func(r bench.Result, b *testing.B) {
		b.ReportMetric(metric(r, 0, "p50us"), "local_p50_us")
		b.ReportMetric(metric(r, 1, "p50us"), "remote_cpu_p50_us")
	})
}

func BenchmarkE15Observability(b *testing.B) {
	runExperiment(b, "e15", func(r bench.Result, b *testing.B) {
		b.ReportMetric(metric(r, 1, "Spans"), "spans_1in64")
		b.ReportMetric(metric(r, 1, "Correlated"), "correlated_1in64")
		b.ReportMetric(metric(r, 2, "Span-p99cy"), "span_p99_cy")
	})
}

// --- substrate microbenchmarks ---

// BenchmarkNoCMessage measures one 64-byte message crossing a 4x4 mesh
// corner to corner, including simulation overhead per delivered message.
func BenchmarkNoCMessage(b *testing.B) {
	e := sim.NewEngine(1)
	st := sim.NewStats()
	n := noc.NewNetwork(e, st, noc.Config{Dims: noc.Dims{W: 4, H: 4}})
	delivered := 0
	n.NI(15).SetDeliver(func(*msg.Message, sim.Cycle) { delivered++ })
	payload := make([]byte, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := &msg.Message{Type: msg.TRequest, SrcTile: 0, DstTile: 15, Payload: payload}
		if err := n.NI(0).Send(m); err != nil {
			b.Fatal(err)
		}
		target := i + 1
		for delivered < target {
			e.Step()
		}
	}
}

// BenchmarkSystemCycle measures the cost of one simulated cycle of a full
// 9-tile board with an idle workload loaded.
func BenchmarkSystemCycle(b *testing.B) {
	sys, err := apiary.NewSystem(apiary.SystemConfig{})
	if err != nil {
		b.Fatal(err)
	}
	sum := apiary.NewChecksum()
	if _, err := sys.Kernel.LoadApp(apiary.AppSpec{
		Name: "idle",
		Accels: []apiary.AppAccel{
			{Name: "s", New: func() apiary.Accelerator { return sum },
				Service: apiary.FirstUserService},
		},
	}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	sys.Run(apiary.Cycle(b.N))
}

// BenchmarkEngineIdle measures the per-cycle cost of simulating a fully
// idle 8x8 mesh — the case the idle-skip fast-forward turns into O(1) per
// Run regardless of cycle count.
func BenchmarkEngineIdle(b *testing.B) {
	e := sim.NewEngine(1)
	st := sim.NewStats()
	noc.NewNetwork(e, st, noc.Config{Dims: noc.Dims{W: 8, H: 8}})
	b.ResetTimer()
	e.Run(sim.Cycle(b.N))
	b.StopTimer()
	if b.N > 1 && e.SkippedCycles() == 0 {
		b.Fatal("idle mesh did not fast-forward")
	}
}

// benchMeshSaturated measures the per-cycle cost of a WxH mesh kept
// saturated with random traffic — the activity-driven router's worst case,
// where no cycles can be skipped and every tick does real switching work.
// mode selects the tick-phase scheduler; shards is the noc shard count
// (0 = auto, one row band per core); spanEvery installs the flight recorder
// at 1-in-N sampling (0 = no recorder).
func benchMeshSaturated(b *testing.B, w, h int, mode sim.ParallelMode, shards, spanEvery int) {
	r := newSaturatedRig(b, w, h, mode, shards, spanEvery)
	r.topUp()
	b.ResetTimer()
	r.step(b.N)
}

// saturatedRig is the shared driver behind the saturated-mesh benchmarks
// and the steady-state allocation guard below.
type saturatedRig struct {
	tb    testing.TB
	e     *sim.Engine
	n     *noc.Network
	rng   *sim.RNG
	tiles int
	// Delivered messages go back on a free list and are reused by topUp, so
	// the steady-state loop performs zero heap allocations — the benchmark
	// measures the NoC, not the garbage collector (and the 0 allocs/op
	// guards below and in internal/noc rely on the same discipline).
	free    []*msg.Message
	payload []byte
}

func newSaturatedRig(tb testing.TB, w, h int, mode sim.ParallelMode, shards, spanEvery int) *saturatedRig {
	e := sim.NewEngine(7)
	tb.Cleanup(e.Close)
	st := sim.NewStats()
	n := noc.NewNetwork(e, st, noc.Config{Dims: noc.Dims{W: w, H: h}, Shards: shards})
	e.SetParallel(mode)
	if spanEvery > 0 {
		n.SetSpanSampler(obs.NewRecorder(spanEvery, 0))
	}
	tiles := w * h
	r := &saturatedRig{
		tb: tb, e: e, n: n, rng: sim.NewRNG(7), tiles: tiles,
		free: make([]*msg.Message, 0, tiles*8), payload: make([]byte, 64),
	}
	for t := 0; t < tiles; t++ {
		n.NI(msg.TileID(t)).SetDeliver(func(m *msg.Message, _ sim.Cycle) {
			r.free = append(r.free, m)
		})
	}
	return r
}

func (r *saturatedRig) topUp() {
	for t := 0; t < r.tiles; t++ {
		for r.n.NI(msg.TileID(t)).QueuedPackets() < 4 {
			dst := msg.TileID(r.rng.Intn(r.tiles))
			if dst == msg.TileID(t) {
				dst = msg.TileID((int(dst) + 1) % r.tiles)
			}
			var m *msg.Message
			if k := len(r.free); k > 0 {
				m, r.free = r.free[k-1], r.free[:k-1]
				*m = msg.Message{}
			} else {
				m = &msg.Message{}
			}
			m.Type, m.SrcTile, m.DstTile, m.Payload = msg.TRequest, msg.TileID(t), dst, r.payload
			if err := r.n.NI(msg.TileID(t)).Send(m); err != nil {
				r.tb.Fatal(err)
			}
		}
	}
}

func (r *saturatedRig) step(cycles int) {
	for i := 0; i < cycles; i++ {
		if i%16 == 0 {
			r.topUp()
		}
		r.e.Step()
	}
}

// TestMeshSaturatedAllocs is the steady-state allocation guard for the
// saturated hot path: once the packet pools, free list, and staging slices
// have reached their high-water marks, a full saturated 8x8 cycle — routing,
// credit flow, ejection, re-injection — must not touch the heap at all.
func TestMeshSaturatedAllocs(t *testing.T) {
	r := newSaturatedRig(t, 8, 8, sim.ParallelOff, 1, 0)
	r.step(16384) // reach every pool's high-water mark first
	if avg := testing.AllocsPerRun(5, func() { r.step(256) }); avg != 0 {
		t.Fatalf("saturated mesh steady state allocates: %.2f allocs per 256 cycles", avg)
	}
}

// BenchmarkMeshSaturated runs with the flight recorder at its apiaryd
// default (1-in-64 sampling) so the headline per-cycle number includes the
// observability tax; the Unsampled variant is the A/B baseline.
func BenchmarkMeshSaturated(b *testing.B) {
	benchMeshSaturated(b, 4, 4, sim.ParallelAuto, 0, 64)
}

func BenchmarkMeshSaturatedUnsampled(b *testing.B) {
	benchMeshSaturated(b, 4, 4, sim.ParallelAuto, 0, 0)
}

// BenchmarkMeshSaturated16Serial / Parallel are the A/B pair for the sharded
// tick scheduler on a 16x16 mesh (512 tickers). The parallel variant forces
// ParallelOn with auto shard count; on a single-core host it degenerates to
// the serial path (ParallelOn still requires two populated shards), so the
// speedup is only visible with GOMAXPROCS > 1.
func BenchmarkMeshSaturated16Serial(b *testing.B) {
	benchMeshSaturated(b, 16, 16, sim.ParallelOff, 0, 0)
}

func BenchmarkMeshSaturated16Parallel(b *testing.B) {
	benchMeshSaturated(b, 16, 16, sim.ParallelOn, 0, 0)
}

// BenchmarkMeshSaturated32 scales the saturated workload to a 32x32 mesh
// (1024 routers, 15360 port-VC states) — the size where the SoA layout's
// cache behaviour dominates and any per-tile pointer chasing would show up
// immediately in the per-cycle cost.
func BenchmarkMeshSaturated32(b *testing.B) {
	benchMeshSaturated(b, 32, 32, sim.ParallelOff, 0, 0)
}

func BenchmarkSegmentAlloc(b *testing.B) {
	a := memseg.NewAllocator(1<<30, memseg.FirstFit)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := a.Alloc(4096, 1)
		if err != nil {
			b.Fatal(err)
		}
		if err := a.Free(s.ID); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPagedAlloc(b *testing.B) {
	p := memseg.NewPagedAllocator(1<<30, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id, err := p.Alloc(4096, 1)
		if err != nil {
			b.Fatal(err)
		}
		if err := p.Free(id); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeFrame4K(b *testing.B) {
	frame := make([]byte, 4096)
	for i := range frame {
		frame[i] = byte(120 + i%32)
	}
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		apps.EncodeFrame(frame)
	}
}

func BenchmarkCompress4K(b *testing.B) {
	data := make([]byte, 4096)
	for i := range data {
		data[i] = byte(i % 97)
	}
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		apps.Compress(data)
	}
}

func BenchmarkChecksum4K(b *testing.B) {
	data := make([]byte, 4096)
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		apps.Checksum64(data)
	}
}

func BenchmarkMessageEncodeDecode(b *testing.B) {
	m := &msg.Message{
		Type: msg.TRequest, SrcTile: 1, DstTile: 2, DstSvc: 16,
		Seq: 9, Payload: make([]byte, 256),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w, err := m.Encode()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := msg.Decode(w); err != nil {
			b.Fatal(err)
		}
	}
}

// --- fleet benchmarks ---

// newBenchFleet builds a 16-board fleet where every board runs a
// never-draining local RPC loop (requester -> echo stage), so no board can
// idle-skip and each epoch does real per-cycle work on all 16 engines —
// the workload board-level parallelism is supposed to speed up.
func newBenchFleet(tb testing.TB, workers, spanEvery int) *cluster.Fleet {
	fl, err := cluster.New(cluster.Config{
		Boards:  16,
		Workers: workers,
		Seed:    7,
		Board: core.SystemConfig{
			Dims: noc.Dims{W: 3, H: 3},
			// Keep construction cheap: the DRAM model stores real bytes.
			ManagedMemBytes: 1 << 20,
			SpanSampleEvery: spanEvery,
		},
		Link: netsim.LinkConfig{LatencyNs: 1000},
	})
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(fl.Close)
	for i := 0; i < fl.Boards(); i++ {
		spec := core.AppSpec{
			Name: "churn",
			Accels: []core.AppAccel{
				{Name: "echo", Service: msg.FirstUserService,
					New: func() accel.Accelerator {
						return apps.NewStage(apps.StageConfig{
							Name:    "echo",
							Process: func(in []byte) ([]byte, msg.ErrCode) { return in, msg.EOK },
						})
					}},
				{Name: "req", Connect: []msg.ServiceID{msg.FirstUserService},
					New: func() accel.Accelerator {
						return apps.NewRequester(msg.FirstUserService, 1<<30, 0,
							func(int) []byte { return make([]byte, 32) }, nil)
					}},
			},
		}
		if _, err := fl.Board(i).Sys.Kernel.LoadApp(spec); err != nil {
			tb.Fatal(err)
		}
	}
	return fl
}

// BenchmarkFleet16 measures simulated fleet cycles per second with board
// parallelism on (workers = GOMAXPROCS) and the flight recorder at its
// apiaryd default (1-in-64 sampling), so the headline number includes the
// fleet observability tax; BenchmarkFleet16Unsampled is the A/B baseline
// (the pair bounds the tracing overhead), and BenchmarkFleet16Serial is the
// 1-worker baseline. All runs are bit-exact (TestFleetDifferential,
// TestFleetObsDifferential); only wall clock differs.
func BenchmarkFleet16(b *testing.B) {
	fl := newBenchFleet(b, 0, 64)
	fl.Run(10_000) // warm pools and queues
	b.ResetTimer()
	fl.Run(sim.Cycle(b.N))
}

func BenchmarkFleet16Unsampled(b *testing.B) {
	fl := newBenchFleet(b, 0, 0)
	fl.Run(10_000)
	b.ResetTimer()
	fl.Run(sim.Cycle(b.N))
}

func BenchmarkFleet16Serial(b *testing.B) {
	fl := newBenchFleet(b, 1, 0)
	fl.Run(10_000)
	b.ResetTimer()
	fl.Run(sim.Cycle(b.N))
}

// TestFleetScaling asserts the headline perf claim: a 16-board fleet at
// GOMAXPROCS >= 4 sustains at least 2x the cycles/sec of the 1-worker run.
// Skipped on hosts without enough CPUs to honestly measure it.
func TestFleetScaling(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling measurement skipped in -short")
	}
	if runtime.NumCPU() < 4 || runtime.GOMAXPROCS(0) < 4 {
		t.Skipf("need >=4 CPUs for the scaling assertion (NumCPU=%d GOMAXPROCS=%d)",
			runtime.NumCPU(), runtime.GOMAXPROCS(0))
	}
	const cycles = 100_000
	measure := func(workers int) time.Duration {
		fl := newBenchFleet(t, workers, 0)
		fl.Run(10_000) // warm
		start := time.Now()
		fl.Run(cycles)
		return time.Since(start)
	}
	serial := measure(1)
	parallel := measure(runtime.GOMAXPROCS(0))
	speedup := float64(serial) / float64(parallel)
	t.Logf("fleet 16 boards: serial %v, parallel %v, speedup %.2fx", serial, parallel, speedup)
	if speedup < 2 {
		t.Fatalf("fleet speedup %.2fx < 2x at GOMAXPROCS=%d", speedup, runtime.GOMAXPROCS(0))
	}
}
