package core

import (
	"encoding/binary"
	"fmt"

	"apiary/internal/accel"
	"apiary/internal/cap"
	"apiary/internal/fabric"
	"apiary/internal/memseg"
	"apiary/internal/monitor"
	"apiary/internal/msg"
	"apiary/internal/noc"
	"apiary/internal/obs"
	"apiary/internal/sim"
	"apiary/internal/trace"
)

// Reserved tiles: the kernel occupies tile 0, the memory service tile 1,
// the network service (when configured) tile 2.
const (
	KernelTile msg.TileID = 0
	MemTile    msg.TileID = 1
	NetTile    msg.TileID = 2
)

// Well-known capability slots installed on every application tile.
const (
	SlotKernelEP cap.Ref = 0 // endpoint to SvcKernel
	SlotMemEP    cap.Ref = 1 // endpoint to SvcMemory
	SlotNetEP    cap.Ref = 2 // endpoint to SvcNet (only when granted)
	// firstDynamicSlot is where kernel-assigned slots start.
	firstDynamicSlot = 8
)

// prBaseCycles and prCyclesPerCell model partial-reconfiguration time: a
// fixed setup plus per-cell programming cost. ~1 ms + size-dependent part
// at 250 MHz, in line with published PR throughput.
const (
	prBaseCycles    sim.Cycle = 250_000
	prCyclesPerCell sim.Cycle = 1
)

// Proc is one process: a user context on a placed accelerator (paper §4.2).
type Proc struct {
	App   string
	Accel string
	Tile  msg.TileID
	Ctx   uint8
}

// grant records a capability the kernel installed somewhere, for revocation.
type grant struct {
	tile msg.TileID
	slot cap.Ref
	c    cap.Capability
}

// tileState is the kernel's view of one tile.
type tileState struct {
	id     msg.TileID
	mon    *monitor.Monitor
	shell  *accel.Shell
	app    string // owning app ("" = free, "apiary" = system service)
	accel  string
	svc    msg.ServiceID
	slotNo uint32 // next dynamic cap slot
}

// AppAccel describes one accelerator instance in an application manifest.
type AppAccel struct {
	// Name is the instance name, unique within the app.
	Name string
	// New constructs the accelerator logic.
	New func() accel.Accelerator
	// Service, when nonzero, is registered in the global name table and
	// bound on all tiles.
	Service msg.ServiceID
	// Cells is the logic size used for the synthetic bitstream (defaults
	// to 20000).
	Cells int
	// Connect lists services this accelerator gets endpoint caps for.
	// Same-app and system services always connect; foreign services must
	// be exported by their app.
	Connect []msg.ServiceID
	// MemBytes, when nonzero, pre-allocates a segment whose capability is
	// installed at the reply slot recorded in PlacedAccel.
	MemBytes uint64
	// Rate is the tile's egress rate limit (zero = unlimited).
	Rate monitor.RateLimit
	// WantNet grants an endpoint capability for the network service.
	WantNet bool
	// QueueCap overrides the shell's admission-queue bound (0 keeps the
	// default accel.InQDepth). Together with request deadlines this is the
	// overload-control knob: a shorter queue sheds sooner.
	QueueCap int
}

// Placement selects the tile-assignment strategy for an application.
type Placement int

// Placement strategies.
const (
	// PlaceFirstFit assigns free tiles in ID order (default).
	PlaceFirstFit Placement = iota
	// PlaceAffinity greedily co-locates accelerators that communicate
	// (declared via Connect edges), minimizing NoC hops between pipeline
	// stages — the "without manual optimization" of §3 Scalability.
	PlaceAffinity
)

// AppSpec is an application manifest: one or more accelerators plus policy
// (paper §4.1: "an application is one or more accelerators that communicate
// with each other to complete a computation").
type AppSpec struct {
	Name string
	// Accels are placed one per tile; distrusting apps never share a tile.
	Accels []AppAccel
	// Exports lists services other apps may connect to.
	Exports []msg.ServiceID
	// Groups declares health-aware replica sets over this app's services.
	Groups []ReplicaGroupSpec
	// Restart requests automatic reconfigure+resume of fail-stopped tiles.
	Restart bool
	// Placement selects the tile-assignment strategy.
	Placement Placement
}

// PlacedAccel reports where an accelerator instance landed.
type PlacedAccel struct {
	Name    string
	Tile    msg.TileID
	SegID   uint32  // pre-allocated segment (0 if none)
	SegSlot cap.Ref // capability slot of that segment
}

// App is a loaded application.
type App struct {
	Spec   AppSpec
	Placed []PlacedAccel
	// Restarts counts fail-stop recoveries performed for this app.
	Restarts int
}

// Kernel is the Apiary microkernel instance for one board.
type Kernel struct {
	engine  *sim.Engine
	stats   *sim.Stats
	net     *noc.Network
	checker *cap.Checker
	tracer  *trace.Tracer

	tiles    []*tileState
	services map[msg.ServiceID]msg.TileID
	exports  map[msg.ServiceID]string // exporting app per service
	svcOwner map[msg.ServiceID]string // owning app per service
	apps     map[string]*App
	procs    []Proc
	grants   []grant
	segOwner map[uint32]msg.TileID // segment ID -> owning tile

	groups      map[msg.ServiceID]*replicaGroup
	groupOrder  []msg.ServiceID // registration order (directory, determinism)
	memberGroup map[msg.ServiceID]msg.ServiceID
	health      map[msg.ServiceID]Health

	alloc   *memseg.Allocator
	regions []*fabric.Region
	dram    *memseg.DRAM

	// migrations tracks in-flight on-board live migrations by app name.
	migrations map[string]*migration

	faults      []msg.FaultReport
	quarantined map[msg.TileID]bool
	syscalls    *sim.Counter
	faultsC     *sim.Counter
	restarts    *sim.Counter
	quarC       *sim.Counter
	recovC      *sim.Counter
	failoversC  *sim.Counter
	migDoneC    *sim.Counter
	migAbortC   *sim.Counter

	// events, when set, is the board's kernel decision log: every
	// quarantine, recovery, failover and rebind is recorded with its cycle
	// and cause. Decision sites run in the commit phase on the board
	// goroutine (single writer), so a plain ring is race-free.
	events *obs.EventLog

	detect monitor.Detect
}

// NewKernel boots the microkernel over an existing NoC. Monitors are
// created for every tile except the kernel's own; system service name
// bindings are programmed into every monitor (static-region boot state).
func NewKernel(e *sim.Engine, st *sim.Stats, net *noc.Network,
	checker *cap.Checker, tracer *trace.Tracer, alloc *memseg.Allocator,
	enforceCaps bool, detect monitor.Detect) *Kernel {
	k := &Kernel{
		engine:      e,
		stats:       st,
		net:         net,
		checker:     checker,
		tracer:      tracer,
		services:    make(map[msg.ServiceID]msg.TileID),
		exports:     make(map[msg.ServiceID]string),
		svcOwner:    make(map[msg.ServiceID]string),
		apps:        make(map[string]*App),
		segOwner:    make(map[uint32]msg.TileID),
		quarantined: make(map[msg.TileID]bool),
		migrations:  make(map[string]*migration),
		groups:      make(map[msg.ServiceID]*replicaGroup),
		memberGroup: make(map[msg.ServiceID]msg.ServiceID),
		health:      make(map[msg.ServiceID]Health),
		alloc:       alloc,
		syscalls:    st.Counter("kernel.syscalls"),
		faultsC:     st.Counter("kernel.faults"),
		restarts:    st.Counter("kernel.restarts"),
		quarC:       st.Counter("kernel.quarantines"),
		recovC:      st.Counter("kernel.recoveries"),
		failoversC:  st.Counter("kernel.failovers"),
		migDoneC:    st.Counter("kernel.migrations"),
		migAbortC:   st.Counter("kernel.migration_aborts"),
		detect:      detect,
	}
	n := net.Dims().Tiles()
	if n < 2 {
		panic("core: need at least 2 tiles (kernel + memory)")
	}
	for i := 0; i < n; i++ {
		id := msg.TileID(i)
		ts := &tileState{id: id, slotNo: firstDynamicSlot}
		if id != KernelTile {
			ts.mon = monitor.New(monitor.Config{
				Tile: id, Kernel: KernelTile, EnforceCaps: enforceCaps,
				Detect: detect,
			}, e, net.NI(id), nil, checker, tracer, st)
			// The shell is static fabric: every tile boots with one, parked
			// Stopped around placeholder logic, registered with the engine
			// here — in tile-ID order, once, before the first cycle. The
			// ticker list never grows again, so placement (including a live
			// migration's reload) is legal mid-run: LoadApp swaps logic into
			// the resident shell with Adopt instead of registering anew.
			ts.shell = accel.NewShell(accel.Blank{}, st)
			ts.shell.SetState(accel.Stopped)
			e.Register(ts.shell)
		}
		k.tiles = append(k.tiles, ts)
	}
	net.NI(KernelTile).SetDeliver(k.deliver)

	k.services[msg.SvcKernel] = KernelTile
	k.services[msg.SvcMemory] = MemTile
	k.bindAll(msg.SvcKernel, KernelTile)
	k.bindAll(msg.SvcMemory, MemTile)
	k.tiles[KernelTile].app = "apiary"
	return k
}

// bindAll writes a name binding into every monitor (boot path: direct;
// runtime registrations use TCtlSetName messages so they traverse the NoC).
func (k *Kernel) bindAll(svc msg.ServiceID, tile msg.TileID) {
	for _, ts := range k.tiles {
		if ts.mon != nil {
			ts.mon.BindName(svc, tile)
		}
	}
}

// broadcastName distributes a runtime binding over the management plane.
func (k *Kernel) broadcastName(svc msg.ServiceID, tile msg.TileID) {
	for _, ts := range k.tiles {
		if ts.mon == nil {
			continue
		}
		k.sendCtl(ts.id, msg.TCtlSetName,
			msg.EncodeSetNameReq(msg.SetNameReq{Svc: svc, Tile: tile}))
	}
}

// sendCtl emits a management-plane message from the kernel tile.
func (k *Kernel) sendCtl(dst msg.TileID, t msg.Type, payload []byte) {
	_ = k.net.NI(KernelTile).Send(&msg.Message{
		Type: t, SrcTile: KernelTile, DstTile: dst, Payload: payload,
	})
}

// reply answers a syscall request.
func (k *Kernel) reply(m *msg.Message, payload []byte) {
	r := m.Reply(msg.TReply, payload)
	r.SrcTile = KernelTile
	_ = k.net.NI(KernelTile).Send(r)
}

func (k *Kernel) replyErr(m *msg.Message, code msg.ErrCode) {
	r := m.ErrorReply(code)
	r.SrcTile = KernelTile
	_ = k.net.NI(KernelTile).Send(r)
}

// Monitor returns tile t's monitor (nil for the kernel tile).
func (k *Kernel) Monitor(t msg.TileID) *monitor.Monitor { return k.tiles[t].mon }

// Shell returns tile t's shell. Shells are static fabric: once a tile has
// hosted an accelerator its shell stays resident (Stopped) across unloads,
// so nil means the tile has never been placed on.
func (k *Kernel) Shell(t msg.TileID) *accel.Shell { return k.tiles[t].shell }

// App returns a loaded application by name.
func (k *Kernel) App(name string) *App { return k.apps[name] }

// Procs returns the process table.
func (k *Kernel) Procs() []Proc { return append([]Proc(nil), k.procs...) }

// Faults returns fault reports received so far.
func (k *Kernel) Faults() []msg.FaultReport {
	return append([]msg.FaultReport(nil), k.faults...)
}

// ServiceTile resolves a service in the kernel's global registry.
func (k *Kernel) ServiceTile(svc msg.ServiceID) (msg.TileID, bool) {
	t, ok := k.services[svc]
	return t, ok
}

// installSystemService places a service accelerator on a reserved tile and
// registers its name.
func (k *Kernel) installSystemService(tile msg.TileID, svc msg.ServiceID, a accel.Accelerator) {
	ts := k.tiles[tile]
	if ts.app != "" {
		panic(fmt.Sprintf("core: service tile %d already occupied", tile))
	}
	if su, ok := a.(accel.StatsUser); ok {
		su.AttachStats(k.stats)
	}
	shell := ts.shell
	shell.Adopt(a)
	ts.app = "apiary"
	ts.accel = a.Name()
	ts.svc = svc
	ts.mon.AttachShell(shell)
	if svc != msg.SvcInvalid {
		k.services[svc] = tile
		k.bindAll(svc, tile)
	}
	// Service tiles may reply and send to anything reply-class; they also
	// need kernel and memory endpoints for completeness.
	k.installCapDirect(tile, SlotKernelEP, k.endpointCap(msg.SvcKernel))
	k.installCapDirect(tile, SlotMemEP, k.endpointCap(msg.SvcMemory))
}

// endpointCap mints an endpoint capability at the current generation.
func (k *Kernel) endpointCap(svc msg.ServiceID) cap.Capability {
	return cap.Capability{
		Kind: cap.KindEndpoint, Rights: cap.RSend,
		Object: uint32(svc), Gen: k.checker.Gen(cap.KindEndpoint, uint32(svc)),
	}
}

// segmentCap mints a segment capability.
func (k *Kernel) segmentCap(segID uint32, rights cap.Rights) cap.Capability {
	return cap.Capability{
		Kind: cap.KindSegment, Rights: rights,
		Object: segID, Gen: k.checker.Gen(cap.KindSegment, segID),
	}
}

// installCapDirect writes a capability into a tile's table. Boot/placement
// path only; runtime installs triggered by syscalls go over TCtlInstallCap
// so they are visible on the management plane.
func (k *Kernel) installCapDirect(tile msg.TileID, slot cap.Ref, c cap.Capability) {
	k.tiles[tile].mon.Table().InstallAt(slot, c)
	k.grants = append(k.grants, grant{tile: tile, slot: slot, c: c})
}

// installCapMsg installs a capability via the management plane.
func (k *Kernel) installCapMsg(tile msg.TileID, slot cap.Ref, c cap.Capability) {
	k.sendCtl(tile, msg.TCtlInstallCap, msg.EncodeInstallCapReq(msg.InstallCapReq{
		Slot: uint32(slot), Cap: c.Encode(),
	}))
	k.grants = append(k.grants, grant{tile: tile, slot: slot, c: c})
}

// deliver is the kernel tile's NI handler.
func (k *Kernel) deliver(m *msg.Message, _ sim.Cycle) {
	switch m.Type {
	case msg.TCtlFault:
		k.handleFault(m)
	case msg.TRequest:
		k.handleSyscall(m)
	case msg.TReply, msg.TError:
		// Completions of kernel-issued ctl ops; nothing to do.
	default:
		k.replyErr(m, msg.EBadMsg)
	}
}

// handleFault implements the kernel's fault policy (paper §4.4): record the
// report, quarantine the fail-stopped tile (drain, cap revocation, region
// marked for reload), and — if the owning app asked for restart —
// reconfigure the tile after the PR delay and re-admit it.
func (k *Kernel) handleFault(m *msg.Message) {
	rep, err := msg.DecodeFaultReport(m.Payload)
	if err != nil {
		return
	}
	k.faultsC.Inc()
	k.faults = append(k.faults, rep)
	ts := k.tiles[rep.Tile]
	// If the shell contained the fault per-context (preemptible), the tile
	// is still Running and needs no reconfiguration — but a replica that
	// keeps absorbing contained faults is marked Degraded in the service
	// directory, demoting it to failover target of last resort.
	if ts.shell != nil && ts.shell.State() == accel.Running {
		if ts.svc != msg.SvcInvalid {
			k.setHealth(ts.svc, HealthDegraded)
		}
		return
	}
	if !k.quarantine(ts, accel.FaultReason(rep.Reason).String()) {
		// Already quarantined (a recovery is pending or the tile is parked)
		// or a trusted system tile: nothing further to schedule.
		return
	}
	app, ok := k.apps[ts.app]
	if !ok || !app.Spec.Restart {
		return
	}
	app.Restarts++
	k.restarts.Inc()
	cells := defaultCells
	if reg := k.region(ts.id); reg != nil && reg.Loaded() != nil {
		cells = reg.Loaded().Cells
	}
	delay := prBaseCycles + prCyclesPerCell*sim.Cycle(cells)
	k.engine.After(delay, func(sim.Cycle) {
		k.recoverTile(ts)
	})
}

// handleSyscall dispatches a TRequest to SvcKernel.
func (k *Kernel) handleSyscall(m *msg.Message) {
	k.syscalls.Inc()
	if len(m.Payload) == 0 {
		k.replyErr(m, msg.EBadMsg)
		return
	}
	switch m.Payload[0] {
	case OpAllocSeg:
		k.sysAllocSeg(m)
	case OpFreeSeg:
		k.sysFreeSeg(m)
	case OpRegisterSvc:
		k.sysRegisterSvc(m)
	case OpLookupSvc:
		k.sysLookupSvc(m)
	case OpConnect:
		k.sysConnect(m)
	case OpGrantSeg:
		k.sysGrantSeg(m)
	default:
		k.replyErr(m, msg.EBadMsg)
	}
}

func (k *Kernel) sysAllocSeg(m *msg.Message) {
	if len(m.Payload) < 9 {
		k.replyErr(m, msg.EBadMsg)
		return
	}
	size := binary.LittleEndian.Uint64(m.Payload[1:])
	seg, err := k.alloc.Alloc(size, m.SrcTile)
	if err != nil {
		k.replyErr(m, msg.ENoMem)
		return
	}
	ts := k.tiles[m.SrcTile]
	slot := cap.Ref(ts.slotNo)
	ts.slotNo++
	k.segOwner[uint32(seg.ID)] = m.SrcTile
	k.installCapMsg(m.SrcTile, slot, k.segmentCap(uint32(seg.ID), cap.RRead|cap.RWrite|cap.RGrant))
	out := make([]byte, 9)
	out[0] = OpAllocSeg
	binary.LittleEndian.PutUint32(out[1:], uint32(seg.ID))
	binary.LittleEndian.PutUint32(out[5:], uint32(slot))
	k.reply(m, out)
}

func (k *Kernel) sysFreeSeg(m *msg.Message) {
	if len(m.Payload) < 5 {
		k.replyErr(m, msg.EBadMsg)
		return
	}
	segID := binary.LittleEndian.Uint32(m.Payload[1:])
	if owner, ok := k.segOwner[segID]; !ok || owner != m.SrcTile {
		k.replyErr(m, msg.ENoCap)
		return
	}
	if err := k.alloc.Free(memseg.SegID(segID)); err != nil {
		k.replyErr(m, msg.ENoCap)
		return
	}
	delete(k.segOwner, segID)
	// Revoke globally: bump the generation, then clear every table slot we
	// know granted it.
	k.checker.Revoke(cap.KindSegment, segID)
	for _, g := range k.grants {
		if g.c.Kind == cap.KindSegment && g.c.Object == segID {
			k.sendCtl(g.tile, msg.TCtlRevokeCap,
				msg.EncodeInstallCapReq(msg.InstallCapReq{Slot: uint32(g.slot)}))
		}
	}
	k.reply(m, []byte{OpFreeSeg})
}

func (k *Kernel) sysRegisterSvc(m *msg.Message) {
	if len(m.Payload) < 3 {
		k.replyErr(m, msg.EBadMsg)
		return
	}
	svc := msg.ServiceID(binary.LittleEndian.Uint16(m.Payload[1:]))
	if svc < msg.FirstUserService {
		k.replyErr(m, msg.ERights)
		return
	}
	if _, taken := k.services[svc]; taken {
		k.replyErr(m, msg.EBusy)
		return
	}
	k.services[svc] = m.SrcTile
	k.svcOwner[svc] = k.tiles[m.SrcTile].app
	k.broadcastName(svc, m.SrcTile)
	k.reply(m, []byte{OpRegisterSvc})
}

func (k *Kernel) sysLookupSvc(m *msg.Message) {
	if len(m.Payload) < 3 {
		k.replyErr(m, msg.EBadMsg)
		return
	}
	svc := msg.ServiceID(binary.LittleEndian.Uint16(m.Payload[1:]))
	tile, ok := k.services[svc]
	if !ok {
		k.replyErr(m, msg.ENoService)
		return
	}
	out := make([]byte, 3)
	out[0] = OpLookupSvc
	binary.LittleEndian.PutUint16(out[1:], uint16(tile))
	k.reply(m, out)
}

// mayConnect applies the connection policy: system services and same-app
// services always; foreign services only when exported by their app.
func (k *Kernel) mayConnect(callerApp string, svc msg.ServiceID) bool {
	if svc == msg.SvcKernel || svc == msg.SvcMemory || svc == msg.SvcNet ||
		svc == msg.SvcTrace || svc == msg.SvcName {
		return true
	}
	owner := k.svcOwner[svc]
	if owner == callerApp && owner != "" {
		return true
	}
	if expApp, ok := k.exports[svc]; ok && expApp == owner {
		return true
	}
	return false
}

func (k *Kernel) sysConnect(m *msg.Message) {
	if len(m.Payload) < 3 {
		k.replyErr(m, msg.EBadMsg)
		return
	}
	svc := msg.ServiceID(binary.LittleEndian.Uint16(m.Payload[1:]))
	if _, ok := k.services[svc]; !ok {
		k.replyErr(m, msg.ENoService)
		return
	}
	ts := k.tiles[m.SrcTile]
	if !k.mayConnect(ts.app, svc) {
		k.replyErr(m, msg.ENoCap)
		return
	}
	slot := cap.Ref(ts.slotNo)
	ts.slotNo++
	k.installCapMsg(m.SrcTile, slot, k.endpointCap(svc))
	out := make([]byte, 5)
	out[0] = OpConnect
	binary.LittleEndian.PutUint32(out[1:], uint32(slot))
	k.reply(m, out)
}

func (k *Kernel) sysGrantSeg(m *msg.Message) {
	if len(m.Payload) < 8 {
		k.replyErr(m, msg.EBadMsg)
		return
	}
	segID := binary.LittleEndian.Uint32(m.Payload[1:])
	svc := msg.ServiceID(binary.LittleEndian.Uint16(m.Payload[5:]))
	rights := cap.Rights(m.Payload[7]) & (cap.RRead | cap.RWrite)
	owner, ok := k.segOwner[segID]
	if !ok || owner != m.SrcTile {
		k.replyErr(m, msg.ENoCap)
		return
	}
	dstTile, ok := k.services[svc]
	if !ok {
		k.replyErr(m, msg.ENoService)
		return
	}
	ts := k.tiles[dstTile]
	slot := cap.Ref(ts.slotNo)
	ts.slotNo++
	k.installCapMsg(dstTile, slot, k.segmentCap(segID, rights))
	k.reply(m, []byte{OpGrantSeg})
}
