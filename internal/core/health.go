package core

import (
	"fmt"
	"sort"

	"apiary/internal/cap"
	"apiary/internal/msg"
	"apiary/internal/obs"
)

// This file implements health-aware replica groups: a virtual service name
// backed by an ordered set of member services, re-bound by the kernel when
// the current primary fail-stops. Clients connect to the group service and
// never learn which member answers; on failover the kernel revokes the
// group endpoint generation (in-flight sends bounce with ERevoked, which is
// retryable and exempt from the violation budget), re-binds the name to the
// next healthy member's tile, and re-mints the endpoint capability into
// every table slot that held it. All of this happens in the kernel's
// message-delivery path, which runs in global tile order during the commit
// phase — health transitions are bit-exact across serial and sharded runs.

// Health is the kernel's per-replica verdict, driven by monitor watchdogs
// and the quarantine/recovery lifecycle.
type Health uint8

// Health states. Up serves traffic; Degraded had a contained (per-context)
// fault but keeps running and remains eligible as a failover target of last
// resort; Quarantined is fenced off until recovery.
const (
	HealthUp Health = iota
	HealthDegraded
	HealthQuarantined
)

func (h Health) String() string {
	switch h {
	case HealthUp:
		return "up"
	case HealthDegraded:
		return "degraded"
	case HealthQuarantined:
		return "quarantined"
	}
	return fmt.Sprintf("health(%d)", uint8(h))
}

// ReplicaGroupSpec declares one health-aware replica set in an AppSpec:
// Service is the virtual name clients connect to, Members the backing
// services in failover-preference order. Every member must be a service
// declared by the same app's accelerators.
type ReplicaGroupSpec struct {
	Service msg.ServiceID
	Members []msg.ServiceID
}

// replicaGroup is the kernel's live state for one group.
type replicaGroup struct {
	svc     msg.ServiceID
	app     string
	members []msg.ServiceID // registration order = failover preference
	primary int             // index into members
}

// ReplicaHealth is one member's row in the service directory.
type ReplicaHealth struct {
	Svc     msg.ServiceID
	Tile    msg.TileID
	Health  Health
	Primary bool
}

// DirEntry is one replica group's row in the service directory.
type DirEntry struct {
	Svc     msg.ServiceID
	App     string
	Members []ReplicaHealth
}

// RegisterReplicaSet creates a health-aware replica group owned by app:
// groupSvc becomes a virtual service bound to the first member's tile.
// Every member must already be registered; the kernel validates the set
// (no duplicates, no self-reference, resolvable members) and rejects
// conflicts with existing names.
func (k *Kernel) RegisterReplicaSet(app string, groupSvc msg.ServiceID,
	members []msg.ServiceID) error {
	if groupSvc < msg.FirstUserService {
		return fmt.Errorf("core: group service %d is reserved", groupSvc)
	}
	if _, taken := k.services[groupSvc]; taken {
		return fmt.Errorf("core: group service %d already registered", groupSvc)
	}
	if _, taken := k.groups[groupSvc]; taken {
		return fmt.Errorf("core: group service %d already a group", groupSvc)
	}
	if len(members) == 0 {
		return fmt.Errorf("core: group service %d has no members", groupSvc)
	}
	seen := map[msg.ServiceID]bool{}
	for _, m := range members {
		if m == groupSvc {
			return fmt.Errorf("core: group service %d lists itself as a member", groupSvc)
		}
		if seen[m] {
			return fmt.Errorf("core: group service %d lists member %d twice", groupSvc, m)
		}
		seen[m] = true
		if _, ok := k.services[m]; !ok {
			return fmt.Errorf("core: group service %d member %d is not registered", groupSvc, m)
		}
		if _, ok := k.groups[m]; ok {
			return fmt.Errorf("core: group member %d is itself a group", m)
		}
		if g, ok := k.memberGroup[m]; ok {
			return fmt.Errorf("core: member %d already belongs to group %d", m, g)
		}
	}
	g := &replicaGroup{svc: groupSvc, app: app,
		members: append([]msg.ServiceID(nil), members...)}
	k.groups[groupSvc] = g
	k.groupOrder = append(k.groupOrder, groupSvc)
	for _, m := range members {
		k.memberGroup[m] = groupSvc
		if _, ok := k.health[m]; !ok {
			k.health[m] = HealthUp
		}
	}
	tile := k.services[g.members[0]]
	k.services[groupSvc] = tile
	k.svcOwner[groupSvc] = app
	k.bindAll(groupSvc, tile)
	return nil
}

// setHealth records a member's verdict and fails the group over when its
// primary stops being healthy. A member coming back Up while the current
// primary is still fenced also triggers failover: that is the self-heal
// path for groups that lost every member at once and kept the dead
// binding.
func (k *Kernel) setHealth(member msg.ServiceID, h Health) {
	gsvc, ok := k.memberGroup[member]
	if !ok {
		return
	}
	if k.health[member] == h {
		return
	}
	k.health[member] = h
	g := k.groups[gsvc]
	switch {
	case h == HealthQuarantined && g.members[g.primary] == member:
		k.failover(g)
	case h == HealthUp && k.health[g.members[g.primary]] == HealthQuarantined:
		k.failover(g)
	}
}

// failover re-binds a group to its next healthy member: prefer Up members,
// fall back to Degraded ones, scanning from the slot after the failed
// primary in registration order. With no survivor the binding is left
// alone — clients bounce off the fenced tile and retry until a member
// recovers.
func (k *Kernel) failover(g *replicaGroup) {
	next := -1
	for _, want := range []Health{HealthUp, HealthDegraded} {
		for i := 1; i <= len(g.members); i++ {
			c := (g.primary + i) % len(g.members)
			if k.health[g.members[c]] == want {
				next = c
				break
			}
		}
		if next >= 0 {
			break
		}
	}
	if next < 0 {
		return
	}
	old := g.members[g.primary]
	g.primary = next
	tile := k.services[g.members[next]]
	k.events.Record(k.engine.Now(), obs.EvFailover,
		fmt.Sprintf("primary %d %s", old, k.health[old]),
		fmt.Sprintf("group %d re-bound %d -> %d (tile %d)",
			g.svc, old, g.members[next], tile))
	// Fence in-flight sends against the old primary: the generation bump
	// bounces them with ERevoked at the sender's monitor (retryable, budget
	// exempt), then the fresh capability lands in the same granted slots.
	k.checker.Revoke(cap.KindEndpoint, uint32(g.svc))
	k.services[g.svc] = tile
	k.broadcastName(g.svc, tile)
	fresh := k.endpointCap(g.svc)
	for i := range k.grants {
		gr := &k.grants[i]
		if gr.c.Kind == cap.KindEndpoint && gr.c.Object == uint32(g.svc) {
			gr.c = fresh
			k.sendCtl(gr.tile, msg.TCtlInstallCap,
				msg.EncodeInstallCapReq(msg.InstallCapReq{
					Slot: uint32(gr.slot), Cap: fresh.Encode(),
				}))
		}
	}
	k.failoversC.Inc()
}

// dropGroups removes every replica group owned by app (unload/rollback).
func (k *Kernel) dropGroups(app string) {
	keptOrder := k.groupOrder[:0]
	for _, gsvc := range k.groupOrder {
		g := k.groups[gsvc]
		if g.app != app {
			keptOrder = append(keptOrder, gsvc)
			continue
		}
		for _, m := range g.members {
			delete(k.memberGroup, m)
			delete(k.health, m)
		}
		delete(k.groups, gsvc)
		delete(k.services, gsvc)
		delete(k.svcOwner, gsvc)
		k.bindAll(gsvc, msg.NoTile)
	}
	k.groupOrder = keptOrder
}

// MemberHealth reports a member service's current verdict (HealthUp for
// services outside any group).
func (k *Kernel) MemberHealth(svc msg.ServiceID) Health { return k.health[svc] }

// Failovers reports how many group re-binds the kernel has performed.
func (k *Kernel) Failovers() uint64 { return k.failoversC.Value() }

// GroupPrimary resolves a group to its current primary member service.
func (k *Kernel) GroupPrimary(groupSvc msg.ServiceID) (msg.ServiceID, bool) {
	g, ok := k.groups[groupSvc]
	if !ok {
		return msg.SvcInvalid, false
	}
	return g.members[g.primary], true
}

// Directory reports every replica group with per-member tile and health, in
// registration order — the kernel's service directory for observability.
func (k *Kernel) Directory() []DirEntry {
	out := make([]DirEntry, 0, len(k.groupOrder))
	for _, gsvc := range k.groupOrder {
		g := k.groups[gsvc]
		e := DirEntry{Svc: gsvc, App: g.app}
		for i, m := range g.members {
			e.Members = append(e.Members, ReplicaHealth{
				Svc: m, Tile: k.services[m], Health: k.health[m],
				Primary: i == g.primary,
			})
		}
		out = append(out, e)
	}
	return out
}

// DegradedTiles lists tiles hosting Degraded group members, in ID order
// (heatmap annotation).
func (k *Kernel) DegradedTiles() []msg.TileID {
	var out []msg.TileID
	for m, h := range k.health {
		if h != HealthDegraded {
			continue
		}
		if t, ok := k.services[m]; ok {
			out = append(out, t)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
