package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"strings"
	"testing"

	"apiary/internal/accel"
	"apiary/internal/fault"
	"apiary/internal/msg"
	"apiary/internal/noc"
)

// ckptAccel is a minimal checkpointable service: counts requests, echoes a
// reply carrying the count, and externalizes the counter through the
// Checkpointable contract. stuck makes it refuse to quiesce forever (the
// quiesce-timeout abort case).
type ckptAccel struct {
	name     string
	val      uint32
	out      []*msg.Message
	stuck    bool
	restored int
}

func (c *ckptAccel) Name() string  { return c.name }
func (c *ckptAccel) Contexts() int { return 1 }
func (c *ckptAccel) Reset()        { c.val = 0; c.out = nil }
func (c *ckptAccel) Tick(p accel.Port) {
	if m, ok := p.Recv(); ok && m.Type == msg.TRequest {
		c.val++
		var u [4]byte
		binary.LittleEndian.PutUint32(u[:], c.val)
		c.out = append(c.out, m.Reply(msg.TReply, u[:]))
	}
	if len(c.out) > 0 && p.Send(c.out[0]) == msg.EOK {
		c.out = c.out[1:]
	}
}
func (c *ckptAccel) Quiescent() bool { return !c.stuck && len(c.out) == 0 }
func (c *ckptAccel) SaveContext(ctx uint8) ([]byte, error) {
	if ctx != 0 {
		return nil, msg.ENoContext.Error()
	}
	var u [4]byte
	binary.LittleEndian.PutUint32(u[:], c.val)
	return u[:], nil
}
func (c *ckptAccel) RestoreContext(ctx uint8, state []byte) error {
	if ctx != 0 {
		return msg.ENoContext.Error()
	}
	if len(state) != 4 {
		return msg.EBadMsg.Error()
	}
	c.val = binary.LittleEndian.Uint32(state)
	c.restored++
	return nil
}

func TestSnapshotRoundTrip(t *testing.T) {
	snap := &Snapshot{
		App: "demo",
		Accels: []AccelSnapshot{
			{Name: "a", Contexts: [][]byte{{1, 2, 3}, nil, {}}, SegBytes: []byte{9, 9}},
			{Name: "b"}, // stateless accel: no contexts, no segment
		},
	}
	blob := EncodeSnapshot(snap)
	got, err := DecodeSnapshot(blob)
	if err != nil {
		t.Fatal(err)
	}
	if got.App != "demo" || len(got.Accels) != 2 {
		t.Fatalf("decoded = %+v", got)
	}
	a := got.Accels[0]
	// Nil and empty contexts both normalize to absent — and back to nil.
	if a.Name != "a" || len(a.Contexts) != 3 ||
		!bytes.Equal(a.Contexts[0], []byte{1, 2, 3}) ||
		a.Contexts[1] != nil || a.Contexts[2] != nil ||
		!bytes.Equal(a.SegBytes, []byte{9, 9}) {
		t.Fatalf("accel a = %+v", a)
	}
	if b := got.Accels[1]; b.Contexts != nil || b.SegBytes != nil {
		t.Fatalf("accel b = %+v", b)
	}
	// Encode(Decode(blob)) is a fixed point — the wire format is canonical.
	if !bytes.Equal(EncodeSnapshot(got), blob) {
		t.Fatal("re-encode is not a fixed point")
	}
}

func TestSnapshotDecoderRejects(t *testing.T) {
	valid := EncodeSnapshot(&Snapshot{
		App:    "x",
		Accels: []AccelSnapshot{{Name: "a", Contexts: [][]byte{{7}}}},
	})
	cases := map[string][]byte{
		"empty":       {},
		"short magic": []byte("AP"),
		"bad magic":   []byte("NOPE\x01\x00"),
		"bad version": append([]byte(snapMagic), 0xFF, 0xFF),
		"truncated":   valid[:len(valid)-1],
		"trailing":    append(append([]byte(nil), valid...), 0),
	}
	// Corrupt the accel count up to the max+1 (offset: magic + ver + "x").
	huge := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint16(huge[len(snapMagic)+2+2+1:], maxSnapAccels+1)
	cases["accel count over cap"] = huge
	// Presence byte outside {0,1}.
	bad := append([]byte(nil), valid...)
	bad[len(bad)-7] = 2 // context blob presence byte
	cases["bad presence byte"] = bad
	for name, blob := range cases {
		if _, err := DecodeSnapshot(blob); !errors.Is(err, ErrSnapshot) {
			t.Errorf("%s: err = %v, want ErrSnapshot", name, err)
		}
	}
}

func TestCheckpointRequiresQuiescence(t *testing.T) {
	s := boot(t)
	ck := &ckptAccel{name: "ck"}
	if _, err := s.Kernel.LoadApp(AppSpec{
		Name: "svc",
		Accels: []AppAccel{
			{Name: "ck", New: func() accel.Accelerator { return ck }, Service: 40},
		},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Kernel.Checkpoint("svc"); err == nil {
		t.Fatal("checkpoint of a running app accepted")
	}
	if err := s.Kernel.QuiesceApp("svc"); err != nil {
		t.Fatal(err)
	}
	if !s.RunUntil(func() bool { return s.Kernel.AppQuiescent("svc") }, 100_000) {
		t.Fatal("app never quiesced")
	}
	ck.val = 77
	snap, err := s.Kernel.Checkpoint("svc")
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Accels) != 1 || len(snap.Accels[0].Contexts) != 1 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if got := binary.LittleEndian.Uint32(snap.Accels[0].Contexts[0]); got != 77 {
		t.Fatalf("captured val = %d, want 77", got)
	}
	// ResumeApp returns the shells to Running without a Reset.
	if err := s.Kernel.ResumeApp("svc"); err != nil {
		t.Fatal(err)
	}
	if !s.RunUntil(func() bool {
		for _, p := range s.Kernel.App("svc").Placed {
			if s.Kernel.Shell(p.Tile).State() != accel.Running {
				return false
			}
		}
		return true
	}, 10_000) {
		t.Fatal("app never resumed")
	}
	if ck.val != 77 {
		t.Fatal("resume lost state")
	}
}

func TestMigrateAppOnBoard(t *testing.T) {
	s := boot(t)
	var cur *ckptAccel
	if _, err := s.Kernel.LoadApp(AppSpec{
		Name:    "svc",
		Exports: []msg.ServiceID{40},
		Accels: []AppAccel{
			{Name: "ck", Service: 40, MemBytes: 4096,
				New: func() accel.Accelerator {
					cur = &ckptAccel{name: "ck"}
					return cur
				}},
		},
	}); err != nil {
		t.Fatal(err)
	}
	first := cur
	oldTile := s.Kernel.App("svc").Placed[0].Tile
	driver := &progAccel{name: "drv"}
	if _, err := s.Kernel.LoadApp(AppSpec{
		Name: "client",
		Accels: []AppAccel{
			{Name: "drv", New: func() accel.Accelerator { return driver },
				Connect: []msg.ServiceID{40}},
		},
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		driver.push(&msg.Message{Type: msg.TRequest, DstSvc: 40, Seq: uint32(i)})
	}
	if !s.RunUntil(func() bool { return len(driver.inbox) >= 3 }, 200_000) {
		t.Fatalf("warmup incomplete: %d replies", len(driver.inbox))
	}

	if err := s.Kernel.MigrateApp("svc"); err != nil {
		t.Fatal(err)
	}
	if err := s.Kernel.MigrateApp("svc"); err == nil {
		t.Fatal("concurrent migration of the same app accepted")
	}
	if !s.RunUntil(func() bool { return s.Kernel.MigrationsDone() == 1 }, 2_000_000) {
		t.Fatalf("migration incomplete: done=%d aborts=%d",
			s.Kernel.MigrationsDone(), s.Kernel.MigrationAborts())
	}
	if s.Kernel.MigrationAborts() != 0 || s.Kernel.Migrating("svc") {
		t.Fatalf("aborts=%d migrating=%v", s.Kernel.MigrationAborts(), s.Kernel.Migrating("svc"))
	}
	// The reload built a fresh accelerator in a fresh region and restored
	// the counter into it through the snapshot.
	if cur == first {
		t.Fatal("accelerator instance not rebuilt")
	}
	if cur.val != 3 || cur.restored != 1 {
		t.Fatalf("restored val=%d restored=%d, want 3/1", cur.val, cur.restored)
	}
	if newTile := s.Kernel.App("svc").Placed[0].Tile; newTile == oldTile {
		t.Fatalf("migration reused tile %d", newTile)
	}
	// The re-minted endpoint serves post-migration traffic: the counter
	// continues from the restored value, not from zero. (Run a little
	// first: the TCtlInstallCap carrying the fresh capability is still on
	// the management plane when the migration is declared done; a real
	// client's ERevoked bounce is retryable and rides the gap out.)
	s.Run(1_000)
	driver.push(&msg.Message{Type: msg.TRequest, DstSvc: 40, Seq: 9})
	if !s.RunUntil(func() bool { return len(driver.inbox) >= 4 }, 200_000) {
		t.Fatalf("post-migration request unanswered (codes=%v)", driver.codes)
	}
	last := driver.inbox[len(driver.inbox)-1]
	if last.Type != msg.TReply || binary.LittleEndian.Uint32(last.Payload) != 4 {
		t.Fatalf("post-migration reply = %+v", last)
	}
}

func TestMigrateQuiesceTimeoutAborts(t *testing.T) {
	s := boot(t)
	ck := &ckptAccel{name: "ck", stuck: true}
	if _, err := s.Kernel.LoadApp(AppSpec{
		Name: "svc",
		Accels: []AppAccel{
			{Name: "ck", New: func() accel.Accelerator { return ck }, Service: 40},
		},
	}); err != nil {
		t.Fatal(err)
	}
	ck.val = 55
	if err := s.Kernel.MigrateApp("svc"); err != nil {
		t.Fatal(err)
	}
	if !s.RunUntil(func() bool { return s.Kernel.MigrationAborts() == 1 }, 400_000) {
		t.Fatal("quiesce timeout never fired")
	}
	if s.Kernel.MigrationsDone() != 0 || s.Kernel.Migrating("svc") {
		t.Fatal("aborted migration still accounted as live or done")
	}
	// Source authoritative: same instance, same state, back to Running.
	tile := s.Kernel.App("svc").Placed[0].Tile
	if !s.RunUntil(func() bool {
		return s.Kernel.Shell(tile).State() == accel.Running
	}, 10_000) {
		t.Fatal("source never resumed")
	}
	if ck.val != 55 {
		t.Fatalf("val = %d after abort, want 55", ck.val)
	}
}

func TestRestoreRejectsOversizedSegment(t *testing.T) {
	s := boot(t)
	snap := &Snapshot{App: "svc", Accels: []AccelSnapshot{
		{Name: "ck", SegBytes: make([]byte, 8192)},
	}}
	spec := AppSpec{
		Name: "svc",
		Accels: []AppAccel{
			{Name: "ck", MemBytes: 4096, Service: 40,
				New: func() accel.Accelerator { return &ckptAccel{name: "ck"} }},
		},
	}
	_, err := s.Kernel.RestoreApp(spec, snap)
	if err == nil || !strings.Contains(err.Error(), "snapshot segment is 8192 bytes") {
		t.Fatalf("err = %v", err)
	}
	// Nothing partially applied stays live.
	if s.Kernel.App("svc") != nil {
		t.Fatal("half-restored app left loaded")
	}
	if _, ok := s.Kernel.ServiceTile(40); ok {
		t.Fatal("service of failed restore left registered")
	}
}

func TestRestoreRejectsContextOverflow(t *testing.T) {
	s := boot(t)
	snap := &Snapshot{App: "svc", Accels: []AccelSnapshot{
		{Name: "ck", Contexts: [][]byte{{0, 0, 0, 0}, {1, 0, 0, 0}}},
	}}
	spec := AppSpec{
		Name: "svc",
		Accels: []AppAccel{
			{Name: "ck", Service: 40,
				New: func() accel.Accelerator { return &ckptAccel{name: "ck"} }},
		},
	}
	if _, err := s.Kernel.RestoreApp(spec, snap); err == nil ||
		!strings.Contains(err.Error(), "snapshot has 2 contexts") {
		t.Fatalf("err = %v", err)
	}
	if s.Kernel.App("svc") != nil {
		t.Fatal("half-restored app left loaded")
	}
}

func TestChaosMigrateFault(t *testing.T) {
	// A chaos plan can fire live migration as a fault event — checkpoint/
	// restore under fire. The plan targets tile 2: the first placeable tile
	// (kernel=0, memory=1), where the app below deterministically lands.
	plan, err := fault.ParsePlan([]byte("migrate at=5000 tile=2\n"))
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSystem(SystemConfig{Dims: noc.Dims{W: 3, H: 3}, FaultPlan: plan})
	if err != nil {
		t.Fatal(err)
	}
	ck := &ckptAccel{name: "ck"}
	app, err := s.Kernel.LoadApp(AppSpec{
		Name: "svc",
		Accels: []AppAccel{
			{Name: "ck", New: func() accel.Accelerator { return ck }, Service: 40},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if app.Placed[0].Tile != 2 {
		t.Fatalf("app landed on tile %d, plan targets 2", app.Placed[0].Tile)
	}
	if !s.RunUntil(func() bool { return s.Kernel.MigrationsDone() == 1 }, 2_000_000) {
		t.Fatalf("chaos migrate never completed: injected=%d aborts=%d",
			s.Fault.Injected(), s.Kernel.MigrationAborts())
	}
	if newTile := s.Kernel.App("svc").Placed[0].Tile; newTile == 2 {
		t.Fatal("migration reused the faulted region")
	}
}
