// Package core implements the Apiary microkernel: boot, tile and process
// tables, the service registry, the syscall protocol, application
// loading/placement and fault policy (paper §4). The kernel occupies tile 0;
// like everything else in Apiary it is reached by message passing — there
// is no privileged side channel for applications.
package core

import (
	"encoding/binary"

	"apiary/internal/msg"
)

// Syscall opcodes. A syscall is a TRequest to SvcKernel whose payload
// starts with the opcode byte; the reply is a TReply whose payload echoes
// the opcode followed by result fields, or a TError.
const (
	OpAllocSeg    byte = 1 // size u64 -> segID u32, capSlot u32
	OpFreeSeg     byte = 2 // segID u32 -> ()
	OpRegisterSvc byte = 3 // svc u16 -> ()
	OpLookupSvc   byte = 4 // svc u16 -> tile u16
	OpConnect     byte = 5 // svc u16 -> capSlot u32
	OpGrantSeg    byte = 6 // segID u32, svc u16, rights u8 -> ()
)

// EncodeAllocSeg builds an OpAllocSeg payload.
func EncodeAllocSeg(size uint64) []byte {
	b := make([]byte, 9)
	b[0] = OpAllocSeg
	binary.LittleEndian.PutUint64(b[1:], size)
	return b
}

// EncodeFreeSeg builds an OpFreeSeg payload.
func EncodeFreeSeg(segID uint32) []byte {
	b := make([]byte, 5)
	b[0] = OpFreeSeg
	binary.LittleEndian.PutUint32(b[1:], segID)
	return b
}

// EncodeRegisterSvc builds an OpRegisterSvc payload.
func EncodeRegisterSvc(svc msg.ServiceID) []byte {
	b := make([]byte, 3)
	b[0] = OpRegisterSvc
	binary.LittleEndian.PutUint16(b[1:], uint16(svc))
	return b
}

// EncodeLookupSvc builds an OpLookupSvc payload.
func EncodeLookupSvc(svc msg.ServiceID) []byte {
	b := make([]byte, 3)
	b[0] = OpLookupSvc
	binary.LittleEndian.PutUint16(b[1:], uint16(svc))
	return b
}

// EncodeConnect builds an OpConnect payload.
func EncodeConnect(svc msg.ServiceID) []byte {
	b := make([]byte, 3)
	b[0] = OpConnect
	binary.LittleEndian.PutUint16(b[1:], uint16(svc))
	return b
}

// EncodeGrantSeg builds an OpGrantSeg payload.
func EncodeGrantSeg(segID uint32, svc msg.ServiceID, rights uint8) []byte {
	b := make([]byte, 8)
	b[0] = OpGrantSeg
	binary.LittleEndian.PutUint32(b[1:], segID)
	binary.LittleEndian.PutUint16(b[5:], uint16(svc))
	b[7] = rights
	return b
}

// AllocSegReply is the decoded result of OpAllocSeg.
type AllocSegReply struct {
	SegID   uint32
	CapSlot uint32
}

// DecodeAllocSegReply parses an OpAllocSeg TReply payload.
func DecodeAllocSegReply(b []byte) (AllocSegReply, error) {
	if len(b) < 9 || b[0] != OpAllocSeg {
		return AllocSegReply{}, msg.EBadMsg.Error()
	}
	return AllocSegReply{
		SegID:   binary.LittleEndian.Uint32(b[1:]),
		CapSlot: binary.LittleEndian.Uint32(b[5:]),
	}, nil
}

// DecodeLookupSvcReply parses an OpLookupSvc TReply payload.
func DecodeLookupSvcReply(b []byte) (msg.TileID, error) {
	if len(b) < 3 || b[0] != OpLookupSvc {
		return msg.NoTile, msg.EBadMsg.Error()
	}
	return msg.TileID(binary.LittleEndian.Uint16(b[1:])), nil
}

// DecodeConnectReply parses an OpConnect TReply payload.
func DecodeConnectReply(b []byte) (uint32, error) {
	if len(b) < 5 || b[0] != OpConnect {
		return 0, msg.EBadMsg.Error()
	}
	return binary.LittleEndian.Uint32(b[1:]), nil
}
