package core

import (
	"fmt"
	"reflect"
	"testing"

	"apiary/internal/accel"
	"apiary/internal/apps"
	"apiary/internal/fault"
	"apiary/internal/monitor"
	"apiary/internal/msg"
	"apiary/internal/noc"
	"apiary/internal/sim"
)

// groupEcho is a minimal concurrent-only service: it echoes requests and
// cannot contain faults per-context, so a forced fault fail-stops its tile —
// exactly the replica-death case the failover machinery exists for.
type groupEcho struct {
	accel.TileLocalMarker
	name string
}

func (a *groupEcho) Name() string  { return a.name }
func (a *groupEcho) Contexts() int { return 1 }
func (a *groupEcho) Reset()        {}
func (a *groupEcho) Tick(p accel.Port) {
	for i := 0; i < 4; i++ {
		m, ok := p.Recv()
		if !ok {
			return
		}
		if m.Type == msg.TRequest {
			p.Send(m.Reply(msg.TReply, m.Payload))
		}
	}
}

const (
	svcRepA  = msg.FirstUserService
	svcRepB  = msg.FirstUserService + 1
	svcRepC  = msg.FirstUserService + 2
	svcGroup = msg.FirstUserService + 10
)

// loadGroupApp loads n echo replicas (tiles 2, 3, ...) plus a group over
// them, with no client.
func loadGroupApp(t *testing.T, s *System, n int) {
	t.Helper()
	spec := AppSpec{Name: "ha", Restart: true}
	members := []msg.ServiceID{}
	for i := 0; i < n; i++ {
		svc := msg.FirstUserService + msg.ServiceID(i)
		name := fmt.Sprintf("rep%d", i)
		spec.Accels = append(spec.Accels, AppAccel{
			Name: name, Service: svc,
			New: func() accel.Accelerator { return &groupEcho{name: name} },
		})
		members = append(members, svc)
	}
	spec.Groups = []ReplicaGroupSpec{{Service: svcGroup, Members: members}}
	if _, err := s.Kernel.LoadApp(spec); err != nil {
		t.Fatal(err)
	}
}

func TestRegisterReplicaSetValidation(t *testing.T) {
	s := boot(t)
	loadGroupApp(t, s, 2)
	k := s.Kernel
	cases := []struct {
		name  string
		group msg.ServiceID
		mem   []msg.ServiceID
	}{
		{"reserved id", msg.SvcMemory, []msg.ServiceID{svcRepA}},
		{"name taken by service", svcRepA, []msg.ServiceID{svcRepB}},
		{"name taken by group", svcGroup, []msg.ServiceID{svcRepA}},
		{"no members", svcGroup + 1, nil},
		{"self reference", svcGroup + 1, []msg.ServiceID{svcGroup + 1}},
		{"duplicate member", svcGroup + 1, []msg.ServiceID{svcRepA, svcRepA}},
		{"unregistered member", svcGroup + 1, []msg.ServiceID{svcRepA, 999}},
		{"member is a group", svcGroup + 1, []msg.ServiceID{svcGroup}},
		{"member already grouped", svcGroup + 1, []msg.ServiceID{svcRepA}},
	}
	for _, c := range cases {
		if err := k.RegisterReplicaSet("ha", c.group, c.mem); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
	if len(k.Directory()) != 1 {
		t.Fatalf("directory grew on rejected registrations: %v", k.Directory())
	}
	if p, ok := k.GroupPrimary(svcGroup); !ok || p != svcRepA {
		t.Fatalf("primary = %d, want %d", p, svcRepA)
	}
	if tile, ok := k.ServiceTile(svcGroup); !ok || tile != 2 {
		t.Fatalf("group bound to tile %d, want 2", tile)
	}
}

func TestContainedFaultMarksDegraded(t *testing.T) {
	s := boot(t)
	// A preemptible member (KVStore) absorbs the fault per-context: the
	// tile keeps Running but its directory verdict drops to Degraded.
	spec := AppSpec{
		Name: "ha",
		Accels: []AppAccel{
			{Name: "kv", Service: svcRepA,
				New: func() accel.Accelerator { return apps.NewKVStore(2) }},
			{Name: "echo", Service: svcRepB,
				New: func() accel.Accelerator { return &groupEcho{name: "echo"} }},
		},
		Groups: []ReplicaGroupSpec{{Service: svcGroup,
			Members: []msg.ServiceID{svcRepA, svcRepB}}},
	}
	if _, err := s.Kernel.LoadApp(spec); err != nil {
		t.Fatal(err)
	}
	kvTile, _ := s.Kernel.ServiceTile(svcRepA)
	s.Kernel.Monitor(kvTile).ForceFault(0, accel.FaultSpurious)
	s.Run(5_000) // deliver the fault report to the kernel
	if h := s.Kernel.MemberHealth(svcRepA); h != HealthDegraded {
		t.Fatalf("health = %v, want degraded", h)
	}
	if s.Kernel.Shell(kvTile).State() != accel.Running {
		t.Fatal("contained fault fail-stopped the tile")
	}
	// Degraded demotes but does not evict: no failover, binding unchanged.
	if s.Kernel.Failovers() != 0 {
		t.Fatal("degraded primary triggered a failover")
	}
	if p, _ := s.Kernel.GroupPrimary(svcGroup); p != svcRepA {
		t.Fatalf("primary moved to %d", p)
	}
	if got := s.Kernel.DegradedTiles(); len(got) != 1 || got[0] != kvTile {
		t.Fatalf("DegradedTiles = %v, want [%d]", got, kvTile)
	}
}

// TestFailoverPreference walks the whole health lattice: fail the primary
// (prefer the Up member over the Degraded one), fail the new primary
// (Degraded is the target of last resort), fail everything (binding stays),
// then recover one member (the group self-heals onto it).
func TestFailoverPreference(t *testing.T) {
	s := boot(t)
	loadGroupApp(t, s, 3)
	k := s.Kernel
	tileA, _ := k.ServiceTile(svcRepA)
	tileB, _ := k.ServiceTile(svcRepB)
	tileC, _ := k.ServiceTile(svcRepC)

	k.setHealth(svcRepB, HealthDegraded)
	k.Monitor(tileA).ForceFault(0, accel.FaultSpurious) // concurrent-only: fail-stop
	s.Run(5_000)
	if p, _ := k.GroupPrimary(svcGroup); p != svcRepC {
		t.Fatalf("primary after A died = %d, want C (%d): degraded B preferred over up C", p, svcRepC)
	}
	if tile, _ := k.ServiceTile(svcGroup); tile != tileC {
		t.Fatalf("group bound to tile %d, want %d", tile, tileC)
	}

	k.quarantine(k.tiles[tileC], "test")
	if p, _ := k.GroupPrimary(svcGroup); p != svcRepB {
		t.Fatalf("primary after C died = %d, want degraded B (%d) as last resort", p, svcRepB)
	}

	k.quarantine(k.tiles[tileB], "test")
	if p, _ := k.GroupPrimary(svcGroup); p != svcRepB {
		t.Fatal("no-survivor failover moved the binding")
	}
	if k.Failovers() != 2 {
		t.Fatalf("failovers = %d, want 2", k.Failovers())
	}

	// Self-heal: the first member to come back Up takes the binding away
	// from the fenced primary.
	k.recoverTile(k.tiles[tileA])
	if p, _ := k.GroupPrimary(svcGroup); p != svcRepA {
		t.Fatalf("recovered member did not take over: primary = %d", p)
	}
	if tile, _ := k.ServiceTile(svcGroup); tile != tileA {
		t.Fatalf("group bound to tile %d after self-heal, want %d", tile, tileA)
	}
}

func TestUnloadDropsGroups(t *testing.T) {
	s := boot(t)
	loadGroupApp(t, s, 2)
	if err := s.Kernel.UnloadApp("ha"); err != nil {
		t.Fatal(err)
	}
	if d := s.Kernel.Directory(); len(d) != 0 {
		t.Fatalf("directory survives unload: %v", d)
	}
	if _, ok := s.Kernel.ServiceTile(svcGroup); ok {
		t.Fatal("group service still bound after unload")
	}
	// The freed names are reusable.
	loadGroupApp(t, s, 2)
	if d := s.Kernel.Directory(); len(d) != 1 {
		t.Fatalf("reload after unload: directory = %v", d)
	}
}

// failoverSnap is the determinism witness for an injected failover run.
type failoverSnap struct {
	Counters  map[string]uint64
	Responses int
	Errors    int
	Retried   int
	Primary   msg.ServiceID
	Dir       string
	Failovers uint64
	Quars     uint64
	Recovs    uint64
}

// runFailover boots a 4x4 board with watchdogs and a chaos plan, loads two
// echo replicas behind a group plus a resilient requester driving the group
// service, runs a fixed horizon, and fingerprints the end state.
func runFailover(t *testing.T, plan *fault.Plan, shards int, mode sim.ParallelMode,
	horizon sim.Cycle, total int, gap sim.Cycle) failoverSnap {
	t.Helper()
	s, err := NewSystem(SystemConfig{
		Dims: noc.Dims{W: 4, H: 4}, Seed: 1, Shards: shards,
		Detect: monitor.DefaultDetect, FaultPlan: plan,
	})
	if err != nil {
		t.Fatal(err)
	}
	client := apps.NewRequester(svcGroup, total, gap,
		func(int) []byte { return make([]byte, 64) }, nil)
	client.RetryLimit = 6
	client.RetryNacks = true
	client.BackoffBase = 512
	client.BackoffMax = 32_768
	spec := AppSpec{
		Name: "ha", Restart: true,
		Accels: []AppAccel{
			{Name: "repa", Service: svcRepA,
				New: func() accel.Accelerator { return &groupEcho{name: "repa"} }},
			{Name: "repb", Service: svcRepB,
				New: func() accel.Accelerator { return &groupEcho{name: "repb"} }},
			{Name: "client", New: func() accel.Accelerator { return client },
				Connect: []msg.ServiceID{svcGroup}},
		},
		Groups: []ReplicaGroupSpec{{Service: svcGroup,
			Members: []msg.ServiceID{svcRepA, svcRepB}}},
	}
	if _, err := s.Kernel.LoadApp(spec); err != nil {
		t.Fatal(err)
	}
	s.Engine.SetParallel(mode)
	s.Run(horizon)

	snap := failoverSnap{
		Counters:  map[string]uint64{},
		Responses: client.Responses(), Errors: client.Errors(), Retried: client.Retransmits(),
		Failovers: s.Kernel.Failovers(), Quars: s.Kernel.Quarantines(), Recovs: s.Kernel.Recoveries(),
		Dir: fmt.Sprint(s.Kernel.Directory()),
	}
	snap.Primary, _ = s.Kernel.GroupPrimary(svcGroup)
	for _, c := range s.Stats.Counters() {
		snap.Counters[c.Name] = c.Value()
	}
	s.Engine.Close()
	return snap
}

// killPrimaryPlan hangs tile 2 — first-fit puts replica A, the initial
// primary, there — long enough for the heartbeat watchdog to trip.
func killPrimaryPlan() *fault.Plan {
	return &fault.Plan{
		Seed: 7,
		Events: []fault.Event{
			{Kind: fault.KindHang, At: 80_000, Tile: 2, Dur: 120_000},
		},
	}
}

// TestFailoverDifferential is the tentpole proof for the failover path: kill
// the primary mid-run and the whole degradation cascade — watchdog verdict,
// quarantine, group re-bind, capability re-mint, client retries, recovery —
// lands bit-exactly on the same counters, client totals and directory at
// any shard count, serial or parallel. Zero healthy-tenant requests lost.
func TestFailoverDifferential(t *testing.T) {
	const (
		horizon = 600_000
		total   = 600
		gap     = 300
	)
	base := runFailover(t, killPrimaryPlan(), 1, sim.ParallelOff, horizon, total, gap)
	if base.Failovers < 1 || base.Quars < 1 {
		t.Fatalf("plan killed nothing: failovers=%d quarantines=%d", base.Failovers, base.Quars)
	}
	if base.Recovs < 1 {
		t.Fatalf("primary never recovered: recoveries=%d", base.Recovs)
	}
	if base.Primary != svcRepB {
		t.Fatalf("primary = %d, want %d (no fail-back after recovery)", base.Primary, svcRepB)
	}
	if base.Responses != total || base.Errors != 0 {
		t.Fatalf("lost requests across failover: responses=%d/%d errors=%d",
			base.Responses, total, base.Errors)
	}
	if base.Retried == 0 {
		t.Fatal("failover window cost no retransmits — the kill happened after the workload")
	}
	for _, shards := range []int{2, 8} {
		for _, mode := range []sim.ParallelMode{sim.ParallelOff, sim.ParallelOn} {
			shards, mode := shards, mode
			t.Run(fmt.Sprintf("shards=%d/mode=%v", shards, mode), func(t *testing.T) {
				got := runFailover(t, killPrimaryPlan(), shards, mode, horizon, total, gap)
				if !reflect.DeepEqual(got, base) {
					for k, v := range base.Counters {
						if got.Counters[k] != v {
							t.Errorf("counter %s = %d, want %d", k, got.Counters[k], v)
						}
					}
					got.Counters, base.Counters = nil, nil
					t.Errorf("snapshots differ:\n got %+v\nwant %+v", got, base)
				}
			})
		}
	}
}

// TestFailoverSoak drives repeated failover/recovery cycles — primary dies,
// group re-binds, primary recovers, *new* primary dies, group re-binds back
// — from three seeds, requiring serial and sharded runs to agree exactly.
func TestFailoverSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak")
	}
	for _, seed := range []uint64{2, 3, 5} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := sim.NewRNG(seed)
			plan := &fault.Plan{
				Seed: seed,
				Events: []fault.Event{
					{Kind: fault.KindHang, At: sim.Cycle(60_000 + rng.Intn(40_000)),
						Tile: 2, Dur: sim.Cycle(100_000 + rng.Intn(50_000))},
					{Kind: fault.KindHang, At: sim.Cycle(500_000 + rng.Intn(60_000)),
						Tile: 3, Dur: sim.Cycle(100_000 + rng.Intn(50_000))},
				},
			}
			base := runFailover(t, plan, 1, sim.ParallelOff, 1_000_000, 1200, 600)
			if base.Failovers < 2 {
				t.Fatalf("wanted repeated failover cycles, got %d", base.Failovers)
			}
			if base.Responses != 1200 || base.Errors != 0 {
				t.Fatalf("lost requests: responses=%d errors=%d", base.Responses, base.Errors)
			}
			got := runFailover(t, plan, 4, sim.ParallelOn, 1_000_000, 1200, 600)
			if !reflect.DeepEqual(got, base) {
				t.Errorf("serial and sharded soak disagree:\n got %+v\nwant %+v", got, base)
			}
		})
	}
}
