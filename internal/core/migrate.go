package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"apiary/internal/accel"
	"apiary/internal/cap"
	"apiary/internal/memseg"
	"apiary/internal/msg"
	"apiary/internal/obs"
	"apiary/internal/sim"
)

// This file implements checkpoint/restore and kernel-driven live migration:
// quiesce an application's tiles over the management plane (a *healthy*
// drain — in-flight replies are still delivered, new requests bounce with
// the retryable EQuiescing so client backoff absorbs the window), serialize
// its architectural state through the Checkpointable contract into a
// versioned snapshot blob, tear the old placement down gently (generation
// bump, never RevokeObject — granted slots survive for the re-mint, exactly
// as in quarantine), and after the partial-reconfiguration delay reload the
// app in a new region, restore every context and segment, re-mint the
// endpoint capabilities at the new generation into the surviving client
// slots, and resume. A quiesce that times out aborts cleanly: TCtlResume
// un-quiesces the shells without a Reset, so the source stays authoritative
// with no state loss.

// Quiesce/migration timing. The poll interval bounds how often the kernel
// re-checks quiescence; the timeout bounds the retry window clients ride
// out before the kernel gives up and resumes the source.
const (
	quiescePollCycles sim.Cycle = 64
	quiesceTimeout    sim.Cycle = 200_000
)

// migrHold parks a tile between detach and reload so the reload prefers a
// fresh region. Held tiles are invisible to freeTiles and released when the
// migration completes or fails.
const migrHold = "!migrating"

// SegRefSetter is implemented by accelerators whose logic holds a segment
// capability reference (e.g. the KV store's snapshot segment). The kernel
// re-points the reference after migration: the slot number is architectural
// per-placement state that the snapshot deliberately does not carry.
type SegRefSetter interface {
	SetSegRef(ref uint32)
}

// AccelSnapshot is one accelerator instance's captured state.
type AccelSnapshot struct {
	Name     string
	Contexts [][]byte // per-context Checkpointable blobs (nil = no state)
	SegBytes []byte   // pre-allocated segment contents (nil = no segment)
}

// Snapshot is a quiescent application's complete architectural state. The
// manifest (AppSpec) is deliberately not part of it: constructors are code,
// not state, and the restoring side supplies its own spec.
type Snapshot struct {
	App    string
	Accels []AccelSnapshot
}

// Snapshot wire format: a versioned, length-prefixed blob safe to feed to
// an untrusted decoder. Every length is bounds-checked against what remains
// and against hard caps, so DecodeSnapshot on arbitrary bytes returns an
// error — never a panic, never a partially-applied restore.
const (
	snapMagic   = "APSN"
	snapVersion = 1

	maxSnapAccels   = 4096
	maxSnapContexts = 256
	maxSnapField    = 1 << 26 // 64 MiB per context/segment field
)

// ErrSnapshot is wrapped by every DecodeSnapshot failure.
var ErrSnapshot = errors.New("core: malformed snapshot")

// EncodeSnapshot serializes a snapshot into the versioned wire blob.
func EncodeSnapshot(s *Snapshot) []byte {
	var out []byte
	out = append(out, snapMagic...)
	out = appendU16(out, snapVersion)
	out = appendStr(out, s.App)
	out = appendU16(out, uint16(len(s.Accels)))
	for _, a := range s.Accels {
		out = appendStr(out, a.Name)
		out = appendU16(out, uint16(len(a.Contexts)))
		for _, c := range a.Contexts {
			out = appendBlob(out, c)
		}
		out = appendBlob(out, a.SegBytes)
	}
	return out
}

func appendU16(b []byte, v uint16) []byte {
	var u [2]byte
	binary.LittleEndian.PutUint16(u[:], v)
	return append(b, u[0], u[1])
}

func appendStr(b []byte, s string) []byte {
	b = appendU16(b, uint16(len(s)))
	return append(b, s...)
}

// appendBlob writes presence(1) + len(4) + bytes. Nil and empty slices both
// encode as absent and round-trip back to nil — the encoding is canonical,
// so Encode(Decode(blob)) is a fixed point.
func appendBlob(b, p []byte) []byte {
	if len(p) == 0 {
		return append(b, 0)
	}
	b = append(b, 1)
	var u [4]byte
	binary.LittleEndian.PutUint32(u[:], uint32(len(p)))
	b = append(b, u[:]...)
	return append(b, p...)
}

// snapReader is a bounds-checked cursor over a snapshot blob.
type snapReader struct {
	b   []byte
	off int
}

func (r *snapReader) u16() (uint16, error) {
	if r.off+2 > len(r.b) {
		return 0, ErrSnapshot
	}
	v := binary.LittleEndian.Uint16(r.b[r.off:])
	r.off += 2
	return v, nil
}

func (r *snapReader) u32() (uint32, error) {
	if r.off+4 > len(r.b) {
		return 0, ErrSnapshot
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v, nil
}

func (r *snapReader) take(n int) ([]byte, error) {
	if n < 0 || r.off+n > len(r.b) {
		return nil, ErrSnapshot
	}
	p := r.b[r.off : r.off+n]
	r.off += n
	return p, nil
}

func (r *snapReader) str() (string, error) {
	n, err := r.u16()
	if err != nil {
		return "", err
	}
	p, err := r.take(int(n))
	if err != nil {
		return "", err
	}
	return string(p), nil
}

func (r *snapReader) blob() ([]byte, error) {
	p, err := r.take(1)
	if err != nil {
		return nil, err
	}
	if p[0] == 0 {
		return nil, nil
	}
	if p[0] != 1 {
		return nil, ErrSnapshot
	}
	n, err := r.u32()
	if err != nil {
		return nil, err
	}
	if n > maxSnapField {
		return nil, ErrSnapshot
	}
	raw, err := r.take(int(n))
	if err != nil {
		return nil, err
	}
	return append([]byte(nil), raw...), nil
}

// DecodeSnapshot parses a snapshot blob. Arbitrary input yields an error;
// the returned snapshot is fully built before it is returned, so a decode
// failure never leaks a half-parsed result.
func DecodeSnapshot(b []byte) (*Snapshot, error) {
	r := &snapReader{b: b}
	magic, err := r.take(len(snapMagic))
	if err != nil || string(magic) != snapMagic {
		return nil, ErrSnapshot
	}
	ver, err := r.u16()
	if err != nil {
		return nil, err
	}
	if ver != snapVersion {
		return nil, fmt.Errorf("%w: version %d (want %d)", ErrSnapshot, ver, snapVersion)
	}
	s := &Snapshot{}
	if s.App, err = r.str(); err != nil {
		return nil, err
	}
	nAccels, err := r.u16()
	if err != nil {
		return nil, err
	}
	if int(nAccels) > maxSnapAccels {
		return nil, ErrSnapshot
	}
	for i := 0; i < int(nAccels); i++ {
		var a AccelSnapshot
		if a.Name, err = r.str(); err != nil {
			return nil, err
		}
		nCtx, err := r.u16()
		if err != nil {
			return nil, err
		}
		if int(nCtx) > maxSnapContexts {
			return nil, ErrSnapshot
		}
		for c := 0; c < int(nCtx); c++ {
			blob, err := r.blob()
			if err != nil {
				return nil, err
			}
			a.Contexts = append(a.Contexts, blob)
		}
		if a.SegBytes, err = r.blob(); err != nil {
			return nil, err
		}
		s.Accels = append(s.Accels, a)
	}
	if r.off != len(b) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrSnapshot, len(b)-r.off)
	}
	return s, nil
}

// SetDRAM attaches the board's memory channel so checkpoints can capture
// segment contents at a quiescent point.
func (k *Kernel) SetDRAM(d *memseg.DRAM) { k.dram = d }

// QuiesceApp starts a healthy drain of every tile the app occupies: the
// monitors flip their shells to Quiescing over the management plane.
// In-flight replies keep flowing; new requests bounce with EQuiescing.
func (k *Kernel) QuiesceApp(name string) error {
	app, ok := k.apps[name]
	if !ok {
		return fmt.Errorf("core: app %q not loaded", name)
	}
	for _, p := range app.Placed {
		k.sendCtl(p.Tile, msg.TCtlQuiesce, nil)
	}
	return nil
}

// ResumeApp un-quiesces the app's tiles: TCtlResume on a Quiescing shell
// returns it to Running *without* a Reset, so an aborted migration leaves
// the source authoritative with all state intact. Quarantined tiles are
// skipped — reviving them belongs to the recovery path.
func (k *Kernel) ResumeApp(name string) error {
	app, ok := k.apps[name]
	if !ok {
		return fmt.Errorf("core: app %q not loaded", name)
	}
	for _, p := range app.Placed {
		if k.quarantined[p.Tile] {
			continue
		}
		k.sendCtl(p.Tile, msg.TCtlResume, nil)
	}
	return nil
}

// AppQuiescent reports whether every tile of the app has drained: shells in
// Quiescing with empty admission queues and accelerator-level quiescence
// (no in-flight sends or memory ops).
func (k *Kernel) AppQuiescent(name string) bool {
	app, ok := k.apps[name]
	if !ok {
		return false
	}
	return k.appQuiescent(app)
}

func (k *Kernel) appQuiescent(app *App) bool {
	for _, p := range app.Placed {
		sh := k.tiles[p.Tile].shell
		if sh == nil || !sh.Quiescent() {
			return false
		}
	}
	return true
}

// Checkpoint captures a quiescent app's architectural state: every
// Checkpointable context plus the raw contents of each pre-allocated
// segment (read synchronously — the transfer cost is charged by the
// migration's PR delay, or by the cross-board link budget).
func (k *Kernel) Checkpoint(name string) (*Snapshot, error) {
	app, ok := k.apps[name]
	if !ok {
		return nil, fmt.Errorf("core: app %q not loaded", name)
	}
	if !k.appQuiescent(app) {
		return nil, fmt.Errorf("core: app %q is not quiescent", name)
	}
	snap := &Snapshot{App: name}
	for _, p := range app.Placed {
		ts := k.tiles[p.Tile]
		as := AccelSnapshot{Name: p.Name}
		logic := ts.shell.Accelerator()
		if cp, ok := logic.(accel.Checkpointable); ok {
			for c := 0; c < logic.Contexts(); c++ {
				st, err := cp.SaveContext(uint8(c))
				if err != nil {
					return nil, fmt.Errorf("core: checkpoint %s/%s ctx %d: %w",
						name, p.Name, c, err)
				}
				as.Contexts = append(as.Contexts, st)
			}
		}
		if p.SegID != 0 && k.dram != nil {
			if seg, ok := k.alloc.Lookup(memseg.SegID(p.SegID)); ok {
				as.SegBytes = k.dram.Peek(seg.Base, int(seg.Size))
			}
		}
		snap.Accels = append(snap.Accels, as)
	}
	return snap, nil
}

// RestoreApp loads the app from spec and applies a snapshot: contexts are
// restored through the Checkpointable contract, segment bytes land in the
// freshly allocated segments, and segment references are re-pointed. A
// restore failure (snapshot larger than the new region's resources, context
// mismatch) unloads the half-restored app and reports the error — nothing
// partially applied stays live.
func (k *Kernel) RestoreApp(spec AppSpec, snap *Snapshot) (*App, error) {
	app, err := k.LoadApp(spec)
	if err != nil {
		return nil, err
	}
	if err := k.applySnapshot(app, snap); err != nil {
		_ = k.UnloadApp(spec.Name)
		return nil, err
	}
	return app, nil
}

func (k *Kernel) applySnapshot(app *App, snap *Snapshot) error {
	byName := map[string]AccelSnapshot{}
	for _, as := range snap.Accels {
		byName[as.Name] = as
	}
	for i, p := range app.Placed {
		as, ok := byName[p.Name]
		if !ok {
			continue
		}
		ts := k.tiles[p.Tile]
		logic := ts.shell.Accelerator()
		if len(as.Contexts) > 0 {
			cp, ok := logic.(accel.Checkpointable)
			if !ok {
				return fmt.Errorf("core: restore %s/%s: accelerator is not checkpointable",
					app.Spec.Name, p.Name)
			}
			if len(as.Contexts) > logic.Contexts() {
				return fmt.Errorf("core: restore %s/%s: snapshot has %d contexts, region has %d",
					app.Spec.Name, p.Name, len(as.Contexts), logic.Contexts())
			}
			for c, st := range as.Contexts {
				if st == nil {
					continue
				}
				if err := cp.RestoreContext(uint8(c), st); err != nil {
					return fmt.Errorf("core: restore %s/%s ctx %d: %w",
						app.Spec.Name, p.Name, c, err)
				}
			}
		}
		if len(as.SegBytes) > 0 {
			if p.SegID == 0 || k.dram == nil {
				return fmt.Errorf("core: restore %s/%s: snapshot carries %d segment bytes but the region has no segment",
					app.Spec.Name, p.Name, len(as.SegBytes))
			}
			seg, ok := k.alloc.Lookup(memseg.SegID(p.SegID))
			if !ok {
				return fmt.Errorf("core: restore %s/%s: segment %d vanished",
					app.Spec.Name, p.Name, p.SegID)
			}
			if uint64(len(as.SegBytes)) > seg.Size {
				return fmt.Errorf("core: restore %s/%s: snapshot segment is %d bytes, region segment holds %d",
					app.Spec.Name, p.Name, len(as.SegBytes), seg.Size)
			}
			k.dram.Poke(seg.Base, as.SegBytes)
			if sr, ok := logic.(SegRefSetter); ok {
				sr.SetSegRef(uint32(app.Placed[i].SegSlot))
			}
		}
	}
	return nil
}

// ownedServices lists the services owned by an app in ascending ID order —
// a deterministic iteration base for revocation and re-mint sweeps (map
// order would reorder management-plane messages and break bit-exactness).
func (k *Kernel) ownedServices(name string) []msg.ServiceID {
	var out []msg.ServiceID
	for svc, owner := range k.svcOwner {
		if owner == name {
			out = append(out, svc)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// detachApp is the gentle half of UnloadApp: endpoint generations are
// bumped (stale client sends bounce ERevoked locally — retryable, budget
// exempt) but granted slots and name bindings survive for the re-mint;
// segments are freed (their bytes already live in the snapshot); tiles are
// stopped, wiped and *held* so the reload lands in a fresh region. Returns
// the spec needed to reload and the held tiles.
func (k *Kernel) detachApp(name string) (AppSpec, []msg.TileID, error) {
	app, ok := k.apps[name]
	if !ok {
		return AppSpec{}, nil, fmt.Errorf("core: app %q not loaded", name)
	}
	appTiles := map[msg.TileID]bool{}
	for _, p := range app.Placed {
		appTiles[p.Tile] = true
	}

	// Fence stale endpoints (groups included) before dropping the group
	// records: the generation bump is what bounces in-window sends.
	svcs := k.ownedServices(name)
	for _, svc := range svcs {
		k.checker.Revoke(cap.KindEndpoint, uint32(svc))
	}
	k.dropGroups(name)
	for _, svc := range svcs {
		delete(k.services, svc)
		delete(k.svcOwner, svc)
		delete(k.exports, svc)
	}
	for _, svc := range app.Spec.Exports {
		delete(k.exports, svc)
	}

	// Segments: contents are in the snapshot; free and fence the IDs. Sorted
	// order keeps the allocator's hole list deterministic.
	var segIDs []uint32
	for segID, owner := range k.segOwner {
		if appTiles[owner] {
			segIDs = append(segIDs, segID)
		}
	}
	sort.Slice(segIDs, func(i, j int) bool { return segIDs[i] < segIDs[j] })
	for _, segID := range segIDs {
		_ = k.alloc.Free(memseg.SegID(segID))
		delete(k.segOwner, segID)
		k.checker.Revoke(cap.KindSegment, segID)
	}

	// Tiles: stop, detach, wipe, reclaim the region, and park under the
	// migration hold so the reload prefers fresh tiles.
	held := make([]msg.TileID, 0, len(app.Placed))
	for _, p := range app.Placed {
		ts := k.tiles[p.Tile]
		if ts.shell != nil {
			ts.shell.SetState(accel.Stopped)
		}
		ts.mon.DetachShell()
		for i := 0; i < ts.mon.Table().Slots(); i++ {
			ts.mon.Table().Remove(cap.Ref(i))
		}
		ts.accel, ts.svc = "", msg.SvcInvalid
		ts.app = migrHold
		ts.slotNo = firstDynamicSlot
		if k.regions != nil {
			k.regions[p.Tile].Clear()
		}
		held = append(held, p.Tile)
	}

	// Processes and grants on the app's tiles go; grants of the app's
	// endpoints installed on *client* tiles survive for the re-mint.
	kept := k.procs[:0]
	for _, pr := range k.procs {
		if !appTiles[pr.Tile] {
			kept = append(kept, pr)
		}
	}
	k.procs = kept
	keptGrants := k.grants[:0]
	for _, g := range k.grants {
		if !appTiles[g.tile] {
			keptGrants = append(keptGrants, g)
		}
	}
	k.grants = keptGrants

	spec := app.Spec
	delete(k.apps, name)
	return spec, held, nil
}

// releaseHeld returns migration-held tiles to the free pool.
func (k *Kernel) releaseHeld(tiles []msg.TileID) {
	for _, t := range tiles {
		if k.tiles[t].app == migrHold {
			k.tiles[t].app = ""
		}
	}
}

// remintApp installs the app's post-migration endpoint capabilities into
// every surviving granted slot, exactly as quarantine recovery does: same
// slots, new generation. Client requests that bounced ERevoked through the
// window start landing on the new region.
func (k *Kernel) remintApp(name string) {
	for _, svc := range k.ownedServices(name) {
		fresh := k.endpointCap(svc)
		for i := range k.grants {
			g := &k.grants[i]
			if g.c.Kind == cap.KindEndpoint && g.c.Object == uint32(svc) &&
				g.c.Gen != fresh.Gen {
				g.c = fresh
				k.sendCtl(g.tile, msg.TCtlInstallCap,
					msg.EncodeInstallCapReq(msg.InstallCapReq{
						Slot: uint32(g.slot), Cap: fresh.Encode(),
					}))
			}
		}
	}
}

// migration is one in-flight on-board migration.
type migration struct {
	app      string
	deadline sim.Cycle
}

// Migrating reports whether an on-board migration of app name is in flight.
func (k *Kernel) Migrating(name string) bool {
	_, ok := k.migrations[name]
	return ok
}

// MigrationsDone and MigrationAborts report lifetime counts.
func (k *Kernel) MigrationsDone() uint64  { return k.migDoneC.Value() }
func (k *Kernel) MigrationAborts() uint64 { return k.migAbortC.Value() }

// MigrateApp live-migrates a loaded app to a new region on this board:
// quiesce, checkpoint, gentle teardown, PR delay, reload + restore,
// re-mint, resume. The call returns once the quiesce is underway; the rest
// runs on the engine's event spine, so serial and sharded runs take
// identical decisions at identical cycles. A quiesce that cannot drain
// within the timeout aborts with the source resumed and authoritative.
func (k *Kernel) MigrateApp(name string) error {
	app, ok := k.apps[name]
	if !ok {
		return fmt.Errorf("core: app %q not loaded", name)
	}
	if _, busy := k.migrations[name]; busy {
		return fmt.Errorf("core: app %q is already migrating", name)
	}
	for _, p := range app.Placed {
		if k.quarantined[p.Tile] {
			return fmt.Errorf("core: app %q has quarantined tile %d", name, p.Tile)
		}
	}
	m := &migration{app: name, deadline: k.engine.Now() + quiesceTimeout}
	if k.migrations == nil {
		k.migrations = map[string]*migration{}
	}
	k.migrations[name] = m
	k.events.Record(k.engine.Now(), obs.EvMigrateStart, "migrate",
		fmt.Sprintf("app %q quiescing %d tiles", name, len(app.Placed)))
	for _, p := range app.Placed {
		k.sendCtl(p.Tile, msg.TCtlQuiesce, nil)
	}
	k.engine.After(quiescePollCycles, func(sim.Cycle) { k.pollQuiesce(m) })
	return nil
}

// pollQuiesce re-checks drain progress until quiescence or timeout.
func (k *Kernel) pollQuiesce(m *migration) {
	if k.migrations[m.app] != m {
		return // aborted or superseded
	}
	app, ok := k.apps[m.app]
	if !ok {
		delete(k.migrations, m.app)
		return
	}
	if !k.appQuiescent(app) {
		if k.engine.Now() >= m.deadline {
			k.abortMigration(m, "quiesce-timeout")
			return
		}
		k.engine.After(quiescePollCycles, func(sim.Cycle) { k.pollQuiesce(m) })
		return
	}
	snap, err := k.Checkpoint(m.app)
	if err != nil {
		k.abortMigration(m, "checkpoint: "+err.Error())
		return
	}
	blob := EncodeSnapshot(snap)
	k.events.Record(k.engine.Now(), obs.EvMigrateSnapshot, "quiescent",
		fmt.Sprintf("app %q snapshot %d bytes", m.app, len(blob)))

	cells := 0
	for _, a := range app.Spec.Accels {
		c := a.Cells
		if c == 0 {
			c = defaultCells
		}
		if c > cells {
			cells = c
		}
	}
	spec, held, err := k.detachApp(m.app)
	if err != nil {
		k.abortMigration(m, "detach: "+err.Error())
		return
	}
	delay := prBaseCycles + prCyclesPerCell*sim.Cycle(cells)
	k.engine.After(delay, func(sim.Cycle) {
		k.completeMigration(m, spec, snap, held)
	})
}

// abortMigration resumes the source in place: the quiesced shells return to
// Running without a Reset, nothing was torn down, nothing is lost.
func (k *Kernel) abortMigration(m *migration, cause string) {
	delete(k.migrations, m.app)
	k.migAbortC.Inc()
	k.events.Record(k.engine.Now(), obs.EvMigrateAbort, cause,
		fmt.Sprintf("app %q resumed in place, source authoritative", m.app))
	_ = k.ResumeApp(m.app)
}

// completeMigration reloads the app in a fresh region and restores it. The
// old tiles are released after placement, so the reload lands elsewhere
// when capacity allows and falls back to the old region when the board is
// otherwise full.
func (k *Kernel) completeMigration(m *migration, spec AppSpec, snap *Snapshot, held []msg.TileID) {
	if k.migrations[m.app] != m {
		k.releaseHeld(held)
		return
	}
	if len(k.freeTiles()) < len(spec.Accels) {
		k.releaseHeld(held)
		held = nil
	}
	app, err := k.RestoreApp(spec, snap)
	k.releaseHeld(held)
	delete(k.migrations, m.app)
	if err != nil {
		// The source region is gone: unlike a quiesce timeout there is no
		// clean abort target. The failure is recorded; the app is unloaded.
		k.migAbortC.Inc()
		k.events.Record(k.engine.Now(), obs.EvMigrateAbort, "reload: "+err.Error(),
			fmt.Sprintf("app %q could not be restored", m.app))
		return
	}
	k.remintApp(m.app)
	k.migDoneC.Inc()
	var tiles []string
	for _, p := range app.Placed {
		tiles = append(tiles, fmt.Sprintf("%d", p.Tile))
	}
	k.events.Record(k.engine.Now(), obs.EvMigrateDone, "migrate",
		fmt.Sprintf("app %q resumed on tiles %v", m.app, tiles))
}
