package core

import (
	"fmt"
	"sort"

	"apiary/internal/cap"
	"apiary/internal/fabric"
	"apiary/internal/msg"
	"apiary/internal/obs"
)

// This file implements fail-stop quarantine and recovery (paper §4.4): when
// a monitor fail-stops a tile, the kernel fences its blast radius — drain
// the tile, revoke every endpoint capability that pointed at it, mark its
// fabric region for reload — and later re-admits it by reprogramming the
// region and re-minting the revoked capabilities at the new generation.

// region returns tile t's reconfigurable region (nil when no floorplan is
// attached, as in most unit tests).
func (k *Kernel) region(t msg.TileID) *fabric.Region {
	if int(t) < len(k.regions) {
		return k.regions[int(t)]
	}
	return nil
}

// quarantine fences a fail-stopped tile. Reports whether the tile was newly
// quarantined; trusted system tiles ("apiary") are never quarantined — their
// monitors fail-stop them locally, but the kernel does not revoke system
// service endpoints out from under every client.
func (k *Kernel) quarantine(ts *tileState, cause string) bool {
	if ts.app == "" || ts.app == "apiary" {
		return false
	}
	if k.quarantined[ts.id] {
		return false
	}
	k.quarantined[ts.id] = true
	k.quarC.Inc()
	k.events.Record(k.engine.Now(), obs.EvQuarantine, cause,
		fmt.Sprintf("tile %d (%s) fenced", ts.id, ts.app))
	// Belt and braces: order the monitor to drain even if it already
	// fail-stopped itself (idempotent; covers kernel-initiated quarantine).
	k.sendCtl(ts.id, msg.TCtlDrain, nil)
	// Revoke the tile's exported endpoint so stale capabilities held by
	// clients bounce with ERevoked at their local monitor instead of
	// flooding a dead service. The generation bump is authoritative and
	// instantly visible to every monitor; unlike permanent revocation
	// (sysFreeSeg) we deliberately do NOT clear the granted table slots —
	// a cleared slot makes the client's next send fail with ENoCap, which
	// monitors count against the protocol-violation budget as if the ref
	// were forged, fail-stopping innocent clients of the fenced service.
	// ERevoked is exempt from that budget, and recovery reinstalls the
	// fresh capability into the same slots.
	if ts.svc != msg.SvcInvalid {
		if t, ok := k.services[ts.svc]; ok && t == ts.id {
			k.checker.Revoke(cap.KindEndpoint, uint32(ts.svc))
		}
		// A quarantined group member triggers failover when it was the
		// primary: the group name re-binds to the next healthy member.
		k.setHealth(ts.svc, HealthQuarantined)
	}
	if reg := k.region(ts.id); reg != nil {
		reg.MarkFailed()
	}
	return true
}

// recoverTile re-admits a quarantined tile after the PR delay: reprogram the
// region (scrubbing the failed logic), re-mint the revoked endpoint at the
// current generation into every table slot that held it, and resume the
// shell.
func (k *Kernel) recoverTile(ts *tileState) {
	if !k.quarantined[ts.id] {
		return
	}
	if reg := k.region(ts.id); reg != nil && reg.Loaded() != nil {
		// Reload the recorded bitstream; Load clears the failed flag and
		// counts the reconfiguration.
		_ = reg.Load(reg.Loaded())
	}
	delete(k.quarantined, ts.id)
	k.recovC.Inc()
	k.events.Record(k.engine.Now(), obs.EvRecover, "pr-reload",
		fmt.Sprintf("tile %d (%s) re-admitted", ts.id, ts.app))
	if ts.svc != msg.SvcInvalid {
		// The member is serviceable again: back to Up in the directory. The
		// group does not fail back — the current primary keeps the binding
		// (no flapping); the recovered member is the next failover target.
		k.setHealth(ts.svc, HealthUp)
	}
	if ts.svc != msg.SvcInvalid {
		if t, ok := k.services[ts.svc]; ok && t == ts.id {
			fresh := k.endpointCap(ts.svc)
			for i := range k.grants {
				g := &k.grants[i]
				if g.c.Kind == cap.KindEndpoint && g.c.Object == uint32(ts.svc) {
					g.c = fresh
					k.sendCtl(g.tile, msg.TCtlInstallCap,
						msg.EncodeInstallCapReq(msg.InstallCapReq{
							Slot: uint32(g.slot), Cap: fresh.Encode(),
						}))
				}
			}
		}
	}
	k.sendCtl(ts.id, msg.TCtlResume, nil)
}

// Quarantined reports whether tile t is currently fenced off.
func (k *Kernel) Quarantined(t msg.TileID) bool { return k.quarantined[t] }

// QuarantinedTiles lists the currently fenced tiles in ID order.
func (k *Kernel) QuarantinedTiles() []msg.TileID {
	out := make([]msg.TileID, 0, len(k.quarantined))
	for t := range k.quarantined {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Quarantines and Recoveries report lifetime counts.
func (k *Kernel) Quarantines() uint64 { return k.quarC.Value() }

// Recoveries reports how many quarantined tiles have been re-admitted.
func (k *Kernel) Recoveries() uint64 { return k.recovC.Value() }
