package core

import (
	"apiary/internal/accel"
	"apiary/internal/msg"
	"apiary/internal/sim"
)

// chaosTarget adapts the kernel's tile table to fault.Target, letting the
// chaos engine reach shells and monitors without the fault package importing
// core. All four hooks run on the main goroutine between tick phases (the
// injector schedules them as engine events), so touching tile state directly
// is race-free and identical under any shard count.
type chaosTarget struct {
	k *Kernel
}

func (c *chaosTarget) tile(t msg.TileID) *tileState {
	if int(t) >= len(c.k.tiles) {
		return nil
	}
	return c.k.tiles[t]
}

// Hang freezes the accelerator logic on tile t until the given cycle; the
// shell keeps accepting deliveries, so the heartbeat watchdog sees a stuck
// input queue.
func (c *chaosTarget) Hang(t msg.TileID, until sim.Cycle) {
	if ts := c.tile(t); ts != nil && ts.shell != nil {
		ts.shell.SetHang(until)
	}
}

// Babble makes tile t spray unsolicited requests at svc until the given
// cycle (a misbehaving accelerator flooding the NoC).
func (c *chaosTarget) Babble(t msg.TileID, until sim.Cycle, svc msg.ServiceID) {
	if ts := c.tile(t); ts != nil && ts.shell != nil {
		ts.shell.SetBabble(until, svc)
	}
}

// WildWrite pushes count forged memory writes with a bogus capability
// through tile t's monitor — the canonical protocol violation.
func (c *chaosTarget) WildWrite(t msg.TileID, count int) {
	ts := c.tile(t)
	if ts == nil || ts.mon == nil {
		return
	}
	for i := 0; i < count; i++ {
		_ = ts.mon.InjectWildWrite()
	}
}

// FalsePositive makes tile t's monitor report a fault that never happened,
// exercising the quarantine/recovery path on a healthy tile.
func (c *chaosTarget) FalsePositive(t msg.TileID) {
	if ts := c.tile(t); ts != nil && ts.mon != nil {
		ts.mon.ForceFault(0, accel.FaultSpurious)
	}
}

// Migrate live-migrates whatever app owns tile t to a new region
// (fault.MigrateTarget): the chaos engine's way of putting checkpoint/
// restore under fire mid-scenario. System tiles and free tiles are skipped;
// an already-migrating app is left alone.
func (c *chaosTarget) Migrate(t msg.TileID) {
	ts := c.tile(t)
	if ts == nil || ts.app == "" || ts.app == "apiary" || ts.app == migrHold {
		return
	}
	_ = c.k.MigrateApp(ts.app)
}
