package core

import (
	"fmt"

	"apiary/internal/cap"
	"apiary/internal/fabric"
	"apiary/internal/fault"
	"apiary/internal/memseg"
	"apiary/internal/monitor"
	"apiary/internal/msg"
	"apiary/internal/netsim"
	"apiary/internal/netstack"
	"apiary/internal/noc"
	"apiary/internal/obs"
	"apiary/internal/sim"
	"apiary/internal/trace"
)

// SystemConfig parameterizes a complete Apiary board instance.
type SystemConfig struct {
	// Board names an entry in fabric.Boards. Default "usp-100g".
	Board string
	// Dims is the NoC mesh size. Default 3x3.
	Dims noc.Dims
	// Shards partitions the mesh into row bands for the parallel tick
	// scheduler (0 = serial). Results are bit-exact at any shard count.
	Shards int
	// Seed for the deterministic PRNG. Default 1.
	Seed uint64
	// DisableCaps turns off capability enforcement (experiment ablation).
	DisableCaps bool
	// ManagedMemBytes is the DRAM the memory service manages. Default
	// 64 MiB (the board's channel is far larger; the simulator stores real
	// bytes, so experiments use a window).
	ManagedMemBytes uint64
	// MemPolicy selects the segment allocator policy. Default FirstFit.
	MemPolicy memseg.Policy
	// WithNet installs the network service on tile 2 and attaches the
	// board to a datacenter fabric.
	WithNet bool
	// ExtFabric, when non-nil, is the datacenter network to join;
	// otherwise (with WithNet) a private fabric is created.
	ExtFabric *netsim.Fabric
	// NodeID is this board's address on the datacenter network. Default 1.
	NodeID netsim.NodeID
	// NetSeed seeds the private fabric's loss RNG (0 keeps the netsim
	// default). Fleets derive a distinct seed per board so drops on
	// different boards' fabrics never correlate.
	NetSeed uint64
	// LinkLatencyNs is the board uplink one-way latency. Default 1000.
	LinkLatencyNs float64
	// TracerCap bounds the message trace ring. Default 16384.
	TracerCap int
	// CapSlots is the per-tile capability table provisioning used for the
	// area model. Default 64.
	CapSlots int
	// SkipFloorplan disables fabric region checks (tiny unit tests).
	SkipFloorplan bool

	// SpanSampleEvery enables the message flight recorder, sampling one in
	// this many packets per NI (plus the replies to sampled requests). 0
	// (the default) disables span recording entirely.
	SpanSampleEvery int
	// SpanCap bounds the flight-recorder ring. Default obs.DefaultSpanCap.
	SpanCap int
	// WindowCycles enables windowed telemetry, snapshotting link/VC/tile
	// state every this many cycles. 0 (the default) disables it.
	WindowCycles sim.Cycle
	// WindowKeep bounds the snapshot ring. Default obs.DefaultWindowKeep.
	WindowKeep int
	// EventCap bounds the kernel decision log (always on). Default
	// obs.DefaultEventCap.
	EventCap int

	// Detect configures the per-tile monitor watchdogs (heartbeat,
	// credit-leak, protocol-violation). The zero value leaves every
	// detector off.
	Detect monitor.Detect
	// FaultPlan, when non-nil, arms the deterministic chaos engine with the
	// given schedule of injected faults (see internal/fault).
	FaultPlan *fault.Plan
}

// System is a fully assembled Apiary board: engine, NoC, kernel, system
// services and (optionally) a datacenter network attachment.
type System struct {
	Engine  *sim.Engine
	Stats   *sim.Stats
	Tracer  *trace.Tracer
	Checker *cap.Checker
	Noc     *noc.Network
	Kernel  *Kernel
	Board   fabric.Board
	Regions []*fabric.Region
	Alloc   *memseg.Allocator
	DRAM    *memseg.DRAM
	Fabric  *netsim.Fabric    // nil unless WithNet
	NetSvc  *netstack.Service // nil unless WithNet
	NodeID  netsim.NodeID
	Obs     *obs.Recorder   // nil unless SpanSampleEvery > 0
	Windows *obs.Windows    // nil unless WindowCycles > 0
	Events  *obs.EventLog   // kernel decision log, always on
	Fault   *fault.Injector // nil unless FaultPlan set
}

// NewSystem boots a board.
func NewSystem(cfg SystemConfig) (*System, error) {
	if cfg.Board == "" {
		cfg.Board = "usp-100g"
	}
	if cfg.Dims == (noc.Dims{}) {
		cfg.Dims = noc.Dims{W: 3, H: 3}
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.ManagedMemBytes == 0 {
		cfg.ManagedMemBytes = 64 << 20
	}
	if cfg.NodeID == 0 {
		cfg.NodeID = 1
	}
	if cfg.TracerCap == 0 {
		cfg.TracerCap = 16384
	}
	if cfg.CapSlots == 0 {
		cfg.CapSlots = 64
	}
	board, err := fabric.LookupBoard(cfg.Board)
	if err != nil {
		return nil, err
	}

	s := &System{
		Engine:  sim.NewEngine(cfg.Seed),
		Stats:   sim.NewStats(),
		Checker: cap.NewChecker(),
		Board:   board,
		NodeID:  cfg.NodeID,
	}
	s.Tracer = trace.New(cfg.TracerCap)
	// The tracer commits before the NoC (registration order) so that
	// tick-phase egress events flush into the ring ahead of the same
	// cycle's commit-phase ingress events.
	s.Engine.RegisterCommitter(s.Tracer)
	s.Noc = noc.NewNetwork(s.Engine, s.Stats, noc.Config{Dims: cfg.Dims, Shards: cfg.Shards})
	s.Tracer.SetShards(s.Noc.NumShards())
	if cfg.SpanSampleEvery > 0 {
		s.Obs = obs.NewRecorder(cfg.SpanSampleEvery, cfg.SpanCap)
		s.Noc.SetSpanSampler(s.Obs)
	}
	if cfg.WindowCycles > 0 {
		s.Windows = obs.NewWindows(s.Engine, s.Noc, s.Stats,
			obs.WindowConfig{Every: cfg.WindowCycles, Keep: cfg.WindowKeep})
	}

	if !cfg.SkipFloorplan {
		regions, err := fabric.Floorplan(board.Device, cfg.Dims.Tiles(),
			cfg.CapSlots, fabric.DefaultAreaModel)
		if err != nil {
			return nil, err
		}
		s.Regions = regions
	}

	// Memory subsystem sized to the board's primary bank characteristics.
	bank := board.PrimaryMemory()
	bytesPerCycle := int(bank.GBps * 1e9 / (float64(sim.DefaultFreqMHz) * 1e6))
	if bytesPerCycle < 1 {
		bytesPerCycle = 1
	}
	s.Alloc = memseg.NewAllocator(cfg.ManagedMemBytes, cfg.MemPolicy)
	s.DRAM = memseg.NewDRAM(s.Engine, s.Stats, cfg.ManagedMemBytes, memseg.DRAMConfig{
		LatencyCycles: s.Engine.CyclesForNanos(bank.LatencyNs),
		BytesPerCycle: bytesPerCycle,
	})

	s.Events = obs.NewEventLog(cfg.EventCap)
	s.Kernel = NewKernel(s.Engine, s.Stats, s.Noc, s.Checker, s.Tracer,
		s.Alloc, !cfg.DisableCaps, cfg.Detect)
	s.Kernel.events = s.Events
	s.Kernel.SetDRAM(s.DRAM)
	if s.Regions != nil {
		s.Kernel.SetRegions(s.Regions)
	}
	if cfg.FaultPlan != nil {
		inj := fault.NewInjector(cfg.FaultPlan, s.Engine, s.Noc,
			&chaosTarget{k: s.Kernel}, s.Stats)
		if err := inj.Arm(); err != nil {
			return nil, err
		}
		s.Fault = inj
	}
	s.Kernel.installSystemService(MemTile, msg.SvcMemory,
		NewMemService(s.Alloc, s.DRAM, s.Checker, s.Stats))

	if cfg.WithNet {
		if cfg.Dims.Tiles() < 4 {
			return nil, fmt.Errorf("core: network service needs at least 4 tiles")
		}
		s.Fabric = cfg.ExtFabric
		if s.Fabric == nil {
			s.Fabric = netsim.NewWithConfig(s.Engine, s.Stats,
				netsim.Config{LossSeed: cfg.NetSeed})
		}
		port := board.NewEthernet()
		link := netsim.LinkConfig{Gbps: port.LineRateGbps(), LatencyNs: cfg.LinkLatencyNs}
		svc, err := netstack.NewService(s.Engine, s.Stats, s.Fabric,
			cfg.NodeID, port, link)
		if err != nil {
			return nil, err
		}
		s.NetSvc = svc
		s.Kernel.installSystemService(NetTile, msg.SvcNet, svc)
	}
	return s, nil
}

// Run advances the board n cycles.
func (s *System) Run(n sim.Cycle) { s.Engine.Run(n) }

// RunUntil advances until cond holds or the budget expires.
func (s *System) RunUntil(cond func() bool, budget sim.Cycle) bool {
	return s.Engine.RunUntil(cond, budget)
}

// MonitorOverhead reports the fraction of the device's logic cells consumed
// by Apiary's static framework at this tile count (experiment E3).
func (s *System) MonitorOverhead(capSlots int) float64 {
	return fabric.DefaultAreaModel.OverheadFraction(s.Board.Device,
		s.Noc.Dims().Tiles(), capSlots)
}
