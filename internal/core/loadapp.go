package core

import (
	"fmt"

	"apiary/internal/accel"
	"apiary/internal/cap"
	"apiary/internal/fabric"
	"apiary/internal/memseg"
	"apiary/internal/monitor"
	"apiary/internal/msg"
	"apiary/internal/noc"
	"apiary/internal/obs"
)

// defaultCells is the synthetic bitstream size when a manifest omits it.
const defaultCells = 20000

// SetRegions attaches the board floorplan so application loads go through
// bitstream fit + design-rule checking. Without regions, loads skip the
// fabric checks (unit-test configurations).
func (k *Kernel) SetRegions(regions []*fabric.Region) { k.regions = regions }

// LoadApp validates, places and starts an application. Each accelerator
// lands on its own free tile (paper §4.1: distrusting applications may not
// share a physical tile; we go further and give every accelerator its own
// tile). Returns placement information including pre-allocated segments.
func (k *Kernel) LoadApp(spec AppSpec) (*App, error) {
	if spec.Name == "" || spec.Name == "apiary" {
		return nil, fmt.Errorf("core: invalid app name %q", spec.Name)
	}
	if _, dup := k.apps[spec.Name]; dup {
		return nil, fmt.Errorf("core: app %q already loaded", spec.Name)
	}
	if len(spec.Accels) == 0 {
		return nil, fmt.Errorf("core: app %q has no accelerators", spec.Name)
	}

	// Pre-flight: enough free tiles, unique instance names, service IDs
	// not already claimed.
	free := k.freeTiles()
	if len(free) < len(spec.Accels) {
		return nil, fmt.Errorf("core: app %q needs %d tiles, %d free",
			spec.Name, len(spec.Accels), len(free))
	}
	seen := map[string]bool{}
	for _, a := range spec.Accels {
		if a.Name == "" || seen[a.Name] {
			return nil, fmt.Errorf("core: duplicate or empty accel name %q in %q", a.Name, spec.Name)
		}
		seen[a.Name] = true
		if a.New == nil {
			return nil, fmt.Errorf("core: accel %q has no constructor", a.Name)
		}
		if a.Service != msg.SvcInvalid {
			if a.Service < msg.FirstUserService {
				return nil, fmt.Errorf("core: accel %q claims reserved service %d", a.Name, a.Service)
			}
			if _, taken := k.services[a.Service]; taken {
				return nil, fmt.Errorf("core: service %d already registered", a.Service)
			}
		}
	}

	app := &App{Spec: spec}
	placement := k.chooseTiles(spec, free)

	// Pass 1: place accelerators and register their services so that
	// same-app Connect lists resolve regardless of declaration order.
	for i, a := range spec.Accels {
		tile := placement[i]
		ts := k.tiles[tile]
		logic := a.New()
		if err := k.configureRegion(tile, a, logic); err != nil {
			k.rollback(app)
			return nil, err
		}
		if su, ok := logic.(accel.StatsUser); ok {
			su.AttachStats(k.stats)
		}
		// The shell is static fabric: created (and engine-registered) once
		// per tile, resident across unload/reload cycles. A tile that has
		// hosted an app before adopts the new logic into its existing shell,
		// so mid-run placement never grows the engine's ticker list — the
		// tick order frozen at first registration is the determinism anchor.
		shell := ts.shell
		if shell != nil {
			shell.Adopt(logic)
		} else {
			shell = accel.NewShell(logic, k.stats)
			k.engine.Register(shell)
		}
		if a.QueueCap > 0 {
			shell.SetQueueCap(a.QueueCap)
		}
		ts.shell = shell
		ts.app = spec.Name
		ts.accel = a.Name
		ts.svc = a.Service
		ts.mon.AttachShell(shell)
		if a.Rate != (monitor.RateLimit{}) {
			ts.mon.SetRate(a.Rate)
		}
		if a.Service != msg.SvcInvalid {
			k.services[a.Service] = tile
			k.svcOwner[a.Service] = spec.Name
			k.bindAll(a.Service, tile)
		}
		for c := 0; c < logic.Contexts(); c++ {
			k.procs = append(k.procs, Proc{
				App: spec.Name, Accel: a.Name, Tile: tile, Ctx: uint8(c),
			})
		}
		app.Placed = append(app.Placed, PlacedAccel{Name: a.Name, Tile: tile})
		k.events.Record(k.engine.Now(), obs.EvPlacement, "load-app",
			fmt.Sprintf("%s/%s placed on tile %d", spec.Name, a.Name, tile))
	}
	for _, svc := range spec.Exports {
		k.exports[svc] = spec.Name
	}

	// Replica groups register between the passes: members exist (pass 1
	// bound them), and pass 2 Connect lists may name the group service.
	for _, g := range spec.Groups {
		if err := k.RegisterReplicaSet(spec.Name, g.Service, g.Members); err != nil {
			k.rollback(app)
			return nil, err
		}
	}

	// Pass 2: capabilities and memory.
	for i, a := range spec.Accels {
		tile := app.Placed[i].Tile
		ts := k.tiles[tile]
		k.installCapDirect(tile, SlotKernelEP, k.endpointCap(msg.SvcKernel))
		k.installCapDirect(tile, SlotMemEP, k.endpointCap(msg.SvcMemory))
		if a.WantNet {
			if _, ok := k.services[msg.SvcNet]; !ok {
				k.rollback(app)
				return nil, fmt.Errorf("core: accel %q wants the network service, which is not installed", a.Name)
			}
			k.installCapDirect(tile, SlotNetEP, k.endpointCap(msg.SvcNet))
		}
		for _, svc := range a.Connect {
			if !k.mayConnect(spec.Name, svc) {
				k.rollback(app)
				return nil, fmt.Errorf("core: app %q may not connect to service %d (not exported)",
					spec.Name, svc)
			}
			slot := cap.Ref(ts.slotNo)
			ts.slotNo++
			k.installCapDirect(tile, slot, k.endpointCap(svc))
		}
		if a.MemBytes > 0 {
			seg, err := k.alloc.Alloc(a.MemBytes, tile)
			if err != nil {
				k.rollback(app)
				return nil, fmt.Errorf("core: segment for %q: %w", a.Name, err)
			}
			slot := cap.Ref(ts.slotNo)
			ts.slotNo++
			k.segOwner[uint32(seg.ID)] = tile
			k.installCapDirect(tile, slot,
				k.segmentCap(uint32(seg.ID), cap.RRead|cap.RWrite|cap.RGrant))
			app.Placed[i].SegID = uint32(seg.ID)
			app.Placed[i].SegSlot = slot
		}
	}

	k.apps[spec.Name] = app
	return app, nil
}

// configureRegion runs the fabric path for a placement: synthesize a
// bitstream of the declared size and load it through the region's DRC.
func (k *Kernel) configureRegion(tile msg.TileID, a AppAccel, logic accel.Accelerator) error {
	if k.regions == nil {
		return nil
	}
	cells := a.Cells
	if cells == 0 {
		cells = defaultCells
	}
	bs := fabric.NewBitstream(logic.Name(), cells)
	if err := k.regions[tile].Load(bs); err != nil {
		return fmt.Errorf("core: placing %q on tile %d: %w", a.Name, tile, err)
	}
	return nil
}

// chooseTiles maps each accelerator of spec to a free tile according to the
// requested placement strategy.
func (k *Kernel) chooseTiles(spec AppSpec, free []msg.TileID) []msg.TileID {
	if spec.Placement != PlaceAffinity || len(spec.Accels) < 2 {
		return free[:len(spec.Accels)]
	}

	// Build the communication graph: i—j iff i connects to j's service or
	// vice versa.
	svcIdx := map[msg.ServiceID]int{}
	for i, a := range spec.Accels {
		if a.Service != msg.SvcInvalid {
			svcIdx[a.Service] = i
		}
	}
	n := len(spec.Accels)
	adj := make([][]int, n)
	for i, a := range spec.Accels {
		for _, svc := range a.Connect {
			if j, ok := svcIdx[svc]; ok && j != i {
				adj[i] = append(adj[i], j)
				adj[j] = append(adj[j], i)
			}
		}
	}

	dims := k.net.Dims()
	placed := make([]msg.TileID, n)
	used := make([]bool, len(free))
	for i := range placed {
		placed[i] = msg.NoTile
	}

	// Greedy: place accel 0 on the first free tile; then repeatedly place
	// the accelerator with the most already-placed neighbours onto the
	// free tile minimizing total hops to them (ties: lowest tile ID).
	takeTile := func(idx int) msg.TileID {
		used[idx] = true
		return free[idx]
	}
	placed[0] = takeTile(0)
	for placedCount := 1; placedCount < n; placedCount++ {
		// Pick the next accelerator: most placed neighbours, lowest index.
		best, bestDeg := -1, -1
		for i := range spec.Accels {
			if placed[i] != msg.NoTile {
				continue
			}
			deg := 0
			for _, j := range adj[i] {
				if placed[j] != msg.NoTile {
					deg++
				}
			}
			if deg > bestDeg {
				best, bestDeg = i, deg
			}
		}
		// Pick its tile.
		bestTile, bestCost := -1, 1<<30
		for ti := range free {
			if used[ti] {
				continue
			}
			cost := 0
			for _, j := range adj[best] {
				if placed[j] != msg.NoTile {
					cost += noc.Hops(dims.Coord(free[ti]), dims.Coord(placed[j]))
				}
			}
			if cost < bestCost {
				bestTile, bestCost = ti, cost
			}
		}
		placed[best] = takeTile(bestTile)
	}
	return placed
}

// freeTiles lists unoccupied, non-reserved tiles in ID order.
func (k *Kernel) freeTiles() []msg.TileID {
	var out []msg.TileID
	for _, ts := range k.tiles {
		if ts.app == "" && ts.mon != nil {
			out = append(out, ts.id)
		}
	}
	return out
}

// FreeTileCount reports how many tiles are unoccupied and placeable — the
// capacity signal a fleet orchestrator scores boards by.
func (k *Kernel) FreeTileCount() int { return len(k.freeTiles()) }

// rollback undoes a partial load.
func (k *Kernel) rollback(app *App) {
	k.dropGroups(app.Spec.Name)
	for _, p := range app.Placed {
		ts := k.tiles[p.Tile]
		if ts.svc != msg.SvcInvalid {
			delete(k.services, ts.svc)
			delete(k.svcOwner, ts.svc)
			k.bindAll(ts.svc, msg.NoTile)
		}
		if ts.shell != nil {
			ts.shell.SetState(accel.Stopped)
		}
		ts.mon.DetachShell()
		ts.app, ts.accel, ts.svc = "", "", msg.SvcInvalid
		if k.regions != nil {
			k.regions[p.Tile].Clear()
		}
		if p.SegID != 0 {
			_ = k.alloc.Free(memseg.SegID(p.SegID))
			delete(k.segOwner, p.SegID)
		}
		kept := k.procs[:0]
		for _, pr := range k.procs {
			if pr.Tile != p.Tile {
				kept = append(kept, pr)
			}
		}
		k.procs = kept
	}
	for _, svc := range app.Spec.Exports {
		delete(k.exports, svc)
	}
}
