package core

import (
	"testing"

	"apiary/internal/accel"
	"apiary/internal/memseg"
	"apiary/internal/msg"
	"apiary/internal/noc"
)

// runWorkload boots a fixed workload and returns a fingerprint of its
// final state: every counter value plus the NoC latency histogram moments.
func runWorkload(t *testing.T, seed uint64) map[string]uint64 {
	t.Helper()
	s, err := NewSystem(SystemConfig{Dims: noc.Dims{W: 3, H: 3}, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	a := &progAccel{name: "w"}
	app, err := s.Kernel.LoadApp(AppSpec{
		Name: "w",
		Accels: []AppAccel{{
			Name: "a", New: func() accel.Accelerator { return a }, MemBytes: 8192,
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	slot := app.Placed[0].SegSlot
	for i := uint32(0); i < 20; i++ {
		a.push(&msg.Message{
			Type: msg.TMemWrite, DstSvc: msg.SvcMemory, CapRef: uint32(slot), Seq: i,
			Payload: msg.EncodeMemReq(msg.MemReq{Offset: uint64(i) * 64, Data: []byte{byte(i)}}),
		})
	}
	s.Run(100_000)
	fp := map[string]uint64{}
	for _, c := range s.Stats.Counters() {
		fp[c.Name] = c.Value()
	}
	fp["__cycles"] = uint64(s.Engine.Now())
	for _, h := range s.Stats.Histograms() {
		fp["__h_"+h.Name+"_n"] = uint64(h.Count())
		fp["__h_"+h.Name+"_sum"] = uint64(h.Mean() * float64(h.Count()) * 1000)
	}
	return fp
}

// TestDeterminism: identical seeds must produce bit-identical simulations —
// the property every recorded experiment number depends on.
func TestDeterminism(t *testing.T) {
	a := runWorkload(t, 42)
	b := runWorkload(t, 42)
	if len(a) != len(b) {
		t.Fatalf("fingerprint sizes differ: %d vs %d", len(a), len(b))
	}
	for k, v := range a {
		if b[k] != v {
			t.Fatalf("nondeterminism in %q: %d vs %d", k, v, b[k])
		}
	}
}

func TestSystemConfigErrors(t *testing.T) {
	if _, err := NewSystem(SystemConfig{Board: "martian-board"}); err == nil {
		t.Fatal("unknown board booted")
	}
	if _, err := NewSystem(SystemConfig{Dims: noc.Dims{W: 3, H: 1}, WithNet: true}); err == nil {
		t.Fatal("network service on a 3-tile board accepted")
	}
}

func TestSystemDefaults(t *testing.T) {
	s, err := NewSystem(SystemConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Board.Name != "usp-100g" {
		t.Fatalf("default board = %s", s.Board.Name)
	}
	if s.Noc.Dims() != (noc.Dims{W: 3, H: 3}) {
		t.Fatalf("default dims = %v", s.Noc.Dims())
	}
	if s.Alloc.Total() != 64<<20 {
		t.Fatalf("default managed memory = %d", s.Alloc.Total())
	}
	if s.Regions == nil || len(s.Regions) != 9 {
		t.Fatal("floorplan missing")
	}
	if ovh := s.MonitorOverhead(64); ovh <= 0 || ovh > 0.2 {
		t.Fatalf("overhead accessor = %v", ovh)
	}
}

func TestSystemBestFitPolicy(t *testing.T) {
	s, err := NewSystem(SystemConfig{MemPolicy: memseg.BestFit})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Alloc.Alloc(1024, 0); err != nil {
		t.Fatal(err)
	}
}

func TestSystemSkipFloorplan(t *testing.T) {
	s, err := NewSystem(SystemConfig{SkipFloorplan: true})
	if err != nil {
		t.Fatal(err)
	}
	if s.Regions != nil {
		t.Fatal("regions created despite SkipFloorplan")
	}
	// Loads skip DRC but still work.
	if _, err := s.Kernel.LoadApp(AppSpec{
		Name: "x",
		Accels: []AppAccel{{
			Name: "a", Cells: 100_000_000, // absurd, but no floorplan to veto it
			New: func() accel.Accelerator { return &progAccel{name: "a"} },
		}},
	}); err != nil {
		t.Fatal(err)
	}
}
