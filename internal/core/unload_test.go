package core

import (
	"testing"

	"apiary/internal/accel"
	"apiary/internal/msg"
)

func TestUnloadAppFreesEverything(t *testing.T) {
	s := boot(t)
	a := &progAccel{name: "a"}
	liveBefore := s.Alloc.Live()
	app, err := s.Kernel.LoadApp(AppSpec{
		Name: "victim",
		Accels: []AppAccel{
			{Name: "a", New: func() accel.Accelerator { return a }, Service: 40, MemBytes: 4096},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	tile := app.Placed[0].Tile
	if err := s.Kernel.UnloadApp("victim"); err != nil {
		t.Fatal(err)
	}
	if s.Kernel.App("victim") != nil {
		t.Fatal("app still registered")
	}
	// The shell is static fabric: it stays resident (and engine-registered)
	// across unloads, parked in Stopped state so it is inert.
	if sh := s.Kernel.Shell(tile); sh == nil || sh.State() != accel.Stopped {
		t.Fatal("shell not parked in Stopped state")
	}
	if _, ok := s.Kernel.ServiceTile(40); ok {
		t.Fatal("service still registered")
	}
	if s.Alloc.Live() != liveBefore {
		t.Fatalf("segments leaked: %d live, want %d", s.Alloc.Live(), liveBefore)
	}
	if len(s.Kernel.Procs()) != 0 {
		t.Fatal("process table not cleaned")
	}
	if err := s.Kernel.UnloadApp("victim"); err == nil {
		t.Fatal("double unload accepted")
	}
}

func TestUnloadedTilesReusable(t *testing.T) {
	s := boot(t)
	mk := func() accel.Accelerator { return &progAccel{name: "x"} }
	// Fill every free tile.
	var accels []AppAccel
	for i := 0; i < 7; i++ {
		accels = append(accels, AppAccel{Name: string(rune('a' + i)), New: mk})
	}
	if _, err := s.Kernel.LoadApp(AppSpec{Name: "big", Accels: accels}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Kernel.LoadApp(AppSpec{Name: "one", Accels: accels[:1]}); err == nil {
		t.Fatal("board should be full")
	}
	if err := s.Kernel.UnloadApp("big"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Kernel.LoadApp(AppSpec{Name: "again", Accels: accels}); err != nil {
		t.Fatalf("tiles not reusable after unload: %v", err)
	}
}

func TestUnloadRevokesForeignCaps(t *testing.T) {
	s := boot(t)
	provider := &progAccel{name: "prov"}
	consumer := &progAccel{name: "cons"}
	if _, err := s.Kernel.LoadApp(AppSpec{
		Name:    "provapp",
		Accels:  []AppAccel{{Name: "p", New: func() accel.Accelerator { return provider }, Service: 41}},
		Exports: []msg.ServiceID{41},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Kernel.LoadApp(AppSpec{
		Name: "consapp",
		Accels: []AppAccel{{Name: "c", New: func() accel.Accelerator { return consumer },
			Connect: []msg.ServiceID{41}}},
	}); err != nil {
		t.Fatal(err)
	}
	// Works before unload.
	consumer.push(&msg.Message{Type: msg.TRequest, DstSvc: 41, Seq: 1})
	if !s.RunUntil(func() bool { return len(provider.inbox) >= 1 }, 1_000_000) {
		t.Fatal("pre-unload send failed")
	}
	if err := s.Kernel.UnloadApp("provapp"); err != nil {
		t.Fatal(err)
	}
	// Denied after: either the name is gone or the capability is revoked.
	consumer.push(&msg.Message{Type: msg.TRequest, DstSvc: 41, Seq: 2})
	s.Run(100_000)
	last := consumer.codes[len(consumer.codes)-1]
	if last != msg.ENoService && last != msg.ERevoked && last != msg.ENoCap {
		t.Fatalf("post-unload send code = %v", last)
	}
}

func TestReloadSameServiceAfterUnload(t *testing.T) {
	s := boot(t)
	mk := func() accel.Accelerator { return &progAccel{name: "x"} }
	if _, err := s.Kernel.LoadApp(AppSpec{
		Name:   "v1",
		Accels: []AppAccel{{Name: "a", New: mk, Service: 42}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.Kernel.UnloadApp("v1"); err != nil {
		t.Fatal(err)
	}
	// Same service ID must be claimable again, and fresh caps must work.
	client := &progAccel{name: "client"}
	srv := &progAccel{name: "srv"}
	if _, err := s.Kernel.LoadApp(AppSpec{
		Name: "v2",
		Accels: []AppAccel{
			{Name: "a", New: func() accel.Accelerator { return srv }, Service: 42},
			{Name: "c", New: func() accel.Accelerator { return client }, Connect: []msg.ServiceID{42}},
		},
	}); err != nil {
		t.Fatal(err)
	}
	client.push(&msg.Message{Type: msg.TRequest, DstSvc: 42, Seq: 1})
	if !s.RunUntil(func() bool { return len(srv.inbox) >= 1 }, 1_000_000) {
		t.Fatalf("fresh caps after re-register failed: codes=%v", client.codes)
	}
}
