package core

import (
	"fmt"
	"testing"

	"apiary/internal/accel"
	"apiary/internal/msg"
	"apiary/internal/noc"
	"apiary/internal/sim"
)

// TestIsolationPropertyRandomised is the system-level security property
// test: build random multi-app topologies with random export/connect
// relationships, fire requests from every accelerator at every service,
// and verify message delivery matches the capability policy *exactly* —
// nothing leaks, nothing legitimate is blocked.
func TestIsolationPropertyRandomised(t *testing.T) {
	for trial := 0; trial < 8; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			runIsolationTrial(t, uint64(1000+trial))
		})
	}
}

type fuzzNode struct {
	app     string
	svc     msg.ServiceID
	accel   *progAccel
	connect map[msg.ServiceID]bool
}

func runIsolationTrial(t *testing.T, seed uint64) {
	rng := sim.NewRNG(seed)
	s, err := NewSystem(SystemConfig{Dims: noc.Dims{W: 4, H: 2}, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	// 8 tiles - kernel - memory = 6 free: 3 apps x 2 accels.
	const nApps, perApp = 3, 2
	var nodes []*fuzzNode
	svcOf := func(app, idx int) msg.ServiceID {
		return msg.FirstUserService + msg.ServiceID(app*perApp+idx)
	}

	// Choose exports first so Connect legality is known up front.
	exported := map[msg.ServiceID]bool{}
	for a := 0; a < nApps; a++ {
		for i := 0; i < perApp; i++ {
			if rng.Bool(0.4) {
				exported[svcOf(a, i)] = true
			}
		}
	}

	for a := 0; a < nApps; a++ {
		appName := fmt.Sprintf("app%d", a)
		var accels []AppAccel
		var appNodes []*fuzzNode
		var exports []msg.ServiceID
		for i := 0; i < perApp; i++ {
			svc := svcOf(a, i)
			if exported[svc] {
				exports = append(exports, svc)
			}
			node := &fuzzNode{
				app: appName, svc: svc,
				accel:   &progAccel{name: fmt.Sprintf("a%d_%d", a, i)},
				connect: map[msg.ServiceID]bool{},
			}
			// Random legal connects: same-app services or exported foreign
			// services (of apps already declared — order of load matters
			// for foreign connects, so only connect to earlier apps).
			for b := 0; b < nApps; b++ {
				for j := 0; j < perApp; j++ {
					target := svcOf(b, j)
					if target == svc {
						continue
					}
					legal := b == a || (b < a && exported[target])
					if legal && rng.Bool(0.5) {
						node.connect[target] = true
					}
				}
			}
			var connect []msg.ServiceID
			for c := range node.connect {
				connect = append(connect, c)
			}
			accels = append(accels, AppAccel{
				Name:    node.accel.name,
				New:     func() accel.Accelerator { return node.accel },
				Service: svc,
				Connect: connect,
			})
			appNodes = append(appNodes, node)
		}
		if _, err := s.Kernel.LoadApp(AppSpec{
			Name: appName, Accels: accels, Exports: exports,
		}); err != nil {
			t.Fatalf("load %s: %v", appName, err)
		}
		nodes = append(nodes, appNodes...)
	}

	// Every node attempts one request to every service on the board.
	type attempt struct {
		from   *fuzzNode
		target msg.ServiceID
		seq    uint32
	}
	var attempts []attempt
	seq := uint32(1)
	for _, n := range nodes {
		for _, m := range nodes {
			if n == m {
				continue
			}
			attempts = append(attempts, attempt{from: n, target: m.svc, seq: seq})
			n.accel.push(&msg.Message{
				Type: msg.TRequest, DstSvc: m.svc, Seq: seq,
				Payload: []byte(n.app),
			})
			seq++
		}
	}
	s.Run(200_000)

	// Oracle: delivery iff the sender was granted an endpoint capability.
	bySvc := map[msg.ServiceID]*fuzzNode{}
	for _, n := range nodes {
		bySvc[n.svc] = n
	}
	for _, at := range attempts {
		allowed := at.from.connect[at.target]
		receiver := bySvc[at.target]
		got := false
		for _, m := range receiver.accel.inbox {
			if m.Seq == at.seq && string(m.Payload) == at.from.app {
				got = true
			}
		}
		if allowed && !got {
			t.Fatalf("seed %d: legitimate %s->svc%d blocked", seed, at.from.accel.name, at.target)
		}
		if !allowed && got {
			t.Fatalf("seed %d: ISOLATION BREACH %s(%s)->svc%d delivered",
				seed, at.from.accel.name, at.from.app, at.target)
		}
	}
	// Every denied attempt must have been answered with ENoCap locally.
	for _, n := range nodes {
		denied := 0
		for _, c := range n.accel.codes {
			if c == msg.ENoCap {
				denied++
			}
		}
		expect := 0
		for _, at := range attempts {
			if at.from == n && !n.connect[at.target] {
				expect++
			}
		}
		if denied != expect {
			t.Fatalf("seed %d: %s saw %d ENoCap, want %d", seed, n.accel.name, denied, expect)
		}
	}
}
