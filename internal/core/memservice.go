package core

import (
	"apiary/internal/accel"
	"apiary/internal/cap"
	"apiary/internal/memseg"
	"apiary/internal/msg"
	"apiary/internal/sim"
)

// MemService is Apiary's segment memory service: an accelerator occupying a
// service tile that owns the board DRAM channel and executes TMemRead /
// TMemWrite messages against capability-named segments (paper §4.6).
//
// Trust model: the *sending* monitor validated the segment capability and
// rewrote CapRef to the segment ID; the service re-checks liveness (the
// segment may have been freed while the message was in flight) and bounds.
// The allocator is shared with the kernel, which performs alloc/free on
// behalf of syscalls — in hardware this is a table in the static region
// written only by trusted logic.
type MemService struct {
	alloc   *memseg.Allocator
	dram    *memseg.DRAM
	checker *cap.Checker

	outbox []*msg.Message

	reads      *sim.Counter
	writes     *sim.Counter
	copies     *sim.Counter
	boundsErrs *sim.Counter
}

// maxMemLength bounds one read so the reply fits a single message.
const maxMemLength = msg.MaxPayload

// NewMemService creates the service over the given allocator and DRAM.
func NewMemService(alloc *memseg.Allocator, dram *memseg.DRAM, checker *cap.Checker, st *sim.Stats) *MemService {
	return &MemService{
		alloc:      alloc,
		dram:       dram,
		checker:    checker,
		reads:      st.Counter("memsvc.reads"),
		writes:     st.Counter("memsvc.writes"),
		copies:     st.Counter("memsvc.copies"),
		boundsErrs: st.Counter("memsvc.bounds_errors"),
	}
}

// Name implements accel.Accelerator.
func (s *MemService) Name() string { return "apiary.memory" }

// Contexts implements accel.Accelerator.
func (s *MemService) Contexts() int { return 1 }

// Reset implements accel.Accelerator.
func (s *MemService) Reset() { s.outbox = nil }

// Idle implements accel.Idler: with an empty outbox (and an empty shell
// queue, the precondition for being asked) Tick does nothing. In-flight
// DRAM operations complete through engine events, which bound any
// fast-forward, so a pending completion cannot be skipped over.
func (s *MemService) Idle() bool { return len(s.outbox) == 0 }

// Tick implements accel.Accelerator.
func (s *MemService) Tick(p accel.Port) {
	for i := 0; i < maxPerTick; i++ {
		m, ok := p.Recv()
		if !ok {
			break
		}
		s.handle(m)
	}
	for len(s.outbox) > 0 {
		if code := p.Send(s.outbox[0]); code != msg.EOK {
			break
		}
		s.outbox = s.outbox[1:]
	}
}

// maxPerTick bounds messages consumed per cycle by service accelerators.
const maxPerTick = 4

func (s *MemService) fail(m *msg.Message, code msg.ErrCode) {
	s.outbox = append(s.outbox, m.ErrorReply(code))
}

func (s *MemService) handle(m *msg.Message) {
	switch m.Type {
	case msg.TMemRead, msg.TMemWrite:
	case msg.TMemCopy:
		s.handleCopy(m)
		return
	default:
		if m.Type != msg.TReply && m.Type != msg.TError {
			s.fail(m, msg.EBadMsg)
		}
		return
	}
	req, err := msg.DecodeMemReq(m.Payload)
	if err != nil {
		s.fail(m, msg.EBadMsg)
		return
	}
	segID := memseg.SegID(m.CapRef)
	seg, ok := s.alloc.Lookup(segID)
	if !ok {
		s.fail(m, msg.ENoCap)
		return
	}
	// Liveness: segment IDs are never reused and the kernel bumps the
	// generation on free, so a revoked-but-somehow-still-live segment is a
	// kernel bug; reject it rather than serve stale data.
	if s.checker.Gen(cap.KindSegment, uint32(segID)) != 0 {
		s.fail(m, msg.ERevoked)
		return
	}

	if m.Type == msg.TMemRead {
		if req.Length > maxMemLength || !seg.Contains(req.Offset, uint64(req.Length)) {
			s.boundsErrs.Inc()
			s.fail(m, msg.EBounds)
			return
		}
		s.reads.Inc()
		reply := m.Reply(msg.TMemReply, nil)
		if !s.dram.Read(seg.Base+req.Offset, int(req.Length), func(data []byte) {
			reply.Payload = data
			s.outbox = append(s.outbox, reply)
		}) {
			s.fail(m, msg.EBusy)
		}
		return
	}

	// Write.
	if !seg.Contains(req.Offset, uint64(len(req.Data))) {
		s.boundsErrs.Inc()
		s.fail(m, msg.EBounds)
		return
	}
	s.writes.Inc()
	reply := m.Reply(msg.TMemReply, nil)
	if !s.dram.Write(seg.Base+req.Offset, req.Data, func() {
		s.outbox = append(s.outbox, reply)
	}) {
		s.fail(m, msg.EBusy)
	}
}

// maxCopyLength bounds one DMA copy; larger copies are issued as several
// requests (keeps worst-case DRAM occupancy of one op bounded).
const maxCopyLength = 1 << 20

// handleCopy executes a segment-to-segment DMA: read from the source
// segment, then write into the destination, both against bounds. The
// monitor already verified read rights on CapRef (source) and write rights
// on the payload's destination segment.
func (s *MemService) handleCopy(m *msg.Message) {
	req, err := msg.DecodeMemCopyReq(m.Payload)
	if err != nil {
		s.fail(m, msg.EBadMsg)
		return
	}
	if req.Length > maxCopyLength {
		s.fail(m, msg.ETooBig)
		return
	}
	src, ok := s.alloc.Lookup(memseg.SegID(m.CapRef))
	if !ok {
		s.fail(m, msg.ENoCap)
		return
	}
	dst, ok := s.alloc.Lookup(memseg.SegID(req.DstRef))
	if !ok {
		s.fail(m, msg.ENoCap)
		return
	}
	if !src.Contains(req.SrcOff, uint64(req.Length)) ||
		!dst.Contains(req.DstOff, uint64(req.Length)) {
		s.boundsErrs.Inc()
		s.fail(m, msg.EBounds)
		return
	}
	s.copies.Inc()
	reply := m.Reply(msg.TMemReply, nil)
	ok = s.dram.Read(src.Base+req.SrcOff, int(req.Length), func(data []byte) {
		if !s.dram.Write(dst.Base+req.DstOff, data, func() {
			s.outbox = append(s.outbox, reply)
		}) {
			s.outbox = append(s.outbox, m.ErrorReply(msg.EBusy))
		}
	})
	if !ok {
		s.fail(m, msg.EBusy)
	}
}
