package core

import (
	"bytes"
	"testing"

	"apiary/internal/accel"
	"apiary/internal/cap"
	"apiary/internal/msg"
)

// copyRig loads one accelerator with two segments and returns the accel and
// the two segment cap slots.
func copyRig(t *testing.T) (*System, *progAccel, cap.Ref, cap.Ref) {
	t.Helper()
	s := boot(t)
	a := &progAccel{name: "dma"}
	app, err := s.Kernel.LoadApp(AppSpec{
		Name: "dmaapp",
		Accels: []AppAccel{{
			Name: "a", New: func() accel.Accelerator { return a }, MemBytes: 4096,
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	srcSlot := app.Placed[0].SegSlot
	// Second segment via syscall.
	a.push(&msg.Message{Type: msg.TRequest, DstSvc: msg.SvcKernel, Seq: 1,
		Payload: EncodeAllocSeg(4096)})
	if !s.RunUntil(func() bool { return len(a.inbox) >= 1 }, 500000) {
		t.Fatal("no alloc reply")
	}
	rep, err := DecodeAllocSegReply(a.inbox[0].Payload)
	if err != nil {
		t.Fatal(err)
	}
	a.inbox = nil
	return s, a, srcSlot, cap.Ref(rep.CapSlot)
}

func TestMemCopyEndToEnd(t *testing.T) {
	s, a, src, dst := copyRig(t)
	pattern := []byte("dma copy through the capability-checked memory service")

	a.push(&msg.Message{
		Type: msg.TMemWrite, DstSvc: msg.SvcMemory, CapRef: uint32(src), Seq: 2,
		Payload: msg.EncodeMemReq(msg.MemReq{Offset: 128, Data: pattern}),
	})
	a.push(&msg.Message{
		Type: msg.TMemCopy, DstSvc: msg.SvcMemory, CapRef: uint32(src), Seq: 3,
		Payload: msg.EncodeMemCopyReq(msg.MemCopyReq{
			DstRef: uint32(dst), DstOff: 512, SrcOff: 128, Length: uint32(len(pattern)),
		}),
	})
	// Wait for the copy's completion before reading back: DMA completions
	// order the visibility of the copied bytes, exactly as on hardware.
	if !s.RunUntil(func() bool { return len(a.inbox) >= 2 }, 1_000_000) {
		t.Fatalf("write+copy incomplete: %d replies, codes=%v", len(a.inbox), a.codes)
	}
	for i, r := range a.inbox[:2] {
		if r.Type != msg.TMemReply {
			t.Fatalf("op %d reply = %v", i, r)
		}
	}
	a.push(&msg.Message{
		Type: msg.TMemRead, DstSvc: msg.SvcMemory, CapRef: uint32(dst), Seq: 4,
		Payload: msg.EncodeMemReq(msg.MemReq{Offset: 512, Length: uint32(len(pattern))}),
	})
	if !s.RunUntil(func() bool { return len(a.inbox) >= 3 }, 1_000_000) {
		t.Fatalf("readback incomplete: %d replies, codes=%v", len(a.inbox), a.codes)
	}
	if !bytes.Equal(a.inbox[2].Payload, pattern) {
		t.Fatalf("copied data mismatch: %q", a.inbox[2].Payload)
	}
	if s.Stats.Counter("memsvc.copies").Value() != 1 {
		t.Fatal("copy not counted")
	}
}

func TestMemCopyRequiresWriteRightOnDst(t *testing.T) {
	s, a, src, _ := copyRig(t)
	// Install a read-only cap for the *source* segment and use it as dst.
	tile := s.Kernel.Procs()[0].Tile
	srcCap, _ := s.Kernel.Monitor(tile).Table().Lookup(src)
	roRef := s.Kernel.Monitor(tile).Table().Install(srcCap.Derive(cap.RRead))

	a.push(&msg.Message{
		Type: msg.TMemCopy, DstSvc: msg.SvcMemory, CapRef: uint32(src), Seq: 9,
		Payload: msg.EncodeMemCopyReq(msg.MemCopyReq{
			DstRef: uint32(roRef), Length: 16,
		}),
	})
	s.Run(200_000)
	last := a.codes[len(a.codes)-1]
	if last != msg.ERights {
		t.Fatalf("copy into read-only segment = %v, want ERights", last)
	}
}

func TestMemCopyBadDstRef(t *testing.T) {
	s, a, src, _ := copyRig(t)
	a.push(&msg.Message{
		Type: msg.TMemCopy, DstSvc: msg.SvcMemory, CapRef: uint32(src), Seq: 9,
		Payload: msg.EncodeMemCopyReq(msg.MemCopyReq{DstRef: 9999, Length: 16}),
	})
	s.Run(200_000)
	if last := a.codes[len(a.codes)-1]; last != msg.ENoCap {
		t.Fatalf("copy with bogus dst ref = %v, want ENoCap", last)
	}
}

func TestMemCopyBoundsChecked(t *testing.T) {
	s, a, src, dst := copyRig(t)
	a.push(&msg.Message{
		Type: msg.TMemCopy, DstSvc: msg.SvcMemory, CapRef: uint32(src), Seq: 9,
		Payload: msg.EncodeMemCopyReq(msg.MemCopyReq{
			DstRef: uint32(dst), DstOff: 4090, SrcOff: 0, Length: 64,
		}),
	})
	if !s.RunUntil(func() bool { return len(a.inbox) >= 1 }, 500_000) {
		t.Fatal("no reply")
	}
	if a.inbox[0].Type != msg.TError || a.inbox[0].Err != msg.EBounds {
		t.Fatalf("out-of-bounds copy reply = %v", a.inbox[0])
	}
}

func TestMemCopyMalformedPayload(t *testing.T) {
	s, a, src, _ := copyRig(t)
	a.push(&msg.Message{
		Type: msg.TMemCopy, DstSvc: msg.SvcMemory, CapRef: uint32(src), Seq: 9,
		Payload: []byte{1, 2, 3},
	})
	s.Run(200_000)
	if last := a.codes[len(a.codes)-1]; last != msg.EBadMsg {
		t.Fatalf("malformed copy = %v, want EBadMsg", last)
	}
}
