package core

import (
	"fmt"

	"apiary/internal/accel"

	"apiary/internal/cap"
	"apiary/internal/memseg"
	"apiary/internal/msg"
)

// UnloadApp tears an application down: its services are unbound everywhere,
// every capability naming them is revoked (generation bump + table sweep),
// its segments are freed and revoked, its tiles cleared and regions
// reclaimed. The inverse of LoadApp; the freed tiles are immediately
// reusable.
func (k *Kernel) UnloadApp(name string) error {
	app, ok := k.apps[name]
	if !ok {
		return fmt.Errorf("core: app %q not loaded", name)
	}

	appTiles := map[msg.TileID]bool{}
	for _, p := range app.Placed {
		appTiles[p.Tile] = true
	}

	// 0. Drop the app's replica groups (their virtual services unbind and
	// the member health records go with them).
	k.dropGroups(name)

	// 1. Unbind and revoke the app's services so stale endpoint
	// capabilities anywhere fail closed.
	for svc, owner := range k.svcOwner {
		if owner != name {
			continue
		}
		delete(k.services, svc)
		delete(k.svcOwner, svc)
		delete(k.exports, svc)
		k.checker.Revoke(cap.KindEndpoint, uint32(svc))
		k.bindAll(svc, msg.NoTile)
		for _, ts := range k.tiles {
			if ts.mon != nil {
				ts.mon.Table().RevokeObject(cap.KindEndpoint, uint32(svc))
			}
		}
	}
	for _, svc := range app.Spec.Exports {
		delete(k.exports, svc)
	}

	// 2. Free and revoke segments owned by the app's tiles.
	for segID, owner := range k.segOwner {
		if !appTiles[owner] {
			continue
		}
		_ = k.alloc.Free(memseg.SegID(segID))
		delete(k.segOwner, segID)
		k.checker.Revoke(cap.KindSegment, segID)
		for _, ts := range k.tiles {
			if ts.mon != nil {
				ts.mon.Table().RevokeObject(cap.KindSegment, segID)
			}
		}
	}

	// 3. Clear the tiles: detach shells, wipe their capability tables,
	// reclaim regions. The shell stays registered with the engine but a
	// detached shell has no monitor hooks; mark it stopped so it is inert.
	for _, p := range app.Placed {
		ts := k.tiles[p.Tile]
		if ts.shell != nil {
			ts.shell.SetState(accel.Stopped)
		}
		ts.mon.DetachShell()
		// Wipe everything this tile held.
		for i := 0; i < ts.mon.Table().Slots(); i++ {
			ts.mon.Table().Remove(cap.Ref(i))
		}
		ts.app, ts.accel, ts.svc = "", "", msg.SvcInvalid
		ts.slotNo = firstDynamicSlot
		if k.regions != nil {
			k.regions[p.Tile].Clear()
		}
	}

	// 4. Drop processes and grant records.
	kept := k.procs[:0]
	for _, pr := range k.procs {
		if !appTiles[pr.Tile] {
			kept = append(kept, pr)
		}
	}
	k.procs = kept
	keptGrants := k.grants[:0]
	for _, g := range k.grants {
		if !appTiles[g.tile] {
			keptGrants = append(keptGrants, g)
		}
	}
	k.grants = keptGrants

	delete(k.apps, name)
	return nil
}
