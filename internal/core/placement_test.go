package core

import (
	"fmt"
	"testing"

	"apiary/internal/accel"
	"apiary/internal/msg"
	"apiary/internal/noc"
)

// chainSpec builds an n-stage pipeline app (stage i connects to stage i+1).
func chainSpec(name string, n int, placement Placement) AppSpec {
	spec := AppSpec{Name: name, Placement: placement}
	for i := 0; i < n; i++ {
		a := AppAccel{
			Name:    fmt.Sprintf("s%d", i),
			New:     func() accel.Accelerator { return &progAccel{name: "s"} },
			Service: msg.FirstUserService + msg.ServiceID(i),
		}
		if i+1 < n {
			a.Connect = []msg.ServiceID{msg.FirstUserService + msg.ServiceID(i+1)}
		}
		spec.Accels = append(spec.Accels, a)
	}
	return spec
}

// chainHops sums the NoC hops between consecutive pipeline stages.
func chainHops(s *System, app *App) int {
	dims := s.Noc.Dims()
	total := 0
	for i := 0; i+1 < len(app.Placed); i++ {
		total += noc.Hops(dims.Coord(app.Placed[i].Tile), dims.Coord(app.Placed[i+1].Tile))
	}
	return total
}

func TestAffinityPlacementReducesHops(t *testing.T) {
	const stages = 6
	sFF, err := NewSystem(SystemConfig{Dims: noc.Dims{W: 4, H: 4}})
	if err != nil {
		t.Fatal(err)
	}
	appFF, err := sFF.Kernel.LoadApp(chainSpec("chain", stages, PlaceFirstFit))
	if err != nil {
		t.Fatal(err)
	}
	sAF, err := NewSystem(SystemConfig{Dims: noc.Dims{W: 4, H: 4}})
	if err != nil {
		t.Fatal(err)
	}
	appAF, err := sAF.Kernel.LoadApp(chainSpec("chain", stages, PlaceAffinity))
	if err != nil {
		t.Fatal(err)
	}
	ff, af := chainHops(sFF, appFF), chainHops(sAF, appAF)
	// Affinity must achieve the optimum for a chain: one hop per edge.
	if af != stages-1 {
		t.Fatalf("affinity chain hops = %d, want %d", af, stages-1)
	}
	if ff <= af {
		t.Fatalf("test premise broken: first-fit (%d hops) not worse than affinity (%d)", ff, af)
	}
}

func TestAffinityPlacementStillWorks(t *testing.T) {
	// Functional check: the affinity-placed pipeline actually runs.
	s, err := NewSystem(SystemConfig{Dims: noc.Dims{W: 4, H: 4}})
	if err != nil {
		t.Fatal(err)
	}
	driver := &progAccel{name: "driver"}
	target := &progAccel{name: "target"}
	app, err := s.Kernel.LoadApp(AppSpec{
		Name: "aff", Placement: PlaceAffinity,
		Accels: []AppAccel{
			{Name: "d", New: func() accel.Accelerator { return driver },
				Connect: []msg.ServiceID{msg.FirstUserService}},
			{Name: "t", New: func() accel.Accelerator { return target },
				Service: msg.FirstUserService},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	dims := s.Noc.Dims()
	if noc.Hops(dims.Coord(app.Placed[0].Tile), dims.Coord(app.Placed[1].Tile)) != 1 {
		t.Fatalf("connected pair not adjacent: %+v", app.Placed)
	}
	driver.push(&msg.Message{Type: msg.TRequest, DstSvc: msg.FirstUserService, Seq: 1})
	if !s.RunUntil(func() bool { return len(target.inbox) > 0 }, 100000) {
		t.Fatal("affinity-placed app not functional")
	}
}

func TestAffinitySingleAccelFallsBack(t *testing.T) {
	s, err := NewSystem(SystemConfig{Dims: noc.Dims{W: 3, H: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Kernel.LoadApp(AppSpec{
		Name: "solo", Placement: PlaceAffinity,
		Accels: []AppAccel{{Name: "a", New: func() accel.Accelerator { return &progAccel{name: "a"} }}},
	}); err != nil {
		t.Fatal(err)
	}
}
