package core

import (
	"bytes"
	"testing"

	"apiary/internal/accel"
	"apiary/internal/cap"
	"apiary/internal/msg"
	"apiary/internal/noc"
)

// progAccel is a scriptable accelerator: sends one queued message per tick
// and collects inbox + send codes.
type progAccel struct {
	name  string
	sends []*msg.Message
	codes []msg.ErrCode
	inbox []*msg.Message
}

func (a *progAccel) Name() string  { return a.name }
func (a *progAccel) Contexts() int { return 1 }
func (a *progAccel) Reset()        { a.inbox = nil }
func (a *progAccel) Tick(p accel.Port) {
	if len(a.sends) > 0 {
		m := a.sends[0]
		a.sends = a.sends[1:]
		a.codes = append(a.codes, p.Send(m))
	}
	if m, ok := p.Recv(); ok {
		a.inbox = append(a.inbox, m)
	}
}

func (a *progAccel) push(m *msg.Message) { a.sends = append(a.sends, m) }

func boot(t *testing.T) *System {
	t.Helper()
	s, err := NewSystem(SystemConfig{Dims: noc.Dims{W: 3, H: 3}})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestBootReservedTiles(t *testing.T) {
	s := boot(t)
	if s.Kernel.Monitor(KernelTile) != nil {
		t.Fatal("kernel tile should have no monitor")
	}
	if s.Kernel.Shell(MemTile) == nil {
		t.Fatal("memory service not installed")
	}
	if tile, ok := s.Kernel.ServiceTile(msg.SvcMemory); !ok || tile != MemTile {
		t.Fatal("memory service not registered")
	}
}

func TestLoadAppPlacement(t *testing.T) {
	s := boot(t)
	a1 := &progAccel{name: "a1"}
	a2 := &progAccel{name: "a2"}
	app, err := s.Kernel.LoadApp(AppSpec{
		Name: "demo",
		Accels: []AppAccel{
			{Name: "one", New: func() accel.Accelerator { return a1 }, Service: 20},
			{Name: "two", New: func() accel.Accelerator { return a2 }, Service: 21, Connect: []msg.ServiceID{20}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(app.Placed) != 2 || app.Placed[0].Tile == app.Placed[1].Tile {
		t.Fatalf("placement = %+v", app.Placed)
	}
	for _, p := range app.Placed {
		if p.Tile == KernelTile || p.Tile == MemTile {
			t.Fatalf("app placed on reserved tile %d", p.Tile)
		}
	}
	procs := s.Kernel.Procs()
	if len(procs) != 2 {
		t.Fatalf("procs = %+v", procs)
	}
	if s.Kernel.App("demo") == nil {
		t.Fatal("app not registered")
	}
}

func TestLoadAppErrors(t *testing.T) {
	s := boot(t)
	mk := func() accel.Accelerator { return &progAccel{name: "x"} }
	cases := []AppSpec{
		{Name: "", Accels: []AppAccel{{Name: "a", New: mk}}},
		{Name: "apiary", Accels: []AppAccel{{Name: "a", New: mk}}},
		{Name: "noaccels"},
		{Name: "dup", Accels: []AppAccel{{Name: "a", New: mk}, {Name: "a", New: mk}}},
		{Name: "noctor", Accels: []AppAccel{{Name: "a"}}},
		{Name: "reserved", Accels: []AppAccel{{Name: "a", New: mk, Service: msg.SvcMemory}}},
		{Name: "toobig", Accels: []AppAccel{
			{Name: "a", New: mk}, {Name: "b", New: mk}, {Name: "c", New: mk},
			{Name: "d", New: mk}, {Name: "e", New: mk}, {Name: "f", New: mk},
			{Name: "g", New: mk}, {Name: "h", New: mk}, // 8 > 7 free
		}},
	}
	for _, spec := range cases {
		if _, err := s.Kernel.LoadApp(spec); err == nil {
			t.Fatalf("LoadApp(%q) should have failed", spec.Name)
		}
	}
	// Duplicate app name.
	if _, err := s.Kernel.LoadApp(AppSpec{Name: "ok", Accels: []AppAccel{{Name: "a", New: mk}}}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Kernel.LoadApp(AppSpec{Name: "ok", Accels: []AppAccel{{Name: "a", New: mk}}}); err == nil {
		t.Fatal("duplicate app name accepted")
	}
}

func TestOversizedBitstreamRejected(t *testing.T) {
	s := boot(t)
	_, err := s.Kernel.LoadApp(AppSpec{
		Name: "huge",
		Accels: []AppAccel{{
			Name: "a", Cells: 100_000_000,
			New: func() accel.Accelerator { return &progAccel{name: "a"} },
		}},
	})
	if err == nil {
		t.Fatal("implausibly large accelerator placed")
	}
}

func TestMemoryServiceEndToEnd(t *testing.T) {
	s := boot(t)
	a := &progAccel{name: "memuser"}
	app, err := s.Kernel.LoadApp(AppSpec{
		Name: "memapp",
		Accels: []AppAccel{{
			Name: "u", New: func() accel.Accelerator { return a }, MemBytes: 4096,
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	slot := app.Placed[0].SegSlot
	if app.Placed[0].SegID == 0 {
		t.Fatal("no segment pre-allocated")
	}

	data := []byte("apiary stores real bytes")
	a.push(&msg.Message{
		Type: msg.TMemWrite, DstSvc: msg.SvcMemory, CapRef: uint32(slot), Seq: 1,
		Payload: msg.EncodeMemReq(msg.MemReq{Offset: 64, Data: data}),
	})
	a.push(&msg.Message{
		Type: msg.TMemRead, DstSvc: msg.SvcMemory, CapRef: uint32(slot), Seq: 2,
		Payload: msg.EncodeMemReq(msg.MemReq{Offset: 64, Length: uint32(len(data))}),
	})
	if !s.RunUntil(func() bool { return len(a.inbox) >= 2 }, 200000) {
		t.Fatalf("mem ops incomplete: inbox=%d codes=%v", len(a.inbox), a.codes)
	}
	if a.inbox[0].Type != msg.TMemReply || a.inbox[0].Seq != 1 {
		t.Fatalf("write reply = %v", a.inbox[0])
	}
	rd := a.inbox[1]
	if rd.Type != msg.TMemReply || !bytes.Equal(rd.Payload, data) {
		t.Fatalf("read reply = %v payload=%q", rd, rd.Payload)
	}
}

func TestMemoryBoundsEnforced(t *testing.T) {
	s := boot(t)
	a := &progAccel{name: "memuser"}
	app, _ := s.Kernel.LoadApp(AppSpec{
		Name: "memapp",
		Accels: []AppAccel{{
			Name: "u", New: func() accel.Accelerator { return a }, MemBytes: 1024,
		}},
	})
	slot := app.Placed[0].SegSlot
	a.push(&msg.Message{
		Type: msg.TMemRead, DstSvc: msg.SvcMemory, CapRef: uint32(slot), Seq: 1,
		Payload: msg.EncodeMemReq(msg.MemReq{Offset: 1000, Length: 100}),
	})
	if !s.RunUntil(func() bool { return len(a.inbox) >= 1 }, 200000) {
		t.Fatal("no reply")
	}
	if a.inbox[0].Type != msg.TError || a.inbox[0].Err != msg.EBounds {
		t.Fatalf("out-of-bounds read reply = %v", a.inbox[0])
	}
	if s.Stats.Counter("memsvc.bounds_errors").Value() == 0 {
		t.Fatal("bounds error not counted")
	}
}

func TestSyscallAllocAndUse(t *testing.T) {
	s := boot(t)
	a := &progAccel{name: "alloc"}
	if _, err := s.Kernel.LoadApp(AppSpec{
		Name:   "allocapp",
		Accels: []AppAccel{{Name: "a", New: func() accel.Accelerator { return a }}},
	}); err != nil {
		t.Fatal(err)
	}
	a.push(&msg.Message{Type: msg.TRequest, DstSvc: msg.SvcKernel, Seq: 1,
		Payload: EncodeAllocSeg(2048)})
	if !s.RunUntil(func() bool { return len(a.inbox) >= 1 }, 200000) {
		t.Fatal("no syscall reply")
	}
	rep, err := DecodeAllocSegReply(a.inbox[0].Payload)
	if err != nil {
		t.Fatalf("reply %v: %v", a.inbox[0], err)
	}
	// Use the returned slot for a write.
	a.push(&msg.Message{
		Type: msg.TMemWrite, DstSvc: msg.SvcMemory, CapRef: rep.CapSlot, Seq: 2,
		Payload: msg.EncodeMemReq(msg.MemReq{Offset: 0, Data: []byte{1, 2, 3}}),
	})
	if !s.RunUntil(func() bool { return len(a.inbox) >= 2 }, 200000) {
		t.Fatal("no write reply")
	}
	if a.inbox[1].Type != msg.TMemReply {
		t.Fatalf("write after syscall alloc = %v", a.inbox[1])
	}
}

func TestSyscallFreeRevokes(t *testing.T) {
	s := boot(t)
	a := &progAccel{name: "freer"}
	app, _ := s.Kernel.LoadApp(AppSpec{
		Name: "freeapp",
		Accels: []AppAccel{{
			Name: "a", New: func() accel.Accelerator { return a }, MemBytes: 512,
		}},
	})
	segID := app.Placed[0].SegID
	slot := app.Placed[0].SegSlot
	a.push(&msg.Message{Type: msg.TRequest, DstSvc: msg.SvcKernel, Seq: 1,
		Payload: EncodeFreeSeg(segID)})
	if !s.RunUntil(func() bool { return len(a.inbox) >= 1 }, 200000) {
		t.Fatal("no free reply")
	}
	if a.inbox[0].Type != msg.TReply {
		t.Fatalf("free reply = %v", a.inbox[0])
	}
	// Any further use must fail locally (cap revoked from the table).
	a.push(&msg.Message{
		Type: msg.TMemRead, DstSvc: msg.SvcMemory, CapRef: uint32(slot), Seq: 2,
		Payload: msg.EncodeMemReq(msg.MemReq{Length: 8}),
	})
	s.Run(100000)
	last := a.codes[len(a.codes)-1]
	if last != msg.ENoCap && last != msg.ERevoked {
		t.Fatalf("use after free code = %v", last)
	}
}

func TestSyscallRegisterAndLookup(t *testing.T) {
	s := boot(t)
	a := &progAccel{name: "reg"}
	b := &progAccel{name: "look"}
	if _, err := s.Kernel.LoadApp(AppSpec{
		Name: "regapp",
		Accels: []AppAccel{
			{Name: "a", New: func() accel.Accelerator { return a }},
			{Name: "b", New: func() accel.Accelerator { return b }},
		},
	}); err != nil {
		t.Fatal(err)
	}
	a.push(&msg.Message{Type: msg.TRequest, DstSvc: msg.SvcKernel, Seq: 1,
		Payload: EncodeRegisterSvc(42)})
	if !s.RunUntil(func() bool { return len(a.inbox) >= 1 }, 200000) {
		t.Fatal("no register reply")
	}
	if a.inbox[0].Type != msg.TReply {
		t.Fatalf("register reply = %v", a.inbox[0])
	}
	b.push(&msg.Message{Type: msg.TRequest, DstSvc: msg.SvcKernel, Seq: 2,
		Payload: EncodeLookupSvc(42)})
	if !s.RunUntil(func() bool { return len(b.inbox) >= 1 }, 200000) {
		t.Fatal("no lookup reply")
	}
	tile, err := DecodeLookupSvcReply(b.inbox[0].Payload)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := s.Kernel.ServiceTile(42); got != tile {
		t.Fatalf("lookup tile %d != registry %d", tile, got)
	}
	// Reserved IDs cannot be registered.
	a.push(&msg.Message{Type: msg.TRequest, DstSvc: msg.SvcKernel, Seq: 3,
		Payload: EncodeRegisterSvc(msg.SvcMemory)})
	if !s.RunUntil(func() bool { return len(a.inbox) >= 2 }, 200000) {
		t.Fatal("no reply")
	}
	if a.inbox[1].Type != msg.TError {
		t.Fatal("reserved service registration accepted")
	}
}

// TestCrossAppIsolation is the Figure-1 scenario: two mutually distrusting
// apps on one board; messages between them are denied unless exported.
func TestCrossAppIsolation(t *testing.T) {
	s := boot(t)
	victim := &progAccel{name: "victim"}
	attacker := &progAccel{name: "attacker"}
	if _, err := s.Kernel.LoadApp(AppSpec{
		Name:   "victimapp",
		Accels: []AppAccel{{Name: "v", New: func() accel.Accelerator { return victim }, Service: 30}},
	}); err != nil {
		t.Fatal(err)
	}
	// Attacker declares Connect to the victim's unexported service: load
	// must fail outright.
	if _, err := s.Kernel.LoadApp(AppSpec{
		Name: "attackerapp",
		Accels: []AppAccel{{
			Name: "x", New: func() accel.Accelerator { return attacker },
			Connect: []msg.ServiceID{30},
		}},
	}); err == nil {
		t.Fatal("manifest connecting to unexported foreign service accepted")
	}
	// Load without the connect, then try at runtime: both the OpConnect
	// syscall and a raw send must be denied.
	if _, err := s.Kernel.LoadApp(AppSpec{
		Name:   "attackerapp",
		Accels: []AppAccel{{Name: "x", New: func() accel.Accelerator { return attacker }}},
	}); err != nil {
		t.Fatal(err)
	}
	attacker.push(&msg.Message{Type: msg.TRequest, DstSvc: msg.SvcKernel, Seq: 1,
		Payload: EncodeConnect(30)})
	if !s.RunUntil(func() bool { return len(attacker.inbox) >= 1 }, 200000) {
		t.Fatal("no connect reply")
	}
	if attacker.inbox[0].Type != msg.TError || attacker.inbox[0].Err != msg.ENoCap {
		t.Fatalf("cross-app connect reply = %v", attacker.inbox[0])
	}
	attacker.push(&msg.Message{Type: msg.TRequest, DstSvc: 30, Seq: 2})
	s.Run(50000)
	if len(victim.inbox) != 0 {
		t.Fatal("unauthorized message reached the victim")
	}
	last := attacker.codes[len(attacker.codes)-1]
	if last != msg.ENoCap {
		t.Fatalf("raw cross-app send code = %v", last)
	}
}

func TestExportedServiceConnectable(t *testing.T) {
	s := boot(t)
	provider := &progAccel{name: "prov"}
	consumer := &progAccel{name: "cons"}
	if _, err := s.Kernel.LoadApp(AppSpec{
		Name:    "provapp",
		Accels:  []AppAccel{{Name: "p", New: func() accel.Accelerator { return provider }, Service: 31}},
		Exports: []msg.ServiceID{31},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Kernel.LoadApp(AppSpec{
		Name: "consapp",
		Accels: []AppAccel{{
			Name: "c", New: func() accel.Accelerator { return consumer },
			Connect: []msg.ServiceID{31},
		}},
	}); err != nil {
		t.Fatal(err)
	}
	consumer.push(&msg.Message{Type: msg.TRequest, DstSvc: 31, Seq: 9, Payload: []byte("hi")})
	if !s.RunUntil(func() bool { return len(provider.inbox) >= 1 }, 200000) {
		t.Fatal("exported service unreachable")
	}
}

func TestFaultRestartPolicy(t *testing.T) {
	s := boot(t)
	a := &progAccel{name: "crashy"}
	app, err := s.Kernel.LoadApp(AppSpec{
		Name:    "crashapp",
		Restart: true,
		Accels:  []AppAccel{{Name: "a", New: func() accel.Accelerator { return a }}},
	})
	if err != nil {
		t.Fatal(err)
	}
	tile := app.Placed[0].Tile
	s.Run(10)
	s.Kernel.Monitor(tile).ForceFault(0, accel.FaultPanic)
	if s.Kernel.Shell(tile).State() == accel.Running {
		t.Fatal("tile still running after fault")
	}
	// Kernel receives the report, waits out PR, resumes.
	if !s.RunUntil(func() bool {
		return s.Kernel.Shell(tile).State() == accel.Running
	}, 2_000_000) {
		t.Fatal("tile never resumed")
	}
	if app.Restarts != 1 {
		t.Fatalf("restarts = %d", app.Restarts)
	}
	if len(s.Kernel.Faults()) != 1 {
		t.Fatalf("fault reports = %d", len(s.Kernel.Faults()))
	}
}

func TestFaultNoRestartPolicy(t *testing.T) {
	s := boot(t)
	a := &progAccel{name: "crashy"}
	app, _ := s.Kernel.LoadApp(AppSpec{
		Name:   "crashapp",
		Accels: []AppAccel{{Name: "a", New: func() accel.Accelerator { return a }}},
	})
	tile := app.Placed[0].Tile
	s.Run(10)
	s.Kernel.Monitor(tile).ForceFault(0, accel.FaultExplicit)
	s.Run(600_000) // well past the PR delay a restart would have used
	if s.Kernel.Shell(tile).State() == accel.Running {
		t.Fatal("no-restart app was resumed")
	}
}

func TestGrantSegToService(t *testing.T) {
	s := boot(t)
	owner := &progAccel{name: "owner"}
	svc := &progAccel{name: "svc"}
	app, err := s.Kernel.LoadApp(AppSpec{
		Name: "grantapp",
		Accels: []AppAccel{
			{Name: "o", New: func() accel.Accelerator { return owner }, MemBytes: 1024},
			{Name: "s", New: func() accel.Accelerator { return svc }, Service: 33},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	segID := app.Placed[0].SegID
	svcTile := app.Placed[1].Tile
	owner.push(&msg.Message{Type: msg.TRequest, DstSvc: msg.SvcKernel, Seq: 1,
		Payload: EncodeGrantSeg(segID, 33, 0xFF)})
	if !s.RunUntil(func() bool { return len(owner.inbox) >= 1 }, 200000) {
		t.Fatal("no grant reply")
	}
	if owner.inbox[0].Type != msg.TReply {
		t.Fatalf("grant reply = %v", owner.inbox[0])
	}
	s.Run(1000)
	// The service tile now holds a segment cap for segID (rights masked to
	// read|write — RGrant must have been stripped).
	c, _, found := s.Kernel.Monitor(svcTile).Table().Find(cap.KindSegment, segID)
	if !found {
		t.Fatal("granted capability not installed")
	}
	if c.Rights.Has(cap.RGrant) {
		t.Fatal("grant rights not attenuated")
	}
}
