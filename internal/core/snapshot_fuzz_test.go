package core

import (
	"bytes"
	"testing"
)

// FuzzSnapshotRestore drives arbitrary bytes through the snapshot decoder —
// the untrusted input surface of cross-board migration, where the blob
// arrives over the cluster link. Invariants: DecodeSnapshot never panics;
// anything it accepts re-encodes canonically (Encode(Decode(b)) decodes to
// the same blob — a fixed point after one normalization pass); and a decode
// error never yields a partial snapshot. CI runs this for a bounded period
// (-fuzz=FuzzSnapshotRestore) on top of the committed corpus below.
func FuzzSnapshotRestore(f *testing.F) {
	f.Add(EncodeSnapshot(&Snapshot{App: "kv", Accels: []AccelSnapshot{
		{Name: "store", Contexts: [][]byte{{1, 2, 3}, nil}, SegBytes: []byte{9}},
		{Name: "bridge"},
	}}))
	f.Add(EncodeSnapshot(&Snapshot{}))
	f.Add(EncodeSnapshot(&Snapshot{App: "x", Accels: make([]AccelSnapshot, 16)}))
	f.Add([]byte("APSN"))
	f.Add([]byte("APSN\x01\x00"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodeSnapshot(data)
		if err != nil {
			if s != nil {
				t.Fatal("decode error returned a partial snapshot")
			}
			return
		}
		blob := EncodeSnapshot(s)
		s2, err := DecodeSnapshot(blob)
		if err != nil {
			t.Fatalf("re-decode of accepted snapshot failed: %v", err)
		}
		if !bytes.Equal(EncodeSnapshot(s2), blob) {
			t.Fatal("re-encode is not a fixed point")
		}
	})
}
