package manifest

import (
	"strings"
	"testing"

	"apiary/internal/accel"
	"apiary/internal/apps"
	"apiary/internal/core"
	"apiary/internal/msg"
	"apiary/internal/noc"
)

const videoJSON = `{
  "name": "video",
  "restart": true,
  "accels": [
    {"name": "client", "kind": "requester", "target": 16, "total": 10, "gap": 50, "size": 512, "connect": [16]},
    {"name": "enc", "kind": "encoder", "service": 16, "next": 17, "connect": [17]},
    {"name": "comp", "kind": "compressor", "service": 17,
     "rate": {"flits_per_kcycle": 1000, "burst_flits": 256}}
  ]
}`

func TestParseSingleApp(t *testing.T) {
	specs, err := Parse([]byte(videoJSON))
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 1 {
		t.Fatalf("specs = %d", len(specs))
	}
	s := specs[0]
	if s.Name != "video" || !s.Restart || len(s.Accels) != 3 {
		t.Fatalf("spec = %+v", s)
	}
	if s.Accels[1].Service != 16 || s.Accels[1].Connect[0] != 17 {
		t.Fatalf("encoder accel = %+v", s.Accels[1])
	}
	if s.Accels[2].Rate.FlitsPerKCycle != 1000 {
		t.Fatal("rate limit not parsed")
	}
}

func TestParseArray(t *testing.T) {
	specs, err := Parse([]byte(`[` + videoJSON + `,{"name":"kv","accels":[{"name":"kv","kind":"kvstore","service":20,"tenants":2}]}]`))
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 || specs[1].Name != "kv" {
		t.Fatalf("specs = %+v", specs)
	}
}

func TestRequesterRetryKnobs(t *testing.T) {
	spec := AccelSpec{Name: "c", Kind: "requester", Target: 16,
		Retry: 2, Backoff: 50, BackoffMax: 400}
	ctor, err := build(spec)
	if err != nil {
		t.Fatal(err)
	}
	r, ok := ctor().(*apps.Requester)
	if !ok {
		t.Fatalf("requester kind built %T", ctor())
	}
	if r.RetryLimit != 2 || r.BackoffBase != 50 || r.BackoffMax != 400 {
		t.Fatalf("retry knobs not wired: %+v", r)
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse([]byte(`{nope`)); err == nil {
		t.Fatal("bad JSON accepted")
	}
	if _, err := Parse([]byte(`{"name":"x","accels":[{"name":"a","kind":"warp-drive"}]}`)); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

// TestManifestRunsEndToEnd loads the JSON manifest into a real system and
// lets the video pipeline complete.
func TestManifestRunsEndToEnd(t *testing.T) {
	specs, err := Parse([]byte(videoJSON))
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.NewSystem(core.SystemConfig{Dims: noc.Dims{W: 3, H: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Kernel.LoadApp(specs[0]); err != nil {
		t.Fatal(err)
	}
	// 10 pipeline requests must complete: watch the compressor's monitor
	// forwarding counter climb.
	ok := sys.RunUntil(func() bool {
		return sys.Stats.Counter("mon.forwarded").Value() >= 40
	}, 10_000_000)
	if !ok {
		t.Fatal("manifest-loaded pipeline made no progress")
	}
}

func TestAllKindsBuild(t *testing.T) {
	for _, kind := range Kinds() {
		spec := AccelSpec{Name: "a", Kind: kind, Replicas: []uint16{20}}
		ctor, err := build(spec)
		if err != nil {
			t.Fatalf("kind %q: %v", kind, err)
		}
		a := ctor()
		if a.Name() == "" || a.Contexts() < 1 {
			t.Fatalf("kind %q built invalid accelerator", kind)
		}
	}
	_ = msg.SvcInvalid
}

func TestDegradeKnobs(t *testing.T) {
	spec := AccelSpec{Name: "c", Kind: "requester", Target: 16,
		Retry: 3, Deadline: 2000, Breaker: 4}
	ctor, err := build(spec)
	if err != nil {
		t.Fatal(err)
	}
	r := ctor().(*apps.Requester)
	if r.Budget != 2000 || r.BreakerThreshold != 4 || !r.RetryNacks {
		t.Fatalf("degrade knobs not wired: %+v", r)
	}
	// Without a retry budget the historical abandon-on-NACK behavior holds.
	spec.Retry = 0
	r = must(build(spec)).(*apps.Requester)
	if r.RetryNacks {
		t.Fatal("RetryNacks set without a retry budget")
	}

	lbSpec := AccelSpec{Name: "lb", Kind: "loadbal", Service: 18,
		Replicas: []uint16{20, 21}, Health: "static"}
	lb := must(build(lbSpec)).(*apps.LoadBalancer)
	if !lb.Static {
		t.Fatal("health=static not wired")
	}
	lbSpec.Health = ""
	lb = must(build(lbSpec)).(*apps.LoadBalancer)
	if lb.Static {
		t.Fatal("default health mode should be aware")
	}
}

func must(f func() accel.Accelerator, err error) accel.Accelerator {
	if err != nil {
		panic(err)
	}
	return f()
}

func TestQueueCapAndGroupsReachSpec(t *testing.T) {
	specs, err := Parse([]byte(`{
	  "name": "svc",
	  "groups": [{"service": 30, "members": [20, 21]}],
	  "accels": [
	    {"name": "a", "kind": "echo", "service": 20, "queue_cap": 4},
	    {"name": "b", "kind": "echo", "service": 21}
	  ]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	s := specs[0]
	if s.Accels[0].QueueCap != 4 || s.Accels[1].QueueCap != 0 {
		t.Fatalf("queue_cap not wired: %+v", s.Accels)
	}
	if len(s.Groups) != 1 || s.Groups[0].Service != 30 ||
		len(s.Groups[0].Members) != 2 || s.Groups[0].Members[1] != 21 {
		t.Fatalf("groups not wired: %+v", s.Groups)
	}
}

// TestReplicaValidation covers the load-time rejection matrix for replica
// lists and groups: duplicates, self-reference, unresolvable services and
// unknown health modes all fail closed before anything touches the kernel.
func TestReplicaValidation(t *testing.T) {
	cases := []struct {
		name string
		json string
		want string // substring of the error ("" = accept)
	}{
		{
			name: "valid replicas and group",
			json: `{"name":"x","groups":[{"service":30,"members":[20,21]}],"accels":[
				{"name":"lb","kind":"loadbal","service":18,"replicas":[20,21]},
				{"name":"a","kind":"echo","service":20},
				{"name":"b","kind":"echo","service":21}]}`,
		},
		{
			name: "duplicate replica",
			json: `{"name":"x","accels":[
				{"name":"lb","kind":"loadbal","service":18,"replicas":[20,20]},
				{"name":"a","kind":"echo","service":20}]}`,
			want: "twice",
		},
		{
			name: "self-referencing replica",
			json: `{"name":"x","accels":[
				{"name":"lb","kind":"loadbal","service":18,"replicas":[18]},
				{"name":"a","kind":"echo","service":18}]}`,
			want: "itself",
		},
		{
			name: "unresolvable replica",
			json: `{"name":"x","accels":[
				{"name":"lb","kind":"loadbal","service":18,"replicas":[99]}]}`,
			want: "not a service",
		},
		{
			name: "unknown health mode",
			json: `{"name":"x","accels":[
				{"name":"lb","kind":"loadbal","service":18,"replicas":[20],"health":"psychic"},
				{"name":"a","kind":"echo","service":20}]}`,
			want: "health mode",
		},
		{
			name: "group duplicate member",
			json: `{"name":"x","groups":[{"service":30,"members":[20,20]}],"accels":[
				{"name":"a","kind":"echo","service":20}]}`,
			want: "twice",
		},
		{
			name: "group self-reference",
			json: `{"name":"x","groups":[{"service":30,"members":[30]}],"accels":[
				{"name":"a","kind":"echo","service":20}]}`,
			want: "itself",
		},
		{
			name: "group unresolvable member",
			json: `{"name":"x","groups":[{"service":30,"members":[77]}],"accels":[
				{"name":"a","kind":"echo","service":20}]}`,
			want: "not a service",
		},
		{
			name: "group with no members",
			json: `{"name":"x","groups":[{"service":30}],"accels":[
				{"name":"a","kind":"echo","service":20}]}`,
			want: "no members",
		},
		{
			name: "group collides with accel service",
			json: `{"name":"x","groups":[{"service":20,"members":[21]}],"accels":[
				{"name":"a","kind":"echo","service":20},
				{"name":"b","kind":"echo","service":21}]}`,
			want: "collides",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse([]byte(tc.json))
			if tc.want == "" {
				if err != nil {
					t.Fatalf("valid manifest rejected: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("accepted, want error containing %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}
