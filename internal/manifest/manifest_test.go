package manifest

import (
	"testing"

	"apiary/internal/apps"
	"apiary/internal/core"
	"apiary/internal/msg"
	"apiary/internal/noc"
)

const videoJSON = `{
  "name": "video",
  "restart": true,
  "accels": [
    {"name": "client", "kind": "requester", "target": 16, "total": 10, "gap": 50, "size": 512, "connect": [16]},
    {"name": "enc", "kind": "encoder", "service": 16, "next": 17, "connect": [17]},
    {"name": "comp", "kind": "compressor", "service": 17,
     "rate": {"flits_per_kcycle": 1000, "burst_flits": 256}}
  ]
}`

func TestParseSingleApp(t *testing.T) {
	specs, err := Parse([]byte(videoJSON))
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 1 {
		t.Fatalf("specs = %d", len(specs))
	}
	s := specs[0]
	if s.Name != "video" || !s.Restart || len(s.Accels) != 3 {
		t.Fatalf("spec = %+v", s)
	}
	if s.Accels[1].Service != 16 || s.Accels[1].Connect[0] != 17 {
		t.Fatalf("encoder accel = %+v", s.Accels[1])
	}
	if s.Accels[2].Rate.FlitsPerKCycle != 1000 {
		t.Fatal("rate limit not parsed")
	}
}

func TestParseArray(t *testing.T) {
	specs, err := Parse([]byte(`[` + videoJSON + `,{"name":"kv","accels":[{"name":"kv","kind":"kvstore","service":20,"tenants":2}]}]`))
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 || specs[1].Name != "kv" {
		t.Fatalf("specs = %+v", specs)
	}
}

func TestRequesterRetryKnobs(t *testing.T) {
	spec := AccelSpec{Name: "c", Kind: "requester", Target: 16,
		Retry: 2, Backoff: 50, BackoffMax: 400}
	ctor, err := build(spec)
	if err != nil {
		t.Fatal(err)
	}
	r, ok := ctor().(*apps.Requester)
	if !ok {
		t.Fatalf("requester kind built %T", ctor())
	}
	if r.RetryLimit != 2 || r.BackoffBase != 50 || r.BackoffMax != 400 {
		t.Fatalf("retry knobs not wired: %+v", r)
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse([]byte(`{nope`)); err == nil {
		t.Fatal("bad JSON accepted")
	}
	if _, err := Parse([]byte(`{"name":"x","accels":[{"name":"a","kind":"warp-drive"}]}`)); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

// TestManifestRunsEndToEnd loads the JSON manifest into a real system and
// lets the video pipeline complete.
func TestManifestRunsEndToEnd(t *testing.T) {
	specs, err := Parse([]byte(videoJSON))
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.NewSystem(core.SystemConfig{Dims: noc.Dims{W: 3, H: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Kernel.LoadApp(specs[0]); err != nil {
		t.Fatal(err)
	}
	// 10 pipeline requests must complete: watch the compressor's monitor
	// forwarding counter climb.
	ok := sys.RunUntil(func() bool {
		return sys.Stats.Counter("mon.forwarded").Value() >= 40
	}, 10_000_000)
	if !ok {
		t.Fatal("manifest-loaded pipeline made no progress")
	}
}

func TestAllKindsBuild(t *testing.T) {
	for _, kind := range Kinds() {
		spec := AccelSpec{Name: "a", Kind: kind, Replicas: []uint16{20}}
		ctor, err := build(spec)
		if err != nil {
			t.Fatalf("kind %q: %v", kind, err)
		}
		a := ctor()
		if a.Name() == "" || a.Contexts() < 1 {
			t.Fatalf("kind %q built invalid accelerator", kind)
		}
	}
	_ = msg.SvcInvalid
}
