// Package manifest converts JSON application manifests into kernel
// AppSpecs. Binaries (apiaryd, apiaryctl) use it to load applications
// without compiling Go code; the accelerator "kind" names index a registry
// of the library accelerators.
package manifest

import (
	"encoding/json"
	"fmt"

	"apiary/internal/accel"
	"apiary/internal/apps"
	"apiary/internal/core"
	"apiary/internal/monitor"
	"apiary/internal/msg"
	"apiary/internal/sim"
)

// AccelSpec is one accelerator entry in a JSON manifest.
type AccelSpec struct {
	Name     string   `json:"name"`
	Kind     string   `json:"kind"`
	Service  uint16   `json:"service,omitempty"`
	Cells    int      `json:"cells,omitempty"`
	Connect  []uint16 `json:"connect,omitempty"`
	MemBytes uint64   `json:"mem_bytes,omitempty"`
	WantNet  bool     `json:"want_net,omitempty"`
	Rate     *struct {
		FlitsPerKCycle int `json:"flits_per_kcycle"`
		BurstFlits     int `json:"burst_flits"`
	} `json:"rate,omitempty"`

	// QueueCap bounds the shell's admission queue (0 = default depth).
	QueueCap int `json:"queue_cap,omitempty"`

	// Kind-specific parameters.
	Next       uint16   `json:"next,omitempty"`        // encoder: downstream service
	Tenants    int      `json:"tenants,omitempty"`     // kvstore
	Replicas   []uint16 `json:"replicas,omitempty"`    // loadbal
	Health     string   `json:"health,omitempty"`      // loadbal: "aware" (default) or "static"
	Flow       uint16   `json:"flow,omitempty"`        // netbridge
	Target     uint16   `json:"target,omitempty"`      // netbridge/requester
	Total      int      `json:"total,omitempty"`       // requester
	Gap        uint64   `json:"gap,omitempty"`         // requester
	Size       int      `json:"size,omitempty"`        // requester payload bytes
	Retry      int      `json:"retry,omitempty"`       // requester: retransmits per request
	Backoff    uint64   `json:"backoff,omitempty"`     // requester: backoff base cycles (0 = off)
	BackoffMax uint64   `json:"backoff_max,omitempty"` // requester: backoff cap (default 64x base)
	Deadline   uint64   `json:"deadline,omitempty"`    // requester: per-request queueing budget (cycles)
	Breaker    int      `json:"breaker,omitempty"`     // requester: busy streak that opens the circuit breaker
	Rows       int      `json:"rows,omitempty"`        // matvec
	Cols       int      `json:"cols,omitempty"`        // matvec
}

// GroupSpec declares one health-aware replica set in a JSON manifest.
type GroupSpec struct {
	Service uint16   `json:"service"`
	Members []uint16 `json:"members"`
}

// AppManifest is a JSON application manifest.
type AppManifest struct {
	Name    string      `json:"name"`
	Restart bool        `json:"restart,omitempty"`
	Exports []uint16    `json:"exports,omitempty"`
	Groups  []GroupSpec `json:"groups,omitempty"`
	Accels  []AccelSpec `json:"accels"`
}

// Kinds lists the accelerator kinds the registry can build.
func Kinds() []string {
	return []string{"encoder", "compressor", "checksum", "matvec", "kvstore",
		"loadbal", "requester", "netbridge", "echo"}
}

// build constructs the accelerator for one spec.
func build(a AccelSpec) (func() accel.Accelerator, error) {
	mk := func(f func() accel.Accelerator) func() accel.Accelerator { return f }
	switch a.Kind {
	case "encoder":
		return mk(func() accel.Accelerator { return apps.NewEncoder(msg.ServiceID(a.Next)) }), nil
	case "compressor":
		return mk(func() accel.Accelerator { return apps.NewCompressor() }), nil
	case "checksum":
		return mk(func() accel.Accelerator { return apps.NewChecksum() }), nil
	case "echo":
		return mk(func() accel.Accelerator {
			return apps.NewStage(apps.StageConfig{
				Name:    "echo",
				Process: func(in []byte) ([]byte, msg.ErrCode) { return in, msg.EOK },
			})
		}), nil
	case "matvec":
		rows, cols := a.Rows, a.Cols
		if rows == 0 {
			rows = 16
		}
		if cols == 0 {
			cols = 64
		}
		return mk(func() accel.Accelerator { return apps.NewMatVec(rows, cols, 1) }), nil
	case "kvstore":
		t := a.Tenants
		if t == 0 {
			t = 4
		}
		return mk(func() accel.Accelerator { return apps.NewKVStore(t) }), nil
	case "loadbal":
		reps := make([]msg.ServiceID, len(a.Replicas))
		for i, v := range a.Replicas {
			reps[i] = msg.ServiceID(v)
		}
		static := a.Health == "static"
		return mk(func() accel.Accelerator {
			lb := apps.NewLoadBalancer(reps)
			lb.Static = static
			return lb
		}), nil
	case "requester":
		size := a.Size
		if size == 0 {
			size = 64
		}
		return mk(func() accel.Accelerator {
			r := apps.NewRequester(msg.ServiceID(a.Target), a.Total,
				sim.Cycle(a.Gap), func(int) []byte { return make([]byte, size) }, nil)
			r.RetryLimit = a.Retry
			r.BackoffBase = sim.Cycle(a.Backoff)
			r.BackoffMax = sim.Cycle(a.BackoffMax)
			r.Budget = sim.Cycle(a.Deadline)
			r.BreakerThreshold = a.Breaker
			// A retry budget implies the resilient client: transient NACKs
			// (EBusy sheds, failover-window bounces) retry instead of erroring.
			r.RetryNacks = a.Retry > 0
			return r
		}), nil
	case "netbridge":
		return mk(func() accel.Accelerator {
			b := apps.NewNetBridge(a.Flow)
			if a.Target != 0 {
				b.Target = msg.ServiceID(a.Target)
			} else {
				b.Process = func(in []byte) ([]byte, msg.ErrCode) { return in, msg.EOK }
			}
			return b
		}), nil
	default:
		return nil, fmt.Errorf("manifest: unknown accelerator kind %q (known: %v)",
			a.Kind, Kinds())
	}
}

// validateReplicas rejects malformed replica lists at load time: duplicate
// members, self-reference, health modes the registry does not know, and
// service IDs that no accelerator in the manifest declares — an
// unresolvable replica would otherwise surface only as runtime ENoService.
func validateReplicas(m AppManifest) error {
	declared := map[uint16]bool{}
	for _, a := range m.Accels {
		if a.Service != 0 {
			declared[a.Service] = true
		}
	}
	for _, a := range m.Accels {
		if a.Kind != "loadbal" {
			continue
		}
		if a.Health != "" && a.Health != "aware" && a.Health != "static" {
			return fmt.Errorf("manifest: accel %q: unknown health mode %q (aware|static)",
				a.Name, a.Health)
		}
		seen := map[uint16]bool{}
		for _, r := range a.Replicas {
			if r == a.Service {
				return fmt.Errorf("manifest: accel %q lists itself as a replica (service %d)",
					a.Name, r)
			}
			if seen[r] {
				return fmt.Errorf("manifest: accel %q lists replica %d twice", a.Name, r)
			}
			seen[r] = true
			if !declared[r] {
				return fmt.Errorf("manifest: accel %q replica %d is not a service declared in app %q",
					a.Name, r, m.Name)
			}
		}
	}
	for _, g := range m.Groups {
		if len(g.Members) == 0 {
			return fmt.Errorf("manifest: group %d has no members", g.Service)
		}
		if declared[g.Service] {
			return fmt.Errorf("manifest: group service %d collides with an accelerator service",
				g.Service)
		}
		seen := map[uint16]bool{}
		for _, r := range g.Members {
			if r == g.Service {
				return fmt.Errorf("manifest: group %d lists itself as a member", g.Service)
			}
			if seen[r] {
				return fmt.Errorf("manifest: group %d lists member %d twice", g.Service, r)
			}
			seen[r] = true
			if !declared[r] {
				return fmt.Errorf("manifest: group %d member %d is not a service declared in app %q",
					g.Service, r, m.Name)
			}
		}
	}
	return nil
}

// ToAppSpec converts a parsed manifest into a kernel AppSpec.
func ToAppSpec(m AppManifest) (core.AppSpec, error) {
	if err := validateReplicas(m); err != nil {
		return core.AppSpec{}, err
	}
	spec := core.AppSpec{Name: m.Name, Restart: m.Restart}
	for _, e := range m.Exports {
		spec.Exports = append(spec.Exports, msg.ServiceID(e))
	}
	for _, g := range m.Groups {
		gs := core.ReplicaGroupSpec{Service: msg.ServiceID(g.Service)}
		for _, r := range g.Members {
			gs.Members = append(gs.Members, msg.ServiceID(r))
		}
		spec.Groups = append(spec.Groups, gs)
	}
	for _, a := range m.Accels {
		ctor, err := build(a)
		if err != nil {
			return core.AppSpec{}, fmt.Errorf("accel %q: %w", a.Name, err)
		}
		aa := core.AppAccel{
			Name:     a.Name,
			New:      ctor,
			Service:  msg.ServiceID(a.Service),
			Cells:    a.Cells,
			MemBytes: a.MemBytes,
			WantNet:  a.WantNet,
			QueueCap: a.QueueCap,
		}
		for _, c := range a.Connect {
			aa.Connect = append(aa.Connect, msg.ServiceID(c))
		}
		if a.Rate != nil {
			aa.Rate = monitor.RateLimit{
				FlitsPerKCycle: a.Rate.FlitsPerKCycle,
				BurstFlits:     a.Rate.BurstFlits,
			}
		}
		spec.Accels = append(spec.Accels, aa)
	}
	return spec, nil
}

// Parse decodes a JSON manifest (a single app object or an array of them)
// into AppSpecs.
func Parse(data []byte) ([]core.AppSpec, error) {
	var many []AppManifest
	if err := json.Unmarshal(data, &many); err != nil {
		var one AppManifest
		if err2 := json.Unmarshal(data, &one); err2 != nil {
			return nil, fmt.Errorf("manifest: not a JSON app or app list: %v", err)
		}
		many = []AppManifest{one}
	}
	var specs []core.AppSpec
	for _, m := range many {
		s, err := ToAppSpec(m)
		if err != nil {
			return nil, err
		}
		specs = append(specs, s)
	}
	return specs, nil
}
