package msg

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestMemReqRoundTrip(t *testing.T) {
	f := func(off uint64, length uint32, data []byte) bool {
		r := MemReq{Offset: off, Length: length, Data: data}
		got, err := DecodeMemReq(EncodeMemReq(r))
		if err != nil {
			return false
		}
		return got.Offset == off && got.Length == length && bytes.Equal(got.Data, data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMemReqShort(t *testing.T) {
	if _, err := DecodeMemReq(make([]byte, 11)); err == nil {
		t.Fatal("short MemReq decoded")
	}
}

func TestNetSendRoundTrip(t *testing.T) {
	f := func(node uint32, flow uint16, data []byte) bool {
		r := NetSendReq{Remote: NetAddr{Node: node, Flow: flow}, Data: data}
		got, err := DecodeNetSendReq(EncodeNetSendReq(r))
		if err != nil {
			return false
		}
		return got.Remote == r.Remote && bytes.Equal(got.Data, data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNetRecvRoundTrip(t *testing.T) {
	r := NetRecvInd{Remote: NetAddr{Node: 8, Flow: 80}, Data: []byte("x")}
	got, err := DecodeNetRecvInd(EncodeNetRecvInd(r))
	if err != nil || got.Remote != r.Remote || !bytes.Equal(got.Data, r.Data) {
		t.Fatalf("round trip: %+v err=%v", got, err)
	}
}

func TestNetListenRoundTrip(t *testing.T) {
	got, err := DecodeNetListenReq(EncodeNetListenReq(NetListenReq{Flow: 443}))
	if err != nil || got.Flow != 443 {
		t.Fatalf("got %+v err=%v", got, err)
	}
	if _, err := DecodeNetListenReq(nil); err == nil {
		t.Fatal("empty listen decoded")
	}
}

func TestInstallCapRoundTrip(t *testing.T) {
	r := InstallCapReq{Slot: 7, Cap: []byte{1, 2, 3}}
	got, err := DecodeInstallCapReq(EncodeInstallCapReq(r))
	if err != nil || got.Slot != 7 || !bytes.Equal(got.Cap, r.Cap) {
		t.Fatalf("got %+v err=%v", got, err)
	}
	if _, err := DecodeInstallCapReq([]byte{1}); err == nil {
		t.Fatal("short InstallCap decoded")
	}
}

func TestSetNameRoundTrip(t *testing.T) {
	r := SetNameReq{Svc: SvcNet, Tile: 12}
	got, err := DecodeSetNameReq(EncodeSetNameReq(r))
	if err != nil || got != r {
		t.Fatalf("got %+v err=%v", got, err)
	}
	if _, err := DecodeSetNameReq([]byte{0}); err == nil {
		t.Fatal("short SetName decoded")
	}
}

func TestFaultReportRoundTrip(t *testing.T) {
	r := FaultReport{Tile: 4, Ctx: 2, Reason: 1, Cycle: 123456}
	got, err := DecodeFaultReport(EncodeFaultReport(r))
	if err != nil || got != r {
		t.Fatalf("got %+v err=%v", got, err)
	}
	if _, err := DecodeFaultReport(make([]byte, 11)); err == nil {
		t.Fatal("short FaultReport decoded")
	}
}
