// Package msg defines Apiary's message-passing layer: the message format
// carried over the NoC, the logical service namespace, RPC conventions and
// the error codes returned by monitors and services.
//
// In Apiary (paper §4.3) service identification lives in the API layer: a
// message names a logical destination service, and the per-tile monitor
// resolves it to a physical tile. The wire format is deliberately small and
// fixed-layout, as a hardware implementation would be.
package msg

import (
	"encoding/binary"
	"fmt"
)

// TileID identifies a physical tile on the NoC (router coordinate, flattened
// row-major). The special value NoTile means "unrouted/unknown".
type TileID uint16

// NoTile is the zero-like sentinel for an unset tile.
const NoTile TileID = 0xFFFF

// ServiceID is a logical service name. Accelerators address messages to
// services, never to raw tiles; the monitor's name table performs the
// translation (paper §4.3). Well-known low IDs are reserved for Apiary
// services; applications register IDs >= FirstUserService.
type ServiceID uint16

// Well-known Apiary service IDs.
const (
	SvcInvalid ServiceID = 0
	SvcKernel  ServiceID = 1 // microkernel control plane
	SvcMemory  ServiceID = 2 // segment memory service
	SvcNet     ServiceID = 3 // hardware network stack
	SvcTrace   ServiceID = 4 // message-level tracing/debugging
	SvcName    ServiceID = 5 // name lookup (backed by kernel)

	// FirstUserService is the first ID available to applications.
	FirstUserService ServiceID = 16
)

// Type discriminates message kinds. The kind determines how the payload is
// interpreted; transport (NoC) treats all kinds identically.
type Type uint8

// Message types. Request/Reply form the application RPC convention; the Mem*
// and Net* types are the system-service protocols; Ctl* types are the
// kernel <-> monitor management plane, which travels on the dedicated
// management virtual channel.
const (
	TInvalid Type = iota
	TRequest      // application-defined request
	TReply        // application-defined reply
	TError        // reply carrying an error code
	TOneway       // application-defined, no reply expected

	TMemRead   // memory service: read  {segment cap, offset, length}
	TMemWrite  // memory service: write {segment cap, offset, data}
	TMemReply  // memory service completion
	TNetSend   // network service: transmit payload to remote node
	TNetRecv   // network service: inbound payload delivery
	TNetListen // network service: register interest in a flow

	TCtlInstallCap // kernel->monitor: install capability
	TCtlRevokeCap  // kernel->monitor: revoke capability
	TCtlSetName    // kernel->monitor: bind service id -> tile
	TCtlFault      // monitor->kernel: fault report
	TCtlDrain      // kernel->monitor: force fail-stop drain
	TCtlResume     // kernel->monitor: clear fail-stop after reconfigure
	TCtlPing       // liveness probe
	TCtlStats      // stats snapshot request

	TMemCopy // memory service: DMA copy between two segments

	TCtlQuiesce // kernel->monitor: healthy drain for checkpoint/migration
)

// String returns a short mnemonic for the type.
func (t Type) String() string {
	names := [...]string{
		"invalid", "req", "reply", "err", "oneway",
		"mem.read", "mem.write", "mem.reply",
		"net.send", "net.recv", "net.listen",
		"ctl.installcap", "ctl.revokecap", "ctl.setname",
		"ctl.fault", "ctl.drain", "ctl.resume", "ctl.ping", "ctl.stats",
		"mem.copy", "ctl.quiesce",
	}
	if int(t) < len(names) {
		return names[t]
	}
	return fmt.Sprintf("type(%d)", uint8(t))
}

// ErrCode is a system-level error carried in TError replies.
type ErrCode uint16

// Error codes returned by monitors, the kernel and system services.
const (
	EOK          ErrCode = 0
	ENoCap       ErrCode = 1  // no capability for the destination/resource
	ERevoked     ErrCode = 2  // capability generation mismatch (revoked)
	ERights      ErrCode = 3  // capability lacks the required rights
	ENoService   ErrCode = 4  // service id not bound in the name table
	EFailStopped ErrCode = 5  // destination tile is fail-stopped
	ERateLimited ErrCode = 6  // egress rate limit exceeded, message dropped
	EBounds      ErrCode = 7  // memory access outside segment bounds
	ENoMem       ErrCode = 8  // memory service allocation failure
	EBadMsg      ErrCode = 9  // malformed payload
	ETooBig      ErrCode = 10 // payload exceeds MaxPayload
	ENoContext   ErrCode = 11 // no such process context on the tile
	EBusy        ErrCode = 12 // service queue full; retry
	ENoRoute     ErrCode = 13 // unreachable destination tile
	EQuiescing   ErrCode = 14 // destination draining for checkpoint; retry
)

func (e ErrCode) String() string {
	names := [...]string{
		"ok", "no-capability", "revoked", "insufficient-rights",
		"no-service", "fail-stopped", "rate-limited", "out-of-bounds",
		"no-memory", "bad-message", "too-big", "no-context", "busy",
		"no-route", "quiescing",
	}
	if int(e) < len(names) {
		return names[e]
	}
	return fmt.Sprintf("err(%d)", uint16(e))
}

// Error converts the code to a Go error (nil for EOK).
func (e ErrCode) Error() error {
	if e == EOK {
		return nil
	}
	return &SysError{Code: e}
}

// SysError wraps an ErrCode as a Go error.
type SysError struct{ Code ErrCode }

func (e *SysError) Error() string { return "apiary: " + e.Code.String() }

// TraceCtx is the distributed-tracing context a message carries across
// boards: a fleet-unique trace ID, the span ID of the hop that emitted the
// message, and the board the trace originated on. It is a sideband field —
// deliberately NOT part of the wire encoding (Encode/Decode), so enabling
// tracing cannot change a single wire byte, queue occupancy, or timing. A
// hardware implementation would carry it in reserved header bits; here the
// pure-observation invariant (bit-exact runs with tracing off vs on) is the
// load-bearing property, so the context rides alongside the message instead.
type TraceCtx struct {
	ID     uint64 // trace identity; 0 means "not traced"
	Span   uint64 // span ID of the emitting hop (parent of the next hop)
	Origin uint16 // board the trace started on
}

// Valid reports whether the context names a live trace.
func (t TraceCtx) Valid() bool { return t.ID != 0 }

// MaxPayload bounds a single message's payload. Larger transfers use the
// memory service or multiple messages; the bound keeps NoC buffering and
// worst-case head-of-line blocking small, as a hardware design would.
const MaxPayload = 4096

// HeaderBytes is the encoded header size (see Encode).
const HeaderBytes = 28

// Message is one unit of communication. SrcTile and SrcCtx are stamped by
// the sending monitor — accelerators cannot forge them (paper §4.5). DstSvc
// addresses a logical service; DstTile is filled in by name resolution and
// is what the NoC routes on.
type Message struct {
	Type    Type
	Err     ErrCode   // meaningful for TError / *Reply types
	SrcTile TileID    // stamped by sending monitor
	DstTile TileID    // resolved physical destination
	SrcCtx  uint8     // sending process context on the source tile
	DstCtx  uint8     // destination process context
	DstSvc  ServiceID // logical destination service
	Seq     uint32    // RPC sequence number, echoed in replies
	CapRef  uint32    // capability reference accompanying the message
	// Budget is the request's queueing deadline in cycles (0 = none): the
	// destination shell sheds the request with EBusy when its admission
	// queue cannot drain it within the budget, instead of queueing it to
	// death. Carried in the header so intermediaries (load balancers,
	// pipeline stages) can forward it unchanged.
	Budget  uint32
	Payload []byte
	// Trace is the sideband distributed-tracing context (see TraceCtx). It
	// is excluded from Encode/Decode on purpose: observation must not alter
	// the wire. Propagated by Reply and by services that forward requests.
	Trace TraceCtx
}

// Reply constructs a reply to m with the given type, swapping the
// source/destination addressing and echoing Seq. The caller's monitor will
// re-stamp SrcTile; setting it here keeps loopback paths correct too.
func (m *Message) Reply(t Type, payload []byte) *Message {
	return &Message{
		Type:    t,
		SrcTile: m.DstTile,
		DstTile: m.SrcTile,
		SrcCtx:  m.DstCtx,
		DstCtx:  m.SrcCtx,
		Seq:     m.Seq,
		Payload: payload,
		Trace:   m.Trace,
	}
}

// ErrorReply constructs a TError reply carrying code.
func (m *Message) ErrorReply(code ErrCode) *Message {
	r := m.Reply(TError, nil)
	r.Err = code
	return r
}

// WireSize reports the encoded size of the message in bytes.
func (m *Message) WireSize() int { return HeaderBytes + len(m.Payload) }

// Encode serializes the message into a fresh byte slice using the fixed
// little-endian layout:
//
//	off  field
//	0    Type (u8)
//	1    SrcCtx (u8)
//	2    DstCtx (u8)
//	3    reserved (u8)
//	4    Err (u16)
//	6    SrcTile (u16)
//	8    DstTile (u16)
//	10   DstSvc (u16)
//	12   Seq (u32)
//	16   CapRef (u32)
//	20   Budget (u32)
//	24   payload length (u32)
//	28   payload bytes
func (m *Message) Encode() ([]byte, error) {
	if len(m.Payload) > MaxPayload {
		return nil, ETooBig.Error()
	}
	b := make([]byte, HeaderBytes+len(m.Payload))
	b[0] = byte(m.Type)
	b[1] = m.SrcCtx
	b[2] = m.DstCtx
	binary.LittleEndian.PutUint16(b[4:], uint16(m.Err))
	binary.LittleEndian.PutUint16(b[6:], uint16(m.SrcTile))
	binary.LittleEndian.PutUint16(b[8:], uint16(m.DstTile))
	binary.LittleEndian.PutUint16(b[10:], uint16(m.DstSvc))
	binary.LittleEndian.PutUint32(b[12:], m.Seq)
	binary.LittleEndian.PutUint32(b[16:], m.CapRef)
	binary.LittleEndian.PutUint32(b[20:], m.Budget)
	binary.LittleEndian.PutUint32(b[24:], uint32(len(m.Payload)))
	copy(b[HeaderBytes:], m.Payload)
	return b, nil
}

// Decode parses a message previously produced by Encode.
func Decode(b []byte) (*Message, error) {
	if len(b) < HeaderBytes {
		return nil, EBadMsg.Error()
	}
	n := binary.LittleEndian.Uint32(b[24:])
	if n > MaxPayload || int(n) != len(b)-HeaderBytes {
		return nil, EBadMsg.Error()
	}
	m := &Message{
		Type:    Type(b[0]),
		SrcCtx:  b[1],
		DstCtx:  b[2],
		Err:     ErrCode(binary.LittleEndian.Uint16(b[4:])),
		SrcTile: TileID(binary.LittleEndian.Uint16(b[6:])),
		DstTile: TileID(binary.LittleEndian.Uint16(b[8:])),
		DstSvc:  ServiceID(binary.LittleEndian.Uint16(b[10:])),
		Seq:     binary.LittleEndian.Uint32(b[12:]),
		CapRef:  binary.LittleEndian.Uint32(b[16:]),
		Budget:  binary.LittleEndian.Uint32(b[20:]),
	}
	if n > 0 {
		m.Payload = make([]byte, n)
		copy(m.Payload, b[HeaderBytes:])
	}
	return m, nil
}

// String renders a compact one-line summary for tracing.
func (m *Message) String() string {
	return fmt.Sprintf("%s seq=%d %d/%d->%d/%d svc=%d cap=%d err=%s len=%d",
		m.Type, m.Seq, m.SrcTile, m.SrcCtx, m.DstTile, m.DstCtx,
		m.DstSvc, m.CapRef, m.Err, len(m.Payload))
}
