package msg

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func sample() *Message {
	return &Message{
		Type:    TRequest,
		Err:     EOK,
		SrcTile: 3,
		DstTile: 9,
		SrcCtx:  1,
		DstCtx:  2,
		DstSvc:  FirstUserService,
		Seq:     77,
		CapRef:  5,
		Budget:  4096,
		Payload: []byte("hello, fpga"),
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	m := sample()
	b, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != m.Type || got.SrcTile != m.SrcTile || got.DstTile != m.DstTile ||
		got.SrcCtx != m.SrcCtx || got.DstCtx != m.DstCtx || got.DstSvc != m.DstSvc ||
		got.Seq != m.Seq || got.CapRef != m.CapRef || got.Budget != m.Budget ||
		!bytes.Equal(got.Payload, m.Payload) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, m)
	}
}

func TestEncodeDecodeProperty(t *testing.T) {
	f := func(typ uint8, src, dst, svc uint16, sctx, dctx uint8, seq, capRef, budget uint32, payload []byte) bool {
		if len(payload) > MaxPayload {
			payload = payload[:MaxPayload]
		}
		m := &Message{
			Type: Type(typ), SrcTile: TileID(src), DstTile: TileID(dst),
			DstSvc: ServiceID(svc), SrcCtx: sctx, DstCtx: dctx,
			Seq: seq, CapRef: capRef, Budget: budget, Payload: payload,
		}
		b, err := m.Encode()
		if err != nil {
			return false
		}
		if len(b) != m.WireSize() {
			return false
		}
		got, err := Decode(b)
		if err != nil {
			return false
		}
		return got.Type == m.Type && got.Seq == m.Seq &&
			got.SrcTile == m.SrcTile && got.DstTile == m.DstTile &&
			got.DstSvc == m.DstSvc && got.CapRef == m.CapRef &&
			got.Budget == m.Budget && bytes.Equal(got.Payload, m.Payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeTooBig(t *testing.T) {
	m := &Message{Type: TRequest, Payload: make([]byte, MaxPayload+1)}
	if _, err := m.Encode(); err == nil {
		t.Fatal("oversized payload encoded without error")
	}
}

func TestDecodeMalformed(t *testing.T) {
	cases := [][]byte{
		nil,
		make([]byte, HeaderBytes-1),
		func() []byte { // length field lies
			b, _ := sample().Encode()
			b[24] = 0xFF
			return b
		}(),
		func() []byte { // truncated payload
			b, _ := sample().Encode()
			return b[:len(b)-3]
		}(),
	}
	for i, c := range cases {
		if _, err := Decode(c); err == nil {
			t.Fatalf("case %d: malformed message decoded without error", i)
		}
	}
}

func TestDecodeCopiesPayload(t *testing.T) {
	m := sample()
	b, _ := m.Encode()
	got, _ := Decode(b)
	b[HeaderBytes] ^= 0xFF
	if !bytes.Equal(got.Payload, m.Payload) {
		t.Fatal("decoded payload aliases the wire buffer")
	}
}

func TestReplyAddressing(t *testing.T) {
	m := sample()
	r := m.Reply(TReply, []byte("ok"))
	if r.DstTile != m.SrcTile || r.SrcTile != m.DstTile {
		t.Fatal("reply did not swap tiles")
	}
	if r.DstCtx != m.SrcCtx || r.SrcCtx != m.DstCtx {
		t.Fatal("reply did not swap contexts")
	}
	if r.Seq != m.Seq {
		t.Fatal("reply did not echo seq")
	}
}

func TestErrorReply(t *testing.T) {
	r := sample().ErrorReply(ENoCap)
	if r.Type != TError || r.Err != ENoCap {
		t.Fatalf("ErrorReply = %+v", r)
	}
}

func TestErrCodeError(t *testing.T) {
	if EOK.Error() != nil {
		t.Fatal("EOK.Error() should be nil")
	}
	err := ENoCap.Error()
	if err == nil || !strings.Contains(err.Error(), "no-capability") {
		t.Fatalf("ENoCap error = %v", err)
	}
}

func TestStringers(t *testing.T) {
	if TMemRead.String() != "mem.read" {
		t.Fatalf("TMemRead = %q", TMemRead.String())
	}
	if Type(200).String() == "" {
		t.Fatal("unknown type should still render")
	}
	if ERateLimited.String() != "rate-limited" {
		t.Fatalf("ERateLimited = %q", ERateLimited.String())
	}
	if ErrCode(999).String() == "" {
		t.Fatal("unknown code should still render")
	}
	if !strings.Contains(sample().String(), "seq=77") {
		t.Fatal("Message.String missing fields")
	}
}
