package msg

import "encoding/binary"

// This file defines the fixed payload layouts for the system-service
// protocols (memory, network, kernel control plane). Each codec returns
// EBadMsg on malformed input rather than panicking, because payloads arrive
// from untrusted accelerators.

// MemReq is the payload of TMemRead / TMemWrite. The segment itself is named
// by the message's CapRef; the payload carries only offset/length/data.
type MemReq struct {
	Offset uint64
	Length uint32 // read length; ignored for writes
	Data   []byte // write data; empty for reads
}

// EncodeMemReq serializes r.
func EncodeMemReq(r MemReq) []byte {
	b := make([]byte, 12+len(r.Data))
	binary.LittleEndian.PutUint64(b[0:], r.Offset)
	binary.LittleEndian.PutUint32(b[8:], r.Length)
	copy(b[12:], r.Data)
	return b
}

// DecodeMemReq parses a MemReq payload.
func DecodeMemReq(b []byte) (MemReq, error) {
	if len(b) < 12 {
		return MemReq{}, EBadMsg.Error()
	}
	r := MemReq{
		Offset: binary.LittleEndian.Uint64(b[0:]),
		Length: binary.LittleEndian.Uint32(b[8:]),
	}
	if len(b) > 12 {
		r.Data = append([]byte(nil), b[12:]...)
	}
	return r, nil
}

// MemCopyReq is the payload of TMemCopy: a segment-to-segment DMA executed
// entirely inside the memory service. The *source* segment is named by the
// message's CapRef (checked for read rights by the monitor); the
// destination by DstRef, a second capability reference that the monitor
// checks for write rights and rewrites to the segment ID, exactly like
// CapRef.
type MemCopyReq struct {
	DstRef uint32 // local cap ref on egress; segment ID after the monitor
	DstOff uint64
	SrcOff uint64
	Length uint32
}

// EncodeMemCopyReq serializes r.
func EncodeMemCopyReq(r MemCopyReq) []byte {
	b := make([]byte, 24)
	binary.LittleEndian.PutUint32(b[0:], r.DstRef)
	binary.LittleEndian.PutUint64(b[4:], r.DstOff)
	binary.LittleEndian.PutUint64(b[12:], r.SrcOff)
	binary.LittleEndian.PutUint32(b[20:], r.Length)
	return b
}

// DecodeMemCopyReq parses a MemCopyReq payload.
func DecodeMemCopyReq(b []byte) (MemCopyReq, error) {
	if len(b) < 24 {
		return MemCopyReq{}, EBadMsg.Error()
	}
	return MemCopyReq{
		DstRef: binary.LittleEndian.Uint32(b[0:]),
		DstOff: binary.LittleEndian.Uint64(b[4:]),
		SrcOff: binary.LittleEndian.Uint64(b[12:]),
		Length: binary.LittleEndian.Uint32(b[20:]),
	}, nil
}

// SetMemCopyDst rewrites the DstRef field in an encoded MemCopyReq in
// place (monitor egress path).
func SetMemCopyDst(payload []byte, segID uint32) {
	if len(payload) >= 4 {
		binary.LittleEndian.PutUint32(payload[0:], segID)
	}
}

// NetAddr identifies a remote endpoint on the datacenter network: a node and
// a flow (port-like) number on that node.
type NetAddr struct {
	Node uint32
	Flow uint16
}

// NetSendReq is the payload of TNetSend: transmit Data to Remote.
type NetSendReq struct {
	Remote NetAddr
	Data   []byte
}

// EncodeNetSendReq serializes r.
func EncodeNetSendReq(r NetSendReq) []byte {
	b := make([]byte, 8+len(r.Data))
	binary.LittleEndian.PutUint32(b[0:], r.Remote.Node)
	binary.LittleEndian.PutUint16(b[4:], r.Remote.Flow)
	copy(b[8:], r.Data)
	return b
}

// DecodeNetSendReq parses a NetSendReq payload.
func DecodeNetSendReq(b []byte) (NetSendReq, error) {
	if len(b) < 8 {
		return NetSendReq{}, EBadMsg.Error()
	}
	r := NetSendReq{
		Remote: NetAddr{
			Node: binary.LittleEndian.Uint32(b[0:]),
			Flow: binary.LittleEndian.Uint16(b[4:]),
		},
	}
	if len(b) > 8 {
		r.Data = append([]byte(nil), b[8:]...)
	}
	return r, nil
}

// NetRecvInd is the payload of TNetRecv: Data arrived from Remote for the
// flow the receiving context listened on.
type NetRecvInd struct {
	Remote NetAddr
	Data   []byte
}

// EncodeNetRecvInd serializes r. The layout matches NetSendReq.
func EncodeNetRecvInd(r NetRecvInd) []byte {
	return EncodeNetSendReq(NetSendReq{Remote: r.Remote, Data: r.Data})
}

// DecodeNetRecvInd parses a NetRecvInd payload.
func DecodeNetRecvInd(b []byte) (NetRecvInd, error) {
	s, err := DecodeNetSendReq(b)
	return NetRecvInd{Remote: s.Remote, Data: s.Data}, err
}

// NetListenReq is the payload of TNetListen: deliver inbound traffic for
// Flow to the sending context.
type NetListenReq struct {
	Flow uint16
}

// EncodeNetListenReq serializes r.
func EncodeNetListenReq(r NetListenReq) []byte {
	b := make([]byte, 2)
	binary.LittleEndian.PutUint16(b, r.Flow)
	return b
}

// DecodeNetListenReq parses a NetListenReq payload.
func DecodeNetListenReq(b []byte) (NetListenReq, error) {
	if len(b) < 2 {
		return NetListenReq{}, EBadMsg.Error()
	}
	return NetListenReq{Flow: binary.LittleEndian.Uint16(b)}, nil
}

// InstallCapReq is the payload of TCtlInstallCap (kernel -> monitor): place
// the encoded capability at Slot in the tile's table.
type InstallCapReq struct {
	Slot uint32
	Cap  []byte // opaque encoded capability (cap.Encode)
}

// EncodeInstallCapReq serializes r.
func EncodeInstallCapReq(r InstallCapReq) []byte {
	b := make([]byte, 4+len(r.Cap))
	binary.LittleEndian.PutUint32(b, r.Slot)
	copy(b[4:], r.Cap)
	return b
}

// DecodeInstallCapReq parses an InstallCapReq payload.
func DecodeInstallCapReq(b []byte) (InstallCapReq, error) {
	if len(b) < 4 {
		return InstallCapReq{}, EBadMsg.Error()
	}
	r := InstallCapReq{Slot: binary.LittleEndian.Uint32(b)}
	if len(b) > 4 {
		r.Cap = append([]byte(nil), b[4:]...)
	}
	return r, nil
}

// SetNameReq is the payload of TCtlSetName: bind Svc to Tile in the
// receiving monitor's name table. Tile == NoTile unbinds.
type SetNameReq struct {
	Svc  ServiceID
	Tile TileID
}

// EncodeSetNameReq serializes r.
func EncodeSetNameReq(r SetNameReq) []byte {
	b := make([]byte, 4)
	binary.LittleEndian.PutUint16(b[0:], uint16(r.Svc))
	binary.LittleEndian.PutUint16(b[2:], uint16(r.Tile))
	return b
}

// DecodeSetNameReq parses a SetNameReq payload.
func DecodeSetNameReq(b []byte) (SetNameReq, error) {
	if len(b) < 4 {
		return SetNameReq{}, EBadMsg.Error()
	}
	return SetNameReq{
		Svc:  ServiceID(binary.LittleEndian.Uint16(b[0:])),
		Tile: TileID(binary.LittleEndian.Uint16(b[2:])),
	}, nil
}

// FaultReport is the payload of TCtlFault (monitor -> kernel).
type FaultReport struct {
	Tile   TileID
	Ctx    uint8
	Reason uint8 // accel.FaultReason, kept as a raw byte on the wire
	Cycle  uint64
}

// EncodeFaultReport serializes r.
func EncodeFaultReport(r FaultReport) []byte {
	b := make([]byte, 12)
	binary.LittleEndian.PutUint16(b[0:], uint16(r.Tile))
	b[2] = r.Ctx
	b[3] = r.Reason
	binary.LittleEndian.PutUint64(b[4:], r.Cycle)
	return b
}

// DecodeFaultReport parses a FaultReport payload.
func DecodeFaultReport(b []byte) (FaultReport, error) {
	if len(b) < 12 {
		return FaultReport{}, EBadMsg.Error()
	}
	return FaultReport{
		Tile:   TileID(binary.LittleEndian.Uint16(b[0:])),
		Ctx:    b[2],
		Reason: b[3],
		Cycle:  binary.LittleEndian.Uint64(b[4:]),
	}, nil
}
