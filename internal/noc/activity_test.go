package noc

import (
	"fmt"
	"testing"

	"apiary/internal/msg"
	"apiary/internal/sim"
)

// trafficRun drives bursty random traffic (with long idle gaps for the
// engine to fast-forward) across a 4x4 mesh and returns the engine, network
// and delivery count.
func trafficRun(t *testing.T, seed uint64, skip bool) (*sim.Engine, *Network, *sim.Stats, int) {
	t.Helper()
	e := sim.NewEngine(seed)
	e.SetIdleSkip(skip)
	st := sim.NewStats()
	n := NewNetwork(e, st, Config{Dims: Dims{4, 4}})
	delivered := 0
	for i := 0; i < n.Dims().Tiles(); i++ {
		n.NI(msg.TileID(i)).SetDeliver(func(*msg.Message, sim.Cycle) { delivered++ })
	}
	rng := sim.NewRNG(seed)
	// Bursts of traffic separated by gaps far longer than any packet's
	// flight time, so an idle-skipping engine has real stretches to skip.
	at := sim.Cycle(1)
	for burst := 0; burst < 8; burst++ {
		e.Schedule(at, func(now sim.Cycle) {
			for k := 0; k < 12; k++ {
				src := msg.TileID(rng.Intn(16))
				dst := msg.TileID(rng.Intn(16))
				size := 1 + rng.Intn(200)
				if err := n.NI(src).Send(req(src, dst, make([]byte, size))); err != nil {
					t.Errorf("send: %v", err)
				}
			}
		})
		at += 2000
	}
	e.Run(20000)
	return e, n, st, delivered
}

// TestIdleSkipDeterminism proves the tentpole's determinism claim end to
// end: the same seed with fast-forward enabled and disabled produces
// identical noc.* counters, identical deliveries and an intact credit
// invariant — while the skipping run actually skipped.
func TestIdleSkipDeterminism(t *testing.T) {
	counters := []string{
		"noc.flits_routed", "noc.pkts_routed", "noc.stall_no_credit",
		"noc.stall_no_vc", "noc.msgs_sent", "noc.msgs_delivered",
	}
	snapshot := func(st *sim.Stats) string {
		s := ""
		for _, c := range counters {
			s += fmt.Sprintf("%s=%d ", c, st.Counter(c).Value())
		}
		return s
	}

	eOn, nOn, stOn, delOn := trafficRun(t, 99, true)
	eOff, nOff, stOff, delOff := trafficRun(t, 99, false)

	if eOn.SkippedCycles() == 0 {
		t.Fatal("skip run skipped nothing; test is vacuous")
	}
	if eOff.SkippedCycles() != 0 {
		t.Fatal("no-skip run skipped cycles")
	}
	if eOn.Now() != eOff.Now() {
		t.Fatalf("final cycle differs: skip=%d noskip=%d", eOn.Now(), eOff.Now())
	}
	if delOn != delOff || delOn == 0 {
		t.Fatalf("deliveries differ (or zero): skip=%d noskip=%d", delOn, delOff)
	}
	if a, b := snapshot(stOn), snapshot(stOff); a != b {
		t.Fatalf("counters differ:\n skip:   %s\n noskip: %s", a, b)
	}
	for name, n := range map[string]*Network{"skip": nOn, "noskip": nOff} {
		if v := n.CreditInvariantViolation(); v != "" {
			t.Fatalf("%s run: credit invariant violated: %s", name, v)
		}
	}
}

// TestCreditInvariantAfterFastForward is the satellite's focused check:
// after traffic drains and the engine fast-forwards the remaining idle
// cycles, every credit counter is back at BufDepth and the O(1) Quiescent
// agrees with a full buffer scan.
func TestCreditInvariantAfterFastForward(t *testing.T) {
	e, n, _, delivered := trafficRun(t, 7, true)
	if delivered == 0 {
		t.Fatal("no traffic delivered")
	}
	if e.SkippedCycles() == 0 {
		t.Fatal("engine never fast-forwarded")
	}
	if !n.Quiescent() {
		t.Fatal("network not quiescent after drain")
	}
	// Cross-check the O(1) inflight counter against the ground truth.
	for i := range n.routers {
		r := &n.routers[i]
		for p := Port(0); p < numPorts; p++ {
			for v := VCID(0); v < NumVCs; v++ {
				if r.bufLen(p, v) != 0 {
					t.Fatalf("router %d port %s vc %d not empty despite Quiescent", i, p, v)
				}
			}
		}
	}
	for i := range n.nis {
		if ni := &n.nis[i]; ni.QueuedPackets() != 0 {
			t.Fatalf("ni %d still has queued packets despite Quiescent", ni.tile)
		}
	}
	if v := n.CreditInvariantViolation(); v != "" {
		t.Fatalf("credit invariant violated after fast-forward: %s", v)
	}
}

// TestRouterOccupancyTracking checks the active-set bookkeeping directly:
// occupancy bits and the busy counter must stay consistent with the FIFOs
// under load, and an empty router must report Idle.
func TestRouterOccupancyTracking(t *testing.T) {
	e, n := build(t, 3, 3)
	for i := range n.routers {
		if r := &n.routers[i]; !r.Idle() {
			t.Fatalf("fresh router %v not idle", r.Coord)
		}
	}
	if err := n.NI(0).Send(req(0, 8, make([]byte, 300))); err != nil {
		t.Fatal(err)
	}
	for cycle := 0; cycle < 200; cycle++ {
		e.Step()
		for i := range n.routers {
			r := &n.routers[i]
			busy := 0
			var mask uint16
			for p := Port(0); p < numPorts; p++ {
				for v := VCID(0); v < NumVCs; v++ {
					if r.bufLen(p, v) != 0 {
						mask |= 1 << uint(int(p)*NumVCs+int(v))
						busy++
					}
				}
			}
			if mask != n.soa.occ[i] {
				t.Fatalf("cycle %d router %v: occ=%016b fifos=%016b",
					cycle, r.Coord, n.soa.occ[i], mask)
			}
			if r.Idle() != (busy == 0) {
				t.Fatalf("cycle %d router %v: Idle=%v with %d occupied VCs",
					cycle, r.Coord, r.Idle(), busy)
			}
		}
	}
	if !n.Quiescent() {
		t.Fatal("message not drained in 200 cycles")
	}
}
