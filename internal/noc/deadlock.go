package noc

// This file implements a static deadlock-freedom check for routing
// functions: build the channel dependency graph (CDG) that a RouteFunc
// induces on a mesh and verify it is acyclic (Dally & Seitz). Apiary uses
// it in tests to certify every shipped routing function, and the kernel
// could use it to vet custom routing configurations before enabling them.
//
// Channels are directed links (router -> neighbouring router). A dependency
// u->v exists if some packet, while holding channel u, can request channel
// v next — i.e. there are source/destination tiles for which the route
// enters a router over u and leaves over v. With deterministic routing the
// dependency set is computed exactly by walking every (src, dst) route.

import "apiary/internal/msg"

// channel identifies a directed link by its upstream router coordinate and
// output port.
type channel struct {
	from Coord
	out  Port
}

// BuildCDG computes the channel dependency graph of route on a w×h mesh.
// The result maps each channel to the set of channels it can wait on.
func BuildCDG(d Dims, route RouteFunc) map[channel]map[channel]bool {
	cdg := make(map[channel]map[channel]bool)
	addDep := func(u, v channel) {
		s, ok := cdg[u]
		if !ok {
			s = make(map[channel]bool)
			cdg[u] = s
		}
		s[v] = true
	}
	for s := 0; s < d.Tiles(); s++ {
		for t := 0; t < d.Tiles(); t++ {
			src, dst := d.Coord(msg.TileID(s)), d.Coord(msg.TileID(t))
			if src == dst {
				continue
			}
			// Walk the route, recording consecutive-channel dependencies.
			here := src
			var prev *channel
			for here != dst {
				p := route(here, dst)
				if p == Local {
					break
				}
				cur := channel{from: here, out: p}
				if prev != nil {
					addDep(*prev, cur)
				}
				prev = &cur
				here = neighbour(here, p)
			}
		}
	}
	return cdg
}

// CheckDeadlockFree reports whether route's CDG on a w×h mesh is acyclic.
// If not, it returns one cycle (as a list of channels) as a witness.
func CheckDeadlockFree(d Dims, route RouteFunc) (bool, []string) {
	cdg := BuildCDG(d, route)

	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make(map[channel]int, len(cdg))
	parent := make(map[channel]channel)

	var cycle []string
	var dfs func(u channel) bool
	dfs = func(u channel) bool {
		color[u] = grey
		for v := range cdg[u] {
			switch color[v] {
			case white:
				parent[v] = u
				if dfs(v) {
					return true
				}
			case grey:
				// Found a cycle: walk parents from u back to v.
				cycle = append(cycle, chanString(v))
				for w := u; w != v; w = parent[w] {
					cycle = append(cycle, chanString(w))
				}
				return true
			}
		}
		color[u] = black
		return false
	}
	for u := range cdg {
		if color[u] == white {
			if dfs(u) {
				return false, cycle
			}
		}
	}
	return true, nil
}

func chanString(c channel) string {
	return c.from.String() + "/" + c.out.String()
}
