package noc

import (
	"fmt"
	"testing"

	"apiary/internal/msg"
	"apiary/internal/sim"
)

// sampleAll records every packet's span, formatted hop by hop, in completion
// order — the strictest observable the express bypass must reproduce.
type sampleAll struct {
	spans []string
}

func (s *sampleAll) Sample(msg.TileID, uint64, *msg.Message) bool { return true }

func (s *sampleAll) Complete(sp *Span) {
	line := fmt.Sprintf("%d->%d type=%d seq=%d vc=%d flits=%d q=%d eject=%d",
		sp.Src, sp.Dst, sp.Type, sp.Seq, sp.VC, sp.Flits, sp.Queued, sp.Eject)
	for _, h := range sp.Hops {
		line += fmt.Sprintf(" [%s in=%s out=%s a=%d g=%d d=%d]",
			h.At, h.In, h.Out, h.Arrive, h.Grant, h.Depart)
	}
	s.spans = append(s.spans, line)
}

// runSparse drives the express bypass's target workload on an 8x8 mesh:
// mostly-idle traffic where at most one packet is in flight, plus the edge
// cases that must degrade to per-flit simulation — same-cycle double sends
// (activation confirm fails), sends landing mid-flight (materialization),
// fault injections mid-flight, armed corruptions, self-sends and VC0
// management traffic. Returns the full observable snapshot plus every
// sampled span.
func runSparse(t *testing.T, seed uint64, shards int, mode sim.ParallelMode, idleSkip, noExpress bool) (nocSnapshot, []string) {
	t.Helper()
	e := sim.NewEngine(seed)
	defer e.Close()
	e.SetIdleSkip(idleSkip)
	st := sim.NewStats()
	n := NewNetwork(e, st, Config{Dims: Dims{8, 8}, Shards: shards, NoExpress: noExpress})
	e.SetParallel(mode)
	rec := &sampleAll{}
	n.SetSpanSampler(rec)

	snap := nocSnapshot{
		Counters:  make(map[string]uint64),
		HistStats: make(map[string][6]float64),
	}
	tiles := n.Dims().Tiles()
	// Ping-pong: request deliveries bounce a reply until the chain budget
	// runs out, exercising commit-phase Sends on an empty network — each
	// leg is a fresh express candidate.
	pong := 0
	for i := 0; i < tiles; i++ {
		tile := msg.TileID(i)
		n.NI(tile).SetDeliver(func(m *msg.Message, lat sim.Cycle) {
			snap.Delivery = append(snap.Delivery,
				fmt.Sprintf("%d<-%d t=%d seq=%d lat=%d now=%d",
					tile, m.SrcTile, m.Type, m.Seq, lat, e.Now()))
			if m.Type == msg.TRequest && pong < 12 {
				pong++
				r := &msg.Message{Type: msg.TReply, SrcTile: tile, DstTile: m.SrcTile,
					Seq: m.Seq + 1000, Payload: make([]byte, 40)}
				if err := n.NI(tile).Send(r); err != nil {
					t.Errorf("pong send: %v", err)
				}
			}
		})
	}

	send := func(src, dst int, ty msg.Type, seq uint32, payload int) {
		m := &msg.Message{Type: ty, SrcTile: msg.TileID(src), DstTile: msg.TileID(dst),
			Seq: seq, Payload: make([]byte, payload)}
		if err := n.NI(msg.TileID(src)).Send(m); err != nil {
			t.Errorf("send seq=%d: %v", seq, err)
		}
	}

	// Widely spaced singles: pure express flights (long idle gaps let the
	// fast-forward path engage when idleSkip is on). Mix of hop counts,
	// flit counts, VCs, and a self-send.
	cases := []struct {
		src, dst int
		ty       msg.Type
		payload  int
	}{
		{0, 63, msg.TRequest, 200}, // corner to corner, many flits
		{63, 0, msg.TReply, 0},     // single-ish flit back
		{5, 5, msg.TRequest, 33},   // self-send: zero hops
		{12, 50, msg.TCtlPing, 0},  // VC0 management
		{7, 56, msg.TMemRead, 120}, // anti-diagonal
		{31, 32, msg.TError, 10},   // adjacent tiles
	}
	cyc := sim.Cycle(1)
	var seq uint32
	for _, c := range cases {
		c, s := c, seq
		e.Schedule(cyc, func(sim.Cycle) { send(c.src, c.dst, c.ty, s, c.payload) })
		seq++
		cyc += 80
	}

	// Same-cycle pair: the second Send raises inflight before the tick, so
	// neither packet may bypass — activation is never attempted, or the
	// commit confirmation falls back.
	{
		s := seq
		e.Schedule(cyc, func(sim.Cycle) {
			send(2, 61, msg.TRequest, s, 64)
			send(61, 2, msg.TRequest, s+1, 64)
		})
		seq += 2
		cyc += 80
	}

	// Mid-flight Send from the event phase: the first packet's bypass (if
	// granted) must materialize back to per-flit state, bit-exact.
	{
		s := seq
		e.Schedule(cyc, func(sim.Cycle) { send(0, 62, msg.TRequest, s, 180) })
		e.Schedule(cyc+6, func(sim.Cycle) { send(9, 54, msg.TRequest, s+1, 180) })
		seq += 2
		cyc += 120
	}

	// Mid-flight Send landing on the *source* NI, same VC: the queue-order
	// guard must hold the newcomer behind the virtual remainder.
	{
		s := seq
		e.Schedule(cyc, func(sim.Cycle) { send(3, 60, msg.TRequest, s, 220) })
		e.Schedule(cyc+4, func(sim.Cycle) { send(3, 10, msg.TRequest, s+1, 0) })
		seq += 2
		cyc += 120
	}

	// Mid-flight fault: a stall window opening on the route materializes
	// the flight, then delays it like any per-flit packet.
	{
		s := seq
		e.Schedule(cyc, func(sim.Cycle) { send(0, 7, msg.TRequest, s, 200) })
		at := cyc
		e.Schedule(cyc+5, func(now sim.Cycle) {
			n.StallLink(3, East, at+60)
		})
		seq++
		cyc += 160
	}

	// Armed corruption: no bypass while armed; the flip fires on the
	// per-flit flight, after which bypassing resumes.
	{
		s := seq
		e.Schedule(cyc, func(sim.Cycle) { n.CorruptNext(16, East) })
		e.Schedule(cyc+2, func(sim.Cycle) { send(16, 23, msg.TRequest, s, 50) })
		e.Schedule(cyc+100, func(sim.Cycle) { send(16, 23, msg.TRequest, s+1, 50) })
		seq += 2
		cyc += 240
	}

	e.Run(cyc)
	if !e.RunUntil(n.Quiescent, 100000) {
		t.Fatalf("mesh did not quiesce (shards=%d mode=%v skip=%v noExpress=%v)",
			shards, mode, idleSkip, noExpress)
	}
	if e.Now() < 2*cyc {
		e.Run(2*cyc - e.Now())
	}

	snap.Now = e.Now()
	for _, c := range st.Counters() {
		snap.Counters[c.Name] = c.Value()
	}
	for _, h := range st.Histograms() {
		snap.HistStats[h.Name] = [6]float64{
			float64(h.Count()), h.Mean(), h.Min(), h.Max(), h.Quantile(0.5), h.Quantile(0.99),
		}
	}
	snap.Links = n.LinkUtilization()
	snap.CreditViolation = n.CreditInvariantViolation()
	return snap, rec.spans
}

// stripExpressMeta removes the bypass's own bookkeeping counters before a
// differential comparison: they are the only observables allowed to differ
// between express-on and express-off runs.
func stripExpressMeta(s nocSnapshot) nocSnapshot {
	delete(s.Counters, "noc.express_hits")
	delete(s.Counters, "noc.express_materialized")
	return s
}

// TestExpressDifferential is the bypass's proof obligation: over a workload
// covering pure bypassed flights, failed activations, mid-flight Sends
// (event-phase and same-NI), mid-flight faults and armed corruptions, an
// express-on run is bit-exact with express-off — every counter, latency
// distribution, delivery record, per-link flit count and per-hop span stamp
// — across serial/parallel, shard counts and idle-skip.
func TestExpressDifferential(t *testing.T) {
	for _, seed := range []uint64{3, 41} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			base, baseSpans := runSparse(t, seed, 1, sim.ParallelOff, false, true)
			if base.CreditViolation != "" {
				t.Fatalf("credit invariant (baseline): %s", base.CreditViolation)
			}
			if len(base.Delivery) == 0 {
				t.Fatal("baseline delivered nothing")
			}
			if base.Counters["noc.express_hits"] != 0 {
				t.Fatal("NoExpress run recorded express hits")
			}
			if base.Counters["noc.flits_corrupted"] == 0 {
				t.Fatal("workload never fired the armed corruption")
			}
			if base.Counters["noc.stall_fault"] == 0 {
				t.Fatal("workload never hit the injected stall")
			}
			baseStripped := stripExpressMeta(base)

			for _, shards := range []int{1, 2, 4, 8} {
				for _, mode := range []sim.ParallelMode{sim.ParallelOff, sim.ParallelOn} {
					for _, skip := range []bool{false, true} {
						shards, mode, skip := shards, mode, skip
						name := fmt.Sprintf("shards=%d/mode=%v/skip=%v", shards, mode, skip)
						t.Run(name, func(t *testing.T) {
							got, gotSpans := runSparse(t, seed, shards, mode, skip, false)
							if got.Counters["noc.express_hits"] == 0 {
								t.Error("express never activated; the differential proves nothing")
							}
							if got.Counters["noc.express_materialized"] == 0 {
								t.Error("no flight materialized; mid-flight cases not exercised")
							}
							diffSnapshots(t, baseStripped, stripExpressMeta(got))
							if len(gotSpans) != len(baseSpans) {
								t.Fatalf("spans: got %d, want %d", len(gotSpans), len(baseSpans))
							}
							for i := range baseSpans {
								if gotSpans[i] != baseSpans[i] {
									t.Errorf("span[%d]:\n got %s\nwant %s", i, gotSpans[i], baseSpans[i])
								}
							}
						})
					}
				}
			}
		})
	}
}

// TestExpressChaosDisablesBypass pins the admission rule: while any fault
// window is open (or a corruption armed) no flight may bypass, and once the
// window closes bypassing resumes.
func TestExpressChaosDisablesBypass(t *testing.T) {
	e := sim.NewEngine(9)
	defer e.Close()
	st := sim.NewStats()
	n := NewNetwork(e, st, Config{Dims: Dims{4, 4}, Shards: 1})
	hits := st.Counter("noc.express_hits")
	n.NI(0).SetDeliver(func(*msg.Message, sim.Cycle) {})
	n.NI(15).SetDeliver(func(*msg.Message, sim.Cycle) {})

	// A stall window on an unrelated link still blocks bypassing: the
	// admission check is global, not per-route.
	n.StallLink(5, North, 500)
	e.Schedule(10, func(sim.Cycle) {
		n.NI(0).Send(&msg.Message{Type: msg.TRequest, SrcTile: 0, DstTile: 15})
	})
	e.Run(600)
	if !n.Quiescent() {
		t.Fatal("not quiescent")
	}
	if got := hits.Value(); got != 0 {
		t.Fatalf("express activated %d times inside an open fault window", got)
	}

	// Window closed (now=600 >= 500): the same flight bypasses.
	e.Schedule(e.Now()+10, func(sim.Cycle) {
		n.NI(0).Send(&msg.Message{Type: msg.TRequest, SrcTile: 0, DstTile: 15})
	})
	e.Run(200)
	if got := hits.Value(); got != 1 {
		t.Fatalf("express hits after window closed = %d, want 1", got)
	}
}

// TestExpressShardValidation pins the shard-divisor contract at the Config
// boundary: explicit counts that do not divide the mesh height are rejected
// with an actionable message, and auto (0) always resolves to a divisor.
func TestExpressShardValidation(t *testing.T) {
	if _, err := validShards(3, 8, 8); err == nil {
		t.Fatal("Shards=3 on H=8 accepted; want divisor error")
	} else if got := err.Error(); got == "" {
		t.Fatal("empty error message")
	}
	for _, c := range []struct{ req, h, procs, want int }{
		{0, 8, 3, 2},  // auto: largest divisor of 8 ≤ 3
		{0, 8, 16, 8}, // auto clamps to H
		{8, 8, 1, 8},  // explicit divisor accepted regardless of procs
		{16, 8, 8, 8}, // clamped to H, which divides
		{-2, 8, 8, 1}, // negative clamps to 1
	} {
		got, err := validShards(c.req, c.h, c.procs)
		if err != nil {
			t.Fatalf("validShards(%d,%d,%d): %v", c.req, c.h, c.procs, err)
		}
		if got != c.want {
			t.Fatalf("validShards(%d,%d,%d) = %d, want %d", c.req, c.h, c.procs, got, c.want)
		}
	}
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("NewNetwork accepted a non-divisor shard count")
		}
	}()
	NewNetwork(sim.NewEngine(1), sim.NewStats(), Config{Dims: Dims{4, 6}, Shards: 4})
}

// TestExpressSteadyStateAllocs is the hot-loop allocation guard for the
// bypass: a ping-pong chain of bypassed flights — activation, pooled
// arrival wake-up, settlement, ejection, reply Send — runs allocation-free
// once warm.
func TestExpressSteadyStateAllocs(t *testing.T) {
	e := sim.NewEngine(5)
	defer e.Close()
	st := sim.NewStats()
	n := NewNetwork(e, st, Config{Dims: Dims{4, 4}, Shards: 1})
	hits := st.Counter("noc.express_hits")

	// One message object bounces forever between tiles 0 and 15: the
	// delivery callback swaps the endpoints and re-sends it.
	ball := &msg.Message{Type: msg.TRequest, SrcTile: 0, DstTile: 15, Payload: make([]byte, 48)}
	bounce := func(m *msg.Message, _ sim.Cycle) {
		m.SrcTile, m.DstTile = m.DstTile, m.SrcTile
		if err := n.NI(m.SrcTile).Send(m); err != nil {
			t.Errorf("bounce: %v", err)
		}
	}
	n.NI(0).SetDeliver(bounce)
	n.NI(15).SetDeliver(bounce)
	e.Schedule(1, func(sim.Cycle) { n.NI(0).Send(ball) })
	e.Run(2000) // warm up pools (packets, events, histogram buckets)
	before := hits.Value()
	if before == 0 {
		t.Fatal("ping-pong chain never bypassed")
	}
	avg := testing.AllocsPerRun(10, func() { e.Run(2000) })
	if avg != 0 {
		t.Fatalf("express steady state allocates %.1f allocs per 2000 cycles, want 0", avg)
	}
	if hits.Value() == before {
		t.Fatal("measured window contained no bypassed flights")
	}
}
