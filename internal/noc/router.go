package noc

import (
	"math/bits"

	"apiary/internal/sim"
)

// BufDepth is the per-(port,VC) input buffer depth in flits. Credit-based
// flow control means a sender never emits a flit the downstream buffer
// cannot hold.
const BufDepth = 4

// inVC is the state of one input virtual channel: a flit FIFO plus the
// wormhole bookkeeping (which output the current packet was routed to).
type inVC struct {
	fifo    []*Flit
	outPort Port // valid while routed
	routed  bool
	granted bool // holds the output VC (same index) at outPort

	// creditTo is the upstream output VC (or NI injection VC) whose credit
	// is returned when a flit leaves this buffer. creditLocal marks the NI
	// injection case: the credit target lives on this router's own tile
	// (same shard), so it is returned directly; inter-router credits are
	// staged and applied at commit, uniformly in both tick modes, so
	// credit-return timing never depends on tick order or shard layout.
	creditTo    *outVC
	creditLocal bool
}

func (v *inVC) empty() bool { return len(v.fifo) == 0 }
func (v *inVC) head() *Flit { return v.fifo[0] }

func (v *inVC) pop() *Flit {
	f := v.fifo[0]
	copy(v.fifo, v.fifo[1:])
	v.fifo[len(v.fifo)-1] = nil
	v.fifo = v.fifo[:len(v.fifo)-1]
	return f
}

// outVC tracks one output virtual channel: downstream credits and, while a
// packet holds the channel, its owner input VC.
type outVC struct {
	credits int
	owner   *inVC // nil when free
}

// Router is one mesh router. It is a sim.Ticker; each Tick performs route
// computation, VC allocation and switch allocation for up to one flit per
// output port.
type Router struct {
	Coord Coord

	in  [numPorts][NumVCs]*inVC
	out [numPorts][NumVCs]*outVC

	// neighbours[p] is the router reached through port p; nil at mesh edges.
	neighbours [numPorts]*Router
	// local is the NI ejection sink for port Local.
	local *NetworkInterface

	route RouteFunc
	rrPtr [numPorts]int // round-robin pointer per output port

	// occ[p] is the occupancy bitmask of port p's input VCs (bit v set iff
	// in[p][v] is non-empty); busyIn counts set bits across all ports. They
	// let Tick visit only occupied VCs and return immediately from an empty
	// router.
	occ    [numPorts]uint8
	busyIn int

	// shard is the staging area of the row band this router belongs to;
	// pool aliases the shard's flit pool. shardIdx is the band index the
	// router reports as its sim.ShardTicker affinity. Assigned by
	// Network.assignShards before the router can ever tick.
	shard    *nocShard
	shardIdx int
	pool     *flitPool

	// linkFlits counts flits forwarded per output port (link utilization).
	linkFlits [numPorts]uint64

	// Fault-injection state (noc/fault.go): stallUntil/stuckUntil suppress
	// forwarding through an output port / output VC, flipArm corrupts the
	// next departing message. Written between cycles by the chaos engine,
	// read (and cleared) only by this router's own tick.
	stallUntil [numPorts]sim.Cycle
	stuckUntil [numPorts][NumVCs]sim.Cycle
	flipArm    [numPorts]bool
}

func newRouter(c Coord, route RouteFunc) *Router {
	r := &Router{Coord: c, route: route}
	for p := Port(0); p < numPorts; p++ {
		for v := 0; v < NumVCs; v++ {
			// Preallocate the FIFO backing array: credit flow control caps
			// occupancy at BufDepth, so the buffer never reallocates.
			r.in[p][v] = &inVC{fifo: make([]*Flit, 0, BufDepth)}
			r.out[p][v] = &outVC{credits: BufDepth}
		}
	}
	return r
}

// Shard reports the router's row-band index (sim.ShardTicker): all of a
// router's tick-phase mutations stay within its own shard's state.
func (r *Router) Shard() int { return r.shardIdx }

// accept enqueues a flit arriving on (port, vc). The caller must have held a
// credit; accept panics on overflow because that indicates a flow-control
// bug, which must never be masked.
func (r *Router) accept(p Port, vc VCID, f *Flit, now sim.Cycle) {
	q := r.in[p][vc]
	if len(q.fifo) >= BufDepth {
		panic("noc: input buffer overflow (credit protocol violated)")
	}
	f.arrivedAt = now
	if len(q.fifo) == 0 {
		r.occ[p] |= 1 << uint(vc)
		r.busyIn++
	}
	q.fifo = append(q.fifo, f)
	if f.Idx == 0 {
		if sp := f.Pkt.span; sp != nil {
			sp.Hops = append(sp.Hops, SpanHop{At: r.Coord, In: p, Arrive: now})
		}
	}
}

// popIn pops the head flit of input (p, vc), keeping the occupancy mask and
// busy count in sync, and returns the freed buffer slot's credit upstream.
// All dequeues inside the router go through here. Injection credits go back
// directly — the NI lives on this tile, in this shard, and ticks after its
// router, so the direct return reproduces the serial order exactly.
// Inter-router credits are staged for the commit phase: the upstream output
// VC may belong to another shard, and even shard-locally the uniform
// end-of-cycle return keeps credit timing independent of tick order.
func (r *Router) popIn(p Port, vc VCID, ivc *inVC) *Flit {
	f := ivc.pop()
	if ivc.creditTo != nil {
		if ivc.creditLocal {
			ivc.creditTo.credits++
		} else {
			r.shard.credits = append(r.shard.credits, ivc.creditTo)
		}
	}
	if len(ivc.fifo) == 0 {
		r.occ[p] &^= 1 << uint(vc)
		r.busyIn--
	}
	return f
}

// Idle reports whether ticking the router would be a no-op: with no buffered
// flits there is nothing to route, grant or forward, and Tick touches no
// state or statistics.
func (r *Router) Idle() bool { return r.busyIn == 0 }

// freeSlots reports the free buffer slots of input (p, vc) — used only by
// tests and the NI injection path.
func (r *Router) freeSlots(p Port, vc VCID) int {
	return BufDepth - len(r.in[p][vc].fifo)
}

// Tick advances the router one cycle. An empty router returns immediately;
// otherwise only occupied VCs (tracked by the occupancy bitmask) are visited,
// so the cost is O(buffered packets) rather than O(ports × VCs).
func (r *Router) Tick(now sim.Cycle) {
	if r.busyIn == 0 {
		return
	}

	// Stage 1: route computation + output VC allocation for eligible heads.
	// Bitmask iteration visits VCs in ascending order, matching the original
	// full scan. want[p] records output ports with at least one granted,
	// sendable head so stage 2 skips the rest.
	var want [numPorts]bool
	for p := Port(0); p < numPorts; p++ {
		m := r.occ[p]
		for m != 0 {
			v := VCID(bits.TrailingZeros8(m))
			m &= m - 1
			ivc := r.in[p][v]
			f := ivc.head()
			if f.arrivedAt >= now {
				continue // arrived this cycle; visible next cycle
			}
			if f.Head() && !ivc.routed {
				ivc.outPort = r.route(r.Coord, f.Pkt.Dst)
				ivc.routed = true
			}
			if ivc.routed && !ivc.granted {
				ovc := r.out[ivc.outPort][v]
				if ovc.owner == nil {
					ovc.owner = ivc
					ivc.granted = true
					if sp := f.Pkt.span; sp != nil && f.Head() {
						sp.Hops[len(sp.Hops)-1].Grant = now
					}
				} else if ovc.owner != ivc {
					r.shard.stallNoVC++
				}
			}
			if ivc.granted {
				want[ivc.outPort] = true
			}
		}
	}

	// Stage 2: switch allocation — one flit per output port per cycle.
	// VC0 (management) has strict priority; VC1/VC2 share round-robin over
	// input ports.
	for outP := Port(0); outP < numPorts; outP++ {
		if !want[outP] {
			continue
		}
		if r.sendOne(outP, VCMgmt, now) {
			continue
		}
		r.sendDataRR(outP, now)
	}
}

// sendDataRR tries to forward one data flit (VC1 or VC2) through outP,
// scanning input ports round-robin for fairness.
func (r *Router) sendDataRR(outP Port, now sim.Cycle) {
	start := r.rrPtr[outP]
	n := int(numPorts) * (NumVCs - 1)
	for i := 0; i < n; i++ {
		k := (start + i) % n
		p := Port(k / (NumVCs - 1))
		v := VCID(k%(NumVCs-1)) + 1 // VC1..VC2
		if r.trySend(p, v, outP, now) {
			r.rrPtr[outP] = (k + 1) % n
			return
		}
	}
}

// sendOne tries to forward a flit of the given VC through outP from any
// input port (fixed scan order is fine for the low-rate management VC).
func (r *Router) sendOne(outP Port, vc VCID, now sim.Cycle) bool {
	for p := Port(0); p < numPorts; p++ {
		if r.trySend(p, vc, outP, now) {
			return true
		}
	}
	return false
}

// trySend forwards the head flit of input (p, vc) through outP if that input
// currently owns outP's VC and a credit is available. Reports whether a flit
// moved.
func (r *Router) trySend(p Port, vc VCID, outP Port, now sim.Cycle) bool {
	ivc := r.in[p][vc]
	if ivc.empty() || !ivc.granted || ivc.outPort != outP {
		return false
	}
	f := ivc.head()
	if f.arrivedAt >= now {
		return false
	}
	ovc := r.out[outP][vc]
	if ovc.owner != ivc {
		return false
	}
	if now < r.stallUntil[outP] || now < r.stuckUntil[outP][vc] {
		// Injected link stall / stuck VC: the flit stays buffered and no
		// credit moves, so the fault is time-bounded and drains cleanly.
		r.shard.stallFault++
		return false
	}

	if outP == Local {
		// Ejection: the NI consumes at most one flit per VC per cycle but
		// has no buffer limit (reassembly happens immediately). The flit
		// itself dies here (shard-local pool), but the packet's delivery —
		// the NI callback, the shared latency histogram, in-flight
		// accounting — is staged for the commit phase, where Network.Commit
		// replays ejections in global tile order whichever mode ticked.
		recordDepart(f, outP, now)
		r.maybeFlip(f, outP)
		r.popIn(p, vc, ivc)
		r.shard.flitsRouted++
		r.linkFlits[Local]++
		if f.Tail {
			r.releaseVC(ivc, ovc)
			r.shard.pktsRouted++
			// Wormhole ordering makes the tail the packet's last flit, so
			// every earlier flit was already freed below; the packet stays
			// alive in the staging queue until its commit-phase eject.
			r.shard.ejections = append(r.shard.ejections, ejection{r.local, f.Pkt})
		}
		r.pool.putFlit(f)
		return true
	}

	next := r.neighbours[outP]
	if next == nil {
		// Routing off the mesh edge indicates a routing-function bug.
		panic("noc: route off mesh edge at " + r.Coord.String())
	}
	if ovc.credits == 0 {
		r.shard.stallNoCred++
		return false
	}
	recordDepart(f, outP, now)
	r.maybeFlip(f, outP)
	r.popIn(p, vc, ivc)
	ovc.credits--
	r.shard.flitsRouted++
	r.linkFlits[outP]++
	// The neighbour may belong to another shard, so the handoff is staged;
	// Network.Commit calls next.accept. Timing is unchanged — an accepted
	// flit only becomes routable the following cycle (arrivedAt guard) —
	// and at most one flit crosses a link per cycle, so commit order across
	// links cannot matter.
	r.shard.handoffs = append(r.shard.handoffs, handoff{next, outP.opposite(), vc, f})
	if f.Tail {
		r.releaseVC(ivc, ovc)
		r.shard.pktsRouted++
	}
	return true
}

// recordDepart stamps the current hop's switch-traversal cycle and output
// port on a sampled packet's span when its head flit leaves the router.
func recordDepart(f *Flit, outP Port, now sim.Cycle) {
	if !f.Head() {
		return
	}
	if sp := f.Pkt.span; sp != nil {
		h := &sp.Hops[len(sp.Hops)-1]
		h.Depart = now
		h.Out = outP
	}
}

// maybeFlip applies an armed one-shot corruption when a head flit departs
// through outP (noc/fault.go). Arming persists across tail flits so a flip
// armed mid-packet corrupts the *next* message, never a packet fragment.
func (r *Router) maybeFlip(f *Flit, outP Port) {
	if !r.flipArm[outP] || !f.Head() {
		return
	}
	r.flipArm[outP] = false
	corrupt(f.Pkt.Msg)
	r.shard.corrupted++
}

func (r *Router) releaseVC(ivc *inVC, ovc *outVC) {
	ivc.routed = false
	ivc.granted = false
	ovc.owner = nil
}
