package noc

import (
	"math/bits"

	"apiary/internal/sim"
)

// BufDepth is the per-(port,VC) input buffer depth in flits. Credit-based
// flow control means a sender never emits a flit the downstream buffer
// cannot hold.
const BufDepth = 4

// Router is one mesh router — a thin view over the network's
// structure-of-arrays state (state.go). It carries only identity (tile,
// coordinate, neighbour indices), shard affinity and the cold
// fault-injection fields; every per-cycle quantity lives in Network.soa.
// Routers are ticked by their row band's bandTicker, not registered
// individually.
type Router struct {
	Coord Coord
	tile  int32
	net   *Network

	// neighbours[p] is the tile reached through port p; -1 at mesh edges.
	neighbours [numPorts]int32

	// stageTo[p] marks links that cross a row-band boundary: handoffs
	// through them must be staged for the commit phase when the tick phase
	// runs on the worker pool. All other handoffs (and every handoff in a
	// serial tick) are applied directly — bit-exact either way, because an
	// accepted flit only becomes routable the following cycle.
	stageTo [numPorts]bool

	// shard is the staging area of the row band this router belongs to;
	// shardIdx is the band index. Assigned by Network.assignShards before
	// the router can ever tick.
	shard    *nocShard
	shardIdx int

	// Fault-injection state (noc/fault.go): stallUntil/stuckUntil suppress
	// forwarding through an output port / output VC, flipArm corrupts the
	// next departing message. Written between cycles by the chaos engine,
	// read (and cleared) only by this router's own tick. faultMax and
	// flipAny summarize the arrays so the fault-free hot path pays one
	// compare per send instead of rescanning them.
	stallUntil [numPorts]sim.Cycle
	stuckUntil [numPorts][NumVCs]sim.Cycle
	flipArm    [numPorts]bool
	faultMax   sim.Cycle
	flipAny    bool
}

// Shard reports the router's row-band index: all of a router's tick-phase
// mutations stay within its own shard's state.
func (r *Router) Shard() int { return r.shardIdx }

// Idle reports whether ticking the router would be a no-op: with no buffered
// flits there is nothing to route, grant or forward.
func (r *Router) Idle() bool { return r.net.soa.occ[r.tile] == 0 }

// bufLen reports the buffered flits of input (p, vc) — tests and
// introspection only.
func (r *Router) bufLen(p Port, vc VCID) int {
	return int(r.net.soa.fifoLen[int(r.tile)*pvCount+int(p)*NumVCs+int(vc)])
}

// tickRouter advances router r one cycle. The caller (bandTicker.Tick) has
// already established occ != 0, so only occupied VCs — single bitset
// iteration — are visited.
//
// The two stages replicate the original object-per-router arbitration
// decision-for-decision (route computation + VC allocation, then switch
// allocation with strict VC0 priority and round-robin data VCs), so every
// counter, span stamp and round-robin pointer movement is bit-identical to
// the pre-SoA implementation.
func (n *Network) tickRouter(r *Router, now sim.Cycle) {
	s := &n.soa
	base := int(r.tile) * pvCount

	// Stage 1: route computation + output VC allocation. Only pending inputs
	// (occupied but not yet granted) need per-cycle work here: a granted
	// input's claim persists until its tail departs, so granted inputs are
	// skipped entirely and rediscovered in stage 2 through owner/ownedPorts.
	// Bitset iteration visits (port, vc) in ascending pv order, matching the
	// original port-major scan.
	for m := s.occ[r.tile] &^ s.granted[r.tile] &^ s.vcBlocked[r.tile]; m != 0; m &= m - 1 {
		pv := bits.TrailingZeros16(m)
		ivx := base + pv
		if s.headAge[ivx] >= now {
			continue // arrived this cycle; visible next cycle
		}
		// A pending (occupied, ungranted) input always has a packet head at
		// its front: the previous packet's grant is only released when its
		// tail departs, at which point the next head is exposed.
		st := s.inState[ivx]
		if st&inRouted == 0 {
			f := &s.fifo[ivx*BufDepth+int(s.fifoHead[ivx])]
			st = uint8(n.route(r.Coord, f.Pkt.Dst)) | inRouted
			s.inState[ivx] = st
		}
		outP := int(st & inPortMask)
		ovx := base + outP*NumVCs + int(pvVC[pv])
		if s.owner[ovx] < 0 {
			s.owner[ovx] = int8(pvPort[pv])
			s.inState[ivx] = st | inGranted
			s.granted[r.tile] |= 1 << uint(pv)
			s.sendable[r.tile] |= 1 << uint(outP*NumVCs+int(pvVC[pv]))
			f := &s.fifo[ivx*BufDepth+int(s.fifoHead[ivx])]
			if sp := f.Pkt.span; sp != nil {
				sp.Hops[len(sp.Hops)-1].Grant = now
			}
		} else if s.owner[ovx] != int8(pvPort[pv]) {
			// Owner busy: count this cycle inline, then park the input in a
			// VC-wait streak — releaseVC settles the remaining cycles when
			// the output frees.
			r.shard.stallNoVC++
			s.vcBlocked[r.tile] |= 1 << uint(pv)
			s.vcBlockStart[ivx] = now
		}
	}

	// Stage 2: switch allocation — one flit per output port per cycle, over
	// the sendable set (owned output VCs not parked in a credit streak).
	// VC0 (management) has strict priority; the data-VC candidates share
	// round-robin over the k-space (k = port*(NumVCs-1) + vc - 1), which
	// with at most two candidates degenerates to one rotated comparison. A
	// candidate whose input is currently empty or whose head arrived this
	// cycle fails trySend with no side effects — exactly the inputs the
	// original full scan never offered — so counters and pointer movement
	// stay bit-identical.
	//
	// Streak excision: when a win pre-empts attempts the original scan
	// would have skipped that cycle (data candidates after a VC0 win, the
	// rotated-later data candidate after a data win), any parked streak on
	// those candidates advances its anchor by one, uncounting this cycle.
	const nk = int(numPorts) * (NumVCs - 1)
	for sm := s.sendable[r.tile]; sm != 0; {
		pvLow := bits.TrailingZeros16(sm)
		outP := pvPort[pvLow]
		obase := int(outP) * NumVCs
		group := sm & (7 << uint(obase))
		sm &^= group
		if group&(1<<uint(obase)) != 0 {
			if n.trySend(r, Port(s.owner[base+obase]), VCMgmt, outP, now) {
				if s.credBlockStart[base+obase+1] != noStreak {
					s.credBlockStart[base+obase+1]++
				}
				if s.credBlockStart[base+obase+2] != noStreak {
					s.credBlockStart[base+obase+2]++
				}
				continue
			}
		}
		b1 := group&(1<<uint(obase+1)) != 0
		b2 := group&(1<<uint(obase+2)) != 0
		if !b1 && !b2 {
			continue
		}
		start := int(s.rrPtr[int(r.tile)*int(numPorts)+int(outP)])
		if b1 && b2 {
			// Both data candidates live: the rotated-first is attempted
			// first; a failed attempt was a real (counted) attempt in the
			// original scan too, so no excision either way.
			k1 := int(s.owner[base+obase+1]) * (NumVCs - 1)
			k2 := int(s.owner[base+obase+2])*(NumVCs-1) + 1
			d1, d2 := k1-start, k2-start
			if d1 < 0 {
				d1 += nk
			}
			if d2 < 0 {
				d2 += nk
			}
			if d2 < d1 {
				k1, k2 = k2, k1
			}
			if !n.trySendRR(r, k1, outP, now) {
				n.trySendRR(r, k2, outP, now)
			}
			continue
		}
		// One data candidate live; the other data VC may be parked in a
		// streak. On a win, excise this cycle from the parked streak iff
		// the parked candidate rotates after the winner — the original
		// scan would have stopped before attempting it.
		wVC, oVC := 1, 2
		if b2 {
			wVC, oVC = 2, 1
		}
		kw := int(s.owner[base+obase+wVC])*(NumVCs-1) + wVC - 1
		if n.trySendRR(r, kw, outP, now) {
			ovO := base + obase + oVC
			if s.credBlockStart[ovO] != noStreak {
				ko := int(s.owner[ovO])*(NumVCs-1) + oVC - 1
				dw, do := kw-start, ko-start
				if dw < 0 {
					dw += nk
				}
				if do < 0 {
					do += nk
				}
				if do > dw {
					s.credBlockStart[ovO]++
				}
			}
		}
	}
}

// trySendRR is trySend addressed by round-robin index k, advancing the
// output port's pointer past k on success — the same pointer movement the
// original rotated scan performed.
func (n *Network) trySendRR(r *Router, k int, outP Port, now sim.Cycle) bool {
	if !n.trySend(r, kPort[k], kVC[k], outP, now) {
		return false
	}
	const nk = int(numPorts) * (NumVCs - 1)
	k++
	if k == nk {
		k = 0
	}
	n.soa.rrPtr[int(r.tile)*int(numPorts)+int(outP)] = uint8(k)
	return true
}

// trySend forwards the head flit of input (p, vc) through outP. The caller
// (stage 2) derives (p, vc) from the output VC's owner, so ownership is
// guaranteed; the remaining eligibility checks — buffered flit present, head
// older than this cycle — fail silently, and only then do the stage-2-time
// checks (fault suppression, downstream credit) count their stalls. Reports
// whether a flit moved.
func (n *Network) trySend(r *Router, p Port, vc VCID, outP Port, now sim.Cycle) bool {
	s := &n.soa
	pv := int(p)*NumVCs + int(vc)
	ivx := int(r.tile)*pvCount + pv
	if s.fifoLen[ivx] == 0 {
		// Owner's remaining flits are still upstream: nothing to attempt
		// until one arrives, so leave the sendable set — the arrival paths
		// (acceptFlit, the direct-delivery enqueue below) re-arm the bit.
		// No counter fires here, so the deferral is decision-neutral.
		s.sendable[r.tile] &^= 1 << uint(int(outP)*NumVCs+int(vc))
		return false
	}
	if s.headAge[ivx] >= now {
		return false // arrived this cycle; sendable next cycle
	}
	if now < r.faultMax && (now < r.stallUntil[outP] || now < r.stuckUntil[outP][vc]) {
		// Injected link stall / stuck VC: the flit stays buffered and no
		// credit moves, so the fault is time-bounded and drains cleanly.
		r.shard.stallFault++
		return false
	}
	ovx := int(r.tile)*pvCount + int(outP)*NumVCs + int(vc)

	if outP == Local {
		head := &s.fifo[ivx*BufDepth+int(s.fifoHead[ivx])]
		// Ejection: the NI consumes at most one flit per VC per cycle but
		// has no buffer limit (reassembly happens immediately). The packet's
		// delivery — the NI callback, the shared latency histogram,
		// in-flight accounting — is staged for the commit phase, where
		// Network.Commit replays ejections in global tile order whichever
		// mode ticked.
		recordDepart(head, outP, now)
		r.maybeFlip(head, outP)
		f := n.popFlit(r, pv, ivx)
		r.shard.flitsRouted++
		s.linkFlits[int(r.tile)*int(numPorts)+int(Local)]++
		if f.Tail() {
			n.releaseVC(r, pv, ivx, ovx, outP, now)
			r.shard.pktsRouted++
			// Wormhole ordering makes the tail the packet's last flit; the
			// packet stays alive in the staging queue until its commit-phase
			// eject.
			r.shard.ejections = append(r.shard.ejections, ejection{&n.nis[r.tile], f.Pkt})
		}
		return true
	}

	next := r.neighbours[outP]
	if next < 0 {
		// Routing off the mesh edge indicates a routing-function bug.
		panic("noc: route off mesh edge at " + r.Coord.String())
	}
	if s.credits[ovx] == 0 {
		// Count this cycle inline, then park the candidate in a credit
		// streak — the commit-phase credit return settles the remaining
		// cycles. While any fault window is open on this router, stay in
		// per-cycle counting so fault-suppressed cycles keep counting
		// stall_fault, not stall_no_credit.
		r.shard.stallNoCred++
		if now >= r.faultMax {
			s.sendable[r.tile] &^= 1 << uint(int(outP)*NumVCs+int(vc))
			s.credBlockStart[ovx] = now
		}
		return false
	}
	ring := s.fifo[ivx*BufDepth:][:BufDepth]
	head := &ring[s.fifoHead[ivx]&(BufDepth-1)]
	recordDepart(head, outP, now)
	r.maybeFlip(head, outP)
	tail := head.Tail()
	// Hand the flit to the neighbour. A freshly accepted flit only becomes
	// routable the following cycle (arrivedAt guard) and at most one flit
	// crosses a link per cycle, so accepting it immediately is bit-exact
	// with accepting it at commit — the only constraint is memory safety:
	// when the tick phase runs on the worker pool, handoffs crossing a
	// row-band boundary must be staged for Network.Commit instead of
	// touching another worker's band.
	if r.stageTo[outP] && n.engine.InParallelTick() {
		f := n.popFlit(r, pv, ivx)
		r.shard.handoffs = append(r.shard.handoffs, handoff{next, oppPort[outP], vc, f})
	} else {
		// Direct delivery: move the flit ring-to-ring in place — one copy,
		// reusing the head pointer already loaded — instead of popFlit +
		// acceptFlit's two copies and a second head lookup. Same effects in
		// the same order: source dequeue with credit return and occupancy
		// upkeep, then destination enqueue with arrival stamp and span hop.
		nh := (s.fifoHead[ivx] + 1) & (BufDepth - 1)
		s.fifoHead[ivx] = nh
		l := s.fifoLen[ivx] - 1
		s.fifoLen[ivx] = l
		if l != 0 {
			s.headAge[ivx] = ring[nh&(BufDepth-1)].arrived()
		}
		if ct := s.creditTo[ivx]; ct >= 0 {
			r.shard.credits = append(r.shard.credits, ct)
		} else if ct != -1 {
			s.credits[-(ct+2)]++
		}
		if l == 0 {
			occ := s.occ[r.tile] &^ (1 << uint(pv))
			s.occ[r.tile] = occ
			if occ == 0 {
				r.shard.busyTiles--
			}
		}
		nr := &n.routers[next]
		dpv := int(oppPort[outP])*NumVCs + int(vc)
		divx := int(next)*pvCount + dpv
		dl := s.fifoLen[divx]
		if dl >= BufDepth {
			panic("noc: input buffer overflow (credit protocol violated)")
		}
		dring := s.fifo[divx*BufDepth:][:BufDepth]
		dst := &dring[(s.fifoHead[divx]+dl)&(BufDepth-1)]
		*dst = *head
		dst.setArrived(now)
		head.Pkt = nil
		s.fifoLen[divx] = dl + 1
		if dl == 0 {
			s.headAge[divx] = now
			occ := s.occ[next]
			if occ == 0 {
				nr.shard.busyTiles++
			}
			s.occ[next] = occ | 1<<uint(dpv)
			// Mirror acceptFlit: a granted input refilling from empty
			// rejoins the neighbour's sendable set.
			if dstSt := s.inState[divx]; dstSt&inGranted != 0 {
				s.sendable[next] |= 1 << uint(int(dstSt&inPortMask)*NumVCs+int(vc))
			}
		}
		if dst.Head() {
			if sp := dst.Pkt.span; sp != nil {
				sp.Hops = append(sp.Hops, SpanHop{At: nr.Coord, In: oppPort[outP], Arrive: now})
			}
		}
	}
	s.credits[ovx]--
	r.shard.flitsRouted++
	s.linkFlits[int(r.tile)*int(numPorts)+int(outP)]++
	if tail {
		n.releaseVC(r, pv, ivx, ovx, outP, now)
		r.shard.pktsRouted++
	}
	return true
}

// recordDepart stamps the current hop's switch-traversal cycle and output
// port on a sampled packet's span when its head flit leaves the router.
func recordDepart(f *Flit, outP Port, now sim.Cycle) {
	if !f.Head() {
		return
	}
	if sp := f.Pkt.span; sp != nil {
		h := &sp.Hops[len(sp.Hops)-1]
		h.Depart = now
		h.Out = outP
	}
}

// maybeFlip applies an armed one-shot corruption when a head flit departs
// through outP (noc/fault.go). Arming persists across tail flits so a flip
// armed mid-packet corrupts the *next* message, never a packet fragment.
func (r *Router) maybeFlip(f *Flit, outP Port) {
	if !r.flipAny || !r.flipArm[outP] || !f.Head() {
		return
	}
	r.flipArm[outP] = false
	r.refreshFaultSummary()
	corrupt(f.Pkt.Msg)
	r.shard.corrupted++
	r.shard.flipsFired++
}

// refreshFaultSummary recomputes the faultMax/flipAny fast-path summaries
// from the fault arrays. Called from the (cold) fault hooks and flip
// consumption, never from the fault-free hot path.
func (r *Router) refreshFaultSummary() {
	var max sim.Cycle
	any := false
	for p := Port(0); p < numPorts; p++ {
		if r.stallUntil[p] > max {
			max = r.stallUntil[p]
		}
		for v := 0; v < NumVCs; v++ {
			if r.stuckUntil[p][v] > max {
				max = r.stuckUntil[p][v]
			}
		}
		any = any || r.flipArm[p]
	}
	r.faultMax = max
	r.flipAny = any
}
