package noc

import (
	"math/bits"

	"apiary/internal/sim"
)

// This file holds the NoC's structure-of-arrays hot state. Every per-cycle
// quantity — FIFO rings, credit counters, wormhole route/grant state,
// occupancy bitsets, round-robin pointers, link counters — lives in a flat
// slice indexed arithmetically by (tile, port, vc), so the tick loop walks
// cache-linear memory instead of chasing per-object pointers. Router and
// NetworkInterface remain as thin views (identity, fault state, injection
// queues) so the cap/fault/trace/obs call sites keep their types.
//
// Index spaces:
//
//	pv            = port*NumVCs + vc                  ∈ [0, pvCount)
//	input VC ivx  = tile*pvCount + pv                 (fifo*, inState, creditTo)
//	output VC ovx = tile*pvCount + pv                 (owner; credits[ovx])
//	credit index  = ovx for router outputs,
//	                injBase + tile*NumVCs + vc        for NI injection credits
//	fifo slot     = ivx*BufDepth + ((head+i) & (BufDepth-1))
//
// Sharing one index shape between input and output VCs keeps the arithmetic
// trivial; the two spaces never collide because credits/owner are only
// meaningful for outputs and fifo/inState only for inputs.
const pvCount = int(numPorts) * NumVCs

// Input-VC wormhole state, packed in one byte: the routed output port in the
// low bits plus the routed/granted flags.
const (
	inPortMask = 0x07
	inRouted   = 0x08
	inGranted  = 0x10
)

func init() {
	// The FIFO rings use (head+i) & (BufDepth-1) addressing.
	if BufDepth&(BufDepth-1) != 0 {
		panic("noc: BufDepth must be a power of two")
	}
	for pv := 0; pv < pvCount; pv++ {
		pvPort[pv] = Port(pv / NumVCs)
		pvVC[pv] = VCID(pv % NumVCs)
	}
	for p := Port(0); p < numPorts; p++ {
		oppPort[p] = p.opposite()
	}
	for k := 0; k < int(numPorts)*(NumVCs-1); k++ {
		kPort[k] = Port(k / (NumVCs - 1))
		kVC[k] = VCID(k%(NumVCs-1)) + 1
	}
}

// Hot-loop lookup tables: pv → port / VC (avoiding div/mod by NumVCs per
// occupied VC per cycle) and port → opposite port.
var (
	pvPort  [pvCount]Port
	pvVC    [pvCount]VCID
	oppPort [numPorts]Port

	// k-space (stage-2 data-VC round-robin index) → input port / VC.
	kPort [int(numPorts) * (NumVCs - 1)]Port
	kVC   [int(numPorts) * (NumVCs - 1)]VCID
)

// nocState is the flat hot state of the whole mesh. All slices are sized at
// construction and never grow, so interior pointers and indices stay valid
// for the network's lifetime.
type nocState struct {
	// fifo holds every input VC buffer as a BufDepth-slot ring in one
	// backing slice; fifoHead/fifoLen are the ring cursors.
	fifo     []Flit
	fifoHead []uint8
	fifoLen  []uint8

	// inState is the per-input-VC wormhole byte (output port + flags).
	inState []uint8

	// headAge[ivx] mirrors the arrival cycle of input ivx's current head
	// flit (meaningless while the ring is empty). The arbitration loops test
	// head age every cycle for every occupied VC; this compact mirror keeps
	// those tests — and the stall-counting failure paths — off the large
	// fifo array, which is then only touched when a flit actually moves.
	headAge []sim.Cycle

	// creditTo[ivx] is the credit index freed when a flit leaves input ivx,
	// sign-encoded so one load decides both the index and the return path:
	// ct >= 0 is an inter-router credit staged for commit; ct == -1 marks an
	// unwired mesh-edge input; ct <= -2 is an NI-injection credit at index
	// -(ct+2), returned directly (same tile, same shard).
	creditTo []int32

	// credits counts free downstream slots per output VC (router outputs in
	// the ovx space, then NI injection VCs from injBase up).
	credits []int8

	// owner[ovx] is the input *port* whose packet holds output VC ovx, -1
	// when free. The owning input's VC index equals the output's, so the
	// port alone identifies the owner.
	owner []int8

	// occ[tile] has bit pv set iff input VC (tile,pv) is non-empty — the
	// bitset the tick loop iterates instead of scanning 15 FIFOs.
	occ []uint16

	// granted[tile] has bit pv set iff input VC (tile,pv) currently holds
	// an output VC. Granted inputs need no per-cycle route/allocate work,
	// so stage 1 visits only occ &^ granted; stage 2 finds the granted
	// senders through owner/sendable.
	granted []uint16

	// sendable[tile] has bit pv set iff output VC (tile,pv) is owned and
	// not credit-blocked — the candidate set stage 2 iterates. An owner
	// that fails on credits leaves this set (entering a counting streak,
	// see credBlockStart) and rejoins when the credit returns at commit.
	sendable []uint16

	// vcBlocked[tile] has bit pv set iff input VC (tile,pv) is routed but
	// waiting for its output VC (owner busy). Blocked inputs leave the
	// stage-1 pending scan; releaseVC flushes and re-arms them.
	vcBlocked []uint16

	// credBlockStart[ovx] / vcBlockStart[ivx] are the streak anchors for
	// the deferred stall accounting (noStreak = none): a blocked candidate
	// is counted once inline when it blocks, and the cycles start+1..end
	// are added arithmetically when the streak ends. Flush points — commit
	// credit application, releaseVC, fault injection — are deterministic
	// and mode-independent, so counter totals stay bit-identical across
	// serial/parallel/skip runs and equal to per-cycle counting.
	credBlockStart []sim.Cycle
	vcBlockStart   []sim.Cycle

	// rrPtr is the per-(tile, output port) round-robin pointer over the
	// data-VC candidate space (see tickRouter stage 2).
	rrPtr []uint8

	// linkFlits counts flits forwarded per (tile, output port).
	linkFlits []uint64
}

// noStreak marks an idle streak anchor (sim.Cycle is unsigned, so the
// all-ones pattern stands in for -1; no simulation reaches 2^64-1 cycles).
const noStreak = ^sim.Cycle(0)

// newState sizes every array for `tiles` tiles. credits gains NumVCs extra
// entries per tile for the NI injection credits, addressed from injBase.
func newState(tiles int) nocState {
	s := nocState{
		fifo:           make([]Flit, tiles*pvCount*BufDepth),
		fifoHead:       make([]uint8, tiles*pvCount),
		fifoLen:        make([]uint8, tiles*pvCount),
		inState:        make([]uint8, tiles*pvCount),
		headAge:        make([]sim.Cycle, tiles*pvCount),
		creditTo:       make([]int32, tiles*pvCount),
		credits:        make([]int8, tiles*pvCount+tiles*NumVCs),
		owner:          make([]int8, tiles*pvCount),
		occ:            make([]uint16, tiles),
		granted:        make([]uint16, tiles),
		sendable:       make([]uint16, tiles),
		vcBlocked:      make([]uint16, tiles),
		credBlockStart: make([]sim.Cycle, tiles*pvCount),
		vcBlockStart:   make([]sim.Cycle, tiles*pvCount),
		rrPtr:          make([]uint8, tiles*int(numPorts)),
		linkFlits:      make([]uint64, tiles*int(numPorts)),
	}
	for i := range s.creditTo {
		s.creditTo[i] = -1
	}
	for i := range s.credits {
		s.credits[i] = BufDepth
	}
	for i := range s.owner {
		s.owner[i] = -1
	}
	for i := range s.credBlockStart {
		s.credBlockStart[i] = noStreak
		s.vcBlockStart[i] = noStreak
	}
	return s
}

// injBase is the first NI-injection index in soa.credits.
func (n *Network) injBase() int { return len(n.routers) * pvCount }

// injCredIdx is tile t's injection-credit index for vc.
func (n *Network) injCredIdx(t int32, v VCID) int {
	return n.injBase() + int(t)*NumVCs + int(v)
}

// acceptFlit enqueues a flit arriving on router r's (port, vc). The caller
// must have held a credit; overflow panics because it indicates a
// flow-control bug, which must never be masked.
func (n *Network) acceptFlit(r *Router, p Port, vc VCID, f Flit, now sim.Cycle) {
	s := &n.soa
	pv := int(p)*NumVCs + int(vc)
	ivx := int(r.tile)*pvCount + pv
	l := s.fifoLen[ivx]
	if l >= BufDepth {
		panic("noc: input buffer overflow (credit protocol violated)")
	}
	f.setArrived(now)
	s.fifo[ivx*BufDepth+int((s.fifoHead[ivx]+l)&(BufDepth-1))] = f
	s.fifoLen[ivx] = l + 1
	if l == 0 {
		s.headAge[ivx] = now
		occ := s.occ[r.tile]
		if occ == 0 {
			r.shard.busyTiles++
		}
		s.occ[r.tile] = occ | 1<<uint(pv)
		// A granted input refilling from empty rejoins stage 2's sendable
		// set (it left via trySend's empty-upstream early-out). An empty
		// input is never credit-parked — parking requires a buffered head
		// and stops further drains — so this cannot resurrect a streak.
		if st := s.inState[ivx]; st&inGranted != 0 {
			s.sendable[r.tile] |= 1 << uint(int(st&inPortMask)*NumVCs+int(vc))
		}
	}
	if f.Head() {
		if sp := f.Pkt.span; sp != nil {
			sp.Hops = append(sp.Hops, SpanHop{At: r.Coord, In: p, Arrive: now})
		}
	}
}

// popFlit dequeues the head flit of input VC ivx (pv = ivx's port/vc bits),
// keeping the occupancy bitset and the shard's busy-tile count in sync, and
// returns the freed buffer slot's credit upstream. Injection credits go back
// directly — the NI lives on this tile, in this shard, and ticks after its
// router, so the direct return reproduces the serial order exactly.
// Inter-router credits are staged for the commit phase: the upstream output
// VC may belong to another shard, and even shard-locally the uniform
// end-of-cycle return keeps credit timing independent of tick order.
func (n *Network) popFlit(r *Router, pv, ivx int) Flit {
	s := &n.soa
	h := s.fifoHead[ivx]
	slot := ivx*BufDepth + int(h)
	f := s.fifo[slot]
	s.fifo[slot].Pkt = nil
	s.fifoHead[ivx] = (h + 1) & (BufDepth - 1)
	l := s.fifoLen[ivx] - 1
	s.fifoLen[ivx] = l
	if l != 0 {
		s.headAge[ivx] = s.fifo[ivx*BufDepth+int((h+1)&(BufDepth-1))].arrived()
	}
	if ct := s.creditTo[ivx]; ct >= 0 {
		r.shard.credits = append(r.shard.credits, ct)
	} else if ct != -1 {
		s.credits[-(ct+2)]++
	}
	if l == 0 {
		occ := s.occ[r.tile] &^ (1 << uint(pv))
		s.occ[r.tile] = occ
		if occ == 0 {
			r.shard.busyTiles--
		}
	}
	return f
}

// releaseVC ends a packet's hold on input (pv/ivx) / output ovx when its
// tail departs through outP at cycle now: the input forgets its route and
// grant, the output VC frees, and the tile's granted/sendable bitsets
// follow. Inputs parked in a VC-wait streak on this output are flushed
// (their deferred stall cycles counted) and returned to the stage-1 pending
// scan, where the next cycle's grant pass arbitrates them in pv order —
// exactly when and how the per-cycle scan would have.
func (n *Network) releaseVC(r *Router, pv, ivx, ovx int, outP Port, now sim.Cycle) {
	s := &n.soa
	s.inState[ivx] &^= inRouted | inGranted
	s.owner[ovx] = -1
	s.granted[r.tile] &^= 1 << uint(pv)
	vc := pvVC[pv]
	s.sendable[r.tile] &^= 1 << uint(int(outP)*NumVCs+int(vc))
	if wb := s.vcBlocked[r.tile]; wb != 0 {
		base := int(r.tile) * pvCount
		for m := wb; m != 0; m &= m - 1 {
			wpv := bits.TrailingZeros16(m)
			wivx := base + wpv
			if pvVC[wpv] != vc || Port(s.inState[wivx]&inPortMask) != outP {
				continue
			}
			r.shard.stallNoVC += uint64(now - s.vcBlockStart[wivx])
			s.vcBlockStart[wivx] = noStreak
			s.vcBlocked[r.tile] &^= 1 << uint(wpv)
		}
	}
}

// bandTicker ticks one row band of the mesh: the band's routers in tile
// order, then its NIs in tile order. One consolidated ticker per band
// replaces 2×tiles individual registrations; the engine's serial order
// (band 0's routers, band 0's NIs, band 1's routers, …) equals the parallel
// per-shard group order, which the differential tests prove bit-identical —
// all cross-band effects are staged to the commit phase, so tick order
// across bands is unobservable.
type bandTicker struct {
	net            *Network
	shard          int
	loTile, hiTile int32 // [loTile, hiTile)
}

func (b *bandTicker) Shard() int { return b.shard }

// TickWeight reports the elementary tickers this band stands for (routers +
// NIs), so sim.ParallelAuto's size threshold keeps measuring mesh size.
func (b *bandTicker) TickWeight() int { return 2 * int(b.hiTile-b.loTile) }

// Idle reports whether ticking the band would be a no-op: no tile holds
// buffered flits and no NI has packets queued. O(1) via the shard's
// busy-tile / queued-NI counters.
func (b *bandTicker) Idle() bool {
	sh := b.net.shards[b.shard]
	return sh.busyTiles == 0 && sh.queuedNIs == 0
}

func (b *bandTicker) Tick(now sim.Cycle) {
	n := b.net
	for t := b.loTile; t < b.hiTile; t++ {
		if n.soa.occ[t] != 0 {
			n.tickRouter(&n.routers[t], now)
		}
	}
	for t := b.loTile; t < b.hiTile; t++ {
		ni := &n.nis[t]
		if ni.queued != 0 {
			ni.tick(now)
		}
	}
}
