package noc

import "testing"

// TestShippedRoutingFunctionsDeadlockFree certifies every routing function
// Apiary ships via the channel-dependency-graph check, on several mesh
// sizes including non-square ones.
func TestShippedRoutingFunctionsDeadlockFree(t *testing.T) {
	routes := map[string]RouteFunc{
		"xy":         RouteXY,
		"yx":         RouteYX,
		"west-first": RouteWestFirst,
	}
	for name, route := range routes {
		for _, d := range []Dims{{2, 2}, {4, 4}, {8, 3}, {3, 8}, {6, 6}} {
			ok, cycle := CheckDeadlockFree(d, route)
			if !ok {
				t.Fatalf("%s on %dx%d has a CDG cycle: %v", name, d.W, d.H, cycle)
			}
		}
	}
}

// TestCDGDetectsBadRouting: a routing function with an unrestricted turn
// set must be flagged. "Adaptive" round-robin-ish routing that permits all
// turns creates cycles on any 2x2 or larger mesh.
func TestCDGDetectsBadRouting(t *testing.T) {
	// A deliberately broken function: route clockwise around the mesh
	// perimeter regardless of destination proximity (takes non-minimal
	// turns that close a cycle), falling back to XY at the centre.
	bad := func(here, dst Coord) Port {
		if here == dst {
			return Local
		}
		// Clockwise ring on the 2x2 mesh.
		switch here {
		case Coord{0, 0}:
			return East
		case Coord{1, 0}:
			return South
		case Coord{1, 1}:
			return West
		case Coord{0, 1}:
			return North
		}
		return RouteXY(here, dst)
	}
	ok, cycle := CheckDeadlockFree(Dims{2, 2}, bad)
	if ok {
		t.Fatal("cyclic ring routing certified as deadlock-free")
	}
	if len(cycle) < 2 {
		t.Fatalf("no cycle witness returned: %v", cycle)
	}
}

// TestCDGEmptyOnTrivialMesh: a 1x1 mesh has no channels.
func TestCDGEmptyOnTrivialMesh(t *testing.T) {
	if cdg := BuildCDG(Dims{1, 1}, RouteXY); len(cdg) != 0 {
		t.Fatalf("1x1 CDG = %v", cdg)
	}
	ok, _ := CheckDeadlockFree(Dims{1, 1}, RouteXY)
	if !ok {
		t.Fatal("trivial mesh flagged")
	}
}

// TestCDGDependencyShape: on a 3x1 mesh with XY routing, the only
// dependencies are straight-through east and west chains.
func TestCDGDependencyShape(t *testing.T) {
	cdg := BuildCDG(Dims{3, 1}, RouteXY)
	east0 := channel{from: Coord{0, 0}, out: East}
	east1 := channel{from: Coord{1, 0}, out: East}
	if !cdg[east0][east1] {
		t.Fatal("missing east chain dependency")
	}
	west2 := channel{from: Coord{2, 0}, out: West}
	west1 := channel{from: Coord{1, 0}, out: West}
	if !cdg[west2][west1] {
		t.Fatal("missing west chain dependency")
	}
	if cdg[east0][west1] || cdg[west2][east1] {
		t.Fatal("spurious U-turn dependency")
	}
}
