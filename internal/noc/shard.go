package noc

import (
	"fmt"

	"apiary/internal/msg"
	"apiary/internal/sim"
)

// nocShard holds everything one spatial shard of the mesh may touch during
// the tick phase without synchronization: a private packet pool and the
// staging queues for effects that cross the shard boundary (or that must be
// ordered deterministically across shards). Network.Commit drains the
// queues shard-by-shard in ascending shard order, which — because shards
// are contiguous row bands visited in tile order within a shard — is
// exactly global tile order, the same order a serial tick would have staged
// them in. That identity is what makes parallel runs bit-exact.
type nocShard struct {
	pool pktPool

	// busyTiles counts the band's tiles with any buffered flit; queuedNIs
	// counts its NIs with packets queued. Together they make the band's
	// Idle check O(1). Maintained by acceptFlit/popFlit and Send/tick, all
	// of which run either in this shard's tick or on the main goroutine.
	busyTiles int
	queuedNIs int

	// credits are inter-router credit returns staged by popFlit as indices
	// into Network.soa.credits: each entry is incremented once at commit.
	// Increments commute (≤1 per link per cycle and integer adds), so
	// cross-shard order is irrelevant.
	credits []int32

	// handoffs are flits forwarded to a neighbour router, applied via
	// acceptFlit at commit. At most one flit crosses a given link per
	// cycle and each (router, port) pair is fed by exactly one link, so no
	// two handoffs in a cycle target the same input FIFO — commit order
	// across shards cannot matter.
	handoffs []handoff

	// ejections are packets whose tail left through the Local port,
	// delivered (NI callback + latency observation) at commit. A router
	// ejects at most one packet per cycle; committing shard-by-shard in
	// tile order keeps the shared latency histogram's float sum — the one
	// order-sensitive reduction in the NoC — deterministic and equal to the
	// serial order.
	ejections []ejection

	// Counter deltas, merged into the shared sim.Counters at commit so the
	// hot paths touch no cross-core cache lines. (Ejection-side counters
	// need no deltas: eject only ever runs in the commit phase.)
	flitsRouted uint64
	pktsRouted  uint64
	stallNoCred uint64
	stallNoVC   uint64
	stallFault  uint64
	corrupted   uint64
	sent        uint64
	inflight    int

	// flipsFired counts armed corruptions consumed this cycle; the commit
	// merge decrements Network.armedFlips (the express bypass's pending-
	// corruption summary) by it, keeping that field main-goroutine-only.
	flipsFired uint64
}

type handoff struct {
	to int32 // destination tile
	p  Port
	vc VCID
	f  Flit
}

type ejection struct {
	ni  *NetworkInterface
	pkt *Packet
}

// validShards resolves cfg.Shards against the mesh height: 0 (auto) picks
// the largest divisor of H not exceeding GOMAXPROCS; explicit counts are
// clamped to [1, H] and must then divide H evenly — uneven bands would make
// band boundaries (and therefore which effects stage cross-shard) depend on
// rounding, and are always a configuration mistake.
func validShards(requested, h, maxProcs int) (int, error) {
	if requested == 0 {
		for s := maxProcs; s >= 1; s-- {
			if s <= h && h%s == 0 {
				return s, nil
			}
		}
		return 1, nil
	}
	s := requested
	if s < 1 {
		s = 1
	}
	if s > h {
		s = h
	}
	if h%s != 0 {
		return 0, fmt.Errorf(
			"noc: Shards=%d does not divide mesh height %d evenly; use a divisor of %d (e.g. %d)",
			requested, h, h, largestDivisorLE(h, s))
	}
	return s, nil
}

// largestDivisorLE returns the largest divisor of h that is ≤ limit.
func largestDivisorLE(h, limit int) int {
	for s := limit; s > 1; s-- {
		if h%s == 0 {
			return s
		}
	}
	return 1
}

// assignShards partitions the mesh into count contiguous row bands (count
// divides H, so band s covers exactly H/count rows starting at s*H/count)
// and points every router and NI at its band's staging area. Contiguity
// matters twice: it keeps each shard's internal tile order a contiguous run
// of the global tile order (the determinism argument above), and it puts
// each router next to 3 of its 4 neighbours, so only the band-boundary
// links ever stage cross-shard.
func (n *Network) assignShards(count int) {
	n.shards = make([]*nocShard, count)
	for s := range n.shards {
		n.shards[s] = &nocShard{}
	}
	rows := n.dims.H / count
	for i := range n.routers {
		r := &n.routers[i]
		s := r.Coord.Y / rows
		r.shard = n.shards[s]
		r.shardIdx = s
	}
	// Mark band-boundary links: only these ever need commit-phase staging
	// for handoffs (and then only while the tick phase runs on the worker
	// pool).
	for i := range n.routers {
		r := &n.routers[i]
		for p := North; p < numPorts; p++ {
			nb := r.neighbours[p]
			r.stageTo[p] = nb >= 0 && n.routers[nb].shardIdx != r.shardIdx
		}
	}
	for i := range n.nis {
		ni := &n.nis[i]
		ni.shard = n.routers[i].shard
		ni.shardIdx = n.routers[i].shardIdx
	}
	n.bands = make([]bandTicker, count)
	for s := 0; s < count; s++ {
		n.bands[s] = bandTicker{
			net:    n,
			shard:  s,
			loTile: int32(s * rows * n.dims.W),
			hiTile: int32((s + 1) * rows * n.dims.W),
		}
	}
}

// NumShards reports how many row-band shards the mesh is partitioned into.
func (n *Network) NumShards() int { return len(n.shards) }

// ShardOf reports the shard index of tile t — the shard affinity that
// tile-local tickers (shells, monitors) declare to run on the tile's worker.
func (n *Network) ShardOf(t msg.TileID) int { return n.routers[int(t)].shardIdx }

// Commit applies the cycle's staged cross-shard effects in deterministic
// order: credits, then neighbour handoffs, then counter-delta merges, then
// ejections — each pass walking shards in ascending order. Ejections go
// last so a delivery callback that immediately sends a reply (monitor
// request/response) observes the fully settled network state. Commit runs
// on the main goroutine (sim.Committer contract), so it may touch any
// router or NI freely.
func (n *Network) Commit(now sim.Cycle) {
	for _, sh := range n.shards {
		for _, ci := range sh.credits {
			n.soa.credits[ci]++
			// A returning credit ends any parked stall streak on this
			// output VC: settle the deferred cycles (this one included —
			// the tick already ran and the candidate could not send) and
			// put the candidate back in stage 2's sendable set.
			if cs := n.soa.credBlockStart[ci]; cs != noStreak {
				n.cStallNoCred.Add(uint64(now - cs))
				n.soa.credBlockStart[ci] = noStreak
				n.soa.sendable[int(ci)/pvCount] |= 1 << uint(int(ci)%pvCount)
			}
		}
		sh.credits = sh.credits[:0]
	}
	for _, sh := range n.shards {
		for i := range sh.handoffs {
			h := &sh.handoffs[i]
			n.acceptFlit(&n.routers[h.to], h.p, h.vc, h.f, now)
			h.f.Pkt = nil
		}
		sh.handoffs = sh.handoffs[:0]
	}
	for _, sh := range n.shards {
		if sh.flitsRouted != 0 {
			n.cFlitsRouted.Add(sh.flitsRouted)
			sh.flitsRouted = 0
		}
		if sh.pktsRouted != 0 {
			n.cPktsRouted.Add(sh.pktsRouted)
			sh.pktsRouted = 0
		}
		if sh.stallNoCred != 0 {
			n.cStallNoCred.Add(sh.stallNoCred)
			sh.stallNoCred = 0
		}
		if sh.stallNoVC != 0 {
			n.cStallNoVC.Add(sh.stallNoVC)
			sh.stallNoVC = 0
		}
		if sh.stallFault != 0 {
			n.cStallFault.Add(sh.stallFault)
			sh.stallFault = 0
		}
		if sh.corrupted != 0 {
			n.cCorrupted.Add(sh.corrupted)
			sh.corrupted = 0
		}
		if sh.flipsFired != 0 {
			n.armedFlips -= int(sh.flipsFired)
			sh.flipsFired = 0
		}
		if sh.sent != 0 {
			n.cSent.Add(sh.sent)
			sh.sent = 0
		}
		n.inflight += sh.inflight
		sh.inflight = 0
	}
	// Express bypass: confirm a staged activation, settle a flight's
	// per-cycle analytic effects, or deliver its arrival — after the
	// activity picture above is final, before the ejection pass so an
	// express arrival ejects this cycle like any per-flit tail.
	n.expressCommit(now)
	for _, sh := range n.shards {
		for i := range sh.ejections {
			ej := sh.ejections[i]
			sh.ejections[i] = ejection{}
			ej.ni.eject(ej.pkt, now)
			sh.pool.putPacket(ej.pkt)
		}
		sh.ejections = sh.ejections[:0]
	}
	n.committedThrough = now
}
