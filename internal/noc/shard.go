package noc

import (
	"apiary/internal/msg"
	"apiary/internal/sim"
)

// nocShard holds everything one spatial shard of the mesh may touch during
// the tick phase without synchronization: a private flit/packet pool and the
// staging queues for effects that cross the shard boundary (or that must be
// ordered deterministically across shards). Network.Commit drains the
// queues shard-by-shard in ascending shard order, which — because shards
// are contiguous row bands visited in tile order within a shard — is
// exactly global tile order, the same order a serial tick would have staged
// them in. That identity is what makes parallel runs bit-exact.
type nocShard struct {
	pool flitPool

	// credits are inter-router credit returns staged by popIn: each entry's
	// counter is incremented once at commit. Increments commute (≤1 per
	// link per cycle and integer adds), so cross-shard order is irrelevant.
	credits []*outVC

	// handoffs are flits forwarded to a neighbour router, applied via
	// Router.accept at commit. At most one flit crosses a given link per
	// cycle and each (router, port) pair is fed by exactly one link, so no
	// two handoffs in a cycle target the same input FIFO — commit order
	// across shards cannot matter.
	handoffs []handoff

	// ejections are packets whose tail left through the Local port,
	// delivered (NI callback + latency observation) at commit. A router
	// ejects at most one packet per cycle; committing shard-by-shard in
	// tile order keeps the shared latency histogram's float sum — the one
	// order-sensitive reduction in the NoC — deterministic and equal to the
	// serial order.
	ejections []ejection

	// Counter deltas, merged into the shared sim.Counters at commit so the
	// hot paths touch no cross-core cache lines. (Ejection-side counters
	// need no deltas: eject only ever runs in the commit phase.)
	flitsRouted uint64
	pktsRouted  uint64
	stallNoCred uint64
	stallNoVC   uint64
	stallFault  uint64
	corrupted   uint64
	sent        uint64
	inflight    int
}

type handoff struct {
	to *Router
	p  Port
	vc VCID
	f  *Flit
}

type ejection struct {
	ni  *NetworkInterface
	pkt *Packet
}

// assignShards partitions the mesh into n contiguous row bands (shard s
// covers rows [s*H/n, (s+1)*H/n)) and points every router and NI at its
// band's staging area. Contiguity matters twice: it keeps each shard's
// internal tile order a contiguous run of the global tile order (the
// determinism argument above), and it puts each router next to 3 of its 4
// neighbours, so only the band-boundary links ever stage cross-shard.
func (n *Network) assignShards(count int) {
	if count < 1 {
		count = 1
	}
	if count > n.dims.H {
		count = n.dims.H
	}
	n.shards = make([]*nocShard, count)
	for s := range n.shards {
		n.shards[s] = &nocShard{}
	}
	for i, r := range n.routers {
		c := n.dims.Coord(msg.TileID(i))
		s := c.Y * count / n.dims.H
		r.shard = n.shards[s]
		r.shardIdx = s
		r.pool = &n.shards[s].pool
	}
	for i, ni := range n.nis {
		r := n.routers[i]
		ni.shard = r.shard
		ni.shardIdx = r.shardIdx
	}
}

// NumShards reports how many row-band shards the mesh is partitioned into.
func (n *Network) NumShards() int { return len(n.shards) }

// ShardOf reports the shard index of tile t — the shard affinity that
// tile-local tickers (shells, monitors) declare to run on the tile's worker.
func (n *Network) ShardOf(t msg.TileID) int { return n.routers[int(t)].shardIdx }

// Commit applies the cycle's staged cross-shard effects in deterministic
// order: credits, then neighbour handoffs, then counter-delta merges, then
// ejections — each pass walking shards in ascending order. Ejections go
// last so a delivery callback that immediately sends a reply (monitor
// request/response) observes the fully settled network state. Commit runs
// on the main goroutine (sim.Committer contract), so it may touch any
// router or NI freely.
func (n *Network) Commit(now sim.Cycle) {
	for _, sh := range n.shards {
		for _, ovc := range sh.credits {
			ovc.credits++
		}
		sh.credits = sh.credits[:0]
	}
	for _, sh := range n.shards {
		for _, h := range sh.handoffs {
			h.to.accept(h.p, h.vc, h.f, now)
		}
		sh.handoffs = sh.handoffs[:0]
	}
	for _, sh := range n.shards {
		if sh.flitsRouted != 0 {
			n.cFlitsRouted.Add(sh.flitsRouted)
			sh.flitsRouted = 0
		}
		if sh.pktsRouted != 0 {
			n.cPktsRouted.Add(sh.pktsRouted)
			sh.pktsRouted = 0
		}
		if sh.stallNoCred != 0 {
			n.cStallNoCred.Add(sh.stallNoCred)
			sh.stallNoCred = 0
		}
		if sh.stallNoVC != 0 {
			n.cStallNoVC.Add(sh.stallNoVC)
			sh.stallNoVC = 0
		}
		if sh.stallFault != 0 {
			n.cStallFault.Add(sh.stallFault)
			sh.stallFault = 0
		}
		if sh.corrupted != 0 {
			n.cCorrupted.Add(sh.corrupted)
			sh.corrupted = 0
		}
		if sh.sent != 0 {
			n.cSent.Add(sh.sent)
			sh.sent = 0
		}
		n.inflight += sh.inflight
		sh.inflight = 0
	}
	for _, sh := range n.shards {
		for i := range sh.ejections {
			ej := sh.ejections[i]
			sh.ejections[i] = ejection{}
			ej.ni.eject(ej.pkt, now)
			sh.pool.putPacket(ej.pkt)
		}
		sh.ejections = sh.ejections[:0]
	}
}
