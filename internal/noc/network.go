package noc

import (
	"fmt"
	"runtime"
	"sort"

	"apiary/internal/msg"
	"apiary/internal/sim"
)

// Config selects NoC construction parameters.
type Config struct {
	Dims  Dims
	Route RouteFunc // defaults to RouteXY

	// Shards is the number of contiguous row bands the mesh is partitioned
	// into for the sharded tick phase. It is clamped to [1, H] and must then
	// divide H evenly (uneven bands are rejected with a clear error at
	// construction). 0 means auto: the largest divisor of H not exceeding
	// GOMAXPROCS, one band per core the worker pool can use. A single shard
	// still stages effects — staging is what keeps serial and parallel runs
	// (and any shard count) bit-identical — it just never engages the
	// parallel scheduler.
	Shards int

	// NoExpress disables the express-channel bypass (express.go), forcing
	// every packet through per-cycle flit simulation. The bypass is
	// behaviour-preserving — differential tests run with it on and off —
	// so this is an A/B knob, not a correctness switch.
	NoExpress bool
}

// Network is a complete mesh NoC: routers, links (implicit in router
// wiring) and one NetworkInterface per tile. All per-cycle state lives in
// the flat structure-of-arrays soa (state.go); routers and NIs are views.
type Network struct {
	engine  *sim.Engine
	dims    Dims
	route   RouteFunc
	routers []Router
	nis     []NetworkInterface
	soa     nocState
	stats   *sim.Stats

	// shards are the per-row-band staging areas and packet pools, bands the
	// consolidated per-band tickers; see shard.go and state.go. Network
	// itself is the sim.Committer that drains the staging queues.
	shards []*nocShard
	bands  []bandTicker

	// Shared counters the commit phase merges per-shard deltas into.
	cFlitsRouted *sim.Counter
	cPktsRouted  *sim.Counter
	cStallNoCred *sim.Counter
	cStallNoVC   *sim.Counter
	cStallFault  *sim.Counter
	cCorrupted   *sim.Counter
	cSent        *sim.Counter

	// inflight counts packets between Send and ejection, making Quiescent
	// O(1). Valid between cycles (staged deltas merge at commit).
	inflight int

	// Express-channel bypass state (express.go). noExpress mirrors
	// Config.NoExpress; committedThrough is the last fully committed cycle
	// (the cutoff a mid-flight materialization reconstructs state at);
	// faultMaxAll / armedFlips summarize open fault windows and armed
	// corruptions across every router, because a bypassed flight must see
	// none. expressWakeFn is the single reusable arrival wake-up closure.
	express          expressState
	noExpress        bool
	committedThrough sim.Cycle
	faultMaxAll      sim.Cycle
	armedFlips       int
	expressWakeFn    func(sim.Cycle)
	cExpressHits     *sim.Counter
	cExpressMat      *sim.Counter

	// spanner, when non-nil, is the flight recorder sampling packet
	// lifecycles (see span.go).
	spanner SpanSampler
}

// NewNetwork builds a W×H mesh attached to the engine. One consolidated
// ticker per row band is registered in ascending band order (covering the
// band's routers then its NIs, each in tile order), and the network
// registers itself as the engine's Committer for staged cross-shard
// effects.
func NewNetwork(e *sim.Engine, st *sim.Stats, cfg Config) *Network {
	if cfg.Dims.W < 1 || cfg.Dims.H < 1 {
		panic(fmt.Sprintf("noc: invalid dims %dx%d", cfg.Dims.W, cfg.Dims.H))
	}
	route := cfg.Route
	if route == nil {
		route = RouteXY
	}
	shards, err := validShards(cfg.Shards, cfg.Dims.H, runtime.GOMAXPROCS(0))
	if err != nil {
		panic(err.Error())
	}
	tiles := cfg.Dims.Tiles()
	n := &Network{
		engine: e, dims: cfg.Dims, route: route, stats: st,
		routers: make([]Router, tiles),
		nis:     make([]NetworkInterface, tiles),
		soa:     newState(tiles),
	}
	n.cFlitsRouted = st.Counter("noc.flits_routed")
	n.cPktsRouted = st.Counter("noc.pkts_routed")
	n.cStallNoCred = st.Counter("noc.stall_no_credit")
	n.cStallNoVC = st.Counter("noc.stall_no_vc")
	n.cStallFault = st.Counter("noc.stall_fault")
	n.cCorrupted = st.Counter("noc.flits_corrupted")
	for i := 0; i < tiles; i++ {
		r := &n.routers[i]
		r.Coord = n.dims.Coord(msg.TileID(i))
		r.tile = int32(i)
		r.net = n
		r.neighbours = [numPorts]int32{-1, -1, -1, -1, -1}
	}
	// Wire neighbours and inter-router credit returns: a flit leaving the
	// input buffer of router B port p frees a credit at router A's output
	// (the link that filled it).
	for i := 0; i < tiles; i++ {
		r := &n.routers[i]
		for p := North; p < numPorts; p++ {
			nc := neighbour(r.Coord, p)
			if !n.dims.Contains(nc) {
				continue
			}
			nb := int32(n.dims.TileID(nc))
			r.neighbours[p] = nb
			for v := 0; v < NumVCs; v++ {
				n.soa.creditTo[int(nb)*pvCount+int(p.opposite())*NumVCs+v] =
					int32(i*pvCount + int(p)*NumVCs + v)
			}
		}
	}
	// NI views: injection credits live at the tail of soa.credits; the
	// router's Local inputs return credits there directly (same tile, same
	// shard, router ticks before its NI).
	for i := 0; i < tiles; i++ {
		ni := &n.nis[i]
		ni.tile = msg.TileID(i)
		ni.coord = n.routers[i].Coord
		ni.net = n
		ni.rt = &n.routers[i]
		ni.injCred = n.injCredIdx(int32(i), 0)
		for v := 0; v < NumVCs; v++ {
			ivx := i*pvCount + int(Local)*NumVCs + v
			n.soa.creditTo[ivx] = -int32(ni.injCred+v) - 2
		}
		ni.sent = st.Counter("noc.msgs_sent")
		ni.delivered = st.Counter("noc.msgs_delivered")
		ni.latency = st.Histogram("noc.msg_latency_cycles")
	}
	n.cSent = st.Counter("noc.msgs_sent")
	n.noExpress = cfg.NoExpress
	n.cExpressHits = st.Counter("noc.express_hits")
	n.cExpressMat = st.Counter("noc.express_materialized")
	// Route buffers sized for minimal (Manhattan) paths; a non-minimal
	// custom RouteFunc just grows them once.
	n.express.tiles = make([]int32, 0, cfg.Dims.W+cfg.Dims.H)
	n.express.ports = make([]Port, 0, cfg.Dims.W+cfg.Dims.H)
	n.expressWakeFn = func(sim.Cycle) {}
	n.assignShards(shards)
	for s := range n.bands {
		e.Register(&n.bands[s])
	}
	e.RegisterCommitter(n)
	return n
}

// Dims reports the mesh dimensions.
func (n *Network) Dims() Dims { return n.dims }

// NI returns tile t's network interface.
func (n *Network) NI(t msg.TileID) *NetworkInterface {
	return &n.nis[int(t)]
}

// Router returns tile t's router (for tests and utilization accounting).
func (n *Network) Router(t msg.TileID) *Router {
	return &n.routers[int(t)]
}

// Quiescent reports whether no packets are queued or in flight anywhere.
// O(1): every packet is counted from Send until its tail flit ejects, which
// covers both NI injection queues and router buffers. Valid between cycles
// (RunUntil conditions, tests); mid-cycle the staged per-shard deltas have
// not merged yet.
func (n *Network) Quiescent() bool { return n.inflight == 0 }

// InFlight reports the number of packets between Send and ejection. Like
// Quiescent it is valid between cycles.
func (n *Network) InFlight() int { return n.inflight }

// VCOccupancy reports the buffered flits per virtual channel summed over
// every router input port — the windowed-telemetry view of where traffic
// classes are queued. One linear pass over the occupancy array; intended
// for periodic sampling, not per-cycle paths.
func (n *Network) VCOccupancy() [NumVCs]int {
	var occ [NumVCs]int
	for ivx, l := range n.soa.fifoLen {
		if l != 0 {
			occ[ivx%NumVCs] += int(l)
		}
	}
	if x := &n.express; x.active {
		// Virtual flits of a bypassed packet occupy exactly the buffers the
		// per-flit simulation would have them in (one flit per router ring).
		lo, hi := x.ringRange(n.expressCutoff())
		if hi >= lo {
			occ[x.vc] += hi - lo + 1
		}
	}
	return occ
}

// TileActive reports whether tile t currently holds any NoC work: buffered
// flits in its router or packets queued at its NI.
func (n *Network) TileActive(t msg.TileID) bool {
	if n.soa.occ[int(t)] != 0 || n.nis[int(t)].queued > 0 {
		return true
	}
	if x := &n.express; x.active {
		lo, hi := x.ringRange(n.expressCutoff())
		for j := lo; j <= hi; j++ {
			if x.tiles[j] == int32(t) {
				return true
			}
		}
	}
	return false
}

// LinkLoad is one directed link's traffic.
type LinkLoad struct {
	From  Coord
	Out   Port
	Flits uint64
}

// LinkUtilization reports flits forwarded per directed link (and per local
// ejection port), busiest first — the congestion heatmap behind placement
// and debugging decisions.
func (n *Network) LinkUtilization() []LinkLoad {
	cnt := 0
	for _, f := range n.soa.linkFlits {
		if f != 0 {
			cnt++
		}
	}
	out := make([]LinkLoad, 0, cnt)
	for i, f := range n.soa.linkFlits {
		if f == 0 {
			continue
		}
		t, p := i/int(numPorts), Port(i%int(numPorts))
		out = append(out, LinkLoad{From: n.routers[t].Coord, Out: p, Flits: f})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Flits != out[j].Flits {
			return out[i].Flits > out[j].Flits
		}
		a, b := out[i], out[j]
		if a.From != b.From {
			return n.dims.TileID(a.From) < n.dims.TileID(b.From)
		}
		return a.Out < b.Out
	})
	return out
}

// HottestLink returns the most-used inter-router link (zero LinkLoad if the
// network is unused). Single O(links) max-scan; scanning tiles in order
// with a strict > comparison resolves equal-traffic ties to the lowest
// tile ID, then the lowest port, matching LinkUtilization's sort order.
func (n *Network) HottestLink() LinkLoad {
	var best LinkLoad
	for i, f := range n.soa.linkFlits {
		p := Port(i % int(numPorts))
		if p == Local {
			continue
		}
		if f > best.Flits {
			best = LinkLoad{From: n.routers[i/int(numPorts)].Coord, Out: p, Flits: f}
		}
	}
	return best
}

// CreditInvariantViolation scans all output VCs and reports a description of
// the first credit-accounting violation found, or "" if the invariant
// holds: for an idle network every credit counter must equal BufDepth.
func (n *Network) CreditInvariantViolation() string {
	if !n.Quiescent() {
		return "network not quiescent"
	}
	for i := range n.routers {
		r := &n.routers[i]
		for p := Port(0); p < numPorts; p++ {
			if p == Local || r.neighbours[p] < 0 {
				continue // local output has no credit counter
			}
			for v := 0; v < NumVCs; v++ {
				ovx := i*pvCount + int(p)*NumVCs + v
				if got := n.soa.credits[ovx]; got != BufDepth {
					return fmt.Sprintf("router %d port %s vc %d credits=%d want %d",
						i, p, v, got, BufDepth)
				}
				if n.soa.owner[ovx] >= 0 {
					return fmt.Sprintf("router %d port %s vc %d still owned", i, p, v)
				}
			}
		}
	}
	for i := range n.nis {
		ni := &n.nis[i]
		for v := 0; v < NumVCs; v++ {
			if got := n.soa.credits[ni.injCred+v]; got != BufDepth {
				return fmt.Sprintf("ni %d vc %d inj credits=%d want %d",
					ni.tile, v, got, BufDepth)
			}
		}
	}
	return ""
}
