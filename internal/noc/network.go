package noc

import (
	"fmt"
	"runtime"
	"sort"

	"apiary/internal/msg"
	"apiary/internal/sim"
)

// Config selects NoC construction parameters.
type Config struct {
	Dims  Dims
	Route RouteFunc // defaults to RouteXY

	// Shards is the number of contiguous row bands the mesh is partitioned
	// into for the sharded tick phase (clamped to [1, H]). 0 means auto:
	// min(GOMAXPROCS, H), one band per core the worker pool can use. A
	// single shard still stages effects — staging is what keeps serial and
	// parallel runs (and any shard count) bit-identical — it just never
	// engages the parallel scheduler.
	Shards int
}

// Network is a complete mesh NoC: routers, links (implicit in router
// wiring) and one NetworkInterface per tile.
type Network struct {
	engine  *sim.Engine
	dims    Dims
	routers []*Router
	nis     []*NetworkInterface
	stats   *sim.Stats

	// shards are the per-row-band staging areas and flit pools; see
	// shard.go. Network itself is the sim.Committer that drains them.
	shards []*nocShard

	// Shared counters the commit phase merges per-shard deltas into.
	cFlitsRouted *sim.Counter
	cPktsRouted  *sim.Counter
	cStallNoCred *sim.Counter
	cStallNoVC   *sim.Counter
	cStallFault  *sim.Counter
	cCorrupted   *sim.Counter
	cSent        *sim.Counter

	// inflight counts packets between Send and ejection, making Quiescent
	// O(1). Valid between cycles (staged deltas merge at commit).
	inflight int

	// spanner, when non-nil, is the flight recorder sampling packet
	// lifecycles (see span.go).
	spanner SpanSampler
}

// NewNetwork builds a W×H mesh attached to the engine. All routers and NIs
// are registered as tickers in deterministic (row-major, routers before
// NIs) order, and the network registers itself as the engine's Committer
// for staged cross-shard effects.
func NewNetwork(e *sim.Engine, st *sim.Stats, cfg Config) *Network {
	if cfg.Dims.W < 1 || cfg.Dims.H < 1 {
		panic(fmt.Sprintf("noc: invalid dims %dx%d", cfg.Dims.W, cfg.Dims.H))
	}
	route := cfg.Route
	if route == nil {
		route = RouteXY
	}
	n := &Network{engine: e, dims: cfg.Dims, stats: st}
	n.cFlitsRouted = st.Counter("noc.flits_routed")
	n.cPktsRouted = st.Counter("noc.pkts_routed")
	n.cStallNoCred = st.Counter("noc.stall_no_credit")
	n.cStallNoVC = st.Counter("noc.stall_no_vc")
	n.cStallFault = st.Counter("noc.stall_fault")
	n.cCorrupted = st.Counter("noc.flits_corrupted")
	for y := 0; y < cfg.Dims.H; y++ {
		for x := 0; x < cfg.Dims.W; x++ {
			c := Coord{x, y}
			r := newRouter(c, route)
			n.routers = append(n.routers, r)
		}
	}
	// Wire neighbours and inter-router credit returns: a flit leaving the
	// input buffer of router B port p frees a credit at router A's output
	// (the link that filled it).
	for i, r := range n.routers {
		c := n.dims.Coord(msg.TileID(i))
		for p := North; p < numPorts; p++ {
			nc := neighbour(c, p)
			if !n.dims.Contains(nc) {
				continue
			}
			nb := n.routers[n.dims.TileID(nc)]
			r.neighbours[p] = nb
			for v := 0; v < NumVCs; v++ {
				nb.in[p.opposite()][v].creditTo = r.out[p][v]
			}
		}
	}
	for i, r := range n.routers {
		c := n.dims.Coord(msg.TileID(i))
		ni := newNI(msg.TileID(i), c, n, r, st)
		n.nis = append(n.nis, ni)
	}
	n.cSent = st.Counter("noc.msgs_sent")
	shards := cfg.Shards
	if shards == 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	n.assignShards(shards)
	for _, r := range n.routers {
		e.Register(r)
	}
	for _, ni := range n.nis {
		e.Register(ni)
	}
	e.RegisterCommitter(n)
	return n
}

// Dims reports the mesh dimensions.
func (n *Network) Dims() Dims { return n.dims }

// NI returns tile t's network interface.
func (n *Network) NI(t msg.TileID) *NetworkInterface {
	return n.nis[int(t)]
}

// Router returns tile t's router (for tests and utilization accounting).
func (n *Network) Router(t msg.TileID) *Router {
	return n.routers[int(t)]
}

// Quiescent reports whether no packets are queued or in flight anywhere.
// O(1): every packet is counted from Send until its tail flit ejects, which
// covers both NI injection queues and router buffers. Valid between cycles
// (RunUntil conditions, tests); mid-cycle the staged per-shard deltas have
// not merged yet.
func (n *Network) Quiescent() bool { return n.inflight == 0 }

// InFlight reports the number of packets between Send and ejection. Like
// Quiescent it is valid between cycles.
func (n *Network) InFlight() int { return n.inflight }

// VCOccupancy reports the buffered flits per virtual channel summed over
// every router input port — the windowed-telemetry view of where traffic
// classes are queued. O(tiles × ports); intended for periodic sampling, not
// per-cycle paths.
func (n *Network) VCOccupancy() [NumVCs]int {
	var occ [NumVCs]int
	for _, r := range n.routers {
		for p := Port(0); p < numPorts; p++ {
			for v := 0; v < NumVCs; v++ {
				occ[v] += len(r.in[p][v].fifo)
			}
		}
	}
	return occ
}

// TileActive reports whether tile t currently holds any NoC work: buffered
// flits in its router or packets queued at its NI.
func (n *Network) TileActive(t msg.TileID) bool {
	return n.routers[int(t)].busyIn > 0 || n.nis[int(t)].queued > 0
}

// LinkLoad is one directed link's traffic.
type LinkLoad struct {
	From  Coord
	Out   Port
	Flits uint64
}

// LinkUtilization reports flits forwarded per directed link (and per local
// ejection port), busiest first — the congestion heatmap behind placement
// and debugging decisions.
func (n *Network) LinkUtilization() []LinkLoad {
	cnt := 0
	for _, r := range n.routers {
		for p := Port(0); p < numPorts; p++ {
			if r.linkFlits[p] != 0 {
				cnt++
			}
		}
	}
	out := make([]LinkLoad, 0, cnt)
	for _, r := range n.routers {
		for p := Port(0); p < numPorts; p++ {
			if r.linkFlits[p] == 0 {
				continue
			}
			out = append(out, LinkLoad{From: r.Coord, Out: p, Flits: r.linkFlits[p]})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Flits != out[j].Flits {
			return out[i].Flits > out[j].Flits
		}
		a, b := out[i], out[j]
		if a.From != b.From {
			return n.dims.TileID(a.From) < n.dims.TileID(b.From)
		}
		return a.Out < b.Out
	})
	return out
}

// HottestLink returns the most-used inter-router link (zero LinkLoad if the
// network is unused). Single O(links) max-scan; scanning routers in tile
// order with a strict > comparison resolves equal-traffic ties to the lowest
// tile ID, then the lowest port, matching LinkUtilization's sort order.
func (n *Network) HottestLink() LinkLoad {
	var best LinkLoad
	for _, r := range n.routers {
		for p := Port(0); p < numPorts; p++ {
			if p == Local {
				continue
			}
			if r.linkFlits[p] > best.Flits {
				best = LinkLoad{From: r.Coord, Out: p, Flits: r.linkFlits[p]}
			}
		}
	}
	return best
}

// CreditInvariantViolation scans all output VCs and reports a description of
// the first credit-accounting violation found, or "" if the invariant
// holds: for an idle network every credit counter must equal BufDepth.
func (n *Network) CreditInvariantViolation() string {
	if !n.Quiescent() {
		return "network not quiescent"
	}
	for i, r := range n.routers {
		for p := Port(0); p < numPorts; p++ {
			if r.neighbours[p] == nil && p != Local {
				continue
			}
			for v := 0; v < NumVCs; v++ {
				if p == Local {
					continue // local output has no credit counter
				}
				if got := r.out[p][v].credits; got != BufDepth {
					return fmt.Sprintf("router %d port %s vc %d credits=%d want %d",
						i, p, v, got, BufDepth)
				}
				if r.out[p][v].owner != nil {
					return fmt.Sprintf("router %d port %s vc %d still owned", i, p, v)
				}
			}
		}
	}
	for _, ni := range n.nis {
		for v := 0; v < NumVCs; v++ {
			if got := ni.injCred[v].credits; got != BufDepth {
				return fmt.Sprintf("ni %d vc %d inj credits=%d want %d",
					ni.tile, v, got, BufDepth)
			}
		}
	}
	return ""
}
