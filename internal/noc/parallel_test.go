package noc

import (
	"fmt"
	"reflect"
	"testing"

	"apiary/internal/msg"
	"apiary/internal/sim"
)

// nocSnapshot captures everything externally observable about a finished
// run: every counter, every histogram's distribution, the full delivery
// order and per-link flit loads. Two runs are "bit-exact" iff their
// snapshots are deeply equal.
type nocSnapshot struct {
	Now             sim.Cycle
	Counters        map[string]uint64
	HistStats       map[string][6]float64 // count, mean, min, max, p50, p99
	Delivery        []string              // in delivery order
	Links           []LinkLoad
	Rejected        int
	CreditViolation string
}

// runTraffic builds an 8x8 mesh with the given shard count, parallel mode
// and idle-skip setting, drives saturated uniform-random traffic from engine
// events (a traffic RNG separate from the engine's), runs to quiescence and
// snapshots the result.
func runTraffic(t *testing.T, seed uint64, shards int, mode sim.ParallelMode, idleSkip bool) nocSnapshot {
	t.Helper()
	e := sim.NewEngine(seed)
	defer e.Close()
	e.SetIdleSkip(idleSkip)
	st := sim.NewStats()
	n := NewNetwork(e, st, Config{Dims: Dims{8, 8}, Shards: shards})
	e.SetParallel(mode)

	snap := nocSnapshot{
		Counters:  make(map[string]uint64),
		HistStats: make(map[string][6]float64),
	}
	tiles := n.Dims().Tiles()
	for i := 0; i < tiles; i++ {
		tile := msg.TileID(i)
		n.NI(tile).SetDeliver(func(m *msg.Message, lat sim.Cycle) {
			snap.Delivery = append(snap.Delivery,
				fmt.Sprintf("%d<-%d seq=%d lat=%d now=%d", tile, m.SrcTile, m.Seq, lat, e.Now()))
		})
	}

	// Injection waves: every 4 cycles an event sends a burst of random
	// messages. Events run before the tick phase on the main goroutine, so
	// Send takes the direct (non-staged) path in both modes; the traffic
	// RNG keeps the engine RNG untouched and the pattern identical across
	// configurations. Bursts of 24 msgs/4 cycles over 64 tiles keep the
	// mesh saturated (rejects from full NI queues are part of the pattern
	// and must themselves be deterministic).
	rng := sim.NewRNG(seed * 1234)
	types := []msg.Type{msg.TRequest, msg.TReply, msg.TCtlPing, msg.TMemRead, msg.TError}
	var seq uint32
	const waves = 50
	for w := 0; w < waves; w++ {
		e.Schedule(sim.Cycle(1+4*w), func(now sim.Cycle) {
			for k := 0; k < 24; k++ {
				src := msg.TileID(rng.Intn(tiles))
				m := &msg.Message{
					Type:    types[rng.Intn(len(types))],
					SrcTile: src,
					DstTile: msg.TileID(rng.Intn(tiles)),
					Seq:     seq,
					Payload: make([]byte, rng.Intn(200)),
				}
				seq++
				if err := n.NI(src).Send(m); err != nil {
					snap.Rejected++
				}
			}
		})
	}

	e.Run(sim.Cycle(1 + 4*waves))
	if !e.RunUntil(n.Quiescent, 200000) {
		t.Fatalf("mesh did not quiesce (shards=%d mode=%v skip=%v)", shards, mode, idleSkip)
	}
	// Land every configuration on the same final cycle so Now and the
	// utilization window match regardless of how fast each drained.
	if e.Now() < 3000 {
		e.Run(3000 - e.Now())
	}

	snap.Now = e.Now()
	for _, c := range st.Counters() {
		snap.Counters[c.Name] = c.Value()
	}
	for _, h := range st.Histograms() {
		snap.HistStats[h.Name] = [6]float64{
			float64(h.Count()), h.Mean(), h.Min(), h.Max(), h.Quantile(0.5), h.Quantile(0.99),
		}
	}
	snap.Links = n.LinkUtilization()
	snap.CreditViolation = n.CreditInvariantViolation()
	return snap
}

// TestParallelDifferential is the tentpole's proof obligation: under
// saturated random traffic on an 8x8 mesh, a parallel run is bit-exact with
// a serial one — every noc.* counter, the latency distribution, the delivery
// order and the per-link flit counts — for every combination of parallel
// mode, shard count and idle-skip, across seeds.
func TestParallelDifferential(t *testing.T) {
	for _, seed := range []uint64{7, 99, 2026} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			base := runTraffic(t, seed, 1, sim.ParallelOff, false)
			if base.CreditViolation != "" {
				t.Fatalf("credit invariant (baseline): %s", base.CreditViolation)
			}
			if len(base.Delivery) == 0 || base.Counters["noc.msgs_delivered"] == 0 {
				t.Fatal("baseline run delivered nothing; the differential proves nothing")
			}
			if base.Counters["noc.stall_no_credit"] == 0 {
				t.Fatal("baseline run never stalled on credits; traffic is not saturating")
			}

			for _, shards := range []int{1, 2, 4, 8} {
				for _, mode := range []sim.ParallelMode{sim.ParallelOff, sim.ParallelOn} {
					for _, skip := range []bool{false, true} {
						shards, mode, skip := shards, mode, skip
						name := fmt.Sprintf("shards=%d/mode=%v/skip=%v", shards, mode, skip)
						t.Run(name, func(t *testing.T) {
							got := runTraffic(t, seed, shards, mode, skip)
							diffSnapshots(t, base, got)
						})
					}
				}
			}
		})
	}
}

func diffSnapshots(t *testing.T, want, got nocSnapshot) {
	t.Helper()
	if got.Now != want.Now {
		t.Errorf("Now = %d, want %d", got.Now, want.Now)
	}
	if got.Rejected != want.Rejected {
		t.Errorf("rejected sends = %d, want %d", got.Rejected, want.Rejected)
	}
	if got.CreditViolation != want.CreditViolation {
		t.Errorf("credit invariant: %q, want %q", got.CreditViolation, want.CreditViolation)
	}
	for name, w := range want.Counters {
		if g := got.Counters[name]; g != w {
			t.Errorf("counter %s = %d, want %d", name, g, w)
		}
	}
	for name, w := range want.HistStats {
		if g := got.HistStats[name]; g != w {
			t.Errorf("histogram %s = %v, want %v", name, g, w)
		}
	}
	if len(got.Delivery) != len(want.Delivery) {
		t.Fatalf("delivered %d messages, want %d", len(got.Delivery), len(want.Delivery))
	}
	for i := range want.Delivery {
		if got.Delivery[i] != want.Delivery[i] {
			t.Fatalf("delivery[%d] = %q, want %q", i, got.Delivery[i], want.Delivery[i])
		}
	}
	if !reflect.DeepEqual(got.Links, want.Links) {
		t.Errorf("link utilization differs")
	}
}

// TestParallelEngagesOnMesh checks the auto/forced activation story against
// a real mesh: 8x8 with forced shards engages under ParallelOn regardless of
// CPU count, and ShardOf partitions rows contiguously.
func TestParallelEngagesOnMesh(t *testing.T) {
	e := sim.NewEngine(1)
	defer e.Close()
	st := sim.NewStats()
	n := NewNetwork(e, st, Config{Dims: Dims{8, 8}, Shards: 4})
	if n.NumShards() != 4 {
		t.Fatalf("NumShards = %d, want 4", n.NumShards())
	}
	e.SetParallel(sim.ParallelOn)
	if !e.ParallelActive() {
		t.Fatal("ParallelOn not active on a fully sharded 8x8 mesh")
	}
	if e.NumShards() != 4 {
		t.Fatalf("engine NumShards = %d, want 4", e.NumShards())
	}
	// Shards are contiguous row bands in ascending order.
	last := 0
	for y := 0; y < 8; y++ {
		s := n.ShardOf(msg.TileID(y * 8))
		if s < last || s > y/2 {
			t.Fatalf("row %d in shard %d (last %d)", y, s, last)
		}
		for x := 1; x < 8; x++ {
			if n.ShardOf(msg.TileID(y*8+x)) != s {
				t.Fatalf("row %d not shard-uniform", y)
			}
		}
		last = s
	}

	// Shard counts beyond H clamp to H; zero-config auto never exceeds H.
	n2 := NewNetwork(sim.NewEngine(1), sim.NewStats(), Config{Dims: Dims{2, 2}, Shards: 64})
	if n2.NumShards() != 2 {
		t.Fatalf("clamped NumShards = %d, want 2", n2.NumShards())
	}
}

// TestParallelRaceSaturated exists to give the race detector a workload: a
// saturated parallel run with every staging path hot. Run via `make check`
// (go test -race); without -race it is just a smoke test.
func TestParallelRaceSaturated(t *testing.T) {
	snap := runTraffic(t, 7, 8, sim.ParallelOn, true)
	if snap.CreditViolation != "" {
		t.Fatalf("credit invariant: %s", snap.CreditViolation)
	}
	if snap.Counters["noc.msgs_delivered"] == 0 {
		t.Fatal("nothing delivered")
	}
}
