package noc

import (
	"apiary/internal/msg"
	"apiary/internal/sim"
)

// DeliverFunc receives a fully reassembled message at the destination tile,
// along with the packet's end-to-end NoC latency in cycles.
type DeliverFunc func(m *msg.Message, latency sim.Cycle)

// NetworkInterface (NI) is a tile's port onto the NoC. The monitor sits
// between the accelerator and the NI. Injection segments a message into
// flits and feeds the router's Local input port under the same credit
// protocol routers use between themselves; ejection reassembles and invokes
// the delivery callback.
type NetworkInterface struct {
	tile    msg.TileID
	coord   Coord
	net     *Network
	router  *Router
	deliver DeliverFunc

	// injection queues, one per VC, unbounded at the NI boundary; the
	// monitor applies backpressure/rate limits before messages reach here.
	injQ [NumVCs][]*Packet
	// flitsLeft tracks how many flits of the current head packet still need
	// injecting, per VC.
	flitsLeft [NumVCs]int
	// injCred mirrors the router Local input buffer occupancy.
	injCred [NumVCs]*outVC

	nextPktID uint64

	sent      *sim.Counter
	delivered *sim.Counter
	latency   *sim.Histogram
}

func newNI(tile msg.TileID, c Coord, net *Network, r *Router, st *sim.Stats) *NetworkInterface {
	ni := &NetworkInterface{tile: tile, coord: c, net: net, router: r}
	for v := 0; v < NumVCs; v++ {
		ni.injCred[v] = &outVC{credits: BufDepth}
		r.in[Local][v].creditTo = ni.injCred[v]
	}
	r.local = ni
	ni.sent = st.Counter("noc.msgs_sent")
	ni.delivered = st.Counter("noc.msgs_delivered")
	ni.latency = st.Histogram("noc.msg_latency_cycles")
	return ni
}

// Tile reports the NI's tile ID.
func (ni *NetworkInterface) Tile() msg.TileID { return ni.tile }

// SetDeliver installs the ejection callback. The monitor installs itself
// here during tile construction.
func (ni *NetworkInterface) SetDeliver(f DeliverFunc) { ni.deliver = f }

// QueuedPackets reports the number of packets waiting to inject (all VCs).
func (ni *NetworkInterface) QueuedPackets() int {
	n := 0
	for v := 0; v < NumVCs; v++ {
		n += len(ni.injQ[v])
	}
	return n
}

// Send queues m for injection. The destination tile must already be resolved
// (m.DstTile); the VC is chosen from the message type. Send never blocks;
// flits trickle out at one per VC per cycle as credits allow.
func (ni *NetworkInterface) Send(m *msg.Message) error {
	if len(m.Payload) > msg.MaxPayload {
		return msg.ETooBig.Error()
	}
	dst := ni.net.dims.Coord(m.DstTile)
	if !ni.net.dims.Contains(dst) || m.DstTile == msg.NoTile {
		return msg.ENoRoute.Error()
	}
	vc := ClassVC(m.Type)
	ni.nextPktID++
	pkt := &Packet{
		ID:       ni.nextPktID | uint64(ni.tile)<<48,
		Src:      ni.coord,
		Dst:      dst,
		VC:       vc,
		Msg:      m,
		NumFlits: FlitsFor(m.WireSize()),
		Injected: ni.net.engine.Now(),
	}
	ni.injQ[vc] = append(ni.injQ[vc], pkt)
	ni.sent.Inc()
	return nil
}

// Tick injects up to one flit per VC per cycle, credits permitting.
func (ni *NetworkInterface) Tick(now sim.Cycle) {
	for v := VCID(0); v < NumVCs; v++ {
		q := ni.injQ[v]
		if len(q) == 0 {
			continue
		}
		if ni.injCred[v].credits == 0 {
			continue
		}
		pkt := q[0]
		if ni.flitsLeft[v] == 0 {
			ni.flitsLeft[v] = pkt.NumFlits
		}
		idx := pkt.NumFlits - ni.flitsLeft[v]
		f := &Flit{Pkt: pkt, Idx: idx, Tail: ni.flitsLeft[v] == 1}
		ni.injCred[v].credits--
		ni.router.accept(Local, v, f, now)
		ni.flitsLeft[v]--
		if ni.flitsLeft[v] == 0 {
			copy(q, q[1:])
			q[len(q)-1] = nil
			ni.injQ[v] = q[:len(q)-1]
		}
	}
}

// eject is called by the router when a packet's tail flit leaves through the
// Local port.
func (ni *NetworkInterface) eject(pkt *Packet, now sim.Cycle) {
	ni.delivered.Inc()
	lat := now - pkt.Injected
	ni.latency.Observe(float64(lat))
	if ni.deliver != nil {
		ni.deliver(pkt.Msg, lat)
	}
}
