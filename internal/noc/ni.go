package noc

import (
	"apiary/internal/msg"
	"apiary/internal/sim"
)

// DeliverFunc receives a fully reassembled message at the destination tile,
// along with the packet's end-to-end NoC latency in cycles.
type DeliverFunc func(m *msg.Message, latency sim.Cycle)

// NetworkInterface (NI) is a tile's port onto the NoC. The monitor sits
// between the accelerator and the NI. Injection segments a message into
// flits and feeds the router's Local input port under the same credit
// protocol routers use between themselves; ejection reassembles and invokes
// the delivery callback. Like Router it is a thin view: its injection
// credits live in the network's structure-of-arrays state, and it is ticked
// by its row band's bandTicker.
type NetworkInterface struct {
	tile    msg.TileID
	coord   Coord
	net     *Network
	rt      *Router
	deliver DeliverFunc

	// injection queues, one per VC, unbounded at the NI boundary; the
	// monitor applies backpressure/rate limits before messages reach here.
	injQ [NumVCs][]*Packet
	// queued caches the total length of injQ so Idle and QueuedPackets are
	// O(1).
	queued int
	// flitsLeft tracks how many flits of the current head packet still need
	// injecting, per VC.
	flitsLeft [NumVCs]int
	// injCred is the base index of this tile's injection credits in
	// Network.soa.credits (one per VC, mirroring the router Local input
	// buffer occupancy).
	injCred int

	// shard is the tile's row-band staging area (shared with the tile's
	// router); shardIdx is the band index. Assigned by Network.assignShards.
	shard    *nocShard
	shardIdx int

	nextPktID uint64

	sent      *sim.Counter
	delivered *sim.Counter
	latency   *sim.Histogram
}

// Shard reports the NI's row-band index. The NI shares its tile's shard:
// injection touches only the tile's own router and the shard staging area.
func (ni *NetworkInterface) Shard() int { return ni.shardIdx }

// Tile reports the NI's tile ID.
func (ni *NetworkInterface) Tile() msg.TileID { return ni.tile }

// SetDeliver installs the ejection callback. The monitor installs itself
// here during tile construction.
func (ni *NetworkInterface) SetDeliver(f DeliverFunc) { ni.deliver = f }

// QueuedPackets reports the number of packets waiting to inject (all VCs).
func (ni *NetworkInterface) QueuedPackets() int { return ni.queued }

// Idle reports whether ticking the NI would be a no-op: with no queued
// packets there is nothing to inject. (Flits already handed to the router are
// the router's activity, not the NI's.)
func (ni *NetworkInterface) Idle() bool { return ni.queued == 0 }

// Send queues m for injection. The destination tile must already be resolved
// (m.DstTile); the VC is chosen from the message type. Send never blocks;
// flits trickle out at one per VC per cycle as credits allow.
func (ni *NetworkInterface) Send(m *msg.Message) error {
	if len(m.Payload) > msg.MaxPayload {
		return msg.ETooBig.Error()
	}
	dst := ni.net.dims.Coord(m.DstTile)
	if !ni.net.dims.Contains(dst) || m.DstTile == msg.NoTile {
		return msg.ENoRoute.Error()
	}
	if ni.net.express.active && !ni.net.engine.InTickPhase() {
		// A new packet ends the bypassed packet's provably-alone flight:
		// rebuild the exact per-flit state before this Send becomes
		// visible. (Tick-phase Sends are handled by Commit's invariant
		// check instead — the flight still covers the current cycle.)
		ni.net.materializeExpress(ni.net.expressCutoff())
	}
	vc := ClassVC(m.Type)
	ni.nextPktID++
	pkt := ni.shard.pool.getPacket()
	*pkt = Packet{
		ID:       ni.nextPktID | uint64(ni.tile)<<48,
		Src:      ni.coord,
		Dst:      dst,
		VC:       vc,
		Msg:      m,
		NumFlits: FlitsFor(m.WireSize()),
		Injected: ni.net.engine.Now(),
	}
	if sp := ni.net.spanner; sp != nil && sp.Sample(ni.tile, ni.nextPktID, m) {
		pkt.span = &Span{
			Src: ni.tile, Dst: m.DstTile, Type: m.Type, Seq: m.Seq, VC: vc,
			Bytes: len(m.Payload), Flits: pkt.NumFlits, Queued: pkt.Injected,
			Trace: m.Trace,
		}
	}
	ni.injQ[vc] = append(ni.injQ[vc], pkt)
	ni.queued++
	if ni.queued == 1 {
		ni.shard.queuedNIs++
	}
	// The queue itself is tile-local (Send during the tick phase can only
	// come from this tile's shell/monitor, which share the NI's shard — so
	// the queuedNIs transition above is shard-local too), but the in-flight
	// count and the sent counter are network-global: stage them when inside
	// a tick phase, mutate directly otherwise (setup code, event handlers,
	// commit-phase delivery callbacks).
	if ni.net.engine.InTickPhase() {
		ni.shard.inflight++
		ni.shard.sent++
	} else {
		ni.net.inflight++
		ni.sent.Inc()
	}
	return nil
}

// tick injects up to one flit per VC per cycle, credits permitting. The
// bandTicker only calls it with packets queued.
func (ni *NetworkInterface) tick(now sim.Cycle) {
	credits := ni.net.soa.credits
	skipVC := VCID(-1)
	if x := &ni.net.express; x.active && x.ni == ni &&
		now <= x.t0+sim.Cycle(x.F-1) {
		// The bypassed packet's remaining flits are still (virtually)
		// injecting on its VC: leave that queue untouched so a packet Sent
		// behind it cannot jump ahead. Materialization prepends the
		// remainder, preserving per-VC FIFO order.
		skipVC = x.vc
	}
	for v := VCID(0); v < NumVCs; v++ {
		if v == skipVC {
			continue
		}
		q := ni.injQ[v]
		if len(q) == 0 {
			continue
		}
		if credits[ni.injCred+int(v)] == 0 {
			continue
		}
		pkt := q[0]
		if ni.flitsLeft[v] == 0 {
			if ni.net.expressEligible(ni, now) {
				// Stage a bypass request instead of injecting: Commit
				// confirms the network is otherwise empty and either
				// activates the express flight or performs exactly this
				// head injection as the fallback.
				ni.net.express.req = ni
				ni.net.express.reqVC = v
				return
			}
			ni.flitsLeft[v] = pkt.NumFlits
		}
		idx := pkt.NumFlits - ni.flitsLeft[v]
		credits[ni.injCred+int(v)]--
		ni.net.acceptFlit(ni.rt, Local, v,
			makeFlit(pkt, idx, ni.flitsLeft[v] == 1), now)
		ni.flitsLeft[v]--
		if ni.flitsLeft[v] == 0 {
			copy(q, q[1:])
			q[len(q)-1] = nil
			ni.injQ[v] = q[:len(q)-1]
			ni.queued--
			if ni.queued == 0 {
				ni.shard.queuedNIs--
			}
		}
	}
}

// eject delivers a packet whose tail flit left through the Local port. It
// runs only in the commit phase (Network.Commit drains the staged ejections
// in tile order), so it may freely touch network-global state — the
// in-flight count, the shared latency histogram — and invoke the delivery
// callback, which may itself Send a reply.
func (ni *NetworkInterface) eject(pkt *Packet, now sim.Cycle) {
	ni.net.inflight--
	ni.delivered.Inc()
	lat := now - pkt.Injected
	ni.latency.Observe(float64(lat))
	if sp := pkt.span; sp != nil {
		// Complete the span before the delivery callback runs: a service
		// that replies synchronously then observes the request already
		// registered, which is what makes reply correlation catch it.
		pkt.span = nil
		sp.Eject = now
		if s := ni.net.spanner; s != nil {
			s.Complete(sp)
		}
	}
	if ni.deliver != nil {
		ni.deliver(pkt.Msg, lat)
	}
}
