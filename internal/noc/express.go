package noc

import "apiary/internal/sim"

// This file implements the express-channel bypass: when a packet is provably
// alone on the NoC — nothing buffered anywhere, no other packet queued or in
// flight, no open fault window, no armed corruption — its per-cycle wormhole
// simulation is skipped entirely and its delivery is scheduled at the
// analytically known arrival cycle. The bypass is behaviour-preserving, not
// approximate: every counter, link tally, telemetry view, span stamp and
// delivery cycle equals the per-flit simulation bit for bit (the
// express-differential tests prove it across serial/parallel × skip × shard
// configurations), because an uncontended dimension-ordered flight is fully
// deterministic.
//
// Timing model (t0 = virtual injection cycle of the head flit, F = flits,
// h = hops, R0..Rh the route's routers, Pj the output port of Rj):
//
//   - flit i enters Rj's input ring during cycle t0+i+j and leaves during
//     t0+i+j+1 — at most one express flit per ring at any cycle boundary;
//   - Rj grants the packet's output VC at cycle t0+j+1 (route at head
//     arrival +1, grant and first send the same cycle — exactly the
//     uncontended stage-1/stage-2 schedule);
//   - the tail leaves Rj at t0+F+j, so the packet ejects (commit phase, like
//     every ejection) at arrive = t0+F+h.
//
// Anything that could perturb the flight — a new Send, a fault injection, a
// mid-flight invariant violation — *materializes* the bypass: the virtual
// flight is converted back into exact per-flit state (ring contents, grants,
// credits, round-robin pointers, span hops, NI queue remainder) at the last
// committed cycle, and simulation resumes per-flit from there.
type expressState struct {
	active bool
	ni     *NetworkInterface
	vc     VCID
	pkt    *Packet
	t0     sim.Cycle // virtual injection cycle of the head flit
	F      int       // packet flit count
	h      int       // router-to-router hops (0 when src == dst)
	arrive sim.Cycle // t0 + F + h: commit-phase ejection cycle

	// settled is the last cycle whose analytic counter/link effects have
	// been applied; Commit advances it per executed cycle so windowed
	// telemetry sees the same per-cycle deltas a per-flit run produces, and
	// the arrival (or a materialization) settles any idle-skipped remainder.
	settled sim.Cycle

	// tiles[0..h] and ports[0..h-1] are the route; reusable buffers.
	tiles []int32
	ports []Port

	// req/reqVC stage an activation request from NI.tick (tick phase; at
	// most one NI can pass the eligibility check per cycle, see
	// expressEligible) for Commit to confirm on the main goroutine.
	req   *NetworkInterface
	reqVC VCID
}

// ringRange reports the closed range of hop indices whose input rings hold a
// virtual flit at the end of cycle c (empty when hi < lo): flit i sits in
// ring j = c-t0-i, so the occupied span is [d-F+1, d] ∩ [0, h], d = c-t0.
func (x *expressState) ringRange(c sim.Cycle) (lo, hi int) {
	d := int(c - x.t0)
	lo = d - x.F + 1
	if lo < 0 {
		lo = 0
	}
	hi = d
	if hi > x.h {
		hi = x.h
	}
	return lo, hi
}

// expressCutoff reports the cycle the virtual flight has semantically
// completed: the simulated clock's current cycle when the engine is between
// cycles or in the commit phase (commit for Now() has run — committedThrough
// says so), and Now()-1 from inside an event handler (events fire before the
// cycle's ticks). committedThrough itself can lag arbitrarily behind Now()
// across idle-skipped stretches, so it only disambiguates the phase — the
// cutoff always comes from Now().
func (n *Network) expressCutoff() sim.Cycle {
	now := n.engine.Now()
	if n.committedThrough == now {
		return now
	}
	return now - 1
}

// expressEligible is NI.tick's bypass pre-check for a fresh head-of-queue
// packet. It runs in the tick phase, so every field it reads is stable
// (written only between cycles or merged at commit):
//
//   - n.inflight == 1 and ni.queued == 1: the candidate is the only packet
//     the last commit knew about, and it is ours. A packet Sent during
//     *this* tick phase from our own shard shows up in ni.shard.inflight
//     (tick-phase Sends are tile-local, so they stage into our shard);
//     one Sent from another shard is caught by Commit's confirmation.
//   - no open fault window anywhere (faultMaxAll) and no armed corruption
//     (armedFlips): a bypassed flight must be fault-free.
//
// At most one NI per cycle can pass — any second candidate either raises
// n.inflight above 1 or trips the shard check. Those exclusive conditions
// are evaluated first so that express.req (written by the one NI that
// passes them) is never even read by another worker in the same cycle:
// staging is race-free under the parallel tick phase, not just logically
// single-winner.
func (n *Network) expressEligible(ni *NetworkInterface, now sim.Cycle) bool {
	if ni.queued != 1 || n.inflight != 1 || ni.shard.inflight != 0 {
		return false
	}
	x := &n.express
	return !n.noExpress && !x.active && x.req == nil &&
		now >= n.faultMaxAll && n.armedFlips == 0
}

// totalBusy and totalQueuedNIs sum the shard-local activity counters; valid
// on the main goroutine in the commit phase.
func (n *Network) totalBusy() int {
	b := 0
	for _, sh := range n.shards {
		b += sh.busyTiles
	}
	return b
}

func (n *Network) totalQueuedNIs() int {
	q := 0
	for _, sh := range n.shards {
		q += sh.queuedNIs
	}
	return q
}

// expressCommit is the bypass's per-cycle commit hook, called by
// Network.Commit after the credit/handoff/counter passes (so the global
// activity picture is settled) and before the ejection pass (so an express
// arrival's staged ejection delivers this cycle, exactly like a per-flit
// tail ejection staged during the tick phase).
func (n *Network) expressCommit(now sim.Cycle) {
	x := &n.express
	if x.req != nil {
		ni, v := x.req, x.reqVC
		x.req = nil
		// Confirm the network really is empty but for the candidate. The
		// eligibility pre-check ran on possibly stale tick-phase state;
		// anything that slipped in — a cross-shard Send, a flit somewhere —
		// fails the confirmation and the head injection happens here
		// instead, bit-identical to the NI.tick injection it displaced.
		if n.totalBusy() == 0 && n.totalQueuedNIs() == 1 && n.inflight == 1 {
			n.activateExpress(ni, v, now)
		} else {
			n.expressFallback(ni, v, now)
		}
	}
	if !x.active {
		return
	}
	if now < x.arrive {
		n.settleExpress(now)
		// Mid-flight invariant: still alone. A tick-phase Send this cycle
		// (new queued packet, possibly an injected flit at another tile)
		// breaks it; convert the flight back to per-flit state as of the
		// end of this cycle and let the next tick arbitrate for real.
		if n.inflight != 1 || n.totalQueuedNIs() != 0 || n.totalBusy() != 0 {
			n.materializeExpress(now)
		}
		return
	}
	// Arrival cycle (the pooled wake-up event forced the engine to execute
	// it). Settle any idle-skipped cycles, stamp the final per-flit effects
	// — round-robin pointers, span hops — and stage the ejection for the
	// pass that follows.
	n.settleExpress(x.arrive)
	n.expressFinalState()
	if sp := x.pkt.span; sp != nil {
		n.expressSpanHops(sp, x.arrive)
	}
	dr := &n.routers[x.tiles[x.h]]
	dr.shard.ejections = append(dr.shard.ejections, ejection{&n.nis[dr.tile], x.pkt})
	x.active = false
	x.pkt = nil
	x.ni = nil
}

// activateExpress converts the confirmed candidate into a virtual flight:
// dequeue it from the NI (the mirror of NI.tick's dequeue), walk the route
// once, and schedule the arrival wake-up. From here until arrival (or
// materialization) the packet exists only in expressState.
func (n *Network) activateExpress(ni *NetworkInterface, v VCID, now sim.Cycle) {
	x := &n.express
	q := ni.injQ[v]
	pkt := q[0]
	x.tiles = x.tiles[:0]
	x.ports = x.ports[:0]
	here := pkt.Src
	for here != pkt.Dst {
		p := n.route(here, pkt.Dst)
		nc := neighbour(here, p)
		if p == Local || !n.dims.Contains(nc) {
			// Same contract violation trySend panics on.
			panic("noc: route off mesh edge at " + here.String())
		}
		x.tiles = append(x.tiles, int32(n.dims.TileID(here)))
		x.ports = append(x.ports, p)
		here = nc
	}
	x.tiles = append(x.tiles, int32(n.dims.TileID(here)))
	x.h = len(x.ports)
	x.F = pkt.NumFlits
	x.t0 = now
	x.arrive = now + sim.Cycle(x.F+x.h)
	x.settled = now
	x.ni = ni
	x.vc = v
	x.pkt = pkt
	x.active = true
	copy(q, q[1:])
	q[len(q)-1] = nil
	ni.injQ[v] = q[:len(q)-1]
	ni.queued--
	if ni.queued == 0 {
		ni.shard.queuedNIs--
	}
	n.cExpressHits.Inc()
	n.engine.ScheduleNoHandle(x.arrive, n.expressWakeFn)
}

// expressFallback performs the head injection the staging NI skipped, in the
// commit phase but with exactly the state transitions NI.tick would have
// made — so a failed confirmation is indistinguishable from never staging.
func (n *Network) expressFallback(ni *NetworkInterface, v VCID, now sim.Cycle) {
	q := ni.injQ[v]
	pkt := q[0]
	n.soa.credits[ni.injCred+int(v)]--
	n.acceptFlit(ni.rt, Local, v, makeFlit(pkt, 0, pkt.NumFlits == 1), now)
	if pkt.NumFlits == 1 {
		copy(q, q[1:])
		q[len(q)-1] = nil
		ni.injQ[v] = q[:len(q)-1]
		ni.queued--
		if ni.queued == 0 {
			ni.shard.queuedNIs--
		}
	} else {
		ni.flitsLeft[v] = pkt.NumFlits - 1
	}
}

// settleExpress applies the analytic counter and link-tally effects of
// cycles (settled, c]. During cycle t0+d (d ≥ 1) the moving flits are those
// with 1 ≤ d-i ≤ h+1: flit i leaves ring j = d-1-i through Pj (or the local
// ejection port at Rh), each crediting flits_routed and the link counter the
// per-flit send would have; the cycle the tail moves out of Rj credits
// pkts_routed, just like trySend's tail path.
func (n *Network) settleExpress(c sim.Cycle) {
	x := &n.express
	s := &n.soa
	var flits, pkts uint64
	for cyc := x.settled + 1; cyc <= c; cyc++ {
		d := int(cyc - x.t0)
		lo := d - x.h - 1
		if lo < 0 {
			lo = 0
		}
		hi := d - 1
		if hi > x.F-1 {
			hi = x.F - 1
		}
		if hi < lo {
			continue
		}
		for i := lo; i <= hi; i++ {
			j := d - 1 - i
			if j == x.h {
				s.linkFlits[int(x.tiles[j])*int(numPorts)+int(Local)]++
			} else {
				s.linkFlits[int(x.tiles[j])*int(numPorts)+int(x.ports[j])]++
			}
		}
		flits += uint64(hi - lo + 1)
		if x.F-1 >= lo && x.F-1 <= hi {
			pkts++
		}
	}
	if flits != 0 {
		n.cFlitsRouted.Add(flits)
	}
	if pkts != 0 {
		n.cPktsRouted.Add(pkts)
	}
	x.settled = c
}

// expressFinalState stamps the residual per-router state a completed flight
// leaves behind: each router on the path forwarded the whole packet through
// one (input port, VC) pair, so its output port's round-robin pointer ends
// one past that candidate (data VCs only — VC0 sends don't move it).
func (n *Network) expressFinalState() {
	x := &n.express
	if x.vc == VCMgmt {
		return
	}
	const nk = int(numPorts) * (NumVCs - 1)
	for j := 0; j <= x.h; j++ {
		in, out := x.hopPorts(j)
		k := int(in)*(NumVCs-1) + int(x.vc)
		if k == nk {
			k = 0
		}
		n.soa.rrPtr[int(x.tiles[j])*int(numPorts)+int(out)] = uint8(k)
	}
}

// hopPorts reports router j's input and output port on the route.
func (x *expressState) hopPorts(j int) (in, out Port) {
	in, out = Local, Local
	if j > 0 {
		in = oppPort[x.ports[j-1]]
	}
	if j < x.h {
		out = x.ports[j]
	}
	return in, out
}

// expressSpanHops rebuilds the sampled packet's hop records exactly as the
// per-flit stamps would have: head arrival at Rj at t0+j, grant and
// switch-traversal at t0+j+1. Hops whose head has not departed by cycle c
// (materialization) keep zero Grant/Depart/Out, matching an un-granted hop.
func (n *Network) expressSpanHops(sp *Span, c sim.Cycle) {
	x := &n.express
	d := int(c - x.t0)
	for j := 0; j <= x.h && j <= d; j++ {
		in, out := x.hopPorts(j)
		hop := SpanHop{
			At:     n.routers[x.tiles[j]].Coord,
			In:     in,
			Arrive: x.t0 + sim.Cycle(j),
		}
		if j <= d-1 {
			hop.Grant = x.t0 + sim.Cycle(j) + 1
			hop.Depart = hop.Grant
			hop.Out = out
		}
		sp.Hops = append(sp.Hops, hop)
	}
}

// materializeExpress converts the virtual flight back into exact per-flit
// simulation state as of the end of cycle c (the last committed cycle), then
// deactivates the bypass. Triggers: a Send arriving outside the tick phase
// (event handlers, delivery callbacks), a fault-injection hook, or Commit's
// mid-flight invariant check after a tick-phase Send. Reconstruction places
// at most one flit per input ring — the timing model guarantees no two
// express flits share a ring at a cycle boundary — and restores grants,
// credits, round-robin pointers, span hops and the NI's un-injected
// remainder, so the next tick arbitrates exactly the state a per-flit run
// would hold.
func (n *Network) materializeExpress(c sim.Cycle) {
	x := &n.express
	s := &n.soa
	n.settleExpress(c)
	d := int(c - x.t0)
	injected := x.F
	if d+1 < injected {
		injected = d + 1
	}
	for i := 0; i < injected; i++ {
		j := d - i
		if j > x.h {
			continue // already ejected
		}
		tile := int(x.tiles[j])
		r := &n.routers[tile]
		in, out := x.hopPorts(j)
		pv := int(in)*NumVCs + int(x.vc)
		ivx := tile*pvCount + pv
		f := makeFlit(x.pkt, i, i == x.F-1)
		f.setArrived(c)
		s.fifo[ivx*BufDepth] = f
		s.fifoHead[ivx] = 0
		s.fifoLen[ivx] = 1
		s.headAge[ivx] = c
		occ := s.occ[tile]
		if occ == 0 {
			r.shard.busyTiles++
		}
		s.occ[tile] = occ | 1<<uint(pv)
		if i >= 1 {
			// The head has departed this router: its route and grant
			// persist until the tail follows.
			s.inState[ivx] = uint8(out) | inRouted | inGranted
			s.owner[tile*pvCount+int(out)*NumVCs+int(x.vc)] = int8(in)
			s.granted[tile] |= 1 << uint(pv)
			s.sendable[tile] |= 1 << uint(int(out)*NumVCs+int(x.vc))
		}
		// The buffered flit holds one downstream slot of the link that
		// delivered it (the injection credit for the source ring).
		if j == 0 {
			s.credits[x.ni.injCred+int(x.vc)]--
		} else {
			up := int(x.tiles[j-1])*pvCount + int(x.ports[j-1])*NumVCs + int(x.vc)
			s.credits[up]--
		}
	}
	// Round-robin pointers moved on every router whose head has departed.
	if x.vc != VCMgmt {
		const nk = int(numPorts) * (NumVCs - 1)
		for j := 0; j <= x.h && j <= d-1; j++ {
			in, out := x.hopPorts(j)
			k := int(in)*(NumVCs-1) + int(x.vc)
			if k == nk {
				k = 0
			}
			s.rrPtr[int(x.tiles[j])*int(numPorts)+int(out)] = uint8(k)
		}
	}
	if sp := x.pkt.span; sp != nil {
		n.expressSpanHops(sp, c)
	}
	if injected < x.F {
		// Un-injected remainder: put the packet back at the front of its
		// VC queue (a Send racing the materialization has already appended
		// behind it, preserving FIFO order) with the per-flit cursor.
		ni := x.ni
		q := append(ni.injQ[x.vc], nil)
		copy(q[1:], q)
		q[0] = x.pkt
		ni.injQ[x.vc] = q
		ni.flitsLeft[x.vc] = x.F - injected
		ni.queued++
		if ni.queued == 1 {
			ni.shard.queuedNIs++
		}
	}
	n.cExpressMat.Inc()
	x.active = false
	x.pkt = nil
	x.ni = nil
}
