package noc

import (
	"bytes"
	"testing"

	"apiary/internal/msg"
	"apiary/internal/sim"
)

func build(t *testing.T, w, h int) (*sim.Engine, *Network) {
	t.Helper()
	e := sim.NewEngine(1)
	st := sim.NewStats()
	n := NewNetwork(e, st, Config{Dims: Dims{w, h}})
	return e, n
}

func req(src, dst msg.TileID, payload []byte) *msg.Message {
	return &msg.Message{Type: msg.TRequest, SrcTile: src, DstTile: dst, Payload: payload}
}

func TestTopologyMapping(t *testing.T) {
	d := Dims{4, 3}
	if d.Tiles() != 12 {
		t.Fatalf("Tiles = %d", d.Tiles())
	}
	for y := 0; y < d.H; y++ {
		for x := 0; x < d.W; x++ {
			c := Coord{x, y}
			if got := d.Coord(d.TileID(c)); got != c {
				t.Fatalf("round trip %v -> %v", c, got)
			}
		}
	}
	if d.Contains(Coord{4, 0}) || d.Contains(Coord{-1, 0}) || d.Contains(Coord{0, 3}) {
		t.Fatal("Contains accepted off-mesh coordinate")
	}
}

func TestHops(t *testing.T) {
	if h := Hops(Coord{0, 0}, Coord{3, 2}); h != 5 {
		t.Fatalf("Hops = %d, want 5", h)
	}
	if h := Hops(Coord{2, 2}, Coord{2, 2}); h != 0 {
		t.Fatalf("Hops same = %d", h)
	}
}

func TestRouteXYProperties(t *testing.T) {
	d := Dims{5, 5}
	for a := 0; a < d.Tiles(); a++ {
		for b := 0; b < d.Tiles(); b++ {
			here, dst := d.Coord(msg.TileID(a)), d.Coord(msg.TileID(b))
			p := RouteXY(here, dst)
			if (p == Local) != (here == dst) {
				t.Fatalf("RouteXY(%v,%v) = %v", here, dst, p)
			}
			if p != Local {
				next := neighbour(here, p)
				if !d.Contains(next) {
					t.Fatalf("RouteXY routed off mesh: %v->%v via %v", here, dst, p)
				}
				if Hops(next, dst) != Hops(here, dst)-1 {
					t.Fatalf("RouteXY not minimal: %v->%v via %v", here, dst, p)
				}
			}
		}
	}
}

func TestRouteYXProperties(t *testing.T) {
	d := Dims{4, 4}
	for a := 0; a < d.Tiles(); a++ {
		for b := 0; b < d.Tiles(); b++ {
			here, dst := d.Coord(msg.TileID(a)), d.Coord(msg.TileID(b))
			p := RouteYX(here, dst)
			if (p == Local) != (here == dst) {
				t.Fatalf("RouteYX(%v,%v) = %v", here, dst, p)
			}
			if p != Local && Hops(neighbour(here, p), dst) != Hops(here, dst)-1 {
				t.Fatalf("RouteYX not minimal")
			}
		}
	}
}

func TestFlitsFor(t *testing.T) {
	cases := []struct{ bytes, want int }{
		{0, 1}, {1, 1}, {16, 1}, {17, 2}, {32, 2}, {33, 3},
	}
	for _, c := range cases {
		if got := FlitsFor(c.bytes); got != c.want {
			t.Fatalf("FlitsFor(%d) = %d, want %d", c.bytes, got, c.want)
		}
	}
}

func TestClassVC(t *testing.T) {
	if ClassVC(msg.TCtlDrain) != VCMgmt {
		t.Fatal("control should ride VC0")
	}
	if ClassVC(msg.TRequest) != VCReq || ClassVC(msg.TMemRead) != VCReq {
		t.Fatal("requests should ride VC1")
	}
	if ClassVC(msg.TReply) != VCReply || ClassVC(msg.TError) != VCReply {
		t.Fatal("replies should ride VC2")
	}
}

func TestSingleMessageDelivery(t *testing.T) {
	e, n := build(t, 4, 4)
	var got *msg.Message
	n.NI(15).SetDeliver(func(m *msg.Message, _ sim.Cycle) { got = m })
	payload := []byte("the quick brown fox")
	if err := n.NI(0).Send(req(0, 15, payload)); err != nil {
		t.Fatal(err)
	}
	if !e.RunUntil(func() bool { return got != nil }, 1000) {
		t.Fatal("message not delivered")
	}
	if !bytes.Equal(got.Payload, payload) {
		t.Fatalf("payload corrupted: %q", got.Payload)
	}
	if v := n.CreditInvariantViolation(); v != "" {
		t.Fatalf("credit invariant: %s", v)
	}
}

func TestLoopbackDelivery(t *testing.T) {
	e, n := build(t, 2, 2)
	var got *msg.Message
	n.NI(1).SetDeliver(func(m *msg.Message, _ sim.Cycle) { got = m })
	if err := n.NI(1).Send(req(1, 1, []byte("self"))); err != nil {
		t.Fatal(err)
	}
	if !e.RunUntil(func() bool { return got != nil }, 100) {
		t.Fatal("loopback not delivered")
	}
}

func TestSendErrors(t *testing.T) {
	_, n := build(t, 2, 2)
	if err := n.NI(0).Send(req(0, msg.NoTile, nil)); err == nil {
		t.Fatal("Send to NoTile should fail")
	}
	if err := n.NI(0).Send(req(0, 100, nil)); err == nil {
		t.Fatal("Send off mesh should fail")
	}
	m := req(0, 1, make([]byte, msg.MaxPayload+1))
	if err := n.NI(0).Send(m); err == nil {
		t.Fatal("oversized Send should fail")
	}
}

func TestLatencyScalesWithHops(t *testing.T) {
	e, n := build(t, 8, 1)
	var lat1, lat7 sim.Cycle
	n.NI(1).SetDeliver(func(_ *msg.Message, l sim.Cycle) { lat1 = l })
	n.NI(7).SetDeliver(func(_ *msg.Message, l sim.Cycle) { lat7 = l })
	_ = n.NI(0).Send(req(0, 1, []byte{1}))
	e.Run(200)
	_ = n.NI(0).Send(req(0, 7, []byte{1}))
	e.Run(200)
	if lat1 == 0 || lat7 == 0 {
		t.Fatal("messages not delivered")
	}
	if lat7 <= lat1 {
		t.Fatalf("7-hop latency (%d) not greater than 1-hop (%d)", lat7, lat1)
	}
	// Each extra hop should cost a constant number of cycles.
	perHop := float64(lat7-lat1) / 6
	if perHop < 1 || perHop > 4 {
		t.Fatalf("per-hop latency = %.2f cycles, want 1-4", perHop)
	}
}

func TestLargeMessageSerialization(t *testing.T) {
	e, n := build(t, 2, 1)
	var latSmall, latBig sim.Cycle
	done := 0
	n.NI(1).SetDeliver(func(m *msg.Message, l sim.Cycle) {
		if len(m.Payload) < 100 {
			latSmall = l
		} else {
			latBig = l
		}
		done++
	})
	_ = n.NI(0).Send(req(0, 1, []byte{1}))
	e.Run(300)
	_ = n.NI(0).Send(req(0, 1, make([]byte, 1024)))
	e.Run(1000)
	if done != 2 {
		t.Fatalf("delivered %d messages", done)
	}
	flits := FlitsFor(msg.HeaderBytes + 1024)
	if latBig < latSmall+sim.Cycle(flits)/2 {
		t.Fatalf("big message latency %d too close to small %d (flits=%d)",
			latBig, latSmall, flits)
	}
}

func TestManyToOneAllDelivered(t *testing.T) {
	e, n := build(t, 4, 4)
	got := 0
	n.NI(5).SetDeliver(func(_ *msg.Message, _ sim.Cycle) { got++ })
	sentCount := 0
	for i := 0; i < 16; i++ {
		if i == 5 {
			continue
		}
		for k := 0; k < 4; k++ {
			if err := n.NI(msg.TileID(i)).Send(req(msg.TileID(i), 5, make([]byte, 64))); err != nil {
				t.Fatal(err)
			}
			sentCount++
		}
	}
	if !e.RunUntil(func() bool { return got == sentCount }, 100000) {
		t.Fatalf("delivered %d/%d under incast", got, sentCount)
	}
	if v := n.CreditInvariantViolation(); v != "" {
		t.Fatalf("credit invariant after incast: %s", v)
	}
}

// TestRandomTrafficNoDeadlockNoLoss is the NoC's core property test: uniform
// random traffic with mixed sizes and types must all deliver, in bounded
// time, with credits restored — i.e. no deadlock, no loss, no credit leak.
func TestRandomTrafficNoDeadlockNoLoss(t *testing.T) {
	e, n := build(t, 5, 5)
	rng := sim.NewRNG(99)
	delivered := 0
	totalBytes := 0
	for i := 0; i < 25; i++ {
		n.NI(msg.TileID(i)).SetDeliver(func(m *msg.Message, _ sim.Cycle) {
			delivered++
			totalBytes += len(m.Payload)
		})
	}
	const N = 500
	sentBytes := 0
	types := []msg.Type{msg.TRequest, msg.TReply, msg.TCtlPing, msg.TMemRead, msg.TError}
	for k := 0; k < N; k++ {
		src := msg.TileID(rng.Intn(25))
		dst := msg.TileID(rng.Intn(25))
		size := rng.Intn(512)
		m := &msg.Message{
			Type:    types[rng.Intn(len(types))],
			SrcTile: src, DstTile: dst,
			Payload: make([]byte, size),
		}
		if err := n.NI(src).Send(m); err != nil {
			t.Fatal(err)
		}
		sentBytes += size
		// Interleave sending with simulation to create real contention.
		if k%10 == 0 {
			e.Run(5)
		}
	}
	if !e.RunUntil(func() bool { return delivered == N }, 500000) {
		t.Fatalf("deadlock or loss: delivered %d/%d", delivered, N)
	}
	if totalBytes != sentBytes {
		t.Fatalf("byte accounting: got %d want %d", totalBytes, sentBytes)
	}
	if v := n.CreditInvariantViolation(); v != "" {
		t.Fatalf("credit invariant: %s", v)
	}
}

func TestPerVCOrderingPreserved(t *testing.T) {
	// Messages of the same class between the same pair must arrive in order.
	e, n := build(t, 3, 3)
	var seqs []uint32
	n.NI(8).SetDeliver(func(m *msg.Message, _ sim.Cycle) { seqs = append(seqs, m.Seq) })
	for i := uint32(0); i < 50; i++ {
		m := req(0, 8, make([]byte, 40))
		m.Seq = i
		if err := n.NI(0).Send(m); err != nil {
			t.Fatal(err)
		}
	}
	if !e.RunUntil(func() bool { return len(seqs) == 50 }, 50000) {
		t.Fatalf("delivered %d/50", len(seqs))
	}
	for i, s := range seqs {
		if s != uint32(i) {
			t.Fatalf("out of order delivery: %v", seqs)
		}
	}
}

func TestMgmtPriorityUnderFlood(t *testing.T) {
	// A data-plane flood from tile 0 to tile 2 must not prevent a
	// management message crossing the same links promptly.
	e, n := build(t, 3, 1)
	floodDelivered := 0
	var ctlLat sim.Cycle
	n.NI(2).SetDeliver(func(m *msg.Message, l sim.Cycle) {
		if m.Type == msg.TCtlDrain {
			ctlLat = l
		} else {
			floodDelivered++
		}
	})
	for i := 0; i < 200; i++ {
		_ = n.NI(0).Send(req(0, 2, make([]byte, 1024)))
	}
	e.Run(100) // let the flood congest the path
	ctl := &msg.Message{Type: msg.TCtlDrain, SrcTile: 0, DstTile: 2}
	_ = n.NI(0).Send(ctl)
	e.Run(2000)
	if ctlLat == 0 {
		t.Fatal("management message not delivered under flood")
	}
	if ctlLat > 50 {
		t.Fatalf("management latency under flood = %d cycles, want < 50", ctlLat)
	}
	_ = floodDelivered
}

func TestYXRoutingDelivers(t *testing.T) {
	e := sim.NewEngine(1)
	st := sim.NewStats()
	n := NewNetwork(e, st, Config{Dims: Dims{4, 4}, Route: RouteYX})
	got := 0
	for i := 0; i < 16; i++ {
		n.NI(msg.TileID(i)).SetDeliver(func(_ *msg.Message, _ sim.Cycle) { got++ })
	}
	rng := sim.NewRNG(3)
	for k := 0; k < 100; k++ {
		src := msg.TileID(rng.Intn(16))
		dst := msg.TileID(rng.Intn(16))
		_ = n.NI(src).Send(req(src, dst, make([]byte, 64)))
	}
	if !e.RunUntil(func() bool { return got == 100 }, 100000) {
		t.Fatalf("YX routing delivered %d/100", got)
	}
}

func TestRouteWestFirstProperties(t *testing.T) {
	d := Dims{6, 6}
	for a := 0; a < d.Tiles(); a++ {
		for b := 0; b < d.Tiles(); b++ {
			here, dst := d.Coord(msg.TileID(a)), d.Coord(msg.TileID(b))
			p := RouteWestFirst(here, dst)
			if (p == Local) != (here == dst) {
				t.Fatalf("RouteWestFirst(%v,%v) = %v", here, dst, p)
			}
			if p == Local {
				continue
			}
			next := neighbour(here, p)
			if !d.Contains(next) {
				t.Fatalf("routed off mesh: %v->%v via %v", here, dst, p)
			}
			if Hops(next, dst) != Hops(here, dst)-1 {
				t.Fatalf("not minimal: %v->%v via %v", here, dst, p)
			}
			// The turn-model invariant: if the destination lies west, the
			// route goes west immediately.
			if dst.X < here.X && p != West {
				t.Fatalf("west-first violated at %v->%v: %v", here, dst, p)
			}
		}
	}
}

func TestWestFirstDeliversUnderRandomTraffic(t *testing.T) {
	e := sim.NewEngine(21)
	st := sim.NewStats()
	n := NewNetwork(e, st, Config{Dims: Dims{5, 5}, Route: RouteWestFirst})
	rng := sim.NewRNG(8)
	got := 0
	for i := 0; i < 25; i++ {
		n.NI(msg.TileID(i)).SetDeliver(func(_ *msg.Message, _ sim.Cycle) { got++ })
	}
	const N = 400
	for k := 0; k < N; k++ {
		src := msg.TileID(rng.Intn(25))
		dst := msg.TileID(rng.Intn(25))
		_ = n.NI(src).Send(req(src, dst, make([]byte, rng.Intn(256))))
		if k%20 == 0 {
			e.Run(3)
		}
	}
	if !e.RunUntil(func() bool { return got == N }, 500000) {
		t.Fatalf("west-first deadlock or loss: %d/%d", got, N)
	}
	if v := n.CreditInvariantViolation(); v != "" {
		t.Fatalf("credit invariant: %s", v)
	}
}

func TestQuiescent(t *testing.T) {
	e, n := build(t, 2, 2)
	if !n.Quiescent() {
		t.Fatal("fresh network should be quiescent")
	}
	_ = n.NI(0).Send(req(0, 3, []byte{1}))
	if n.Quiescent() {
		t.Fatal("network with queued packet reported quiescent")
	}
	done := false
	n.NI(3).SetDeliver(func(_ *msg.Message, _ sim.Cycle) { done = true })
	e.RunUntil(func() bool { return done }, 1000)
	if !n.Quiescent() {
		t.Fatal("network should be quiescent after delivery")
	}
}

func TestLinkUtilization(t *testing.T) {
	e, n := build(t, 3, 1)
	done := 0
	n.NI(2).SetDeliver(func(*msg.Message, sim.Cycle) { done++ })
	for i := 0; i < 10; i++ {
		_ = n.NI(0).Send(req(0, 2, make([]byte, 64)))
	}
	if !e.RunUntil(func() bool { return done == 10 }, 100000) {
		t.Fatal("not delivered")
	}
	loads := n.LinkUtilization()
	if len(loads) == 0 {
		t.Fatal("no link loads recorded")
	}
	// Every flit crosses (0,0)->east and (1,0)->east: equal, maximal loads.
	hot := n.HottestLink()
	if hot.Out != East || hot.Flits == 0 {
		t.Fatalf("hottest link = %+v", hot)
	}
	flitsPerMsg := uint64(FlitsFor(msg.HeaderBytes + 64))
	if hot.Flits != 10*flitsPerMsg {
		t.Fatalf("hottest flits = %d, want %d", hot.Flits, 10*flitsPerMsg)
	}
	// Idle network: zero value.
	_, n2 := build(t, 2, 2)
	if n2.HottestLink() != (LinkLoad{}) {
		t.Fatal("idle network has a hottest link")
	}
}

func TestPortStringAndOpposite(t *testing.T) {
	for p := Local; p < numPorts; p++ {
		if p.String() == "" {
			t.Fatal("empty port name")
		}
	}
	for _, p := range []Port{North, South, East, West} {
		if p.opposite().opposite() != p {
			t.Fatalf("opposite not involutive for %v", p)
		}
	}
}

func TestBadDimsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewNetwork with 0 dims did not panic")
		}
	}()
	NewNetwork(sim.NewEngine(1), sim.NewStats(), Config{Dims: Dims{0, 1}})
}
