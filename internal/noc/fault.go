package noc

import (
	"apiary/internal/msg"
	"apiary/internal/sim"
)

// NumPorts is the router port count (Local + the four mesh directions),
// exported for fault-plan validation.
const NumPorts = numPorts

// This file is the NoC's fault-injection surface (internal/fault drives it).
// All three hooks write router-private fields and must be called between
// cycles on the main goroutine (engine events); the fields are read — and
// the one-shot flip arm cleared — only by the owning router's own tick, so
// injected behaviour is identical under serial and sharded ticking.

// StallLink suppresses all flit forwarding through tile t's output port p
// until the given cycle. Credits are not consumed while stalled, so a
// bounded stall drains cleanly and Quiescent still terminates.
func (n *Network) StallLink(t msg.TileID, p Port, until sim.Cycle) {
	n.checkInjectPhase()
	n.faultOpens(until)
	r := &n.routers[int(t)]
	if until > r.stallUntil[p] {
		r.stallUntil[p] = until
	}
	if until > r.faultMax {
		r.faultMax = until
	}
	n.flushCreditStreaks(r)
}

// StickVC suppresses forwarding on one output virtual channel of tile t's
// port p until the given cycle — a stuck VC allocator. Other VCs of the same
// link keep moving.
func (n *Network) StickVC(t msg.TileID, p Port, v VCID, until sim.Cycle) {
	n.checkInjectPhase()
	n.faultOpens(until)
	r := &n.routers[int(t)]
	if until > r.stuckUntil[p][v] {
		r.stuckUntil[p][v] = until
	}
	if until > r.faultMax {
		r.faultMax = until
	}
	n.flushCreditStreaks(r)
}

// flushCreditStreaks settles router r's parked credit streaks when a fault
// window opens: streak cycles through the previous cycle are counted (the
// hooks run in the event phase, before this cycle's tick) and the candidates
// return to per-cycle attempts, where fault-suppressed cycles count
// stall_fault exactly as they always did. trySend refuses to park while
// now < faultMax, so streaks and fault windows never overlap.
func (n *Network) flushCreditStreaks(r *Router) {
	s := &n.soa
	base := int(r.tile) * pvCount
	upto := n.engine.Now() - 1
	for pv := 0; pv < pvCount; pv++ {
		if cs := s.credBlockStart[base+pv]; cs != noStreak {
			if upto > cs {
				n.cStallNoCred.Add(uint64(upto - cs))
			}
			s.credBlockStart[base+pv] = noStreak
			s.sendable[r.tile] |= 1 << uint(pv)
		}
	}
}

// CorruptNext arms a one-shot corruption of the next message whose head flit
// leaves tile t through port p: one payload byte is flipped (or the sequence
// number when the payload is empty), modelling an on-the-wire bit error that
// slips past the link CRC.
func (n *Network) CorruptNext(t msg.TileID, p Port) {
	n.checkInjectPhase()
	n.faultOpens(0)
	r := &n.routers[int(t)]
	if !r.flipArm[p] {
		// armedFlips counts distinct armed (router, port) one-shots so the
		// express bypass knows when any corruption is pending; re-arming an
		// already-armed port is idempotent there too. The counter is
		// decremented at commit when maybeFlip fires (staged per shard).
		n.armedFlips++
	}
	r.flipArm[p] = true
	r.flipAny = true
}

// faultOpens is the express bypass's fault hook: a flight in progress must
// not see the new fault (it was admitted on a fault-free network), so it is
// materialized back to per-flit state first; faultMaxAll then keeps new
// flights from starting while any stall/stick window is open.
func (n *Network) faultOpens(until sim.Cycle) {
	if n.express.active {
		n.materializeExpress(n.expressCutoff())
	}
	if until > n.faultMaxAll {
		n.faultMaxAll = until
	}
}

func (n *Network) checkInjectPhase() {
	if n.engine.InTickPhase() {
		panic("noc: fault injection during tick phase (drive it from engine events)")
	}
}

// corrupt flips one bit of the packet's message. The message object is owned
// by the in-flight packet until ejection, so mutating it here (from the
// owning router's tick) is race-free.
func corrupt(m *msg.Message) {
	if len(m.Payload) > 0 {
		m.Payload[0] ^= 0x80
		return
	}
	m.Seq ^= 1
}
