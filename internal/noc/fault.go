package noc

import (
	"apiary/internal/msg"
	"apiary/internal/sim"
)

// NumPorts is the router port count (Local + the four mesh directions),
// exported for fault-plan validation.
const NumPorts = numPorts

// This file is the NoC's fault-injection surface (internal/fault drives it).
// All three hooks write router-private fields and must be called between
// cycles on the main goroutine (engine events); the fields are read — and
// the one-shot flip arm cleared — only by the owning router's own tick, so
// injected behaviour is identical under serial and sharded ticking.

// StallLink suppresses all flit forwarding through tile t's output port p
// until the given cycle. Credits are not consumed while stalled, so a
// bounded stall drains cleanly and Quiescent still terminates.
func (n *Network) StallLink(t msg.TileID, p Port, until sim.Cycle) {
	n.checkInjectPhase()
	r := n.routers[int(t)]
	if until > r.stallUntil[p] {
		r.stallUntil[p] = until
	}
}

// StickVC suppresses forwarding on one output virtual channel of tile t's
// port p until the given cycle — a stuck VC allocator. Other VCs of the same
// link keep moving.
func (n *Network) StickVC(t msg.TileID, p Port, v VCID, until sim.Cycle) {
	n.checkInjectPhase()
	r := n.routers[int(t)]
	if until > r.stuckUntil[p][v] {
		r.stuckUntil[p][v] = until
	}
}

// CorruptNext arms a one-shot corruption of the next message whose head flit
// leaves tile t through port p: one payload byte is flipped (or the sequence
// number when the payload is empty), modelling an on-the-wire bit error that
// slips past the link CRC.
func (n *Network) CorruptNext(t msg.TileID, p Port) {
	n.checkInjectPhase()
	n.routers[int(t)].flipArm[p] = true
}

func (n *Network) checkInjectPhase() {
	if n.engine.InTickPhase() {
		panic("noc: fault injection during tick phase (drive it from engine events)")
	}
}

// corrupt flips one bit of the packet's message. The message object is owned
// by the in-flight packet until ejection, so mutating it here (from the
// owning router's tick) is race-free.
func corrupt(m *msg.Message) {
	if len(m.Payload) > 0 {
		m.Payload[0] ^= 0x80
		return
	}
	m.Seq ^= 1
}
