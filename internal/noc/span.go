package noc

import (
	"apiary/internal/msg"
	"apiary/internal/sim"
)

// This file defines the flight-recorder hooks of the NoC: a sampled packet
// carries a Span that every router along the way annotates with per-stage
// timing (VC-allocation wait, switch wait, link traversal). Spans are pure
// observation — they never influence routing, arbitration or flow control —
// so a run with sampling enabled is bit-identical to one without it.
//
// Determinism under the sharded tick phase follows from ownership: a span
// hangs off its packet, and at any instant exactly one router (or NI) holds
// the packet's head flit, so only that tile's shard worker ever touches the
// span during a tick phase. Cross-shard handoffs and ejections happen in the
// commit phase on the main goroutine, in global tile order — which is also
// where completed spans reach the SpanSampler, so the recorder observes them
// in the same order whichever mode ran the tick phase.

// SpanHop records one router traversal of a sampled packet's head flit.
// The stage boundaries mirror the router pipeline: the flit is buffered at
// Arrive, wins an output virtual channel at Grant (Grant-Arrive is the VC
// allocation wait, including the mandatory one-cycle buffering), and crosses
// the switch at Depart (Depart-Grant is the switch allocation wait). Link
// traversal is pipelined into the next hop's Arrive.
type SpanHop struct {
	At     Coord
	In     Port
	Out    Port
	Arrive sim.Cycle
	Grant  sim.Cycle
	Depart sim.Cycle
}

// Span is the lifecycle record of one sampled packet: queued at the source
// NI, per-hop router timing, ejected at the destination. Hops[0].Arrive is
// the injection cycle (head flit entered the source router); the gap from
// Queued to it is the NI queue wait.
type Span struct {
	Src, Dst msg.TileID
	Type     msg.Type
	Seq      uint32
	VC       VCID
	Bytes    int
	Flits    int
	Queued   sim.Cycle
	Eject    sim.Cycle
	Hops     []SpanHop
	// Trace is the distributed-trace context the message carried when it was
	// injected (zero for untraced messages). Pure sideband: it never affects
	// routing, arbitration or timing.
	Trace msg.TraceCtx
}

// Latency reports the end-to-end cycles from Send to delivery.
func (s *Span) Latency() sim.Cycle { return s.Eject - s.Queued }

// InjectWait reports the cycles the packet waited in the source NI before
// its head flit entered the router (0 for a span that never injected).
func (s *Span) InjectWait() sim.Cycle {
	if len(s.Hops) == 0 {
		return 0
	}
	return s.Hops[0].Arrive - s.Queued
}

// SpanSampler is the flight recorder's hook into the NoC. Sample is
// consulted once per Send (possibly from a shard worker inside the tick
// phase) and must be a read-only, deterministic function of its arguments
// and of state that only changes in the commit phase. Complete receives each
// finished span during the commit phase, on the main goroutine, in global
// tile order of the ejecting NI — it may mutate freely.
type SpanSampler interface {
	Sample(src msg.TileID, pktID uint64, m *msg.Message) bool
	Complete(sp *Span)
}

// SetSpanSampler installs (or, with nil, removes) the flight recorder.
// Install before the first cycle; swapping samplers mid-run would make
// Sample's answer depend on wall-clock installation time.
func (n *Network) SetSpanSampler(s SpanSampler) { n.spanner = s }
