// Package noc implements Apiary's physical interconnect: a cycle-driven 2D
// mesh Network-on-Chip with wormhole switching, virtual channels and
// credit-based flow control (paper §4.3, §4.5).
//
// Design points that mirror the paper:
//
//   - One router per tile; the tile's monitor attaches to the router's local
//     port through a NetworkInterface.
//   - Dimension-order (XY) routing on fixed virtual-channel indices, which
//     is deadlock-free on a mesh.
//   - Three virtual channels separate traffic classes: VC0 carries the
//     kernel management plane (strict priority, so a flooded data plane can
//     never block a drain command), VC1 carries requests and VC2 carries
//     replies (avoiding message-dependent request/reply deadlock, a concern
//     the paper cites).
package noc

import (
	"fmt"

	"apiary/internal/msg"
)

// Coord is a router coordinate on the mesh.
type Coord struct{ X, Y int }

func (c Coord) String() string { return fmt.Sprintf("(%d,%d)", c.X, c.Y) }

// Dims describes the mesh dimensions.
type Dims struct{ W, H int }

// Tiles reports the number of tiles in the mesh.
func (d Dims) Tiles() int { return d.W * d.H }

// TileID flattens a coordinate row-major.
func (d Dims) TileID(c Coord) msg.TileID {
	return msg.TileID(c.Y*d.W + c.X)
}

// Coord recovers the coordinate of a tile ID.
func (d Dims) Coord(id msg.TileID) Coord {
	return Coord{X: int(id) % d.W, Y: int(id) / d.W}
}

// Contains reports whether c is on the mesh.
func (d Dims) Contains(c Coord) bool {
	return c.X >= 0 && c.X < d.W && c.Y >= 0 && c.Y < d.H
}

// Hops reports the minimal hop count between two coordinates (Manhattan
// distance), i.e. the number of router-to-router links traversed.
func Hops(a, b Coord) int {
	dx := a.X - b.X
	if dx < 0 {
		dx = -dx
	}
	dy := a.Y - b.Y
	if dy < 0 {
		dy = -dy
	}
	return dx + dy
}

// Port identifies one of a router's five ports.
type Port int

// Router ports. Local connects to the tile's network interface.
const (
	Local Port = iota
	North      // -Y
	South      // +Y
	East       // +X
	West       // -X
	numPorts
)

func (p Port) String() string {
	switch p {
	case Local:
		return "local"
	case North:
		return "north"
	case South:
		return "south"
	case East:
		return "east"
	case West:
		return "west"
	}
	return fmt.Sprintf("port(%d)", int(p))
}

// opposite returns the port on the neighbouring router that faces p.
func (p Port) opposite() Port {
	switch p {
	case North:
		return South
	case South:
		return North
	case East:
		return West
	case West:
		return East
	}
	return Local
}

// neighbour returns the coordinate reached by leaving c through p.
func neighbour(c Coord, p Port) Coord {
	switch p {
	case North:
		return Coord{c.X, c.Y - 1}
	case South:
		return Coord{c.X, c.Y + 1}
	case East:
		return Coord{c.X + 1, c.Y}
	case West:
		return Coord{c.X - 1, c.Y}
	}
	return c
}

// RouteFunc decides the output port for a packet at router `here` destined
// for `dst`. It must return Local iff here == dst.
type RouteFunc func(here, dst Coord) Port

// RouteXY is dimension-order routing: correct X first, then Y. It is
// deadlock-free on a mesh with fixed VC indices and is Apiary's default.
func RouteXY(here, dst Coord) Port {
	switch {
	case dst.X > here.X:
		return East
	case dst.X < here.X:
		return West
	case dst.Y > here.Y:
		return South
	case dst.Y < here.Y:
		return North
	default:
		return Local
	}
}

// RouteWestFirst is the west-first turn model: any hop westward must be
// taken before anything else (turns *into* west are forbidden), which
// breaks cycles and keeps the network deadlock-free while allowing partial
// adaptivity elsewhere. With no congestion signal available to a RouteFunc,
// the adaptive choice is resolved deterministically toward the dimension
// with more remaining distance, which spreads load better than strict
// dimension order on diagonal traffic.
func RouteWestFirst(here, dst Coord) Port {
	dx := dst.X - here.X
	dy := dst.Y - here.Y
	switch {
	case dx == 0 && dy == 0:
		return Local
	case dx < 0:
		return West // mandatory: west legs first
	case dx == 0:
		if dy > 0 {
			return South
		}
		return North
	case dy == 0:
		return East
	default:
		// Both east and a Y direction are productive; pick the longer leg.
		ady := dy
		if ady < 0 {
			ady = -ady
		}
		if ady > dx {
			if dy > 0 {
				return South
			}
			return North
		}
		return East
	}
}

// RouteYX corrects Y first, then X. Used in routing ablation tests; equally
// deadlock-free, different congestion pattern.
func RouteYX(here, dst Coord) Port {
	switch {
	case dst.Y > here.Y:
		return South
	case dst.Y < here.Y:
		return North
	case dst.X > here.X:
		return East
	case dst.X < here.X:
		return West
	default:
		return Local
	}
}
