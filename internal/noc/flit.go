package noc

import (
	"apiary/internal/msg"
	"apiary/internal/sim"
)

// VCID selects a virtual channel.
type VCID int

// Virtual channel assignment (see package comment).
const (
	VCMgmt  VCID = 0
	VCReq   VCID = 1
	VCReply VCID = 2

	// NumVCs is the number of virtual channels per port.
	NumVCs = 3
)

// FlitBytes is the payload capacity of one flit. 16 bytes models a 128-bit
// datapath, typical of hardened FPGA NoCs (e.g. Versal's 128-bit NoC).
const FlitBytes = 16

// Packet is one message in flight on the NoC. Flits reference their packet;
// payload bytes are not physically split since the simulator only needs the
// timing of serialization.
type Packet struct {
	ID       uint64
	Src, Dst Coord
	VC       VCID
	Msg      *msg.Message
	NumFlits int
	Injected sim.Cycle // cycle the head flit entered the source NI

	// span is the flight-recorder record riding a sampled packet (nil for
	// the unsampled majority); see span.go for the ownership argument that
	// makes mutating it from router ticks race-free and deterministic.
	span *Span
}

// FlitsFor reports the number of flits needed to carry a message of
// wireBytes bytes: at least one, one per FlitBytes thereafter.
func FlitsFor(wireBytes int) int {
	n := (wireBytes + FlitBytes - 1) / FlitBytes
	if n < 1 {
		n = 1
	}
	return n
}

// Flit is the unit of flow control. Flits are plain values: they live
// directly inside the structure-of-arrays FIFO rings (see state.go) and are
// copied, never heap-allocated, on the hot path. Only the Packet they point
// at is an object, pooled per shard.
//
// The struct is deliberately packed to 16 bytes — pointer plus one metadata
// word — so a BufDepth(=4)-deep input VC ring occupies exactly one 64-byte
// cache line. meta holds the buffer-arrival cycle in the high 48 bits (2^48
// cycles ≈ 3 days at 1 GHz, far beyond any run), the flit's index within its
// packet in bits 15..1, and the tail marker in bit 0.
type Flit struct {
	Pkt  *Packet
	meta uint64
}

const (
	flitMetaTail    = 1 << 0
	flitIdxShift    = 1
	flitMaxIdx      = 1<<15 - 1
	flitArriveShift = 16
)

func makeFlit(pkt *Packet, idx int, tail bool) Flit {
	m := uint64(idx) << flitIdxShift
	if tail {
		m |= flitMetaTail
	}
	return Flit{Pkt: pkt, meta: m}
}

// Head reports whether this is the packet's head flit.
func (f *Flit) Head() bool { return f.meta&(flitMaxIdx<<flitIdxShift) == 0 }

// Idx reports the flit's index within its packet.
func (f *Flit) Idx() int { return int(f.meta>>flitIdxShift) & flitMaxIdx }

// Tail reports whether this is the packet's tail flit.
func (f *Flit) Tail() bool { return f.meta&flitMetaTail != 0 }

// arrived reports the cycle this flit entered its current buffer.
func (f *Flit) arrived() sim.Cycle { return sim.Cycle(f.meta >> flitArriveShift) }

// setArrived restamps the buffer-arrival cycle, preserving index and tail.
func (f *Flit) setArrived(now sim.Cycle) {
	f.meta = f.meta&(1<<flitArriveShift-1) | uint64(now)<<flitArriveShift
}

func init() {
	// The packed meta word gives a flit index 15 bits; the largest possible
	// message must still fit.
	if FlitsFor(msg.MaxPayload+256) > flitMaxIdx {
		panic("noc: maximum message exceeds packed flit index range")
	}
}

// pktPool recycles Packet objects between injection and ejection. The
// simulator stages ejections to the commit phase, so puts and gets are
// always shard-local or on the main goroutine; a plain free list suffices.
// Pooling is invisible to simulation state: every field is rewritten on
// allocation.
type pktPool struct {
	pkts []*Packet
}

func (p *pktPool) getPacket() *Packet {
	n := len(p.pkts)
	if n == 0 {
		return &Packet{}
	}
	pk := p.pkts[n-1]
	p.pkts[n-1] = nil
	p.pkts = p.pkts[:n-1]
	return pk
}

func (p *pktPool) putPacket(pk *Packet) {
	*pk = Packet{}
	p.pkts = append(p.pkts, pk)
}

// ClassVC maps a message type to its virtual channel. Management-plane
// types ride VC0; replies (including errors) ride VC2; everything else is a
// request on VC1.
func ClassVC(t msg.Type) VCID {
	switch t {
	case msg.TCtlInstallCap, msg.TCtlRevokeCap, msg.TCtlSetName,
		msg.TCtlFault, msg.TCtlDrain, msg.TCtlResume, msg.TCtlPing,
		msg.TCtlStats, msg.TCtlQuiesce:
		return VCMgmt
	case msg.TReply, msg.TError, msg.TMemReply, msg.TNetRecv:
		return VCReply
	default:
		return VCReq
	}
}
