package noc

import (
	"apiary/internal/msg"
	"apiary/internal/sim"
)

// VCID selects a virtual channel.
type VCID int

// Virtual channel assignment (see package comment).
const (
	VCMgmt  VCID = 0
	VCReq   VCID = 1
	VCReply VCID = 2

	// NumVCs is the number of virtual channels per port.
	NumVCs = 3
)

// FlitBytes is the payload capacity of one flit. 16 bytes models a 128-bit
// datapath, typical of hardened FPGA NoCs (e.g. Versal's 128-bit NoC).
const FlitBytes = 16

// Packet is one message in flight on the NoC. Flits reference their packet;
// payload bytes are not physically split since the simulator only needs the
// timing of serialization.
type Packet struct {
	ID       uint64
	Src, Dst Coord
	VC       VCID
	Msg      *msg.Message
	NumFlits int
	Injected sim.Cycle // cycle the head flit entered the source NI

	// span is the flight-recorder record riding a sampled packet (nil for
	// the unsampled majority); see span.go for the ownership argument that
	// makes mutating it from router ticks race-free and deterministic.
	span *Span
}

// FlitsFor reports the number of flits needed to carry a message of
// wireBytes bytes: at least one, one per FlitBytes thereafter.
func FlitsFor(wireBytes int) int {
	n := (wireBytes + FlitBytes - 1) / FlitBytes
	if n < 1 {
		n = 1
	}
	return n
}

// Flit is the unit of flow control.
type Flit struct {
	Pkt       *Packet
	Idx       int
	Tail      bool
	arrivedAt sim.Cycle // cycle this flit entered the current buffer
}

// Head reports whether this is the packet's head flit.
func (f *Flit) Head() bool { return f.Idx == 0 }

// flitPool recycles Flit and Packet objects between injection and ejection.
// The simulator is single-threaded per engine, so a plain free list
// suffices; live flits are bounded by total buffer capacity, which bounds
// the pool. Pooling is invisible to simulation state: every field is
// rewritten on allocation.
type flitPool struct {
	flits []*Flit
	pkts  []*Packet
}

func (p *flitPool) getFlit(pkt *Packet, idx int, tail bool) *Flit {
	n := len(p.flits)
	if n == 0 {
		return &Flit{Pkt: pkt, Idx: idx, Tail: tail}
	}
	f := p.flits[n-1]
	p.flits[n-1] = nil
	p.flits = p.flits[:n-1]
	f.Pkt, f.Idx, f.Tail, f.arrivedAt = pkt, idx, tail, 0
	return f
}

func (p *flitPool) putFlit(f *Flit) {
	f.Pkt = nil
	p.flits = append(p.flits, f)
}

func (p *flitPool) getPacket() *Packet {
	n := len(p.pkts)
	if n == 0 {
		return &Packet{}
	}
	pk := p.pkts[n-1]
	p.pkts[n-1] = nil
	p.pkts = p.pkts[:n-1]
	return pk
}

func (p *flitPool) putPacket(pk *Packet) {
	*pk = Packet{}
	p.pkts = append(p.pkts, pk)
}

// ClassVC maps a message type to its virtual channel. Management-plane
// types ride VC0; replies (including errors) ride VC2; everything else is a
// request on VC1.
func ClassVC(t msg.Type) VCID {
	switch t {
	case msg.TCtlInstallCap, msg.TCtlRevokeCap, msg.TCtlSetName,
		msg.TCtlFault, msg.TCtlDrain, msg.TCtlResume, msg.TCtlPing,
		msg.TCtlStats:
		return VCMgmt
	case msg.TReply, msg.TError, msg.TMemReply, msg.TNetRecv:
		return VCReply
	default:
		return VCReq
	}
}
