package energy

import (
	"strings"
	"testing"
)

func TestMeterAccumulates(t *testing.T) {
	m := NewMeter()
	m.FlitHops(100)
	m.DRAMBytes(160)
	m.MACBytes(1000)
	m.PCIeBytes(1000)
	m.CPUBusyNs(10)
	m.MonitorChecks(4)
	want := 100*FlitHopNJ + 10*DRAMBeatNJ + 1000*MACByteNJ +
		1000*PCIeByteNJ + 10*CPUBusyNsNJ + 4*MonitorChkNJ
	if got := m.Total(); got < want*0.999 || got > want*1.001 {
		t.Fatalf("Total = %v, want %v", got, want)
	}
}

func TestDRAMBeatRounding(t *testing.T) {
	m := NewMeter()
	m.DRAMBytes(1) // one byte still costs a beat
	if m.Category("dram") != DRAMBeatNJ {
		t.Fatalf("dram = %v", m.Category("dram"))
	}
}

func TestCategoriesIndependent(t *testing.T) {
	m := NewMeter()
	m.MACBytes(10)
	if m.Category("pcie") != 0 {
		t.Fatal("category bleed")
	}
}

func TestReset(t *testing.T) {
	m := NewMeter()
	m.FlitHops(5)
	m.Reset()
	if m.Total() != 0 {
		t.Fatal("reset failed")
	}
}

func TestBreakdownSorted(t *testing.T) {
	m := NewMeter()
	m.CPUBusyNs(1000) // dominant
	m.FlitHops(1)
	out := m.Breakdown()
	if !strings.Contains(out, "cpu") || !strings.Contains(out, "noc") {
		t.Fatalf("breakdown missing categories:\n%s", out)
	}
	if strings.Index(out, "cpu") > strings.Index(out, "noc") {
		t.Fatal("breakdown not sorted by energy")
	}
}

// TestCPUDominatesSmallRequests encodes the paper's energy intuition: for a
// small request, CPU software handling costs far more than moving the same
// bytes over wires.
func TestCPUDominatesSmallRequests(t *testing.T) {
	hosted := NewMeter()
	hosted.MACBytes(128)
	hosted.CPUBusyNs(2000) // ~2 us of software stack
	hosted.PCIeBytes(128)

	direct := NewMeter()
	direct.MACBytes(128)
	direct.FlitHops(40)
	direct.MonitorChecks(2)

	if hosted.Total() < 10*direct.Total() {
		t.Fatalf("hosted (%v nJ) should dwarf direct (%v nJ) for small requests",
			hosted.Total(), direct.Total())
	}
}
