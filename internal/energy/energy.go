// Package energy implements event-counting energy accounting for Apiary and
// its host-mediated baseline (experiment E5). Absolute joules are not the
// point — the paper claims *relative* savings from removing CPU mediation —
// so the model charges published-order-of-magnitude energy per event and
// the experiments compare totals.
//
// Constants (sources are order-of-magnitude literature values):
//   - NoC flit-hop: ~1 pJ/bit on-chip => ~0.13 nJ per 128-bit flit-hop.
//   - DRAM access: ~20 pJ/bit       => ~2.6 nJ per 16-byte beat.
//   - NIC/MAC:     ~5 pJ/bit wire+SerDes.
//   - PCIe:        ~10 pJ/bit per crossing.
//   - CPU:         ~50 W core power => 50 nJ per busy nanosecond; software
//     packet handling costs microseconds, which is exactly the
//     paper's motivation for bypassing the CPU.
package energy

import (
	"fmt"
	"sort"
)

// Per-event energy costs in nanojoules.
const (
	FlitHopNJ     = 0.13
	DRAMBeatNJ    = 2.6  // per 16-byte beat
	MACByteNJ     = 0.04 // 5 pJ/bit
	PCIeByteNJ    = 0.08 // 10 pJ/bit
	CPUBusyNsNJ   = 50.0 // per nanosecond of busy CPU core
	MonitorChkNJ  = 0.05 // capability check in the monitor CAM
	FPGAStaticNJx = 0.0  // static power excluded: identical on both sides
)

// Meter accumulates energy by category.
type Meter struct {
	nj map[string]float64
}

// NewMeter returns an empty meter.
func NewMeter() *Meter { return &Meter{nj: make(map[string]float64)} }

// Add charges nj nanojoules to a category.
func (m *Meter) Add(category string, nj float64) { m.nj[category] += nj }

// FlitHops charges n flit-hop traversals.
func (m *Meter) FlitHops(n uint64) { m.Add("noc", float64(n)*FlitHopNJ) }

// DRAMBytes charges a DRAM transfer of n bytes.
func (m *Meter) DRAMBytes(n uint64) { m.Add("dram", float64((n+15)/16)*DRAMBeatNJ) }

// MACBytes charges n bytes through the Ethernet MAC/SerDes.
func (m *Meter) MACBytes(n uint64) { m.Add("mac", float64(n)*MACByteNJ) }

// PCIeBytes charges n bytes across PCIe.
func (m *Meter) PCIeBytes(n uint64) { m.Add("pcie", float64(n)*PCIeByteNJ) }

// CPUBusyNs charges ns nanoseconds of busy CPU core time.
func (m *Meter) CPUBusyNs(ns float64) { m.Add("cpu", ns*CPUBusyNsNJ) }

// MonitorChecks charges n capability checks.
func (m *Meter) MonitorChecks(n uint64) { m.Add("monitor", float64(n)*MonitorChkNJ) }

// Total reports accumulated nanojoules across all categories.
func (m *Meter) Total() float64 {
	t := 0.0
	for _, v := range m.nj {
		t += v
	}
	return t
}

// Category reports one category's accumulated nanojoules.
func (m *Meter) Category(c string) float64 { return m.nj[c] }

// Reset zeroes the meter.
func (m *Meter) Reset() { m.nj = make(map[string]float64) }

// Breakdown renders categories sorted by descending energy.
func (m *Meter) Breakdown() string {
	keys := make([]string, 0, len(m.nj))
	for k := range m.nj {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return m.nj[keys[i]] > m.nj[keys[j]] })
	s := ""
	for _, k := range keys {
		s += fmt.Sprintf("%-8s %12.1f nJ\n", k, m.nj[k])
	}
	return s
}
