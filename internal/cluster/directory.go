package cluster

import (
	"fmt"
	"sort"

	"apiary/internal/msg"
)

// Endpoint is one backend of a fleet service: a board plus the network
// address (board NIC node, flow) its gateway bridge listens on.
type Endpoint struct {
	Board int
	Addr  msg.NetAddr
}

type dirEntry struct {
	backends []Endpoint
	primary  int
}

// Directory is the fleet naming plane: service name -> replica endpoints,
// one of which is primary. Remote proxies resolve through it on every
// forwarded request (apps.RemoteProxy.Resolve), so a re-bind takes effect
// on the next send — including app-level retries of requests a dead board
// swallowed.
//
// Concurrency/determinism contract: lookups run on board goroutines during
// epochs; mutations (Register, SetPrimary, orchestrator failover) happen
// only on the coordinator at barriers. The epoch WaitGroup provides the
// happens-before edge, so no locking is needed and resolution is a pure
// function of the epoch number.
type Directory struct {
	entries map[string]*dirEntry
	rebinds uint64
}

// NewDirectory builds an empty naming plane.
func NewDirectory() *Directory {
	return &Directory{entries: make(map[string]*dirEntry)}
}

// Register binds a service name to its replica endpoints; the first is
// primary.
func (d *Directory) Register(name string, eps ...Endpoint) error {
	if name == "" || len(eps) == 0 {
		return fmt.Errorf("cluster: directory: empty name or no endpoints for %q", name)
	}
	if _, dup := d.entries[name]; dup {
		return fmt.Errorf("cluster: directory: %q already registered", name)
	}
	d.entries[name] = &dirEntry{backends: append([]Endpoint(nil), eps...)}
	return nil
}

// Lookup resolves a name to its current primary endpoint.
func (d *Directory) Lookup(name string) (Endpoint, bool) {
	en, ok := d.entries[name]
	if !ok {
		return Endpoint{}, false
	}
	return en.backends[en.primary], true
}

// Backends lists a service's replica endpoints (primary first is NOT
// guaranteed; use Primary for the index).
func (d *Directory) Backends(name string) []Endpoint {
	en, ok := d.entries[name]
	if !ok {
		return nil
	}
	return append([]Endpoint(nil), en.backends...)
}

// Primary reports the index of a service's current primary backend, or -1.
func (d *Directory) Primary(name string) int {
	if en, ok := d.entries[name]; ok {
		return en.primary
	}
	return -1
}

// SetPrimary re-binds a service to backend index i. Barrier-only.
func (d *Directory) SetPrimary(name string, i int) error {
	en, ok := d.entries[name]
	if !ok {
		return fmt.Errorf("cluster: directory: unknown service %q", name)
	}
	if i < 0 || i >= len(en.backends) {
		return fmt.Errorf("cluster: directory: %q has no backend %d", name, i)
	}
	if en.primary != i {
		en.primary = i
		d.rebinds++
	}
	return nil
}

// UpdateBackend re-points a service's backend index i at a new endpoint —
// the directory half of a replica migration, applied at the epoch barrier
// so every proxy's next resolve sees the new board atomically. Counts as a
// rebind when i is the current primary (client-visible routing changed).
func (d *Directory) UpdateBackend(name string, i int, ep Endpoint) error {
	en, ok := d.entries[name]
	if !ok {
		return fmt.Errorf("cluster: directory: unknown service %q", name)
	}
	if i < 0 || i >= len(en.backends) {
		return fmt.Errorf("cluster: directory: %q has no backend %d", name, i)
	}
	en.backends[i] = ep
	if i == en.primary {
		d.rebinds++
	}
	return nil
}

// Rebinds counts primary changes (failovers plus manual SetPrimary moves).
func (d *Directory) Rebinds() uint64 { return d.rebinds }

// Names lists registered services in sorted order (deterministic scans).
func (d *Directory) Names() []string {
	out := make([]string, 0, len(d.entries))
	for n := range d.entries {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Resolver returns the apps.RemoteProxy.Resolve hook for a service: a pure
// read of the current primary's address. Resolving an unregistered name
// returns the zero address (node 0 is never a board, so the send is
// dropped at the gateway rather than misdelivered).
func (d *Directory) Resolver(name string) func() msg.NetAddr {
	return func() msg.NetAddr {
		ep, ok := d.Lookup(name)
		if !ok {
			return msg.NetAddr{}
		}
		return ep.Addr
	}
}
