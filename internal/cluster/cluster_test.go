package cluster

import (
	"fmt"
	"strings"
	"testing"

	"apiary/internal/accel"
	"apiary/internal/apps"
	"apiary/internal/core"
	"apiary/internal/msg"
	"apiary/internal/netsim"
	"apiary/internal/noc"
)

const (
	kvSvc    = msg.ServiceID(100) // backend service inside each replica app
	proxySvc = msg.ServiceID(200) // client boards' local doorway to "kv"
	kvFlow   = uint16(7)
)

func fleetCfg(boards int, seed uint64, shards, workers int) Config {
	return Config{
		Boards:  boards,
		Workers: workers,
		Seed:    seed,
		Board: core.SystemConfig{
			Dims:   noc.Dims{W: 3, H: 3},
			Shards: shards,
			// The DRAM model stores real bytes; the default 64 MiB window
			// times 16 boards is pure construction cost for tests that
			// never touch memory.
			ManagedMemBytes: 1 << 20,
			SpanSampleEvery: 4,
		},
		Link: netsim.LinkConfig{LatencyNs: 1000},
	}
}

func kvDeployment(replicas int) ServiceDeployment {
	return ServiceDeployment{
		Name: "kv", Svc: kvSvc, Flow: kvFlow, Replicas: replicas,
		Spec: func(r int) core.AppSpec {
			return core.AppSpec{
				Name: fmt.Sprintf("kv-r%d", r),
				Accels: []core.AppAccel{{
					Name: "store", Service: kvSvc,
					New: func() accel.Accelerator {
						return apps.NewStage(apps.StageConfig{
							Name:    "kv",
							Process: func(in []byte) ([]byte, msg.ErrCode) { return in, msg.EOK },
						})
					},
				}},
			}
		},
	}
}

// addClient wires board b to the fleet "kv" service — proxy app plus a
// requester app issuing total requests — and returns the requester.
func addClient(t *testing.T, fl *Fleet, b, total int, tune func(*apps.Requester)) *apps.Requester {
	t.Helper()
	if err := fl.Orchestrator().ConnectClient(b, proxySvc, "kv"); err != nil {
		t.Fatalf("ConnectClient(board %d): %v", b, err)
	}
	req := apps.NewRequester(proxySvc, total, 64,
		func(i int) []byte { return []byte{byte(i), byte(b), 0xAB} }, nil)
	if tune != nil {
		tune(req)
	}
	spec := core.AppSpec{
		Name: "client",
		Accels: []core.AppAccel{{
			Name:    "req",
			Connect: []msg.ServiceID{proxySvc},
			New:     func() accel.Accelerator { return req },
		}},
	}
	if _, err := fl.Board(b).Sys.Kernel.LoadApp(spec); err != nil {
		t.Fatalf("load client on board %d: %v", b, err)
	}
	return req
}

// fingerprint renders everything observable about a fleet run: fleet
// counters, every board's full stats dump, every sampled message span, and
// every client's outcome. Two bit-exact runs produce identical strings.
func fingerprint(fl *Fleet, reqs []*apps.Requester) string {
	var b strings.Builder
	fmt.Fprintf(&b, "now=%d relayed=%d lost=%d toDead=%d rebinds=%d failovers=%d\n",
		fl.Now(), fl.Relayed(), fl.LostFrames(), fl.DroppedToDead(),
		fl.Directory().Rebinds(), fl.Orchestrator().Failovers())
	for i := 0; i < fl.Boards(); i++ {
		sys := fl.Board(i).Sys
		fmt.Fprintf(&b, "== board %d ==\n%s", i, sys.Stats.String())
		for _, en := range sys.Obs.Entries() {
			sp := en.Span
			fmt.Fprintf(&b, "span %d->%d t%d seq%d q%d e%d h%d r%v\n",
				sp.Src, sp.Dst, sp.Type, sp.Seq, sp.Queued, sp.Eject, len(sp.Hops), en.Reply)
		}
	}
	for i, r := range reqs {
		fmt.Fprintf(&b, "client %d: resp=%d errs=%d\n", i, r.Responses(), r.Errors())
	}
	return b.String()
}

// runFleet boots a 16-board fleet, deploys the kv service with 2 replicas,
// attaches 4 client boards, runs to completion and returns the fingerprint.
func runFleet(t *testing.T, seed uint64, shards, workers int) string {
	t.Helper()
	fl, err := New(fleetCfg(16, seed, shards, workers))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer fl.Close()
	if _, err := fl.Orchestrator().DeployService(kvDeployment(2)); err != nil {
		t.Fatalf("DeployService: %v", err)
	}
	var reqs []*apps.Requester
	for _, b := range []int{2, 5, 9, 14} {
		reqs = append(reqs, addClient(t, fl, b, 5, nil))
	}
	done := func() bool {
		for _, r := range reqs {
			if !r.Done() {
				return false
			}
		}
		return true
	}
	if !fl.RunUntil(done, 400_000) {
		t.Fatalf("seed=%d shards=%d workers=%d: clients not done by budget", seed, shards, workers)
	}
	for i, r := range reqs {
		if r.Responses() != 5 || r.Errors() != 0 {
			t.Fatalf("client %d: resp=%d errs=%d, want 5/0", i, r.Responses(), r.Errors())
		}
	}
	if fl.Relayed() == 0 {
		t.Fatalf("no cross-board frames relayed — RPCs did not leave the board")
	}
	return fingerprint(fl, reqs)
}

// TestFleetDifferential is the fleet determinism gate: a 16-board fleet is
// bit-exact — counters, histograms, sampled span timings, client outcomes —
// between a 1-worker run and a many-worker run, across seeds and board
// shard counts. Goroutine scheduling must be invisible.
func TestFleetDifferential(t *testing.T) {
	for _, tc := range []struct {
		seed   uint64
		shards int
	}{
		{seed: 1, shards: 0},
		{seed: 99, shards: 3},
	} {
		serial := runFleet(t, tc.seed, tc.shards, 1)
		parallel := runFleet(t, tc.seed, tc.shards, 4)
		if serial != parallel {
			t.Errorf("seed=%d shards=%d: workers=1 and workers=4 fleets diverged\n--- serial ---\n%s\n--- parallel ---\n%s",
				tc.seed, tc.shards, firstDiff(serial, parallel), firstDiff(parallel, serial))
		}
	}
}

// firstDiff trims a fingerprint to the region around its first divergence
// from other, keeping failure output readable.
func firstDiff(s, other string) string {
	i := 0
	for i < len(s) && i < len(other) && s[i] == other[i] {
		i++
	}
	lo := i - 200
	if lo < 0 {
		lo = 0
	}
	hi := i + 200
	if hi > len(s) {
		hi = len(s)
	}
	return fmt.Sprintf("...%s...", s[lo:hi])
}

// TestFleetEpochLookahead pins the epoch computation: 1000 ns each way at
// the default 250 MHz clock is 500 cycles of lookahead.
func TestFleetEpochLookahead(t *testing.T) {
	fl, err := New(fleetCfg(2, 1, 0, 1))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer fl.Close()
	if fl.Epoch() != 500 {
		t.Fatalf("epoch = %d, want 500", fl.Epoch())
	}
	fl.Run(1234)
	if fl.Now() != 1234 {
		t.Fatalf("Now = %d after Run(1234)", fl.Now())
	}
	if got := fl.Board(0).Sys.Engine.Now(); got != 1234 {
		t.Fatalf("board engine at %d, want 1234", got)
	}
}

// TestFleetFailover kills the primary's whole board mid-run and checks the
// replica group spans boards: the orchestrator re-binds after its detection
// delay and resilient clients finish every request through the surviving
// replica.
func TestFleetFailover(t *testing.T) {
	fl, err := New(fleetCfg(6, 7, 0, 2))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer fl.Close()
	eps, err := fl.Orchestrator().DeployService(kvDeployment(2))
	if err != nil {
		t.Fatalf("DeployService: %v", err)
	}
	req := addClient(t, fl, 3, 12, func(r *apps.Requester) {
		r.RetryNacks = true
		r.RetryLimit = 10
		r.TimeoutCycles = 6000
		r.BackoffBase = 256
	})
	// Let a few requests land on the primary, then lose its whole board
	// while later requests are still in flight.
	primary := eps[0].Board
	fl.KillBoardAt(primary, 1500)
	if !fl.RunUntil(req.Done, 600_000) {
		t.Fatalf("client not done: resp=%d errs=%d failovers=%d",
			req.Responses(), req.Errors(), fl.Orchestrator().Failovers())
	}
	if req.Responses() != 12 {
		t.Fatalf("resp=%d errs=%d, want 12 responses", req.Responses(), req.Errors())
	}
	if !fl.Board(primary).Dead() {
		t.Fatalf("board %d should be dead", primary)
	}
	if got := fl.Orchestrator().Failovers(); got != 1 {
		t.Fatalf("failovers = %d, want 1", got)
	}
	if ep, _ := fl.Directory().Lookup("kv"); ep.Board != eps[1].Board {
		t.Fatalf("directory primary on board %d, want %d", ep.Board, eps[1].Board)
	}
	if fl.DroppedToDead() == 0 {
		t.Fatalf("expected frames dropped to the dead board during the detection window")
	}
}

// TestFleetCrossBoardLoss drops a fraction of cluster frames; the reliable
// transport retransmits and clients still finish.
func TestFleetCrossBoardLoss(t *testing.T) {
	cfg := fleetCfg(4, 11, 0, 2)
	cfg.Link.LossProb = 0.2
	fl, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer fl.Close()
	if _, err := fl.Orchestrator().DeployService(kvDeployment(1)); err != nil {
		t.Fatalf("DeployService: %v", err)
	}
	req := addClient(t, fl, 2, 4, nil)
	if !fl.RunUntil(req.Done, 1_500_000) {
		t.Fatalf("client not done under loss: resp=%d", req.Responses())
	}
	if req.Responses() != 4 {
		t.Fatalf("resp=%d, want 4", req.Responses())
	}
	if fl.LostFrames() == 0 {
		t.Fatalf("LossProb=0.2 but no frames lost")
	}
}

// TestOrchestratorSpread checks the load balancer: equal boards receive
// successive apps round-robin (most-free, lowest ID).
func TestOrchestratorSpread(t *testing.T) {
	fl, err := New(fleetCfg(4, 1, 0, 1))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer fl.Close()
	for i := 0; i < 4; i++ {
		spec := core.AppSpec{
			Name: fmt.Sprintf("app%d", i),
			Accels: []core.AppAccel{{
				Name: "s",
				New: func() accel.Accelerator {
					return apps.NewStage(apps.StageConfig{
						Name:    "s",
						Process: func(in []byte) ([]byte, msg.ErrCode) { return in, msg.EOK },
					})
				},
			}},
		}
		board, err := fl.Orchestrator().PlaceApp(spec)
		if err != nil {
			t.Fatalf("PlaceApp %d: %v", i, err)
		}
		if board != i {
			t.Fatalf("app %d placed on board %d, want %d (spread)", i, board, i)
		}
	}
}

// TestPlaceManifest routes the JSON manifest path through the orchestrator.
func TestPlaceManifest(t *testing.T) {
	fl, err := New(fleetCfg(2, 1, 0, 1))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer fl.Close()
	data := []byte(`[
		{"name":"m0","accels":[{"name":"e","kind":"echo","service":300}]},
		{"name":"m1","accels":[{"name":"e","kind":"echo","service":300}]}
	]`)
	placed, err := fl.Orchestrator().PlaceManifest(data)
	if err != nil {
		t.Fatalf("PlaceManifest: %v", err)
	}
	if len(placed) != 2 || placed[0].Board == placed[1].Board {
		t.Fatalf("placements %+v: want the two apps on different boards", placed)
	}
}

// TestDeployAntiAffinity: replicas must land on distinct boards, so a
// 3-replica service cannot fit a 2-board fleet.
func TestDeployAntiAffinity(t *testing.T) {
	fl, err := New(fleetCfg(2, 1, 0, 1))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer fl.Close()
	if _, err := fl.Orchestrator().DeployService(kvDeployment(3)); err == nil {
		t.Fatalf("3 replicas on 2 boards should fail anti-affinity")
	}
}

// TestConnectClientCollision: a board hosting a replica cannot also host a
// proxy for the same service (the flow would collide).
func TestConnectClientCollision(t *testing.T) {
	fl, err := New(fleetCfg(3, 1, 0, 1))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer fl.Close()
	eps, err := fl.Orchestrator().DeployService(kvDeployment(1))
	if err != nil {
		t.Fatalf("DeployService: %v", err)
	}
	if err := fl.Orchestrator().ConnectClient(eps[0].Board, proxySvc, "kv"); err == nil {
		t.Fatalf("proxy on a backend board should be rejected")
	}
}

// TestDirectory covers the naming plane in isolation.
func TestDirectory(t *testing.T) {
	d := NewDirectory()
	if err := d.Register("svc", Endpoint{Board: 0, Addr: msg.NetAddr{Node: 0x1000, Flow: 7}},
		Endpoint{Board: 3, Addr: msg.NetAddr{Node: 0x1003, Flow: 7}}); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if err := d.Register("svc"); err == nil {
		t.Fatalf("duplicate Register should fail")
	}
	if ep, ok := d.Lookup("svc"); !ok || ep.Board != 0 {
		t.Fatalf("Lookup = %+v %v, want board 0 primary", ep, ok)
	}
	resolve := d.Resolver("svc")
	if a := resolve(); a.Node != 0x1000 {
		t.Fatalf("Resolver = %+v, want node 0x1000", a)
	}
	if err := d.SetPrimary("svc", 1); err != nil {
		t.Fatalf("SetPrimary: %v", err)
	}
	if a := resolve(); a.Node != 0x1003 {
		t.Fatalf("Resolver after re-bind = %+v, want node 0x1003", a)
	}
	if d.Rebinds() != 1 {
		t.Fatalf("Rebinds = %d, want 1", d.Rebinds())
	}
	if a := d.Resolver("nope")(); a != (msg.NetAddr{}) {
		t.Fatalf("unknown service resolved to %+v", a)
	}
	if err := d.SetPrimary("svc", 9); err == nil {
		t.Fatalf("SetPrimary out of range should fail")
	}
	if got := d.Names(); len(got) != 1 || got[0] != "svc" {
		t.Fatalf("Names = %v", got)
	}
}

// TestRegisterNode covers fleet node routing for extra soft endpoints.
func TestRegisterNode(t *testing.T) {
	fl, err := New(fleetCfg(2, 1, 0, 1))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer fl.Close()
	if err := fl.RegisterNode(netsim.NodeID(500), 1); err != nil {
		t.Fatalf("RegisterNode: %v", err)
	}
	if err := fl.RegisterNode(netsim.NodeID(500), 0); err == nil {
		t.Fatalf("duplicate node registration should fail")
	}
	if err := fl.RegisterNode(netsim.NodeID(501), 9); err == nil {
		t.Fatalf("registration on a missing board should fail")
	}
	if _, ok := fl.Board(0).RemoteLink(netsim.NodeID(500)); !ok {
		t.Fatalf("registered node should be reachable from other boards")
	}
	if _, ok := fl.Board(0).RemoteLink(netsim.NodeID(999)); ok {
		t.Fatalf("unknown node should be unreachable")
	}
}
