package cluster

import (
	"strings"
	"testing"

	"apiary/internal/obs"
)

// Orchestrator-level migration unit tests: directive validation, the
// happy-path cross-board move, maintenance drain, and abort semantics.
// Whole-run client-visible behavior is covered by the load package's
// migration differentials; these pin the decision layer.

func TestMigrateReplicaValidation(t *testing.T) {
	fl, err := New(fleetCfg(4, 1, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	defer fl.Close()
	o := fl.Orchestrator()
	if err := o.MigrateReplica("ghost", 0, -1); err == nil ||
		!strings.Contains(err.Error(), "was not deployed") {
		t.Fatalf("unknown service: %v", err)
	}
	if _, err := o.DeployService(kvDeployment(2)); err != nil {
		t.Fatal(err)
	}
	if err := o.MigrateReplica("kv", 5, -1); err == nil ||
		!strings.Contains(err.Error(), "no replica 5") {
		t.Fatalf("bad replica: %v", err)
	}
	src := fl.Directory().Backends("kv")[0].Board
	if err := o.MigrateReplica("kv", 0, src); err == nil ||
		!strings.Contains(err.Error(), "already on board") {
		t.Fatalf("self-migration: %v", err)
	}
	if err := o.MigrateReplica("kv", 0, 99); err == nil ||
		!strings.Contains(err.Error(), "dead or unknown") {
		t.Fatalf("unknown destination: %v", err)
	}
	if err := o.MigrateReplica("kv", 0, -1); err != nil {
		t.Fatalf("valid migration rejected: %v", err)
	}
	if err := o.MigrateReplica("kv", 0, -1); err == nil ||
		!strings.Contains(err.Error(), "already migrating") {
		t.Fatalf("double migration: %v", err)
	}
	if err := o.DrainBoard(-1); err == nil {
		t.Fatal("negative board drain accepted")
	}
}

func TestMigrateReplicaMovesBackend(t *testing.T) {
	fl, err := New(fleetCfg(4, 7, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	defer fl.Close()
	o := fl.Orchestrator()
	if _, err := o.DeployService(kvDeployment(2)); err != nil {
		t.Fatal(err)
	}
	before := fl.Directory().Backends("kv")
	wasPrimary := fl.Directory().Primary("kv")
	if err := o.MigrateReplica("kv", wasPrimary, -1); err != nil {
		t.Fatal(err)
	}
	// Moving the primary shifts the binding to the live sibling first.
	if got := fl.Directory().Primary("kv"); got == wasPrimary {
		t.Fatal("primary not shifted off the moving replica")
	}
	if !fl.RunUntil(func() bool { return o.MigrationsDone() == 1 }, 600_000) {
		t.Fatalf("migration incomplete: %+v", o.Migrations())
	}
	if o.MigrationAborts() != 0 {
		t.Fatalf("aborts = %d", o.MigrationAborts())
	}
	after := fl.Directory().Backends("kv")
	if after[wasPrimary].Board == before[wasPrimary].Board {
		t.Fatalf("backend did not move: %+v -> %+v", before, after)
	}
	// The moved replica landed outside the backend set it left behind.
	for r, b := range before {
		if r != wasPrimary && after[wasPrimary].Board == b.Board {
			t.Fatalf("moved replica landed on sibling board %d", b.Board)
		}
	}
	// Retired jobs compact away; the decision log carries start and done.
	if len(o.Migrations()) != 0 {
		t.Fatalf("live jobs after completion: %+v", o.Migrations())
	}
	var sawStart, sawDone bool
	for _, ev := range fl.MergedEvents() {
		switch ev.Kind {
		case obs.EvMigrateStart:
			sawStart = true
		case obs.EvMigrateDone:
			sawDone = true
		}
	}
	if !sawStart || !sawDone {
		t.Fatalf("decision log missing migration events: start=%v done=%v", sawStart, sawDone)
	}
}

func TestDrainBoardMovesEveryReplica(t *testing.T) {
	fl, err := New(fleetCfg(4, 3, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	defer fl.Close()
	o := fl.Orchestrator()
	if _, err := o.DeployService(kvDeployment(2)); err != nil {
		t.Fatal(err)
	}
	drained := fl.Directory().Backends("kv")[1].Board
	if err := o.DrainBoard(drained); err != nil {
		t.Fatal(err)
	}
	if !fl.RunUntil(func() bool { return o.MigrationsDone() == 1 }, 600_000) {
		t.Fatalf("drain incomplete: %+v", o.Migrations())
	}
	for _, b := range fl.Directory().Backends("kv") {
		if b.Board == drained {
			t.Fatalf("replica still on drained board %d", drained)
		}
	}
}

func TestMigrateAbortOnDestinationDeath(t *testing.T) {
	fl, err := New(fleetCfg(4, 5, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	defer fl.Close()
	o := fl.Orchestrator()
	if _, err := o.DeployService(kvDeployment(2)); err != nil {
		t.Fatal(err)
	}
	before := fl.Directory().Backends("kv")
	if err := o.MigrateReplica("kv", 1, -1); err != nil {
		t.Fatal(err)
	}
	dst := o.Migrations()[0].Dst
	fl.KillBoard(dst)
	if !fl.RunUntil(func() bool { return o.MigrationAborts() == 1 }, 600_000) {
		t.Fatalf("abort never fired: %+v", o.Migrations())
	}
	if o.MigrationsDone() != 0 {
		t.Fatalf("done = %d after destination death", o.MigrationsDone())
	}
	// Source authoritative: the replica stays where it was.
	if got := fl.Directory().Backends("kv")[1].Board; got != before[1].Board {
		t.Fatalf("replica moved despite abort: board %d -> %d", before[1].Board, got)
	}
}

func TestScheduledDirectivesRunAtBarrier(t *testing.T) {
	fl, err := New(fleetCfg(4, 9, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	defer fl.Close()
	o := fl.Orchestrator()
	if _, err := o.DeployService(kvDeployment(2)); err != nil {
		t.Fatal(err)
	}
	o.MigrateReplicaAt("kv", 1, 10_000)
	fl.Run(9_000)
	if len(o.Migrations()) != 0 {
		t.Fatal("scheduled migration started early")
	}
	if !fl.RunUntil(func() bool { return o.MigrationsDone() == 1 }, 600_000) {
		t.Fatalf("scheduled migration incomplete: %+v", o.Migrations())
	}
	// A scheduled directive that fails surfaces in the decision log
	// instead of erroring a caller that no longer exists.
	o.MigrateReplicaAt("ghost", 0, fl.Now()+1)
	fl.Run(2 * fl.Epoch())
	var sawAbort bool
	for _, ev := range fl.MergedEvents() {
		if ev.Kind == obs.EvMigrateAbort && ev.Cause == "scheduled directive" {
			sawAbort = true
		}
	}
	if !sawAbort {
		t.Fatal("failed scheduled directive left no abort event")
	}
}
