package cluster

import (
	"fmt"

	"apiary/internal/accel"
	"apiary/internal/apps"
	"apiary/internal/core"
	"apiary/internal/manifest"
	"apiary/internal/msg"
	"apiary/internal/obs"
)

// Placement records where the orchestrator put an application.
type Placement struct {
	App   string
	Board int
}

// Orchestrator places applications onto fleet boards and keeps the naming
// plane honest: services deployed as replica groups span boards, and when
// a board dies the orchestrator re-binds each service it was primary for
// to a surviving replica. All methods run on the coordinator goroutine —
// at setup time or inside a barrier (Fleet.OnEpoch) — never during an
// epoch.
type Orchestrator struct {
	f      *Fleet
	dir    *Directory
	detect uint64 // epochs between board death and failover

	placements []Placement
	failovers  uint64

	// deployed remembers each DeployService call so replicas can be rebuilt
	// on another board during migration (specs are code, not snapshot state).
	deployed map[string]*deployedSvc

	// migrations are in-flight cross-board replica moves, stepped at epoch
	// barriers in schedule order; sched holds migrate/drain directives not
	// yet due.
	migrations []*migrationJob
	sched      []schedCmd
	migDone    uint64
	migAborted uint64
}

// deployedSvc records one deployed fleet service and its per-replica app
// names (the handle migration uses to quiesce/unload on the source board).
type deployedSvc struct {
	dep  ServiceDeployment
	apps []string
}

func newOrchestrator(f *Fleet, detectEpochs int) *Orchestrator {
	return &Orchestrator{f: f, dir: f.dir, detect: uint64(detectEpochs),
		deployed: make(map[string]*deployedSvc)}
}

// Placements lists every app placement made so far.
func (o *Orchestrator) Placements() []Placement {
	return append([]Placement(nil), o.placements...)
}

// Failovers counts primary re-binds triggered by board death.
func (o *Orchestrator) Failovers() uint64 { return o.failovers }

// pickBoard chooses the live board with the most free tiles that can hold
// need accelerators (ties: lowest board ID), skipping boards in excl. The
// most-free rule is the load balancer: successive placements spread across
// the fleet.
func (o *Orchestrator) pickBoard(need int, excl map[int]bool) (int, error) {
	best, bestFree := -1, -1
	for _, b := range o.f.boards {
		if b.dead || excl[b.ID] {
			continue
		}
		if free := b.Sys.Kernel.FreeTileCount(); free >= need && free > bestFree {
			best, bestFree = b.ID, free
		}
	}
	if best < 0 {
		return -1, fmt.Errorf("cluster: no live board with %d free tiles", need)
	}
	return best, nil
}

// PlaceApp loads an application onto the best-fit board and reports where
// it landed.
func (o *Orchestrator) PlaceApp(spec core.AppSpec) (int, error) {
	board, err := o.pickBoard(len(spec.Accels), nil)
	if err != nil {
		return -1, err
	}
	if _, err := o.f.boards[board].Sys.Kernel.LoadApp(spec); err != nil {
		return -1, err
	}
	o.placements = append(o.placements, Placement{App: spec.Name, Board: board})
	o.event(board, obs.EvPlacement, "best-fit",
		fmt.Sprintf("app %q placed on board %d", spec.Name, board))
	return board, nil
}

// event records one orchestrator decision in the fleet log.
func (o *Orchestrator) event(board int, kind obs.EventKind, cause, detail string) {
	o.f.agg.FleetEvents().Add(obs.Event{
		Cycle: o.f.now, Board: board, Kind: kind, Cause: cause, Detail: detail,
	})
}

// hashName is FNV-1a over the service name — the deterministic ingredient
// that makes per-service trace-ID salts fleet-unique.
func hashName(s string) uint64 {
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return h
}

// PlaceManifest parses a JSON manifest (one app or a list) and places each
// app independently — the fleet-level analogue of apiaryctl load.
func (o *Orchestrator) PlaceManifest(data []byte) ([]Placement, error) {
	specs, err := manifest.Parse(data)
	if err != nil {
		return nil, err
	}
	var out []Placement
	for _, spec := range specs {
		board, err := o.PlaceApp(spec)
		if err != nil {
			return out, err
		}
		out = append(out, Placement{App: spec.Name, Board: board})
	}
	return out, nil
}

// ServiceDeployment describes a fleet service: a per-replica app spec
// whose service Svc is fronted by a network bridge on flow Flow, replicated
// across Replicas distinct boards and registered in the directory under
// Name.
type ServiceDeployment struct {
	Name     string
	Svc      msg.ServiceID
	Flow     uint16
	Replicas int
	// Spec builds replica r's application (without the bridge — the
	// orchestrator appends it). App names must be unique per board; using
	// the replica index in the name is the easy way.
	Spec func(r int) core.AppSpec
}

// DeployService places Replicas copies of a service on distinct boards
// (anti-affinity: a whole-board loss takes out at most one replica), each
// fronted by a NetBridge gateway tile on the deployment flow, and registers
// the replica endpoints in the directory with replica 0 primary.
func (o *Orchestrator) DeployService(dep ServiceDeployment) ([]Endpoint, error) {
	if dep.Replicas < 1 {
		dep.Replicas = 1
	}
	if dep.Spec == nil {
		return nil, fmt.Errorf("cluster: deployment %q has no spec", dep.Name)
	}
	used := map[int]bool{}
	var eps []Endpoint
	rec := &deployedSvc{dep: dep}
	for r := 0; r < dep.Replicas; r++ {
		need := len(dep.Spec(r).Accels) + 1
		// Pick the board before building the bridge closure so the gateway
		// can mirror its serve count into that board's stats under the
		// fleet-wide per-service name (the rollup's goodput source).
		board, err := o.pickBoard(need, used)
		if err != nil {
			return nil, fmt.Errorf("cluster: replica %d of %q: %w", r, dep.Name, err)
		}
		spec := o.replicaSpec(dep, r, board)
		if _, err := o.f.boards[board].Sys.Kernel.LoadApp(spec); err != nil {
			return nil, fmt.Errorf("cluster: replica %d of %q: %w", r, dep.Name, err)
		}
		used[board] = true
		o.placements = append(o.placements, Placement{App: spec.Name, Board: board})
		o.event(board, obs.EvDeploy, "anti-affinity spread",
			fmt.Sprintf("service %q replica %d on board %d flow %d",
				dep.Name, r, board, dep.Flow))
		eps = append(eps, Endpoint{
			Board: board,
			Addr:  msg.NetAddr{Node: uint32(o.f.boards[board].Node), Flow: dep.Flow},
		})
		rec.apps = append(rec.apps, spec.Name)
	}
	if err := o.dir.Register(dep.Name, eps...); err != nil {
		return nil, err
	}
	o.deployed[dep.Name] = rec
	return eps, nil
}

// replicaSpec rebuilds replica r's full application manifest — the declared
// spec plus the fleet gateway bridge — with the bridge's closures bound to
// the given board's stats. Deployment and migration both go through this,
// so a migrated replica's serve counts land on its *new* board.
func (o *Orchestrator) replicaSpec(dep ServiceDeployment, r, board int) core.AppSpec {
	spec := dep.Spec(r)
	served := o.f.boards[board].Sys.Stats.Counter(obs.ServiceServedCounter(dep.Name))
	spec.Accels = append(spec.Accels, core.AppAccel{
		Name:    "fleetgw",
		WantNet: true,
		Connect: []msg.ServiceID{dep.Svc},
		New: func() accel.Accelerator {
			b := apps.NewNetBridge(dep.Flow)
			b.Target = dep.Svc
			b.ServedC = served
			return b
		},
	})
	return spec
}

// ConnectClient gives board's applications a local doorway to the fleet
// service name: a RemoteProxy app exporting localSvc, resolving the
// current primary through the directory on every forwarded request. Client
// accelerators just Connect to localSvc — remote placement, and failover,
// are invisible to them.
func (o *Orchestrator) ConnectClient(board int, localSvc msg.ServiceID, name string) error {
	ep, ok := o.dir.Lookup(name)
	if !ok {
		return fmt.Errorf("cluster: unknown service %q", name)
	}
	for _, b := range o.dir.Backends(name) {
		if b.Board == board {
			// The backend's bridge already listens on the deployment flow
			// on this board; a proxy here would collide. (It would also be
			// pointless — the service is local.)
			return fmt.Errorf("cluster: board %d hosts a %q replica; connect a different board", board, name)
		}
	}
	resolve := o.dir.Resolver(name)
	bsys := o.f.boards[board].Sys
	traceEvery := o.f.cfg.Board.SpanSampleEvery
	salt := mix64(o.f.cfg.Seed ^ mix64(uint64(board)+1) ^ hashName(name))
	spec := core.AppSpec{
		Name:    fmt.Sprintf("fleet-proxy-%s", name),
		Exports: []msg.ServiceID{localSvc},
		Accels: []core.AppAccel{{
			Name:    "proxy",
			Service: localSvc,
			WantNet: true,
			New: func() accel.Accelerator {
				p := apps.NewRemoteProxy(ep.Addr, dep0Flow(ep))
				p.Resolve = resolve
				// Distributed tracing originates here, at the same 1-in-N
				// rate as the board's span sampler, salted so trace IDs are
				// unique across (board, service) proxies. Lat mirrors the
				// client-observed RPC round trip into this board's stats
				// under the fleet per-service name (the rollup's latency
				// source; see the field docs for the safety argument).
				p.TraceEvery = traceEvery
				p.TraceOrigin = uint16(board)
				p.TraceSalt = salt
				p.ForwardedC = bsys.Stats.Counter("fleet.proxy.forwarded")
				p.Lat = bsys.Stats.Histogram(obs.ServiceRPCHist(name))
				return p
			},
		}},
	}
	if _, err := o.f.boards[board].Sys.Kernel.LoadApp(spec); err != nil {
		return err
	}
	o.placements = append(o.placements, Placement{App: spec.Name, Board: board})
	o.event(board, obs.EvConnect, "client doorway",
		fmt.Sprintf("proxy for %q on board %d (svc %d)", name, board, localSvc))
	return nil
}

// dep0Flow is the reply flow a client proxy listens on: the deployment
// flow itself. The backend bridge replies to the proxy's (node, flow) as
// carried by the transport, so request and reply share the flow ID, each
// on its own board.
func dep0Flow(ep Endpoint) uint16 { return ep.Addr.Flow }

// epochTick is the orchestrator's barrier scan: detect boards that died at
// least detect epochs ago and re-bind any service whose primary they
// hosted to the next live replica.
func (o *Orchestrator) epochTick() {
	o.runSched()
	o.stepMigrations()
	if len(o.dir.entries) == 0 {
		return
	}
	for _, name := range o.dir.Names() {
		en := o.dir.entries[name]
		cur := o.f.boards[en.backends[en.primary].Board]
		if !cur.dead || o.f.epochN-cur.deadEpoch < o.detect {
			continue
		}
		n := len(en.backends)
		for k := 1; k <= n; k++ {
			idx := (en.primary + k) % n
			if !o.f.boards[en.backends[idx].Board].dead {
				old := en.backends[en.primary].Board
				_ = o.dir.SetPrimary(name, idx)
				o.failovers++
				o.event(en.backends[idx].Board, obs.EvRebind,
					fmt.Sprintf("board %d dead", old),
					fmt.Sprintf("service %q primary board %d -> %d",
						name, old, en.backends[idx].Board))
				break
			}
		}
	}
}
