package cluster

import (
	"fmt"

	"apiary/internal/core"
	"apiary/internal/msg"
	"apiary/internal/obs"
	"apiary/internal/sim"
)

// Cross-board live migration: the orchestrator quiesces a service replica
// on its source board (the kernel's healthy-drain path — in-flight replies
// delivered, new requests bounced retryable), checkpoints it into the
// versioned snapshot blob, streams the blob across the cluster link over
// successive epochs under the link's byte budget, and at an epoch barrier
// activates the replica on the destination board: decode + restore, re-bind
// the directory backend, unload the source. The source stays authoritative
// until activation — a destination board killed mid-transfer aborts the
// move by simply resuming the source in place, with zero state loss.
//
// All phase transitions run on the coordinator at barriers, in job schedule
// order, so a migrated fleet run is bit-exact at any worker count.

// migration job phases.
const (
	migQuiesce  = iota // waiting for the source app to drain
	migTransfer        // snapshot taken; blob crossing the link
)

// migQuiesceBudget bounds the drain window in cycles, mirroring the
// on-board kernel timeout.
const migQuiesceBudget sim.Cycle = 200_000

// migrationJob is one in-flight cross-board replica move.
type migrationJob struct {
	name    string // directory service name
	replica int    // backend index being moved
	src     int    // source board
	dst     int    // destination board
	app     string // app name on the source board
	startAt sim.Cycle

	phase    int
	deadline sim.Cycle
	blob     []byte
	sent     int
	done     bool
}

// MigrationStatus is one job's externally visible progress row.
type MigrationStatus struct {
	Service string `json:"service"`
	Replica int    `json:"replica"`
	Src     int    `json:"src"`
	Dst     int    `json:"dst"`
	Phase   string `json:"phase"`
	Bytes   int    `json:"bytes"`
	Sent    int    `json:"sent"`
}

// Migrations lists in-flight cross-board migrations (barrier-consistent).
func (o *Orchestrator) Migrations() []MigrationStatus {
	var out []MigrationStatus
	for _, j := range o.migrations {
		if j.done {
			continue
		}
		st := MigrationStatus{
			Service: j.name, Replica: j.replica, Src: j.src, Dst: j.dst,
			Bytes: len(j.blob), Sent: j.sent, Phase: "quiesce",
		}
		if j.phase == migTransfer {
			st.Phase = "transfer"
		}
		out = append(out, st)
	}
	return out
}

// MigrationsDone and MigrationAborts report lifetime cross-board counts.
func (o *Orchestrator) MigrationsDone() uint64  { return o.migDone }
func (o *Orchestrator) MigrationAborts() uint64 { return o.migAborted }

// schedCmd is a deferred orchestrator directive — a scenario's migrate or
// drain line — fired at the first epoch barrier at or after its cycle.
type schedCmd struct {
	at      sim.Cycle
	drain   bool
	name    string
	replica int
	board   int
}

// MigrateReplicaAt schedules MigrateReplica(name, replica, auto-pick) at
// the first epoch barrier at or after cycle at.
func (o *Orchestrator) MigrateReplicaAt(name string, replica int, at sim.Cycle) {
	o.sched = append(o.sched, schedCmd{at: at, name: name, replica: replica})
}

// DrainBoardAt schedules DrainBoard(board) at the first epoch barrier at or
// after cycle at.
func (o *Orchestrator) DrainBoardAt(board int, at sim.Cycle) {
	o.sched = append(o.sched, schedCmd{at: at, drain: true, board: board})
}

// runSched fires due deferred directives in schedule order. A directive that
// cannot start (service gone, no capacity, replica already moving) is logged
// rather than retried: the decision log is the audit trail, and the fleet's
// failure paths own whatever made it unstartable.
func (o *Orchestrator) runSched() {
	kept := o.sched[:0]
	for _, c := range o.sched {
		if c.at > o.f.now {
			kept = append(kept, c)
			continue
		}
		var err error
		if c.drain {
			err = o.DrainBoard(c.board)
		} else {
			err = o.MigrateReplica(c.name, c.replica, -1)
		}
		if err != nil {
			o.event(c.board, obs.EvMigrateAbort, "scheduled directive", err.Error())
		}
	}
	o.sched = kept
}

// MigrateReplica starts moving a service replica to another board. dst < 0
// auto-picks the live board with the most free tiles, excluding every board
// already hosting a replica of the service (anti-affinity is preserved
// through the move). The call schedules the job; phases advance at epoch
// barriers. When the moving replica is the current primary and the service
// has a live sibling, the primary is re-bound away first, so clients keep a
// served endpoint through the whole window.
func (o *Orchestrator) MigrateReplica(name string, replica, dst int) error {
	rec, ok := o.deployed[name]
	if !ok {
		return fmt.Errorf("cluster: service %q was not deployed", name)
	}
	backends := o.dir.Backends(name)
	if replica < 0 || replica >= len(backends) {
		return fmt.Errorf("cluster: service %q has no replica %d", name, replica)
	}
	src := backends[replica].Board
	if o.f.boards[src].dead {
		return fmt.Errorf("cluster: replica %d of %q is on dead board %d", replica, name, src)
	}
	for _, j := range o.migrations {
		if !j.done && j.name == name && j.replica == replica {
			return fmt.Errorf("cluster: replica %d of %q is already migrating", replica, name)
		}
	}
	if dst < 0 {
		excl := map[int]bool{}
		for _, b := range backends {
			excl[b.Board] = true
		}
		need := len(rec.dep.Spec(replica).Accels) + 1
		picked, err := o.pickBoard(need, excl)
		if err != nil {
			return fmt.Errorf("cluster: migrating replica %d of %q: %w", replica, name, err)
		}
		dst = picked
	}
	if dst == src {
		return fmt.Errorf("cluster: replica %d of %q is already on board %d", replica, name, dst)
	}
	if dst >= len(o.f.boards) || o.f.boards[dst].dead {
		return fmt.Errorf("cluster: destination board %d is dead or unknown", dst)
	}

	// Shift the primary off the moving replica while a live sibling exists:
	// clients resolve per send, so they follow at the next epoch.
	if o.dir.Primary(name) == replica && len(backends) > 1 {
		for k := 1; k < len(backends); k++ {
			idx := (replica + k) % len(backends)
			if !o.f.boards[backends[idx].Board].dead {
				_ = o.dir.SetPrimary(name, idx)
				o.event(backends[idx].Board, obs.EvRebind, "migration",
					fmt.Sprintf("service %q primary %d -> %d for replica move",
						name, replica, idx))
				break
			}
		}
	}

	j := &migrationJob{
		name: name, replica: replica, src: src, dst: dst,
		app: rec.apps[replica], startAt: o.f.now,
		phase: migQuiesce, deadline: o.f.now + migQuiesceBudget,
	}
	o.migrations = append(o.migrations, j)
	o.event(src, obs.EvMigrateStart, "orchestrator",
		fmt.Sprintf("service %q replica %d board %d -> %d quiescing",
			name, replica, src, dst))
	if err := o.srcKernel(j).QuiesceApp(j.app); err != nil {
		o.abortJob(j, "quiesce: "+err.Error(), true)
		return err
	}
	return nil
}

// DrainBoard migrates every deployed replica off a board (maintenance
// drain): each replica hosted there is scheduled onto an auto-picked
// destination. Replicas that cannot be placed are reported; the rest move.
func (o *Orchestrator) DrainBoard(board int) error {
	if board < 0 || board >= len(o.f.boards) {
		return fmt.Errorf("cluster: no board %d", board)
	}
	var firstErr error
	for _, name := range o.dir.Names() {
		for r, b := range o.dir.Backends(name) {
			if b.Board != board {
				continue
			}
			if err := o.MigrateReplica(name, r, -1); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	return firstErr
}

func (o *Orchestrator) srcKernel(j *migrationJob) *core.Kernel {
	return o.f.boards[j.src].Sys.Kernel
}

// linkBytesPerEpoch is the cluster-link byte budget per epoch: line rate
// over the epoch's wall-clock duration.
func (o *Orchestrator) linkBytesPerEpoch() int {
	mhz := o.f.boards[0].Sys.Engine.ClockMHz()
	epochNs := float64(o.f.epoch) * 1000.0 / float64(mhz)
	n := int(o.f.cfg.Link.Gbps * epochNs / 8.0)
	if n < 1 {
		n = 1
	}
	return n
}

// abortJob resumes the source in place (when it is still alive) and
// retires the job. The source never stopped holding the authoritative
// state, so an abort is just "un-pause".
func (o *Orchestrator) abortJob(j *migrationJob, cause string, resume bool) {
	j.done = true
	o.migAborted++
	if resume && !o.f.boards[j.src].dead {
		_ = o.srcKernel(j).ResumeApp(j.app)
	}
	o.event(j.src, obs.EvMigrateAbort, cause,
		fmt.Sprintf("service %q replica %d stays on board %d, source authoritative",
			j.name, j.replica, j.src))
}

// stepMigrations advances every live job one barrier step, in schedule
// order. Runs on the coordinator inside the epoch barrier.
func (o *Orchestrator) stepMigrations() {
	for _, j := range o.migrations {
		if j.done {
			continue
		}
		if o.f.boards[j.src].dead {
			// The source died mid-move: there is nothing to resume and the
			// snapshot (if any) is not activated — the board-kill failover
			// path owns recovery, exactly as if no migration were running.
			o.abortJob(j, fmt.Sprintf("source board %d died", j.src), false)
			continue
		}
		if o.f.boards[j.dst].dead {
			o.abortJob(j, fmt.Sprintf("destination board %d died", j.dst), true)
			continue
		}
		switch j.phase {
		case migQuiesce:
			if !o.srcKernel(j).AppQuiescent(j.app) {
				if o.f.now >= j.deadline {
					o.abortJob(j, "quiesce-timeout", true)
				}
				continue
			}
			snap, err := o.srcKernel(j).Checkpoint(j.app)
			if err != nil {
				o.abortJob(j, "checkpoint: "+err.Error(), true)
				continue
			}
			j.blob = core.EncodeSnapshot(snap)
			j.phase = migTransfer
			o.event(j.src, obs.EvMigrateSnapshot, "quiescent",
				fmt.Sprintf("service %q replica %d snapshot %d bytes",
					j.name, j.replica, len(j.blob)))
		case migTransfer:
			j.sent += o.linkBytesPerEpoch()
			if j.sent < len(j.blob) {
				o.event(j.src, obs.EvMigrateTransfer, "link budget",
					fmt.Sprintf("service %q replica %d: %d/%d bytes to board %d",
						j.name, j.replica, j.sent, len(j.blob), j.dst))
				continue
			}
			j.sent = len(j.blob)
			o.activate(j)
		}
	}
	// Compact retired jobs so long runs do not accumulate them.
	kept := o.migrations[:0]
	for _, j := range o.migrations {
		if !j.done {
			kept = append(kept, j)
		}
	}
	o.migrations = kept
}

// activate lands the replica on the destination at this barrier: decode the
// transferred blob (the wire path is exercised on every move), rebuild the
// replica spec with the bridge bound to the destination board, restore,
// re-point the directory backend, and only then unload the source.
func (o *Orchestrator) activate(j *migrationJob) {
	rec := o.deployed[j.name]
	snap, err := core.DecodeSnapshot(j.blob)
	if err != nil {
		o.abortJob(j, "decode: "+err.Error(), true)
		return
	}
	spec := o.replicaSpec(rec.dep, j.replica, j.dst)
	if _, err := o.f.boards[j.dst].Sys.Kernel.RestoreApp(spec, snap); err != nil {
		o.abortJob(j, "restore: "+err.Error(), true)
		return
	}
	ep := Endpoint{
		Board: j.dst,
		Addr:  msg.NetAddr{Node: uint32(o.f.boards[j.dst].Node), Flow: rec.dep.Flow},
	}
	if err := o.dir.UpdateBackend(j.name, j.replica, ep); err != nil {
		// Unreachable with a registered service; fail safe toward the new
		// copy being unreachable rather than double-served.
		_ = o.f.boards[j.dst].Sys.Kernel.UnloadApp(spec.Name)
		o.abortJob(j, "rebind: "+err.Error(), true)
		return
	}
	_ = o.srcKernel(j).UnloadApp(j.app)
	j.done = true
	o.migDone++
	o.placements = append(o.placements, Placement{App: spec.Name, Board: j.dst})
	o.event(j.dst, obs.EvMigrateDone, "transfer complete",
		fmt.Sprintf("service %q replica %d resumed on board %d (%d bytes, %d cycles)",
			j.name, j.replica, j.dst, len(j.blob), o.f.now-j.startAt))
}
