package cluster

import (
	"io"

	"apiary/internal/obs"
	"apiary/internal/sim"
)

// This file is the fleet's observability surface: the metrics federation
// glue between per-board telemetry (sim.Stats, obs.Recorder, obs.EventLog)
// and the fleet-level views (merged Prometheus text, the stitched
// multi-board trace, the merged decision log, the dashboard payload).
//
// Everything here is coordinator-side and barrier-synchronized: callers
// must only invoke these methods between epochs (or after the fleet is
// done), where the epoch WaitGroup gives the happens-before edge over every
// board goroutine. That is the same edge the frame exchange relies on, so
// observation adds no locks and cannot perturb the simulation.

// defaultLinkLogCap bounds the traced cluster-hop log.
const defaultLinkLogCap = 4096

// Aggregator returns the fleet metrics federation point.
func (f *Fleet) Aggregator() *obs.Aggregator { return f.agg }

// LinkHops returns the retained traced cluster-link traversals, in exchange
// order (deterministic).
func (f *Fleet) LinkHops() []obs.LinkHop {
	return append([]obs.LinkHop(nil), f.linkLog...)
}

// TracedLinkFrames reports how many cross-board frames carried a trace
// context (including hops past the log cap).
func (f *Fleet) TracedLinkFrames() uint64 { return f.linkTotal }

// Barriers lists the epoch-barrier cycles retained by the pulse ring.
func (f *Fleet) Barriers() []sim.Cycle {
	ps := f.agg.Pulses()
	out := make([]sim.Cycle, len(ps))
	for i, p := range ps {
		out[i] = p.Cycle
	}
	return out
}

// ClusterGauges are the fleet-level counters no single board owns: frame
// exchange volume, cluster-link drops, and naming-plane churn.
func (f *Fleet) ClusterGauges() []obs.FleetGauge {
	return []obs.FleetGauge{
		{Name: "fleet.frames_relayed", Value: f.relayed},
		{Name: "fleet.frames_lost", Value: f.lost},
		{Name: "fleet.frames_to_dead", Value: f.toDead},
		{Name: "fleet.traced_link_frames", Value: f.linkTotal},
		{Name: "fleet.failovers", Value: f.orch.Failovers()},
		{Name: "fleet.rebinds", Value: f.dir.Rebinds()},
	}
}

// ServiceRollups computes the per-service fleet summary for every directory
// name: goodput from the replicas' gateway bridges, client-observed RPC
// latency from the connected proxies.
func (f *Fleet) ServiceRollups() []obs.ServiceRollup {
	names := f.dir.Names()
	replicas := make(map[string]int, len(names))
	for _, n := range names {
		replicas[n] = len(f.dir.Backends(n))
	}
	return f.agg.ServiceRollups(names, replicas)
}

// WriteProm renders the federated Prometheus text for the whole fleet.
func (f *Fleet) WriteProm(w io.Writer) {
	f.agg.WriteFleetProm(w, f.now, f.boards[0].Sys.Engine.ClockMHz(),
		f.ClusterGauges(), f.ServiceRollups())
}

// MergedEvents is the fleet decision log: every board's kernel log plus the
// orchestrator's, on one (cycle, board)-sorted timeline.
func (f *Fleet) MergedEvents() []obs.Event { return f.agg.MergedEvents() }

// WriteEventsJSON renders the merged decision log (the /events.json body).
func (f *Fleet) WriteEventsJSON(w io.Writer) error {
	return obs.WriteEventsJSON(w, f.MergedEvents())
}

// WriteTraceJSON renders the stitched multi-board Chrome/Perfetto timeline:
// per-board process rows of trace-carrying spans, the cluster-link row, and
// epoch-barrier markers (the /trace.json body).
func (f *Fleet) WriteTraceJSON(w io.Writer) error {
	boards := make([]obs.BoardSpans, 0, len(f.boards))
	for _, b := range f.boards {
		boards = append(boards, obs.BoardSpans{
			Board: b.ID, Entries: b.Sys.Obs.Entries(),
		})
	}
	return obs.ExportFleetChrome(w, boards, f.linkLog, f.Barriers(),
		float64(f.boards[0].Sys.Engine.ClockMHz()))
}

// BoardStatus is one board's row in the fleet dashboard.
type BoardStatus struct {
	ID          int    `json:"id"`
	Dead        bool   `json:"dead"`
	Delivered   uint64 `json:"delivered"`
	Quarantines uint64 `json:"quarantines"`
	Recoveries  uint64 `json:"recoveries"`
	Failovers   uint64 `json:"failovers"`
	Spans       uint64 `json:"spans"`
	Events      uint64 `json:"events"`
}

// FleetStatus is the dashboard payload behind /fleet.json and the
// `apiaryctl fleet` view: fleet shape, per-board health/goodput, the recent
// pulse tail (the heatmap strip), the decision-log tail, and the
// per-service rollups.
type FleetStatus struct {
	Now      sim.Cycle `json:"now"`
	ClockMHz uint64    `json:"clock_mhz"`
	Epoch    sim.Cycle `json:"epoch_cycles"`
	Epochs   uint64    `json:"epochs"`
	Relayed  uint64    `json:"relayed"`
	Lost     uint64    `json:"lost"`
	ToDead   uint64    `json:"to_dead"`
	Rebinds  uint64    `json:"rebinds"`
	MigDone  uint64    `json:"migrations_done"`
	MigAbort uint64    `json:"migration_aborts"`
	// Migrations lists in-flight cross-board moves (phase, bytes sent) —
	// the rows behind the apiaryctl fleet migrate: line.
	Migrations []MigrationStatus   `json:"migrations,omitempty"`
	Boards     []BoardStatus       `json:"boards"`
	Pulses     []obs.Pulse         `json:"pulses"`
	Events     []obs.Event         `json:"events"`
	Services   []obs.ServiceRollup `json:"services"`
}

// Status assembles the dashboard payload, retaining at most pulseTail
// pulses and eventTail events (0 keeps everything retained).
func (f *Fleet) Status(pulseTail, eventTail int) FleetStatus {
	st := FleetStatus{
		Now:      f.now,
		ClockMHz: f.boards[0].Sys.Engine.ClockMHz(),
		Epoch:    f.epoch,
		Epochs:   f.agg.Epochs(),
		Relayed:  f.relayed,
		Lost:     f.lost,
		ToDead:   f.toDead,
		Rebinds:  f.dir.Rebinds(),
		Services: f.ServiceRollups(),
	}
	if f.orch != nil {
		st.MigDone = f.orch.MigrationsDone()
		st.MigAbort = f.orch.MigrationAborts()
		st.Migrations = f.orch.Migrations()
	}
	for _, b := range f.boards {
		k := b.Sys.Kernel
		st.Boards = append(st.Boards, BoardStatus{
			ID: b.ID, Dead: b.dead,
			Delivered:   b.Sys.Stats.Counter("noc.msgs_delivered").Value(),
			Quarantines: k.Quarantines(),
			Recoveries:  k.Recoveries(),
			Failovers:   k.Failovers(),
			Spans:       b.Sys.Obs.Total(),
			Events:      b.Sys.Events.Total(),
		})
	}
	st.Pulses = tail(f.agg.Pulses(), pulseTail)
	st.Events = tail(f.MergedEvents(), eventTail)
	return st
}

// tail keeps the last n elements (0 = all).
func tail[T any](s []T, n int) []T {
	if n > 0 && len(s) > n {
		s = s[len(s)-n:]
	}
	return s
}
