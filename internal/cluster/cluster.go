// Package cluster runs a fleet of Apiary boards — each a complete
// core.System with its own engine, NoC, kernel and private network fabric —
// joined by the simulated datacenter network and governed by an
// orchestrator (ROADMAP item 1, the Funky direction: cloud-native FPGA
// virtualization and orchestration).
//
// # Lookahead-synchronized board parallelism
//
// Boards tick concurrently on separate goroutines under conservative-PDES
// synchronization. The only way state crosses a board boundary is a netsim
// frame, and a cross-board frame pays at least the cross-board propagation
// latency L before it can be observed at the destination. That latency is
// the lookahead: the fleet advances in epochs of L cycles, every board
// free-running (idle-skip, express bypass and the sharded tick scheduler
// all still apply inside the board) from one epoch boundary to the next
// with no synchronization at all. Frames produced during an epoch are
// staged in per-board outboxes and exchanged only at the barrier, where the
// coordinator applies them to destination engines in deterministic
// (source board ID, send order) order. Every frame's arrival cycle is
// provably past the barrier, so the exchange can never violate causality —
// and because each board's epoch run is a pure function of its own state
// plus the frames injected at prior barriers, a fleet run is bit-exact at
// any worker count and any GOMAXPROCS (TestFleetDifferential).
//
// Compare PR 2's intra-board parallelism, which pays a barrier per cycle:
// the fleet pays one barrier per ~L cycles (500 at the 1 µs default link
// latency), which is why board-level scaling is near-linear.
package cluster

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"apiary/internal/core"
	"apiary/internal/netsim"
	"apiary/internal/obs"
	"apiary/internal/sim"
)

// BoardNode is the datacenter-network address of board i's NIC. The range
// is chosen clear of the low IDs experiments use for soft endpoints on a
// board's private fabric.
func BoardNode(i int) netsim.NodeID { return netsim.NodeID(0x1000 + i) }

// Config parameterizes a fleet.
type Config struct {
	// Boards is the fleet size.
	Boards int
	// Workers is how many goroutines tick boards concurrently. 0 means
	// GOMAXPROCS. A fleet run is bit-exact at any worker count — Workers
	// is a pure speedup knob, like sim.ParallelMode one level down.
	Workers int
	// Seed is the fleet master seed; each board's engine seed and fabric
	// loss seed are derived from it, so boards never share RNG streams.
	Seed uint64
	// Board is the per-board template (mesh dims, shards, detectors,
	// span sampling, ...). Seed, NodeID, WithNet, ExtFabric, NetSeed and
	// LinkLatencyNs are overridden per board by the fleet.
	Board core.SystemConfig
	// Link is every board's uplink into the cluster spine. LatencyNs sets
	// the lookahead (default 1000 ns => 500-cycle epochs at 250 MHz);
	// Gbps defaults to the board's Ethernet line rate. LossProb applies
	// to cross-board frames, drawn from the fleet RNG in deterministic
	// exchange order.
	Link netsim.LinkConfig
	// DetectEpochs is how many epochs after a board dies the orchestrator
	// notices and fails its services over (health-probe latency). Default 2.
	DetectEpochs int
}

// relay is one cross-board frame staged for the next barrier exchange.
type relay struct {
	fr  netsim.Frame
	at  sim.Cycle // absolute arrival cycle at the destination engine
	dst int       // destination board
}

// Board is one Apiary instance in the fleet.
type Board struct {
	ID   int
	Sys  *core.System
	Node netsim.NodeID

	fleet     *Fleet
	dead      bool
	deadEpoch uint64
	outbox    []relay // staged by this board's goroutine, drained at barriers
}

// Dead reports whether the board has been killed.
func (b *Board) Dead() bool { return b.dead }

// RemoteLink implements netsim.Gateway: any registered fleet node is
// reachable over the uniform cluster link.
func (b *Board) RemoteLink(dst netsim.NodeID) (netsim.LinkConfig, bool) {
	if _, ok := b.fleet.nodeBoard[dst]; !ok {
		return netsim.LinkConfig{}, false
	}
	return b.fleet.cfg.Link, true
}

// Forward implements netsim.Gateway: the frame left this board's uplink at
// depart; it arrives after cross-board propagation, which is at least one
// full epoch — the conservative-lookahead invariant.
func (b *Board) Forward(fr netsim.Frame, depart sim.Cycle) {
	b.outbox = append(b.outbox, relay{
		fr: fr, at: depart + b.fleet.prop, dst: b.fleet.nodeBoard[fr.Dst],
	})
}

type scheduledKill struct {
	board int
	at    sim.Cycle
}

// Fleet is a running multi-board cluster.
type Fleet struct {
	cfg       Config
	boards    []*Board
	nodeBoard map[netsim.NodeID]int
	epoch     sim.Cycle // lookahead: cycles per synchronization round
	prop      sim.Cycle // cross-board propagation (== epoch)
	now       sim.Cycle
	epochN    uint64
	rng       *sim.RNG // cross-board loss draws (deterministic order)
	dir       *Directory
	orch      *Orchestrator
	kills     []scheduledKill
	agg       *obs.Aggregator

	// linkLog records traced frames' cluster-link traversals, written by the
	// coordinator during exchange (deterministic order). Bounded: the first
	// linkCap hops are kept, later ones only counted.
	linkLog   []obs.LinkHop
	linkCap   int
	linkTotal uint64

	// OnEpoch, when set, runs on the coordinator after every barrier
	// (exchange + orchestrator scan) — the deterministic place for
	// experiment logic to intervene mid-run.
	OnEpoch func(now sim.Cycle)

	relayed uint64
	lost    uint64
	toDead  uint64
}

// mix64 is the splitmix64 finalizer — the per-board seed deriver.
func mix64(v uint64) uint64 {
	v += 0x9E3779B97F4A7C15
	v ^= v >> 30
	v *= 0xBF58476D1CE4E5B9
	v ^= v >> 27
	v *= 0x94D049BB133111EB
	v ^= v >> 31
	if v == 0 {
		v = 1
	}
	return v
}

// New boots a fleet: cfg.Boards systems, each with a private fabric gated
// into the cluster interconnect, plus the service directory and the
// orchestrator.
func New(cfg Config) (*Fleet, error) {
	if cfg.Boards < 1 {
		return nil, fmt.Errorf("cluster: need at least 1 board, got %d", cfg.Boards)
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Link.LatencyNs == 0 {
		cfg.Link.LatencyNs = 1000
	}
	if cfg.DetectEpochs == 0 {
		cfg.DetectEpochs = 2
	}
	f := &Fleet{
		cfg:       cfg,
		nodeBoard: make(map[netsim.NodeID]int),
		rng:       sim.NewRNG(mix64(cfg.Seed ^ 0xF1EE7)),
		dir:       NewDirectory(),
		agg:       obs.NewAggregator(),
		linkCap:   defaultLinkLogCap,
	}
	for i := 0; i < cfg.Boards; i++ {
		bc := cfg.Board
		bc.Seed = mix64(cfg.Seed ^ (uint64(i)<<20 | 1))
		bc.NetSeed = mix64(cfg.Seed ^ (uint64(i)<<20 | 2))
		bc.NodeID = BoardNode(i)
		bc.WithNet = true
		bc.ExtFabric = nil
		bc.LinkLatencyNs = cfg.Link.LatencyNs
		sys, err := core.NewSystem(bc)
		if err != nil {
			return nil, fmt.Errorf("cluster: board %d: %w", i, err)
		}
		b := &Board{ID: i, Sys: sys, Node: bc.NodeID, fleet: f}
		f.boards = append(f.boards, b)
		f.nodeBoard[b.Node] = i
		f.agg.AddSource(obs.Source{
			Board: i, Stats: sys.Stats, Wins: sys.Windows,
			Rec: sys.Obs, Events: sys.Events,
		})
	}
	if f.cfg.Link.Gbps == 0 {
		f.cfg.Link.Gbps = f.boards[0].Sys.Board.NewEthernet().LineRateGbps()
	}
	e0 := f.boards[0].Sys.Engine
	f.prop = e0.CyclesForNanos(2 * cfg.Link.LatencyNs)
	if f.prop < 1 {
		f.prop = 1
	}
	f.epoch = f.prop
	for _, b := range f.boards {
		if b.Sys.Engine.ClockMHz() != e0.ClockMHz() {
			return nil, fmt.Errorf("cluster: boards disagree on clock frequency")
		}
		b.Sys.Fabric.SetGateway(b)
	}
	f.orch = newOrchestrator(f, cfg.DetectEpochs)
	return f, nil
}

// Board returns board i.
func (f *Fleet) Board(i int) *Board { return f.boards[i] }

// Boards reports the fleet size.
func (f *Fleet) Boards() int { return len(f.boards) }

// Epoch reports the lookahead: cycles between synchronization barriers.
func (f *Fleet) Epoch() sim.Cycle { return f.epoch }

// Now reports the fleet clock; every live board's engine agrees with it at
// barriers.
func (f *Fleet) Now() sim.Cycle { return f.now }

// Directory returns the fleet naming plane.
func (f *Fleet) Directory() *Directory { return f.dir }

// Orchestrator returns the fleet orchestrator.
func (f *Fleet) Orchestrator() *Orchestrator { return f.orch }

// Relayed reports cross-board frames delivered at barriers.
func (f *Fleet) Relayed() uint64 { return f.relayed }

// LostFrames reports cross-board frames dropped by link loss.
func (f *Fleet) LostFrames() uint64 { return f.lost }

// DroppedToDead reports cross-board frames dropped because their
// destination board was dead.
func (f *Fleet) DroppedToDead() uint64 { return f.toDead }

// RegisterNode routes an extra fabric node (a soft endpoint an experiment
// attached to some board's private fabric) for cross-board delivery.
func (f *Fleet) RegisterNode(id netsim.NodeID, board int) error {
	if b, dup := f.nodeBoard[id]; dup {
		return fmt.Errorf("cluster: node %d already on board %d", id, b)
	}
	if board < 0 || board >= len(f.boards) {
		return fmt.Errorf("cluster: no board %d", board)
	}
	f.nodeBoard[id] = board
	return nil
}

// KillBoardAt schedules whole-board loss: at the first barrier at or after
// cycle at, the board stops ticking, frames addressed to it are dropped,
// and the orchestrator (after its detection delay) fails its services over.
func (f *Fleet) KillBoardAt(board int, at sim.Cycle) {
	f.kills = append(f.kills, scheduledKill{board: board, at: at})
}

// KillBoard kills a board immediately (between runs / at an OnEpoch hook).
func (f *Fleet) KillBoard(board int) {
	b := f.boards[board]
	if !b.dead {
		b.dead = true
		b.deadEpoch = f.epochN
		f.agg.FleetEvents().Add(obs.Event{
			Cycle: f.now, Board: board, Kind: obs.EvBoardKill,
			Cause:  "injected whole-board loss",
			Detail: fmt.Sprintf("board %d stopped ticking at epoch %d", board, f.epochN),
		})
	}
}

func (f *Fleet) applyKills() {
	for _, k := range f.kills {
		if k.at <= f.now && !f.boards[k.board].dead {
			f.KillBoard(k.board)
		}
	}
}

// workerCount resolves the effective number of board-tick goroutines.
func (f *Fleet) workerCount(live int) int {
	w := f.cfg.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > live {
		w = live
	}
	return w
}

// runEpoch advances every live board by step cycles concurrently, then
// performs the barrier work: kills, frame exchange, orchestrator scan, and
// the OnEpoch hook — all on the coordinator goroutine, in deterministic
// order. The sync.WaitGroup barrier is also the happens-before edge that
// lets board goroutines read coordinator-written state (the directory)
// race-free.
func (f *Fleet) runEpoch(step sim.Cycle) {
	live := make([]*Board, 0, len(f.boards))
	for _, b := range f.boards {
		if !b.dead {
			live = append(live, b)
		}
	}
	if w := f.workerCount(len(live)); w <= 1 {
		for _, b := range live {
			b.Sys.Engine.Run(step)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for i := 0; i < w; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					n := int(next.Add(1)) - 1
					if n >= len(live) {
						return
					}
					live[n].Sys.Engine.Run(step)
				}
			}()
		}
		wg.Wait()
	}
	f.now += step
	f.epochN++
	f.applyKills()
	f.exchange()
	f.orch.epochTick()
	// The barrier pulse: every board goroutine is parked (the WaitGroup
	// above is the happens-before edge), so the aggregator's reads of board
	// counters are race-free and see exactly the epoch's end state.
	f.agg.Pulse(f.now)
	if f.OnEpoch != nil {
		f.OnEpoch(f.now)
	}
}

// exchange applies every staged cross-board frame to its destination
// engine. Boards are visited in ID order and each outbox preserves send
// order, so injection order — and therefore the destination engine's event
// sequence — is (source board, send seq), independent of workers.
func (f *Fleet) exchange() {
	for _, src := range f.boards {
		for _, rf := range src.outbox {
			dst := f.boards[rf.dst]
			if dst.dead {
				f.toDead++
				continue
			}
			if p := f.cfg.Link.LossProb; p > 0 && f.rng.Bool(p) {
				f.lost++
				continue
			}
			f.relayed++
			if rf.fr.Trace.Valid() {
				// Trace the cluster hop: the frame left src at the send
				// cycle (arrival minus propagation) and lands at rf.at.
				// Pure observation — recorded after the delivery decision.
				f.linkTotal++
				if len(f.linkLog) < f.linkCap {
					f.linkLog = append(f.linkLog, obs.LinkHop{
						Trace: rf.fr.Trace, SrcBoard: src.ID, DstBoard: rf.dst,
						Depart: rf.at - f.prop, Arrive: rf.at,
					})
				}
			}
			_ = dst.Sys.Fabric.InjectAt(rf.fr, rf.at)
		}
		src.outbox = src.outbox[:0]
	}
}

// Run advances the fleet n cycles in lookahead epochs.
func (f *Fleet) Run(n sim.Cycle) {
	for n > 0 {
		step := f.epoch
		if step > n {
			step = n
		}
		f.runEpoch(step)
		n -= step
	}
}

// RunUntil advances the fleet until cond holds (checked at barriers, where
// the fleet state is consistent) or the budget expires.
func (f *Fleet) RunUntil(cond func() bool, budget sim.Cycle) bool {
	for budget > 0 {
		if cond() {
			return true
		}
		step := f.epoch
		if step > budget {
			step = budget
		}
		f.runEpoch(step)
		budget -= step
	}
	return cond()
}

// Close releases every board's worker pool.
func (f *Fleet) Close() {
	for _, b := range f.boards {
		b.Sys.Engine.Close()
	}
}
