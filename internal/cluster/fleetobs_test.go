package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"apiary/internal/apps"
)

// runFleetObs is runFleet with a parameterized span sampling rate. It
// returns two fingerprints: the full one (stats + spans + clients) and a
// simulation-only one with the recorded-span lines stripped. The full
// fingerprint must be invariant across worker/shard counts at a fixed
// sampling rate; the sim fingerprint must be invariant across sampling
// rates too — tracing is pure observation and must never steer the
// simulation.
func runFleetObs(t *testing.T, seed uint64, shards, workers, spanEvery int) (full, sim string) {
	t.Helper()
	cfg := fleetCfg(16, seed, shards, workers)
	cfg.Board.SpanSampleEvery = spanEvery
	fl, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer fl.Close()
	if _, err := fl.Orchestrator().DeployService(kvDeployment(2)); err != nil {
		t.Fatalf("DeployService: %v", err)
	}
	var reqs []*apps.Requester
	for _, b := range []int{2, 5, 9, 14} {
		reqs = append(reqs, addClient(t, fl, b, 5, nil))
	}
	done := func() bool {
		for _, r := range reqs {
			if !r.Done() {
				return false
			}
		}
		return true
	}
	if !fl.RunUntil(done, 400_000) {
		t.Fatalf("spanEvery=%d shards=%d workers=%d: clients not done by budget",
			spanEvery, shards, workers)
	}
	for i, r := range reqs {
		if r.Responses() != 5 || r.Errors() != 0 {
			t.Fatalf("client %d: resp=%d errs=%d, want 5/0", i, r.Responses(), r.Errors())
		}
	}
	if spanEvery > 0 && fl.TracedLinkFrames() == 0 {
		t.Fatalf("spanEvery=%d: no cross-board frame carried a trace context", spanEvery)
	}
	if spanEvery == 0 && fl.TracedLinkFrames() != 0 {
		t.Fatalf("tracing disabled but %d link frames traced", fl.TracedLinkFrames())
	}
	full = fingerprint(fl, reqs)
	var sb strings.Builder
	for _, line := range strings.SplitAfter(full, "\n") {
		if !strings.HasPrefix(line, "span ") {
			sb.WriteString(line)
		}
	}
	return full, sb.String()
}

// TestFleetObsDifferential is the observability chaos test: a 16-board
// fleet run with tracing off, 1-in-64, and every-packet sampling, each
// under 1 and 4 workers and with sharded engines. Per sampling rate the
// full fingerprint (including the recorded span set) must be bit-exact
// across execution strategies; across sampling rates the span-free sim
// fingerprint must be bit-exact — observation cannot perturb timing.
func TestFleetObsDifferential(t *testing.T) {
	const seed = 12345
	type combo struct{ shards, workers int }
	combos := []combo{{0, 1}, {0, 4}, {3, 4}}
	var simBase string
	var simFrom combo
	for _, spanEvery := range []int{0, 64, 1} {
		var fullBase string
		for i, c := range combos {
			full, sim := runFleetObs(t, seed, c.shards, c.workers, spanEvery)
			if i == 0 {
				fullBase = full
			} else if full != fullBase {
				t.Fatalf("spanEvery=%d: full fingerprint diverged between %+v and %+v:\n%s",
					spanEvery, combos[0], c, firstDiff(fullBase, full))
			}
			if simBase == "" {
				simBase, simFrom = sim, c
			} else if sim != simBase {
				t.Fatalf("sim fingerprint diverged between %+v and spanEvery=%d %+v — tracing perturbed the simulation:\n%s",
					simFrom, spanEvery, c, firstDiff(simBase, sim))
			}
		}
	}
}

// TestFleetStitchedTrace checks the merged Chrome export: one cross-board
// request must render as spans on at least two distinct board process rows
// plus a cluster-link hop on the dedicated cluster row.
func TestFleetStitchedTrace(t *testing.T) {
	cfg := fleetCfg(4, 7, 0, 1)
	cfg.Board.SpanSampleEvery = 1 // trace every packet
	fl, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer fl.Close()
	if _, err := fl.Orchestrator().DeployService(kvDeployment(2)); err != nil {
		t.Fatalf("DeployService: %v", err)
	}
	req := addClient(t, fl, 2, 5, nil)
	if !fl.RunUntil(req.Done, 400_000) {
		t.Fatal("client not done by budget")
	}
	if req.Responses() != 5 || req.Errors() != 0 {
		t.Fatalf("client: resp=%d errs=%d, want 5/0", req.Responses(), req.Errors())
	}
	if len(fl.LinkHops()) == 0 {
		t.Fatal("no traced cluster-link hops retained")
	}

	var buf bytes.Buffer
	if err := fl.WriteTraceJSON(&buf); err != nil {
		t.Fatalf("WriteTraceJSON: %v", err)
	}
	var evs []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &evs); err != nil {
		t.Fatalf("merged trace not valid JSON: %v", err)
	}
	boardsByTrace := map[string]map[float64]bool{} // trace hex -> board pids
	linkTraces := map[string]bool{}                // trace hex -> seen on cluster row
	for _, e := range evs {
		if e["ph"] != "X" {
			continue
		}
		args, _ := e["args"].(map[string]any)
		tr, _ := args["trace"].(string)
		if tr == "" {
			continue
		}
		if e["cat"] == "cluster" {
			linkTraces[tr] = true
			continue
		}
		if boardsByTrace[tr] == nil {
			boardsByTrace[tr] = map[float64]bool{}
		}
		boardsByTrace[tr][e["pid"].(float64)] = true
	}
	stitched := false
	for tr, pids := range boardsByTrace {
		if len(pids) >= 2 && linkTraces[tr] {
			stitched = true
			break
		}
	}
	if !stitched {
		var detail strings.Builder
		for tr, pids := range boardsByTrace {
			fmt.Fprintf(&detail, "  trace %s: %d board rows, link=%v\n", tr, len(pids), linkTraces[tr])
		}
		t.Fatalf("no trace stitched across >=2 boards with a cluster-link hop:\n%s", detail.String())
	}
}
