package bench

import (
	"strconv"
	"strings"
	"testing"
)

// parse helpers for asserting on rendered cells.
func cellF(t *testing.T, r Result, row int, col string) float64 {
	t.Helper()
	s := r.Cell(row, col)
	if s == "" {
		t.Fatalf("%s: missing cell (%d, %s)", r.ID, row, col)
	}
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "x"), 64)
	if err != nil {
		t.Fatalf("%s: cell (%d,%s)=%q not numeric", r.ID, row, col, s)
	}
	return v
}

func TestResultFormatting(t *testing.T) {
	r := Result{ID: "X", Title: "t", Header: []string{"A", "B"}}
	r.AddRow("1", "2")
	r.Note("n %d", 3)
	out := r.String()
	for _, want := range []string{"== X: t ==", "A", "1", "note: n 3"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	if r.Cell(0, "B") != "2" || r.Cell(0, "Z") != "" || r.Cell(5, "A") != "" {
		t.Fatal("Cell accessor wrong")
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("e1"); !ok {
		t.Fatal("e1 missing")
	}
	if _, ok := ByID("nope"); ok {
		t.Fatal("bogus id found")
	}
	seen := map[string]bool{}
	for _, e := range All {
		if seen[e.ID] {
			t.Fatalf("duplicate experiment id %s", e.ID)
		}
		seen[e.ID] = true
		if e.Run == nil || e.Title == "" {
			t.Fatalf("experiment %s incomplete", e.ID)
		}
	}
}

func TestE1MatchesPaperTable(t *testing.T) {
	r := E1Table1()
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	if r.Cell(3, "Part") != "VU29P" || r.Cell(3, "LogicCells") != "3780000" {
		t.Fatalf("VU29P row wrong: %v", r.Rows[3])
	}
	if r.Cell(0, "LogicCells") != "582720" {
		t.Fatalf("XC7V585T row wrong: %v", r.Rows[0])
	}
}

func TestE2TwoAppsIsolated(t *testing.T) {
	r := E2Figure1()
	if len(r.Rows) != 9 {
		t.Fatalf("tile rows = %d, want 9", len(r.Rows))
	}
	joined := strings.Join(r.Notes, "\n")
	if !strings.Contains(joined, "app1 completed 20/20") ||
		!strings.Contains(joined, "app2 20/20") {
		t.Fatalf("apps did not complete:\n%s", joined)
	}
	if !strings.Contains(joined, "probe into app1's encoder: 1 errors, 0 successes") {
		t.Fatalf("isolation probe not denied:\n%s", joined)
	}
}

func TestE3OverheadShape(t *testing.T) {
	r := E3MonitorOverhead()
	if len(r.Rows) != 4*5 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// Overhead grows with tiles within a part and shrinks with part size.
	if cellF(t, r, 0, "Overhead%") >= cellF(t, r, 4, "Overhead%") {
		t.Fatal("overhead not increasing with tiles")
	}
	// 64 tiles on VU29P (last row) must still be modest (< 30%).
	last := len(r.Rows) - 1
	if v := cellF(t, r, last, "Overhead%"); v <= 0 || v >= 30 {
		t.Fatalf("VU29P 64-tile overhead = %v%%", v)
	}
}

func TestE4DirectWins(t *testing.T) {
	r := E4Latency()
	if len(r.Rows) != len(e45Sizes) {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for i := range r.Rows {
		dp50 := cellF(t, r, i, "Direct-p50us")
		hp50 := cellF(t, r, i, "Hosted-p50us")
		if dp50 <= 0 || hp50 <= dp50 {
			t.Fatalf("row %d: direct %v us, hosted %v us — direct must win", i, dp50, hp50)
		}
	}
	// The advantage is largest for small requests.
	if cellF(t, r, 0, "Speedup-p50") <= cellF(t, r, len(r.Rows)-1, "Speedup-p50")*0.8 {
		t.Fatal("small-request speedup should not be dwarfed by large-request speedup")
	}
}

func TestE5EnergyShape(t *testing.T) {
	r := E5Energy()
	for i := range r.Rows {
		ratio := cellF(t, r, i, "Hosted/Direct")
		if ratio <= 2 {
			t.Fatalf("row %d: hosted/direct energy = %v, want > 2", i, ratio)
		}
		if cellF(t, r, i, "HostedCPU%") < 50 {
			t.Fatalf("row %d: CPU should dominate hosted energy", i)
		}
	}
}

func TestE6IPCShape(t *testing.T) {
	r := E6IPC()
	if len(r.Rows) != 5 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// RTT grows with payload (serialization).
	if cellF(t, r, 0, "RTT-p50cy") >= cellF(t, r, 4, "RTT-p50cy") {
		t.Fatal("RTT not increasing with payload")
	}
	// Capability overhead is small (<15% at any size).
	for i := range r.Rows {
		if ovh := cellF(t, r, i, "CheckOverhead%"); ovh > 15 {
			t.Fatalf("row %d: capability overhead %v%%", i, ovh)
		}
	}
}

func TestE7RateLimitProtects(t *testing.T) {
	r := E7RateLimit()
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	okOf := func(row int) float64 {
		s := strings.Split(r.Cell(row, "VictimOK"), "/")[0]
		v, _ := strconv.ParseFloat(s, 64)
		return v
	}
	if okOf(1) < 45 {
		t.Fatalf("victim under limited flooder completed only %v/50", okOf(1))
	}
	if okOf(0) >= okOf(1) {
		t.Fatalf("rate limit gave no benefit: %v vs %v successes", okOf(0), okOf(1))
	}
	if r.Cell(1, "FloodLimited") == "0" {
		t.Fatal("no flood messages were rate limited")
	}
}

func TestE8Containment(t *testing.T) {
	r := E8FailStop()
	m := map[string]string{}
	for _, row := range r.Rows {
		m[row[0]] = row[1]
	}
	if m["healthy app completed"] != "400/400" {
		t.Fatalf("healthy app affected: %v", m)
	}
	if m["victim errors (EFailStopped NACKs)"] == "0" {
		t.Fatal("victim clients saw no errors")
	}
	if m["fault reports at kernel"] == "0" {
		t.Fatal("kernel unaware of fault")
	}
	pre, _ := strconv.ParseFloat(m["healthy app p50 before fault (cycles)"], 64)
	post, _ := strconv.ParseFloat(m["healthy app p50 after fault (cycles)"], 64)
	if post > pre*1.5+50 {
		t.Fatalf("neighbour latency degraded: %v -> %v", pre, post)
	}
}

func TestE9BlastRadius(t *testing.T) {
	r := E9Preemption()
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	if r.Cell(0, "Model") != "concurrent-only" || r.Cell(0, "Tenant1Alive") != "false" {
		t.Fatalf("concurrent row wrong: %v", r.Rows[0])
	}
	if r.Cell(1, "Model") != "preemptible" || r.Cell(1, "Tenant1Alive") != "true" {
		t.Fatalf("preemptible row wrong: %v", r.Rows[1])
	}
	if r.Cell(1, "Tenant1Keys") != "2" {
		t.Fatal("surviving tenant lost data")
	}
}

func TestE10Tradeoffs(t *testing.T) {
	r := E10SegVsPage()
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// Pages (last row) waste held memory; segments waste none; buddy sits
	// in between with power-of-two rounding waste.
	last := len(r.Rows) - 1
	if cellF(t, r, last, "WastedMB") <= 0 {
		t.Fatal("paged allocator shows no internal fragmentation")
	}
	if r.Cell(0, "WastedMB") != "0.0" {
		t.Fatal("segments should waste nothing inside allocations")
	}
	if cellF(t, r, 2, "WastedMB") <= cellF(t, r, last, "WastedMB") {
		t.Fatal("buddy rounding waste should exceed 4K-page rounding waste on this trace")
	}
	// Pages need far more translation state.
	segEntries := cellF(t, r, 0, "XlateEntries")
	pageEntries := cellF(t, r, last, "XlateEntries")
	if pageEntries < 10*segEntries {
		t.Fatalf("paged entries (%v) should dwarf segment entries (%v)",
			pageEntries, segEntries)
	}
}

func TestE11ScenarioRuns(t *testing.T) {
	r := E11Scenario()
	m := map[string]string{}
	for _, row := range r.Rows {
		m[row[0]] = row[1]
	}
	if m["video requests completed"] != "200/200" || m["kv requests completed"] != "200/200" {
		t.Fatalf("scenario incomplete: %v", m)
	}
	if m["kv->video snoop attempts denied"] != "50/50" {
		t.Fatalf("snoop not fully denied: %v", m["kv->video snoop attempts denied"])
	}
	if m["encoder replica split"] != "100/100" {
		t.Fatalf("replica split = %v", m["encoder replica split"])
	}
}

func TestE12Scales(t *testing.T) {
	r := E12ScaleOut()
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	s1 := cellF(t, r, 0, "Speedup")
	s2 := cellF(t, r, 1, "Speedup")
	s4 := cellF(t, r, 2, "Speedup")
	if s1 != 1 {
		t.Fatalf("baseline speedup = %v", s1)
	}
	if s2 < 1.5 || s4 < 2.5 {
		t.Fatalf("replication does not scale: x2=%v x4=%v", s2, s4)
	}
}

func TestE14RemotePlacement(t *testing.T) {
	r := E14RemoteService()
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	if r.Cell(0, "Completed") != "100" || r.Cell(1, "Completed") != "100" {
		t.Fatalf("placements incomplete: %v", r.Rows)
	}
	local := cellF(t, r, 0, "p50us")
	remote := cellF(t, r, 1, "p50us")
	if remote < 10*local {
		t.Fatalf("remote CPU placement (%v us) should cost much more than local (%v us)",
			remote, local)
	}
}

func TestE13BothBoardsWork(t *testing.T) {
	r := E13Portability()
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	if r.Cell(0, "EthCore") == r.Cell(1, "EthCore") {
		t.Fatal("boards should carry different vendor cores")
	}
	for i := range r.Rows {
		if r.Cell(i, "Served") != "100" {
			t.Fatalf("board %s served %s/100", r.Cell(i, "Board"), r.Cell(i, "Served"))
		}
	}
	// 10G board pays more serialization for the same requests.
	if cellF(t, r, 0, "RTT-p50us") <= cellF(t, r, 1, "RTT-p50us") {
		t.Fatal("10G board should have higher RTT than 100G")
	}
}

func TestE16BlastRadius(t *testing.T) {
	r := E16BlastRadius()
	phases := map[string][]string{}
	for _, row := range r.Rows {
		phases[row[0]] = row
	}
	pre, quar, post := phases["pre-fault"], phases["quarantined"], phases["post-recovery"]
	if pre == nil || quar == nil || post == nil {
		t.Fatalf("missing phase rows: %v", r.Rows)
	}
	// The victim tile must actually get fenced and then re-admitted.
	if quar[6] != "1" {
		t.Fatalf("no tile quarantined: %v", quar)
	}
	if post[6] != "0" {
		t.Fatalf("tile still fenced after recovery: %v", post)
	}
	// Healthy p99 may degrade by at most 10% while the fault is live.
	preP99, _ := strconv.ParseFloat(pre[2], 64)
	durP99, _ := strconv.ParseFloat(quar[2], 64)
	if preP99 <= 0 {
		t.Fatalf("no healthy baseline latency: %v", pre)
	}
	if durP99 > preP99*1.10 {
		t.Fatalf("healthy p99 degraded >10%% during fault: %v -> %v", preP99, durP99)
	}
	// The victim must be serving again after region reload: strictly more
	// responses than at quarantine time.
	quarResp, _ := strconv.Atoi(quar[4])
	postResp, _ := strconv.Atoi(post[4])
	if postResp <= quarResp {
		t.Fatalf("victim not serving after recovery: %d -> %d responses", quarResp, postResp)
	}
	// Healthy apps keep making progress through every phase.
	quarH, _ := strconv.Atoi(quar[3])
	postH, _ := strconv.Atoi(post[3])
	if postH <= quarH {
		t.Fatalf("healthy apps stalled: %d -> %d responses", quarH, postH)
	}
}

// TestE16Deterministic reruns the chaos experiment and requires the whole
// table — latencies, cycle timestamps, counters — to be bit-identical: the
// fault plan is seed-driven and injected between tick phases.
func TestE16Deterministic(t *testing.T) {
	a := E16BlastRadius()
	b := E16BlastRadius()
	if a.String() != b.String() {
		t.Fatalf("chaos run not reproducible:\n--- run1\n%s\n--- run2\n%s", a.String(), b.String())
	}
}

func TestE17Degrade(t *testing.T) {
	r := E17Degrade()
	rows := map[string][]string{}
	for _, row := range r.Rows {
		rows[row[0]] = row
	}
	base, shed, naive := rows["baseline 1x"], rows["overload 2x shed"], rows["overload 2x naive"]
	if base == nil || shed == nil || naive == nil {
		t.Fatalf("missing overload rows: %v", r.Rows)
	}
	// The uncontended baseline is never shed; 2x offered load is.
	if base[3] != "0" {
		t.Fatalf("baseline was shed: %v", base)
	}
	shedN, _ := strconv.Atoi(shed[3])
	if shedN == 0 {
		t.Fatalf("2x overload shed nothing: %v", shed)
	}
	// Shedding defers, it does not lose: every request is eventually served.
	if shed[1] != "3000" || shed[2] != "0" {
		t.Fatalf("shed run lost requests: served=%s errs=%s", shed[1], shed[2])
	}
	// Admitted p99 under 2x load stays within 10% of the uncontended
	// baseline; the naive (no-deadline) queue pays the whole wait in its tail.
	baseP99, _ := strconv.ParseFloat(base[5], 64)
	shedP99, _ := strconv.ParseFloat(shed[5], 64)
	naiveP99, _ := strconv.ParseFloat(naive[5], 64)
	if baseP99 <= 0 {
		t.Fatalf("no baseline latency: %v", base)
	}
	if shedP99 > baseP99*1.10 {
		t.Fatalf("admitted p99 degraded >10%% at 2x load: %v vs %v baseline", shedP99, baseP99)
	}
	if naiveP99 < shedP99*1.5 {
		t.Fatalf("naive queueing should blow the tail: naive %v vs shed %v", naiveP99, shedP99)
	}

	// Failover half: the group re-binds exactly once, no request is lost,
	// and goodput through the quarantine window holds >= 80% of steady state.
	pre, win, post := rows["pre-fault"], rows["quarantine window"], rows["post-recovery"]
	if pre == nil || win == nil || post == nil {
		t.Fatalf("missing failover rows: %v", r.Rows)
	}
	if got := rows["  failovers"]; got == nil || got[1] != "1" {
		t.Fatalf("failovers != 1: %v", got)
	}
	if post[1] != "4000" || post[2] != "0" {
		t.Fatalf("requests lost across failover: served=%s errs=%s", post[1], post[2])
	}
	preRate, _ := strconv.ParseFloat(pre[6], 64)
	winRate, _ := strconv.ParseFloat(win[6], 64)
	if preRate <= 0 {
		t.Fatalf("no steady-state goodput: %v", pre)
	}
	if winRate < preRate*0.80 {
		t.Fatalf("goodput in quarantine window %v < 80%% of steady state %v", winRate, preRate)
	}
}

// TestE17Deterministic reruns the degradation experiment and requires the
// whole table — latencies, shed counts, cycle timestamps — to be
// bit-identical: admission decisions and health transitions all happen on
// the deterministic tick/commit schedule.
func TestE17Deterministic(t *testing.T) {
	a := E17Degrade()
	b := E17Degrade()
	if a.String() != b.String() {
		t.Fatalf("degradation run not reproducible:\n--- run1\n%s\n--- run2\n%s", a.String(), b.String())
	}
}

func TestE18Express(t *testing.T) {
	r := E18Express()
	rows := map[string][]string{}
	for _, row := range r.Rows {
		rows[row[0]] = row
	}
	hitPct := func(name string) float64 {
		row := rows[name]
		if row == nil {
			t.Fatalf("missing row %q: %v", name, r.Rows)
		}
		v, err := strconv.ParseFloat(row[4], 64)
		if err != nil {
			t.Fatalf("bad hit%% in %q: %v", name, row)
		}
		return v
	}
	// Hit rate must be perfect when flights never overlap, near zero when
	// they always do, and monotone non-decreasing in the gap between.
	sparse := []string{"sparse 8x8 gap=2", "sparse 8x8 gap=8", "sparse 8x8 gap=32", "sparse 8x8 gap=256"}
	prev := -1.0
	for _, name := range sparse {
		h := hitPct(name)
		if h < prev {
			t.Fatalf("hit rate not monotone in gap: %q %.1f after %.1f", name, h, prev)
		}
		prev = h
		// Sparse traffic is never dropped, bypass or not.
		if row := rows[name]; row[1] != row[2] {
			t.Fatalf("%q lost messages: sent=%s delivered=%s", name, row[1], row[2])
		}
	}
	if h := hitPct("sparse 8x8 gap=256"); h != 100.0 {
		t.Fatalf("fully spaced flights should all hit: %.1f%%", h)
	}
	if h := hitPct("sparse 8x8 gap=2"); h > 10.0 {
		t.Fatalf("overlapping flights should almost never hit: %.1f%%", h)
	}
	// Saturation: the bypass must never engage.
	for _, name := range []string{"saturated 16x16", "saturated 32x32"} {
		if row := rows[name]; row == nil || row[3] != "0" {
			t.Fatalf("bypass engaged under saturation: %v", row)
		}
	}
	// The in-experiment bypass-off differential must have held.
	for _, n := range r.Notes {
		if strings.Contains(n, "MISMATCH") {
			t.Fatalf("bypass changed simulated outcome: %s", n)
		}
	}
}

// TestE18Deterministic reruns the sweep and requires every simulated cell —
// all columns except the host-measured ns/cycle — to be bit-identical.
func TestE18Deterministic(t *testing.T) {
	a := E18Express()
	b := E18Express()
	for i := range a.Rows {
		ra, rb := a.Rows[i], b.Rows[i]
		if len(ra) != len(rb) {
			t.Fatalf("row %d shape changed: %v vs %v", i, ra, rb)
		}
		for j := 0; j < len(ra)-1; j++ { // last column is host wall-clock
			if ra[j] != rb[j] {
				t.Fatalf("row %d col %d not reproducible: %q vs %q", i, j, ra[j], rb[j])
			}
		}
	}
}

func TestE19Fleet(t *testing.T) {
	r := E19Fleet()
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 (intra, cross, kill): %s", len(r.Rows), r.String())
	}
	for i := range r.Rows {
		if ok := cellF(t, r, i, "OK"); ok != 12 {
			t.Fatalf("row %d: OK = %v, want all 12 requests answered\n%s", i, ok, r.String())
		}
		if errs := cellF(t, r, i, "Errs"); errs != 0 {
			t.Fatalf("row %d: Errs = %v\n%s", i, errs, r.String())
		}
	}
	intra := cellF(t, r, 0, "CompleteCy")
	cross := cellF(t, r, 1, "CompleteCy")
	if cross <= intra {
		t.Fatalf("cross-board completion %v not above intra-board %v", cross, intra)
	}
	if cellF(t, r, 0, "XBoardFrames") != 0 {
		t.Fatalf("intra-board run crossed boards:\n%s", r.String())
	}
	if cellF(t, r, 1, "XBoardFrames") == 0 {
		t.Fatalf("cross-board run never crossed boards:\n%s", r.String())
	}
	if cellF(t, r, 2, "Failovers") != 1 {
		t.Fatalf("board-kill row: failovers != 1\n%s", r.String())
	}
	if cellF(t, r, 2, "DroppedToDead") == 0 {
		t.Fatalf("board-kill row: no frames hit the dead board\n%s", r.String())
	}
}

// TestE19Deterministic requires every cell to be bit-stable across reruns —
// the property that lets the fleet rows sit under the -compare gate.
func TestE19Deterministic(t *testing.T) {
	a, b := E19Fleet(), E19Fleet()
	if a.String() != b.String() {
		t.Fatalf("E19 not deterministic:\n%s\n---\n%s", a.String(), b.String())
	}
}

func TestE20FleetObs(t *testing.T) {
	r := E20FleetObs()
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 (off, 1-in-64, every): %s", len(r.Rows), r.String())
	}
	base := cellF(t, r, 0, "CompleteCy")
	for i := range r.Rows {
		if ok := cellF(t, r, i, "OK"); ok != 24 {
			t.Fatalf("row %d: OK = %v, want 24\n%s", i, ok, r.String())
		}
		if cy := cellF(t, r, i, "CompleteCy"); cy != base {
			t.Fatalf("row %d: CompleteCy %v != %v — tracing perturbed the simulation\n%s",
				i, cy, base, r.String())
		}
	}
	if cellF(t, r, 0, "TracedHops") != 0 || cellF(t, r, 0, "Spans") != 0 {
		t.Fatalf("tracing-off row recorded telemetry:\n%s", r.String())
	}
	if cellF(t, r, 2, "TracedHops") == 0 || cellF(t, r, 2, "Spans") == 0 {
		t.Fatalf("every-packet row recorded nothing:\n%s", r.String())
	}
	if cellF(t, r, 2, "TracedHops") <= cellF(t, r, 1, "TracedHops") {
		t.Fatalf("traced hops did not grow with sampling rate:\n%s", r.String())
	}
	if cellF(t, r, 1, "echo-p50cy") <= 0 || cellF(t, r, 1, "echo-p99cy") <= 0 {
		t.Fatalf("service rollup quantiles missing:\n%s", r.String())
	}
	joined := strings.Join(r.Notes, "\n")
	if strings.Contains(joined, "DETERMINISM VIOLATION") {
		t.Fatalf("determinism violation:\n%s", r.String())
	}
}

func TestE20Deterministic(t *testing.T) {
	a, b := E20FleetObs(), E20FleetObs()
	if a.String() != b.String() {
		t.Fatalf("E20 not deterministic:\n%s\n---\n%s", a.String(), b.String())
	}
}

func TestE21Load(t *testing.T) {
	r := E21Load()
	if len(r.Rows) != 7 {
		t.Fatalf("rows = %d, want 7 (3 board rates, 3 fleet rates, 1 fleet kill):\n%s",
			len(r.Rows), r.String())
	}
	// Under capacity the open-loop harness must deliver everything it
	// offers; past capacity goodput has to fall below the offered rate and
	// the arrival-stamped p99 has to blow up — the coordinated-omission
	// check: a closed-loop generator would show neither.
	for _, i := range []int{0, 3} { // board-r6000, fleet16-r6000
		if cellF(t, r, i, "GoodputRpMc") != cellF(t, r, i, "OfferedRpMc") {
			t.Fatalf("row %d under capacity but lossy:\n%s", i, r.String())
		}
	}
	for _, i := range []int{2, 5} { // board-r36000, fleet16-r36000
		if cellF(t, r, i, "GoodputRpMc") >= cellF(t, r, i, "OfferedRpMc") {
			t.Fatalf("row %d past capacity but lossless:\n%s", i, r.String())
		}
		if cellF(t, r, i, "Denied")+cellF(t, r, i, "Timeout")+cellF(t, r, i, "Shed") == 0 {
			t.Fatalf("row %d saturated with no client-visible failures:\n%s", i, r.String())
		}
	}
	if cellF(t, r, 2, "P99cy") <= cellF(t, r, 0, "P99cy") {
		t.Fatalf("board p99 did not grow with offered rate:\n%s", r.String())
	}
	if cellF(t, r, 5, "P99cy") <= cellF(t, r, 3, "P99cy") {
		t.Fatalf("fleet p99 did not grow with offered rate:\n%s", r.String())
	}
	// The mid-run primary kill must cost something the no-kill run at the
	// same rate does not: timeouts, and with them goodput.
	if cellF(t, r, 6, "Timeout") <= cellF(t, r, 4, "Timeout") {
		t.Fatalf("board kill produced no extra timeouts:\n%s", r.String())
	}
	if cellF(t, r, 6, "GoodputRpMc") >= cellF(t, r, 4, "GoodputRpMc") {
		t.Fatalf("board kill did not dent goodput:\n%s", r.String())
	}
}

func TestE21Deterministic(t *testing.T) {
	a, b := E21Load(), E21Load()
	if a.String() != b.String() {
		t.Fatalf("E21 not deterministic:\n%s\n---\n%s", a.String(), b.String())
	}
}

func TestE22Migrate(t *testing.T) {
	r := E22Migrate()
	if len(r.Rows) != 6 {
		t.Fatalf("rows = %d, want 6 (board ctl/mig/fire, fleet ctl/mig/abort):\n%s",
			len(r.Rows), r.String())
	}
	// On-board the app is a single instance, so the migration window costs
	// goodput during the move phase — a dip of client-visible retryable
	// denials — and the cool phase proves the re-minted endpoint recovered
	// to exactly the control run's steady service.
	for _, mig := range []int{1, 2} {
		if cellF(t, r, mig, "MoveGoodputRpMc") >= cellF(t, r, 0, "MoveGoodputRpMc") {
			t.Fatalf("row %d shows no migration dip vs control:\n%s", mig, r.String())
		}
		if cellF(t, r, mig, "Denied") == 0 {
			t.Fatalf("row %d window produced no retryable denials:\n%s", mig, r.String())
		}
		if cellF(t, r, mig, "CoolGoodputRpMc") != cellF(t, r, 0, "CoolGoodputRpMc") {
			t.Fatalf("row %d did not recover to control goodput:\n%s", mig, r.String())
		}
	}
	// Cross-board the directory shifts the primary to the live sibling
	// before the move, so the migration (and even its abort) is invisible
	// to clients: the move phase stays lossless.
	for _, i := range []int{4, 5} {
		if cellF(t, r, i, "MoveGoodputRpMc") != cellF(t, r, i, "MoveOfferedRpMc") {
			t.Fatalf("fleet row %d lossy despite sibling cover:\n%s", i, r.String())
		}
	}
	for i := 0; i < 6; i++ {
		if cellF(t, r, i, "CoolGoodputRpMc") == 0 {
			t.Fatalf("row %d never recovered post-window:\n%s", i, r.String())
		}
	}
}

func TestE22Deterministic(t *testing.T) {
	a, b := E22Migrate(), E22Migrate()
	if a.String() != b.String() {
		t.Fatalf("E22 not deterministic:\n%s\n---\n%s", a.String(), b.String())
	}
}
