package bench

import (
	"fmt"

	"apiary/internal/accel"
	"apiary/internal/apps"
	"apiary/internal/cluster"
	"apiary/internal/core"
	"apiary/internal/msg"
	"apiary/internal/netsim"
	"apiary/internal/noc"
)

// E19 service/flow numbering.
const (
	e19Svc      = msg.ServiceID(100) // backend service inside each replica
	e19ProxySvc = msg.ServiceID(200) // client board's local doorway
	e19Flow     = uint16(7)
)

// e19Fleet boots a small fleet with the echo service deployed at the given
// replica count.
func e19Fleet(replicas int) (*cluster.Fleet, []cluster.Endpoint, error) {
	fl, err := cluster.New(cluster.Config{
		Boards: 4,
		Seed:   19,
		Board: core.SystemConfig{
			Dims:            noc.Dims{W: 3, H: 3},
			ManagedMemBytes: 1 << 20,
		},
		Link: netsim.LinkConfig{LatencyNs: 1000},
	})
	if err != nil {
		return nil, nil, err
	}
	eps, err := fl.Orchestrator().DeployService(cluster.ServiceDeployment{
		Name: "echo", Svc: e19Svc, Flow: e19Flow, Replicas: replicas,
		Spec: e19ReplicaSpec,
	})
	if err != nil {
		fl.Close()
		return nil, nil, err
	}
	return fl, eps, nil
}

// e19ReplicaSpec builds one echo replica app (shared with E20).
func e19ReplicaSpec(r int) core.AppSpec {
	return core.AppSpec{
		Name: fmt.Sprintf("echo-r%d", r),
		Accels: []core.AppAccel{{
			Name: "stage", Service: e19Svc,
			New: func() accel.Accelerator {
				return apps.NewStage(apps.StageConfig{
					Name:    "echo",
					Process: func(in []byte) ([]byte, msg.ErrCode) { return in, msg.EOK },
				})
			},
		}},
	}
}

// e19Client is a resilient requester: app-level retries cover both the
// failover window and requests the dead board swallowed.
func e19Client(total int) *apps.Requester {
	req := apps.NewRequester(e19ProxySvc, total, 64,
		func(i int) []byte { return []byte{byte(i), 0xE1, 0x9F} }, nil)
	req.RetryNacks = true
	req.RetryLimit = 10
	req.TimeoutCycles = 6000
	req.BackoffBase = 256
	return req
}

// E19Fleet measures the multi-board fleet: cross-board RPC cost against the
// intra-board baseline, and request survival across a whole-board kill with
// a cross-board replica group. All columns are simulated (cycles/counts),
// so the row set sits under the cross-host -compare trajectory gate.
func E19Fleet() Result {
	r := Result{
		ID:    "e19",
		Title: "Multi-board fleet: cross-board RPC and whole-board failover",
		Header: []string{"Scenario", "Boards", "Requests", "OK", "Errs",
			"CompleteCy", "Failovers", "XBoardFrames", "DroppedToDead"},
	}
	const total = 12

	// Intra-board baseline: requester and service on one board, no network.
	{
		fl, _, err := e19Fleet(1)
		if err != nil {
			r.Note("fleet boot failed: %v", err)
			return r
		}
		req := e19Client(total)
		// The baseline is one self-contained app — stage and requester on
		// the same board, same-app connect, no network anywhere.
		const localSvc = msg.ServiceID(101)
		req.Target = localSvc
		_, err = fl.Orchestrator().PlaceApp(core.AppSpec{
			Name: "local",
			Accels: []core.AppAccel{
				{Name: "stage", Service: localSvc,
					New: func() accel.Accelerator {
						return apps.NewStage(apps.StageConfig{
							Name:    "echo",
							Process: func(in []byte) ([]byte, msg.ErrCode) { return in, msg.EOK },
						})
					}},
				{Name: "req", Connect: []msg.ServiceID{localSvc},
					New: func() accel.Accelerator { return req }},
			},
		})
		if err != nil {
			r.Note("local client load failed: %v", err)
			fl.Close()
			return r
		}
		fl.RunUntil(req.Done, 400_000)
		r.AddRow("intra-board", d(fl.Boards()), d(total), d(req.Responses()),
			d(req.Errors()), u(uint64(fl.Now())), u(fl.Orchestrator().Failovers()),
			u(fl.Relayed()), u(fl.DroppedToDead()))
		fl.Close()
	}

	// Cross-board RPC: client on another board, through the proxy + bridge.
	{
		fl, eps, err := e19Fleet(1)
		if err != nil {
			r.Note("fleet boot failed: %v", err)
			return r
		}
		req := e19Client(total)
		if err := e19Attach(fl, eps, req); err != nil {
			r.Note("remote client attach failed: %v", err)
			fl.Close()
			return r
		}
		fl.RunUntil(req.Done, 400_000)
		r.AddRow("cross-board", d(fl.Boards()), d(total), d(req.Responses()),
			d(req.Errors()), u(uint64(fl.Now())), u(fl.Orchestrator().Failovers()),
			u(fl.Relayed()), u(fl.DroppedToDead()))
		fl.Close()
	}

	// Whole-board kill: two replicas on distinct boards; the primary's board
	// dies mid-run and the orchestrator re-binds to the survivor.
	{
		fl, eps, err := e19Fleet(2)
		if err != nil {
			r.Note("fleet boot failed: %v", err)
			return r
		}
		req := e19Client(total)
		if err := e19Attach(fl, eps, req); err != nil {
			r.Note("remote client attach failed: %v", err)
			fl.Close()
			return r
		}
		fl.KillBoardAt(eps[0].Board, 1500)
		fl.RunUntil(req.Done, 800_000)
		r.AddRow("board-kill", d(fl.Boards()), d(total), d(req.Responses()),
			d(req.Errors()), u(uint64(fl.Now())), u(fl.Orchestrator().Failovers()),
			u(fl.Relayed()), u(fl.DroppedToDead()))
		r.Note("epoch (lookahead) = %d cycles; board %d killed at cycle 1500, detection after %d epochs",
			fl.Epoch(), eps[0].Board, 2)
		fl.Close()
	}

	r.Note("cross-board RPC pays 2 cluster traversals (request + reply), each >= 1 epoch")
	r.Note("failover: replica group spans boards, so requests outlive a whole-board loss")
	return r
}

// e19Attach places the client on a board without a replica, behind a
// directory-resolving proxy.
func e19Attach(fl *cluster.Fleet, eps []cluster.Endpoint, req *apps.Requester) error {
	hosts := map[int]bool{}
	for _, ep := range eps {
		hosts[ep.Board] = true
	}
	board := -1
	for i := 0; i < fl.Boards(); i++ {
		if !hosts[i] {
			board = i
			break
		}
	}
	if board < 0 {
		return fmt.Errorf("no board free of replicas")
	}
	if err := fl.Orchestrator().ConnectClient(board, e19ProxySvc, "echo"); err != nil {
		return err
	}
	_, err := fl.Board(board).Sys.Kernel.LoadApp(core.AppSpec{
		Name: "client",
		Accels: []core.AppAccel{{
			Name: "req", Connect: []msg.ServiceID{e19ProxySvc},
			New: func() accel.Accelerator { return req },
		}},
	})
	return err
}
