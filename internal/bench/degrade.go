package bench

import (
	"fmt"

	"apiary/internal/accel"
	"apiary/internal/apps"
	"apiary/internal/core"
	"apiary/internal/fault"
	"apiary/internal/monitor"
	"apiary/internal/msg"
	"apiary/internal/noc"
	"apiary/internal/sim"
)

// E17 timeline constants (failover half): the chaos engine hangs the
// primary replica at hangAt; the heartbeat watchdog trips inside the hang,
// the kernel quarantines the tile and re-binds the group to the standby.
const (
	e17HangAt  sim.Cycle = 150_000
	e17HangDur sim.Cycle = 120_000
)

// e17Svc is the slow pipeline's occupancy per request in the overload half.
const e17Svc sim.Cycle = 400

// overloadRun drives nClients closed-loop clients (16 outstanding each,
// no send gap) at one slow service and reports the admitted latency
// distribution plus shed/served totals. budget is the per-request queueing
// deadline stamped into the message header (0 = naive, no shedding). The
// first 100k cycles warm up the shell's service-gap estimator and are
// excluded from the latency histogram.
func overloadRun(nClients, perClient int, budget sim.Cycle) (lat *sim.Histogram, served, errs int, shed uint64) {
	const svcSlow = msg.FirstUserService
	sys, err := core.NewSystem(core.SystemConfig{Dims: noc.Dims{W: 3, H: 3}})
	if err != nil {
		panic(err)
	}
	h := sys.Stats.Histogram("adm.lat")
	spec := core.AppSpec{Name: "overload", Accels: []core.AppAccel{
		{Name: "slow", Service: svcSlow, QueueCap: 64,
			New: func() accel.Accelerator {
				return apps.NewStage(apps.StageConfig{
					Name: "slow", BaseCycles: e17Svc,
					Process: func(in []byte) ([]byte, msg.ErrCode) { return in, msg.EOK },
				})
			}},
	}}
	clients := make([]*apps.Requester, nClients)
	for i := range clients {
		c := apps.NewRequester(svcSlow, perClient, 0,
			func(int) []byte { return make([]byte, 64) }, h)
		c.MaxInFlight = 16
		c.Budget = budget
		// Shed requests are retried with backoff: the client self-regulates
		// to the service's capacity instead of abandoning work, so "Shed"
		// counts deferrals, not losses.
		c.RetryNacks = true
		c.RetryLimit = 50
		c.BackoffBase = 256
		c.BackoffMax = 8_192
		clients[i] = c
		spec.Accels = append(spec.Accels, core.AppAccel{
			Name: fmt.Sprintf("c%d", i), Connect: []msg.ServiceID{svcSlow},
			New: func() accel.Accelerator { return c },
		})
	}
	if _, err := sys.Kernel.LoadApp(spec); err != nil {
		panic(err)
	}
	sys.Run(100_000)
	h.Reset()
	sys.RunUntil(func() bool {
		for _, c := range clients {
			if !c.Done() {
				return false
			}
		}
		return true
	}, 20_000_000)
	for _, c := range clients {
		served += c.Responses()
		errs += c.Errors()
	}
	return h, served, errs, sys.Stats.Counter("shell.shed").Value()
}

// E17Degrade quantifies graceful degradation on both axes of this PR.
//
// Overload: a slow service (400 cy/request) behind deadline-aware admission
// control. One closed-loop client is the capacity baseline; doubling the
// client count doubles offered load. With a queueing budget in the request
// header the shell sheds what it cannot serve in time and the admitted p99
// stays at the baseline; without it every request is admitted and the whole
// queue's wait lands in the tail.
//
// Failover: two echo replicas behind a health-aware group. The chaos engine
// hangs the primary mid-run; the watchdog verdict quarantines it, the
// kernel re-binds the group to the standby and re-mints the endpoint caps,
// and the client — retrying transient NACKs with backoff — rides through
// with zero lost requests.
func E17Degrade() Result {
	r := Result{
		ID: "E17", Title: "Graceful degradation: deadline load shedding and health-aware failover",
		Header: []string{"Phase", "Served", "Errs", "Shed", "P50cy", "P99cy", "Goodput/kcy"},
	}

	// --- Overload half -----------------------------------------------------
	const perClient = 1500
	// Just above the baseline closed loop's own queue wait (15 waiting x
	// ~410 cy estimated gap): the uncontended client is never shed, while
	// overload traffic is pinned to the same queue depth the baseline runs
	// at — so the admitted tail cannot exceed the baseline tail.
	const deadline = 6_300
	type orow struct {
		name         string
		clients      int
		budget       sim.Cycle
		lat          *sim.Histogram
		served, errs int
		shed         uint64
	}
	rows := []orow{
		{name: "baseline 1x", clients: 1, budget: deadline},
		{name: "overload 2x shed", clients: 2, budget: deadline},
		{name: "overload 2x naive", clients: 2, budget: 0},
	}
	for i := range rows {
		o := &rows[i]
		o.lat, o.served, o.errs, o.shed = overloadRun(o.clients, perClient, o.budget)
		r.AddRow(o.name, d(o.served), d(o.errs), u(o.shed),
			f1(o.lat.Median()), f1(o.lat.P99()), "")
	}
	r.Note("deadline=%d cy on a %d cy service: shed keeps the admitted queue no deeper than the uncontended closed loop, so admitted p99 holds at baseline while the naive queue's wait lands in the tail",
		deadline, e17Svc)

	// --- Failover half -----------------------------------------------------
	const (
		svcRepA  = msg.FirstUserService
		svcRepB  = msg.FirstUserService + 1
		svcGroup = msg.FirstUserService + 10
		total    = 4000
		gap      = 300
	)
	plan := &fault.Plan{
		Seed: 42,
		Events: []fault.Event{
			{Kind: fault.KindHang, At: e17HangAt, Tile: 2, Dur: e17HangDur},
		},
	}
	sys, err := core.NewSystem(core.SystemConfig{
		Dims: noc.Dims{W: 4, H: 4}, Detect: monitor.DefaultDetect, FaultPlan: plan,
	})
	if err != nil {
		panic(err)
	}
	client := apps.NewRequester(svcGroup, total, gap,
		func(int) []byte { return make([]byte, 64) }, nil)
	client.RetryLimit = 6
	client.RetryNacks = true
	client.TimeoutCycles = 20_000
	client.BackoffBase = 512
	client.BackoffMax = 32_768
	if _, err := sys.Kernel.LoadApp(core.AppSpec{
		Name: "ha", Restart: true,
		Accels: []core.AppAccel{
			{Name: "repa", Service: svcRepA,
				New: func() accel.Accelerator { return echoStage() }},
			{Name: "repb", Service: svcRepB,
				New: func() accel.Accelerator { return echoStage() }},
			{Name: "client", New: func() accel.Accelerator { return client },
				Connect: []msg.ServiceID{svcGroup}},
		},
		Groups: []core.ReplicaGroupSpec{{Service: svcGroup,
			Members: []msg.ServiceID{svcRepA, svcRepB}}},
	}); err != nil {
		panic(err)
	}

	goodput := func(dResp int, dCy sim.Cycle) float64 {
		if dCy == 0 {
			return 0
		}
		return float64(dResp) / float64(dCy) * 1000
	}

	// Steady state up to the injected hang.
	sys.Run(e17HangAt)
	preResp := client.Responses()
	preRate := goodput(preResp, e17HangAt)
	r.AddRow("pre-fault", d(preResp), d(client.Errors()), "0", "", "", f2(preRate))

	// Fault live: watchdog trips, tile fenced, group re-binds to the standby.
	sys.RunUntil(func() bool { return sys.Kernel.Quarantines() >= 1 }, 2_000_000)
	quarAt := sys.Engine.Now()
	quarResp := client.Responses()

	// Quarantine window: primary fenced, standby serving, PR reload pending.
	sys.RunUntil(func() bool { return sys.Kernel.Recoveries() >= 1 }, 2_000_000)
	recovAt := sys.Engine.Now()
	winResp := client.Responses() - quarResp
	winRate := goodput(winResp, recovAt-quarAt)
	r.AddRow("quarantine window", d(winResp), d(client.Errors()), "0", "", "",
		f2(winRate))

	// Drain the workload: every request must complete despite the failover.
	sys.RunUntil(client.Done, 5_000_000)
	r.AddRow("post-recovery", d(client.Responses()), d(client.Errors()), "0", "", "",
		f2(goodput(client.Responses(), sys.Engine.Now())))

	primary, _ := sys.Kernel.GroupPrimary(svcGroup)
	r.AddRow("timeline", "", "", "", "", "", "")
	r.AddRow("  hang injected (cycle)", u(uint64(e17HangAt)), "", "", "", "", "")
	r.AddRow("  quarantined (cycle)", u(uint64(quarAt)), "", "", "", "", "")
	r.AddRow("  re-admitted (cycle)", u(uint64(recovAt)), "", "", "", "", "")
	r.AddRow("  failovers", u(sys.Kernel.Failovers()), "", "", "", "", "")
	r.AddRow("  primary after failover", fmt.Sprintf("svc %d", primary), "", "", "", "", "")
	r.AddRow("  client retransmits", d(client.Retransmits()), "", "", "", "", "")
	r.Note("failover: goodput in the quarantine window %.2f/kcy vs %.2f/kcy steady state (%.0f%%); zero requests lost — %d/%d answered, %d errors",
		winRate, preRate, winRate/preRate*100, client.Responses(), total, client.Errors())
	r.Note("deterministic: same seed, same plan => bit-identical run at any shard count (see internal/core failover tests)")
	return r
}
