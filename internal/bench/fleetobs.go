package bench

import (
	"apiary/internal/cluster"
	"apiary/internal/core"
	"apiary/internal/netsim"
	"apiary/internal/noc"
)

// e20Run boots the E19 fleet topology (4 boards, echo service with 2
// replicas, remote client) at the given span sampling rate, runs the client
// to completion, and returns the fleet plus the client for inspection.
func e20Run(spanEvery, total int) (*cluster.Fleet, *clientOutcome, error) {
	fl, err := cluster.New(cluster.Config{
		Boards: 4,
		Seed:   19,
		Board: core.SystemConfig{
			Dims:            noc.Dims{W: 3, H: 3},
			ManagedMemBytes: 1 << 20,
			SpanSampleEvery: spanEvery,
		},
		Link: netsim.LinkConfig{LatencyNs: 1000},
	})
	if err != nil {
		return nil, nil, err
	}
	eps, err := fl.Orchestrator().DeployService(cluster.ServiceDeployment{
		Name: "echo", Svc: e19Svc, Flow: e19Flow, Replicas: 2,
		Spec: e19ReplicaSpec,
	})
	if err != nil {
		fl.Close()
		return nil, nil, err
	}
	req := e19Client(total)
	if err := e19Attach(fl, eps, req); err != nil {
		fl.Close()
		return nil, nil, err
	}
	fl.RunUntil(req.Done, 800_000)
	return fl, &clientOutcome{ok: req.Responses(), errs: req.Errors()}, nil
}

type clientOutcome struct{ ok, errs int }

// E20FleetObs measures fleet-wide observability as pure observation: the
// same cross-board workload runs with tracing off, at the apiaryd default
// (1-in-64), and with every packet traced. All simulated quantities —
// completion cycle, cross-board frames, service latency quantiles — must be
// bit-identical across rates; only the recorded telemetry (spans, traced
// link hops) grows. Every column is simulated, so the rows sit under the
// cross-host -compare trajectory gate; the wall-clock tax lives in the
// BenchmarkFleet16 / BenchmarkFleet16Sampled A/B pair.
func E20FleetObs() Result {
	r := Result{
		ID:    "e20",
		Title: "Fleet observability: distributed tracing as pure observation",
		Header: []string{"Sampling", "OK", "Errs", "CompleteCy", "XBoardFrames",
			"TracedHops", "Spans", "Events", "echo-p50cy", "echo-p99cy"},
	}
	const total = 24
	type rate struct {
		label string
		every int
	}
	var baseCy, baseFrames uint64
	var baseP50, baseP99 float64
	for i, cfg := range []rate{{"off", 0}, {"1-in-64", 64}, {"every", 1}} {
		fl, cl, err := e20Run(cfg.every, total)
		if err != nil {
			r.Note("fleet boot failed at %s: %v", cfg.label, err)
			return r
		}
		var spans uint64
		for b := 0; b < fl.Boards(); b++ {
			spans += fl.Board(b).Sys.Obs.Total()
		}
		var p50, p99 float64
		for _, sr := range fl.ServiceRollups() {
			if sr.Name == "echo" {
				p50, p99 = sr.P50, sr.P99
			}
		}
		events := uint64(len(fl.MergedEvents()))
		cy, frames := uint64(fl.Now()), fl.Relayed()
		r.AddRow(cfg.label, d(cl.ok), d(cl.errs), u(cy), u(frames),
			u(fl.TracedLinkFrames()), u(spans), u(events), f1(p50), f1(p99))
		if i == 0 {
			baseCy, baseFrames, baseP50, baseP99 = cy, frames, p50, p99
		} else if cy != baseCy || frames != baseFrames || p50 != baseP50 || p99 != baseP99 {
			r.Note("DETERMINISM VIOLATION at %s: simulated results differ from tracing-off run", cfg.label)
		}
		fl.Close()
	}
	r.Note("trace contexts ride sideband on frames: wire bytes and timing are identical at every rate")
	r.Note("wall-clock tax of 1-in-64 sampling: see BenchmarkFleet16 (sampled) vs BenchmarkFleet16Unsampled")
	return r
}
