package bench

import (
	"fmt"

	"apiary/internal/memseg"
	"apiary/internal/sim"
)

// E10SegVsPage drives the same allocation trace through the segment
// allocators (first-fit, best-fit) and a 4 KiB paged allocator, reporting
// the §4.6 trade-offs: segments waste nothing inside allocations and keep
// tiny translation state, but can strand free space; pages never strand but
// round up every allocation and need an entry per page.
func E10SegVsPage() Result {
	r := Result{
		ID: "E10", Title: "Segments vs paged translation on a mixed alloc/free trace",
		Header: []string{"Allocator", "LiveAllocs", "RequestedMB", "HeldMB",
			"WastedMB", "FailedAllocs", "XlateEntries", "ExtFrag"},
	}

	const (
		total    = 256 << 20
		pageSize = 4096
		steps    = 20000
	)

	// trace is the shared deterministic workload: sizes follow a bimodal
	// accelerator-buffer distribution (lots of small descriptors plus
	// frame-sized buffers).
	type op struct {
		free bool
		idx  int
		size uint64
	}
	rng := sim.NewRNG(2025)
	var ops []op
	liveCount := 0
	for i := 0; i < steps; i++ {
		if rng.Bool(0.55) || liveCount == 0 {
			var size uint64
			if rng.Bool(0.7) {
				size = uint64(rng.Intn(8<<10) + 64) // descriptors: 64B..8KiB
			} else {
				size = uint64(rng.Intn(4<<20) + 64<<10) // buffers: 64KiB..4MiB
			}
			ops = append(ops, op{size: size})
			liveCount++
		} else {
			ops = append(ops, op{free: true, idx: rng.Intn(liveCount)})
			liveCount--
		}
	}

	runSeg := func(pol memseg.Policy) {
		a := memseg.NewAllocator(total, pol)
		var live []memseg.SegID
		failed := 0
		for _, o := range ops {
			if o.free {
				if len(live) == 0 {
					continue
				}
				i := o.idx % len(live)
				_ = a.Free(live[i])
				live = append(live[:i], live[i+1:]...)
				continue
			}
			s, err := a.Alloc(o.size, 0)
			if err != nil {
				failed++
				continue
			}
			live = append(live, s.ID)
		}
		mb := func(b uint64) string { return fmt.Sprintf("%.1f", float64(b)/(1<<20)) }
		r.AddRow("segment/"+pol.String(), d(a.Live()), mb(a.InUse()), mb(a.InUse()),
			"0.0", d(failed), d(a.Live()), f2(a.ExternalFragmentation()))
	}
	runSeg(memseg.FirstFit)
	runSeg(memseg.BestFit)

	// Buddy: the middle design point.
	{
		b := memseg.NewBuddyAllocator(total, 64)
		var live []memseg.SegID
		failed := 0
		for _, o := range ops {
			if o.free {
				if len(live) == 0 {
					continue
				}
				i := o.idx % len(live)
				_ = b.Free(live[i])
				live = append(live[:i], live[i+1:]...)
				continue
			}
			s, err := b.Alloc(o.size, 0)
			if err != nil {
				failed++
				continue
			}
			live = append(live, s.ID)
		}
		mb := func(v uint64) string { return fmt.Sprintf("%.1f", float64(v)/(1<<20)) }
		r.AddRow("buddy/64B", d(b.Live()), mb(b.InUse()), mb(b.HeldBytes()),
			mb(b.HeldBytes()-b.InUse()), d(failed), d(b.Live()),
			f2(1-float64(b.LargestFree())/float64(total-b.HeldBytes()+1)))
	}

	p := memseg.NewPagedAllocator(total, pageSize)
	var live []memseg.SegID
	failed := 0
	for _, o := range ops {
		if o.free {
			if len(live) == 0 {
				continue
			}
			i := o.idx % len(live)
			_ = p.Free(live[i])
			live = append(live[:i], live[i+1:]...)
			continue
		}
		id, err := p.Alloc(o.size, 0)
		if err != nil {
			failed++
			continue
		}
		live = append(live, id)
	}
	mb := func(b uint64) string { return fmt.Sprintf("%.1f", float64(b)/(1<<20)) }
	r.AddRow(fmt.Sprintf("paged/%dB", pageSize), d(p.Live()), mb(p.InUse()),
		mb(p.HeldBytes()), mb(p.HeldBytes()-p.InUse()), d(failed),
		d(p.TranslationEntries()), "0.00")

	r.Note("segments: one (base,limit) register per live allocation; pages: one entry per held page — orders of magnitude more MMU state")
	r.Note("the paper chooses segments for flexibility in allocation sizes and simplicity; the paged column shows what that buys and costs")
	return r
}
