package bench

import (
	"time"

	"apiary/internal/msg"
	"apiary/internal/noc"
	"apiary/internal/sim"
)

// E18 measures the express-channel bypass (noc/express.go) along the axis
// that matters for it: offered load. The bypass only engages when a packet
// is provably alone on the NoC, so its hit rate must fall from ~100% on
// widely spaced traffic to ~0% as flights start overlapping — and at full
// saturation it must engage never and cost nothing. Every workload is also
// re-run with the bypass disabled (Config.NoExpress) and the simulated
// outcome — deliveries, flit counts, latency distribution — must be
// bit-identical: the bypass is an optimization of the simulator, not a
// change to the simulated network.

// expressRun drives an 8x8 mesh with one random unicast every gap cycles
// and reports the simulated counters.
type expressRunOut struct {
	sent, delivered, hits, flits uint64
	p99                          float64
	wall                         time.Duration
}

func expressRun(gap int, horizon sim.Cycle, noExpress bool) expressRunOut {
	e := sim.NewEngine(18)
	defer e.Close()
	st := sim.NewStats()
	n := noc.NewNetwork(e, st, noc.Config{
		Dims: noc.Dims{W: 8, H: 8}, Shards: 1, NoExpress: noExpress,
	})
	e.SetParallel(sim.ParallelOff)
	tiles := n.Dims().Tiles()
	for i := 0; i < tiles; i++ {
		n.NI(msg.TileID(i)).SetDeliver(func(*msg.Message, sim.Cycle) {})
	}
	rng := sim.NewRNG(18)
	var seq uint32
	for at := sim.Cycle(1); at < horizon; at += sim.Cycle(gap) {
		e.Schedule(at, func(now sim.Cycle) {
			src := msg.TileID(rng.Intn(tiles))
			dst := msg.TileID(rng.Intn(tiles))
			if dst == src {
				dst = msg.TileID((int(dst) + 1) % tiles)
			}
			_ = n.NI(src).Send(&msg.Message{
				Type: msg.TRequest, SrcTile: src, DstTile: dst,
				Seq: seq, Payload: make([]byte, 64),
			})
			seq++
		})
	}
	start := time.Now()
	e.Run(horizon)
	e.RunUntil(n.Quiescent, 100000)
	return expressRunOut{
		sent:      st.Counter("noc.msgs_sent").Value(),
		delivered: st.Counter("noc.msgs_delivered").Value(),
		hits:      st.Counter("noc.express_hits").Value(),
		flits:     st.Counter("noc.flits_routed").Value(),
		p99:       st.Histogram("noc.msg_latency_cycles").P99(),
		wall:      time.Since(start),
	}
}

// expressSaturated runs the saturated-mesh workload the microbenchmarks
// track (BenchmarkMeshSaturated16Serial/32) for a fixed cycle count and
// reports its deterministic counters, bringing the saturated hot path under
// the -compare trajectory gate. ns/cycle is host wall-clock and excluded
// from comparison.
func expressSaturated(w, h int, cycles int) expressRunOut {
	e := sim.NewEngine(7)
	defer e.Close()
	st := sim.NewStats()
	n := noc.NewNetwork(e, st, noc.Config{Dims: noc.Dims{W: w, H: h}})
	e.SetParallel(sim.ParallelOff)
	tiles := w * h
	free := make([]*msg.Message, 0, tiles*8)
	for t := 0; t < tiles; t++ {
		n.NI(msg.TileID(t)).SetDeliver(func(m *msg.Message, _ sim.Cycle) {
			free = append(free, m)
		})
	}
	rng := sim.NewRNG(7)
	payload := make([]byte, 64)
	topUp := func() {
		for t := 0; t < tiles; t++ {
			for n.NI(msg.TileID(t)).QueuedPackets() < 4 {
				dst := msg.TileID(rng.Intn(tiles))
				if dst == msg.TileID(t) {
					dst = msg.TileID((int(dst) + 1) % tiles)
				}
				var m *msg.Message
				if k := len(free); k > 0 {
					m, free = free[k-1], free[:k-1]
					*m = msg.Message{}
				} else {
					m = &msg.Message{}
				}
				m.Type, m.SrcTile, m.DstTile, m.Payload = msg.TRequest, msg.TileID(t), dst, payload
				_ = n.NI(msg.TileID(t)).Send(m)
			}
		}
	}
	start := time.Now()
	for i := 0; i < cycles; i++ {
		if i%16 == 0 {
			topUp()
		}
		e.Step()
	}
	return expressRunOut{
		sent:      st.Counter("noc.msgs_sent").Value(),
		delivered: st.Counter("noc.msgs_delivered").Value(),
		hits:      st.Counter("noc.express_hits").Value(),
		flits:     st.Counter("noc.flits_routed").Value(),
		p99:       st.Histogram("noc.msg_latency_cycles").P99(),
		wall:      time.Since(start),
	}
}

// E18Express is the express-bypass hit-rate sweep plus the saturated rows.
func E18Express() Result {
	r := Result{
		ID: "E18", Title: "Express-channel bypass: hit rate vs offered load",
		Header: []string{"workload", "sent", "delivered", "express_hits", "hit%", "p99_lat", "ns/cycle"},
	}
	const horizon = sim.Cycle(8192)
	identical := true
	for _, gap := range []int{2, 8, 32, 256} {
		on := expressRun(gap, horizon, false)
		off := expressRun(gap, horizon, true)
		if on.sent != off.sent || on.delivered != off.delivered ||
			on.flits != off.flits || on.p99 != off.p99 {
			identical = false
		}
		hitPct := 0.0
		if on.sent > 0 {
			hitPct = 100 * float64(on.hits) / float64(on.sent)
		}
		r.AddRow("sparse 8x8 gap="+d(gap), u(on.sent), u(on.delivered),
			u(on.hits), f1(hitPct), f1(on.p99),
			f1(float64(on.wall.Nanoseconds())/float64(horizon)))
	}
	for _, m := range []struct{ w, h, cycles int }{{16, 16, 512}, {32, 32, 256}} {
		s := expressSaturated(m.w, m.h, m.cycles)
		hitPct := 0.0
		if s.sent > 0 {
			hitPct = 100 * float64(s.hits) / float64(s.sent)
		}
		r.AddRow("saturated "+d(m.w)+"x"+d(m.h), u(s.sent), u(s.delivered),
			u(s.hits), f1(hitPct), f1(s.p99),
			f1(float64(s.wall.Nanoseconds())/float64(m.cycles)))
	}
	if identical {
		r.Note("bypass-off differential: sent/delivered/flits_routed/p99 bit-identical for every sparse row")
	} else {
		r.Note("MISMATCH: bypass changed simulated outcome (equivalence bug)")
	}
	r.Note("saturated rows: the bypass never engages (hit%%=0 by construction) and adds no per-cycle cost")
	return r
}
