package bench

import (
	"time"

	"apiary/internal/msg"
	"apiary/internal/noc"
	"apiary/internal/obs"
	"apiary/internal/sim"
)

// obsRun drives request/reply traffic over an 8x8 mesh with the flight
// recorder at the given sampling rate (0 = off) and reports the counters,
// recorder accounting and wall-clock cost.
func obsRun(every int) (sent, delivered uint64, rec *obs.Recorder, histP99 float64, nsPerCycle float64) {
	e := sim.NewEngine(21)
	defer e.Close()
	st := sim.NewStats()
	n := noc.NewNetwork(e, st, noc.Config{Dims: noc.Dims{W: 8, H: 8}, Shards: 1})
	e.SetParallel(sim.ParallelOff)
	if every > 0 {
		rec = obs.NewRecorder(every, 8192)
		n.SetSpanSampler(rec)
	}
	tiles := n.Dims().Tiles()
	for i := 0; i < tiles; i++ {
		tile := msg.TileID(i)
		n.NI(tile).SetDeliver(func(m *msg.Message, lat sim.Cycle) {
			if m.Type == msg.TRequest {
				_ = n.NI(tile).Send(m.Reply(msg.TReply, nil))
			}
		})
	}
	rng := sim.NewRNG(21)
	var seq uint32
	const waves = 200
	for w := 0; w < waves; w++ {
		e.Schedule(sim.Cycle(1+4*w), func(now sim.Cycle) {
			for k := 0; k < 16; k++ {
				src := msg.TileID(rng.Intn(tiles))
				m := &msg.Message{Type: msg.TRequest, SrcTile: src,
					DstTile: msg.TileID(rng.Intn(tiles)), Seq: seq,
					Payload: make([]byte, 64)}
				seq++
				_ = n.NI(src).Send(m)
			}
		})
	}
	start := time.Now()
	e.Run(sim.Cycle(1 + 4*waves))
	e.RunUntil(n.Quiescent, 100000)
	nsPerCycle = float64(time.Since(start).Nanoseconds()) / float64(e.Now())
	sent = st.Counter("noc.msgs_sent").Value()
	delivered = st.Counter("noc.msgs_delivered").Value()
	histP99 = st.Histogram("noc.msg_latency_cycles").P99()
	return
}

// spanP99 computes the p99 end-to-end latency over the recorder's retained
// spans — the cross-check that the sampled spans measure the same
// distribution as the exhaustive histogram.
func spanP99(rec *obs.Recorder) float64 {
	ents := rec.Entries()
	if len(ents) == 0 {
		return 0
	}
	lats := make([]int, 0, len(ents))
	for _, e := range ents {
		lats = append(lats, int(e.Span.Latency()))
	}
	for i := 1; i < len(lats); i++ {
		for j := i; j > 0 && lats[j] < lats[j-1]; j-- {
			lats[j], lats[j-1] = lats[j-1], lats[j]
		}
	}
	return float64(lats[int(0.99*float64(len(lats)-1))])
}

// E15Observability quantifies the flight recorder: simulation results must
// be identical at every sampling rate (pure observation), sampled span p99
// should track the exhaustive histogram p99, and the wall-clock overhead of
// 1-in-64 sampling should be in the noise.
func E15Observability() Result {
	r := Result{
		ID:     "E15",
		Title:  "Observability: flight-recorder overhead and span accounting",
		Header: []string{"Sampling", "Sent", "Delivered", "Spans", "Correlated", "Hist-p99cy", "Span-p99cy", "ns/cycle"},
	}
	type run struct {
		label string
		every int
	}
	obsRun(0) // warm-up: page in code/data so the first row's ns/cycle isn't inflated
	var baseSent, baseDelivered uint64
	var baseP99, baseNs float64
	for i, cfg := range []run{{"off", 0}, {"1-in-64", 64}, {"every", 1}} {
		sent, delivered, rec, histP99, ns := obsRun(cfg.every)
		if i == 0 {
			baseSent, baseDelivered, baseP99, baseNs = sent, delivered, histP99, ns
		}
		spans, correl, sp99 := uint64(0), uint64(0), 0.0
		if rec != nil {
			spans, correl, sp99 = rec.Total(), rec.Correlated(), spanP99(rec)
		}
		r.AddRow(cfg.label, u(sent), u(delivered), u(spans), u(correl),
			f1(histP99), f1(sp99), f1(ns))
		if sent != baseSent || delivered != baseDelivered || histP99 != baseP99 {
			r.Note("DETERMINISM VIOLATION at %s: results differ from sampling-off run", cfg.label)
		}
		if i == 1 && baseNs > 0 {
			r.Note("1-in-64 sampling wall-clock overhead: %+.1f%% (single run, noisy; see BenchmarkMeshSaturated/Unsampled for the steady-state A/B)", (ns/baseNs-1)*100)
		}
	}
	return r
}
