package bench

import (
	"fmt"

	"apiary/internal/cluster"
	"apiary/internal/core"
	"apiary/internal/load"
	"apiary/internal/netsim"
	"apiary/internal/noc"
)

// E21 scenario shapes. Both are authored in the scenario DSL and compiled
// with load.ParseScenario — the bench dogfoods the same path apiaryd's
// -scenario flag takes. The class mix (8:2 get/put, 16/96-byte payloads)
// gives a mean service time of ~48 cycles at the echo backend, so one
// backend tile saturates near 20k rpMc and the three offered rates bracket
// the knee: under, near, and past capacity.
const (
	e21BoardScn = `scenario e21-board-r%d
seed 21
sessions 250000
target svc=40
timeout 20000
class get weight=8 bytes=16
class put weight=2 bytes=96
phase load dur=%d rate=%d
`
	e21FleetScn = `scenario e21-fleet-r%d%s
seed 22
sessions 1000000
target svc=40
timeout 20000
fleet boards=16 replicas=4 clients=8
class get weight=8 bytes=16
class put weight=2 bytes=96
phase load dur=%d rate=%d
%s`
)

const (
	e21BoardDur = 60000 // single-board phase length, cycles
	e21FleetDur = 40000 // fleet phase length, cycles
	e21Drain    = 30000 // run-out budget past scenario end
)

// e21Rates are the offered rates (rpMc) for the latency-vs-rate curve.
var e21Rates = []uint64{6000, 18000, 36000}

func e21ParseScn(text string) *load.Scenario {
	scn, err := load.ParseScenario([]byte(text))
	if err != nil {
		panic(fmt.Sprintf("e21: bad built-in scenario: %v", err))
	}
	return scn
}

func e21Row(r *Result, label string, pr load.PhaseReport) {
	r.AddRow(label,
		u(pr.OfferedRpMc), u(pr.GoodputRpMc),
		u(pr.Offered), u(pr.OK), u(pr.Denied), u(pr.Timeout), u(pr.Shed),
		f1(pr.P50), f1(pr.P99))
}

// E21Load sweeps offered rate against goodput and tail latency with the
// open-loop scenario harness: a single 4x4 board, then a 16-board fleet
// (4 replicas, 8 client generators, 10^6 synthetic sessions) with and
// without a mid-run kill of the primary replica board. Latency is stamped
// from each request's scheduled arrival cycle, so the curve is immune to
// coordinated omission — a saturated backend shows up as denials, timeouts
// and a p99 blow-up, never as a politely slowed generator. All columns are
// simulated (cycles/counts), so the table sits under the -compare gate.
func E21Load() Result {
	r := Result{
		ID:    "e21",
		Title: "Open-loop scenarios: goodput and tail latency vs offered rate",
		Header: []string{"Scenario", "OfferedRpMc", "GoodputRpMc",
			"Offered", "OK", "Denied", "Timeout", "Shed", "P50cy", "P99cy"},
	}

	for _, rate := range e21Rates {
		scn := e21ParseScn(fmt.Sprintf(e21BoardScn, rate, e21BoardDur, rate))
		br, err := load.NewBoardRun(scn, core.SystemConfig{
			Dims:            noc.Dims{W: 4, H: 4},
			ManagedMemBytes: 1 << 20,
		})
		if err != nil {
			r.Note("board rate %d: %v", rate, err)
			continue
		}
		br.RunScenario(e21Drain)
		e21Row(&r, fmt.Sprintf("board-r%d", rate), br.Report()[0])
	}

	fleet := func(rate uint64, kill bool) {
		label, killLine := "", ""
		if kill {
			label = "-kill"
			killLine = fmt.Sprintf("kill board=0 at=%d\n", e21FleetDur/2)
		}
		scn := e21ParseScn(fmt.Sprintf(e21FleetScn, rate, label, e21FleetDur, rate, killLine))
		fr, err := load.NewFleetRun(scn, cluster.Config{
			Board: core.SystemConfig{
				Dims:            noc.Dims{W: 3, H: 3},
				ManagedMemBytes: 1 << 20,
			},
			Link: netsim.LinkConfig{LatencyNs: 1000},
		})
		if err != nil {
			r.Note("fleet rate %d kill=%v: %v", rate, kill, err)
			return
		}
		defer fr.Close()
		fr.RunScenario(e21Drain)
		e21Row(&r, fmt.Sprintf("fleet16-r%d%s", rate, label), fr.Report()[0])
	}
	for _, rate := range e21Rates {
		fleet(rate, false)
	}
	fleet(e21Rates[1], true)

	r.Note("rates are rpMc (requests per 1e6 cycles); latency cycles are stamped from the scheduled arrival, not the send")
	r.Note("fleet16: 16 boards, 4 anti-affinity replicas of svc 40, 8 client boards sharing 1e6 sessions; kill row kills the primary replica board mid-phase")
	return r
}
