package bench

import (
	"strings"

	"apiary/internal/accel"
	"apiary/internal/apps"
	"apiary/internal/core"
	"apiary/internal/msg"
	"apiary/internal/netsim"
	"apiary/internal/netstack"
	"apiary/internal/noc"
	"apiary/internal/sim"
)

// E14RemoteService quantifies the paper's §6 question 3: what does it cost
// to place an OS service on a *remote* CPU instead of in on-board hardware?
// The same uppercase kernel is served (a) by a local hardware tile and (b)
// by a remote CPU behind a RemoteProxy tile; on-board clients are identical
// and hold an ordinary endpoint capability either way.
func E14RemoteService() Result {
	r := Result{
		ID: "E14", Title: "Service placement: on-board hardware tile vs remote CPU via proxy",
		Header: []string{"Placement", "p50cy", "p50us", "p99us", "Completed"},
	}

	const svc = msg.FirstUserService + 5
	upper := func(in []byte) ([]byte, msg.ErrCode) {
		return []byte(strings.ToUpper(string(in))), msg.EOK
	}

	// (a) Local hardware tile.
	{
		sys, err := core.NewSystem(core.SystemConfig{Dims: noc.Dims{W: 3, H: 3}})
		if err != nil {
			panic(err)
		}
		lat := sys.Stats.Histogram("lat")
		client := apps.NewRequester(svc, 100, 50,
			func(int) []byte { return []byte("payload for the service") }, lat)
		stage := apps.NewStage(apps.StageConfig{Name: "upper", Process: upper, BaseCycles: 8})
		if _, err := sys.Kernel.LoadApp(core.AppSpec{
			Name: "local",
			Accels: []core.AppAccel{
				{Name: "svc", New: func() accel.Accelerator { return stage }, Service: svc},
				{Name: "client", New: func() accel.Accelerator { return client },
					Connect: []msg.ServiceID{svc}},
			},
		}); err != nil {
			panic(err)
		}
		sys.RunUntil(client.Done, 50_000_000)
		r.AddRow("hardware tile", f1(lat.Median()),
			f2(sys.Engine.Micros(sim.Cycle(lat.Median()))),
			f2(sys.Engine.Micros(sim.Cycle(lat.P99()))),
			d(client.Responses()))
	}

	// (b) Remote CPU via proxy.
	{
		sys, err := core.NewSystem(core.SystemConfig{
			Dims: noc.Dims{W: 3, H: 3}, WithNet: true, NodeID: 1, LinkLatencyNs: linkLatNs,
		})
		if err != nil {
			panic(err)
		}
		const cpuNode = netsim.NodeID(77)
		cpu := netstack.NewSoftEndpoint(sys.Engine, sys.Stats, sys.Fabric, cpuNode,
			netsim.LinkConfig{Gbps: 100, LatencyNs: linkLatNs})
		cpu.OnDatagram(func(remote netsim.NodeID, _ uint16, data []byte, _ msg.TraceCtx) {
			seq, payload, ok := apps.DecodeProxyFrame(data)
			if !ok {
				return
			}
			out, _ := upper(payload)
			_ = cpu.Send(remote, 9001, apps.EncodeProxyFrame(seq, out))
		})

		proxy := apps.NewRemoteProxy(msg.NetAddr{Node: uint32(cpuNode), Flow: 9000}, 9001)
		lat := sys.Stats.Histogram("lat")
		client := apps.NewRequester(svc, 100, 50,
			func(int) []byte { return []byte("payload for the service") }, lat)
		if _, err := sys.Kernel.LoadApp(core.AppSpec{
			Name: "remote",
			Accels: []core.AppAccel{
				{Name: "proxy", New: func() accel.Accelerator { return proxy },
					Service: svc, WantNet: true},
				{Name: "client", New: func() accel.Accelerator { return client },
					Connect: []msg.ServiceID{svc}},
			},
		}); err != nil {
			panic(err)
		}
		sys.RunUntil(client.Done, 100_000_000)
		r.AddRow("remote CPU (proxy)", f1(lat.Median()),
			f2(sys.Engine.Micros(sim.Cycle(lat.Median()))),
			f2(sys.Engine.Micros(sim.Cycle(lat.P99()))),
			d(client.Responses()))
	}
	r.Note("clients are identical either way — placement is a kernel decision, not an application change (§6 Q3)")
	r.Note("the remote option pays two network traversals; it is the right home only for rarely-used or exceptionally complex services, exactly as the paper suggests")
	return r
}
