package bench

import (
	"fmt"

	"apiary/internal/accel"
	"apiary/internal/apps"
	"apiary/internal/core"
	"apiary/internal/monitor"
	"apiary/internal/msg"
	"apiary/internal/noc"
)

// echoStage builds an identity service stage (no compute cost) for IPC
// microbenchmarks.
func echoStage() *apps.Stage {
	return apps.NewStage(apps.StageConfig{
		Name:    "echo",
		Process: func(in []byte) ([]byte, msg.ErrCode) { return in, msg.EOK },
	})
}

// ipcRTT measures request/reply RTT between two accelerators placed by the
// kernel on a WxH board, with capability enforcement switched by enforce.
func ipcRTT(w, h, payload, n int, enforce bool) (med, p99 float64, hops int) {
	sys, err := core.NewSystem(core.SystemConfig{
		Dims: noc.Dims{W: w, H: h}, DisableCaps: !enforce,
	})
	if err != nil {
		panic(err)
	}
	lat := sys.Stats.Histogram("ipc.rtt")
	client := apps.NewRequester(msg.FirstUserService, n, 0,
		func(int) []byte { return make([]byte, payload) }, lat)
	client.MaxInFlight = 1
	// Two accelerators; the kernel places them on the first free tiles,
	// which for a 3-wide mesh are adjacent, and for wider meshes further
	// apart if we pad with filler tiles.
	spec := core.AppSpec{Name: "ipc", Accels: []core.AppAccel{
		{Name: "client", New: func() accel.Accelerator { return client },
			Connect: []msg.ServiceID{msg.FirstUserService}},
		{Name: "echo", New: func() accel.Accelerator { return echoStage() },
			Service: msg.FirstUserService},
	}}
	app, err := sys.Kernel.LoadApp(spec)
	if err != nil {
		panic(err)
	}
	dims := sys.Noc.Dims()
	hops = noc.Hops(dims.Coord(app.Placed[0].Tile), dims.Coord(app.Placed[1].Tile))
	if !sys.RunUntil(client.Done, 50_000_000) {
		panic("ipc bench did not complete")
	}
	return lat.Median(), lat.P99(), hops
}

// E6IPC measures on-chip IPC latency across payload sizes and the cost of
// monitor capability interposition (paper §4.5; the ablation isolates the
// monitor check from the transport).
func E6IPC() Result {
	r := Result{
		ID: "E6", Title: "IPC round trip over the NoC; capability-check ablation",
		Header: []string{"Payload", "RTT-p50cy", "RTT-p99cy", "NoCaps-p50cy", "CheckOverhead%"},
	}
	const n = 300
	for _, payload := range []int{8, 64, 256, 1024, 4096} {
		on50, on99, _ := ipcRTT(3, 3, payload, n, true)
		off50, _, _ := ipcRTT(3, 3, payload, n, false)
		ovh := 0.0
		if off50 > 0 {
			ovh = (on50 - off50) / off50 * 100
		}
		r.AddRow(d(payload), f1(on50), f1(on99), f1(off50), f1(ovh))
	}
	r.Note("capability checks are table lookups in the monitor; the transport (flit serialization) dominates at every size")
	return r
}

// E7RateLimit shows monitor token-bucket rate limiting protecting a victim
// from a flooding co-tenant (paper §4.5: "rate limiting [is] necessary to
// prevent malicious accelerators from ... causing resource exhaustion").
func E7RateLimit() Result {
	r := Result{
		ID: "E7", Title: "Victim outcome while a co-tenant floods the shared service",
		Header: []string{"Config", "VictimOK", "VictimBusyErrs", "Victim-p99cy", "FloodLimited"},
	}
	for _, limited := range []bool{false, true} {
		sys, err := core.NewSystem(core.SystemConfig{Dims: noc.Dims{W: 3, H: 3}})
		if err != nil {
			panic(err)
		}
		const shared = msg.FirstUserService
		lat := sys.Stats.Histogram("victim.lat")
		victim := apps.NewRequester(shared, 50, 300,
			func(int) []byte { return make([]byte, 64) }, lat)
		victim.MaxInFlight = 1
		flooder := apps.NewRequester(shared, 0, 0,
			func(int) []byte { return make([]byte, 1024) }, nil)
		flooder.MaxInFlight = 64

		floodAccel := core.AppAccel{
			Name: "flood", New: func() accel.Accelerator { return flooder },
			Connect: []msg.ServiceID{shared},
		}
		if limited {
			floodAccel.Rate = monitor.RateLimit{FlitsPerKCycle: 40, BurstFlits: 80}
		}
		_, err = sys.Kernel.LoadApp(core.AppSpec{
			Name: "tenants",
			Accels: []core.AppAccel{
				{Name: "svc", New: func() accel.Accelerator { return echoStage() }, Service: shared},
				{Name: "victim", New: func() accel.Accelerator { return victim },
					Connect: []msg.ServiceID{shared}},
				floodAccel,
			},
		})
		if err != nil {
			panic(err)
		}
		sys.RunUntil(victim.Done, 3_000_000)
		name := "no rate limit"
		if limited {
			name = "flooder limited"
		}
		limitedCount := sys.Stats.Counter("mon.rate_drops").Value()
		r.AddRow(name, fmt.Sprintf("%d/50", victim.Responses()),
			d(victim.Errors()), f1(lat.P99()), u(limitedCount))
	}
	r.Note("the victim shares one echo service tile with a flooder; without the token bucket the flooder keeps the service queue full and the victim's requests bounce with EBusy")
	return r
}
