package bench

import (
	"fmt"

	"apiary/internal/accel"
	"apiary/internal/apps"
	"apiary/internal/core"
	"apiary/internal/fabric"
	"apiary/internal/hostos"
	"apiary/internal/msg"
	"apiary/internal/netsim"
	"apiary/internal/netstack"
	"apiary/internal/noc"
	"apiary/internal/sim"
)

// E11Scenario runs the paper's §2 motivating configuration end to end: a
// video-processing pipeline (client -> load-balanced encoder replicas ->
// third-party compressor) sharing the board with another user's multi-
// tenant KV store, with the KV app actively probing the video app's
// services.
func E11Scenario() Result {
	r := Result{
		ID: "E11", Title: "§2 scenario: video pipeline + tenant KV store sharing one board",
		Header: []string{"Metric", "Value"},
	}
	sys, err := core.NewSystem(core.SystemConfig{Dims: noc.Dims{W: 4, H: 3}})
	if err != nil {
		panic(err)
	}
	const (
		svcLB   = msg.FirstUserService
		svcEnc1 = msg.FirstUserService + 1
		svcEnc2 = msg.FirstUserService + 2
		svcComp = msg.FirstUserService + 3
		svcKV   = msg.FirstUserService + 4
	)
	vLat := sys.Stats.Histogram("video.lat")
	vClient := apps.NewRequester(svcLB, 200, 100,
		func(int) []byte { return make([]byte, 1024) }, vLat)
	lb := apps.NewLoadBalancer([]msg.ServiceID{svcEnc1, svcEnc2})
	if _, err := sys.Kernel.LoadApp(core.AppSpec{
		Name: "video",
		Accels: []core.AppAccel{
			{Name: "client", New: func() accel.Accelerator { return vClient }, Connect: []msg.ServiceID{svcLB}},
			{Name: "lb", New: func() accel.Accelerator { return lb }, Service: svcLB, Connect: []msg.ServiceID{svcEnc1, svcEnc2}},
			{Name: "enc1", New: func() accel.Accelerator { return apps.NewEncoder(svcComp) }, Service: svcEnc1, Connect: []msg.ServiceID{svcComp}},
			{Name: "enc2", New: func() accel.Accelerator { return apps.NewEncoder(svcComp) }, Service: svcEnc2, Connect: []msg.ServiceID{svcComp}},
			{Name: "comp", New: func() accel.Accelerator { return apps.NewCompressor() }, Service: svcComp},
		},
	}); err != nil {
		panic(err)
	}

	kLat := sys.Stats.Histogram("kv.lat")
	kClient := apps.NewRequester(svcKV, 200, 60, func(i int) []byte {
		if i%2 == 0 {
			return apps.EncodeKVReq(apps.KVPut, fmt.Sprintf("key%d", i), "value")
		}
		return apps.EncodeKVReq(apps.KVGet, fmt.Sprintf("key%d", i-1), "")
	}, kLat)
	probe := apps.NewRequester(svcComp, 50, 100, func(int) []byte { return []byte("snoop") }, nil)
	if _, err := sys.Kernel.LoadApp(core.AppSpec{
		Name: "kvtenant",
		Accels: []core.AppAccel{
			{Name: "kv", New: func() accel.Accelerator { return apps.NewKVStore(4) }, Service: svcKV},
			{Name: "client", New: func() accel.Accelerator { return kClient }, Connect: []msg.ServiceID{svcKV}},
			{Name: "probe", New: func() accel.Accelerator { return probe }},
		},
	}); err != nil {
		panic(err)
	}

	sys.RunUntil(func() bool {
		return vClient.Done() && kClient.Done() && probe.Done()
	}, 100_000_000)

	r.AddRow("video requests completed", fmt.Sprintf("%d/200", vClient.Responses()))
	r.AddRow("video p50 latency (cycles)", f1(vLat.Median()))
	r.AddRow("encoder replica split", fmt.Sprintf("%d/%d", lb.PerReplica[0], lb.PerReplica[1]))
	r.AddRow("kv requests completed", fmt.Sprintf("%d/200", kClient.Responses()))
	r.AddRow("kv p50 latency (cycles)", f1(kLat.Median()))
	r.AddRow("kv->video snoop attempts denied", fmt.Sprintf("%d/50", probe.Errors()))
	r.AddRow("monitor capability checks", u(sys.Stats.Counter("mon.cap_checks").Value()))
	r.AddRow("monitor denials", u(sys.Stats.Counter("mon.denied").Value()))
	r.Note("the compression accelerator is third-party code reused as-is; the KV tenant's probe shows mutual distrust enforced by monitors, not by app cooperation")
	return r
}

// E12ScaleOut replicates the encoder behind the load balancer and measures
// throughput scaling (paper §3 Scalability), then contrasts Apiary's
// spatial multiplexing with AmorphOS-style temporal multiplexing.
func E12ScaleOut() Result {
	r := Result{
		ID: "E12", Title: "Encoder scale-out behind the internal load balancer",
		Header: []string{"Replicas", "Completed", "Cycles", "ReqPerMcycle", "Speedup"},
	}
	base := 0.0
	for _, n := range []int{1, 2, 4, 6} {
		sys, err := core.NewSystem(core.SystemConfig{Dims: noc.Dims{W: 4, H: 4}})
		if err != nil {
			panic(err)
		}
		var reps []msg.ServiceID
		accels := []core.AppAccel{}
		for i := 0; i < n; i++ {
			svc := msg.FirstUserService + 10 + msg.ServiceID(i)
			reps = append(reps, svc)
			accels = append(accels, core.AppAccel{
				Name:    fmt.Sprintf("enc%d", i),
				New:     func() accel.Accelerator { return apps.NewEncoder(0) },
				Service: svc,
			})
		}
		lb := apps.NewLoadBalancer(reps)
		client := apps.NewRequester(msg.FirstUserService, 300, 0,
			func(int) []byte { return make([]byte, 2048) }, nil)
		client.MaxInFlight = 2 * n
		accels = append(accels,
			core.AppAccel{Name: "lb", New: func() accel.Accelerator { return lb },
				Service: msg.FirstUserService, Connect: reps},
			core.AppAccel{Name: "client", New: func() accel.Accelerator { return client },
				Connect: []msg.ServiceID{msg.FirstUserService}},
		)
		if _, err := sys.Kernel.LoadApp(core.AppSpec{Name: "scale", Accels: accels}); err != nil {
			panic(err)
		}
		start := sys.Engine.Now()
		sys.RunUntil(client.Done, 100_000_000)
		cycles := sys.Engine.Now() - start
		tput := float64(client.Responses()) / float64(cycles) * 1e6
		if n == 1 {
			base = tput
		}
		r.AddRow(d(n), fmt.Sprintf("%d/300", client.Responses()), u(uint64(cycles)),
			f2(tput), f2(tput/base))
	}
	// The temporal-multiplexing contrast: serving 4 apps' worth of the
	// same work by reconfiguring one slot (AmorphOS model).
	reqCycles := sim.Cycle(1100) // ~2048B encode occupancy
	spatial := 300 * int(reqCycles) / 4
	temporal := hostos.ReconfigMuxCycles(4, 75, 8, reqCycles, 300_000)
	r.Note("spatial vs temporal multiplexing of 4 workloads x75 reqs: Apiary tiles ~%d cycles (parallel), reconfig-mux %d cycles", spatial, temporal)
	r.Note("scale-out needed no accelerator changes: replicas registered distinct services and the balancer spread load (paper §3)")
	return r
}

// E13Portability loads the same application manifest on the 2010-era 10G
// board and the current 100G board; the HAL absorbs the vendor interface
// differences (§2's 10G-vs-100G reset-process complaint).
func E13Portability() Result {
	r := Result{
		ID: "E13", Title: "One manifest on both boards: vendor cores differ, app code does not",
		Header: []string{"Board", "Device", "EthCore", "Gbps", "Served", "RTT-p50us"},
	}
	for _, boardName := range []string{"v7-10g", "usp-100g"} {
		board, _ := fabric.LookupBoard(boardName)
		port := board.NewEthernet()
		coreName := port.CoreName()

		sys, err := core.NewSystem(core.SystemConfig{
			Board: boardName, Dims: noc.Dims{W: 3, H: 3},
			WithNet: true, NodeID: serverNode, LinkLatencyNs: linkLatNs,
		})
		if err != nil {
			panic(err)
		}
		// The identical manifest both times.
		bridge := apps.NewNetBridge(reqFlow)
		bridge.Process = func(in []byte) ([]byte, msg.ErrCode) { return checksumReply(in), msg.EOK }
		if _, err := sys.Kernel.LoadApp(core.AppSpec{
			Name: "portable",
			Accels: []core.AppAccel{
				{Name: "b", New: func() accel.Accelerator { return bridge }, WantNet: true},
			},
		}); err != nil {
			panic(err)
		}
		client := netstack.NewSoftEndpoint(sys.Engine, sys.Stats, sys.Fabric, clientNode,
			netsim.LinkConfig{Gbps: 100, LatencyNs: linkLatNs})
		sys.Run(100)
		h := closedLoop(sys.Engine, client, 1024, 100)
		r.AddRow(boardName, board.Device.PartNumber, coreName,
			f1(port.LineRateGbps()), u(bridge.Served),
			f2(sys.Engine.Micros(sim.Cycle(h.Median()))))
	}
	r.Note("the 10G core needs a PMA->PCS reset dance and staged TX; the 100G core a global reset and enables — the manifest and accelerator code are byte-identical")
	r.Note("the RTT difference is wire serialization at 10 vs 100 Gbit, not software")
	return r
}
