package bench

import (
	"fmt"

	"apiary/internal/accel"
	"apiary/internal/apps"
	"apiary/internal/core"
	"apiary/internal/fault"
	"apiary/internal/monitor"
	"apiary/internal/msg"
	"apiary/internal/noc"
	"apiary/internal/sim"
)

// E16 timeline constants: the chaos engine hangs the victim server at
// hangAt for hangDur cycles; the heartbeat watchdog must trip while the
// hang is live, and the hang must end before the PR-delayed recovery so the
// re-admitted tile is actually serving.
const (
	e16HangAt  sim.Cycle = 200_000
	e16HangDur sim.Cycle = 150_000
)

// E16BlastRadius runs the full chaos loop on one board: a seed-driven fault
// plan hangs a victim service mid-run; the monitor heartbeat watchdog
// fail-stops the tile; the kernel quarantines it (drain, endpoint cap
// revocation, region marked for reload) and re-admits it after partial
// reconfiguration. The table quantifies the blast radius: healthy apps'
// tail latency through all three phases, the victim's clients retreating
// with backoff and resuming after recovery.
func E16BlastRadius() Result {
	r := Result{
		ID: "E16", Title: "Blast radius of a contained fault: chaos hang, quarantine, recovery",
		Header: []string{"Phase", "HealthyP50", "HealthyP99", "HealthyResp", "VictimResp", "VictimErrs", "Fenced"},
	}
	const (
		svcVictim   = msg.FirstUserService
		svcHealthyA = msg.FirstUserService + 1
		svcHealthyB = msg.FirstUserService + 2
	)
	plan := &fault.Plan{
		Seed: 42,
		Events: []fault.Event{
			{Kind: fault.KindHang, At: e16HangAt, Tile: 2, Dur: e16HangDur},
		},
	}
	sys, err := core.NewSystem(core.SystemConfig{
		Dims:      noc.Dims{W: 4, H: 4},
		Detect:    monitor.DefaultDetect,
		FaultPlan: plan,
	})
	if err != nil {
		panic(err)
	}

	// Victim app first so first-fit puts its server on tile 2 (the planned
	// hang target). Its client retries timed-out requests and backs off
	// exponentially while the service is fenced.
	vClient := apps.NewRequester(svcVictim, 4000, 500,
		func(int) []byte { return make([]byte, 128) }, nil)
	vClient.RetryLimit = 2
	vClient.BackoffBase = 1_000
	vClient.BackoffMax = 64_000
	if _, err := sys.Kernel.LoadApp(core.AppSpec{
		Name:    "victimapp",
		Restart: true,
		Accels: []core.AppAccel{
			{Name: "s", New: func() accel.Accelerator { return echoStage() }, Service: svcVictim},
			{Name: "c", New: func() accel.Accelerator { return vClient }, Connect: []msg.ServiceID{svcVictim}},
		},
	}); err != nil {
		panic(err)
	}
	// Two unrelated apps sharing one latency histogram: their traffic is the
	// blast-radius probe.
	hLat := sys.Stats.Histogram("healthy.lat")
	mkHealthy := func(name string, svc msg.ServiceID) *apps.Requester {
		c := apps.NewRequester(svc, 8000, 300,
			func(int) []byte { return make([]byte, 128) }, hLat)
		if _, err := sys.Kernel.LoadApp(core.AppSpec{
			Name: name,
			Accels: []core.AppAccel{
				{Name: "s", New: func() accel.Accelerator { return echoStage() }, Service: svc},
				{Name: "c", New: func() accel.Accelerator { return c }, Connect: []msg.ServiceID{svc}},
			},
		}); err != nil {
			panic(err)
		}
		return c
	}
	hA := mkHealthy("healthya", svcHealthyA)
	hB := mkHealthy("healthyb", svcHealthyB)
	healthyResp := func() int { return hA.Responses() + hB.Responses() }

	row := func(phase string) {
		r.AddRow(phase, f1(hLat.Median()), f1(hLat.P99()),
			d(healthyResp()), d(vClient.Responses()), d(vClient.Errors()),
			d(len(sys.Kernel.QuarantinedTiles())))
	}

	// Phase 1 — pre-fault baseline: everything up to the injected hang.
	sys.Run(e16HangAt)
	preP99 := hLat.P99()
	row("pre-fault")
	hLat.Reset()

	// Phase 2 — fault live: hang injected, watchdog trips, tile fenced.
	var faultAt, quarAt sim.Cycle
	sys.RunUntil(func() bool {
		if len(sys.Kernel.Faults()) > 0 && faultAt == 0 {
			faultAt = sys.Engine.Now()
		}
		return sys.Kernel.Quarantines() >= 1
	}, 2_000_000)
	quarAt = sys.Engine.Now()
	victimRespAtQuar := vClient.Responses()
	row("quarantined")
	duringP99 := hLat.P99()
	hLat.Reset()

	// Phase 3 — recovery: PR reload completes and the tile is re-admitted.
	sys.RunUntil(func() bool { return sys.Kernel.Recoveries() >= 1 }, 2_000_000)
	recovAt := sys.Engine.Now()
	// Let the recovered service prove it is serving again.
	sys.RunUntil(func() bool {
		return vClient.Responses() >= victimRespAtQuar+20
	}, 5_000_000)
	row("post-recovery")
	postP99 := hLat.P99()

	degrade := 0.0
	if preP99 > 0 {
		degrade = (duringP99 - preP99) / preP99 * 100
	}
	r.AddRow("timeline", "", "", "", "", "", "")
	r.AddRow("  hang injected (cycle)", u(uint64(e16HangAt)), "", "", "", "", "")
	r.AddRow("  watchdog fault (cycle)", u(uint64(faultAt)), "", "", "", "", "")
	r.AddRow("  quarantined (cycle)", u(uint64(quarAt)), "", "", "", "", "")
	r.AddRow("  re-admitted (cycle)", u(uint64(recovAt)), "", "", "", "", "")
	r.AddRow("  faults injected", u(sys.Fault.Injected()), "", "", "", "", "")
	r.AddRow("  victim retransmits", d(vClient.Retransmits()), "", "", "", "", "")
	r.AddRow("  healthy p99 delta during fault", fmt.Sprintf("%+.1f%%", degrade), "", "", "", "", "")
	r.Note("healthy p99 pre=%.1f during=%.1f post=%.1f cycles: the fenced tile's fault never leaves its tile — neighbours see noise, not an outage", preP99, duringP99, postP99)
	r.Note("deterministic: same seed, same plan => bit-identical run at any shard count (see internal/fault chaos tests)")
	return r
}
