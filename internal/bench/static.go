package bench

import (
	"fmt"

	"apiary/internal/accel"
	"apiary/internal/apps"
	"apiary/internal/core"
	"apiary/internal/fabric"
	"apiary/internal/msg"
	"apiary/internal/noc"
)

// E1Table1 regenerates the paper's Table 1 from the device catalog and
// verifies the generational-scaling observation drawn from it.
func E1Table1() Result {
	r := Result{
		ID: "E1", Title: "Table 1: logic cells, smallest/largest parts per family",
		Header: []string{"Family", "Year", "Part", "LogicCells"},
	}
	for _, dev := range fabric.Catalog {
		r.AddRow(string(dev.Family), d(dev.Year), dev.PartNumber, d(dev.LogicCells))
	}
	s, l := fabric.GenerationalScaling(fabric.Virtex7, fabric.VirtexUltraScale)
	r.Note("smallest-part scaling %sx (paper: ~1.5x, \"increased by about 50%%\")", f2(s))
	r.Note("largest-part scaling %sx (paper rounds to \"3x\")", f2(l))
	return r
}

// E2Figure1 instantiates the paper's Figure 1: a tiled board running two
// applications, each spanning multiple accelerators, with per-tile monitor
// and router; then demonstrates the isolation property the figure implies.
func E2Figure1() Result {
	r := Result{
		ID: "E2", Title: "Figure 1 configuration on a 3x3 board",
		Header: []string{"Tile", "Coord", "Role", "App", "Service"},
	}
	sys, err := core.NewSystem(core.SystemConfig{Dims: noc.Dims{W: 3, H: 3}})
	if err != nil {
		r.Note("boot failed: %v", err)
		return r
	}
	const (
		svcEnc  = msg.FirstUserService
		svcComp = msg.FirstUserService + 1
		svcKV   = msg.FirstUserService + 2
	)
	encClient := apps.NewRequester(svcEnc, 20, 50,
		func(int) []byte { return make([]byte, 512) }, nil)
	_, err = sys.Kernel.LoadApp(core.AppSpec{
		Name: "app1-video",
		Accels: []core.AppAccel{
			{Name: "client", New: func() accel.Accelerator { return encClient }, Connect: []msg.ServiceID{svcEnc}},
			{Name: "encoder", New: func() accel.Accelerator { return apps.NewEncoder(svcComp) }, Service: svcEnc, Connect: []msg.ServiceID{svcComp}},
			{Name: "compress", New: func() accel.Accelerator { return apps.NewCompressor() }, Service: svcComp},
		},
	})
	if err != nil {
		r.Note("app1 load failed: %v", err)
		return r
	}
	kvClient := apps.NewRequester(svcKV, 20, 50,
		func(i int) []byte { return apps.EncodeKVReq(apps.KVPut, fmt.Sprintf("k%d", i), "v") }, nil)
	_, err = sys.Kernel.LoadApp(core.AppSpec{
		Name: "app2-kv",
		Accels: []core.AppAccel{
			{Name: "kv", New: func() accel.Accelerator { return apps.NewKVStore(4) }, Service: svcKV},
			{Name: "tenant", New: func() accel.Accelerator { return kvClient }, Connect: []msg.ServiceID{svcKV}},
		},
	})
	if err != nil {
		r.Note("app2 load failed: %v", err)
		return r
	}

	sys.RunUntil(func() bool { return encClient.Done() && kvClient.Done() }, 5_000_000)

	dims := sys.Noc.Dims()
	for t := 0; t < dims.Tiles(); t++ {
		id := msg.TileID(t)
		role, app, svc := "free slot", "-", "-"
		switch id {
		case core.KernelTile:
			role, app = "kernel (monitor+router static)", "apiary"
		case core.MemTile:
			role, app, svc = "memory service", "apiary", "SvcMemory"
		default:
			if sh := sys.Kernel.Shell(id); sh != nil {
				role = sh.Accelerator().Name()
				for _, pr := range sys.Kernel.Procs() {
					if pr.Tile == id {
						app = pr.App
						break
					}
				}
			}
		}
		r.AddRow(d(t), dims.Coord(id).String(), role, app, svc)
	}
	r.Note("app1 completed %d/20 requests, app2 %d/20 — both apps ran concurrently",
		encClient.Responses(), kvClient.Responses())
	denials := len(sys.Tracer.Denials())
	r.Note("monitor denials during run: %d (expected 0 — all traffic was authorized)", denials)

	// The figure's implicit property: app2 cannot reach app1's services.
	probe := apps.NewRequester(svcEnc, 1, 1, func(int) []byte { return []byte("x") }, nil)
	_, err = sys.Kernel.LoadApp(core.AppSpec{
		Name:   "app2-probe",
		Accels: []core.AppAccel{{Name: "p", New: func() accel.Accelerator { return probe }}},
	})
	if err == nil {
		sys.RunUntil(probe.Done, 1_000_000)
		r.Note("cross-app probe into app1's encoder: %d errors, %d successes (want 1 error)",
			probe.Errors(), probe.Responses())
	}
	return r
}

// E3MonitorOverhead sweeps tile counts over every Table 1 part and reports
// the fraction of the device Apiary's static framework consumes — the
// paper's first open question (§6).
func E3MonitorOverhead() Result {
	r := Result{
		ID: "E3", Title: "Apiary framework area vs tile count (cap table: 64 slots)",
		Header: []string{"Part", "Tiles", "FrameworkCells", "Overhead%", "CellsPerSlot"},
	}
	am := fabric.DefaultAreaModel
	const capSlots = 64
	for _, dev := range fabric.Catalog {
		for _, tiles := range []int{4, 8, 16, 32, 64} {
			oh := am.StaticOverhead(tiles, capSlots)
			frac := am.OverheadFraction(dev, tiles, capSlots) * 100
			per := am.CellsPerTileSlot(dev, tiles, capSlots)
			perStr := d(per)
			if per <= 0 {
				perStr = "does not fit"
			}
			r.AddRow(dev.PartNumber, d(tiles), d(oh), f1(frac), perStr)
		}
	}
	r.Note("per-tile monitor: %d cells + %d/cap-slot; router: %d cells",
		am.MonitorCells, am.MonitorPerCap, am.RouterCells)
	r.Note("framework cost grows linearly with tiles; modern parts (VU29P) keep 64 tiles under ~25%% overhead, the 2010 parts cannot")
	return r
}
