package bench

import (
	"fmt"

	"apiary/internal/accel"
	"apiary/internal/apps"
	"apiary/internal/core"
	"apiary/internal/msg"
	"apiary/internal/noc"
	"apiary/internal/sim"
)

// E8FailStop injects a fault into one application mid-run and measures
// (a) that an unrelated application's throughput is unaffected and (b) how
// quickly the faulted app's clients get errors instead of hanging
// (paper §4.4: fail-stop plus "returning an error to any accelerator that
// tries to communicate with it").
func E8FailStop() Result {
	r := Result{
		ID: "E8", Title: "Fail-stop containment: fault one app, watch its neighbour",
		Header: []string{"Metric", "Value"},
	}
	sys, err := core.NewSystem(core.SystemConfig{Dims: noc.Dims{W: 3, H: 3}})
	if err != nil {
		panic(err)
	}
	const (
		svcVictim  = msg.FirstUserService
		svcHealthy = msg.FirstUserService + 1
	)
	// The app that will fault after 50 requests.
	vClient := apps.NewRequester(svcVictim, 400, 200,
		func(int) []byte { return make([]byte, 128) }, nil)
	faulty := apps.NewFaulty(echoStage(), 50)
	if _, err := sys.Kernel.LoadApp(core.AppSpec{
		Name: "victimapp",
		Accels: []core.AppAccel{
			{Name: "c", New: func() accel.Accelerator { return vClient }, Connect: []msg.ServiceID{svcVictim}},
			{Name: "s", New: func() accel.Accelerator { return faulty }, Service: svcVictim},
		},
	}); err != nil {
		panic(err)
	}
	// The unrelated app.
	hLat := sys.Stats.Histogram("healthy.lat")
	hClient := apps.NewRequester(svcHealthy, 400, 200,
		func(int) []byte { return make([]byte, 128) }, hLat)
	if _, err := sys.Kernel.LoadApp(core.AppSpec{
		Name: "healthyapp",
		Accels: []core.AppAccel{
			{Name: "c", New: func() accel.Accelerator { return hClient }, Connect: []msg.ServiceID{svcHealthy}},
			{Name: "s", New: func() accel.Accelerator { return echoStage() }, Service: svcHealthy},
		},
	}); err != nil {
		panic(err)
	}

	// Phase 1: before the fault (first ~40 healthy responses).
	sys.RunUntil(func() bool { return hClient.Responses() >= 40 }, 10_000_000)
	preP50 := hLat.Median()
	hLat.Reset()

	// Run to the fault and past it.
	var faultCycle sim.Cycle
	sys.RunUntil(func() bool {
		if len(sys.Kernel.Faults()) > 0 && faultCycle == 0 {
			faultCycle = sys.Engine.Now()
		}
		return hClient.Done()
	}, 50_000_000)
	postP50 := hLat.Median()

	// Victim clients must observe errors, not silence.
	sys.RunUntil(func() bool { return vClient.Errors() > 0 }, 10_000_000)

	r.AddRow("fault injected after victim requests", "50")
	r.AddRow("healthy app p50 before fault (cycles)", f1(preP50))
	r.AddRow("healthy app p50 after fault (cycles)", f1(postP50))
	r.AddRow("healthy app completed", fmt.Sprintf("%d/400", hClient.Responses()))
	r.AddRow("victim successes before stop", d(vClient.Responses()))
	r.AddRow("victim errors (EFailStopped NACKs)", d(vClient.Errors()))
	r.AddRow("fault reports at kernel", d(len(sys.Kernel.Faults())))
	r.Note("fail-stop drains the faulted tile only; the neighbour's latency is unchanged and the victim's clients unblock with errors")
	return r
}

// E9Preemption contrasts the two fault models of §4.4 on the same
// multi-tenant KV store: a concurrent-only accelerator fail-stops the whole
// tile (all tenants down); a preemptible one loses only the faulting
// context.
func E9Preemption() Result {
	r := Result{
		ID: "E9", Title: "Fault blast radius: concurrent-only vs preemptible accelerator",
		Header: []string{"Model", "FaultedCtx", "TileState", "Tenant1Alive", "Tenant1Keys"},
	}

	run := func(preemptible bool) {
		sys, err := core.NewSystem(core.SystemConfig{Dims: noc.Dims{W: 3, H: 3}})
		if err != nil {
			panic(err)
		}
		kv := apps.NewKVStore(2)
		var logic accel.Accelerator = kv
		if !preemptible {
			// concurrentKV hides the Preemptible methods.
			logic = &concurrentKV{kv}
		}
		app, err := sys.Kernel.LoadApp(core.AppSpec{
			Name:   "kv",
			Accels: []core.AppAccel{{Name: "kv", New: func() accel.Accelerator { return logic }, Service: msg.FirstUserService}},
		})
		if err != nil {
			panic(err)
		}
		tile := app.Placed[0].Tile

		// Seed tenant 1 with data via direct context injection, then fault
		// context 0.
		kvPut(kv, 1, "alpha", "1")
		kvPut(kv, 1, "beta", "2")

		sys.Run(10)
		sys.Kernel.Monitor(tile).ForceFault(0, accel.FaultExplicit)
		sys.Run(1000)

		state := sys.Kernel.Shell(tile).State().String()
		alive := sys.Kernel.Shell(tile).State() == accel.Running &&
			!sys.Kernel.Shell(tile).CtxDead(1)
		model := "concurrent-only"
		if preemptible {
			model = "preemptible"
		}
		r.AddRow(model, "0", state, fmt.Sprintf("%v", alive), d(kv.Len(1)))
	}
	run(false)
	run(true)
	r.Note("preemptible accelerators externalize per-context state (SYNERGY-style), so the monitor kills only the faulting process; concurrent-only tiles can at best fail-stop")
	return r
}

// kvPut seeds a tenant directly (harness-side setup, not the message path).
func kvPut(kv *apps.KVStore, ctx uint8, k, v string) {
	st, _ := kv.SaveContext(ctx)
	// append record
	rec := apps.EncodeKVReq(0, k, v)[1:] // reuse length-prefixed k/v layout
	_ = kv.RestoreContext(ctx, append(st, rec...))
}

// concurrentKV forwards only the base Accelerator interface, modelling an
// accelerator that did not externalize its per-context state. (It must not
// embed KVStore: embedding would promote the Preemptible methods too.)
type concurrentKV struct{ kv *apps.KVStore }

func (c *concurrentKV) Name() string      { return "kv-concurrent" }
func (c *concurrentKV) Contexts() int     { return c.kv.Contexts() }
func (c *concurrentKV) Reset()            { c.kv.Reset() }
func (c *concurrentKV) Tick(p accel.Port) { c.kv.Tick(p) }
