// Package bench implements the experiment harness: one entry per
// table/figure/claim in EXPERIMENTS.md. Each experiment builds its systems
// from scratch (fresh engine, fresh seed), runs the workload, and returns a
// Result whose rows are what cmd/apiary-bench prints and what bench_test.go
// asserts shape properties on.
package bench

import (
	"fmt"
	"strings"
)

// Result is one experiment's output table.
type Result struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a formatted row.
func (r *Result) AddRow(cells ...string) { r.Rows = append(r.Rows, cells) }

// Note appends a free-text note.
func (r *Result) Note(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Cell returns the named column of row i ("" if missing).
func (r *Result) Cell(i int, col string) string {
	for j, h := range r.Header {
		if h == col && i < len(r.Rows) && j < len(r.Rows[i]) {
			return r.Rows[i][j]
		}
	}
	return ""
}

// String renders an aligned text table.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i < len(widths) {
				fmt.Fprintf(&b, "%-*s  ", widths[i], c)
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	line(r.Header)
	for _, row := range r.Rows {
		line(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Experiment couples an ID with its runner.
type Experiment struct {
	ID    string
	Title string
	Run   func() Result
}

// All lists every experiment in EXPERIMENTS.md order.
var All = []Experiment{
	{"e1", "Table 1: FPGA logic-cell scaling", E1Table1},
	{"e2", "Figure 1: tiled architecture with two isolated apps", E2Figure1},
	{"e3", "Monitor/framework area overhead vs tile count", E3MonitorOverhead},
	{"e4", "Direct-attached vs host-mediated request latency", E4Latency},
	{"e5", "Energy per request: Apiary vs host-mediated", E5Energy},
	{"e6", "IPC latency & monitor interposition overhead", E6IPC},
	{"e7", "Rate limiting under a flooding accelerator", E7RateLimit},
	{"e8", "Fail-stop fault containment", E8FailStop},
	{"e9", "Concurrent fail-stop vs preemptible context kill", E9Preemption},
	{"e10", "Segments vs pages: fragmentation and translation state", E10SegVsPage},
	{"e11", "Section 2 scenario: video pipeline + multi-tenant KV", E11Scenario},
	{"e12", "Scale-out throughput of replicated encoders", E12ScaleOut},
	{"e13", "Portability: one manifest on 10G and 100G boards", E13Portability},
	{"e14", "Service placement: hardware tile vs remote CPU proxy", E14RemoteService},
	{"e15", "Observability: flight-recorder overhead and span accounting", E15Observability},
	{"e16", "Blast radius of a contained fault (chaos engine)", E16BlastRadius},
	{"e17", "Graceful degradation: load shedding and health-aware failover", E17Degrade},
	{"e18", "Express-channel bypass: hit rate vs offered load", E18Express},
	{"e19", "Multi-board fleet: cross-board RPC and whole-board failover", E19Fleet},
	{"e20", "Fleet observability: distributed tracing as pure observation", E20FleetObs},
	{"e21", "Open-loop scenarios: goodput and tail latency vs offered rate", E21Load},
	{"e22", "Live migration under load: goodput dip, recovery, and abort", E22Migrate},
}

// ByID finds an experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range All {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func d(v int) string      { return fmt.Sprintf("%d", v) }
func u(v uint64) string   { return fmt.Sprintf("%d", v) }
