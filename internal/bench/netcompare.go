package bench

import (
	"apiary/internal/accel"
	"apiary/internal/apps"
	"apiary/internal/core"
	"apiary/internal/energy"
	"apiary/internal/hostos"
	"apiary/internal/msg"
	"apiary/internal/netsim"
	"apiary/internal/netstack"
	"apiary/internal/noc"
	"apiary/internal/sim"
)

// The shared service kernel for the E4/E5 comparison: an FNV checksum with
// a fixed 16-cycle pipeline occupancy on both deployments, so the *only*
// difference between the two columns is the path to reach it.
const computeCycles = 16

func checksumReply(in []byte) []byte {
	h := apps.Checksum64(in)
	out := make([]byte, 8)
	for i := 0; i < 8; i++ {
		out[i] = byte(h >> (8 * i))
	}
	return out
}

// netPairStats is one deployment's measurement.
type netPairStats struct {
	p50us, p99us float64
	njPerReq     float64
	cpuShare     float64 // fraction of energy spent in the CPU
}

const (
	clientNode = netsim.NodeID(100)
	serverNode = netsim.NodeID(1)
	reqFlow    = uint16(4000)
	linkLatNs  = 1000 // one-way per hop: 2 us client<->server propagation
)

// closedLoop drives n sequential request/response pairs of the given size
// through ep toward serverNode and records RTTs in cycles.
func closedLoop(e *sim.Engine, ep *netstack.SoftEndpoint, size, n int) *sim.Histogram {
	h := &sim.Histogram{Name: "rtt"}
	payload := make([]byte, size)
	for i := range payload {
		payload[i] = byte(i)
	}
	var t0 sim.Cycle
	done := 0
	ep.OnDatagram(func(_ netsim.NodeID, _ uint16, _ []byte, _ msg.TraceCtx) {
		h.Observe(float64(e.Now() - t0))
		done++
		if done < n {
			t0 = e.Now()
			_ = ep.Send(serverNode, reqFlow, payload)
		}
	})
	t0 = e.Now()
	_ = ep.Send(serverNode, reqFlow, payload)
	e.RunUntil(func() bool { return done >= n }, 50_000_000)
	return h
}

// measureDirect runs the Apiary deployment: client -> NIC -> hardware
// netstack tile -> NoC -> compute tile -> back.
func measureDirect(size, n int) netPairStats {
	sys, err := core.NewSystem(core.SystemConfig{
		Dims: noc.Dims{W: 3, H: 3}, WithNet: true, NodeID: serverNode,
		LinkLatencyNs: linkLatNs,
	})
	if err != nil {
		panic(err)
	}
	bridge := apps.NewNetBridge(reqFlow)
	bridge.Process = func(in []byte) ([]byte, msg.ErrCode) { return checksumReply(in), msg.EOK }
	bridge.BaseCycles = computeCycles
	if _, err := sys.Kernel.LoadApp(core.AppSpec{
		Name: "svc",
		Accels: []core.AppAccel{
			{Name: "b", New: func() accel.Accelerator { return bridge }, WantNet: true},
		},
	}); err != nil {
		panic(err)
	}
	client := netstack.NewSoftEndpoint(sys.Engine, sys.Stats, sys.Fabric, clientNode,
		netsim.LinkConfig{Gbps: 100, LatencyNs: linkLatNs})
	sys.Run(100) // let the bridge register its listener

	bytes0 := sys.Stats.Counter("netsim.bytes").Value()
	flits0 := sys.Stats.Counter("noc.flits_routed").Value()
	checks0 := sys.Stats.Counter("mon.cap_checks").Value()

	h := closedLoop(sys.Engine, client, size, n)

	m := energy.NewMeter()
	m.MACBytes(sys.Stats.Counter("netsim.bytes").Value() - bytes0)
	m.FlitHops(sys.Stats.Counter("noc.flits_routed").Value() - flits0)
	m.MonitorChecks(sys.Stats.Counter("mon.cap_checks").Value() - checks0)

	return netPairStats{
		p50us:    sys.Engine.Micros(sim.Cycle(h.Median())),
		p99us:    sys.Engine.Micros(sim.Cycle(h.P99())),
		njPerReq: m.Total() / float64(n),
	}
}

// measureHosted runs the Coyote-style deployment: client -> NIC -> host CPU
// -> PCIe -> FPGA -> back out through CPU and NIC.
func measureHosted(size, n int) netPairStats {
	e := sim.NewEngine(11)
	st := sim.NewStats()
	fab := netsim.New(e, st)
	node := hostos.New(e, st, fab, hostos.Config{
		Node: serverNode,
		Link: netsim.LinkConfig{Gbps: 100, LatencyNs: linkLatNs},
		Compute: func(in []byte) ([]byte, sim.Cycle) {
			return checksumReply(in), computeCycles
		},
	})
	client := netstack.NewSoftEndpoint(e, st, fab, clientNode,
		netsim.LinkConfig{Gbps: 100, LatencyNs: linkLatNs})

	h := closedLoop(e, client, size, n)

	total := node.Meter().Total()
	return netPairStats{
		p50us:    e.Micros(sim.Cycle(h.Median())),
		p99us:    e.Micros(sim.Cycle(h.P99())),
		njPerReq: total / float64(n),
		cpuShare: node.Meter().Category("cpu") / total,
	}
}

// e45Sizes is the request-size sweep. Sizes stay within one Apiary message
// so the comparison is a single-RPC path either way; bulk transfer belongs
// to the memory service, not the RPC path.
var e45Sizes = []int{64, 256, 1024, 4000}

const e45Requests = 200

// E4Latency compares request latency across deployments (paper §1: "By
// bypassing the CPU, a direct-attached accelerator ... lowers latencies").
func E4Latency() Result {
	r := Result{
		ID: "E4", Title: "Round-trip latency, direct-attached vs host-mediated (closed loop)",
		Header: []string{"ReqBytes", "Direct-p50us", "Direct-p99us", "Hosted-p50us", "Hosted-p99us", "Speedup-p50"},
	}
	for _, size := range e45Sizes {
		dct := measureDirect(size, e45Requests)
		hst := measureHosted(size, e45Requests)
		r.AddRow(d(size), f2(dct.p50us), f2(dct.p99us), f2(hst.p50us), f2(hst.p99us),
			f2(hst.p50us/dct.p50us))
	}
	r.Note("both sides share propagation (2x%dns/way), line rate and the compute kernel; the gap is CPU software time + PCIe crossings", linkLatNs)
	return r
}

// E5Energy compares energy per request (paper §1: direct attachment
// "further reduces energy").
func E5Energy() Result {
	r := Result{
		ID: "E5", Title: "Energy per request, direct-attached vs host-mediated",
		Header: []string{"ReqBytes", "Direct-nJ", "Hosted-nJ", "Hosted/Direct", "HostedCPU%"},
	}
	for _, size := range e45Sizes {
		dct := measureDirect(size, e45Requests)
		hst := measureHosted(size, e45Requests)
		r.AddRow(d(size), f1(dct.njPerReq), f1(hst.njPerReq),
			f1(hst.njPerReq/dct.njPerReq), f1(hst.cpuShare*100))
	}
	r.Note("direct path charges MAC + NoC flit-hops + monitor checks; hosted adds CPU busy time and two PCIe crossings per request")
	return r
}
