package bench

import (
	"fmt"

	"apiary/internal/cluster"
	"apiary/internal/core"
	"apiary/internal/load"
	"apiary/internal/netsim"
	"apiary/internal/noc"
)

// E22 scenario shapes, authored in the scenario DSL like E21's. Each run
// has three phases — warm, move, cool — with the migration directive (when
// present) landing early in the move phase, so the move row captures the
// quiesce/transfer/reconfigure dip and the cool row shows the re-minted
// endpoint serving steady post-migration traffic.
const (
	e22BoardScn = `scenario e22-board%s
seed 31
sessions 4000
target svc=40 mem=4096
timeout 10000
class get weight=3 bytes=8
class put weight=1 bytes=48
phase warm dur=20000 rate=3000
phase move dur=320000 rate=3000
phase cool dur=40000 rate=2000
%s`
	e22FleetScn = `scenario e22-fleet%s
seed 47
sessions 6000
target svc=40 mem=%d
timeout 12000
fleet boards=5 replicas=2 clients=2
class get weight=8 bytes=16
class put weight=2 bytes=96
phase warm dur=24000 rate=2000
phase move dur=56000 rate=2000
phase cool dur=20000 rate=1000
%s`
)

const e22Drain = 60000 // run-out budget past scenario end

// e22Row reports the move phase (where the migration dip lands) plus the
// cool phase's goodput — the proof the re-minted endpoint kept serving.
func e22Row(r *Result, label string, rep []load.PhaseReport) {
	move, cool := rep[1], rep[2]
	r.AddRow(label,
		u(move.OfferedRpMc), u(move.GoodputRpMc),
		u(move.OK), u(move.Denied), u(move.Timeout),
		f1(move.P99), u(cool.GoodputRpMc))
}

// E22Migrate measures live migration under open-loop fire: the same
// scenario with and without a kernel-driven migration, on-board and
// cross-board, plus a chaos stall inside the reconfiguration window and a
// destination kill mid-transfer. The differential against each control row
// is the dip: goodput lost to the bounded quiesce/transfer window, with the
// cool column showing full recovery (or, for the abort row, the source
// staying authoritative). All columns are simulated cycles/counts, so the
// table sits under the -compare gate.
func E22Migrate() Result {
	r := Result{
		ID:    "e22",
		Title: "Live migration under load: goodput dip, recovery, and abort",
		Header: []string{"Run", "MoveOfferedRpMc", "MoveGoodputRpMc",
			"MoveOK", "Denied", "Timeout", "MoveP99cy", "CoolGoodputRpMc"},
	}

	board := func(label, directives string) {
		scn := e21ParseScn(fmt.Sprintf(e22BoardScn, label, directives))
		br, err := load.NewBoardRun(scn, core.SystemConfig{
			Dims:            noc.Dims{W: 4, H: 4},
			ManagedMemBytes: 1 << 20,
		})
		if err != nil {
			r.Note("board%s: %v", label, err)
			return
		}
		br.RunScenario(e22Drain)
		e22Row(&r, "board"+label, br.Report())
	}
	board("-ctl", "")
	board("-mig", "migrate at=30000\n")
	// Under fire: a chaos stall parks an east link inside the window while
	// the checkpointed app is mid-flight to its new region.
	board("-fire", "migrate at=30000\nchaos stall at=100000 tile=4 port=E dur=1500\n")

	fleet := func(label string, mem int, directives string) {
		scn := e21ParseScn(fmt.Sprintf(e22FleetScn, label, mem, directives))
		fr, err := load.NewFleetRun(scn, cluster.Config{
			Board: core.SystemConfig{
				Dims:            noc.Dims{W: 4, H: 4},
				ManagedMemBytes: 1 << 20,
			},
			Link: netsim.LinkConfig{LatencyNs: 1000},
		})
		if err != nil {
			r.Note("fleet%s: %v", label, err)
			return
		}
		defer fr.Close()
		fr.RunScenario(e22Drain)
		e22Row(&r, "fleet"+label, fr.Report())
	}
	fleet("-ctl", 16384, "")
	fleet("-mig", 16384, "migrate at=40000\n")
	// Abort: the snapshot (512 KiB over a ~2.5 KB/epoch link) is still
	// crossing the cluster link when the destination board dies; the source
	// resumes authoritative.
	fleet("-abort", 524288, "migrate at=26000\nkill board=4 at=32000\n")

	r.Note("move row = the phase containing the migration window; cool row goodput shows post-migration recovery")
	r.Note("on-board the app is a single instance, so the window surfaces as retryable denials (the dip); cross-board the primary shifts to the live sibling first, so the move — and its abort — is client-invisible")
	r.Note("fleet: 5 boards, 2 replicas, 2 client boards; -mig moves the primary replica to the free board; -abort kills the destination mid-transfer (source stays authoritative)")
	return r
}
