package sim

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// histOf builds a histogram from values.
func histOf(vals ...float64) *Histogram {
	h := &Histogram{Name: "t"}
	for _, v := range vals {
		h.Observe(v)
	}
	return h
}

func TestHistogramMergeExact(t *testing.T) {
	a := histOf(1, 5, 9)
	b := histOf(2, 4, 100)
	a.Merge(b)
	if a.Count() != 6 {
		t.Fatalf("count = %d, want 6", a.Count())
	}
	if a.Min() != 1 || a.Max() != 100 {
		t.Fatalf("min/max = %v/%v, want 1/100", a.Min(), a.Max())
	}
	if got, want := a.Sum(), 121.0; got != want {
		t.Fatalf("sum = %v, want %v", got, want)
	}
	// Exact regime: quantiles are identical to observing the union directly.
	u := histOf(1, 5, 9, 2, 4, 100)
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 1} {
		if a.Quantile(q) != u.Quantile(q) {
			t.Fatalf("q%.2f = %v, union says %v", q, a.Quantile(q), u.Quantile(q))
		}
	}
	// b must be untouched.
	if b.Count() != 3 || b.Max() != 100 {
		t.Fatalf("merge mutated its argument: %d samples, max %v", b.Count(), b.Max())
	}
}

func TestHistogramMergeEmpty(t *testing.T) {
	a := histOf(3, 7)
	a.Merge(&Histogram{})
	a.Merge(nil)
	if a.Count() != 2 || a.Min() != 3 || a.Max() != 7 {
		t.Fatalf("merge with empty changed a: n=%d min=%v max=%v", a.Count(), a.Min(), a.Max())
	}
	empty := &Histogram{}
	empty.Merge(a)
	if empty.Count() != 2 || empty.Min() != 3 || empty.Max() != 7 || empty.Median() != a.Median() {
		t.Fatalf("empty.Merge(a) != a: n=%d min=%v max=%v", empty.Count(), empty.Min(), empty.Max())
	}
}

// TestHistogramMergeOrderIndependent is the property the fleet aggregator
// leans on: merging per-board histograms must give the same quantiles
// regardless of merge order, in both the exact and the collapsed regime.
func TestHistogramMergeOrderIndependent(t *testing.T) {
	for _, n := range []int{100, HistExactCap} { // exact and collapsed regimes
		rng := rand.New(rand.NewSource(42))
		parts := make([][]float64, 4)
		for i := 0; i < 4*n; i++ {
			parts[i%4] = append(parts[i%4], math.Floor(rng.Float64()*1e6)+1)
		}
		merge := func(order []int) *Histogram {
			h := &Histogram{}
			for _, idx := range order {
				h.Merge(histOf(parts[idx]...))
			}
			return h
		}
		fwd := merge([]int{0, 1, 2, 3})
		rev := merge([]int{3, 2, 1, 0})
		if fwd.Count() != rev.Count() || fwd.Min() != rev.Min() || fwd.Max() != rev.Max() {
			t.Fatalf("n=%d: count/min/max differ across merge orders", n)
		}
		for _, q := range []float64{0.5, 0.9, 0.99} {
			if fwd.Quantile(q) != rev.Quantile(q) {
				t.Fatalf("n=%d q%v: %v vs %v across merge orders", n, q, fwd.Quantile(q), rev.Quantile(q))
			}
		}
	}
}

// TestHistogramMergeCollapse checks every regime combination around the
// exact cap: the merged histogram must collapse exactly when the union
// exceeds HistExactCap, and collapsed quantiles must stay within the
// documented <1% of exact.
func TestHistogramMergeCollapse(t *testing.T) {
	big := func(n int, base float64) *Histogram {
		h := &Histogram{}
		for i := 0; i < n; i++ {
			h.Observe(base + float64(i))
		}
		return h
	}

	// exact + exact staying under the cap: stays exact.
	a := big(10, 0)
	a.Merge(big(20, 100))
	if a.buckets != nil {
		t.Fatal("under-cap merge collapsed")
	}

	// exact + exact crossing the cap: collapses.
	b := big(HistExactCap/2+10, 0)
	b.Merge(big(HistExactCap/2+10, 1e6))
	if b.buckets == nil {
		t.Fatal("over-cap merge did not collapse")
	}
	if b.Count() != HistExactCap+20 {
		t.Fatalf("count = %d", b.Count())
	}

	// collapsed + exact and collapsed + collapsed.
	c := big(HistExactCap+1, 0) // already collapsed by Observe
	if c.buckets == nil {
		t.Fatal("setup: expected collapsed histogram")
	}
	c.Merge(big(100, 5e5))
	c.Merge(b)
	wantN := (HistExactCap + 1) + 100 + (HistExactCap + 20)
	if c.Count() != wantN {
		t.Fatalf("count = %d, want %d", c.Count(), wantN)
	}
	// Check the approximation bound against the exact union distribution.
	var all []float64
	for i := 0; i < HistExactCap+1; i++ {
		all = append(all, float64(i))
	}
	for i := 0; i < 100; i++ {
		all = append(all, 5e5+float64(i))
	}
	for i := 0; i < HistExactCap/2+10; i++ {
		all = append(all, float64(i))
	}
	for i := 0; i < HistExactCap/2+10; i++ {
		all = append(all, 1e6+float64(i))
	}
	sort.Float64s(all)
	exactQ := func(q float64) float64 {
		idx := int(q * float64(len(all)))
		if idx >= len(all) {
			idx = len(all) - 1
		}
		return all[idx]
	}
	for _, q := range []float64{0.5, 0.99} {
		got, want := c.Quantile(q), exactQ(q)
		if want == 0 {
			continue
		}
		if rel := math.Abs(got-want) / math.Max(want, 1); rel > 0.01 {
			t.Fatalf("q%v = %v, exact %v (rel err %.3f > 1%%)", q, got, want, rel)
		}
	}
}
