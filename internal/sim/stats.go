package sim

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
)

// Counter is a monotonically increasing event count. Increments are atomic,
// which makes Counter tick-phase safe under the sharded scheduler (see
// ShardTicker): increments commute, so the final value is independent of
// worker interleaving and a parallel run matches a serial one exactly.
// Components on hot paths that want to avoid cross-core contention should
// accumulate per-shard deltas and Add them from a Committer instead.
type Counter struct {
	Name string
	n    atomic.Uint64
}

// Add increments the counter by d.
func (c *Counter) Add(d uint64) { c.n.Add(d) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.n.Add(1) }

// Value reports the current count.
func (c *Counter) Value() uint64 { return c.n.Load() }

// Histogram records a distribution of sample values (typically latencies in
// cycles) and can report percentiles. Samples are kept exactly; experiment
// scales here are small enough that this is simpler and more accurate than
// bucketing.
//
// Histogram is NOT tick-phase safe: Observe mutates a shared slice and a
// float sum whose value depends on observation order. Sharded tickers must
// not Observe; observation belongs in the commit phase (where the engine
// guarantees a deterministic order) or in serial-only components.
type Histogram struct {
	Name    string
	samples []float64
	sorted  bool
	sum     float64
	min     float64
	max     float64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if len(h.samples) == 0 || v < h.min {
		h.min = v
	}
	if len(h.samples) == 0 || v > h.max {
		h.max = v
	}
	h.samples = append(h.samples, v)
	h.sum += v
	h.sorted = false
}

// Count reports the number of samples.
func (h *Histogram) Count() int { return len(h.samples) }

// Mean reports the sample mean, or 0 with no samples.
func (h *Histogram) Mean() float64 {
	if len(h.samples) == 0 {
		return 0
	}
	return h.sum / float64(len(h.samples))
}

// Min reports the smallest sample, or 0 with no samples.
func (h *Histogram) Min() float64 { return h.min }

// Max reports the largest sample, or 0 with no samples.
func (h *Histogram) Max() float64 { return h.max }

// Quantile reports the q-quantile (0 <= q <= 1) using nearest-rank, or 0
// with no samples.
func (h *Histogram) Quantile(q float64) float64 {
	if len(h.samples) == 0 {
		return 0
	}
	if !h.sorted {
		sort.Float64s(h.samples)
		h.sorted = true
	}
	if q <= 0 {
		return h.samples[0]
	}
	if q >= 1 {
		return h.samples[len(h.samples)-1]
	}
	idx := int(q * float64(len(h.samples)))
	if idx >= len(h.samples) {
		idx = len(h.samples) - 1
	}
	return h.samples[idx]
}

// Median is Quantile(0.5).
func (h *Histogram) Median() float64 { return h.Quantile(0.5) }

// P99 is Quantile(0.99).
func (h *Histogram) P99() float64 { return h.Quantile(0.99) }

// Reset discards all samples.
func (h *Histogram) Reset() {
	h.samples = h.samples[:0]
	h.sum, h.min, h.max = 0, 0, 0
	h.sorted = false
}

// Stats is a named registry of counters and histograms. Components create
// their metrics through a shared Stats so that experiment harnesses can
// enumerate them.
type Stats struct {
	counters map[string]*Counter
	hists    map[string]*Histogram
	order    []string
}

// NewStats returns an empty registry.
func NewStats() *Stats {
	return &Stats{
		counters: make(map[string]*Counter),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the counter with the given name, creating it on first use.
func (s *Stats) Counter(name string) *Counter {
	if c, ok := s.counters[name]; ok {
		return c
	}
	c := &Counter{Name: name}
	s.counters[name] = c
	s.order = append(s.order, "c:"+name)
	return c
}

// Histogram returns the histogram with the given name, creating it on first
// use.
func (s *Stats) Histogram(name string) *Histogram {
	if h, ok := s.hists[name]; ok {
		return h
	}
	h := &Histogram{Name: name}
	s.hists[name] = h
	s.order = append(s.order, "h:"+name)
	return h
}

// Counters returns the registered counters in creation order.
func (s *Stats) Counters() []*Counter {
	var out []*Counter
	for _, k := range s.order {
		if strings.HasPrefix(k, "c:") {
			out = append(out, s.counters[k[2:]])
		}
	}
	return out
}

// Histograms returns the registered histograms in creation order.
func (s *Stats) Histograms() []*Histogram {
	var out []*Histogram
	for _, k := range s.order {
		if strings.HasPrefix(k, "h:") {
			out = append(out, s.hists[k[2:]])
		}
	}
	return out
}

// String renders a compact human-readable dump, one metric per line.
func (s *Stats) String() string {
	var b strings.Builder
	for _, c := range s.Counters() {
		fmt.Fprintf(&b, "%-40s %12d\n", c.Name, c.Value())
	}
	for _, h := range s.Histograms() {
		if h.Count() == 0 {
			continue
		}
		fmt.Fprintf(&b, "%-40s n=%d mean=%.1f p50=%.1f p99=%.1f max=%.1f\n",
			h.Name, h.Count(), h.Mean(), h.Median(), h.P99(), h.Max())
	}
	return b.String()
}
