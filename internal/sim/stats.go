package sim

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync/atomic"
)

// Counter is a monotonically increasing event count. Increments are atomic,
// which makes Counter tick-phase safe under the sharded scheduler (see
// ShardTicker): increments commute, so the final value is independent of
// worker interleaving and a parallel run matches a serial one exactly.
// Components on hot paths that want to avoid cross-core contention should
// accumulate per-shard deltas and Add them from a Committer instead.
type Counter struct {
	Name string
	n    atomic.Uint64
}

// Add increments the counter by d.
func (c *Counter) Add(d uint64) { c.n.Add(d) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.n.Add(1) }

// Value reports the current count.
func (c *Counter) Value() uint64 { return c.n.Load() }

// HistExactCap is the number of samples a Histogram keeps exactly before it
// collapses into log-linear buckets. Below the cap quantiles are exact;
// above it they are accurate to within histRelError. The cap is what keeps a
// week-long daemon run from growing a float64 slice forever.
const HistExactCap = 8192

// histSubBuckets is the log-linear resolution: each power-of-two range is
// split into this many equal-width buckets. A sample's bucket midpoint is
// within 1/(2*histSubBuckets)/0.5 ≈ 0.8% of the sample, so p50/p99 stay
// within 1% of exact after the collapse.
const histSubBuckets = 128

// Histogram records a distribution of sample values (typically latencies in
// cycles) and can report percentiles. The first HistExactCap samples are
// kept exactly — experiment scales stay in this regime, so their quantiles
// are bit-for-bit what they always were. Past the cap the samples collapse
// into log-linear buckets (128 per octave) and the histogram stops growing;
// Count, Mean, Min and Max remain exact, quantiles become approximate to
// <1%. Bucket counts are order-independent, so the collapse preserves the
// serial/parallel determinism story (the float sum remains the one
// order-sensitive reduction, exactly as before).
//
// Histogram is NOT tick-phase safe: Observe mutates shared state whose value
// depends on observation order. Sharded tickers must not Observe;
// observation belongs in the commit phase (where the engine guarantees a
// deterministic order) or in serial-only components.
type Histogram struct {
	Name    string
	samples []float64
	sorted  bool
	sum     float64
	min     float64
	max     float64

	n       uint64           // total samples ever observed
	buckets map[int32]uint64 // nil until the exact cap is exceeded
}

// bucketKey maps a positive sample to its log-linear bucket: the octave
// (binary exponent) selects the coarse range, the mantissa picks one of
// histSubBuckets equal-width sub-buckets inside it. Non-positive samples
// (unused by any current metric, but not forbidden) share a single
// underflow bucket.
func bucketKey(v float64) int32 {
	if v <= 0 {
		return math.MinInt32
	}
	frac, exp := math.Frexp(v) // v = frac * 2^exp, frac in [0.5, 1)
	sub := int32((frac - 0.5) * (2 * histSubBuckets))
	return int32(exp)*histSubBuckets + sub
}

// bucketMid is the representative value reported for a bucket: the midpoint
// of its [lo, hi) range.
func bucketMid(key int32) float64 {
	if key == math.MinInt32 {
		return 0
	}
	exp := key / histSubBuckets
	sub := key % histSubBuckets
	if sub < 0 { // Go truncates toward zero; normalize to floor semantics
		exp--
		sub += histSubBuckets
	}
	frac := 0.5 + (float64(sub)+0.5)/(2*histSubBuckets)
	return math.Ldexp(frac, int(exp))
}

// collapse moves the exact samples into buckets and frees the slice.
func (h *Histogram) collapse() {
	h.buckets = make(map[int32]uint64, len(h.samples))
	for _, v := range h.samples {
		h.buckets[bucketKey(v)]++
	}
	h.samples = nil
	h.sorted = false
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h.n == 0 || v < h.min {
		h.min = v
	}
	if h.n == 0 || v > h.max {
		h.max = v
	}
	h.n++
	h.sum += v
	if h.buckets != nil {
		h.buckets[bucketKey(v)]++
		return
	}
	h.samples = append(h.samples, v)
	h.sorted = false
	if len(h.samples) > HistExactCap {
		h.collapse()
	}
}

// Count reports the number of samples.
func (h *Histogram) Count() int { return int(h.n) }

// Sum reports the sum of all samples.
func (h *Histogram) Sum() float64 { return h.sum }

// Mean reports the sample mean, or 0 with no samples.
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// Min reports the smallest sample, or 0 with no samples.
func (h *Histogram) Min() float64 { return h.min }

// Max reports the largest sample, or 0 with no samples.
func (h *Histogram) Max() float64 { return h.max }

// Quantile reports the q-quantile (0 <= q <= 1) using nearest-rank: exact
// below HistExactCap samples, within histSubBuckets resolution (<1%) above.
func (h *Histogram) Quantile(q float64) float64 {
	if h.n == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	if h.buckets != nil {
		return h.bucketQuantile(q)
	}
	if !h.sorted {
		sort.Float64s(h.samples)
		h.sorted = true
	}
	idx := int(q * float64(len(h.samples)))
	if idx >= len(h.samples) {
		idx = len(h.samples) - 1
	}
	return h.samples[idx]
}

// bucketQuantile walks the buckets in value order to the nearest-rank
// sample's bucket and returns its midpoint, clamped to the exact min/max.
func (h *Histogram) bucketQuantile(q float64) float64 {
	keys := make([]int32, 0, len(h.buckets))
	for k := range h.buckets {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	rank := uint64(q * float64(h.n)) // 0-based index of the nearest-rank sample
	var cum uint64
	for _, k := range keys {
		cum += h.buckets[k]
		if cum > rank {
			v := bucketMid(k)
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// Median is Quantile(0.5).
func (h *Histogram) Median() float64 { return h.Quantile(0.5) }

// P99 is Quantile(0.99).
func (h *Histogram) P99() float64 { return h.Quantile(0.99) }

// Merge folds all of o's samples into h. It is the aggregation primitive for
// fleet-level metrics federation: per-board histograms merged at an epoch
// barrier must agree regardless of board order, so Merge is commutative and
// associative up to the usual caveats — bucket counts and n/min/max are
// exactly order-independent; the float sum is the one order-sensitive
// reduction (callers that need bit-stable sums must merge in a fixed order,
// which the fleet aggregator does: board 0..N-1).
//
// Merge is collapse-aware: while both sides are exact and the combined
// sample count fits HistExactCap the result stays exact (quantiles
// bit-for-bit); otherwise the result collapses to log-linear buckets,
// exactly as Observe would past the cap. o is not modified.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil || o.n == 0 {
		return
	}
	if h.n == 0 || o.min < h.min {
		h.min = o.min
	}
	if h.n == 0 || o.max > h.max {
		h.max = o.max
	}
	h.n += o.n
	h.sum += o.sum
	// Decide the regime for the merged result: exact only if both sides are
	// exact and the union fits the cap.
	if h.buckets == nil && o.buckets == nil && len(h.samples)+len(o.samples) <= HistExactCap {
		h.samples = append(h.samples, o.samples...)
		h.sorted = false
		return
	}
	if h.buckets == nil {
		h.collapse()
	}
	if o.buckets != nil {
		for k, c := range o.buckets {
			h.buckets[k] += c
		}
	} else {
		for _, v := range o.samples {
			h.buckets[bucketKey(v)]++
		}
	}
}

// Reset discards all samples and returns to the exact regime.
func (h *Histogram) Reset() {
	h.samples = h.samples[:0]
	h.sum, h.min, h.max = 0, 0, 0
	h.n = 0
	h.buckets = nil
	h.sorted = false
}

// Stats is a named registry of counters and histograms. Components create
// their metrics through a shared Stats so that experiment harnesses can
// enumerate them.
type Stats struct {
	counters map[string]*Counter
	hists    map[string]*Histogram
	order    []string
}

// NewStats returns an empty registry.
func NewStats() *Stats {
	return &Stats{
		counters: make(map[string]*Counter),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the counter with the given name, creating it on first use.
func (s *Stats) Counter(name string) *Counter {
	if c, ok := s.counters[name]; ok {
		return c
	}
	c := &Counter{Name: name}
	s.counters[name] = c
	s.order = append(s.order, "c:"+name)
	return c
}

// Histogram returns the histogram with the given name, creating it on first
// use.
func (s *Stats) Histogram(name string) *Histogram {
	if h, ok := s.hists[name]; ok {
		return h
	}
	h := &Histogram{Name: name}
	s.hists[name] = h
	s.order = append(s.order, "h:"+name)
	return h
}

// Counters returns the registered counters in creation order.
func (s *Stats) Counters() []*Counter {
	var out []*Counter
	for _, k := range s.order {
		if strings.HasPrefix(k, "c:") {
			out = append(out, s.counters[k[2:]])
		}
	}
	return out
}

// Histograms returns the registered histograms in creation order.
func (s *Stats) Histograms() []*Histogram {
	var out []*Histogram
	for _, k := range s.order {
		if strings.HasPrefix(k, "h:") {
			out = append(out, s.hists[k[2:]])
		}
	}
	return out
}

// String renders a compact human-readable dump, one metric per line.
func (s *Stats) String() string {
	var b strings.Builder
	for _, c := range s.Counters() {
		fmt.Fprintf(&b, "%-40s %12d\n", c.Name, c.Value())
	}
	for _, h := range s.Histograms() {
		if h.Count() == 0 {
			continue
		}
		fmt.Fprintf(&b, "%-40s n=%d mean=%.1f p50=%.1f p99=%.1f max=%.1f\n",
			h.Name, h.Count(), h.Mean(), h.Median(), h.P99(), h.Max())
	}
	return b.String()
}
