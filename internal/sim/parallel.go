package sim

import "sync"

// workerPool is the persistent goroutine pool that runs the sharded tick
// phase: one worker per populated shard, each ticking its shard's tickers
// in registration order, barrier-synchronized per cycle.
//
// Synchronization is a fan-out/fan-in pair per cycle: the main goroutine's
// channel sends release the workers (and happen-before everything the
// workers do, so the workers see e.now, e.inTick and any setup the main
// goroutine performed), and wg.Wait happens-after every worker's Done (so
// the commit phase sees every staged effect). Workers never touch shared
// engine state beyond their own groups slice and tick-phase-safe
// facilities, which is exactly the ShardTicker contract.
type workerPool struct {
	e     *Engine
	chans []chan Cycle
	wg    sync.WaitGroup
}

// newWorkerPool spawns one worker per current shard group. The pool is tied
// to the group count at creation time; the engine recreates it when
// registration changes the partition.
func newWorkerPool(e *Engine) *workerPool {
	p := &workerPool{e: e, chans: make([]chan Cycle, len(e.groups))}
	for i := range p.chans {
		ch := make(chan Cycle, 1)
		p.chans[i] = ch
		go p.worker(i, ch)
	}
	return p
}

func (p *workerPool) size() int { return len(p.chans) }

func (p *workerPool) worker(i int, ch chan Cycle) {
	for now := range ch {
		for _, t := range p.e.groups[i] {
			t.Tick(now)
		}
		p.wg.Done()
	}
}

// tick runs one barrier-synchronized tick phase: release every worker for
// the given cycle, then block until all have finished.
func (p *workerPool) tick(now Cycle) {
	p.wg.Add(len(p.chans))
	for _, ch := range p.chans {
		ch <- now
	}
	p.wg.Wait()
}

// close shuts the workers down. Pending work has always drained by the time
// close is called (tick only returns after the barrier).
func (p *workerPool) close() {
	for _, ch := range p.chans {
		close(ch)
	}
}
