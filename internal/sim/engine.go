// Package sim provides the cycle-driven simulation core that the rest of
// Apiary is built on: a global clock, synchronous tickers (hardware blocks),
// a discrete-event queue for coarse-grained components, a deterministic PRNG
// and statistics collection.
//
// The model is a synchronous digital design: every registered Ticker is
// invoked exactly once per clock cycle, in registration order, and may also
// schedule events for future cycles. Determinism is a hard requirement —
// a simulation built with the same seed and the same registration order
// always produces identical results.
package sim

import (
	"container/heap"
	"fmt"
)

// Cycle is a point in simulated time, measured in clock cycles since reset.
type Cycle uint64

// Ticker is a synchronous hardware block. Tick is called once per cycle with
// the current cycle number.
type Ticker interface {
	Tick(now Cycle)
}

// TickerFunc adapts a function to the Ticker interface.
type TickerFunc func(now Cycle)

// Tick calls f(now).
func (f TickerFunc) Tick(now Cycle) { f(now) }

// Event is a deferred action scheduled on the engine's event queue.
type Event struct {
	At   Cycle
	Do   func(now Cycle)
	seq  uint64 // tie-break for determinism
	pos  int
	dead bool
}

// Cancel marks the event so it will not fire. Cancelling an already-fired
// event is a no-op.
func (e *Event) Cancel() { e.dead = true }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].pos = i
	h[j].pos = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.pos = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Engine drives the simulation. The zero value is not usable; use NewEngine.
type Engine struct {
	now     Cycle
	tickers []Ticker
	events  eventHeap
	seq     uint64
	rng     *RNG
	freqMHz uint64
	stopped bool
}

// DefaultFreqMHz is the clock frequency assumed when none is configured.
// 250 MHz is a typical frequency for FPGA datapath logic.
const DefaultFreqMHz = 250

// NewEngine returns an engine with the given PRNG seed and a 250 MHz clock.
func NewEngine(seed uint64) *Engine {
	return &Engine{rng: NewRNG(seed), freqMHz: DefaultFreqMHz}
}

// SetClockMHz sets the clock frequency used by time conversions.
// It panics if mhz is zero.
func (e *Engine) SetClockMHz(mhz uint64) {
	if mhz == 0 {
		panic("sim: zero clock frequency")
	}
	e.freqMHz = mhz
}

// ClockMHz reports the configured clock frequency.
func (e *Engine) ClockMHz() uint64 { return e.freqMHz }

// Now reports the current cycle.
func (e *Engine) Now() Cycle { return e.now }

// RNG returns the engine's deterministic random number generator.
func (e *Engine) RNG() *RNG { return e.rng }

// Register adds a ticker; it will be called every cycle from the next Step
// on. Registration order defines invocation order and must therefore be
// deterministic across runs.
func (e *Engine) Register(t Ticker) {
	if t == nil {
		panic("sim: Register(nil)")
	}
	e.tickers = append(e.tickers, t)
}

// Schedule queues fn to run at cycle `at`. Scheduling in the past (or the
// current cycle, which has already begun) panics, because it would silently
// break causality.
func (e *Engine) Schedule(at Cycle, fn func(now Cycle)) *Event {
	if at <= e.now && e.now != 0 {
		panic(fmt.Sprintf("sim: Schedule at cycle %d but now is %d", at, e.now))
	}
	e.seq++
	ev := &Event{At: at, Do: fn, seq: e.seq}
	heap.Push(&e.events, ev)
	return ev
}

// After queues fn to run d cycles from now (d must be >= 1).
func (e *Engine) After(d Cycle, fn func(now Cycle)) *Event {
	if d == 0 {
		d = 1
	}
	e.seq++
	ev := &Event{At: e.now + d, Do: fn, seq: e.seq}
	heap.Push(&e.events, ev)
	return ev
}

// Stop requests that Run return at the end of the current cycle.
func (e *Engine) Stop() { e.stopped = true }

// Step advances the simulation one cycle: events due this cycle fire first,
// then every ticker runs.
func (e *Engine) Step() {
	e.now++
	for len(e.events) > 0 && e.events[0].At <= e.now {
		ev := heap.Pop(&e.events).(*Event)
		if !ev.dead {
			ev.Do(e.now)
		}
	}
	for _, t := range e.tickers {
		t.Tick(e.now)
	}
}

// Run advances n cycles, or fewer if Stop is called.
func (e *Engine) Run(n Cycle) {
	e.stopped = false
	for i := Cycle(0); i < n && !e.stopped; i++ {
		e.Step()
	}
}

// RunUntil advances the simulation until cond returns true or the budget of
// cycles is exhausted. It reports whether cond became true.
func (e *Engine) RunUntil(cond func() bool, budget Cycle) bool {
	e.stopped = false
	for i := Cycle(0); i < budget && !e.stopped; i++ {
		if cond() {
			return true
		}
		e.Step()
	}
	return cond()
}

// Nanos converts a cycle count to nanoseconds at the configured frequency.
func (e *Engine) Nanos(c Cycle) float64 {
	return float64(c) * 1e3 / float64(e.freqMHz)
}

// Micros converts a cycle count to microseconds at the configured frequency.
func (e *Engine) Micros(c Cycle) float64 { return e.Nanos(c) / 1e3 }

// CyclesForNanos converts a duration in nanoseconds to cycles (rounded up).
func (e *Engine) CyclesForNanos(ns float64) Cycle {
	c := ns * float64(e.freqMHz) / 1e3
	whole := Cycle(c)
	if float64(whole) < c {
		whole++
	}
	return whole
}

// PendingEvents reports the number of live queued events (for tests).
func (e *Engine) PendingEvents() int {
	n := 0
	for _, ev := range e.events {
		if !ev.dead {
			n++
		}
	}
	return n
}
