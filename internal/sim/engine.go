// Package sim provides the cycle-driven simulation core that the rest of
// Apiary is built on: a global clock, synchronous tickers (hardware blocks),
// a discrete-event queue for coarse-grained components, a deterministic PRNG
// and statistics collection.
//
// The model is a synchronous digital design: every registered Ticker is
// invoked exactly once per clock cycle, in registration order, and may also
// schedule events for future cycles. Determinism is a hard requirement —
// a simulation built with the same seed and the same registration order
// always produces identical results.
//
// Each cycle has two phases, mirroring a flop-based design: a *tick* phase
// in which every ticker computes (and cross-component effects are staged),
// and a *commit* phase in which registered Committers apply staged effects
// in registration order. The two-phase structure is what allows the tick
// phase to run sharded across OS threads (see ShardTicker) while staying
// bit-identical to a serial run.
package sim

import (
	"container/heap"
	"fmt"
	"runtime"
)

// Cycle is a point in simulated time, measured in clock cycles since reset.
type Cycle uint64

// Ticker is a synchronous hardware block. Tick is called once per cycle with
// the current cycle number.
type Ticker interface {
	Tick(now Cycle)
}

// IdleTicker is a Ticker that can report when ticking it would be a no-op.
// The idle contract: while Idle() returns true, Tick must not change any
// observable simulation state (component state, statistics, scheduled
// events). The engine uses the contract to fast-forward the clock across
// stretches where every registered ticker is idle; because skipped ticks
// are exactly the ticks that would have done nothing, a run with
// fast-forward enabled is bit-identical to one without it.
//
// A component whose activity depends on wall-clock time (a traffic
// generator, a poller) must either return false from Idle while it still
// has timed work, or schedule that work as engine events.
type IdleTicker interface {
	Ticker
	Idle() bool
}

// TickerFunc adapts a function to the Ticker interface.
type TickerFunc func(now Cycle)

// Tick calls f(now).
func (f TickerFunc) Tick(now Cycle) { f(now) }

// ShardTicker is a Ticker with declared shard affinity: Shard reports the
// index of the spatial shard whose worker may tick it during the parallel
// tick phase, or a negative value for a ticker that is *opaque* — safe only
// under serial ticking. One opaque ticker keeps the whole engine serial
// (like a non-IdleTicker disables fast-forward): correctness beats speed.
//
// The sharded-tick contract, in addition to Ticker's: while the engine is
// in the tick phase (InTickPhase), Tick may mutate only state owned by its
// own shard, plus facilities documented as tick-phase safe (atomic
// Counters, per-shard staging committed by a Committer). It must not call
// Schedule/After, must not draw from the engine RNG, and must not Observe
// shared Histograms. Cross-shard effects are staged and applied by a
// Committer during the commit phase.
type ShardTicker interface {
	Ticker
	Shard() int
}

// WeightedTicker is a Ticker that stands for several elementary hardware
// blocks ticked in one call (e.g. a NoC row band covering its routers and
// NIs). TickWeight reports how many, so ParallelAuto's size threshold keeps
// measuring simulated-design size rather than ticker-list length. Tickers
// without the interface weigh 1.
type WeightedTicker interface {
	Ticker
	TickWeight() int
}

// Committer is implemented by subsystems that stage cross-ticker effects
// during the tick phase and apply them afterwards. Commit runs on the main
// goroutine after every ticker has ticked, in committer-registration order,
// in both serial and parallel modes — so the commit order (and therefore
// the simulation) is identical whichever mode ran the tick phase.
type Committer interface {
	Commit(now Cycle)
}

// ParallelMode selects how the engine schedules the tick phase.
type ParallelMode int

// Parallel modes. ParallelAuto (the default) engages the sharded tick
// phase when every registered ticker declares a shard, more than one shard
// is populated, the ticker count reaches AutoParallelMinTickers and the
// process has more than one CPU. ParallelOn drops the size/CPU thresholds
// (it still requires every ticker to be sharded — opaque tickers always
// force serial). ParallelOff forces serial ticking.
const (
	ParallelAuto ParallelMode = iota
	ParallelOn
	ParallelOff
)

// AutoParallelMinTickers is the ParallelAuto engagement threshold: below
// this many tickers a cycle is too cheap for barrier synchronization to pay
// for itself (an 8x8 mesh is 128 tickers; the threshold admits 8x8 and up).
const AutoParallelMinTickers = 128

// Event is a deferred action scheduled on the engine's event queue.
type Event struct {
	At   Cycle
	Do   func(now Cycle)
	seq  uint64 // tie-break for determinism
	pos  int
	dead bool
	// pooled events (ScheduleNoHandle) return to the engine's free list
	// after firing; the caller holds no reference, so reuse is safe.
	pooled bool
}

// Cancel marks the event so it will not fire. Cancelling an already-fired
// event is a no-op.
func (e *Event) Cancel() { e.dead = true }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].pos = i
	h[j].pos = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.pos = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Engine drives the simulation. The zero value is not usable; use NewEngine.
type Engine struct {
	now     Cycle
	tickers []Ticker
	events  eventHeap
	seq     uint64
	rng     *RNG
	freqMHz uint64
	stopped bool

	// idlers mirrors tickers; idleCapable stays true only while every
	// registered ticker implements IdleTicker, which is the precondition
	// for fast-forwarding the clock.
	idlers      []IdleTicker
	idleCapable bool
	idleSkip    bool
	skipped     uint64

	committers []Committer

	// evPool recycles fired ScheduleNoHandle events so steady-state
	// schedulers (the NoC express bypass wakes itself once per bypassed
	// packet) allocate nothing per flight.
	evPool []*Event

	// Parallel tick-phase state. groups[s] holds shard s's tickers in
	// registration order; it is rebuilt lazily (groupsDirty) after Register.
	parMode     ParallelMode
	groups      [][]Ticker
	groupsDirty bool
	numShards   int
	tickWeight  int  // sum of ticker weights (WeightedTicker, default 1)
	shardCap    bool // every ticker declares a non-negative shard
	pool        *workerPool

	// inTick is true while tickers run (serial or parallel); running is
	// true inside Run/RunUntil/Step. Both guard Register. inTick is only
	// written by the main goroutine around the worker barrier, so sharded
	// tickers may read it (via InTickPhase) without further synchronization.
	inTick  bool
	parTick bool // tick phase is currently running on the worker pool
	running bool
}

// DefaultFreqMHz is the clock frequency assumed when none is configured.
// 250 MHz is a typical frequency for FPGA datapath logic.
const DefaultFreqMHz = 250

// defaultParallel is the ParallelMode new engines start in. Process-wide so
// harnesses (apiary-bench -parallel) can force a mode for engines built
// deep inside experiments; safe to force either way because parallel
// execution is bit-exact with serial.
var defaultParallel = ParallelAuto

// SetDefaultParallel sets the ParallelMode that subsequently created
// engines start in (equivalent to calling SetParallel on each). Call before
// building systems, not concurrently with NewEngine.
func SetDefaultParallel(m ParallelMode) { defaultParallel = m }

// NewEngine returns an engine with the given PRNG seed and a 250 MHz clock.
// Idle fast-forward is enabled by default; it is behaviour-preserving (see
// IdleTicker) and can be disabled with SetIdleSkip for A/B testing.
func NewEngine(seed uint64) *Engine {
	return &Engine{rng: NewRNG(seed), freqMHz: DefaultFreqMHz,
		idleCapable: true, idleSkip: true, parMode: defaultParallel}
}

// SetIdleSkip enables or disables clock fast-forward across all-idle
// stretches. Disabling it forces the engine to grind every cycle — useful
// to verify that a workload is skip-invariant.
func (e *Engine) SetIdleSkip(on bool) { e.idleSkip = on }

// IdleSkip reports whether fast-forward is enabled.
func (e *Engine) IdleSkip() bool { return e.idleSkip }

// SkippedCycles reports how many cycles Run/RunUntil fast-forwarded over
// instead of ticking (observability; skipped cycles still elapse on the
// simulated clock).
func (e *Engine) SkippedCycles() uint64 { return e.skipped }

// SetClockMHz sets the clock frequency used by time conversions.
// It panics if mhz is zero.
func (e *Engine) SetClockMHz(mhz uint64) {
	if mhz == 0 {
		panic("sim: zero clock frequency")
	}
	e.freqMHz = mhz
}

// ClockMHz reports the configured clock frequency.
func (e *Engine) ClockMHz() uint64 { return e.freqMHz }

// Now reports the current cycle.
func (e *Engine) Now() Cycle { return e.now }

// RNG returns the engine's deterministic random number generator.
func (e *Engine) RNG() *RNG { return e.rng }

// Register adds a ticker; it will be called every cycle from the next Step
// on. Registration order is the engine's determinism anchor: it defines the
// serial tick order, the within-shard tick order under parallel execution,
// and (via Committers) the order staged cross-shard effects apply — so it
// must itself be deterministic across runs. Register panics if called while
// a Run/RunUntil is in progress or from inside a tick phase: growing the
// ticker list mid-run would make the tick order depend on when the ticker
// joined, which is exactly the nondeterminism the contract exists to
// exclude. Register from an event fired by a bare Step is permitted (events
// precede tickers within the cycle, so the new ticker ticks a full first
// cycle).
func (e *Engine) Register(t Ticker) {
	if t == nil {
		panic("sim: Register(nil)")
	}
	if e.running || e.inTick {
		panic("sim: Register while running")
	}
	e.tickers = append(e.tickers, t)
	e.groupsDirty = true
	if it, ok := t.(IdleTicker); ok {
		e.idlers = append(e.idlers, it)
	} else {
		// One opaque ticker disables fast-forward for the whole engine:
		// we can never prove a cycle is dead.
		e.idlers = append(e.idlers, nil)
		e.idleCapable = false
	}
}

// RegisterCommitter adds a commit-phase hook, run after the tick phase of
// every cycle in registration order (see Committer). Registering the same
// subsystem twice commits it twice; don't.
func (e *Engine) RegisterCommitter(c Committer) {
	if c == nil {
		panic("sim: RegisterCommitter(nil)")
	}
	if e.running || e.inTick {
		panic("sim: RegisterCommitter while running")
	}
	e.committers = append(e.committers, c)
}

// SetParallel selects the tick-phase scheduling mode (see ParallelMode).
// The default is ParallelAuto.
func (e *Engine) SetParallel(m ParallelMode) { e.parMode = m }

// ParallelActive reports whether the next tick phase would run sharded.
// Like IdleSkip it is a pure speedup knob: a parallel run is bit-identical
// to a serial one, which TestParallelDifferential proves over saturated
// random traffic.
func (e *Engine) ParallelActive() bool { return e.parallelActive() }

// NumShards reports how many populated shards the engine would tick in
// parallel (0 when any ticker is opaque).
func (e *Engine) NumShards() int {
	if e.groupsDirty {
		e.refreshShards()
	}
	return e.numShards
}

// InTickPhase reports whether the engine is inside the tick phase of a
// cycle (in either mode). Components with both a direct and a staged path
// for a cross-component effect use it to pick: staged during the tick
// phase, direct otherwise (commit phase, event handlers, setup code).
// During a parallel tick phase the flag is written by the main goroutine
// before the workers are released and after they finish, so workers read it
// race-free.
func (e *Engine) InTickPhase() bool { return e.inTick }

// InParallelTick reports whether the engine is inside a tick phase running
// sharded on the worker pool. Sharded subsystems with both a direct and a
// staged path for a cross-shard effect that is provably order-independent
// (e.g. NoC link handoffs, which only become observable next cycle) use it
// to stage only when workers are actually concurrent. The flag is written
// by the main goroutine before the workers are released and after they
// finish, so workers read it race-free.
func (e *Engine) InParallelTick() bool { return e.parTick }

// Close stops the engine's worker pool, if one was ever started. An engine
// is usable without ever calling Close (the pool is spawned lazily on first
// parallel tick); call it from tests and benchmarks that create many
// engines to avoid accumulating idle goroutines. Using the engine after
// Close restarts the pool on demand.
func (e *Engine) Close() {
	if e.pool != nil {
		e.pool.close()
		e.pool = nil
	}
}

// refreshShards rebuilds the per-shard ticker groups after registration
// changes. Groups preserve registration order within a shard and are
// ordered by ascending shard index across shards, so the serial order is
// the concatenation of the groups.
func (e *Engine) refreshShards() {
	e.groupsDirty = false
	e.shardCap = true
	e.tickWeight = 0
	maxShard := -1
	for _, t := range e.tickers {
		if wt, ok := t.(WeightedTicker); ok {
			e.tickWeight += wt.TickWeight()
		} else {
			e.tickWeight++
		}
		st, ok := t.(ShardTicker)
		if !ok || st.Shard() < 0 {
			e.shardCap = false
			e.groups = nil
			e.numShards = 0
			return
		}
		if s := st.Shard(); s > maxShard {
			maxShard = s
		}
	}
	byShard := make([][]Ticker, maxShard+1)
	for _, t := range e.tickers {
		s := t.(ShardTicker).Shard()
		byShard[s] = append(byShard[s], t)
	}
	e.groups = e.groups[:0]
	for _, g := range byShard {
		if len(g) > 0 {
			e.groups = append(e.groups, g)
		}
	}
	e.numShards = len(e.groups)
}

// parallelActive decides, per the configured ParallelMode, whether the tick
// phase runs sharded. All modes require every ticker to declare a shard and
// at least two shards to be populated; Auto additionally requires the
// ticker count to reach AutoParallelMinTickers and more than one CPU.
func (e *Engine) parallelActive() bool {
	if e.groupsDirty {
		e.refreshShards()
	}
	switch e.parMode {
	case ParallelOff:
		return false
	case ParallelOn:
		return e.shardCap && e.numShards > 1
	default:
		return e.shardCap && e.numShards > 1 &&
			e.tickWeight >= AutoParallelMinTickers &&
			runtime.GOMAXPROCS(0) > 1
	}
}

// allIdle reports whether every registered ticker is provably idle, i.e.
// the next cycle would tick nothing and only the event queue can make
// progress.
func (e *Engine) allIdle() bool {
	if !e.idleCapable {
		return false
	}
	for _, it := range e.idlers {
		if !it.Idle() {
			return false
		}
	}
	return true
}

// Schedule queues fn to run at cycle `at`. Scheduling in the past (or the
// current cycle, which has already begun) panics, because it would silently
// break causality. Scheduling from inside a parallel tick phase panics too:
// the event heap is not shared-safe, and a heap whose insertion order
// depends on worker interleaving would break the seq tie-break that keeps
// same-cycle events deterministic. (Serial tick phases may schedule freely —
// that is what opaque tickers are for.)
func (e *Engine) Schedule(at Cycle, fn func(now Cycle)) *Event {
	if e.parTick {
		panic("sim: Schedule during parallel tick phase (sharded tickers must stage via a Committer)")
	}
	if at <= e.now && e.now != 0 {
		panic(fmt.Sprintf("sim: Schedule at cycle %d but now is %d", at, e.now))
	}
	e.seq++
	ev := &Event{At: at, Do: fn, seq: e.seq}
	heap.Push(&e.events, ev)
	return ev
}

// ScheduleNoHandle queues fn at cycle `at` like Schedule, but returns no
// *Event handle: the event cannot be cancelled, which lets the engine pool
// and reuse the Event object after it fires. Hot paths that schedule one
// wake-up per unit of work (and never cancel) stay allocation-free.
func (e *Engine) ScheduleNoHandle(at Cycle, fn func(now Cycle)) {
	if e.parTick {
		panic("sim: Schedule during parallel tick phase (sharded tickers must stage via a Committer)")
	}
	if at <= e.now && e.now != 0 {
		panic(fmt.Sprintf("sim: Schedule at cycle %d but now is %d", at, e.now))
	}
	e.seq++
	var ev *Event
	if k := len(e.evPool); k > 0 {
		ev = e.evPool[k-1]
		e.evPool[k-1] = nil
		e.evPool = e.evPool[:k-1]
	} else {
		ev = &Event{}
	}
	*ev = Event{At: at, Do: fn, seq: e.seq, pooled: true}
	heap.Push(&e.events, ev)
}

// After queues fn to run d cycles from now (d must be >= 1). Like Schedule
// it panics if called from a parallel tick phase.
func (e *Engine) After(d Cycle, fn func(now Cycle)) *Event {
	if e.parTick {
		panic("sim: After during parallel tick phase (sharded tickers must stage via a Committer)")
	}
	if d == 0 {
		d = 1
	}
	e.seq++
	ev := &Event{At: e.now + d, Do: fn, seq: e.seq}
	heap.Push(&e.events, ev)
	return ev
}

// Stop requests that the Run/RunUntil in progress return at the end of the
// current cycle. Stop does not interrupt the cycle itself: when called from
// a scheduled event, the remaining events due this cycle and every ticker
// still fire before the run returns (events always precede tickers within a
// cycle). A Stop requested while no run is active carries over to the next
// Run/RunUntil, which returns before advancing the clock.
func (e *Engine) Stop() { e.stopped = true }

// Stopped reports whether a stop request is pending (set by Stop, cleared
// when a Run/RunUntil consumes it on return).
func (e *Engine) Stopped() bool { return e.stopped }

// Step advances the simulation exactly one cycle: events due this cycle
// fire first, then the tick phase runs every ticker (serially in
// registration order, or sharded across the worker pool — bit-identical
// either way), then the commit phase applies staged cross-shard effects via
// the registered Committers in registration order. Step never
// fast-forwards; the idle-skip optimization lives in Run/RunUntil, which
// know their budget.
func (e *Engine) Step() {
	e.now++
	for len(e.events) > 0 && e.events[0].At <= e.now {
		ev := heap.Pop(&e.events).(*Event)
		if !ev.dead {
			ev.Do(e.now)
		}
		if ev.pooled {
			ev.Do = nil
			e.evPool = append(e.evPool, ev)
		}
	}
	e.tickAll()
	for _, c := range e.committers {
		c.Commit(e.now)
	}
}

// tickAll runs the tick phase of the current cycle in the active mode.
func (e *Engine) tickAll() {
	e.inTick = true
	if e.parallelActive() {
		if e.pool == nil || e.pool.size() != len(e.groups) {
			e.Close()
			e.pool = newWorkerPool(e)
		}
		e.parTick = true
		e.pool.tick(e.now)
		e.parTick = false
	} else {
		for _, t := range e.tickers {
			t.Tick(e.now)
		}
	}
	e.inTick = false
}

// maybeSkip fast-forwards the clock to one cycle before the earliest
// upcoming event (or the run's end), provided every ticker is idle so the
// skipped cycles are provably dead. The next Step then lands exactly on the
// event's cycle.
func (e *Engine) maybeSkip(end Cycle) {
	if !e.idleSkip || !e.allIdle() {
		return
	}
	next := end
	if len(e.events) > 0 && e.events[0].At < next {
		next = e.events[0].At
	}
	if next > e.now+1 {
		e.skipped += uint64(next - e.now - 1)
		e.now = next - 1
	}
}

// Run advances n cycles, or fewer if Stop is called. Run(0) is a no-op and
// in particular leaves a pending stop request pending.
func (e *Engine) Run(n Cycle) {
	if n == 0 {
		return
	}
	if e.stopped {
		e.stopped = false
		return
	}
	e.running = true
	end := e.now + n
	for e.now < end && !e.stopped {
		e.maybeSkip(end)
		e.Step()
	}
	e.running = false
	e.stopped = false
}

// RunUntil advances the simulation until cond returns true or the budget of
// cycles is exhausted. It reports whether cond became true. cond is
// evaluated before every cycle; it must be a function of simulation state
// (see RunUntilEvery for the exact contract).
func (e *Engine) RunUntil(cond func() bool, budget Cycle) bool {
	return e.RunUntilEvery(cond, budget, 1)
}

// RunUntilEvery is RunUntil with the condition evaluated only once every
// stride cycles (and once more when the budget runs out), for predicates
// that are expensive relative to a cycle. A stride of 0 means 1.
//
// cond must be a pure function of simulation state: state only changes when
// tickers or events run, so the engine skips re-evaluating cond across
// fast-forwarded all-idle stretches (and, with stride > 1, between
// checkpoints). A condition on raw e.Now() may therefore be observed later
// than it first held; bound such waits with Run or schedule an event
// calling Stop instead.
func (e *Engine) RunUntilEvery(cond func() bool, budget, stride Cycle) bool {
	if stride == 0 {
		stride = 1
	}
	if e.stopped && budget > 0 {
		e.stopped = false
		return cond()
	}
	e.running = true
	end := e.now + budget
	sinceCheck := stride // evaluate once before the first cycle
	for e.now < end && !e.stopped {
		if sinceCheck >= stride {
			if cond() {
				e.running = false
				return true
			}
			sinceCheck = 0
		}
		start := e.now
		e.maybeSkip(end)
		e.Step()
		sinceCheck += e.now - start
	}
	e.running = false
	e.stopped = false
	return cond()
}

// Nanos converts a cycle count to nanoseconds at the configured frequency.
func (e *Engine) Nanos(c Cycle) float64 {
	return float64(c) * 1e3 / float64(e.freqMHz)
}

// Micros converts a cycle count to microseconds at the configured frequency.
func (e *Engine) Micros(c Cycle) float64 { return e.Nanos(c) / 1e3 }

// CyclesForNanos converts a duration in nanoseconds to cycles (rounded up).
func (e *Engine) CyclesForNanos(ns float64) Cycle {
	c := ns * float64(e.freqMHz) / 1e3
	whole := Cycle(c)
	if float64(whole) < c {
		whole++
	}
	return whole
}

// PendingEvents reports the number of live queued events (for tests).
func (e *Engine) PendingEvents() int {
	n := 0
	for _, ev := range e.events {
		if !ev.dead {
			n++
		}
	}
	return n
}
