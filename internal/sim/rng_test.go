package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed generators diverged at step %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical values", same)
	}
}

func TestIntnRange(t *testing.T) {
	r := NewRNG(7)
	if err := quick.Check(func(n uint8) bool {
		m := int(n%100) + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := NewRNG(11)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if mean < 0.49 || mean > 0.51 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestExpMean(t *testing.T) {
	r := NewRNG(13)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Exp(10)
	}
	mean := sum / n
	if mean < 9.5 || mean > 10.5 {
		t.Fatalf("Exp(10) sample mean = %v, want ~10", mean)
	}
}

func TestLnAgreesWithMath(t *testing.T) {
	for _, x := range []float64{0.001, 0.1, 0.5, 1, 2, 2.7, 10, 1000} {
		got, want := ln(x), math.Log(x)
		if math.Abs(got-want) > 1e-9*math.Max(1, math.Abs(want)) {
			t.Fatalf("ln(%v) = %v, want %v", x, got, want)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(17)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("Perm produced invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestBytesFills(t *testing.T) {
	r := NewRNG(19)
	for _, n := range []int{0, 1, 7, 8, 9, 64, 100} {
		b := make([]byte, n)
		r.Bytes(b)
		if n >= 16 {
			zero := 0
			for _, v := range b {
				if v == 0 {
					zero++
				}
			}
			if zero == n {
				t.Fatalf("Bytes(%d) left buffer all zero", n)
			}
		}
	}
}
