package sim

import (
	"fmt"
	"runtime"
	"testing"
)

// shardTicker is a test ShardTicker with a fixed shard and a tick hook.
type shardTicker struct {
	shard int
	fn    func(now Cycle)
}

func (s *shardTicker) Tick(now Cycle) {
	if s.fn != nil {
		s.fn(now)
	}
}
func (s *shardTicker) Shard() int { return s.shard }

func TestRegisterWhileRunningPanics(t *testing.T) {
	e := NewEngine(1)
	e.Register(TickerFunc(func(now Cycle) {
		if now == 2 {
			e.Register(TickerFunc(func(Cycle) {}))
		}
	}))
	defer func() {
		if recover() == nil {
			t.Fatal("Register from a ticker during Run did not panic")
		}
	}()
	e.Run(5)
}

func TestRegisterFromEventDuringRunPanics(t *testing.T) {
	e := NewEngine(1)
	e.Schedule(2, func(Cycle) {
		e.Register(TickerFunc(func(Cycle) {}))
	})
	defer func() {
		if recover() == nil {
			t.Fatal("Register from an event during Run did not panic")
		}
	}()
	e.Run(5)
}

func TestRegisterCommitterWhileRunningPanics(t *testing.T) {
	e := NewEngine(1)
	e.Register(TickerFunc(func(now Cycle) {
		e.RegisterCommitter(committerFunc(func(Cycle) {}))
	}))
	defer func() {
		if recover() == nil {
			t.Fatal("RegisterCommitter during a tick did not panic")
		}
	}()
	e.Step()
}

// committerFunc adapts a function to Committer for tests.
type committerFunc func(now Cycle)

func (f committerFunc) Commit(now Cycle) { f(now) }

// Register from an event fired by a bare Step is explicitly permitted: the
// event runs before the tick phase, so the new ticker ticks that same cycle.
func TestRegisterFromBareStepEventAllowed(t *testing.T) {
	e := NewEngine(1)
	var ticked []Cycle
	e.Schedule(1, func(Cycle) {
		e.Register(TickerFunc(func(now Cycle) { ticked = append(ticked, now) }))
	})
	e.Step()
	e.Step()
	if len(ticked) != 2 || ticked[0] != 1 || ticked[1] != 2 {
		t.Fatalf("late-registered ticker ticked at %v, want [1 2]", ticked)
	}
}

func TestParallelActiveConditions(t *testing.T) {
	// Opaque ticker (no Shard method) forces serial in every mode.
	e := NewEngine(1)
	e.Register(&shardTicker{shard: 0})
	e.Register(&shardTicker{shard: 1})
	e.Register(TickerFunc(func(Cycle) {}))
	e.SetParallel(ParallelOn)
	if e.ParallelActive() {
		t.Fatal("ParallelActive with an opaque ticker")
	}
	if e.NumShards() != 0 {
		t.Fatalf("NumShards with an opaque ticker = %d, want 0", e.NumShards())
	}

	// Negative shard index is opaque too.
	e = NewEngine(1)
	e.Register(&shardTicker{shard: 0})
	e.Register(&shardTicker{shard: -1})
	e.SetParallel(ParallelOn)
	if e.ParallelActive() {
		t.Fatal("ParallelActive with a negative-shard ticker")
	}

	// All sharded, two populated shards: On engages, Off never does.
	e = NewEngine(1)
	defer e.Close()
	e.Register(&shardTicker{shard: 0})
	e.Register(&shardTicker{shard: 1})
	e.SetParallel(ParallelOn)
	if !e.ParallelActive() {
		t.Fatal("ParallelOn with two sharded tickers not active")
	}
	e.SetParallel(ParallelOff)
	if e.ParallelActive() {
		t.Fatal("ParallelOff reported active")
	}

	// A single populated shard has nothing to parallelize.
	e = NewEngine(1)
	e.Register(&shardTicker{shard: 3})
	e.Register(&shardTicker{shard: 3})
	e.SetParallel(ParallelOn)
	if e.ParallelActive() {
		t.Fatal("ParallelActive with a single populated shard")
	}
	if e.NumShards() != 1 {
		t.Fatalf("NumShards = %d, want 1", e.NumShards())
	}
}

func TestParallelAutoThresholds(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	// Below AutoParallelMinTickers: Auto stays serial even fully sharded.
	e := NewEngine(1)
	for i := 0; i < 8; i++ {
		e.Register(&shardTicker{shard: i % 2})
	}
	if e.ParallelActive() {
		t.Fatal("ParallelAuto active below the ticker threshold")
	}

	// At the threshold with >1 CPU: Auto engages.
	e = NewEngine(1)
	defer e.Close()
	for i := 0; i < AutoParallelMinTickers; i++ {
		e.Register(&shardTicker{shard: i % 4})
	}
	if !e.ParallelActive() {
		t.Fatal("ParallelAuto not active at the ticker threshold")
	}
	if e.NumShards() != 4 {
		t.Fatalf("NumShards = %d, want 4", e.NumShards())
	}

	// On one CPU the barrier can't pay for itself; Auto stays serial.
	runtime.GOMAXPROCS(1)
	if e.ParallelActive() {
		t.Fatal("ParallelAuto active with GOMAXPROCS=1")
	}
}

// NumShards counts populated shards: gaps in the index space collapse.
func TestNumShardsIgnoresGaps(t *testing.T) {
	e := NewEngine(1)
	e.Register(&shardTicker{shard: 0})
	e.Register(&shardTicker{shard: 5})
	if e.NumShards() != 2 {
		t.Fatalf("NumShards with shards {0,5} = %d, want 2", e.NumShards())
	}
}

// buildStagedEngine wires nShards x perShard tickers that stage their id into
// per-shard buffers during the tick phase, plus a committer that drains the
// buffers in shard order into a global log. The log is the determinism
// witness: serial and parallel runs must produce the identical sequence.
func buildStagedEngine(nShards, perShard int, log *[]string) (*Engine, [][]string) {
	e := NewEngine(42)
	staged := make([][]string, nShards)
	id := 0
	// Register interleaved across shards so within-shard registration order
	// differs from global registration order.
	for j := 0; j < perShard; j++ {
		for s := 0; s < nShards; s++ {
			s, tid := s, id
			e.Register(&shardTicker{shard: s, fn: func(now Cycle) {
				staged[s] = append(staged[s], fmt.Sprintf("t%d@%d", tid, now))
			}})
			id++
		}
	}
	e.RegisterCommitter(committerFunc(func(now Cycle) {
		for s := range staged {
			*log = append(*log, staged[s]...)
			staged[s] = staged[s][:0]
		}
	}))
	return e, staged
}

// TestParallelCommitOrderMatchesSerial is the engine-level determinism check:
// the committed effect order (shard-major, registration order within a
// shard) is identical whether the tick phase ran serially or on the pool.
func TestParallelCommitOrderMatchesSerial(t *testing.T) {
	const cycles = 25
	var serialLog []string
	se, _ := buildStagedEngine(3, 4, &serialLog)
	se.SetParallel(ParallelOff)
	se.Run(cycles)

	var parLog []string
	pe, _ := buildStagedEngine(3, 4, &parLog)
	pe.SetParallel(ParallelOn)
	defer pe.Close()
	if !pe.ParallelActive() {
		t.Fatal("parallel engine did not activate")
	}
	pe.Run(cycles)

	if len(serialLog) != len(parLog) {
		t.Fatalf("log lengths differ: serial %d, parallel %d", len(serialLog), len(parLog))
	}
	for i := range serialLog {
		if serialLog[i] != parLog[i] {
			t.Fatalf("log[%d]: serial %q, parallel %q", i, serialLog[i], parLog[i])
		}
	}
}

// Sharded tickers must not touch the event heap from the parallel tick
// phase; Schedule and After panic there. The ticker recovers its own panic
// so it does not take down the worker goroutine.
func TestScheduleDuringParallelTickPanics(t *testing.T) {
	e := NewEngine(1)
	defer e.Close()
	var scheduleMsg, afterMsg any
	e.Register(&shardTicker{shard: 0, fn: func(now Cycle) {
		func() {
			defer func() { scheduleMsg = recover() }()
			e.Schedule(now+5, func(Cycle) {})
		}()
		func() {
			defer func() { afterMsg = recover() }()
			e.After(5, func(Cycle) {})
		}()
	}})
	e.Register(&shardTicker{shard: 1})
	e.SetParallel(ParallelOn)
	e.Run(1)
	if scheduleMsg == nil {
		t.Fatal("Schedule during a parallel tick phase did not panic")
	}
	if afterMsg == nil {
		t.Fatal("After during a parallel tick phase did not panic")
	}
	// Serial tick phases may schedule freely (that is what opaque tickers
	// are for): the same calls succeed with the pool disengaged.
	e.SetParallel(ParallelOff)
	scheduleMsg, afterMsg = nil, nil
	e.Run(1)
	if scheduleMsg != nil || afterMsg != nil {
		t.Fatalf("Schedule/After panicked during a serial tick: %v, %v", scheduleMsg, afterMsg)
	}
}

func TestStopUnderParallel(t *testing.T) {
	e := NewEngine(1)
	defer e.Close()
	var last Cycle
	e.Register(&shardTicker{shard: 0, fn: func(now Cycle) { last = now }})
	e.Register(&shardTicker{shard: 1})
	e.SetParallel(ParallelOn)
	e.Schedule(3, func(Cycle) { e.Stop() })
	e.Run(100)
	// Stop ends the run at the end of the requesting cycle: the cycle-3
	// tick phase still runs.
	if e.Now() != 3 || last != 3 {
		t.Fatalf("Now = %d, last tick = %d, want 3/3", e.Now(), last)
	}
	if e.Stopped() {
		t.Fatal("stop request not consumed by Run")
	}
}

func TestRunZeroLeavesPendingStop(t *testing.T) {
	e := NewEngine(1)
	defer e.Close()
	e.Register(&shardTicker{shard: 0})
	e.Register(&shardTicker{shard: 1})
	e.SetParallel(ParallelOn)
	e.Stop()
	e.Run(0) // no-op: must not consume the pending stop
	if !e.Stopped() {
		t.Fatal("Run(0) consumed the pending stop request")
	}
	e.Run(5) // consumes the stop, does not advance
	if e.Now() != 0 {
		t.Fatalf("Run after pending stop advanced to %d, want 0", e.Now())
	}
	e.Run(5)
	if e.Now() != 5 {
		t.Fatalf("Now = %d, want 5", e.Now())
	}
}

func TestRunUntilEveryUnderParallel(t *testing.T) {
	e := NewEngine(1)
	defer e.Close()
	var ticks int
	e.Register(&shardTicker{shard: 0, fn: func(Cycle) { ticks++ }})
	e.Register(&shardTicker{shard: 1})
	e.SetParallel(ParallelOn)
	if !e.RunUntilEvery(func() bool { return ticks >= 10 }, 100, 4) {
		t.Fatal("RunUntilEvery did not observe the condition")
	}
	// Condition is checked every 4 cycles, so the run overshoots by < 4.
	if ticks < 10 || ticks > 13 {
		t.Fatalf("ticks = %d, want 10..13", ticks)
	}
	// A pending stop makes RunUntilEvery return cond() without advancing.
	e.Stop()
	before := e.Now()
	if !e.RunUntilEvery(func() bool { return true }, 100, 1) {
		t.Fatal("RunUntilEvery with pending stop did not evaluate cond")
	}
	if e.Now() != before {
		t.Fatalf("RunUntilEvery with pending stop advanced %d -> %d", before, e.Now())
	}
}

// Close stops the pool; further parallel runs lazily restart it, and the
// simulation stays correct across the restart.
func TestCloseRestartsPoolOnDemand(t *testing.T) {
	e := NewEngine(1)
	var ticks [2]int
	e.Register(&shardTicker{shard: 0, fn: func(Cycle) { ticks[0]++ }})
	e.Register(&shardTicker{shard: 1, fn: func(Cycle) { ticks[1]++ }})
	e.SetParallel(ParallelOn)
	e.Run(10)
	e.Close()
	e.Close() // idempotent
	e.Run(10)
	e.Close()
	if ticks[0] != 20 || ticks[1] != 20 {
		t.Fatalf("ticks = %v, want [20 20]", ticks)
	}
}

// Counters are documented tick-phase safe: concurrent Inc from sharded
// tickers must not lose updates (run with -race to check the implementation).
func TestCounterTickPhaseSafe(t *testing.T) {
	e := NewEngine(1)
	defer e.Close()
	st := NewStats()
	c := st.Counter("test.shared")
	for s := 0; s < 4; s++ {
		e.Register(&shardTicker{shard: s, fn: func(Cycle) { c.Inc() }})
	}
	e.SetParallel(ParallelOn)
	e.Run(100)
	if c.Value() != 400 {
		t.Fatalf("shared counter = %d, want 400", c.Value())
	}
}
