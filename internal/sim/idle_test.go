package sim

import (
	"reflect"
	"testing"
)

// idleCounter is an IdleTicker that does one unit of work per cycle while
// work is pending (work arrives via engine events) and records the cycles
// it worked at.
type idleCounter struct {
	pending int
	history []Cycle
}

func (c *idleCounter) Idle() bool { return c.pending == 0 }

func (c *idleCounter) Tick(now Cycle) {
	if c.pending == 0 {
		return
	}
	c.pending--
	c.history = append(c.history, now)
}

func TestIdleSkipFastForwards(t *testing.T) {
	e := NewEngine(1)
	c := &idleCounter{}
	e.Register(c)
	e.Schedule(1000, func(Cycle) { c.pending = 2 })
	e.Run(2000)
	if e.Now() != 2000 {
		t.Fatalf("Now = %d, want 2000", e.Now())
	}
	if e.SkippedCycles() == 0 {
		t.Fatal("no cycles skipped across an all-idle stretch")
	}
	want := []Cycle{1000, 1001}
	if !reflect.DeepEqual(c.history, want) {
		t.Fatalf("work history = %v, want %v", c.history, want)
	}
}

func TestIdleSkipDeterminism(t *testing.T) {
	run := func(skip bool) (*idleCounter, Cycle) {
		e := NewEngine(42)
		e.SetIdleSkip(skip)
		c := &idleCounter{}
		e.Register(c)
		// Irregular bursts of work, including an event scheduled from an
		// event.
		e.Schedule(10, func(Cycle) { c.pending += 3 })
		e.Schedule(500, func(now Cycle) {
			c.pending++
			e.After(250, func(Cycle) { c.pending += 2 })
		})
		e.Run(5000)
		return c, e.Now()
	}
	cOn, nowOn := run(true)
	cOff, nowOff := run(false)
	if nowOn != nowOff {
		t.Fatalf("final cycle differs: skip=%d noskip=%d", nowOn, nowOff)
	}
	if !reflect.DeepEqual(cOn.history, cOff.history) {
		t.Fatalf("work history differs:\n skip:   %v\n noskip: %v",
			cOn.history, cOff.history)
	}
	if len(cOn.history) == 0 {
		t.Fatal("workload did nothing; test is vacuous")
	}
}

func TestOpaqueTickerDisablesSkip(t *testing.T) {
	e := NewEngine(1)
	e.Register(&idleCounter{})
	e.Register(TickerFunc(func(Cycle) {})) // not idle-capable
	e.Run(1000)
	if e.SkippedCycles() != 0 {
		t.Fatalf("skipped %d cycles despite an opaque ticker", e.SkippedCycles())
	}
}

func TestSetIdleSkipOff(t *testing.T) {
	e := NewEngine(1)
	e.Register(&idleCounter{})
	e.SetIdleSkip(false)
	if e.IdleSkip() {
		t.Fatal("IdleSkip still reports enabled")
	}
	e.Run(1000)
	if e.SkippedCycles() != 0 {
		t.Fatalf("skipped %d cycles with fast-forward disabled", e.SkippedCycles())
	}
}

// TestStopFromScheduledEvent pins the documented Stop semantics: a Stop
// issued by an event still lets the rest of that cycle complete — remaining
// same-cycle events and every ticker fire — before Run returns.
func TestStopFromScheduledEvent(t *testing.T) {
	e := NewEngine(1)
	var seq []string
	e.Schedule(3, func(Cycle) {
		seq = append(seq, "stop-event")
		e.Stop()
	})
	e.Schedule(3, func(Cycle) { seq = append(seq, "later-event") })
	e.Register(TickerFunc(func(now Cycle) {
		if now == 3 {
			seq = append(seq, "ticker")
		}
	}))
	e.Run(100)
	if e.Now() != 3 {
		t.Fatalf("Now after Stop = %d, want 3", e.Now())
	}
	want := []string{"stop-event", "later-event", "ticker"}
	if !reflect.DeepEqual(seq, want) {
		t.Fatalf("cycle-3 sequence = %v, want %v", seq, want)
	}
	// The stop was consumed: the next Run proceeds normally.
	e.Run(2)
	if e.Now() != 5 {
		t.Fatalf("Now after follow-up Run(2) = %d, want 5", e.Now())
	}
}

func TestRunZeroPreservesPendingStop(t *testing.T) {
	e := NewEngine(1)
	e.Stop()
	e.Run(0)
	if !e.Stopped() {
		t.Fatal("Run(0) consumed a pending stop")
	}
	e.Run(10)
	if e.Now() != 0 {
		t.Fatalf("Run with pending stop advanced to %d, want 0", e.Now())
	}
	if e.Stopped() {
		t.Fatal("pending stop not consumed by Run")
	}
	e.Run(10)
	if e.Now() != 10 {
		t.Fatalf("Now = %d, want 10", e.Now())
	}
}

func TestRunUntilPendingStop(t *testing.T) {
	e := NewEngine(1)
	e.Stop()
	if e.RunUntil(func() bool { return false }, 100) {
		t.Fatal("RunUntil true for false cond")
	}
	if e.Now() != 0 {
		t.Fatalf("RunUntil with pending stop advanced to %d, want 0", e.Now())
	}
	if e.Stopped() {
		t.Fatal("pending stop not consumed by RunUntil")
	}
}

func TestRunUntilEveryStride(t *testing.T) {
	e := NewEngine(1)
	// An opaque ticker keeps the engine grinding every cycle so the stride
	// is exercised cycle by cycle.
	e.Register(TickerFunc(func(Cycle) {}))
	evals := 0
	hit := false
	e.Schedule(10, func(Cycle) { hit = true })
	ok := e.RunUntilEvery(func() bool { evals++; return hit }, 100, 25)
	if !ok {
		t.Fatal("condition never observed")
	}
	// Checked once up front, once at cycle 25 (first stride checkpoint at or
	// after the event) — the stride makes observation late but bounded.
	if e.Now() != 25 {
		t.Fatalf("observed at cycle %d, want 25", e.Now())
	}
	if evals != 2 {
		t.Fatalf("cond evaluated %d times, want 2", evals)
	}
}

func TestRunUntilSkipsAcrossIdle(t *testing.T) {
	e := NewEngine(1)
	c := &idleCounter{}
	e.Register(c)
	e.Schedule(900, func(Cycle) { c.pending = 1 })
	done := func() bool { return len(c.history) > 0 }
	if !e.RunUntil(done, 10000) {
		t.Fatal("condition not reached")
	}
	if e.Now() > 902 {
		t.Fatalf("overshot: Now = %d, want ~900", e.Now())
	}
	if e.SkippedCycles() == 0 {
		t.Fatal("RunUntil did not fast-forward the idle stretch")
	}
}
