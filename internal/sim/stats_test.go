package sim

import (
	"math"
	"sort"
	"strings"
	"testing"
)

func TestCounter(t *testing.T) {
	s := NewStats()
	c := s.Counter("x")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if s.Counter("x") != c {
		t.Fatal("Counter with same name returned a different instance")
	}
}

func TestHistogramBasics(t *testing.T) {
	h := &Histogram{}
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	if h.Count() != 100 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Min() != 1 || h.Max() != 100 {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
	if h.Mean() != 50.5 {
		t.Fatalf("Mean = %v, want 50.5", h.Mean())
	}
	if m := h.Median(); m < 50 || m > 51 {
		t.Fatalf("Median = %v, want ~50.5", m)
	}
	if p := h.P99(); p < 99 || p > 100 {
		t.Fatalf("P99 = %v, want ~99-100", p)
	}
}

func TestHistogramQuantileEdges(t *testing.T) {
	h := &Histogram{}
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile should be 0")
	}
	h.Observe(7)
	if h.Quantile(0) != 7 || h.Quantile(1) != 7 || h.Quantile(0.99) != 7 {
		t.Fatal("single-sample quantiles should all be the sample")
	}
}

func TestHistogramObserveAfterQuantile(t *testing.T) {
	h := &Histogram{}
	h.Observe(10)
	_ = h.Median()
	h.Observe(1) // must re-sort
	if h.Quantile(0) != 1 {
		t.Fatalf("Quantile(0) = %v after late observe, want 1", h.Quantile(0))
	}
}

func TestHistogramReset(t *testing.T) {
	h := &Histogram{}
	h.Observe(3)
	h.Reset()
	if h.Count() != 0 || h.Mean() != 0 || h.Max() != 0 {
		t.Fatal("Reset did not clear histogram")
	}
}

// TestHistogramBounded proves the log-linear collapse keeps memory flat and
// quantiles within 1% of exact on a distribution with a heavy tail.
func TestHistogramBounded(t *testing.T) {
	h := &Histogram{}
	var exact []float64
	rng := NewRNG(42)
	const n = 200_000
	for i := 0; i < n; i++ {
		// Mixture: bulk around 50 cycles, 1% tail out to ~100k.
		v := float64(1 + rng.Intn(100))
		if rng.Intn(100) == 0 {
			v = float64(1000 + rng.Intn(100000))
		}
		h.Observe(v)
		exact = append(exact, v)
	}
	if h.samples != nil {
		t.Fatalf("histogram still holds %d exact samples past the cap", len(h.samples))
	}
	if len(h.buckets) > 64*histSubBuckets {
		t.Fatalf("bucket count %d not bounded", len(h.buckets))
	}
	if h.Count() != n {
		t.Fatalf("Count = %d, want %d", h.Count(), n)
	}
	sort.Float64s(exact)
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		want := exact[int(q*float64(n))]
		got := h.Quantile(q)
		if diff := math.Abs(got-want) / want; diff > 0.01 {
			t.Errorf("Quantile(%v) = %v, exact %v (%.2f%% off)", q, got, want, diff*100)
		}
	}
	if h.Min() != exact[0] || h.Max() != exact[n-1] {
		t.Fatalf("min/max drifted: %v/%v", h.Min(), h.Max())
	}
}

// TestHistogramOrderIndependentAfterCollapse: bucket counts are a multiset
// property, so quantiles after the collapse cannot depend on observation
// order — the property that keeps sharded runs bit-exact.
func TestHistogramOrderIndependentAfterCollapse(t *testing.T) {
	a, b := &Histogram{}, &Histogram{}
	const n = 3 * HistExactCap
	for i := 0; i < n; i++ {
		a.Observe(float64(1 + i%977))
	}
	for i := n - 1; i >= 0; i-- {
		b.Observe(float64(1 + i%977))
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.99, 1} {
		if a.Quantile(q) != b.Quantile(q) {
			t.Fatalf("Quantile(%v): %v vs %v", q, a.Quantile(q), b.Quantile(q))
		}
	}
}

func TestHistogramResetAfterCollapse(t *testing.T) {
	h := &Histogram{}
	for i := 0; i < HistExactCap+10; i++ {
		h.Observe(float64(i + 1))
	}
	if h.buckets == nil {
		t.Fatal("expected collapse")
	}
	h.Reset()
	if h.Count() != 0 || h.buckets != nil {
		t.Fatal("Reset did not return to the exact regime")
	}
	h.Observe(7)
	if h.Quantile(0.5) != 7 {
		t.Fatal("exact regime broken after Reset")
	}
}

func TestStatsString(t *testing.T) {
	s := NewStats()
	s.Counter("alpha").Add(3)
	s.Histogram("beta").Observe(2)
	out := s.String()
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "beta") {
		t.Fatalf("String() missing metrics:\n%s", out)
	}
}

func TestStatsEnumerationOrder(t *testing.T) {
	s := NewStats()
	s.Counter("b")
	s.Counter("a")
	s.Histogram("z")
	cs := s.Counters()
	if len(cs) != 2 || cs[0].Name != "b" || cs[1].Name != "a" {
		t.Fatalf("counter order wrong: %v", cs)
	}
	hs := s.Histograms()
	if len(hs) != 1 || hs[0].Name != "z" {
		t.Fatalf("histogram enumeration wrong")
	}
}
