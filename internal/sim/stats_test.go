package sim

import (
	"strings"
	"testing"
)

func TestCounter(t *testing.T) {
	s := NewStats()
	c := s.Counter("x")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if s.Counter("x") != c {
		t.Fatal("Counter with same name returned a different instance")
	}
}

func TestHistogramBasics(t *testing.T) {
	h := &Histogram{}
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	if h.Count() != 100 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Min() != 1 || h.Max() != 100 {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
	if h.Mean() != 50.5 {
		t.Fatalf("Mean = %v, want 50.5", h.Mean())
	}
	if m := h.Median(); m < 50 || m > 51 {
		t.Fatalf("Median = %v, want ~50.5", m)
	}
	if p := h.P99(); p < 99 || p > 100 {
		t.Fatalf("P99 = %v, want ~99-100", p)
	}
}

func TestHistogramQuantileEdges(t *testing.T) {
	h := &Histogram{}
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile should be 0")
	}
	h.Observe(7)
	if h.Quantile(0) != 7 || h.Quantile(1) != 7 || h.Quantile(0.99) != 7 {
		t.Fatal("single-sample quantiles should all be the sample")
	}
}

func TestHistogramObserveAfterQuantile(t *testing.T) {
	h := &Histogram{}
	h.Observe(10)
	_ = h.Median()
	h.Observe(1) // must re-sort
	if h.Quantile(0) != 1 {
		t.Fatalf("Quantile(0) = %v after late observe, want 1", h.Quantile(0))
	}
}

func TestHistogramReset(t *testing.T) {
	h := &Histogram{}
	h.Observe(3)
	h.Reset()
	if h.Count() != 0 || h.Mean() != 0 || h.Max() != 0 {
		t.Fatal("Reset did not clear histogram")
	}
}

func TestStatsString(t *testing.T) {
	s := NewStats()
	s.Counter("alpha").Add(3)
	s.Histogram("beta").Observe(2)
	out := s.String()
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "beta") {
		t.Fatalf("String() missing metrics:\n%s", out)
	}
}

func TestStatsEnumerationOrder(t *testing.T) {
	s := NewStats()
	s.Counter("b")
	s.Counter("a")
	s.Histogram("z")
	cs := s.Counters()
	if len(cs) != 2 || cs[0].Name != "b" || cs[1].Name != "a" {
		t.Fatalf("counter order wrong: %v", cs)
	}
	hs := s.Histograms()
	if len(hs) != 1 || hs[0].Name != "z" {
		t.Fatalf("histogram enumeration wrong")
	}
}
