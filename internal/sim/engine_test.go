package sim

import "testing"

func TestEngineTickOrder(t *testing.T) {
	e := NewEngine(1)
	var order []int
	e.Register(TickerFunc(func(Cycle) { order = append(order, 1) }))
	e.Register(TickerFunc(func(Cycle) { order = append(order, 2) }))
	e.Step()
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("tick order = %v, want [1 2]", order)
	}
}

func TestEngineNowAdvances(t *testing.T) {
	e := NewEngine(1)
	if e.Now() != 0 {
		t.Fatalf("fresh engine Now = %d, want 0", e.Now())
	}
	e.Run(10)
	if e.Now() != 10 {
		t.Fatalf("after Run(10) Now = %d, want 10", e.Now())
	}
}

func TestEventsFireAtScheduledCycle(t *testing.T) {
	e := NewEngine(1)
	var fired Cycle
	e.Schedule(5, func(now Cycle) { fired = now })
	e.Run(10)
	if fired != 5 {
		t.Fatalf("event fired at %d, want 5", fired)
	}
}

func TestEventsFireBeforeTickersInSameCycle(t *testing.T) {
	e := NewEngine(1)
	var seq []string
	e.Register(TickerFunc(func(now Cycle) {
		if now == 3 {
			seq = append(seq, "tick")
		}
	}))
	e.Schedule(3, func(Cycle) { seq = append(seq, "event") })
	e.Run(5)
	if len(seq) != 2 || seq[0] != "event" || seq[1] != "tick" {
		t.Fatalf("sequence = %v, want [event tick]", seq)
	}
}

func TestEventOrderingDeterministicTies(t *testing.T) {
	e := NewEngine(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(2, func(Cycle) { got = append(got, i) })
	}
	e.Run(3)
	for i, v := range got {
		if v != i {
			t.Fatalf("tie-broken event order = %v, want ascending", got)
		}
	}
}

func TestEventCancel(t *testing.T) {
	e := NewEngine(1)
	fired := false
	ev := e.Schedule(2, func(Cycle) { fired = true })
	ev.Cancel()
	e.Run(5)
	if fired {
		t.Fatal("cancelled event fired")
	}
	if e.PendingEvents() != 0 {
		t.Fatalf("PendingEvents = %d, want 0", e.PendingEvents())
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	e := NewEngine(1)
	e.Run(4)
	var fired Cycle
	e.After(3, func(now Cycle) { fired = now })
	e.Run(10)
	if fired != 7 {
		t.Fatalf("After(3) at cycle 4 fired at %d, want 7", fired)
	}
}

func TestAfterZeroMeansNextCycle(t *testing.T) {
	e := NewEngine(1)
	e.Run(1)
	var fired Cycle
	e.After(0, func(now Cycle) { fired = now })
	e.Run(3)
	if fired != 2 {
		t.Fatalf("After(0) fired at %d, want 2", fired)
	}
}

func TestStop(t *testing.T) {
	e := NewEngine(1)
	e.Register(TickerFunc(func(now Cycle) {
		if now == 3 {
			e.Stop()
		}
	}))
	e.Run(100)
	if e.Now() != 3 {
		t.Fatalf("Now after Stop = %d, want 3", e.Now())
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine(1)
	hit := false
	e.Schedule(7, func(Cycle) { hit = true })
	if !e.RunUntil(func() bool { return hit }, 100) {
		t.Fatal("RunUntil did not observe condition")
	}
	if e.Now() < 7 || e.Now() > 8 {
		t.Fatalf("Now = %d, want ~7", e.Now())
	}
	if e.RunUntil(func() bool { return false }, 10) {
		t.Fatal("RunUntil reported success for impossible condition")
	}
}

func TestScheduleInPastPanics(t *testing.T) {
	e := NewEngine(1)
	e.Run(5)
	defer func() {
		if recover() == nil {
			t.Fatal("Schedule in the past did not panic")
		}
	}()
	e.Schedule(3, func(Cycle) {})
}

func TestTimeConversions(t *testing.T) {
	e := NewEngine(1)
	e.SetClockMHz(250) // 4 ns per cycle
	if ns := e.Nanos(10); ns != 40 {
		t.Fatalf("Nanos(10) = %v, want 40", ns)
	}
	if us := e.Micros(250); us != 1 {
		t.Fatalf("Micros(250) = %v, want 1", us)
	}
	if c := e.CyclesForNanos(41); c != 11 {
		t.Fatalf("CyclesForNanos(41) = %d, want 11 (round up)", c)
	}
	if c := e.CyclesForNanos(40); c != 10 {
		t.Fatalf("CyclesForNanos(40) = %d, want 10", c)
	}
}

func TestSetClockZeroPanics(t *testing.T) {
	e := NewEngine(1)
	defer func() {
		if recover() == nil {
			t.Fatal("SetClockMHz(0) did not panic")
		}
	}()
	e.SetClockMHz(0)
}

func TestRegisterNilPanics(t *testing.T) {
	e := NewEngine(1)
	defer func() {
		if recover() == nil {
			t.Fatal("Register(nil) did not panic")
		}
	}()
	e.Register(nil)
}
