package sim

// RNG is a small, fast, deterministic pseudo-random number generator
// (splitmix64 seeding a xoshiro256** core). math/rand would also work, but a
// local implementation guarantees the stream never changes across Go
// releases, which keeps recorded experiment outputs reproducible.
type RNG struct {
	s [4]uint64
}

func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// NewRNG returns a generator seeded from seed via splitmix64.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	x := seed
	for i := range r.s {
		r.s[i] = splitmix64(&x)
	}
	// xoshiro must not start in the all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with n <= 0")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.Float64() < p }

// Exp returns an exponentially distributed value with the given mean,
// suitable for Poisson inter-arrival times.
func (r *RNG) Exp(mean float64) float64 {
	u := r.Float64()
	// Avoid log(0).
	for u == 0 {
		u = r.Float64()
	}
	return -mean * ln(u)
}

// ln is a minimal natural-log implementation (stdlib math is allowed, but a
// tiny local version documents that we only need modest precision here).
func ln(x float64) float64 {
	// Use the identity ln(x) = 2*artanh((x-1)/(x+1)) with series expansion.
	// For x in (0,1] this converges quickly after range reduction by e.
	const e = 2.718281828459045
	k := 0
	for x < 1.0/e {
		x *= e
		k--
	}
	for x > e {
		x /= e
		k++
	}
	y := (x - 1) / (x + 1)
	y2 := y * y
	term := y
	sum := 0.0
	for i := 1; i < 40; i += 2 {
		sum += term / float64(i)
		term *= y2
	}
	return 2*sum + float64(k)
}

// Perm returns a random permutation of [0, n) using Fisher-Yates.
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Bytes fills b with random bytes.
func (r *RNG) Bytes(b []byte) {
	i := 0
	for ; i+8 <= len(b); i += 8 {
		v := r.Uint64()
		for k := 0; k < 8; k++ {
			b[i+k] = byte(v >> (8 * k))
		}
	}
	if i < len(b) {
		v := r.Uint64()
		for ; i < len(b); i++ {
			b[i] = byte(v)
			v >>= 8
		}
	}
}
