// Package monitor implements the per-tile Apiary monitor — the trusted
// component that sits between an untrusted accelerator and the tile's NoC
// router (paper §4.1, Figure 1). Every message entering or leaving the tile
// passes through it, which is where Apiary enforces:
//
//   - capability-checked communication: a request may only leave the tile
//     if the tile holds an endpoint capability for the destination service,
//     and memory operations additionally require a segment capability
//     (paper §4.5, §4.6);
//   - source stamping: accelerators cannot spoof their tile or context;
//   - rate limiting: a token-bucket egress limiter answers resource
//     exhaustion by malicious or buggy accelerators (paper §4.5);
//   - fail-stop fault containment: a faulted tile stops emitting and NACKs
//     senders with EFailStopped (paper §4.4);
//   - the service name table: logical service IDs resolve to physical tiles
//     at the API layer (paper §4.3).
package monitor

import (
	"apiary/internal/accel"
	"apiary/internal/cap"
	"apiary/internal/msg"
	"apiary/internal/noc"
	"apiary/internal/sim"
	"apiary/internal/trace"
)

// RateLimit configures the egress token bucket. Zero values mean unlimited.
type RateLimit struct {
	FlitsPerKCycle int // sustained rate: flits per 1000 cycles
	BurstFlits     int // bucket depth
}

// Detect configures the monitor's watchdog detectors. Zero values disable
// each detector — the default, because detectors convert anomalies into
// fail-stop faults and must be an explicit policy choice (a rate-limited
// flooder, for example, accrues denials by design).
type Detect struct {
	// HeartbeatCycles faults the tile when its accelerator leaves queued
	// input unconsumed for this many cycles (accel.FaultHeartbeat). It
	// generalizes the shell's full-queue watchdog to hangs whose senders
	// stop before the queue fills.
	HeartbeatCycles sim.Cycle
	// ViolationLimit faults the tile after this many egress protocol
	// violations — denied sends: management-plane attempts, unknown
	// services, missing/revoked capabilities (accel.FaultProtocol). Rate
	// limiting is a policer, not a violation, and never counts.
	ViolationLimit int
	// LeakLimit and LeakAgeCycles fault the tile when it holds at least
	// LeakLimit unanswered requests and the window has been starved of
	// replies for LeakAgeCycles (accel.FaultLeak) — a requester leaking
	// protocol credits against a dead peer.
	LeakLimit     int
	LeakAgeCycles sim.Cycle
}

// DefaultDetect is the watchdog configuration used by apiaryd -detect and
// the chaos experiments: heartbeat well above service-time jitter, a small
// violation budget, and a leak window sized to the requester default
// timeout.
var DefaultDetect = Detect{
	HeartbeatCycles: 50_000,
	ViolationLimit:  3,
	LeakLimit:       64,
	LeakAgeCycles:   100_000,
}

// Config parameterizes a monitor.
type Config struct {
	Tile   msg.TileID
	Kernel msg.TileID // tile whose ctl messages are authoritative
	// EnforceCaps disables capability checking when false — the ablation
	// knob for experiment E6. Production configurations keep it true.
	EnforceCaps bool
	Rate        RateLimit
	// Detect configures the watchdog detectors (zero = all off).
	Detect Detect
}

// Monitor is one tile's monitor instance.
type Monitor struct {
	cfg     Config
	engine  *sim.Engine
	ni      *noc.NetworkInterface
	shell   *accel.Shell
	table   *cap.Table
	checker *cap.Checker
	names   map[msg.ServiceID]msg.TileID
	tracer  *trace.Tracer

	// shard is the tile's shard affinity (from the NI), propagated to
	// attached shells and used to stage trace events during tick phases.
	shard int

	// token bucket
	tokens     float64
	lastRefill sim.Cycle

	capChecks  *sim.Counter
	denied     *sim.Counter
	rateDrops  *sim.Counter
	forwarded  *sim.Counter
	faults     *sim.Counter
	nackedIn   *sim.Counter
	violations *sim.Counter
	deliveredH *sim.Histogram

	// Detector state: egress protocol violations since the last trip, and
	// the outstanding-request window for the credit-leak detector. Egress
	// runs in the tile's tick, ingress at commit — different phases of the
	// same cycle, never concurrently.
	violationRun int
	pendingReq   int
	lastReplyAt  sim.Cycle
}

// New wires a monitor between ni and shell. checker is the system-wide
// generation authority (kernel-owned); tracer may be nil.
func New(cfg Config, e *sim.Engine, ni *noc.NetworkInterface, shell *accel.Shell,
	checker *cap.Checker, tracer *trace.Tracer, st *sim.Stats) *Monitor {
	m := &Monitor{
		cfg:        cfg,
		engine:     e,
		ni:         ni,
		shell:      shell,
		table:      cap.NewTable(),
		checker:    checker,
		names:      make(map[msg.ServiceID]msg.TileID),
		tracer:     tracer,
		tokens:     float64(cfg.Rate.BurstFlits),
		capChecks:  st.Counter("mon.cap_checks"),
		denied:     st.Counter("mon.denied"),
		rateDrops:  st.Counter("mon.rate_drops"),
		forwarded:  st.Counter("mon.forwarded"),
		faults:     st.Counter("mon.faults"),
		nackedIn:   st.Counter("mon.nacked_in"),
		violations: st.Counter("mon.violations"),
		deliveredH: st.Histogram("mon.noc_latency_cycles"),
		shard:      -1,
	}
	if ni != nil {
		m.shard = ni.Shard()
		ni.SetDeliver(m.ingress)
	}
	if shell != nil {
		shell.Bind(m.Egress, m.onFault)
		shell.SetShard(m.shard)
		shell.SetHeartbeat(cfg.Detect.HeartbeatCycles)
	}
	return m
}

// AttachShell binds a shell created after the monitor (the kernel attaches
// accelerators to tiles when an app is placed). The shell inherits the
// tile's shard affinity, so a TileLocal accelerator ticks on the tile's
// worker under the parallel scheduler.
func (m *Monitor) AttachShell(s *accel.Shell) {
	m.shell = s
	s.Bind(m.Egress, m.onFault)
	s.SetShard(m.shard)
	s.SetHeartbeat(m.cfg.Detect.HeartbeatCycles)
}

// DetachShell disconnects the tile's accelerator (tile cleared).
func (m *Monitor) DetachShell() { m.shell = nil }

// SetRate replaces the egress rate limit (kernel-side, at placement time).
func (m *Monitor) SetRate(r RateLimit) {
	m.cfg.Rate = r
	m.tokens = float64(r.BurstFlits)
	m.lastRefill = m.engine.Now()
}

// Table exposes the tile's capability table (kernel-side installation).
func (m *Monitor) Table() *cap.Table { return m.table }

// BindName installs svc -> tile in the local name table (kernel-side; the
// message path is TCtlSetName).
func (m *Monitor) BindName(svc msg.ServiceID, tile msg.TileID) {
	if tile == msg.NoTile {
		delete(m.names, svc)
		return
	}
	m.names[svc] = tile
}

// LookupName resolves a service id.
func (m *Monitor) LookupName(svc msg.ServiceID) (msg.TileID, bool) {
	t, ok := m.names[svc]
	return t, ok
}

// State reports the wrapped shell's lifecycle state; tiles without a shell
// (service tiles managed elsewhere) report Running.
func (m *Monitor) State() accel.State {
	if m.shell == nil {
		return accel.Running
	}
	return m.shell.State()
}

func (m *Monitor) trace(dir trace.Dir, v trace.Verdict, mm *msg.Message, peer msg.TileID) {
	m.emit(trace.Event{
		Cycle: m.engine.Now(), Tile: m.cfg.Tile, Dir: dir, Verdict: v,
		Type: mm.Type, Seq: mm.Seq, DstSvc: mm.DstSvc, Peer: peer,
		Bytes: len(mm.Payload),
	})
}

// emit routes a trace event by phase: events raised inside a tick phase
// (egress/fault paths, possibly on a shard worker) are staged per shard and
// flushed by the tracer's commit; events raised outside (ingress, ctl —
// always on the main goroutine) append directly. Staging whenever in a tick
// phase — serially ticked or not — keeps the recorded order identical
// across execution modes.
func (m *Monitor) emit(ev trace.Event) {
	if m.engine.InTickPhase() {
		m.tracer.RecordShard(m.shard, ev)
	} else {
		m.tracer.Record(ev)
	}
}

// allowFlits implements the token bucket. n is the flit count of the
// message being charged.
func (m *Monitor) allowFlits(n int) bool {
	r := m.cfg.Rate
	if r.FlitsPerKCycle <= 0 {
		return true
	}
	now := m.engine.Now()
	elapsed := float64(now - m.lastRefill)
	m.lastRefill = now
	m.tokens += elapsed * float64(r.FlitsPerKCycle) / 1000
	if burst := float64(r.BurstFlits); m.tokens > burst {
		m.tokens = burst
	}
	if m.tokens < float64(n) {
		return false
	}
	m.tokens -= float64(n)
	return true
}

// isCtl reports whether t belongs to the management plane.
func isCtl(t msg.Type) bool { return noc.ClassVC(t) == noc.VCMgmt }

// isReplyClass reports whether t is a response-type message, which may
// address tiles directly (the capability was checked on the request path).
func isReplyClass(t msg.Type) bool { return noc.ClassVC(t) == noc.VCReply }

// Egress is the accelerator-facing send path (installed as the shell's
// SendFunc). It performs stamping, name resolution, capability checks and
// rate limiting, then injects into the NoC.
func (m *Monitor) Egress(mm *msg.Message) msg.ErrCode {
	// Quiescing is a healthy drain: the accelerator may still emit the
	// replies (and system-service traffic) it needs to reach quiescence.
	if st := m.State(); st != accel.Running && st != accel.Quiescing {
		return msg.EFailStopped
	}
	// Stamp the true source; accelerators cannot spoof (paper §4.5).
	mm.SrcTile = m.cfg.Tile

	// Accelerators may never emit management-plane messages.
	if isCtl(mm.Type) {
		m.denied.Inc()
		m.trace(trace.Egress, trace.DeniedRights, mm, mm.DstTile)
		m.noteViolation()
		return msg.ERights
	}

	if isReplyClass(mm.Type) {
		// Replies address tiles directly.
		if mm.DstTile == msg.NoTile {
			m.denied.Inc()
			return msg.ENoRoute
		}
	} else {
		// Requests address services: resolve, then check the endpoint cap.
		dst, ok := m.names[mm.DstSvc]
		if !ok || mm.DstSvc == msg.SvcInvalid {
			m.denied.Inc()
			m.trace(trace.Egress, trace.DeniedNoService, mm, msg.NoTile)
			m.noteViolation()
			return msg.ENoService
		}
		mm.DstTile = dst
		if m.cfg.EnforceCaps {
			if code := m.checkEndpoint(mm); code != msg.EOK {
				m.denied.Inc()
				m.trace(trace.Egress, verdictFor(code), mm, dst)
				// A stale-generation capability is the expected transient
				// while the kernel quarantines a peer: the deny itself
				// contains the send, and the client did nothing wrong —
				// only forged or never-granted rights count against the
				// fail-stop budget.
				if code != msg.ERevoked {
					m.noteViolation()
				}
				return code
			}
			if mm.Type == msg.TMemRead || mm.Type == msg.TMemWrite {
				if code := m.attachSegment(mm); code != msg.EOK {
					m.denied.Inc()
					m.trace(trace.Egress, verdictFor(code), mm, dst)
					m.noteViolation()
					return code
				}
			}
			if mm.Type == msg.TMemCopy {
				if code := m.attachCopySegments(mm); code != msg.EOK {
					m.denied.Inc()
					m.trace(trace.Egress, verdictFor(code), mm, dst)
					m.noteViolation()
					return code
				}
			}
		}
		if code := m.checkLeak(mm); code != msg.EOK {
			return code
		}
	}

	if !m.allowFlits(noc.FlitsFor(mm.WireSize())) {
		m.rateDrops.Inc()
		m.trace(trace.Egress, trace.RateLimited, mm, mm.DstTile)
		return msg.ERateLimited
	}

	if err := m.ni.Send(mm); err != nil {
		m.denied.Inc()
		return msg.ENoRoute
	}
	m.forwarded.Inc()
	if !isReplyClass(mm.Type) && mm.Type != msg.TOneway {
		// Track the outstanding-request window for the leak detector.
		m.pendingReq++
		if d := m.cfg.Detect; d.LeakLimit <= 0 || m.pendingReq <= d.LeakLimit {
			m.lastReplyAt = m.engine.Now()
		}
	}
	m.trace(trace.Egress, trace.Forwarded, mm, mm.DstTile)
	return msg.EOK
}

// noteViolation counts an egress protocol violation and, when the detector
// is enabled, fail-stops the tile after ViolationLimit of them — wild
// writes, forged capability references and babble to unknown services all
// land here.
func (m *Monitor) noteViolation() {
	m.violations.Inc()
	limit := m.cfg.Detect.ViolationLimit
	if limit <= 0 {
		return
	}
	m.violationRun++
	if m.violationRun >= limit {
		m.violationRun = 0
		m.onFault(0, accel.FaultProtocol)
	}
}

// checkLeak trips the credit-leak detector: once the tile holds LeakLimit
// unanswered requests, going LeakAgeCycles without a single reply faults it
// before it can tie up more of its peers' queues.
func (m *Monitor) checkLeak(mm *msg.Message) msg.ErrCode {
	d := m.cfg.Detect
	if d.LeakLimit <= 0 || m.pendingReq < d.LeakLimit {
		return msg.EOK
	}
	if m.engine.Now()-m.lastReplyAt <= d.LeakAgeCycles {
		return msg.EOK
	}
	m.pendingReq = 0
	m.onFault(0, accel.FaultLeak)
	m.trace(trace.Egress, trace.DeniedFailStop, mm, mm.DstTile)
	return msg.EFailStopped
}

// checkEndpoint verifies the tile holds a current endpoint capability for
// the destination service (CAM search of the partitioned table).
func (m *Monitor) checkEndpoint(mm *msg.Message) msg.ErrCode {
	m.capChecks.Inc()
	c, _, ok := m.table.Find(cap.KindEndpoint, uint32(mm.DstSvc))
	if !ok {
		return msg.ENoCap
	}
	return m.checker.Check(c, cap.RSend)
}

// attachSegment validates the accelerator's segment capability reference
// for a memory operation and rewrites CapRef to the segment ID. The memory
// service trusts this rewrite because monitors are trusted components; the
// accelerator itself never holds the capability, only the reference
// (paper §4.6).
func (m *Monitor) attachSegment(mm *msg.Message) msg.ErrCode {
	m.capChecks.Inc()
	c, ok := m.table.Lookup(cap.Ref(mm.CapRef))
	if !ok || c.Kind != cap.KindSegment {
		return msg.ENoCap
	}
	need := cap.RRead
	if mm.Type == msg.TMemWrite {
		need = cap.RWrite
	}
	if code := m.checker.Check(c, need); code != msg.EOK {
		return code
	}
	mm.CapRef = c.Object // carry the segment ID, not the local ref
	return msg.EOK
}

// attachCopySegments validates both capability references of a DMA copy:
// CapRef names the source segment (read rights), the payload's DstRef the
// destination (write rights). Both are rewritten to segment IDs.
func (m *Monitor) attachCopySegments(mm *msg.Message) msg.ErrCode {
	// Source: same path as a read.
	saveType := mm.Type
	mm.Type = msg.TMemRead
	code := m.attachSegment(mm)
	mm.Type = saveType
	if code != msg.EOK {
		return code
	}
	// Destination: decode, check write rights, rewrite in place.
	req, err := msg.DecodeMemCopyReq(mm.Payload)
	if err != nil {
		return msg.EBadMsg
	}
	m.capChecks.Inc()
	c, ok := m.table.Lookup(cap.Ref(req.DstRef))
	if !ok || c.Kind != cap.KindSegment {
		return msg.ENoCap
	}
	if code := m.checker.Check(c, cap.RWrite); code != msg.EOK {
		return code
	}
	msg.SetMemCopyDst(mm.Payload, c.Object)
	return msg.EOK
}

func verdictFor(code msg.ErrCode) trace.Verdict {
	switch code {
	case msg.ENoCap:
		return trace.DeniedNoCap
	case msg.ERevoked:
		return trace.DeniedRevoked
	case msg.ERights:
		return trace.DeniedRights
	case msg.ENoService:
		return trace.DeniedNoService
	case msg.EFailStopped:
		return trace.DeniedFailStop
	case msg.ERateLimited:
		return trace.RateLimited
	}
	return trace.DeniedNoCap
}

// reply sends a monitor-originated message (error replies, ctl responses)
// directly through the NI. Monitor traffic is trusted and not rate limited.
func (m *Monitor) reply(mm *msg.Message) {
	mm.SrcTile = m.cfg.Tile
	_ = m.ni.Send(mm)
}

// ingress is the NoC-facing delivery path.
func (m *Monitor) ingress(mm *msg.Message, lat sim.Cycle) {
	m.deliveredH.Observe(float64(lat))

	if isCtl(mm.Type) {
		m.handleCtl(mm)
		return
	}

	if isReplyClass(mm.Type) && m.pendingReq > 0 {
		m.pendingReq--
		m.lastReplyAt = m.engine.Now()
	}

	if st := m.State(); st != accel.Running && st != accel.Quiescing {
		m.trace(trace.Ingress, trace.DeniedFailStop, mm, mm.SrcTile)
		// Fail-stop: NACK requests so callers unblock with an error
		// instead of timing out (paper §4.4: "returning an error to any
		// accelerator that tries to communicate with it").
		if !isReplyClass(mm.Type) {
			m.nackedIn.Inc()
			m.reply(mm.ErrorReply(msg.EFailStopped))
		}
		return
	}

	if m.shell == nil {
		// No consumer on this tile.
		if !isReplyClass(mm.Type) {
			m.nackedIn.Inc()
			m.reply(mm.ErrorReply(msg.ENoService))
		}
		return
	}

	code := m.shell.Deliver(mm)
	if code != msg.EOK {
		m.trace(trace.Ingress, trace.DeniedFailStop, mm, mm.SrcTile)
		if !isReplyClass(mm.Type) {
			m.nackedIn.Inc()
			m.reply(mm.ErrorReply(code))
		}
		return
	}
	m.trace(trace.Ingress, trace.Forwarded, mm, mm.SrcTile)
}

// handleCtl executes management-plane commands. Only the kernel tile is
// authoritative; ctl messages from anywhere else are dropped (defense in
// depth — accelerators cannot emit ctl messages in the first place).
func (m *Monitor) handleCtl(mm *msg.Message) {
	if mm.SrcTile != m.cfg.Kernel && mm.SrcTile != m.cfg.Tile {
		m.denied.Inc()
		m.trace(trace.Ingress, trace.DeniedRights, mm, mm.SrcTile)
		return
	}
	switch mm.Type {
	case msg.TCtlInstallCap:
		req, err := msg.DecodeInstallCapReq(mm.Payload)
		if err != nil {
			return
		}
		if len(req.Cap) == 0 {
			m.table.Remove(cap.Ref(req.Slot))
			return
		}
		c, err := cap.Decode(req.Cap)
		if err != nil {
			return
		}
		m.table.InstallAt(cap.Ref(req.Slot), c)
	case msg.TCtlRevokeCap:
		req, err := msg.DecodeInstallCapReq(mm.Payload)
		if err != nil {
			return
		}
		m.table.Remove(cap.Ref(req.Slot))
	case msg.TCtlSetName:
		req, err := msg.DecodeSetNameReq(mm.Payload)
		if err != nil {
			return
		}
		m.BindName(req.Svc, req.Tile)
	case msg.TCtlDrain:
		m.failStop()
	case msg.TCtlQuiesce:
		// Healthy drain for checkpoint/migration: keep ticking, deliver
		// replies, bounce new requests with the retryable EQuiescing.
		if m.shell != nil && m.shell.State() == accel.Running {
			m.shell.SetState(accel.Quiescing)
		}
	case msg.TCtlResume:
		if m.shell == nil {
			break
		}
		if m.shell.State() == accel.Quiescing {
			// Migration abort: un-quiesce WITHOUT a reset — the app state
			// must survive exactly as it was, the source stays
			// authoritative.
			m.shell.SetState(accel.Running)
		} else {
			m.shell.Reset()
		}
	case msg.TCtlPing:
		m.reply(mm.Reply(msg.TReply, nil))
	case msg.TCtlStats:
		m.reply(mm.Reply(msg.TReply, []byte{byte(m.State())}))
	}
}

// onFault is the shell's fault hook (paper §4.4). Preemptible accelerators
// lose only the faulting context; concurrent-only accelerators fail-stop
// the whole tile. Either way the kernel is notified over the management
// plane.
func (m *Monitor) onFault(ctx uint8, reason accel.FaultReason) {
	m.faults.Inc()
	m.emit(trace.Event{
		Cycle: m.engine.Now(), Tile: m.cfg.Tile, Verdict: trace.Faulted,
	})
	contained := m.shell != nil && m.shell.KillContext(ctx)
	if !contained {
		m.failStop()
	}
	report := msg.FaultReport{
		Tile: m.cfg.Tile, Ctx: ctx, Reason: uint8(reason),
		Cycle: uint64(m.engine.Now()),
	}
	m.reply(&msg.Message{
		Type:    msg.TCtlFault,
		DstTile: m.cfg.Kernel,
		Payload: msg.EncodeFaultReport(report),
	})
}

// failStop transitions the tile into the draining/fail-stopped state.
func (m *Monitor) failStop() {
	if m.shell != nil {
		m.shell.SetState(accel.Draining)
	}
}

// ForceFault lets tests and the fault-injection harness fault the tile as
// if the accelerator had raised an error strobe.
func (m *Monitor) ForceFault(ctx uint8, reason accel.FaultReason) {
	m.onFault(ctx, reason)
}

// InjectWildWrite emits one forged memory write carrying a dangling
// capability reference, exactly as runaway accelerator logic would (chaos
// engine; called between cycles). With capability enforcement on, the write
// dies at this monitor as a protocol violation; with it off, the memory
// service rejects the unknown segment — either way it never touches memory,
// which is the containment property E16 and the differential tests rely on.
func (m *Monitor) InjectWildWrite() msg.ErrCode {
	return m.Egress(&msg.Message{
		Type: msg.TMemWrite, DstSvc: msg.SvcMemory,
		CapRef:  0xDEAD0000 + uint32(m.cfg.Tile),
		Payload: []byte{0xDE, 0xAD, 0xBE, 0xEF},
	})
}
