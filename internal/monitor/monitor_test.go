package monitor

import (
	"testing"

	"apiary/internal/accel"
	"apiary/internal/cap"
	"apiary/internal/msg"
	"apiary/internal/noc"
	"apiary/internal/sim"
	"apiary/internal/trace"
)

// echoAccel replies to every TRequest with a TReply carrying the same
// payload.
type echoAccel struct{ ctxs int }

func (a *echoAccel) Name() string  { return "echo" }
func (a *echoAccel) Contexts() int { return a.ctxs }
func (a *echoAccel) Reset()        {}
func (a *echoAccel) Tick(p accel.Port) {
	if m, ok := p.Recv(); ok {
		if m.Type == msg.TRequest {
			p.Send(m.Reply(msg.TReply, m.Payload))
		}
	}
}

// driverAccel sends queued messages and collects everything it receives.
type driverAccel struct {
	out  []*msg.Message
	code []msg.ErrCode
	in   []*msg.Message
}

func (a *driverAccel) Name() string  { return "driver" }
func (a *driverAccel) Contexts() int { return 1 }
func (a *driverAccel) Reset()        {}
func (a *driverAccel) Tick(p accel.Port) {
	if len(a.out) > 0 {
		m := a.out[0]
		a.out = a.out[1:]
		a.code = append(a.code, p.Send(m))
	}
	if m, ok := p.Recv(); ok {
		a.in = append(a.in, m)
	}
}

// rig is a 2x2 mesh with a driver on tile 0 and an echo on tile 3,
// kernel notionally on tile 1 (no shell there).
type rig struct {
	e       *sim.Engine
	st      *sim.Stats
	net     *noc.Network
	checker *cap.Checker
	tracer  *trace.Tracer
	driver  *driverAccel
	dshell  *accel.Shell
	dmon    *Monitor
	eshell  *accel.Shell
	emon    *Monitor
	kmon    *Monitor // kernel-tile monitor, no shell
}

const (
	driverTile = msg.TileID(0)
	kernelTile = msg.TileID(1)
	echoTile   = msg.TileID(3)
	echoSvc    = msg.FirstUserService
)

func newRig(t *testing.T, enforce bool, rate RateLimit) *rig {
	t.Helper()
	r := &rig{
		e:       sim.NewEngine(7),
		st:      sim.NewStats(),
		checker: cap.NewChecker(),
		tracer:  trace.New(4096),
	}
	r.net = noc.NewNetwork(r.e, r.st, noc.Config{Dims: noc.Dims{W: 2, H: 2}})
	r.driver = &driverAccel{}
	r.dshell = accel.NewShell(r.driver, r.st)
	r.dmon = New(Config{Tile: driverTile, Kernel: kernelTile, EnforceCaps: enforce, Rate: rate},
		r.e, r.net.NI(driverTile), r.dshell, r.checker, r.tracer, r.st)
	r.eshell = accel.NewShell(&echoAccel{ctxs: 1}, r.st)
	r.emon = New(Config{Tile: echoTile, Kernel: kernelTile, EnforceCaps: enforce},
		r.e, r.net.NI(echoTile), r.eshell, r.checker, r.tracer, r.st)
	r.kmon = New(Config{Tile: kernelTile, Kernel: kernelTile, EnforceCaps: enforce},
		r.e, r.net.NI(kernelTile), nil, r.checker, r.tracer, r.st)
	r.e.Register(r.dshell)
	r.e.Register(r.eshell)
	// Both monitors know where the echo service lives.
	r.dmon.BindName(echoSvc, echoTile)
	r.emon.BindName(echoSvc, echoTile)
	return r
}

// grantEcho installs an endpoint capability for the echo service on the
// driver tile.
func (r *rig) grantEcho() {
	c := cap.Capability{
		Kind: cap.KindEndpoint, Rights: cap.RSend,
		Object: uint32(echoSvc), Gen: r.checker.Gen(cap.KindEndpoint, uint32(echoSvc)),
	}
	r.dmon.Table().Install(c)
}

func request(payload string) *msg.Message {
	return &msg.Message{Type: msg.TRequest, DstSvc: echoSvc, Seq: 1, Payload: []byte(payload)}
}

func TestRequestReplyRoundTrip(t *testing.T) {
	r := newRig(t, true, RateLimit{})
	r.grantEcho()
	r.driver.out = append(r.driver.out, request("ping"))
	if !r.e.RunUntil(func() bool { return len(r.driver.in) > 0 }, 5000) {
		t.Fatal("no reply")
	}
	got := r.driver.in[0]
	if got.Type != msg.TReply || string(got.Payload) != "ping" {
		t.Fatalf("reply = %v", got)
	}
	if got.SrcTile != echoTile {
		t.Fatalf("reply SrcTile = %d, want %d (stamped by echo monitor)", got.SrcTile, echoTile)
	}
}

func TestDeniedWithoutCapability(t *testing.T) {
	r := newRig(t, true, RateLimit{})
	// No grant.
	r.driver.out = append(r.driver.out, request("x"))
	r.e.Run(2000)
	if len(r.driver.in) != 0 {
		t.Fatal("message crossed without a capability")
	}
	if len(r.driver.code) == 0 || r.driver.code[0] != msg.ENoCap {
		t.Fatalf("send code = %v, want ENoCap", r.driver.code)
	}
	if len(r.tracer.Denials()) == 0 {
		t.Fatal("denial not traced")
	}
}

func TestEnforcementOffAblation(t *testing.T) {
	r := newRig(t, false, RateLimit{})
	// No grant, but enforcement is off (E6 ablation).
	r.driver.out = append(r.driver.out, request("x"))
	if !r.e.RunUntil(func() bool { return len(r.driver.in) > 0 }, 5000) {
		t.Fatal("no reply with enforcement off")
	}
}

func TestRevokedCapabilityDenied(t *testing.T) {
	r := newRig(t, true, RateLimit{})
	r.grantEcho()
	r.checker.Revoke(cap.KindEndpoint, uint32(echoSvc))
	r.driver.out = append(r.driver.out, request("x"))
	r.e.Run(2000)
	if len(r.driver.code) == 0 || r.driver.code[0] != msg.ERevoked {
		t.Fatalf("send code = %v, want ERevoked", r.driver.code)
	}
}

func TestInsufficientRightsDenied(t *testing.T) {
	r := newRig(t, true, RateLimit{})
	// Endpoint cap without RSend.
	r.dmon.Table().Install(cap.Capability{
		Kind: cap.KindEndpoint, Rights: cap.RGrant, Object: uint32(echoSvc),
	})
	r.driver.out = append(r.driver.out, request("x"))
	r.e.Run(2000)
	if len(r.driver.code) == 0 || r.driver.code[0] != msg.ERights {
		t.Fatalf("send code = %v, want ERights", r.driver.code)
	}
}

func TestUnknownServiceDenied(t *testing.T) {
	r := newRig(t, true, RateLimit{})
	r.grantEcho()
	m := request("x")
	m.DstSvc = 999
	r.driver.out = append(r.driver.out, m)
	r.e.Run(2000)
	if len(r.driver.code) == 0 || r.driver.code[0] != msg.ENoService {
		t.Fatalf("send code = %v, want ENoService", r.driver.code)
	}
}

func TestSrcTileStamping(t *testing.T) {
	r := newRig(t, true, RateLimit{})
	r.grantEcho()
	m := request("x")
	m.SrcTile = echoTile // spoof attempt
	r.driver.out = append(r.driver.out, m)
	if !r.e.RunUntil(func() bool { return len(r.driver.in) > 0 }, 5000) {
		t.Fatal("no reply")
	}
	// If the spoof had worked, the reply would have gone to echoTile itself.
	if r.driver.in[0].DstTile != driverTile {
		t.Fatal("spoofed source survived the monitor")
	}
}

func TestAcceleratorCannotSendCtl(t *testing.T) {
	r := newRig(t, true, RateLimit{})
	r.grantEcho()
	m := &msg.Message{Type: msg.TCtlDrain, DstSvc: echoSvc}
	r.driver.out = append(r.driver.out, m)
	r.e.Run(2000)
	if len(r.driver.code) == 0 || r.driver.code[0] != msg.ERights {
		t.Fatalf("ctl send code = %v, want ERights", r.driver.code)
	}
	if r.emon.State() != accel.Running {
		t.Fatal("accelerator managed to drain a peer tile")
	}
}

func TestRateLimiting(t *testing.T) {
	// 64-flit burst, 10 flits/kcycle sustained: a flooder is clamped.
	r := newRig(t, true, RateLimit{FlitsPerKCycle: 10, BurstFlits: 64})
	r.grantEcho()
	for i := 0; i < 100; i++ {
		r.driver.out = append(r.driver.out, request("flood-payload-xxxx"))
	}
	r.e.Run(3000)
	limited := 0
	for _, c := range r.driver.code {
		if c == msg.ERateLimited {
			limited++
		}
	}
	if limited == 0 {
		t.Fatal("no sends were rate limited")
	}
	if r.st.Counter("mon.rate_drops").Value() == 0 {
		t.Fatal("rate drops not counted")
	}
}

func TestRateLimiterRefills(t *testing.T) {
	// Burst of 4 flits = two empty requests (2 flits each) back to back;
	// a third is limited, but after a refill window it succeeds.
	r := newRig(t, true, RateLimit{FlitsPerKCycle: 100, BurstFlits: 4})
	r.grantEcho()
	for i := 0; i < 3; i++ {
		r.driver.out = append(r.driver.out, request(""))
	}
	r.e.Run(10)
	if len(r.driver.code) != 3 || r.driver.code[0] != msg.EOK ||
		r.driver.code[1] != msg.EOK || r.driver.code[2] != msg.ERateLimited {
		t.Fatalf("burst codes = %v, want [ok ok rate-limited]", r.driver.code)
	}
	r.e.Run(100) // refill window: 100 flits/kcycle * 100 cycles = 10 flits
	r.driver.out = append(r.driver.out, request(""))
	r.e.Run(100)
	if len(r.driver.code) != 4 || r.driver.code[3] != msg.EOK {
		t.Fatalf("post-refill codes = %v, want final ok", r.driver.code)
	}
}

func TestFailStopNacksSenders(t *testing.T) {
	r := newRig(t, true, RateLimit{})
	r.grantEcho()
	r.emon.ForceFault(0, accel.FaultExplicit)
	if r.emon.State() != accel.Draining {
		t.Fatalf("state after fault = %v", r.emon.State())
	}
	r.driver.out = append(r.driver.out, request("x"))
	if !r.e.RunUntil(func() bool { return len(r.driver.in) > 0 }, 5000) {
		t.Fatal("no NACK from fail-stopped tile")
	}
	got := r.driver.in[0]
	if got.Type != msg.TError || got.Err != msg.EFailStopped {
		t.Fatalf("NACK = %v", got)
	}
}

func TestFaultReportsToKernel(t *testing.T) {
	r := newRig(t, true, RateLimit{})
	// Watch the kernel tile's deliveries by replacing its NI handler —
	// install a fresh monitor-less sink.
	var reports []*msg.Message
	r.net.NI(kernelTile).SetDeliver(func(m *msg.Message, _ sim.Cycle) {
		if m.Type == msg.TCtlFault {
			reports = append(reports, m)
		}
	})
	r.emon.ForceFault(0, accel.FaultPanic)
	if !r.e.RunUntil(func() bool { return len(reports) > 0 }, 5000) {
		t.Fatal("kernel never received the fault report")
	}
	rep, err := msg.DecodeFaultReport(reports[0].Payload)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Tile != echoTile || accel.FaultReason(rep.Reason) != accel.FaultPanic {
		t.Fatalf("report = %+v", rep)
	}
}

func TestCtlInstallCapOverNoC(t *testing.T) {
	r := newRig(t, true, RateLimit{})
	c := cap.Capability{Kind: cap.KindEndpoint, Rights: cap.RSend, Object: uint32(echoSvc)}
	ctl := &msg.Message{
		Type: msg.TCtlInstallCap, SrcTile: kernelTile, DstTile: driverTile,
		Payload: msg.EncodeInstallCapReq(msg.InstallCapReq{Slot: 0, Cap: c.Encode()}),
	}
	if err := r.net.NI(kernelTile).Send(ctl); err != nil {
		t.Fatal(err)
	}
	r.e.Run(200)
	got, ok := r.dmon.Table().Lookup(0)
	if !ok || got.Object != uint32(echoSvc) {
		t.Fatal("capability not installed via ctl message")
	}
	// And the driver can now send.
	r.driver.out = append(r.driver.out, request("hi"))
	if !r.e.RunUntil(func() bool { return len(r.driver.in) > 0 }, 5000) {
		t.Fatal("send after ctl install failed")
	}
}

func TestCtlFromNonKernelIgnored(t *testing.T) {
	r := newRig(t, true, RateLimit{})
	evil := &msg.Message{
		Type: msg.TCtlDrain, SrcTile: echoTile, DstTile: driverTile,
	}
	// Inject directly at the NoC as if a compromised tile forged it.
	if err := r.net.NI(echoTile).Send(evil); err != nil {
		t.Fatal(err)
	}
	r.e.Run(500)
	if r.dmon.State() != accel.Running {
		t.Fatal("non-kernel ctl message drained a tile")
	}
}

func TestCtlDrainAndResume(t *testing.T) {
	r := newRig(t, true, RateLimit{})
	r.grantEcho()
	drain := &msg.Message{Type: msg.TCtlDrain, SrcTile: kernelTile, DstTile: echoTile}
	_ = r.net.NI(kernelTile).Send(drain)
	r.e.Run(200)
	if r.emon.State() != accel.Draining {
		t.Fatalf("state = %v after drain", r.emon.State())
	}
	resume := &msg.Message{Type: msg.TCtlResume, SrcTile: kernelTile, DstTile: echoTile}
	_ = r.net.NI(kernelTile).Send(resume)
	r.e.Run(200)
	if r.emon.State() != accel.Running {
		t.Fatalf("state = %v after resume", r.emon.State())
	}
	r.driver.out = append(r.driver.out, request("back"))
	if !r.e.RunUntil(func() bool { return len(r.driver.in) > 0 }, 5000) {
		t.Fatal("tile not functional after resume")
	}
}

func TestCtlPing(t *testing.T) {
	r := newRig(t, true, RateLimit{})
	var pong *msg.Message
	r.net.NI(kernelTile).SetDeliver(func(m *msg.Message, _ sim.Cycle) {
		if m.Type == msg.TReply {
			pong = m
		}
	})
	ping := &msg.Message{Type: msg.TCtlPing, SrcTile: kernelTile, DstTile: echoTile, Seq: 42}
	_ = r.net.NI(kernelTile).Send(ping)
	if !r.e.RunUntil(func() bool { return pong != nil }, 5000) {
		t.Fatal("no pong")
	}
	if pong.Seq != 42 {
		t.Fatalf("pong seq = %d", pong.Seq)
	}
}

func TestNoShellTileNacksRequests(t *testing.T) {
	r := newRig(t, true, RateLimit{})
	// Bind a service name to the kernel tile, which has no shell.
	r.dmon.BindName(msg.ServiceID(77), kernelTile)
	r.dmon.Table().Install(cap.Capability{
		Kind: cap.KindEndpoint, Rights: cap.RSend, Object: 77,
	})
	m := &msg.Message{Type: msg.TRequest, DstSvc: 77}
	r.driver.out = append(r.driver.out, m)
	if !r.e.RunUntil(func() bool { return len(r.driver.in) > 0 }, 5000) {
		t.Fatal("no NACK from shell-less tile")
	}
	if r.driver.in[0].Err != msg.ENoService {
		t.Fatalf("NACK err = %v", r.driver.in[0].Err)
	}
}

func TestMemOpRequiresSegmentCap(t *testing.T) {
	r := newRig(t, true, RateLimit{})
	// Give the driver an endpoint cap for the "memory service" (we point it
	// at the echo tile; the monitor-side checks are what's under test).
	r.dmon.BindName(msg.SvcMemory, echoTile)
	r.dmon.Table().Install(cap.Capability{
		Kind: cap.KindEndpoint, Rights: cap.RSend, Object: uint32(msg.SvcMemory),
	})
	read := &msg.Message{
		Type: msg.TMemRead, DstSvc: msg.SvcMemory, CapRef: uint32(cap.NilRef),
		Payload: msg.EncodeMemReq(msg.MemReq{Offset: 0, Length: 8}),
	}
	r.driver.out = append(r.driver.out, read)
	r.e.Run(2000)
	if len(r.driver.code) == 0 || r.driver.code[0] != msg.ENoCap {
		t.Fatalf("mem op without segment cap = %v, want ENoCap", r.driver.code)
	}

	// Now grant a read-only segment cap and check the rewrite + rights.
	segRef := r.dmon.Table().Install(cap.Capability{
		Kind: cap.KindSegment, Rights: cap.RRead, Object: 1234,
	})
	write := &msg.Message{
		Type: msg.TMemWrite, DstSvc: msg.SvcMemory, CapRef: uint32(segRef),
		Payload: msg.EncodeMemReq(msg.MemReq{Offset: 0, Data: []byte{1}}),
	}
	r.driver.out = append(r.driver.out, write)
	r.e.Run(2000)
	if len(r.driver.code) < 2 || r.driver.code[1] != msg.ERights {
		t.Fatalf("write with read-only cap = %v, want ERights", r.driver.code)
	}

	read2 := &msg.Message{
		Type: msg.TMemRead, DstSvc: msg.SvcMemory, CapRef: uint32(segRef),
		Payload: msg.EncodeMemReq(msg.MemReq{Offset: 0, Length: 8}),
	}
	r.driver.out = append(r.driver.out, read2)
	r.e.Run(2000)
	if len(r.driver.code) < 3 || r.driver.code[2] != msg.EOK {
		t.Fatalf("read with cap = %v, want EOK", r.driver.code)
	}
}

func TestCtlRevokeCapSlot(t *testing.T) {
	r := newRig(t, true, RateLimit{})
	r.grantEcho()
	if _, ok := r.dmon.Table().Lookup(0); !ok {
		t.Fatal("grant not installed at slot 0")
	}
	revoke := &msg.Message{
		Type: msg.TCtlRevokeCap, SrcTile: kernelTile, DstTile: driverTile,
		Payload: msg.EncodeInstallCapReq(msg.InstallCapReq{Slot: 0}),
	}
	_ = r.net.NI(kernelTile).Send(revoke)
	r.e.Run(200)
	if _, ok := r.dmon.Table().Lookup(0); ok {
		t.Fatal("slot not revoked via ctl")
	}
}

func TestCtlSetNameOverNoC(t *testing.T) {
	r := newRig(t, true, RateLimit{})
	set := &msg.Message{
		Type: msg.TCtlSetName, SrcTile: kernelTile, DstTile: driverTile,
		Payload: msg.EncodeSetNameReq(msg.SetNameReq{Svc: 99, Tile: echoTile}),
	}
	_ = r.net.NI(kernelTile).Send(set)
	r.e.Run(200)
	if tile, ok := r.dmon.LookupName(99); !ok || tile != echoTile {
		t.Fatal("name not bound via ctl")
	}
	// Unbind with NoTile.
	unset := &msg.Message{
		Type: msg.TCtlSetName, SrcTile: kernelTile, DstTile: driverTile,
		Payload: msg.EncodeSetNameReq(msg.SetNameReq{Svc: 99, Tile: msg.NoTile}),
	}
	_ = r.net.NI(kernelTile).Send(unset)
	r.e.Run(200)
	if _, ok := r.dmon.LookupName(99); ok {
		t.Fatal("name not unbound via ctl")
	}
}

func TestCtlStatsReportsState(t *testing.T) {
	r := newRig(t, true, RateLimit{})
	var reply *msg.Message
	r.net.NI(kernelTile).SetDeliver(func(m *msg.Message, _ sim.Cycle) {
		if m.Type == msg.TReply {
			reply = m
		}
	})
	stats := &msg.Message{Type: msg.TCtlStats, SrcTile: kernelTile, DstTile: echoTile, Seq: 3}
	_ = r.net.NI(kernelTile).Send(stats)
	if !r.e.RunUntil(func() bool { return reply != nil }, 5000) {
		t.Fatal("no stats reply")
	}
	if len(reply.Payload) != 1 || accel.State(reply.Payload[0]) != accel.Running {
		t.Fatalf("stats payload = %v", reply.Payload)
	}
}

func TestCtlMalformedPayloadsIgnored(t *testing.T) {
	r := newRig(t, true, RateLimit{})
	for _, typ := range []msg.Type{msg.TCtlInstallCap, msg.TCtlRevokeCap, msg.TCtlSetName} {
		m := &msg.Message{Type: typ, SrcTile: kernelTile, DstTile: driverTile, Payload: []byte{1}}
		_ = r.net.NI(kernelTile).Send(m)
	}
	r.e.Run(500) // must not panic or change state
	if r.dmon.State() != accel.Running {
		t.Fatal("malformed ctl changed tile state")
	}
}

func TestDetachShellMakesTileServiceless(t *testing.T) {
	r := newRig(t, true, RateLimit{})
	r.grantEcho()
	r.emon.DetachShell()
	r.driver.out = append(r.driver.out, request("x"))
	if !r.e.RunUntil(func() bool { return len(r.driver.in) > 0 }, 5000) {
		t.Fatal("no NACK from detached tile")
	}
	if r.driver.in[0].Err != msg.ENoService {
		t.Fatalf("detached tile NACK = %v", r.driver.in[0].Err)
	}
}

func TestSetRateResetsBucket(t *testing.T) {
	r := newRig(t, true, RateLimit{})
	r.grantEcho()
	r.dmon.SetRate(RateLimit{FlitsPerKCycle: 1, BurstFlits: 2})
	r.driver.out = append(r.driver.out, request(""), request(""))
	r.e.Run(100)
	limited := 0
	for _, c := range r.driver.code {
		if c == msg.ERateLimited {
			limited++
		}
	}
	if limited == 0 {
		t.Fatal("SetRate limit not applied")
	}
}

func TestIngressReplyToFailStoppedDropped(t *testing.T) {
	// Replies arriving at a fail-stopped tile are dropped silently (no
	// NACK storm), requests are NACKed.
	r := newRig(t, true, RateLimit{})
	r.grantEcho()
	r.dmon.ForceFault(0, accel.FaultExplicit)
	reply := &msg.Message{Type: msg.TReply, SrcTile: echoTile, DstTile: driverTile}
	_ = r.net.NI(echoTile).Send(reply)
	r.e.Run(500)
	if r.st.Counter("mon.nacked_in").Value() != 0 {
		t.Fatal("reply to fail-stopped tile was NACKed")
	}
}

func TestCapRefRewrittenToSegID(t *testing.T) {
	r := newRig(t, true, RateLimit{})
	var seen *msg.Message
	r.net.NI(kernelTile).SetDeliver(func(m *msg.Message, _ sim.Cycle) { seen = m })
	r.dmon.BindName(msg.SvcMemory, kernelTile)
	r.dmon.Table().Install(cap.Capability{
		Kind: cap.KindEndpoint, Rights: cap.RSend, Object: uint32(msg.SvcMemory),
	})
	segRef := r.dmon.Table().Install(cap.Capability{
		Kind: cap.KindSegment, Rights: cap.RRead, Object: 777,
	})
	read := &msg.Message{
		Type: msg.TMemRead, DstSvc: msg.SvcMemory, CapRef: uint32(segRef),
		Payload: msg.EncodeMemReq(msg.MemReq{Length: 4}),
	}
	r.driver.out = append(r.driver.out, read)
	if !r.e.RunUntil(func() bool { return seen != nil }, 5000) {
		t.Fatal("mem read never arrived")
	}
	if seen.CapRef != 777 {
		t.Fatalf("CapRef on the wire = %d, want segment ID 777", seen.CapRef)
	}
}
