package monitor

import (
	"fmt"
	"reflect"
	"testing"

	"apiary/internal/accel"
	"apiary/internal/cap"
	"apiary/internal/msg"
	"apiary/internal/noc"
	"apiary/internal/sim"
	"apiary/internal/trace"
)

// meshApp is a tile-local request/reply workload for the full-stack
// differential test: it periodically requests a service on another tile,
// echoes requests it receives, and keeps a purely tile-local event log. It
// deliberately touches nothing shared — no histograms, no engine RNG — so it
// is safe on the tile's shard (the point of the test is that the monitor,
// tracer and NoC around it behave identically in both modes).
type meshApp struct {
	accel.TileLocalMarker

	id     int
	target msg.ServiceID
	gap    sim.Cycle
	total  int

	sent    int
	nextAt  sim.Cycle
	replies int
	echoed  int
	log     []string
}

func (a *meshApp) Name() string  { return fmt.Sprintf("meshapp%d", a.id) }
func (a *meshApp) Contexts() int { return 1 }
func (a *meshApp) Reset()        {}

func (a *meshApp) Tick(p accel.Port) {
	now := p.Now()
	for i := 0; i < 4; i++ {
		m, ok := p.Recv()
		if !ok {
			break
		}
		switch m.Type {
		case msg.TRequest:
			a.echoed++
			p.Send(m.Reply(msg.TReply, m.Payload))
		case msg.TReply:
			a.replies++
			a.log = append(a.log, fmt.Sprintf("t%d reply seq=%d at=%d", a.id, m.Seq, now))
		}
	}
	if a.sent < a.total && now >= a.nextAt {
		code := p.Send(&msg.Message{
			Type: msg.TRequest, DstSvc: a.target, Seq: uint32(a.sent),
			Payload: []byte{byte(a.id), byte(a.sent)},
		})
		if code == msg.EOK {
			a.sent++
			a.nextAt = now + a.gap
		}
	}
}

// stackSnapshot is the full-stack determinism witness: monitor and NoC
// counters, the monitor latency histogram, the trace ring, and every tile's
// local application log.
type stackSnapshot struct {
	Counters map[string]uint64
	Hist     [4]float64
	Traced   uint64
	Events   []trace.Event
	AppLogs  []string
	Replies  []int
	Echoed   []int
}

// runStack assembles a 4x4 mesh with a monitor and a tile-local meshApp on
// every tile (tracer committing before the network, as core.System wires it)
// and runs the workload to completion.
func runStack(t *testing.T, shards int, mode sim.ParallelMode) stackSnapshot {
	t.Helper()
	const tiles = 16
	e := sim.NewEngine(11)
	defer e.Close()
	st := sim.NewStats()
	tracer := trace.New(1 << 16)
	e.RegisterCommitter(tracer)
	net := noc.NewNetwork(e, st, noc.Config{Dims: noc.Dims{W: 4, H: 4}, Shards: shards})
	tracer.SetShards(net.NumShards())
	checker := cap.NewChecker()

	svc := func(i int) msg.ServiceID { return msg.FirstUserService + msg.ServiceID(i) }
	apps := make([]*meshApp, tiles)
	mons := make([]*Monitor, tiles)
	for i := 0; i < tiles; i++ {
		apps[i] = &meshApp{
			id: i, target: svc((i + 5) % tiles),
			gap: sim.Cycle(3 + i%4), total: 30,
		}
		shell := accel.NewShell(apps[i], st)
		mons[i] = New(Config{Tile: msg.TileID(i), Kernel: 0, EnforceCaps: true},
			e, net.NI(msg.TileID(i)), shell, checker, tracer, st)
		e.Register(shell)
	}
	for i := 0; i < tiles; i++ {
		for j := 0; j < tiles; j++ {
			mons[i].BindName(svc(j), msg.TileID(j))
		}
		target := uint32(svc((i + 5) % tiles))
		mons[i].Table().Install(cap.Capability{
			Kind: cap.KindEndpoint, Rights: cap.RSend,
			Object: target, Gen: checker.Gen(cap.KindEndpoint, target),
		})
	}
	e.SetParallel(mode)
	if mode == sim.ParallelOn && shards > 1 && !e.ParallelActive() {
		t.Fatal("full stack did not engage the parallel scheduler")
	}

	done := func() bool {
		for _, a := range apps {
			if a.replies < a.total {
				return false
			}
		}
		return true
	}
	if !e.RunUntilEvery(done, 100000, 16) {
		for _, a := range apps {
			t.Logf("tile %d: sent=%d replies=%d echoed=%d", a.id, a.sent, a.replies, a.echoed)
		}
		t.Fatalf("workload did not complete (shards=%d mode=%v)", shards, mode)
	}

	snap := stackSnapshot{Counters: make(map[string]uint64)}
	for _, c := range st.Counters() {
		snap.Counters[c.Name] = c.Value()
	}
	h := st.Histogram("mon.noc_latency_cycles")
	snap.Hist = [4]float64{float64(h.Count()), h.Mean(), h.Min(), h.Max()}
	snap.Traced = tracer.Total()
	snap.Events = tracer.Events()
	for _, a := range apps {
		snap.AppLogs = append(snap.AppLogs, a.log...)
		snap.Replies = append(snap.Replies, a.replies)
		snap.Echoed = append(snap.Echoed, a.echoed)
	}
	return snap
}

// TestFullStackParallelDifferential proves bit-exactness end to end through
// the monitor layer: capability checks, source stamping, trace recording and
// delivery accounting are identical whether the tick phase ran serially or
// sharded, across shard counts.
func TestFullStackParallelDifferential(t *testing.T) {
	base := runStack(t, 1, sim.ParallelOff)
	if base.Counters["mon.forwarded"] == 0 || base.Traced == 0 {
		t.Fatal("baseline exercised nothing")
	}
	for _, shards := range []int{2, 4} {
		for _, mode := range []sim.ParallelMode{sim.ParallelOff, sim.ParallelOn} {
			shards, mode := shards, mode
			t.Run(fmt.Sprintf("shards=%d/mode=%v", shards, mode), func(t *testing.T) {
				got := runStack(t, shards, mode)
				if !reflect.DeepEqual(got.Counters, base.Counters) {
					for k, v := range base.Counters {
						if got.Counters[k] != v {
							t.Errorf("counter %s = %d, want %d", k, got.Counters[k], v)
						}
					}
				}
				if got.Hist != base.Hist {
					t.Errorf("latency histogram = %v, want %v", got.Hist, base.Hist)
				}
				if got.Traced != base.Traced {
					t.Errorf("traced events = %d, want %d", got.Traced, base.Traced)
				}
				if !reflect.DeepEqual(got.Events, base.Events) {
					t.Error("trace ring contents differ")
				}
				if !reflect.DeepEqual(got.AppLogs, base.AppLogs) {
					t.Error("application logs differ")
				}
				if !reflect.DeepEqual(got.Replies, base.Replies) ||
					!reflect.DeepEqual(got.Echoed, base.Echoed) {
					t.Errorf("per-tile reply/echo counts differ: %v/%v want %v/%v",
						got.Replies, got.Echoed, base.Replies, base.Echoed)
				}
			})
		}
	}
}
