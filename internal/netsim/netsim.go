// Package netsim simulates the datacenter network outside the FPGA: nodes
// joined by links with latency, bandwidth and (optionally) loss. It carries
// Ethernet-like frames between endpoints — direct-attached FPGA NICs,
// host-CPU NICs and synthetic clients all attach here.
//
// The model is a single switch domain: every node has one uplink; a frame
// traverses source uplink + destination downlink, paying serialization at
// the slower of the two plus a fixed switch latency. That is enough to make
// the direct-attached vs host-mediated comparison (E4/E5) about *path
// structure*, which is what the paper claims matters.
package netsim

import (
	"fmt"

	"apiary/internal/sim"
)

// NodeID identifies an attached node.
type NodeID uint32

// Frame is one unit on the wire.
type Frame struct {
	Src, Dst NodeID
	Payload  []byte
}

// Handler receives delivered frames at a node.
type Handler func(f Frame)

// LinkConfig describes one node's attachment.
type LinkConfig struct {
	Gbps      float64 // line rate; 0 means 10
	LatencyNs float64 // propagation+switch latency one way; 0 means 1000
	LossProb  float64 // iid frame loss probability
}

type node struct {
	cfg       LinkConfig
	handler   Handler
	busyUntil sim.Cycle // egress serialization horizon
}

// Fabric is the switch domain.
type Fabric struct {
	engine *sim.Engine
	nodes  map[NodeID]*node
	rng    *sim.RNG

	sent    *sim.Counter
	dropped *sim.Counter
	bytes   *sim.Counter
}

// New creates an empty fabric.
func New(e *sim.Engine, st *sim.Stats) *Fabric {
	return &Fabric{
		engine:  e,
		nodes:   make(map[NodeID]*node),
		rng:     sim.NewRNG(0xfab),
		sent:    st.Counter("netsim.frames_sent"),
		dropped: st.Counter("netsim.frames_dropped"),
		bytes:   st.Counter("netsim.bytes"),
	}
}

// Attach registers a node. Attaching an existing ID replaces its handler
// and link config.
func (f *Fabric) Attach(id NodeID, cfg LinkConfig, h Handler) {
	if cfg.Gbps == 0 {
		cfg.Gbps = 10
	}
	if cfg.LatencyNs == 0 {
		cfg.LatencyNs = 1000
	}
	f.nodes[id] = &node{cfg: cfg, handler: h}
}

// serializationCycles converts frame bytes at the given line rate to engine
// cycles.
func (f *Fabric) serializationCycles(bytes int, gbps float64) sim.Cycle {
	ns := float64(bytes*8) / gbps
	return f.engine.CyclesForNanos(ns)
}

// Send transmits a frame. Returns an error for unknown endpoints; loss is
// silent (that is what loss means).
func (f *Fabric) Send(fr Frame) error {
	src, ok := f.nodes[fr.Src]
	if !ok {
		return fmt.Errorf("netsim: unknown src node %d", fr.Src)
	}
	dst, ok := f.nodes[fr.Dst]
	if !ok {
		return fmt.Errorf("netsim: unknown dst node %d", fr.Dst)
	}
	f.sent.Inc()
	f.bytes.Add(uint64(len(fr.Payload)))

	if dst.cfg.LossProb > 0 && f.rng.Bool(dst.cfg.LossProb) {
		f.dropped.Inc()
		return nil
	}

	// Serialization at the slower of the two links, occupying the source
	// egress; then propagation.
	gbps := src.cfg.Gbps
	if dst.cfg.Gbps < gbps {
		gbps = dst.cfg.Gbps
	}
	now := f.engine.Now()
	start := src.busyUntil
	if start < now {
		start = now
	}
	ser := f.serializationCycles(len(fr.Payload), gbps)
	src.busyUntil = start + ser
	prop := f.engine.CyclesForNanos(src.cfg.LatencyNs + dst.cfg.LatencyNs)
	at := src.busyUntil + prop
	if at <= now {
		at = now + 1
	}
	cp := fr
	cp.Payload = append([]byte(nil), fr.Payload...)
	f.engine.Schedule(at, func(sim.Cycle) {
		if dst.handler != nil {
			dst.handler(cp)
		}
	})
	return nil
}
