// Package netsim simulates the datacenter network outside the FPGA: nodes
// joined by links with latency, bandwidth and (optionally) loss. It carries
// Ethernet-like frames between endpoints — direct-attached FPGA NICs,
// host-CPU NICs and synthetic clients all attach here.
//
// The model is a single switch domain: every node has one uplink; a frame
// traverses source uplink + destination downlink, paying serialization at
// the slower of the two plus a fixed switch latency. That is enough to make
// the direct-attached vs host-mediated comparison (E4/E5) about *path
// structure*, which is what the paper claims matters.
//
// A fabric can also be one switch of a larger cluster: frames addressed to
// nodes that are not attached locally are handed to a Gateway (the fleet
// interconnect in internal/cluster) after paying source-side serialization,
// and inbound cross-fabric frames are applied with InjectAt. The gateway
// path is what makes conservative-lookahead board parallelism possible —
// cross-fabric propagation latency is the synchronization horizon.
package netsim

import (
	"fmt"

	"apiary/internal/msg"
	"apiary/internal/sim"
)

// NodeID identifies an attached node.
type NodeID uint32

// Frame is one unit on the wire.
type Frame struct {
	Src, Dst NodeID
	Payload  []byte
	// Trace is sideband observability context (see msg.TraceCtx): it rides
	// with the frame but is not part of the simulated wire bytes, so frame
	// sizes, serialization delay and drop decisions are identical with
	// tracing on or off.
	Trace msg.TraceCtx
}

// Handler receives delivered frames at a node. The payload buffer is owned
// by the fabric and is recycled after the handler returns: a handler that
// needs the bytes beyond the call must copy them. (Every transport in the
// repo either parses the frame immediately or copies it into its own
// buffer.)
type Handler func(f Frame)

// LinkConfig describes one node's attachment.
type LinkConfig struct {
	Gbps      float64 // line rate; 0 means 10
	LatencyNs float64 // propagation+switch latency one way; 0 means 1000
	LossProb  float64 // iid frame loss probability
}

// DefaultLossSeed is the historical seed of the fabric's loss RNG. Config
// keeps it as the zero-value default so every pre-Config experiment
// reproduces its exact drop sequence.
const DefaultLossSeed = 0xfab

// Config parameterizes a fabric. The zero value reproduces the historical
// behaviour exactly.
type Config struct {
	// LossSeed seeds the deterministic loss RNG. 0 means DefaultLossSeed.
	// Multi-fabric experiments (a fleet of boards, each with its own
	// private fabric) should derive distinct seeds so frame drops do not
	// correlate across fabrics.
	LossSeed uint64
}

// Gateway routes frames addressed to nodes that are not attached to this
// fabric — the hook a cluster interconnect implements. RemoteLink reports
// the destination's link config (so rate selection matches the local
// slower-of-the-two rule); Forward takes ownership of the frame (its
// payload is a fabric-pooled buffer) once the source uplink has finished
// serializing it at cycle depart. Propagation beyond the source uplink is
// the gateway's business.
type Gateway interface {
	RemoteLink(dst NodeID) (LinkConfig, bool)
	Forward(fr Frame, depart sim.Cycle)
}

type node struct {
	cfg       LinkConfig
	handler   Handler
	busyUntil sim.Cycle // egress serialization horizon
}

// delivery is a pooled in-flight frame: the closure is bound once when the
// struct is first created, so a steady-state send-deliver cycle touches the
// heap zero times (TestSendSteadyStateAllocs).
type delivery struct {
	f  *Fabric
	n  *node
	fr Frame
	fn func(sim.Cycle)
}

func (d *delivery) fire(sim.Cycle) {
	f, n, fr := d.f, d.n, d.fr
	d.n, d.fr = nil, Frame{}
	f.deliveries = append(f.deliveries, d) // handler may Send and reuse d
	if n.handler != nil {
		n.handler(fr)
	}
	f.putBuf(fr.Payload)
}

// Fabric is the switch domain.
type Fabric struct {
	engine *sim.Engine
	nodes  map[NodeID]*node
	rng    *sim.RNG
	gw     Gateway

	sent    *sim.Counter
	dropped *sim.Counter
	bytes   *sim.Counter
	gwOut   *sim.Counter
	gwIn    *sim.Counter

	deliveries []*delivery // free list
	bufs       [][]byte    // payload free list
}

// New creates an empty fabric with the default config.
func New(e *sim.Engine, st *sim.Stats) *Fabric {
	return NewWithConfig(e, st, Config{})
}

// NewWithConfig creates an empty fabric.
func NewWithConfig(e *sim.Engine, st *sim.Stats, cfg Config) *Fabric {
	seed := cfg.LossSeed
	if seed == 0 {
		seed = DefaultLossSeed
	}
	return &Fabric{
		engine:  e,
		nodes:   make(map[NodeID]*node),
		rng:     sim.NewRNG(seed),
		sent:    st.Counter("netsim.frames_sent"),
		dropped: st.Counter("netsim.frames_dropped"),
		bytes:   st.Counter("netsim.bytes"),
		gwOut:   st.Counter("netsim.gw_out"),
		gwIn:    st.Counter("netsim.gw_in"),
	}
}

// Attach registers a node. Attaching an existing ID replaces its handler
// and link config.
func (f *Fabric) Attach(id NodeID, cfg LinkConfig, h Handler) {
	if cfg.Gbps == 0 {
		cfg.Gbps = 10
	}
	if cfg.LatencyNs == 0 {
		cfg.LatencyNs = 1000
	}
	f.nodes[id] = &node{cfg: cfg, handler: h}
}

// Attached reports whether id is a local node.
func (f *Fabric) Attached(id NodeID) bool {
	_, ok := f.nodes[id]
	return ok
}

// SetGateway installs the cross-fabric route for unknown destinations.
func (f *Fabric) SetGateway(gw Gateway) { f.gw = gw }

// serializationCycles converts frame bytes at the given line rate to engine
// cycles.
func (f *Fabric) serializationCycles(bytes int, gbps float64) sim.Cycle {
	ns := float64(bytes*8) / gbps
	return f.engine.CyclesForNanos(ns)
}

// getBuf returns a pooled buffer of length n (copying into it is the
// caller's business). Buffers come back via putBuf after delivery.
func (f *Fabric) getBuf(n int) []byte {
	if k := len(f.bufs); k > 0 {
		b := f.bufs[k-1]
		f.bufs[k-1] = nil
		f.bufs = f.bufs[:k-1]
		if cap(b) >= n {
			return b[:n]
		}
	}
	return make([]byte, n)
}

func (f *Fabric) putBuf(b []byte) {
	if cap(b) == 0 {
		return
	}
	f.bufs = append(f.bufs, b[:0])
}

// getDelivery returns a pooled delivery with its closure pre-bound.
func (f *Fabric) getDelivery() *delivery {
	if k := len(f.deliveries); k > 0 {
		d := f.deliveries[k-1]
		f.deliveries[k-1] = nil
		f.deliveries = f.deliveries[:k-1]
		return d
	}
	d := &delivery{f: f}
	d.fn = d.fire
	return d
}

// Send transmits a frame. The payload is copied, so the caller may reuse
// its buffer immediately. Returns an error for unknown endpoints (unknown
// destinations are routed through the gateway when one is installed); loss
// is silent (that is what loss means).
func (f *Fabric) Send(fr Frame) error {
	src, ok := f.nodes[fr.Src]
	if !ok {
		return fmt.Errorf("netsim: unknown src node %d", fr.Src)
	}
	dst, local := f.nodes[fr.Dst]
	var dstCfg LinkConfig
	if local {
		dstCfg = dst.cfg
	} else {
		if f.gw == nil {
			return fmt.Errorf("netsim: unknown dst node %d", fr.Dst)
		}
		remote, ok := f.gw.RemoteLink(fr.Dst)
		if !ok {
			return fmt.Errorf("netsim: unknown dst node %d", fr.Dst)
		}
		dstCfg = remote
	}
	f.sent.Inc()
	f.bytes.Add(uint64(len(fr.Payload)))

	// Local destination loss is drawn here; cross-fabric loss belongs to
	// the interconnect (which draws it in deterministic exchange order).
	if local && dstCfg.LossProb > 0 && f.rng.Bool(dstCfg.LossProb) {
		f.dropped.Inc()
		return nil
	}

	// Serialization at the slower of the two links, occupying the source
	// egress; then propagation.
	gbps := src.cfg.Gbps
	if dstCfg.Gbps < gbps {
		gbps = dstCfg.Gbps
	}
	now := f.engine.Now()
	start := src.busyUntil
	if start < now {
		start = now
	}
	ser := f.serializationCycles(len(fr.Payload), gbps)
	src.busyUntil = start + ser

	cp := fr
	cp.Payload = f.getBuf(len(fr.Payload))
	copy(cp.Payload, fr.Payload)

	if !local {
		f.gwOut.Inc()
		f.gw.Forward(cp, src.busyUntil)
		return nil
	}

	prop := f.engine.CyclesForNanos(src.cfg.LatencyNs + dstCfg.LatencyNs)
	at := src.busyUntil + prop
	if at <= now {
		at = now + 1
	}
	f.scheduleDelivery(dst, cp, at)
	return nil
}

// InjectAt delivers a frame arriving from another fabric to its locally
// attached destination at cycle at, taking ownership of the payload (it is
// recycled into this fabric's pool after the handler runs). The cluster
// interconnect applies cross-board frames with it at epoch boundaries; an
// arrival cycle not in the future is clamped to the next cycle.
func (f *Fabric) InjectAt(fr Frame, at sim.Cycle) error {
	dst, ok := f.nodes[fr.Dst]
	if !ok {
		return fmt.Errorf("netsim: inject to unknown node %d", fr.Dst)
	}
	f.gwIn.Inc()
	if now := f.engine.Now(); at <= now {
		at = now + 1
	}
	f.scheduleDelivery(dst, fr, at)
	return nil
}

func (f *Fabric) scheduleDelivery(dst *node, fr Frame, at sim.Cycle) {
	d := f.getDelivery()
	d.n = dst
	d.fr = fr
	f.engine.ScheduleNoHandle(at, d.fn)
}
