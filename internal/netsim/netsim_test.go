package netsim

import (
	"testing"

	"apiary/internal/sim"
)

func setup() (*sim.Engine, *Fabric) {
	e := sim.NewEngine(1)
	return e, New(e, sim.NewStats())
}

func TestDelivery(t *testing.T) {
	e, f := setup()
	var got []Frame
	f.Attach(1, LinkConfig{}, nil)
	f.Attach(2, LinkConfig{}, func(fr Frame) { got = append(got, fr) })
	if err := f.Send(Frame{Src: 1, Dst: 2, Payload: []byte("hello")}); err != nil {
		t.Fatal(err)
	}
	if !e.RunUntil(func() bool { return len(got) == 1 }, 100000) {
		t.Fatal("frame not delivered")
	}
	if string(got[0].Payload) != "hello" {
		t.Fatalf("payload = %q", got[0].Payload)
	}
}

func TestUnknownNodes(t *testing.T) {
	_, f := setup()
	f.Attach(1, LinkConfig{}, nil)
	if err := f.Send(Frame{Src: 1, Dst: 9}); err == nil {
		t.Fatal("send to unknown dst accepted")
	}
	if err := f.Send(Frame{Src: 9, Dst: 1}); err == nil {
		t.Fatal("send from unknown src accepted")
	}
}

func TestLatencyModel(t *testing.T) {
	e, f := setup()
	var at sim.Cycle
	// 250 MHz engine: 1 cycle = 4 ns. 2000 ns total propagation = 500 cy.
	f.Attach(1, LinkConfig{Gbps: 100, LatencyNs: 1000}, nil)
	f.Attach(2, LinkConfig{Gbps: 100, LatencyNs: 1000}, func(Frame) { at = e.Now() })
	_ = f.Send(Frame{Src: 1, Dst: 2, Payload: make([]byte, 125)}) // 10 ns ser
	e.Run(10000)
	if at == 0 {
		t.Fatal("not delivered")
	}
	if at < 500 || at > 520 {
		t.Fatalf("delivery at cycle %d, want ~503", at)
	}
}

func TestBandwidthSerializes(t *testing.T) {
	e, f := setup()
	var times []sim.Cycle
	f.Attach(1, LinkConfig{Gbps: 10, LatencyNs: 100}, nil)
	f.Attach(2, LinkConfig{Gbps: 10, LatencyNs: 100}, func(Frame) { times = append(times, e.Now()) })
	// Two 12500-byte frames at 10 Gbps: 10 us serialization each = 2500 cy.
	_ = f.Send(Frame{Src: 1, Dst: 2, Payload: make([]byte, 12500)})
	_ = f.Send(Frame{Src: 1, Dst: 2, Payload: make([]byte, 12500)})
	e.Run(100000)
	if len(times) != 2 {
		t.Fatalf("delivered %d", len(times))
	}
	gap := times[1] - times[0]
	if gap < 2400 || gap > 2600 {
		t.Fatalf("serialization gap = %d cycles, want ~2500", gap)
	}
}

func TestSlowerLinkGoverns(t *testing.T) {
	e, f := setup()
	var at sim.Cycle
	f.Attach(1, LinkConfig{Gbps: 100, LatencyNs: 100}, nil)
	f.Attach(2, LinkConfig{Gbps: 1, LatencyNs: 100}, func(Frame) { at = e.Now() })
	_ = f.Send(Frame{Src: 1, Dst: 2, Payload: make([]byte, 1250)}) // 10us at 1G = 2500cy
	e.Run(100000)
	if at < 2500 {
		t.Fatalf("delivery at %d ignored the slow receiver", at)
	}
}

func TestLoss(t *testing.T) {
	e, f := setup()
	got := 0
	f.Attach(1, LinkConfig{}, nil)
	f.Attach(2, LinkConfig{LossProb: 0.5}, func(Frame) { got++ })
	for i := 0; i < 200; i++ {
		_ = f.Send(Frame{Src: 1, Dst: 2, Payload: []byte{1}})
		e.Run(50)
	}
	e.Run(100000)
	if got < 50 || got > 150 {
		t.Fatalf("with 50%% loss delivered %d/200", got)
	}
}

func TestPayloadCopied(t *testing.T) {
	e, f := setup()
	var got Frame
	f.Attach(1, LinkConfig{}, nil)
	f.Attach(2, LinkConfig{}, func(fr Frame) { got = fr })
	buf := []byte{42}
	_ = f.Send(Frame{Src: 1, Dst: 2, Payload: buf})
	buf[0] = 0
	e.Run(100000)
	if got.Payload == nil || got.Payload[0] != 42 {
		t.Fatal("payload aliased sender buffer")
	}
}
