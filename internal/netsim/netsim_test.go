package netsim

import (
	"testing"

	"apiary/internal/sim"
)

func setup() (*sim.Engine, *Fabric) {
	e := sim.NewEngine(1)
	return e, New(e, sim.NewStats())
}

func TestDelivery(t *testing.T) {
	e, f := setup()
	var got []Frame
	f.Attach(1, LinkConfig{}, nil)
	f.Attach(2, LinkConfig{}, func(fr Frame) { got = append(got, fr) })
	if err := f.Send(Frame{Src: 1, Dst: 2, Payload: []byte("hello")}); err != nil {
		t.Fatal(err)
	}
	if !e.RunUntil(func() bool { return len(got) == 1 }, 100000) {
		t.Fatal("frame not delivered")
	}
	if string(got[0].Payload) != "hello" {
		t.Fatalf("payload = %q", got[0].Payload)
	}
}

func TestUnknownNodes(t *testing.T) {
	_, f := setup()
	f.Attach(1, LinkConfig{}, nil)
	if err := f.Send(Frame{Src: 1, Dst: 9}); err == nil {
		t.Fatal("send to unknown dst accepted")
	}
	if err := f.Send(Frame{Src: 9, Dst: 1}); err == nil {
		t.Fatal("send from unknown src accepted")
	}
}

func TestLatencyModel(t *testing.T) {
	e, f := setup()
	var at sim.Cycle
	// 250 MHz engine: 1 cycle = 4 ns. 2000 ns total propagation = 500 cy.
	f.Attach(1, LinkConfig{Gbps: 100, LatencyNs: 1000}, nil)
	f.Attach(2, LinkConfig{Gbps: 100, LatencyNs: 1000}, func(Frame) { at = e.Now() })
	_ = f.Send(Frame{Src: 1, Dst: 2, Payload: make([]byte, 125)}) // 10 ns ser
	e.Run(10000)
	if at == 0 {
		t.Fatal("not delivered")
	}
	if at < 500 || at > 520 {
		t.Fatalf("delivery at cycle %d, want ~503", at)
	}
}

func TestBandwidthSerializes(t *testing.T) {
	e, f := setup()
	var times []sim.Cycle
	f.Attach(1, LinkConfig{Gbps: 10, LatencyNs: 100}, nil)
	f.Attach(2, LinkConfig{Gbps: 10, LatencyNs: 100}, func(Frame) { times = append(times, e.Now()) })
	// Two 12500-byte frames at 10 Gbps: 10 us serialization each = 2500 cy.
	_ = f.Send(Frame{Src: 1, Dst: 2, Payload: make([]byte, 12500)})
	_ = f.Send(Frame{Src: 1, Dst: 2, Payload: make([]byte, 12500)})
	e.Run(100000)
	if len(times) != 2 {
		t.Fatalf("delivered %d", len(times))
	}
	gap := times[1] - times[0]
	if gap < 2400 || gap > 2600 {
		t.Fatalf("serialization gap = %d cycles, want ~2500", gap)
	}
}

func TestSlowerLinkGoverns(t *testing.T) {
	e, f := setup()
	var at sim.Cycle
	f.Attach(1, LinkConfig{Gbps: 100, LatencyNs: 100}, nil)
	f.Attach(2, LinkConfig{Gbps: 1, LatencyNs: 100}, func(Frame) { at = e.Now() })
	_ = f.Send(Frame{Src: 1, Dst: 2, Payload: make([]byte, 1250)}) // 10us at 1G = 2500cy
	e.Run(100000)
	if at < 2500 {
		t.Fatalf("delivery at %d ignored the slow receiver", at)
	}
}

func TestLoss(t *testing.T) {
	e, f := setup()
	got := 0
	f.Attach(1, LinkConfig{}, nil)
	f.Attach(2, LinkConfig{LossProb: 0.5}, func(Frame) { got++ })
	for i := 0; i < 200; i++ {
		_ = f.Send(Frame{Src: 1, Dst: 2, Payload: []byte{1}})
		e.Run(50)
	}
	e.Run(100000)
	if got < 50 || got > 150 {
		t.Fatalf("with 50%% loss delivered %d/200", got)
	}
}

func TestPayloadCopied(t *testing.T) {
	e, f := setup()
	var got Frame
	f.Attach(1, LinkConfig{}, nil)
	f.Attach(2, LinkConfig{}, func(fr Frame) { got = fr })
	buf := []byte{42}
	_ = f.Send(Frame{Src: 1, Dst: 2, Payload: buf})
	buf[0] = 0
	e.Run(100000)
	if got.Payload == nil || got.Payload[0] != 42 {
		t.Fatal("payload aliased sender buffer")
	}
}

func TestZeroLengthPayload(t *testing.T) {
	e, f := setup()
	delivered := -1
	f.Attach(1, LinkConfig{Gbps: 100, LatencyNs: 1000}, nil)
	f.Attach(2, LinkConfig{Gbps: 100, LatencyNs: 1000}, func(fr Frame) {
		delivered = len(fr.Payload)
	})
	if err := f.Send(Frame{Src: 1, Dst: 2}); err != nil {
		t.Fatal(err)
	}
	e.Run(10000)
	if delivered != 0 {
		t.Fatalf("zero-length frame delivered = %d, want empty payload", delivered)
	}
}

func TestSlowerSourceGoverns(t *testing.T) {
	// The min-rate rule is symmetric: a slow *sender* serializes just as
	// slowly as a slow receiver (TestSlowerLinkGoverns covers that side).
	e, f := setup()
	var at sim.Cycle
	f.Attach(1, LinkConfig{Gbps: 1, LatencyNs: 100}, nil)
	f.Attach(2, LinkConfig{Gbps: 100, LatencyNs: 100}, func(Frame) { at = e.Now() })
	_ = f.Send(Frame{Src: 1, Dst: 2, Payload: make([]byte, 1250)}) // 10us at 1G = 2500cy
	e.Run(100000)
	if at < 2500 {
		t.Fatalf("delivery at %d ignored the slow sender", at)
	}
}

func TestEgressBacklog(t *testing.T) {
	// A burst occupies the source uplink back-to-back: frame k's arrival is
	// (k+1)*ser + prop, driven by the busyUntil egress horizon.
	e, f := setup()
	var times []sim.Cycle
	f.Attach(1, LinkConfig{Gbps: 10, LatencyNs: 100}, nil)
	f.Attach(2, LinkConfig{Gbps: 10, LatencyNs: 100}, func(Frame) { times = append(times, e.Now()) })
	for i := 0; i < 4; i++ {
		// 1250 B at 10 Gbps = 1000 ns = 250 cycles; 200 ns prop = 50 cycles.
		_ = f.Send(Frame{Src: 1, Dst: 2, Payload: make([]byte, 1250)})
	}
	e.Run(10000)
	want := []sim.Cycle{300, 550, 800, 1050}
	if len(times) != len(want) {
		t.Fatalf("delivered %d frames, want %d", len(times), len(want))
	}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("frame %d delivered at %d, want %d (times %v)", i, times[i], want[i], times)
		}
	}
}

func TestLossCounters(t *testing.T) {
	e := sim.NewEngine(1)
	st := sim.NewStats()
	f := New(e, st)
	got := 0
	f.Attach(1, LinkConfig{}, nil)
	f.Attach(2, LinkConfig{LossProb: 1.0}, func(Frame) { got++ })
	for i := 0; i < 5; i++ {
		_ = f.Send(Frame{Src: 1, Dst: 2, Payload: []byte{1, 2, 3}})
	}
	e.Run(100000)
	if got != 0 {
		t.Fatalf("LossProb=1 delivered %d frames", got)
	}
	if n := st.Counter("netsim.frames_sent").Value(); n != 5 {
		t.Fatalf("frames_sent = %d, want 5", n)
	}
	if n := st.Counter("netsim.frames_dropped").Value(); n != 5 {
		t.Fatalf("frames_dropped = %d, want 5", n)
	}
	if n := st.Counter("netsim.bytes").Value(); n != 15 {
		t.Fatalf("bytes = %d, want 15 (loss counts after accounting)", n)
	}
}

func TestDeliveryWakesIdleSkip(t *testing.T) {
	// An otherwise-idle engine must fast-forward across the propagation gap
	// and still fire the delivery at its exact cycle: netsim events bound
	// idle-skip, they are not skipped by it.
	e, f := setup()
	ticks := 0
	e.Register(idleTicker{ticks: &ticks})
	var at sim.Cycle
	f.Attach(1, LinkConfig{Gbps: 100, LatencyNs: 1000}, nil)
	f.Attach(2, LinkConfig{Gbps: 100, LatencyNs: 1000}, func(Frame) { at = e.Now() })
	_ = f.Send(Frame{Src: 1, Dst: 2}) // zero-length: no serialization, 500cy prop
	e.Run(10000)
	if at != 500 {
		t.Fatalf("delivery at %d, want exactly 500", at)
	}
	if ticks >= 10000 {
		t.Fatalf("engine ticked %d times: idle-skip never engaged", ticks)
	}
}

type idleTicker struct{ ticks *int }

func (it idleTicker) Idle() bool         { return true }
func (it idleTicker) Tick(now sim.Cycle) { *it.ticks++ }

func dropPattern(t *testing.T, cfg Config) string {
	t.Helper()
	e := sim.NewEngine(1)
	f := NewWithConfig(e, sim.NewStats(), cfg)
	delivered := map[byte]bool{}
	f.Attach(1, LinkConfig{LatencyNs: 4}, nil)
	f.Attach(2, LinkConfig{LatencyNs: 4, LossProb: 0.5}, func(fr Frame) {
		delivered[fr.Payload[0]] = true
	})
	for i := 0; i < 64; i++ {
		if err := f.Send(Frame{Src: 1, Dst: 2, Payload: []byte{byte(i)}}); err != nil {
			t.Fatal(err)
		}
		e.Run(100)
	}
	e.Run(10000)
	pat := make([]byte, 64)
	for i := range pat {
		pat[i] = '0'
		if delivered[byte(i)] {
			pat[i] = '1'
		}
	}
	return string(pat)
}

func TestLossSeedConfig(t *testing.T) {
	legacy := dropPattern(t, Config{})
	if got := dropPattern(t, Config{LossSeed: DefaultLossSeed}); got != legacy {
		t.Fatalf("explicit default seed diverged from zero config:\n%s\n%s", got, legacy)
	}
	if got := dropPattern(t, Config{LossSeed: 12345}); got == legacy {
		t.Fatalf("distinct loss seeds produced identical drop patterns: %s", got)
	}
	if got := dropPattern(t, Config{LossSeed: 12345}); got != dropPattern(t, Config{LossSeed: 12345}) {
		t.Fatalf("same seed not reproducible")
	}
}

type fakeGateway struct {
	links  map[NodeID]LinkConfig
	frames []Frame
	depart []sim.Cycle
}

func (g *fakeGateway) RemoteLink(dst NodeID) (LinkConfig, bool) {
	cfg, ok := g.links[dst]
	return cfg, ok
}

func (g *fakeGateway) Forward(fr Frame, depart sim.Cycle) {
	g.frames = append(g.frames, fr)
	g.depart = append(g.depart, depart)
}

func TestGatewayRouting(t *testing.T) {
	e := sim.NewEngine(1)
	st := sim.NewStats()
	f := New(e, st)
	f.Attach(1, LinkConfig{Gbps: 10, LatencyNs: 100}, nil)
	gw := &fakeGateway{links: map[NodeID]LinkConfig{99: {Gbps: 1, LatencyNs: 100}}}

	// Without a gateway, unknown destinations are still errors.
	if err := f.Send(Frame{Src: 1, Dst: 99, Payload: []byte{1}}); err == nil {
		t.Fatal("unknown dst accepted without a gateway")
	}
	f.SetGateway(gw)
	// A destination the gateway does not know either.
	if err := f.Send(Frame{Src: 1, Dst: 98, Payload: []byte{1}}); err == nil {
		t.Fatal("dst unknown to the gateway accepted")
	}

	buf := make([]byte, 1250)
	buf[0] = 7
	if err := f.Send(Frame{Src: 1, Dst: 99, Payload: buf}); err != nil {
		t.Fatal(err)
	}
	if len(gw.frames) != 1 {
		t.Fatalf("gateway saw %d frames", len(gw.frames))
	}
	// Serialization ran at the *remote* 1 Gbps rate: 10 us = 2500 cycles.
	if gw.depart[0] != 2500 {
		t.Fatalf("depart = %d, want 2500 (remote-rate serialization)", gw.depart[0])
	}
	buf[0] = 0
	if gw.frames[0].Payload[0] != 7 {
		t.Fatal("forwarded payload aliases the caller's buffer")
	}
	if n := st.Counter("netsim.gw_out").Value(); n != 1 {
		t.Fatalf("gw_out = %d, want 1", n)
	}
	if !f.Attached(1) || f.Attached(99) {
		t.Fatal("Attached misreports membership")
	}
}

func TestInjectAt(t *testing.T) {
	e := sim.NewEngine(1)
	st := sim.NewStats()
	f := New(e, st)
	var times []sim.Cycle
	f.Attach(2, LinkConfig{}, func(Frame) { times = append(times, e.Now()) })

	if err := f.InjectAt(Frame{Src: 50, Dst: 7, Payload: []byte{1}}, 10); err == nil {
		t.Fatal("inject to unknown node accepted")
	}
	if err := f.InjectAt(Frame{Src: 50, Dst: 2, Payload: []byte{1}}, 700); err != nil {
		t.Fatal(err)
	}
	e.Run(1000) // now = 1000
	if len(times) != 1 || times[0] != 700 {
		t.Fatalf("times = %v, want [700]", times)
	}
	// A stale arrival cycle clamps to the next cycle rather than violating
	// the engine's no-past-events rule.
	if err := f.InjectAt(Frame{Src: 50, Dst: 2, Payload: []byte{2}}, 5); err != nil {
		t.Fatal(err)
	}
	e.Run(1000)
	if len(times) != 2 || times[1] != 1001 {
		t.Fatalf("times = %v, want second delivery at 1001", times)
	}
	if n := st.Counter("netsim.gw_in").Value(); n != 2 {
		t.Fatalf("gw_in = %d, want 2", n)
	}
}

func TestSendSteadyStateAllocs(t *testing.T) {
	e, f := setup()
	f.Attach(1, LinkConfig{Gbps: 100, LatencyNs: 40}, nil)
	f.Attach(2, LinkConfig{Gbps: 100, LatencyNs: 40}, func(Frame) {})
	payload := make([]byte, 256)
	send := func() {
		_ = f.Send(Frame{Src: 1, Dst: 2, Payload: payload})
		e.Run(200)
	}
	for i := 0; i < 64; i++ {
		send() // warm the delivery, buffer and engine event pools
	}
	if n := testing.AllocsPerRun(100, send); n > 0 {
		t.Fatalf("steady-state send allocates %.1f objects per frame, want 0", n)
	}
}
