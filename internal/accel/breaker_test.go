package accel

import (
	"testing"

	"apiary/internal/msg"
	"apiary/internal/sim"
)

func TestBreakerDisabled(t *testing.T) {
	var b Breaker // Threshold 0
	for i := 0; i < 100; i++ {
		if !b.Allow(0) {
			t.Fatal("disabled breaker refused a request")
		}
		if b.OnBusy(0) {
			t.Fatal("disabled breaker tripped")
		}
	}
	if b.Opens() != 0 {
		t.Fatalf("Opens = %d", b.Opens())
	}
}

func TestBreakerOpensAfterThreshold(t *testing.T) {
	b := Breaker{Threshold: 3, Cooldown: Backoff{Base: 100, Max: 400}}
	if b.OnBusy(10) || b.OnBusy(11) {
		t.Fatal("tripped before threshold")
	}
	if !b.OnBusy(12) {
		t.Fatal("did not trip at threshold")
	}
	if b.State(12) != BreakerOpen {
		t.Fatalf("state = %v", b.State(12))
	}
	if b.Allow(50) {
		t.Fatal("open breaker allowed a request before cooldown")
	}
	if b.Opens() != 1 {
		t.Fatalf("Opens = %d", b.Opens())
	}
}

func TestBreakerSuccessResetsStreak(t *testing.T) {
	b := Breaker{Threshold: 3, Cooldown: Backoff{Base: 100}}
	b.OnBusy(1)
	b.OnBusy(2)
	b.OnSuccess()
	if b.OnBusy(3) || b.OnBusy(4) {
		t.Fatal("streak survived a success")
	}
	if !b.OnBusy(5) {
		t.Fatal("did not trip after fresh streak")
	}
}

func TestBreakerHalfOpenProbe(t *testing.T) {
	b := Breaker{Threshold: 1, Cooldown: Backoff{Base: 100, Max: 800}}
	b.OnBusy(0) // opens until 100
	if b.Allow(99) {
		t.Fatal("allowed during cooldown")
	}
	if !b.Allow(100) {
		t.Fatal("half-open did not admit the probe")
	}
	if b.State(100) != BreakerHalfOpen {
		t.Fatalf("state = %v", b.State(100))
	}
	if b.Allow(101) {
		t.Fatal("second request admitted while probe outstanding")
	}
	// Probe succeeds: breaker closes and the cooldown schedule resets.
	if !b.OnSuccess() {
		t.Fatal("OnSuccess did not report a close")
	}
	if b.State(101) != BreakerClosed || b.Closes() != 1 {
		t.Fatalf("state = %v closes = %d", b.State(101), b.Closes())
	}
	if !b.Allow(102) {
		t.Fatal("closed breaker refused a request")
	}
}

func TestBreakerFailedProbeDoublesCooldown(t *testing.T) {
	b := Breaker{Threshold: 1, Cooldown: Backoff{Base: 100, Max: 800}}
	b.OnBusy(0) // open, cooldown 100 -> reopen at 100
	if !b.Allow(100) {
		t.Fatal("no probe slot")
	}
	if !b.OnBusy(110) { // probe bounced: reopen with doubled cooldown (200)
		t.Fatal("failed probe did not re-open")
	}
	if b.Allow(300) { // 110+200=310
		t.Fatal("allowed before doubled cooldown expired")
	}
	if !b.Allow(310) {
		t.Fatal("no probe after doubled cooldown")
	}
	if b.Opens() != 2 {
		t.Fatalf("Opens = %d", b.Opens())
	}
}

func TestBreakerIgnoresStaleBusyWhileWaiting(t *testing.T) {
	b := Breaker{Threshold: 1, Cooldown: Backoff{Base: 100}}
	b.OnBusy(0)
	// A NACK for an older request arrives while open: must not extend the
	// cooldown or count as a probe verdict.
	if b.OnBusy(50) {
		t.Fatal("stale busy re-opened an already-open breaker")
	}
	if !b.Allow(100) {
		t.Fatal("cooldown was extended by a stale busy")
	}
	// Half-open, probe not yet claimed: stale busy is not the probe verdict.
	b2 := Breaker{Threshold: 1, Cooldown: Backoff{Base: 100}}
	b2.OnBusy(0)
	b2.State(100) // advance to half-open
	if b2.OnBusy(100) {
		t.Fatal("stale busy consumed the probe verdict")
	}
	if !b2.Allow(101) {
		t.Fatal("probe slot lost to a stale busy")
	}
}

func TestBreakerReset(t *testing.T) {
	b := Breaker{Threshold: 1, Cooldown: Backoff{Base: 100}}
	b.OnBusy(0)
	b.Reset()
	if b.State(1) != BreakerClosed || !b.Allow(1) {
		t.Fatal("Reset did not close the breaker")
	}
}

func TestBreakerStateString(t *testing.T) {
	if BreakerClosed.String() != "closed" || BreakerOpen.String() != "open" ||
		BreakerHalfOpen.String() != "half-open" {
		t.Fatal("breaker state strings")
	}
	if BreakerState(9).String() == "" {
		t.Fatal("unknown state should render")
	}
}

// Admission-control tests for the shell's bounded queue + deadline shed.

func TestShellQueueCapOverride(t *testing.T) {
	s := newShell(&testAccel{name: "t", ctxs: 1})
	s.SetQueueCap(2)
	if s.QueueCap() != 2 {
		t.Fatalf("QueueCap = %d", s.QueueCap())
	}
	if s.Deliver(&msg.Message{}) != msg.EOK || s.Deliver(&msg.Message{}) != msg.EOK {
		t.Fatal("deliveries under cap rejected")
	}
	if code := s.Deliver(&msg.Message{Type: msg.TRequest}); code != msg.EBusy {
		t.Fatalf("over-cap Deliver = %v, want EBusy", code)
	}
	s.SetQueueCap(0) // restore default
	if s.QueueCap() != InQDepth {
		t.Fatalf("QueueCap after reset = %d", s.QueueCap())
	}
}

func TestShellDeadlineShed(t *testing.T) {
	// An accelerator that drains one message every 100 cycles.
	a := &testAccel{name: "slow", ctxs: 1, consume: true}
	s := newShell(a)
	// Prime the drain-gap EWMA: backlogged dequeues 100 cycles apart.
	for i := 0; i < 6; i++ {
		if code := s.Deliver(&msg.Message{Type: msg.TRequest}); code != msg.EOK {
			t.Fatalf("prime Deliver %d = %v", i, code)
		}
	}
	for i := 0; i < 4; i++ {
		s.Tick(sim.Cycle(100 * (i + 1)))
	}
	if s.EstWait() == 0 {
		t.Fatal("drain-gap estimate not learned")
	}
	// Two messages still queued at ~100 cycles each: a budget of 50 cannot
	// be met, a budget of 10000 can.
	if code := s.Deliver(&msg.Message{Type: msg.TRequest, Budget: 50}); code != msg.EBusy {
		t.Fatalf("hopeless budget admitted: %v", code)
	}
	if code := s.Deliver(&msg.Message{Type: msg.TRequest, Budget: 10000}); code != msg.EOK {
		t.Fatalf("feasible budget shed: %v", code)
	}
	// Unbudgeted requests and replies are never deadline-shed.
	if code := s.Deliver(&msg.Message{Type: msg.TRequest}); code != msg.EOK {
		t.Fatalf("unbudgeted request shed: %v", code)
	}
	if code := s.Deliver(&msg.Message{Type: msg.TReply, Budget: 1}); code != msg.EOK {
		t.Fatalf("reply shed: %v", code)
	}
}

func TestShellDrainGapIgnoresIdleGaps(t *testing.T) {
	a := &testAccel{name: "t", ctxs: 1, consume: true}
	s := newShell(a)
	// One message, drained, queue goes empty.
	s.Deliver(&msg.Message{Type: msg.TRequest})
	s.Tick(10)
	// A long idle stretch, then another lone message: the 100k-cycle gap
	// must not enter the estimate (the queue was empty in between).
	s.Deliver(&msg.Message{Type: msg.TRequest})
	s.Tick(100_010)
	if got := s.EstWait(); got != 0 {
		t.Fatalf("EstWait = %d after idle-only dequeues, want 0", got)
	}
}
