package accel

import (
	"testing"

	"apiary/internal/sim"
)

func TestBackoffSchedule(t *testing.T) {
	b := Backoff{Base: 100, Max: 800}
	want := []sim.Cycle{100, 200, 400, 800, 800, 800}
	for i, w := range want {
		if got := b.Next(); got != w {
			t.Errorf("Next() #%d = %d, want %d", i, got, w)
		}
	}
	b.Reset()
	if got := b.Next(); got != 100 {
		t.Errorf("Next() after Reset = %d, want 100", got)
	}
}

func TestBackoffDefaults(t *testing.T) {
	var off Backoff
	if got := off.Next(); got != 0 {
		t.Errorf("zero-value Next() = %d, want 0 (disabled)", got)
	}
	b := Backoff{Base: 10} // Max defaults to 64*Base
	var last sim.Cycle
	for i := 0; i < 12; i++ {
		last = b.Next()
	}
	if last != 640 {
		t.Errorf("uncapped Next() converged to %d, want 640", last)
	}
	if b.Current() != 640 {
		t.Errorf("Current() = %d, want 640", b.Current())
	}
}
