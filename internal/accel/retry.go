package accel

import "apiary/internal/sim"

// Backoff is a deterministic exponential backoff schedule for requesters
// retrying against a fail-stopped or revoked service: the delay starts at
// Base, doubles per failure, and saturates at Max. Zero Base disables
// backoff (Next returns 0). The zero Max defaults to 64×Base.
//
// Backoff carries no randomness on purpose: simulated clients must replay
// bit-exact, and the simulator's deterministic event order means there is
// no thundering herd for jitter to break up.
type Backoff struct {
	Base sim.Cycle
	Max  sim.Cycle

	cur sim.Cycle
}

// Next returns the delay to wait before the next attempt and advances the
// schedule.
func (b *Backoff) Next() sim.Cycle {
	if b.Base == 0 {
		return 0
	}
	if b.cur == 0 {
		b.cur = b.Base
	}
	d := b.cur
	max := b.Max
	if max == 0 {
		max = 64 * b.Base
	}
	if b.cur < max {
		b.cur *= 2
		if b.cur > max {
			b.cur = max
		}
	}
	return d
}

// Reset returns the schedule to its starting delay (call on success).
func (b *Backoff) Reset() { b.cur = 0 }

// Current reports the delay the next Next call would return.
func (b *Backoff) Current() sim.Cycle {
	if b.cur == 0 {
		return b.Base
	}
	return b.cur
}
