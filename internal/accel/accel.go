// Package accel defines Apiary's accelerator framework: the interface
// untrusted logic implements, the trusted Shell that wraps each accelerator
// and connects it to the tile's monitor, and the fault model (paper §4.2,
// §4.4).
//
// Process granularity follows the paper: one user context running on one
// accelerator is a process. An accelerator may host several contexts;
// contexts on the same tile are mutually trusting but should be
// fault-isolated from each other when the accelerator is preemptible.
package accel

import (
	"fmt"

	"apiary/internal/msg"
	"apiary/internal/sim"
)

// FaultReason classifies why a process faulted.
type FaultReason uint8

// Fault reasons.
const (
	FaultNone      FaultReason = iota
	FaultPanic                 // accelerator logic panicked (hardware: error strobe)
	FaultExplicit              // accelerator declared an unrecoverable error
	FaultWatchdog              // stopped consuming input with a full queue (hang detector)
	FaultHeartbeat             // stopped making progress on queued input (heartbeat detector)
	FaultProtocol              // repeated protocol violations caught by the monitor
	FaultLeak                  // outstanding-request leak caught by the monitor
	FaultSpurious              // spurious detector trip (injected false positive)
)

func (f FaultReason) String() string {
	switch f {
	case FaultNone:
		return "none"
	case FaultPanic:
		return "panic"
	case FaultExplicit:
		return "explicit"
	case FaultWatchdog:
		return "watchdog"
	case FaultHeartbeat:
		return "heartbeat"
	case FaultProtocol:
		return "protocol"
	case FaultLeak:
		return "leak"
	case FaultSpurious:
		return "spurious"
	}
	return fmt.Sprintf("fault(%d)", uint8(f))
}

// Port is the accelerator's window onto the rest of the system — the only
// way logic inside a tile can observe or affect anything outside it. The
// Shell implements it; every Send goes through the monitor.
type Port interface {
	// Now reports the current cycle.
	Now() sim.Cycle
	// Recv pops one delivered message, if any.
	Recv() (*msg.Message, bool)
	// Send submits a message. The returned code reflects *local* denials
	// (no capability, rate limit, fail-stop); remote errors arrive later as
	// TError messages.
	Send(m *msg.Message) msg.ErrCode
	// Fault declares that the given context has failed irrecoverably.
	Fault(ctx uint8, reason FaultReason)
}

// Accelerator is implemented by untrusted tile logic. Tick is called once
// per cycle; all I/O happens through the Port. Implementations must be
// deterministic given the same message sequence.
type Accelerator interface {
	// Name identifies the accelerator kind (for manifests and logs).
	Name() string
	// Reset returns the accelerator to its power-on state.
	Reset()
	// Contexts reports how many process contexts the accelerator hosts
	// (>= 1).
	Contexts() int
	// Tick advances the accelerator one cycle.
	Tick(p Port)
}

// Idler is optionally implemented by accelerators that can report when
// Tick(p) would be a no-op: no pending work, no timed work becoming due, no
// sends to retry. The shell combines this with its own queue state so the
// engine can fast-forward across idle stretches (sim.IdleTicker).
// Accelerators that generate work spontaneously (traffic sources) must
// return false until they are permanently finished.
type Idler interface {
	Idle() bool
}

// TileLocal is a marker interface for accelerators whose Tick touches only
// tile-local state: its own fields plus the Port (whose monitor/NI path is
// tile-local until the staged NoC commit). Such accelerators are safe to
// tick on their tile's shard during the engine's parallel tick phase
// (sim.ShardTicker); the shell of a TileLocal accelerator reports the
// tile's shard affinity instead of forcing the engine serial.
//
// Do NOT mark an accelerator TileLocal if its Tick reads or writes anything
// shared across tiles: an injected channel or histogram, the engine's
// RNG or event queue (sim.Engine.Schedule), package-level state, or another
// tile's accelerator. The engine cannot verify the claim; a wrong marker
// trades determinism for speed, which is exactly backwards.
type TileLocal interface {
	tileLocal()
}

// TileLocalMarker can be embedded to implement TileLocal.
type TileLocalMarker struct{}

func (TileLocalMarker) tileLocal() {}

// Checkpointable is implemented by accelerators that externalize
// per-context architectural state for checkpoint/restore. A quiescent
// checkpointable accelerator can be serialized, torn down, and reinstated
// in a different region (or on a different board) without its clients
// observing anything beyond a bounded retry window — the substrate of live
// migration (ROADMAP item 5, Funky-style).
type Checkpointable interface {
	// SaveContext serializes one context's state. The encoding must be
	// deterministic (sorted iteration over any map state) so snapshots are
	// bit-exact across serial and sharded runs.
	SaveContext(ctx uint8) ([]byte, error)
	// RestoreContext reinstates previously saved state. It must validate
	// bounds before mutating anything: a malformed blob returns an error
	// and leaves the context untouched (never partially applied).
	RestoreContext(ctx uint8, state []byte) error
}

// Preemptible extends Checkpointable with per-context kill (paper §4.4:
// SYNERGY-style). A preemptible accelerator lets the monitor kill or swap a
// single faulting context while the others keep running. Accelerators that
// can checkpoint but whose contexts are not fault-isolated from each other
// implement only Checkpointable and keep the fail-stop containment model.
type Preemptible interface {
	Accelerator
	Checkpointable
	// KillContext resets one context to a dead state without touching the
	// others.
	KillContext(ctx uint8)
}

// Quiescer is optionally implemented by accelerators that can report when
// they hold no in-flight work: no parked output, no outstanding RPCs to
// system services, no pending client requests. The shell consults it while
// Quiescing; without it, quiescence falls back to Idler (conservative for
// pipelines whose Idle already covers in-flight state).
type Quiescer interface {
	Quiescent() bool
}

// State is the shell's lifecycle state.
type State uint8

// Shell states. Draining and Stopped together implement the fail-stop model:
// a Draining tile's monitor discards its outgoing messages and NACKs
// incoming ones; once quiet it is Stopped until the kernel resumes it.
// Quiescing is the healthy variant used by checkpoint/migration: the shell
// keeps ticking, in-flight replies are delivered and sent, but new requests
// bounce with the retryable EQuiescing so clients ride out the window on
// their normal backoff machinery.
const (
	Running State = iota
	Draining
	Stopped
	Quiescing
)

func (s State) String() string {
	switch s {
	case Running:
		return "running"
	case Draining:
		return "draining"
	case Stopped:
		return "stopped"
	case Quiescing:
		return "quiescing"
	}
	return fmt.Sprintf("state(%d)", uint8(s))
}

// InQDepth is the shell's default inbound message queue depth. A full queue
// pushes back with EBusy — bounded buffering is what makes resource
// exhaustion attacks answerable (paper §4.5). Manifests can size the queue
// per tile with SetQueueCap.
const InQDepth = 16

// WatchdogCycles is how long the inbound queue may remain full without a
// single dequeue before the shell declares a watchdog fault.
const WatchdogCycles = 10000

// FaultFunc is the monitor's fault hook: called by the shell when a context
// faults.
type FaultFunc func(ctx uint8, reason FaultReason)

// SendFunc is the monitor's egress hook.
type SendFunc func(m *msg.Message) msg.ErrCode

// StatsUser is optionally implemented by accelerators that export their own
// counters. The kernel calls AttachStats when placing the accelerator, so
// manifest-built logic surfaces in /metrics without constructor plumbing.
// Counters obtained from the stats table are atomic and safe to increment
// from a sharded tick.
type StatsUser interface {
	AttachStats(st *sim.Stats)
}

// Shell wraps one accelerator and mediates all its interaction with the
// tile's monitor. The shell is trusted; the accelerator is not. In
// particular the shell converts panics in accelerator code into fail-stop
// faults instead of letting them take down the system — the hardware
// analogue is an error strobe from the wrapped region.
type Shell struct {
	acc     Accelerator
	state   State
	inq     []*msg.Message
	ctxDead []bool

	send  SendFunc
	fault FaultFunc
	now   sim.Cycle

	fullSince  sim.Cycle
	wasFull    bool
	delivered  *sim.Counter
	dropped    *sim.Counter
	faultCount *sim.Counter
	shedCount  *sim.Counter

	// Admission control (overload protection): qcap bounds the inbound
	// queue; svcGap is a deterministic EWMA of the inter-dequeue gap while
	// backlogged — the shell's drain rate — used to estimate queue wait for
	// deadline-aware shedding of budgeted requests.
	qcap     int
	svcGap   sim.Cycle
	lastDeq  sim.Cycle
	deqArmed bool

	// Heartbeat detector (monitor-configured, 0 = off): fault when queued
	// input sits unconsumed for hbCycles — the generalization of the
	// full-queue watchdog to tiles whose peers stop before filling it.
	hbCycles sim.Cycle
	hbSince  sim.Cycle
	hbArmed  bool

	// Chaos-engine injection state (internal/fault): while hung the wrapped
	// accelerator is not ticked; while babbling the shell emits one junk
	// request per cycle, as runaway logic would.
	hangUntil   sim.Cycle
	babbleUntil sim.Cycle
	babbleSvc   msg.ServiceID
	babbleSeq   uint32

	// shard is the tile's shard affinity, set by the monitor when the shell
	// is attached to a tile; -1 (the default) keeps the shell opaque.
	shard int
}

// Blank is the power-on placeholder occupying a shell before any
// application logic is configured into its region: one context, no
// behavior, always idle. Tiles boot with a Blank-wrapped shell parked in
// Stopped state; placement swaps real logic in with Adopt.
type Blank struct{ TileLocalMarker }

// Name identifies the placeholder.
func (Blank) Name() string { return "blank" }

// Reset is a no-op: there is no state to clear.
func (Blank) Reset() {}

// Contexts reports the single (vacant) context.
func (Blank) Contexts() int { return 1 }

// Tick does nothing.
func (Blank) Tick(Port) {}

// Idle reports true: a blank region never generates work.
func (Blank) Idle() bool { return true }

// NewShell wraps acc. The monitor installs its hooks with Bind before the
// first tick.
func NewShell(acc Accelerator, st *sim.Stats) *Shell {
	if acc.Contexts() < 1 {
		panic("accel: accelerator with zero contexts")
	}
	return &Shell{
		acc:        acc,
		ctxDead:    make([]bool, acc.Contexts()),
		delivered:  st.Counter("shell.delivered"),
		dropped:    st.Counter("shell.dropped"),
		faultCount: st.Counter("shell.faults"),
		shedCount:  st.Counter("shell.shed"),
		qcap:       InQDepth,
		shard:      -1,
	}
}

// SetShard records the tile's shard affinity (the monitor calls this when
// attaching the shell to a tile's NI). It only takes effect for TileLocal
// accelerators — see Shard.
func (s *Shell) SetShard(idx int) { s.shard = idx }

// Shard implements sim.ShardTicker: the tile's shard index when the wrapped
// accelerator is marked TileLocal and the shell has been attached to a
// tile, -1 (opaque, forcing the engine serial) otherwise. Counters the
// shell touches during Tick (delivered/dropped/faults) are shared by name
// across tiles but atomic, so sharded ticking keeps them exact.
func (s *Shell) Shard() int {
	if !IsTileLocal(s.acc) {
		return -1
	}
	return s.shard
}

// IsTileLocal reports whether a carries the TileLocal marker, looking
// through wrappers (fault injectors, instrumentation) that expose their
// inner accelerator via an Unwrap method. A wrapper that adds only
// tile-local behaviour of its own should implement Unwrap rather than embed
// the marker, so its locality tracks whatever it wraps.
func IsTileLocal(a Accelerator) bool {
	for a != nil {
		if _, ok := a.(TileLocal); ok {
			return true
		}
		w, ok := a.(interface{ Unwrap() Accelerator })
		if !ok {
			return false
		}
		a = w.Unwrap()
	}
	return false
}

// Bind installs the monitor's egress and fault hooks.
func (s *Shell) Bind(send SendFunc, fault FaultFunc) {
	s.send = send
	s.fault = fault
}

// Accelerator returns the wrapped accelerator.
func (s *Shell) Accelerator() Accelerator { return s.acc }

// State reports the shell's lifecycle state.
func (s *Shell) State() State { return s.state }

// SetState is used by the monitor to drive the fail-stop lifecycle.
func (s *Shell) SetState(st State) { s.state = st }

// CtxDead reports whether a context has been killed.
func (s *Shell) CtxDead(ctx uint8) bool {
	return int(ctx) < len(s.ctxDead) && s.ctxDead[ctx]
}

// KillContext marks a context dead and, when the accelerator is
// preemptible, resets just that context. It reports whether per-context
// isolation was possible — if not, the caller must fail-stop the whole
// tile (paper §4.4: "If an accelerator is only concurrent, then the best
// Apiary ... can achieve is a fail-stop model").
func (s *Shell) KillContext(ctx uint8) bool {
	if int(ctx) >= len(s.ctxDead) {
		return false
	}
	p, ok := s.acc.(Preemptible)
	if !ok {
		return false
	}
	p.KillContext(ctx)
	s.ctxDead[ctx] = true
	// Drop queued messages for the dead context.
	kept := s.inq[:0]
	for _, m := range s.inq {
		if m.DstCtx != ctx {
			kept = append(kept, m)
		} else {
			s.dropped.Inc()
		}
	}
	s.inq = kept
	return true
}

// Reset returns the accelerator and shell to a clean Running state. The
// kernel calls this after reconfiguring a fail-stopped tile. Injected fault
// conditions are cleared: reconfiguration replaces the broken logic.
func (s *Shell) Reset() {
	s.acc.Reset()
	s.inq = nil
	s.state = Running
	s.wasFull = false
	s.hbArmed = false
	s.hangUntil = 0
	s.babbleUntil = 0
	s.svcGap = 0
	s.deqArmed = false
	for i := range s.ctxDead {
		s.ctxDead[i] = false
	}
}

// Adopt replaces the wrapped accelerator with freshly configured logic and
// returns the shell to a clean Running state — the software analogue of
// partially reconfiguring the region inside a shell that stays resident in
// the static fabric. Because the shell (and its engine registration)
// survives unload/reload cycles, applications can be placed mid-run without
// growing the engine's ticker list: the tick order frozen at registration
// never changes. The queue bound resets to the default; callers reapply any
// manifest override.
func (s *Shell) Adopt(acc Accelerator) {
	if acc.Contexts() < 1 {
		panic("accel: accelerator with zero contexts")
	}
	s.acc = acc
	s.ctxDead = make([]bool, acc.Contexts())
	s.inq = nil
	s.state = Running
	s.wasFull = false
	s.hbArmed = false
	s.hangUntil = 0
	s.babbleUntil = 0
	s.svcGap = 0
	s.deqArmed = false
	s.qcap = InQDepth
}

// SetHeartbeat configures the heartbeat detector (0 disables it). The
// monitor sets this from its Detect config when attaching the shell.
func (s *Shell) SetHeartbeat(cycles sim.Cycle) { s.hbCycles = cycles }

// SetHang makes the accelerator stop consuming input until the given cycle
// (chaos-engine hook; called between cycles).
func (s *Shell) SetHang(until sim.Cycle) { s.hangUntil = until }

// SetBabble makes the shell emit one junk request per cycle to svc until
// the given cycle (chaos-engine hook; called between cycles).
func (s *Shell) SetBabble(until sim.Cycle, svc msg.ServiceID) {
	s.babbleUntil = until
	s.babbleSvc = svc
}

// SetQueueCap sizes the admission queue (<= 0 restores InQDepth). The
// kernel sets this from the manifest's queue_cap knob when placing the
// accelerator; messages already queued are never discarded by a shrink,
// the bound only gates future deliveries.
func (s *Shell) SetQueueCap(n int) {
	if n <= 0 {
		n = InQDepth
	}
	s.qcap = n
}

// QueueCap reports the admission queue bound.
func (s *Shell) QueueCap() int { return s.qcap }

// EstWait estimates how long a message delivered now would wait before the
// accelerator dequeues it: queue occupancy times the drain-gap EWMA. Zero
// until the shell has observed a backlogged dequeue.
func (s *Shell) EstWait() sim.Cycle {
	return sim.Cycle(len(s.inq)) * s.svcGap
}

// Deliver hands an inbound message to the shell (called by the monitor).
// Requests that cannot be admitted — queue full, or a deadline budget the
// estimated queue wait already exceeds — are shed with EBusy; the sender's
// monitor turns that into a NACK, so the client learns immediately instead
// of timing out (deadline-aware load shedding).
func (s *Shell) Deliver(m *msg.Message) msg.ErrCode {
	if s.state == Quiescing {
		// Healthy drain: replies to the accelerator's own in-flight work
		// still land (that is what lets it reach quiescence), but new work
		// bounces with the retryable quiescing code.
		switch m.Type {
		case msg.TReply, msg.TError, msg.TMemReply:
		default:
			return msg.EQuiescing
		}
	} else if s.state != Running {
		return msg.EFailStopped
	}
	if int(m.DstCtx) >= len(s.ctxDead) {
		return msg.ENoContext
	}
	if s.ctxDead[m.DstCtx] {
		return msg.ENoContext
	}
	if len(s.inq) >= s.qcap {
		s.dropped.Inc()
		if m.Type == msg.TRequest {
			s.shedCount.Inc()
		}
		return msg.EBusy
	}
	if m.Type == msg.TRequest && m.Budget > 0 && s.EstWait() > sim.Cycle(m.Budget) {
		s.shedCount.Inc()
		return msg.EBusy
	}
	s.inq = append(s.inq, m)
	s.delivered.Inc()
	return msg.EOK
}

// QueueLen reports the inbound queue occupancy.
func (s *Shell) QueueLen() int { return len(s.inq) }

// Tick advances the accelerator one cycle with panic containment and the
// watchdog.
func (s *Shell) Tick(now sim.Cycle) {
	if s.state != Running && s.state != Quiescing {
		return
	}
	s.now = now
	before := len(s.inq)

	if now >= s.hangUntil {
		func() {
			defer func() {
				if r := recover(); r != nil {
					s.faultCount.Inc()
					if s.fault != nil {
						s.fault(0, FaultPanic)
					}
				}
			}()
			s.acc.Tick(s)
		}()
	}
	if now < s.babbleUntil {
		s.babbleSeq++
		_ = s.Send(&msg.Message{
			Type: msg.TRequest, DstSvc: s.babbleSvc,
			Seq: 0xBAB00000 + s.babbleSeq, Payload: []byte{0xBA, 0xBB, 0x1E},
		})
	}

	// Watchdog: a full queue that is never drained means the accelerator
	// hung while peers keep piling work onto it.
	if before >= s.qcap && len(s.inq) >= before {
		if !s.wasFull {
			s.wasFull = true
			s.fullSince = now
		} else if now-s.fullSince > WatchdogCycles {
			s.faultCount.Inc()
			s.wasFull = false
			if s.fault != nil {
				s.fault(0, FaultWatchdog)
			}
		}
	} else {
		s.wasFull = false
	}

	// Heartbeat: any queued input the accelerator leaves unconsumed for
	// hbCycles means it stopped serving, even if the queue never fills
	// (deliveries only happen at commit, so within a tick the queue can
	// only shrink — no progress means len did not drop).
	if s.hbCycles > 0 && s.state == Running {
		if before > 0 && len(s.inq) >= before {
			if !s.hbArmed {
				s.hbArmed = true
				s.hbSince = now
			} else if now-s.hbSince > s.hbCycles {
				s.hbArmed = false
				s.faultCount.Inc()
				if s.fault != nil {
					s.fault(0, FaultHeartbeat)
				}
			}
		} else {
			s.hbArmed = false
		}
	}
}

// Idle implements sim.IdleTicker: ticking is a no-op when the shell is not
// Running (Tick returns immediately), or when the inbound queue is empty,
// the watchdog is unarmed, and the accelerator itself declares idle. An
// accelerator that does not implement Idler is never considered idle — the
// conservative default for logic that may generate work spontaneously.
func (s *Shell) Idle() bool {
	if s.state != Running && s.state != Quiescing {
		return true
	}
	if len(s.inq) > 0 || s.wasFull || s.hbArmed {
		return false
	}
	// An armed injection keeps the shell ticking: a babbling tile emits
	// every cycle, and a hang must expire on schedule rather than be
	// fast-forwarded over.
	if s.now < s.hangUntil || s.now < s.babbleUntil {
		return false
	}
	ih, ok := s.acc.(Idler)
	return ok && ih.Idle()
}

// Quiescent reports whether a Quiescing shell has fully drained: the
// inbound queue is empty and the accelerator holds no in-flight work. The
// kernel polls this before snapshotting. Accelerators report in-flight
// state via Quiescer; Idler is the fallback, and an accelerator exposing
// neither is considered drained once its queue is (it has no way to hold
// hidden work the checkpoint could miss).
func (s *Shell) Quiescent() bool {
	if s.state != Quiescing || len(s.inq) > 0 {
		return false
	}
	if q, ok := s.acc.(Quiescer); ok {
		return q.Quiescent()
	}
	if ih, ok := s.acc.(Idler); ok {
		return ih.Idle()
	}
	return true
}

// Port implementation (the shell is the accelerator's Port).

// Now implements Port.
func (s *Shell) Now() sim.Cycle { return s.now }

// Recv implements Port. Dequeues feed the drain-gap EWMA: the gap between
// consecutive dequeues while a backlog remains is how fast the accelerator
// actually drains its queue, which is what the deadline shed in Deliver
// multiplies by the occupancy. Gaps across an empty queue are not drain
// time and are excluded by disarming the estimator.
func (s *Shell) Recv() (*msg.Message, bool) {
	if len(s.inq) == 0 {
		s.deqArmed = false
		return nil, false
	}
	m := s.inq[0]
	copy(s.inq, s.inq[1:])
	s.inq[len(s.inq)-1] = nil
	s.inq = s.inq[:len(s.inq)-1]
	if s.deqArmed {
		gap := s.now - s.lastDeq
		if s.svcGap == 0 {
			s.svcGap = gap
		} else {
			s.svcGap = (3*s.svcGap + gap) / 4
		}
	}
	s.lastDeq = s.now
	s.deqArmed = len(s.inq) > 0
	return m, true
}

// Send implements Port. A Quiescing shell may still send: delivering the
// replies it owes is exactly how it drains to quiescence.
func (s *Shell) Send(m *msg.Message) msg.ErrCode {
	if s.state != Running && s.state != Quiescing {
		return msg.EFailStopped
	}
	if s.send == nil {
		return msg.ENoRoute
	}
	return s.send(m)
}

// Fault implements Port.
func (s *Shell) Fault(ctx uint8, reason FaultReason) {
	s.faultCount.Inc()
	if s.fault != nil {
		s.fault(ctx, reason)
	}
}
