package accel

import (
	"fmt"

	"apiary/internal/sim"
)

// BreakerState is the circuit breaker's position.
type BreakerState uint8

// Breaker states. Closed passes traffic; Open rejects it locally until the
// cooldown expires; HalfOpen admits exactly one probe whose outcome decides
// between closing and re-opening with a doubled cooldown.
const (
	BreakerClosed BreakerState = iota
	BreakerOpen
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return fmt.Sprintf("breaker(%d)", uint8(s))
}

// Breaker is a deterministic circuit breaker layered over Backoff: after
// Threshold consecutive EBusy push-backs the breaker opens and the client
// stops issuing entirely for the cooldown, instead of per-request backoff
// alone — an overloaded service sheds faster when the excess load stops
// arriving at its monitor at all. When the cooldown expires the breaker
// goes half-open and lets one probe through; a successful probe closes it,
// a busy probe re-opens it with the next (doubled, saturating) cooldown.
//
// Like Backoff it is deliberately jitter-free: simulated clients must
// replay bit-exact.
type Breaker struct {
	// Threshold is how many consecutive busies trip the breaker (0
	// disables it: Allow always reports true).
	Threshold int
	// Cooldown schedules the open duration (doubling per re-open). A zero
	// Base falls back to 1024 cycles.
	Cooldown Backoff

	state    BreakerState
	streak   int
	reopenAt sim.Cycle
	opens    uint64
	closes   uint64
}

// State reports the breaker's position, advancing Open to HalfOpen when the
// cooldown has expired at the given cycle.
func (b *Breaker) State(now sim.Cycle) BreakerState {
	if b.state == BreakerOpen && now >= b.reopenAt {
		b.state = BreakerHalfOpen
	}
	return b.state
}

// Allow reports whether a request may be issued now. In the half-open state
// the first Allow claims the single probe slot; subsequent calls report
// false until the probe's outcome arrives via OnBusy or OnSuccess.
func (b *Breaker) Allow(now sim.Cycle) bool {
	if b.Threshold <= 0 {
		return true
	}
	switch b.State(now) {
	case BreakerClosed:
		return true
	case BreakerHalfOpen:
		// One probe: claim it by moving back to Open with the slot marked
		// taken via streak (reused as the probe flag while not Closed).
		if b.streak == 0 {
			b.streak = 1
			return true
		}
	}
	return false
}

// OnBusy records an EBusy push-back. It reports whether this trip opened
// (or re-opened) the breaker.
func (b *Breaker) OnBusy(now sim.Cycle) bool {
	if b.Threshold <= 0 {
		return false
	}
	switch b.State(now) {
	case BreakerClosed:
		b.streak++
		if b.streak < b.Threshold {
			return false
		}
	case BreakerHalfOpen:
		if b.streak == 0 {
			// Busy from an older request while awaiting a probe slot:
			// not the probe's verdict, ignore.
			return false
		}
	case BreakerOpen:
		return false
	}
	b.trip(now)
	return true
}

// OnSuccess records a successful reply: the breaker closes from any state
// and the cooldown schedule resets. Reports whether it was open/half-open.
func (b *Breaker) OnSuccess() bool {
	was := b.state != BreakerClosed
	if was {
		b.closes++
	}
	b.state = BreakerClosed
	b.streak = 0
	b.Cooldown.Reset()
	return was
}

func (b *Breaker) trip(now sim.Cycle) {
	if b.Cooldown.Base == 0 {
		b.Cooldown.Base = 1024
	}
	b.state = BreakerOpen
	b.streak = 0
	b.reopenAt = now + b.Cooldown.Next()
	b.opens++
}

// Opens and Closes report lifetime transition counts.
func (b *Breaker) Opens() uint64 { return b.opens }

// Closes reports how many times the breaker closed after being open.
func (b *Breaker) Closes() uint64 { return b.closes }

// Reset returns the breaker to its power-on state (call from the owning
// accelerator's Reset).
func (b *Breaker) Reset() {
	b.state = BreakerClosed
	b.streak = 0
	b.reopenAt = 0
	b.Cooldown.Reset()
}
