package accel

import (
	"testing"

	"apiary/internal/msg"
	"apiary/internal/sim"
)

// testAccel is a scriptable accelerator: each Tick it drains one message
// and optionally sends, panics, or faults.
type testAccel struct {
	name      string
	ctxs      int
	panicNow  bool
	faultNow  bool
	consume   bool
	preempt   bool
	resets    int
	got       []*msg.Message
	killed    map[uint8]bool
	sendEvery *msg.Message
}

func (a *testAccel) Name() string  { return a.name }
func (a *testAccel) Contexts() int { return a.ctxs }
func (a *testAccel) Reset()        { a.resets++; a.got = nil }
func (a *testAccel) Tick(p Port) {
	if a.panicNow {
		a.panicNow = false
		panic("testAccel: injected panic")
	}
	if a.faultNow {
		a.faultNow = false
		p.Fault(1, FaultExplicit)
	}
	if a.consume {
		if m, ok := p.Recv(); ok {
			a.got = append(a.got, m)
		}
	}
	if a.sendEvery != nil {
		p.Send(a.sendEvery)
	}
}

// preemptAccel extends testAccel with the Preemptible methods.
type preemptAccel struct{ testAccel }

func (a *preemptAccel) SaveContext(ctx uint8) ([]byte, error)    { return []byte{ctx}, nil }
func (a *preemptAccel) RestoreContext(ctx uint8, s []byte) error { return nil }
func (a *preemptAccel) KillContext(ctx uint8) {
	if a.killed == nil {
		a.killed = map[uint8]bool{}
	}
	a.killed[ctx] = true
}

var _ Preemptible = (*preemptAccel)(nil)

func newShell(a Accelerator) *Shell { return NewShell(a, sim.NewStats()) }

func TestDeliverAndRecv(t *testing.T) {
	a := &testAccel{name: "t", ctxs: 1, consume: true}
	s := newShell(a)
	m := &msg.Message{Type: msg.TRequest}
	if code := s.Deliver(m); code != msg.EOK {
		t.Fatalf("Deliver = %v", code)
	}
	s.Tick(1)
	if len(a.got) != 1 || a.got[0] != m {
		t.Fatal("accelerator did not receive message")
	}
}

func TestDeliverQueueBound(t *testing.T) {
	s := newShell(&testAccel{name: "t", ctxs: 1})
	for i := 0; i < InQDepth; i++ {
		if code := s.Deliver(&msg.Message{}); code != msg.EOK {
			t.Fatalf("Deliver %d = %v", i, code)
		}
	}
	if code := s.Deliver(&msg.Message{}); code != msg.EBusy {
		t.Fatalf("overfull Deliver = %v, want EBusy", code)
	}
	if s.QueueLen() != InQDepth {
		t.Fatalf("QueueLen = %d", s.QueueLen())
	}
}

func TestDeliverBadContext(t *testing.T) {
	s := newShell(&testAccel{name: "t", ctxs: 2})
	if code := s.Deliver(&msg.Message{DstCtx: 5}); code != msg.ENoContext {
		t.Fatalf("bad ctx Deliver = %v", code)
	}
}

func TestPanicBecomesFault(t *testing.T) {
	a := &testAccel{name: "t", ctxs: 1, panicNow: true}
	s := newShell(a)
	var gotCtx uint8 = 99
	var gotReason FaultReason
	s.Bind(func(m *msg.Message) msg.ErrCode { return msg.EOK },
		func(ctx uint8, r FaultReason) { gotCtx, gotReason = ctx, r })
	s.Tick(1) // must not propagate the panic
	if gotReason != FaultPanic || gotCtx != 0 {
		t.Fatalf("fault hook got ctx=%d reason=%v", gotCtx, gotReason)
	}
}

func TestExplicitFault(t *testing.T) {
	a := &testAccel{name: "t", ctxs: 2, faultNow: true}
	s := newShell(a)
	var gotCtx uint8
	var gotReason FaultReason
	s.Bind(nil, func(ctx uint8, r FaultReason) { gotCtx, gotReason = ctx, r })
	s.Tick(1)
	if gotReason != FaultExplicit || gotCtx != 1 {
		t.Fatalf("fault = ctx %d reason %v", gotCtx, gotReason)
	}
}

func TestStoppedShellInert(t *testing.T) {
	a := &testAccel{name: "t", ctxs: 1, consume: true}
	s := newShell(a)
	s.SetState(Stopped)
	if code := s.Deliver(&msg.Message{}); code != msg.EFailStopped {
		t.Fatalf("Deliver on stopped = %v", code)
	}
	if code := s.Send(&msg.Message{}); code != msg.EFailStopped {
		t.Fatalf("Send on stopped = %v", code)
	}
	s.Tick(5)
	if len(a.got) != 0 {
		t.Fatal("stopped shell ticked the accelerator")
	}
}

func TestKillContextPreemptible(t *testing.T) {
	a := &preemptAccel{testAccel{name: "t", ctxs: 3}}
	s := newShell(a)
	// Queue messages for contexts 1 and 2.
	s.Deliver(&msg.Message{DstCtx: 1})
	s.Deliver(&msg.Message{DstCtx: 2})
	if !s.KillContext(1) {
		t.Fatal("KillContext failed on preemptible accelerator")
	}
	if !a.killed[1] {
		t.Fatal("accelerator KillContext not invoked")
	}
	if !s.CtxDead(1) || s.CtxDead(2) {
		t.Fatal("context liveness wrong")
	}
	if s.QueueLen() != 1 {
		t.Fatalf("queued messages for dead ctx not dropped: %d", s.QueueLen())
	}
	if code := s.Deliver(&msg.Message{DstCtx: 1}); code != msg.ENoContext {
		t.Fatalf("Deliver to dead ctx = %v", code)
	}
	if code := s.Deliver(&msg.Message{DstCtx: 2}); code != msg.EOK {
		t.Fatalf("Deliver to live ctx = %v", code)
	}
}

func TestKillContextConcurrentOnlyFails(t *testing.T) {
	s := newShell(&testAccel{name: "t", ctxs: 2})
	if s.KillContext(1) {
		t.Fatal("KillContext succeeded on non-preemptible accelerator")
	}
}

func TestResetRestoresRunning(t *testing.T) {
	a := &preemptAccel{testAccel{name: "t", ctxs: 2}}
	s := newShell(a)
	s.KillContext(1)
	s.SetState(Draining)
	s.Deliver(&msg.Message{})
	s.Reset()
	if s.State() != Running || s.CtxDead(1) || s.QueueLen() != 0 {
		t.Fatal("Reset incomplete")
	}
	if a.resets != 1 {
		t.Fatal("accelerator Reset not called")
	}
}

func TestWatchdogFires(t *testing.T) {
	// Accelerator that never consumes while its queue is full.
	a := &testAccel{name: "hang", ctxs: 1, consume: false}
	s := newShell(a)
	fired := false
	s.Bind(nil, func(ctx uint8, r FaultReason) {
		if r == FaultWatchdog {
			fired = true
		}
	})
	for i := 0; i < InQDepth; i++ {
		s.Deliver(&msg.Message{})
	}
	for c := sim.Cycle(1); c < WatchdogCycles+10 && !fired; c++ {
		s.Tick(c)
	}
	if !fired {
		t.Fatal("watchdog did not fire on a hung accelerator")
	}
}

func TestWatchdogNotFiredWhenDraining(t *testing.T) {
	a := &testAccel{name: "ok", ctxs: 1, consume: true}
	s := newShell(a)
	fired := false
	s.Bind(nil, func(uint8, FaultReason) { fired = true })
	for c := sim.Cycle(1); c < WatchdogCycles+10; c++ {
		if s.QueueLen() < InQDepth {
			s.Deliver(&msg.Message{})
		}
		s.Tick(c)
	}
	if fired {
		t.Fatal("watchdog fired on a healthy accelerator")
	}
}

func TestSendWithoutBind(t *testing.T) {
	s := newShell(&testAccel{name: "t", ctxs: 1})
	if code := s.Send(&msg.Message{}); code != msg.ENoRoute {
		t.Fatalf("unbound Send = %v", code)
	}
}

func TestZeroContextsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero-context accelerator accepted")
		}
	}()
	newShell(&testAccel{name: "t", ctxs: 0})
}

func TestStateStrings(t *testing.T) {
	for _, s := range []State{Running, Draining, Stopped, State(9)} {
		if s.String() == "" {
			t.Fatal("empty state name")
		}
	}
	for _, f := range []FaultReason{FaultNone, FaultPanic, FaultExplicit, FaultWatchdog, FaultReason(9)} {
		if f.String() == "" {
			t.Fatal("empty fault name")
		}
	}
}
