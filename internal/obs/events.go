package obs

import (
	"encoding/json"
	"io"

	"apiary/internal/sim"
)

// EventKind classifies a kernel/orchestrator decision worth keeping a
// record of. The decision log is the answer to "why is the fleet shaped
// like this": every quarantine, failover, re-bind, placement and board
// kill lands here with its cycle timestamp and cause.
type EventKind string

// Decision kinds recorded by the kernel (per board) and the orchestrator
// (fleet level).
const (
	EvQuarantine EventKind = "quarantine" // tile fail-stopped and drained
	EvRecover    EventKind = "recover"    // quarantined tile reloaded
	EvFailover   EventKind = "failover"   // replica group primary moved
	EvRebind     EventKind = "rebind"     // directory primary re-bound
	EvPlacement  EventKind = "placement"  // app/accelerator placed
	EvDeploy     EventKind = "deploy"     // service replica deployed
	EvConnect    EventKind = "connect"    // client proxy connected
	EvBoardKill  EventKind = "board-kill" // whole board declared dead
	// EvScenarioPhase marks a load-scenario phase boundary (internal/load):
	// the open-loop generator records each transition so latency shifts in
	// the decision log line up with the offered-rate curve that caused them.
	EvScenarioPhase EventKind = "scenario-phase"

	// Migration lifecycle (kernel for on-board moves, orchestrator for
	// cross-board): quiesce started, snapshot taken (detail carries the blob
	// size), transfer progress at epoch barriers (cross-board only), clean
	// abort with the source left authoritative, and completed resume in the
	// new region.
	EvMigrateStart    EventKind = "migrate-start"
	EvMigrateSnapshot EventKind = "migrate-snapshot"
	EvMigrateTransfer EventKind = "migrate-transfer"
	EvMigrateAbort    EventKind = "migrate-abort"
	EvMigrateDone     EventKind = "migrate-done"
)

// Event is one structured decision-log record.
type Event struct {
	Cycle  sim.Cycle `json:"cycle"`
	Board  int       `json:"board"` // -1 for fleet-level (orchestrator) events
	Kind   EventKind `json:"kind"`
	Cause  string    `json:"cause"`  // why the decision fired
	Detail string    `json:"detail"` // what it did, human-readable
}

// EventLog is a bounded ring of decision events. It is observation only —
// writers record decisions already taken; nothing reads the log to make
// one. Per-board logs are written single-threaded (kernel commit phase on
// the board's goroutine); the fleet log is written by the coordinator
// between epochs. Reads happen at barriers or after Close, under the same
// happens-before edge as every other fleet snapshot.
type EventLog struct {
	ring  []Event
	cap   int
	next  int
	full  bool
	total uint64
}

// DefaultEventCap bounds a decision log by default. Decisions are rare
// (per-fault, per-deploy), so a small ring covers long runs.
const DefaultEventCap = 512

// NewEventLog returns a log retaining at most capacity events.
func NewEventLog(capacity int) *EventLog {
	if capacity <= 0 {
		capacity = DefaultEventCap
	}
	return &EventLog{cap: capacity}
}

// Add appends one event, evicting the oldest past capacity.
func (l *EventLog) Add(e Event) {
	if l == nil {
		return
	}
	l.total++
	if len(l.ring) < l.cap {
		l.ring = append(l.ring, e)
		return
	}
	l.full = true
	l.ring[l.next] = e
	l.next = (l.next + 1) % l.cap
}

// Record is the convenience writer used at decision sites.
func (l *EventLog) Record(cycle sim.Cycle, kind EventKind, cause, detail string) {
	l.Add(Event{Cycle: cycle, Board: -1, Kind: kind, Cause: cause, Detail: detail})
}

// Total reports how many events were ever recorded (including evicted).
func (l *EventLog) Total() uint64 {
	if l == nil {
		return 0
	}
	return l.total
}

// Events returns retained events oldest-first.
func (l *EventLog) Events() []Event {
	if l == nil {
		return nil
	}
	if !l.full {
		return append([]Event(nil), l.ring...)
	}
	out := make([]Event, 0, l.cap)
	out = append(out, l.ring[l.next:]...)
	out = append(out, l.ring[:l.next]...)
	return out
}

// MergeEvents interleaves per-source event slices into one timeline sorted
// by (cycle, board, arrival order). Board IDs are stamped during the merge:
// events from logs[i] get board ID boards[i] unless they already carry one
// (fleet-level logs pass board -1 and keep it).
func MergeEvents(logs []*EventLog, boards []int) []Event {
	var out []Event
	for i, l := range logs {
		for _, e := range l.Events() {
			if e.Board < 0 && i < len(boards) && boards[i] >= 0 {
				e.Board = boards[i]
			}
			out = append(out, e)
		}
	}
	// Stable insertion keeps same-cycle events in source order; sort by
	// (cycle, board) for a deterministic merged timeline.
	stableSortEvents(out)
	return out
}

func stableSortEvents(evs []Event) {
	// Insertion-stable merge: the slices are already time-ordered per
	// source, so a simple stable sort is cheap at decision-log scale.
	for i := 1; i < len(evs); i++ {
		for j := i; j > 0; j-- {
			a, b := &evs[j-1], &evs[j]
			if a.Cycle < b.Cycle || (a.Cycle == b.Cycle && a.Board <= b.Board) {
				break
			}
			evs[j-1], evs[j] = evs[j], evs[j-1]
		}
	}
}

// WriteEventsJSON renders events as a JSON array (the /events.json body).
func WriteEventsJSON(w io.Writer, evs []Event) error {
	if evs == nil {
		evs = []Event{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(evs)
}
