package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"apiary/internal/msg"
	"apiary/internal/noc"
	"apiary/internal/sim"
)

func TestEventLogBoundedAndOrdered(t *testing.T) {
	l := NewEventLog(4)
	for i := 0; i < 10; i++ {
		l.Record(sim.Cycle(i), EvQuarantine, "c", "d")
	}
	if l.Total() != 10 {
		t.Fatalf("Total = %d, want 10", l.Total())
	}
	evs := l.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d, want 4", len(evs))
	}
	if evs[0].Cycle != 6 || evs[3].Cycle != 9 {
		t.Fatalf("ring not oldest-first: %d..%d", evs[0].Cycle, evs[3].Cycle)
	}
	var nilLog *EventLog
	nilLog.Record(1, EvRecover, "", "") // must not panic
	if nilLog.Total() != 0 || nilLog.Events() != nil {
		t.Fatal("nil log should be inert")
	}
}

func TestMergeEventsStampsBoardsAndSorts(t *testing.T) {
	a, b, fleet := NewEventLog(0), NewEventLog(0), NewEventLog(0)
	a.Record(100, EvQuarantine, "panic", "tile 3")
	a.Record(300, EvRecover, "pr-reload", "tile 3")
	b.Record(100, EvFailover, "primary down", "group 9")
	fleet.Add(Event{Cycle: 200, Board: 1, Kind: EvRebind, Cause: "board 0 dead", Detail: "kv"})
	merged := MergeEvents([]*EventLog{fleet, a, b}, []int{-1, 0, 1})
	if len(merged) != 4 {
		t.Fatalf("merged %d events, want 4", len(merged))
	}
	// Sorted by (cycle, board); board IDs stamped from the log index.
	want := []struct {
		cy    sim.Cycle
		board int
		kind  EventKind
	}{
		{100, 0, EvQuarantine}, {100, 1, EvFailover},
		{200, 1, EvRebind}, {300, 0, EvRecover},
	}
	for i, w := range want {
		if merged[i].Cycle != w.cy || merged[i].Board != w.board || merged[i].Kind != w.kind {
			t.Fatalf("merged[%d] = %+v, want cy=%d board=%d kind=%s",
				i, merged[i], w.cy, w.board, w.kind)
		}
	}
	var buf bytes.Buffer
	if err := WriteEventsJSON(&buf, merged); err != nil {
		t.Fatal(err)
	}
	var back []Event
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("events JSON round trip: %v", err)
	}
	if len(back) != 4 || back[2].Kind != EvRebind {
		t.Fatalf("round-tripped %d events: %+v", len(back), back)
	}
}

// boardStats builds a Source with a few counters and a histogram.
func boardStats(board int, delivered uint64, latencies []float64) Source {
	st := sim.NewStats()
	st.Counter("noc.msgs_delivered").Add(delivered)
	st.Counter("mon.denied").Add(uint64(board))
	h := st.Histogram("fleet.svc.kv.rpc_cycles")
	for _, v := range latencies {
		h.Observe(v)
	}
	ev := NewEventLog(0)
	ev.Record(sim.Cycle(board), EvPlacement, "load-app", "x")
	return Source{Board: board, Stats: st, Events: ev}
}

func TestAggregatorMergesAcrossBoards(t *testing.T) {
	a := NewAggregator()
	a.AddSource(boardStats(0, 100, []float64{10, 20}))
	a.AddSource(boardStats(1, 50, []float64{30, 40}))

	var deliv, denied uint64
	for _, c := range a.MergedCounters() {
		switch c.Name {
		case "noc.msgs_delivered":
			deliv = c.Value
		case "mon.denied":
			denied = c.Value
		}
	}
	if deliv != 150 || denied != 1 {
		t.Fatalf("merged counters delivered=%d denied=%d, want 150/1", deliv, denied)
	}
	h := a.MergedHistogram("fleet.svc.kv.rpc_cycles")
	if h == nil || h.Count() != 4 || h.Min() != 10 || h.Max() != 40 {
		t.Fatalf("merged histogram = %+v", h)
	}
	if a.MergedHistogram("nope") != nil {
		t.Fatal("merging a missing histogram should return nil")
	}

	// Pulses: two epochs of deltas.
	a.Pulse(500)
	a.sources[0].Stats.Counter("noc.msgs_delivered").Add(7)
	a.Pulse(1000)
	ps := a.Pulses()
	if len(ps) != 2 || a.Epochs() != 2 {
		t.Fatalf("pulses=%d epochs=%d", len(ps), a.Epochs())
	}
	if ps[0].Delivered[0] != 100 || ps[1].Delivered[0] != 7 || ps[1].Delivered[1] != 0 {
		t.Fatalf("pulse deltas wrong: %+v", ps)
	}

	evs := a.MergedEvents()
	if len(evs) != 2 || evs[0].Board != 0 || evs[1].Board != 1 {
		t.Fatalf("merged events: %+v", evs)
	}
}

func TestServiceRollupsAndFleetProm(t *testing.T) {
	a := NewAggregator()
	s0 := boardStats(0, 10, nil)
	s0.Stats.Counter(ServiceServedCounter("kv")).Add(42)
	s1 := boardStats(1, 20, []float64{100, 200, 300, 400})
	a.AddSource(s0)
	a.AddSource(s1)
	a.FleetEvents().Add(Event{Cycle: 9, Board: -1, Kind: EvBoardKill, Cause: "c", Detail: "d"})

	rs := a.ServiceRollups([]string{"kv"}, map[string]int{"kv": 2})
	if len(rs) != 1 {
		t.Fatalf("rollups = %+v", rs)
	}
	r := rs[0]
	if r.Served != 42 || r.RPCs != 4 || r.Replicas != 2 {
		t.Fatalf("rollup = %+v", r)
	}
	if r.P50 < 100 || r.P99 > 400+1 || r.MeanCy != 250 {
		t.Fatalf("rollup quantiles = %+v", r)
	}

	var buf bytes.Buffer
	a.WriteFleetProm(&buf, 12345, 250,
		[]FleetGauge{{Name: "fleet.frames_relayed", Value: 77}}, rs)
	text := buf.String()
	for _, want := range []string{
		"apiary_fleet_boards 2",
		"apiary_cycle 12345",
		"apiary_fleet_epochs_total 0",
		"apiary_fleet_frames_relayed_total 77",
		"apiary_noc_msgs_delivered_total 30",
		"apiary_board_delivered{board=\"0\"} 10",
		"apiary_board_delivered{board=\"1\"} 20",
		"apiary_fleet_events_total 3",
		"apiary_service_served_total{service=\"kv\"} 42",
		"apiary_service_rpc_cycles{service=\"kv\",quantile=\"0.99\"}",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("fleet prom missing %q:\n%s", want, text)
		}
	}
}

func TestRecorderForcedSamplingForTraces(t *testing.T) {
	rec := NewRecorder(1_000_000, 16) // effectively never samples by counter
	m := &msg.Message{Type: msg.TRequest}
	if rec.Sample(1, 2, m) {
		t.Fatal("untraced message sampled at 1-in-1e6")
	}
	m.Trace = msg.TraceCtx{ID: 0xABCD, Span: 1, Origin: 3}
	if !rec.Sample(1, 2, m) {
		t.Fatal("traced message must always be sampled")
	}
	// Disabled recorder still never samples: tracing is tied to span
	// recording being on.
	off := NewRecorder(0, 16)
	if off.Sample(1, 2, m) {
		t.Fatal("disabled recorder sampled a message")
	}
}

func TestSummaryEmptyAndSingleSpan(t *testing.T) {
	rec := NewRecorder(4, 16)
	s := rec.Summary()
	if !strings.Contains(s, "0 spans") || strings.Contains(s, "p50 breakdown") {
		t.Fatalf("empty summary = %q", s)
	}

	sp := &noc.Span{
		Src: 1, Dst: 2, Type: msg.TRequest, Seq: 7,
		Queued: 100, Eject: 130,
		Hops: []noc.SpanHop{{Arrive: 104, Grant: 106, Depart: 109}},
	}
	rec.Complete(sp)
	s = rec.Summary()
	if !strings.Contains(s, "p50 breakdown") || !strings.Contains(s, "p99 breakdown") {
		t.Fatalf("single-span summary missing breakdowns:\n%s", s)
	}
	bd := SpanBreakdown(sp)
	if bd.Total != 30 || bd.NIQueue != 4 || bd.VCWait != 2 || bd.SwitchWait != 3 || bd.Hops != 1 {
		t.Fatalf("breakdown = %+v", bd)
	}
	empty := SpanBreakdown(&noc.Span{Queued: 5, Eject: 5})
	if empty.Total != 0 || empty.NIQueue != 0 || empty.Hops != 0 {
		t.Fatalf("hopless breakdown = %+v", empty)
	}
}

func TestExportFleetChrome(t *testing.T) {
	tc := msg.TraceCtx{ID: 0xBEEF, Span: 1, Origin: 0}
	boards := []BoardSpans{
		{Board: 0, Entries: []Entry{
			{Span: &noc.Span{Src: 3, Dst: 2, Type: msg.TNetSend, Seq: 0,
				Queued: 10, Eject: 20, Trace: tc}},
			{Span: &noc.Span{Src: 1, Dst: 2, Type: msg.TRequest, Seq: 5,
				Queued: 1, Eject: 4}}, // untraced: must not appear
		}},
		{Board: 1, Entries: []Entry{
			{Span: &noc.Span{Src: 2, Dst: 4, Type: msg.TNetRecv, Seq: 0,
				Queued: 530, Eject: 540, Trace: tc}},
		}},
	}
	links := []LinkHop{{Trace: tc, SrcBoard: 0, DstBoard: 1, Depart: 20, Arrive: 520}}
	var buf bytes.Buffer
	if err := ExportFleetChrome(&buf, boards, links, []sim.Cycle{500, 1000}, 1); err != nil {
		t.Fatal(err)
	}
	var spans []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &spans); err != nil {
		t.Fatalf("fleet chrome not valid JSON: %v", err)
	}
	var metaRows, traced, linkSpans, instants int
	pids := map[float64]bool{}
	for _, sp := range spans {
		switch sp["ph"] {
		case "M":
			metaRows++
		case "i":
			instants++
			if sp["s"] != "p" {
				t.Fatalf("epoch instant scope = %v, want p", sp["s"])
			}
		case "X":
			args, _ := sp["args"].(map[string]any)
			if args["trace"] == "000000000000beef" {
				if sp["cat"] == "cluster" {
					linkSpans++
				} else {
					traced++
					pids[sp["pid"].(float64)] = true
				}
			}
		}
	}
	if metaRows != 3 { // 2 boards + cluster row
		t.Fatalf("metadata rows = %d, want 3", metaRows)
	}
	if traced != 2 || len(pids) != 2 {
		t.Fatalf("traced spans = %d across %d boards, want 2 across 2", traced, len(pids))
	}
	if linkSpans != 1 {
		t.Fatalf("cluster-link spans = %d, want 1", linkSpans)
	}
	if instants != 2 {
		t.Fatalf("epoch instants = %d, want 2", instants)
	}
}
