package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// chromeSpan is one Chrome trace-event duration record ("ph":"X"). Perfetto
// and chrome://tracing both load a bare JSON array of these. Timestamps and
// durations are microseconds; we map cycles onto microseconds through the
// engine clock so the timeline reads in real units.
type chromeSpan struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	S    string         `json:"s,omitempty"` // instant-event scope ("p"/"t"/"g")
	Args map[string]any `json:"args,omitempty"`
}

// writeChrome encodes a trace-event array.
func writeChrome(w io.Writer, spans []chromeSpan) error {
	return json.NewEncoder(w).Encode(spans)
}

// ExportChromeSpans writes the recorder entries as Chrome trace-event
// duration spans: per sampled message a whole-lifetime slice, a source-NI
// queue slice and one slice per router hop, nested on the same track. Tracks
// (pid = source tile, tid = entry index) keep concurrent messages from the
// same tile on separate rows. cyclesPerUs scales cycles to microseconds; it
// is usually the engine clock in MHz (pass 1 to read raw cycles as µs).
func ExportChromeSpans(w io.Writer, entries []Entry, cyclesPerUs float64) error {
	if cyclesPerUs <= 0 {
		cyclesPerUs = 1
	}
	us := func(cy float64) float64 { return cy / cyclesPerUs }
	spans := []chromeSpan{} // non-nil so an empty recorder still emits []
	for i, e := range entries {
		sp := e.Span
		pid, tid := int(sp.Src), i
		kind := "req"
		if e.Reply {
			kind = "reply"
		}
		bd := SpanBreakdown(sp)
		args := map[string]any{
			"type": sp.Type.String(), "vc": int(sp.VC), "bytes": sp.Bytes,
			"flits": sp.Flits, "latency_cy": float64(bd.Total),
			"ni_queue_cy": float64(bd.NIQueue), "vc_wait_cy": float64(bd.VCWait),
			"switch_wait_cy": float64(bd.SwitchWait),
		}
		if e.Req != nil {
			// Service handling between request ejection and reply injection.
			args["service_cy"] = float64(sp.Queued - e.Req.Eject)
		}
		spans = append(spans, chromeSpan{
			Name: fmt.Sprintf("%s %d→%d seq=%d", kind, sp.Src, sp.Dst, sp.Seq),
			Cat:  "noc", Ph: "X",
			TS: us(float64(sp.Queued)), Dur: us(float64(sp.Eject - sp.Queued)),
			PID: pid, TID: tid, Args: args,
		})
		if w := sp.InjectWait(); w > 0 {
			spans = append(spans, chromeSpan{
				Name: "ni-queue", Cat: "noc", Ph: "X",
				TS: us(float64(sp.Queued)), Dur: us(float64(w)),
				PID: pid, TID: tid,
			})
		}
		for _, h := range sp.Hops {
			spans = append(spans, chromeSpan{
				Name: fmt.Sprintf("hop %s→%s", h.At, h.Out),
				Cat:  "noc", Ph: "X",
				TS: us(float64(h.Arrive)), Dur: us(float64(h.Depart - h.Arrive)),
				PID: pid, TID: tid,
				Args: map[string]any{
					"in":         h.In.String(),
					"vc_wait_cy": float64(h.Grant - h.Arrive),
					"sw_wait_cy": float64(h.Depart - h.Grant),
				},
			})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(spans)
}
