package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"apiary/internal/msg"
	"apiary/internal/noc"
)

// heatShades maps normalized load to a glyph, cold to hot.
const heatShades = " .:-=+*#%@"

// tileLoad aggregates link flits per source tile: a tile is "hot" when its
// router is forwarding lots of flits, whatever the direction.
func tileLoad(dims noc.Dims, links []noc.LinkLoad) []uint64 {
	load := make([]uint64, dims.W*dims.H)
	for _, l := range links {
		load[int(dims.TileID(l.From))] += l.Flits
	}
	return load
}

// windowLinks converts a Snapshot's windowed deltas into LinkLoads so the
// renderers can take either cumulative or windowed input.
func windowLinks(s *Snapshot) []noc.LinkLoad {
	out := make([]noc.LinkLoad, len(s.Links))
	for i, l := range s.Links {
		out[i] = noc.LinkLoad{From: l.From, Out: l.Out, Flits: l.Flits}
	}
	return out
}

// WriteHeatmap renders an ASCII NoC heatmap of per-tile forwarded flits.
// With a non-nil snapshot it shows the last window's deltas; otherwise the
// network's cumulative counters. One glyph per tile, row 0 at the top, with
// a legend and the hottest link called out. Quarantined tiles (nil when the
// caller has no fault state) render as 'X' regardless of load; degraded
// tiles (contained faults, still serving) render as '!'.
func WriteHeatmap(w io.Writer, net *noc.Network, s *Snapshot, quarantined, degraded []msg.TileID) {
	dims := net.Dims()
	var links []noc.LinkLoad
	if s != nil {
		links = windowLinks(s)
		fmt.Fprintf(w, "NoC heatmap: window of %d cycles ending at cycle %d\n", s.Window, s.Cycle)
	} else {
		links = net.LinkUtilization()
		fmt.Fprintf(w, "NoC heatmap: cumulative\n")
	}
	quar := make(map[msg.TileID]bool, len(quarantined))
	for _, t := range quarantined {
		quar[t] = true
	}
	degr := make(map[msg.TileID]bool, len(degraded))
	for _, t := range degraded {
		degr[t] = true
	}
	load := tileLoad(dims, links)
	var max uint64
	for _, v := range load {
		if v > max {
			max = v
		}
	}
	for y := 0; y < dims.H; y++ {
		var row strings.Builder
		for x := 0; x < dims.W; x++ {
			if t := dims.TileID(noc.Coord{X: x, Y: y}); quar[t] || degr[t] {
				if quar[t] {
					row.WriteByte('X')
				} else {
					row.WriteByte('!')
				}
				row.WriteByte(' ')
				continue
			}
			v := load[y*dims.W+x]
			shade := 0
			if max > 0 && v > 0 {
				shade = 1 + int(uint64(len(heatShades)-2)*v/max)
			}
			row.WriteByte(heatShades[shade])
			row.WriteByte(' ')
		}
		fmt.Fprintf(w, "  %s\n", strings.TrimRight(row.String(), " "))
	}
	fmt.Fprintf(w, "scale: ' '=0 '@'=%d flits/tile\n", max)
	if len(quarantined) > 0 {
		fmt.Fprintf(w, "quarantined tiles ('X'): %v\n", quarantined)
	}
	if len(degraded) > 0 {
		fmt.Fprintf(w, "degraded tiles ('!'): %v\n", degraded)
	}
	var hottest noc.LinkLoad
	for _, l := range links {
		if l.Out != noc.Local && l.Flits > hottest.Flits {
			hottest = l
		}
	}
	if hottest.Flits > 0 {
		fmt.Fprintf(w, "hottest link: %s->%s %d flits\n", hottest.From, hottest.Out, hottest.Flits)
	}
	if s != nil {
		fmt.Fprintf(w, "window: sent=%d delivered=%d denied=%d rate_drops=%d shed=%d inflight=%d tiles_busy=%d/%d vc_occ=%v\n",
			s.Sent, s.Delivered, s.Denied, s.RateDrops, s.Shed, s.InFlight, s.TilesBusy, s.Tiles, s.VCOcc)
	}
}

// heatmapJSON is the machine-readable heatmap document.
type heatmapJSON struct {
	Cycle       uint64     `json:"cycle,omitempty"`
	Window      uint64     `json:"window_cycles,omitempty"`
	W           int        `json:"w"`
	H           int        `json:"h"`
	TileLoad    []uint64   `json:"tile_flits"` // row-major, W*H entries
	Quarantined []uint16   `json:"quarantined,omitempty"`
	Degraded    []uint16   `json:"degraded,omitempty"`
	Links       []linkJSON `json:"links"`
}

type linkJSON struct {
	X     int    `json:"x"`
	Y     int    `json:"y"`
	Port  string `json:"port"`
	Flits uint64 `json:"flits"`
}

// WriteHeatmapJSON is WriteHeatmap's JSON twin for dashboards.
func WriteHeatmapJSON(w io.Writer, net *noc.Network, s *Snapshot, quarantined, degraded []msg.TileID) error {
	dims := net.Dims()
	var links []noc.LinkLoad
	doc := heatmapJSON{W: dims.W, H: dims.H}
	for _, t := range quarantined {
		doc.Quarantined = append(doc.Quarantined, uint16(t))
	}
	for _, t := range degraded {
		doc.Degraded = append(doc.Degraded, uint16(t))
	}
	if s != nil {
		links = windowLinks(s)
		doc.Cycle, doc.Window = uint64(s.Cycle), uint64(s.Window)
	} else {
		links = net.LinkUtilization()
	}
	doc.TileLoad = tileLoad(dims, links)
	doc.Links = make([]linkJSON, 0, len(links))
	for _, l := range links {
		doc.Links = append(doc.Links, linkJSON{
			X: l.From.X, Y: l.From.Y, Port: l.Out.String(), Flits: l.Flits,
		})
	}
	return json.NewEncoder(w).Encode(doc)
}
