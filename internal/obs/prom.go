package obs

import (
	"fmt"
	"io"
	"strings"

	"apiary/internal/sim"
)

// promName sanitizes a sim.Stats metric name into a legal Prometheus metric
// name: dots and dashes become underscores and everything gets the apiary_
// namespace prefix.
func promName(name string) string {
	r := strings.NewReplacer(".", "_", "-", "_", " ", "_")
	return "apiary_" + r.Replace(name)
}

// ServiceHealth is one replica's row in the exported service directory —
// an obs-side mirror of the kernel's directory entry, kept free of core
// types so the dependency points kernel→obs only.
type ServiceHealth struct {
	Group   uint16 // the virtual group service clients connect to
	Svc     uint16 // this member's own service
	Tile    uint16
	Health  uint8 // 0 up, 1 degraded, 2 quarantined
	State   string
	Primary bool
}

// WriteProm renders the whole metrics surface in Prometheus text exposition
// format (version 0.0.4): every sim.Stats counter as a counter, every
// histogram as a summary (quantiles + _sum + _count), the engine clock, the
// replica-group service directory, and the latest window snapshot as
// gauges. now/clockMHz come from the engine; dir (may be nil) from the
// kernel's Directory.
func WriteProm(w io.Writer, now sim.Cycle, clockMHz uint64, st *sim.Stats, wins *Windows, rec *Recorder, dir []ServiceHealth) {
	fmt.Fprintf(w, "# HELP apiary_cycle Current simulation cycle.\n# TYPE apiary_cycle gauge\napiary_cycle %d\n", now)
	if clockMHz > 0 {
		fmt.Fprintf(w, "# HELP apiary_clock_mhz Modeled fabric clock.\n# TYPE apiary_clock_mhz gauge\napiary_clock_mhz %d\n", clockMHz)
	}
	for _, c := range st.Counters() {
		n := promName(c.Name)
		fmt.Fprintf(w, "# TYPE %s_total counter\n%s_total %d\n", n, n, c.Value())
	}
	for _, h := range st.Histograms() {
		if h.Count() == 0 {
			continue
		}
		n := promName(h.Name)
		fmt.Fprintf(w, "# TYPE %s summary\n", n)
		for _, q := range []float64{0.5, 0.9, 0.99} {
			fmt.Fprintf(w, "%s{quantile=\"%g\"} %g\n", n, q, h.Quantile(q))
		}
		fmt.Fprintf(w, "%s_sum %g\n%s_count %d\n", n, h.Sum(), n, h.Count())
	}
	if rec != nil {
		fmt.Fprintf(w, "# TYPE apiary_spans_recorded_total counter\napiary_spans_recorded_total %d\n", rec.Total())
		fmt.Fprintf(w, "# TYPE apiary_spans_correlated_total counter\napiary_spans_correlated_total %d\n", rec.Correlated())
	}
	if len(dir) > 0 {
		fmt.Fprintf(w, "# HELP apiary_replica_health Replica health (0 up, 1 degraded, 2 quarantined).\n# TYPE apiary_replica_health gauge\n")
		for _, r := range dir {
			primary := 0
			if r.Primary {
				primary = 1
			}
			fmt.Fprintf(w, "apiary_replica_health{group=\"%d\",svc=\"%d\",tile=\"%d\",state=\"%s\",primary=\"%d\"} %d\n",
				r.Group, r.Svc, r.Tile, r.State, primary, r.Health)
		}
	}
	s := wins.Latest()
	if s == nil {
		return
	}
	fmt.Fprintf(w, "# HELP apiary_window_cycles Width of the telemetry window.\n# TYPE apiary_window_cycles gauge\napiary_window_cycles %d\n", s.Window)
	fmt.Fprintf(w, "# TYPE apiary_window_inflight gauge\napiary_window_inflight %d\n", s.InFlight)
	fmt.Fprintf(w, "# TYPE apiary_window_tiles_busy gauge\napiary_window_tiles_busy %d\n", s.TilesBusy)
	fmt.Fprintf(w, "# TYPE apiary_window_tiles gauge\napiary_window_tiles %d\n", s.Tiles)
	for _, g := range []struct {
		name string
		v    uint64
	}{
		{"apiary_window_msgs_sent", s.Sent},
		{"apiary_window_msgs_delivered", s.Delivered},
		{"apiary_window_mon_denied", s.Denied},
		{"apiary_window_mon_rate_drops", s.RateDrops},
		{"apiary_window_mon_forwarded", s.Forwarded},
		{"apiary_window_mon_faults", s.Faults},
		{"apiary_window_faults_injected", s.Injected},
		{"apiary_window_shed", s.Shed},
		{"apiary_window_failovers", s.Failovers},
		{"apiary_window_breaker_opens", s.BreakerOpens},
		{"apiary_window_express_hits", s.ExpressHits},
		{"apiary_window_express_materialized", s.ExpressMaterialized},
	} {
		fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", g.name, g.name, g.v)
	}
	fmt.Fprintf(w, "# TYPE apiary_window_vc_occupancy gauge\n")
	for vc, occ := range s.VCOcc {
		fmt.Fprintf(w, "apiary_window_vc_occupancy{vc=\"%d\"} %d\n", vc, occ)
	}
	if len(s.Links) > 0 {
		fmt.Fprintf(w, "# TYPE apiary_window_link_flits gauge\n")
		for _, l := range s.Links {
			fmt.Fprintf(w, "apiary_window_link_flits{from=\"%d,%d\",port=\"%s\"} %d\n",
				l.From.X, l.From.Y, l.Out, l.Flits)
		}
	}
}
