// Package obs is Apiary's observability plane: a message flight recorder
// built on the NoC's sampled lifecycle spans, a windowed time-series sampler
// over links/VCs/tiles/monitor verdicts, an ASCII/JSON NoC heatmap, and
// Prometheus text-format exposition of every sim.Stats metric. It fills in
// the paper's Programmability promise of "debugging and tracing support at
// the message passing layer" with the telemetry a production serving stack
// expects: where did a message spend its cycles, which link is hot, what is
// the denial rate — live, from a running apiaryd.
//
// Everything here is observation only. The recorder never touches
// simulation state, so runs with telemetry enabled are bit-identical to
// runs without it, serial or parallel (TestObsDifferential proves this).
package obs

import (
	"fmt"
	"sort"
	"strings"

	"apiary/internal/msg"
	"apiary/internal/noc"
	"apiary/internal/sim"
)

// Entry is one retained flight-recorder span. For reply-class spans whose
// request was also sampled, Req points at the request span, which is what
// end-to-end RPC breakdowns (service time between request ejection and reply
// injection) are computed from.
type Entry struct {
	Span  *noc.Span
	Reply bool
	Req   *noc.Span // correlated request, nil if unknown
}

// corrKey identifies an outstanding sampled request: the requester tile and
// the RPC sequence number its reply will echo.
type corrKey struct {
	tile msg.TileID
	seq  uint32
}

// Recorder is the message flight recorder. It implements noc.SpanSampler:
// Sample picks 1-in-every packets per NI (by the NI's deterministic packet
// counter) plus every reply whose request was sampled; Complete files
// finished spans into a bounded ring and correlates replies with their
// requests via (requester tile, seq).
//
// Concurrency/determinism contract (see noc.SpanSampler): Sample runs inside
// the tick phase, possibly on shard workers, and only reads — the pending
// table it consults is written exclusively by Complete, which the NoC calls
// during the commit phase on the main goroutine in global tile order. The
// ring contents are therefore identical across serial and parallel runs.
type Recorder struct {
	every   int
	ring    []Entry
	cap     int
	next    int
	full    bool
	total   uint64
	correl  uint64
	pending map[corrKey]*noc.Span
	pendQ   []corrKey // FIFO of live keys, bounds the pending table
	pendCap int
}

// DefaultSpanCap is the default ring capacity.
const DefaultSpanCap = 4096

// NewRecorder samples one in every packets (every <= 0 records nothing) and
// retains at most capacity completed spans.
func NewRecorder(every, capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultSpanCap
	}
	return &Recorder{
		every:   every,
		cap:     capacity,
		pending: make(map[corrKey]*noc.Span),
		pendCap: 1024,
	}
}

// Sample implements noc.SpanSampler. Requests (and any non-reply class) are
// sampled by the NI's packet counter; replies are sampled iff their request
// was, so every sampled RPC yields a correlatable pair.
func (r *Recorder) Sample(src msg.TileID, pktID uint64, m *msg.Message) bool {
	if r == nil || r.every <= 0 {
		return false
	}
	// Messages carrying a distributed-trace context are always sampled: a
	// fleet trace is stitched from per-board recorder entries, so every hop
	// of a traced request must produce a span. The check is read-only and
	// deterministic (the context is assigned by the originating proxy's own
	// counter), so it preserves the tick-phase contract.
	if m.Trace.Valid() {
		return true
	}
	if noc.ClassVC(m.Type) == noc.VCReply {
		_, ok := r.pending[corrKey{m.DstTile, m.Seq}]
		return ok
	}
	// NI packet IDs start at 1; anchoring the phase there means each NI's
	// first packet is sampled, so short runs still produce spans.
	return pktID%uint64(r.every) == 1 || r.every == 1
}

// Complete implements noc.SpanSampler: file a finished span, correlating
// replies and registering requests for future correlation. Runs only in the
// commit phase (main goroutine, tile order).
func (r *Recorder) Complete(sp *noc.Span) {
	if r == nil {
		return
	}
	r.total++
	ent := Entry{Span: sp}
	switch noc.ClassVC(sp.Type) {
	case noc.VCReply:
		ent.Reply = true
		k := corrKey{sp.Dst, sp.Seq}
		if req, ok := r.pending[k]; ok {
			ent.Req = req
			r.correl++
			delete(r.pending, k)
		}
	case noc.VCReq:
		k := corrKey{sp.Src, sp.Seq}
		if _, dup := r.pending[k]; !dup {
			r.evictPending()
			r.pending[k] = sp
			r.pendQ = append(r.pendQ, k)
		}
	}
	if len(r.ring) < r.cap {
		r.ring = append(r.ring, ent)
		return
	}
	r.full = true
	r.ring[r.next] = ent
	r.next = (r.next + 1) % r.cap
}

// evictPending drops the oldest live pending request once the table is
// full. Keys already correlated (deleted from the map) are skipped lazily.
func (r *Recorder) evictPending() {
	for len(r.pending) >= r.pendCap && len(r.pendQ) > 0 {
		k := r.pendQ[0]
		r.pendQ = r.pendQ[1:]
		delete(r.pending, k)
	}
	// Compact the queue when it is dominated by stale keys.
	if len(r.pendQ) > 4*r.pendCap {
		live := r.pendQ[:0]
		for _, k := range r.pendQ {
			if _, ok := r.pending[k]; ok {
				live = append(live, k)
			}
		}
		r.pendQ = live
	}
}

// Total reports how many spans completed (including evicted ones).
func (r *Recorder) Total() uint64 {
	if r == nil {
		return 0
	}
	return r.total
}

// Correlated reports how many reply spans were matched to their request.
func (r *Recorder) Correlated() uint64 {
	if r == nil {
		return 0
	}
	return r.correl
}

// Every reports the sampling period (0 = disabled).
func (r *Recorder) Every() int {
	if r == nil {
		return 0
	}
	return r.every
}

// Entries returns the retained spans oldest-first.
func (r *Recorder) Entries() []Entry {
	if r == nil {
		return nil
	}
	if !r.full {
		return append([]Entry(nil), r.ring...)
	}
	out := make([]Entry, 0, r.cap)
	out = append(out, r.ring[r.next:]...)
	out = append(out, r.ring[:r.next]...)
	return out
}

// Breakdown decomposes a span's end-to-end latency into pipeline stages.
// Stage identities: NIQueue is source-NI queueing before injection; VCWait
// sums Grant-Arrive over hops (VC allocation wait, which includes the
// one-cycle link/buffer pipeline per hop); SwitchWait sums Depart-Grant
// (switch arbitration). The three cover the whole latency for a completed
// span, because the link traversal into hop i+1 is stamped at hop i's
// Depart cycle.
type Breakdown struct {
	Total      sim.Cycle
	NIQueue    sim.Cycle
	VCWait     sim.Cycle
	SwitchWait sim.Cycle
	Hops       int
	// SlowestHop is the hop with the largest Arrive→Depart residency, the
	// span's congestion point.
	SlowestHop     noc.SpanHop
	SlowestHopWait sim.Cycle
}

// SpanBreakdown computes the per-stage decomposition of sp.
func SpanBreakdown(sp *noc.Span) Breakdown {
	b := Breakdown{Total: sp.Latency(), NIQueue: sp.InjectWait(), Hops: len(sp.Hops)}
	for i := range sp.Hops {
		h := &sp.Hops[i]
		b.VCWait += h.Grant - h.Arrive
		b.SwitchWait += h.Depart - h.Grant
		if wait := h.Depart - h.Arrive; wait > b.SlowestHopWait {
			b.SlowestHopWait = wait
			b.SlowestHop = *h
		}
	}
	return b
}

// hopLink renders the slowest hop as the directed link it fed, e.g.
// "(2,1)->east".
func hopLink(h noc.SpanHop) string {
	return fmt.Sprintf("%s->%s", h.At, h.Out)
}

// Summary renders the flight recorder's critical-path view: sampling state,
// correlation counts, and the latency breakdown of the p50 and p99 spans —
// the "where did my message spend its cycles" answer.
func (r *Recorder) Summary() string {
	var b strings.Builder
	ents := r.Entries()
	fmt.Fprintf(&b, "flight recorder: %d spans (1-in-%d sampling), %d retained, %d replies correlated\n",
		r.Total(), r.Every(), len(ents), r.Correlated())
	if len(ents) == 0 {
		return b.String()
	}
	byLat := make([]*noc.Span, len(ents))
	for i, e := range ents {
		byLat[i] = e.Span
	}
	sort.Slice(byLat, func(i, j int) bool { return byLat[i].Latency() < byLat[j].Latency() })
	for _, q := range []struct {
		name string
		f    float64
	}{{"p50", 0.5}, {"p99", 0.99}} {
		sp := byLat[int(q.f*float64(len(byLat)-1))]
		bd := SpanBreakdown(sp)
		fmt.Fprintf(&b, "%s breakdown (%s %d->%d seq=%d): %dcy total = %dcy ni-queue + %dcy vc-wait + %dcy switch-wait over %d hops",
			q.name, sp.Type, sp.Src, sp.Dst, sp.Seq,
			bd.Total, bd.NIQueue, bd.VCWait, bd.SwitchWait, bd.Hops)
		if bd.Hops > 0 {
			fmt.Fprintf(&b, "; %dcy congestion on link %s", bd.SlowestHopWait, hopLink(bd.SlowestHop))
		}
		b.WriteByte('\n')
	}
	if r.Correlated() > 0 {
		// Service-time view over correlated RPC pairs.
		var svc []float64
		for _, e := range ents {
			if e.Req != nil {
				svc = append(svc, float64(e.Span.Queued-e.Req.Eject))
			}
		}
		if len(svc) > 0 {
			sort.Float64s(svc)
			fmt.Fprintf(&b, "service handling (reply queued - request ejected): p50=%.0fcy p99=%.0fcy over %d RPCs\n",
				svc[len(svc)/2], svc[int(0.99*float64(len(svc)-1))], len(svc))
		}
	}
	return b.String()
}
