package obs

import (
	"fmt"
	"io"

	"apiary/internal/msg"
	"apiary/internal/sim"
)

// LinkHop is one traced frame's traversal of the cluster link, recorded by
// the fleet coordinator during the epoch-barrier frame exchange. It is the
// cross-board edge of a stitched trace: the span tree shows the request
// leaving one board, spending Depart..Arrive on the inter-board link, and
// continuing on the destination board.
type LinkHop struct {
	Trace    msg.TraceCtx
	SrcBoard int
	DstBoard int
	Depart   sim.Cycle // when the frame left the source board (send cycle)
	Arrive   sim.Cycle // when it is injected into the destination fabric
}

// BoardSpans is one board's recorder entries tagged with its board ID, the
// per-board input to the merged fleet export.
type BoardSpans struct {
	Board   int
	Entries []Entry
}

// clusterPID is the synthetic "process" row the merged timeline uses for
// cluster-link hops and epoch markers, kept clear of real board IDs.
const clusterPID = 1 << 16

// ExportFleetChrome writes a merged multi-board Chrome/Perfetto timeline:
// one process row per board (named via metadata events), a dedicated
// cluster-link row, and epoch-barrier instant markers. Only spans that
// carry a trace context are exported — the merged view is the distributed
// story; per-board hop detail stays in ExportChromeSpans. Spans of one
// trace share a tid lane, so a stitched request reads top-to-bottom across
// the boards it visited. cyclesPerUs is the engine clock in MHz.
func ExportFleetChrome(w io.Writer, boards []BoardSpans, links []LinkHop,
	barriers []sim.Cycle, cyclesPerUs float64) error {
	if cyclesPerUs <= 0 {
		cyclesPerUs = 1
	}
	us := func(cy float64) float64 { return cy / cyclesPerUs }

	// Stable lane assignment: one tid per trace ID, first seen wins. Inputs
	// are deterministic (recorder rings in board order, link log in exchange
	// order), so lanes are too.
	lanes := make(map[uint64]int)
	lane := func(id uint64) int {
		if l, ok := lanes[id]; ok {
			return l
		}
		l := len(lanes)
		lanes[id] = l
		return l
	}

	spans := []chromeSpan{} // non-nil so an empty fleet still emits []
	for _, b := range boards {
		spans = append(spans, chromeSpan{
			Name: "process_name", Ph: "M", PID: b.Board,
			Args: map[string]any{"name": fmt.Sprintf("board %d", b.Board)},
		})
	}
	spans = append(spans, chromeSpan{
		Name: "process_name", Ph: "M", PID: clusterPID,
		Args: map[string]any{"name": "cluster link"},
	})

	for _, b := range boards {
		for _, e := range b.Entries {
			sp := e.Span
			if !sp.Trace.Valid() {
				continue
			}
			kind := "req"
			if e.Reply {
				kind = "reply"
			}
			bd := SpanBreakdown(sp)
			args := map[string]any{
				"trace":        fmt.Sprintf("%016x", sp.Trace.ID),
				"origin_board": int(sp.Trace.Origin),
				"type":         sp.Type.String(),
				"latency_cy":   float64(bd.Total),
				"ni_queue_cy":  float64(bd.NIQueue),
			}
			spans = append(spans, chromeSpan{
				Name: fmt.Sprintf("%s %d→%d seq=%d", kind, sp.Src, sp.Dst, sp.Seq),
				Cat:  "fleet", Ph: "X",
				TS: us(float64(sp.Queued)), Dur: us(float64(sp.Eject - sp.Queued)),
				PID: b.Board, TID: lane(sp.Trace.ID), Args: args,
			})
		}
	}

	for _, lh := range links {
		spans = append(spans, chromeSpan{
			Name: fmt.Sprintf("cluster-link b%d→b%d", lh.SrcBoard, lh.DstBoard),
			Cat:  "cluster", Ph: "X",
			TS: us(float64(lh.Depart)), Dur: us(float64(lh.Arrive - lh.Depart)),
			PID: clusterPID, TID: lane(lh.Trace.ID),
			Args: map[string]any{
				"trace":      fmt.Sprintf("%016x", lh.Trace.ID),
				"src_board":  lh.SrcBoard,
				"dst_board":  lh.DstBoard,
				"latency_cy": float64(lh.Arrive - lh.Depart),
			},
		})
	}

	for _, bc := range barriers {
		spans = append(spans, chromeSpan{
			Name: "epoch-barrier", Cat: "cluster", Ph: "i",
			TS: us(float64(bc)), PID: clusterPID, TID: 0, S: "p",
		})
	}
	return writeChrome(w, spans)
}
