package obs

import (
	"fmt"
	"io"
	"sort"

	"apiary/internal/sim"
)

// Source is one board's observability surface as seen by the fleet
// Aggregator. The aggregator only ever reads these at epoch barriers (or
// after the fleet is closed), where the cluster's WaitGroup barrier gives a
// happens-before edge over every board goroutine — the same edge the frame
// exchange itself relies on — so no locking is needed and reads are
// race-free and deterministic.
type Source struct {
	Board  int
	Stats  *sim.Stats
	Wins   *Windows
	Rec    *Recorder
	Events *EventLog
}

// Pulse is the aggregator's cheap per-epoch sample: per-board delivered
// deltas (the dashboard heat strip) and the barrier cycle. Heavy work
// (histogram merging, Prometheus rendering) happens on demand, not per
// epoch, so the pulse is what bounds the aggregator's steady-state cost.
type Pulse struct {
	Cycle     sim.Cycle `json:"cycle"`
	Delivered []uint64  `json:"delivered"` // per-board delta this epoch
}

// DefaultPulseKeep bounds the pulse ring.
const DefaultPulseKeep = 4096

// Aggregator federates per-board metrics into fleet-level views: summed
// counters, order-stable merged histograms, a merged decision log, and
// Prometheus text for the whole fleet. It holds no locks; see Source for
// the synchronization argument.
type Aggregator struct {
	sources []Source
	fleet   *EventLog // orchestrator-level decisions (board -1)

	pulses    []Pulse
	pulseKeep int
	pulseNext int
	pulseFull bool
	epochs    uint64
	prevDeliv []uint64
}

// NewAggregator returns an empty aggregator with a fleet-level event log.
func NewAggregator() *Aggregator {
	return &Aggregator{
		fleet:     NewEventLog(0),
		pulseKeep: DefaultPulseKeep,
	}
}

// AddSource registers one board. Call during fleet construction, before any
// epoch runs.
func (a *Aggregator) AddSource(s Source) {
	a.sources = append(a.sources, s)
	a.prevDeliv = append(a.prevDeliv, 0)
}

// Sources reports the registered boards in registration order.
func (a *Aggregator) Sources() []Source { return a.sources }

// FleetEvents is the orchestrator-level decision log.
func (a *Aggregator) FleetEvents() *EventLog { return a.fleet }

// Pulse takes the cheap per-epoch sample. Called by the fleet coordinator
// at each epoch barrier (between epochs, all board goroutines parked).
func (a *Aggregator) Pulse(now sim.Cycle) {
	a.epochs++
	p := Pulse{Cycle: now, Delivered: make([]uint64, len(a.sources))}
	for i, s := range a.sources {
		v := s.Stats.Counter("noc.msgs_delivered").Value()
		p.Delivered[i] = v - a.prevDeliv[i]
		a.prevDeliv[i] = v
	}
	if len(a.pulses) < a.pulseKeep {
		a.pulses = append(a.pulses, p)
		return
	}
	a.pulseFull = true
	a.pulses[a.pulseNext] = p
	a.pulseNext = (a.pulseNext + 1) % a.pulseKeep
}

// Epochs reports how many barrier pulses have fired.
func (a *Aggregator) Epochs() uint64 { return a.epochs }

// Pulses returns the retained pulses oldest-first.
func (a *Aggregator) Pulses() []Pulse {
	if !a.pulseFull {
		return append([]Pulse(nil), a.pulses...)
	}
	out := make([]Pulse, 0, a.pulseKeep)
	out = append(out, a.pulses[a.pulseNext:]...)
	out = append(out, a.pulses[:a.pulseNext]...)
	return out
}

// MergedCounter is one fleet-wide counter: the sum across boards.
type MergedCounter struct {
	Name  string
	Value uint64
}

// MergedCounters sums every counter name across boards. Order is
// deterministic: first-seen creation order walking boards 0..N-1.
func (a *Aggregator) MergedCounters() []MergedCounter {
	idx := make(map[string]int)
	var out []MergedCounter
	for _, s := range a.sources {
		for _, c := range s.Stats.Counters() {
			i, ok := idx[c.Name]
			if !ok {
				i = len(out)
				idx[c.Name] = i
				out = append(out, MergedCounter{Name: c.Name})
			}
			out[i].Value += c.Value()
		}
	}
	return out
}

// MergedHistograms merges every histogram name across boards, always in
// board order 0..N-1 so the one order-sensitive reduction (the float sum)
// is bit-stable run to run. Returned in first-seen creation order.
func (a *Aggregator) MergedHistograms() []*sim.Histogram {
	idx := make(map[string]int)
	var out []*sim.Histogram
	for _, s := range a.sources {
		for _, h := range s.Stats.Histograms() {
			i, ok := idx[h.Name]
			if !ok {
				i = len(out)
				idx[h.Name] = i
				out = append(out, &sim.Histogram{Name: h.Name})
			}
			out[i].Merge(h)
		}
	}
	return out
}

// MergedHistogram merges one histogram name across boards (nil if no board
// has it).
func (a *Aggregator) MergedHistogram(name string) *sim.Histogram {
	var out *sim.Histogram
	for _, s := range a.sources {
		for _, h := range s.Stats.Histograms() {
			if h.Name != name {
				continue
			}
			if out == nil {
				out = &sim.Histogram{Name: name}
			}
			out.Merge(h)
		}
	}
	return out
}

// MergedEvents interleaves every board's decision log with the fleet-level
// log into one (cycle, board)-sorted timeline.
func (a *Aggregator) MergedEvents() []Event {
	logs := []*EventLog{a.fleet}
	boards := []int{-1}
	for _, s := range a.sources {
		logs = append(logs, s.Events)
		boards = append(boards, s.Board)
	}
	return MergeEvents(logs, boards)
}

// ServiceRollup is a per-service fleet-level summary: goodput (replies
// served by the service's bridges) and client-observed RPC latency
// quantiles, both summed/merged across every board hosting a replica.
type ServiceRollup struct {
	Name     string  `json:"name"`
	Served   uint64  `json:"served"`
	RPCs     int     `json:"rpcs"`
	P50      float64 `json:"p50_cy"`
	P99      float64 `json:"p99_cy"`
	MeanCy   float64 `json:"mean_cy"`
	Replicas int     `json:"replicas"`
}

// Per-service metric naming convention shared between the cluster wiring
// (which creates the counters/histograms) and the rollup (which reads
// them): ServiceServedCounter counts replies a service's gateway bridges
// returned; ServiceRPCHist is the client-proxy round-trip latency.
func ServiceServedCounter(name string) string { return "fleet.svc." + name + ".served" }

// ServiceRPCHist is the histogram name for a service's proxy RTT in cycles.
func ServiceRPCHist(name string) string { return "fleet.svc." + name + ".rpc_cycles" }

// ServiceRollups computes fleet-level rollups for the named services
// (typically the Directory's name list), sorted by name.
func (a *Aggregator) ServiceRollups(names []string, replicas map[string]int) []ServiceRollup {
	out := make([]ServiceRollup, 0, len(names))
	for _, name := range names {
		r := ServiceRollup{Name: name, Replicas: replicas[name]}
		for _, mc := range a.MergedCounters() {
			if mc.Name == ServiceServedCounter(name) {
				r.Served = mc.Value
			}
		}
		if h := a.MergedHistogram(ServiceRPCHist(name)); h != nil && h.Count() > 0 {
			r.RPCs = h.Count()
			r.P50, r.P99, r.MeanCy = h.Median(), h.P99(), h.Mean()
		}
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// FleetGauge is one extra fleet-level gauge (cluster counters the boards
// don't own: epochs, frames exchanged, cluster-link drops, failovers).
type FleetGauge struct {
	Name  string
	Value uint64
}

// WriteFleetProm renders the federated metrics surface in Prometheus text
// format: fleet shape, cluster-level gauges, every counter summed across
// boards, every histogram merged across boards, per-board delivered
// breakdown, decision-log depth, and per-service rollups.
func (a *Aggregator) WriteFleetProm(w io.Writer, now sim.Cycle, clockMHz uint64,
	extra []FleetGauge, rollups []ServiceRollup) {
	fmt.Fprintf(w, "# HELP apiary_fleet_boards Boards in the fleet.\n# TYPE apiary_fleet_boards gauge\napiary_fleet_boards %d\n", len(a.sources))
	fmt.Fprintf(w, "# HELP apiary_cycle Current simulation cycle.\n# TYPE apiary_cycle gauge\napiary_cycle %d\n", now)
	if clockMHz > 0 {
		fmt.Fprintf(w, "# TYPE apiary_clock_mhz gauge\napiary_clock_mhz %d\n", clockMHz)
	}
	fmt.Fprintf(w, "# TYPE apiary_fleet_epochs_total counter\napiary_fleet_epochs_total %d\n", a.epochs)
	for _, g := range extra {
		n := promName(g.Name)
		fmt.Fprintf(w, "# TYPE %s_total counter\n%s_total %d\n", n, n, g.Value)
	}
	for _, c := range a.MergedCounters() {
		n := promName(c.Name)
		fmt.Fprintf(w, "# TYPE %s_total counter\n%s_total %d\n", n, n, c.Value)
	}
	for _, h := range a.MergedHistograms() {
		if h.Count() == 0 {
			continue
		}
		n := promName(h.Name)
		fmt.Fprintf(w, "# TYPE %s summary\n", n)
		for _, q := range []float64{0.5, 0.9, 0.99} {
			fmt.Fprintf(w, "%s{quantile=\"%g\"} %g\n", n, q, h.Quantile(q))
		}
		fmt.Fprintf(w, "%s_sum %g\n%s_count %d\n", n, h.Sum(), n, h.Count())
	}
	var spans, correlated, events uint64
	fmt.Fprintf(w, "# HELP apiary_board_delivered NoC messages delivered per board.\n# TYPE apiary_board_delivered gauge\n")
	for _, s := range a.sources {
		fmt.Fprintf(w, "apiary_board_delivered{board=\"%d\"} %d\n",
			s.Board, s.Stats.Counter("noc.msgs_delivered").Value())
		spans += s.Rec.Total()
		correlated += s.Rec.Correlated()
		events += s.Events.Total()
	}
	fmt.Fprintf(w, "# TYPE apiary_fleet_spans_recorded_total counter\napiary_fleet_spans_recorded_total %d\n", spans)
	fmt.Fprintf(w, "# TYPE apiary_fleet_spans_correlated_total counter\napiary_fleet_spans_correlated_total %d\n", correlated)
	fmt.Fprintf(w, "# TYPE apiary_fleet_events_total counter\napiary_fleet_events_total %d\n", events+a.fleet.Total())
	if len(rollups) > 0 {
		fmt.Fprintf(w, "# HELP apiary_service_served_total Replies served per service across the fleet.\n# TYPE apiary_service_served_total counter\n")
		for _, r := range rollups {
			fmt.Fprintf(w, "apiary_service_served_total{service=%q} %d\n", r.Name, r.Served)
		}
		fmt.Fprintf(w, "# HELP apiary_service_rpc_cycles Client-observed RPC latency per service.\n# TYPE apiary_service_rpc_cycles summary\n")
		for _, r := range rollups {
			if r.RPCs == 0 {
				continue
			}
			fmt.Fprintf(w, "apiary_service_rpc_cycles{service=%q,quantile=\"0.5\"} %g\n", r.Name, r.P50)
			fmt.Fprintf(w, "apiary_service_rpc_cycles{service=%q,quantile=\"0.99\"} %g\n", r.Name, r.P99)
			fmt.Fprintf(w, "apiary_service_rpc_cycles_count{service=%q} %d\n", r.Name, r.RPCs)
		}
	}
}
