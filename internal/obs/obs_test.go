package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"reflect"
	"regexp"
	"strings"
	"testing"

	"apiary/internal/msg"
	"apiary/internal/noc"
	"apiary/internal/sim"
)

// obsSnap captures everything externally observable about a run — counters,
// histogram stats, delivery order — plus the full flight-recorder contents
// rendered to strings. Differential runs compare these for deep equality.
type obsSnap struct {
	Now      sim.Cycle
	Counters map[string]uint64
	Hist     map[string][6]float64
	Delivery []string
	Spans    []string
	Total    uint64
	Correl   uint64
}

func dumpSpan(e Entry) string {
	sp := e.Span
	var b strings.Builder
	kind := "req"
	if e.Reply {
		kind = "reply"
	}
	fmt.Fprintf(&b, "%s %d->%d seq=%d vc=%d q=%d e=%d", kind, sp.Src, sp.Dst, sp.Seq, sp.VC, sp.Queued, sp.Eject)
	for _, h := range sp.Hops {
		fmt.Fprintf(&b, " [%s %s->%s a=%d g=%d d=%d]", h.At, h.In, h.Out, h.Arrive, h.Grant, h.Depart)
	}
	if e.Req != nil {
		fmt.Fprintf(&b, " corr(q=%d,e=%d)", e.Req.Queued, e.Req.Eject)
	}
	return b.String()
}

// runObsTraffic drives request/reply RPC traffic over a 4x4 mesh with the
// flight recorder installed (every <= 0 disables it) and snapshots the
// result. Every TRequest delivered is answered with a TReply echoing Seq, so
// reply correlation is exercised end to end.
func runObsTraffic(t *testing.T, every, shards int, mode sim.ParallelMode) (obsSnap, *Recorder) {
	t.Helper()
	e := sim.NewEngine(11)
	defer e.Close()
	st := sim.NewStats()
	n := noc.NewNetwork(e, st, noc.Config{Dims: noc.Dims{W: 4, H: 4}, Shards: shards})
	e.SetParallel(mode)
	var rec *Recorder
	if every > 0 {
		rec = NewRecorder(every, 0)
		n.SetSpanSampler(rec)
	}

	snap := obsSnap{Counters: make(map[string]uint64), Hist: make(map[string][6]float64)}
	tiles := n.Dims().Tiles()
	for i := 0; i < tiles; i++ {
		tile := msg.TileID(i)
		n.NI(tile).SetDeliver(func(m *msg.Message, lat sim.Cycle) {
			snap.Delivery = append(snap.Delivery,
				fmt.Sprintf("%d<-%d %s seq=%d lat=%d", tile, m.SrcTile, m.Type, m.Seq, lat))
			if m.Type == msg.TRequest {
				if err := n.NI(tile).Send(m.Reply(msg.TReply, nil)); err != nil {
					t.Errorf("reply send failed: %v", err)
				}
			}
		})
	}

	rng := sim.NewRNG(99)
	var seq uint32
	const waves = 40
	for w := 0; w < waves; w++ {
		e.Schedule(sim.Cycle(1+5*w), func(now sim.Cycle) {
			for k := 0; k < 8; k++ {
				src := msg.TileID(rng.Intn(tiles))
				m := &msg.Message{
					Type:    msg.TRequest,
					SrcTile: src,
					DstTile: msg.TileID(rng.Intn(tiles)),
					Seq:     seq,
					Payload: make([]byte, rng.Intn(64)),
				}
				seq++
				if err := n.NI(src).Send(m); err != nil {
					t.Errorf("send failed: %v", err)
				}
			}
		})
	}

	e.Run(sim.Cycle(1 + 5*waves))
	if !e.RunUntil(n.Quiescent, 100000) {
		t.Fatalf("mesh did not quiesce (every=%d shards=%d mode=%v)", every, shards, mode)
	}
	if e.Now() < 2000 {
		e.Run(2000 - e.Now())
	}

	snap.Now = e.Now()
	for _, c := range st.Counters() {
		snap.Counters[c.Name] = c.Value()
	}
	for _, h := range st.Histograms() {
		snap.Hist[h.Name] = [6]float64{
			float64(h.Count()), h.Mean(), h.Min(), h.Max(), h.Quantile(0.5), h.Quantile(0.99),
		}
	}
	if rec != nil {
		snap.Total, snap.Correl = rec.Total(), rec.Correlated()
		for _, ent := range rec.Entries() {
			snap.Spans = append(snap.Spans, dumpSpan(ent))
		}
	}
	return snap, rec
}

// TestObsDifferential is the tentpole's proof obligation: telemetry is pure
// observation, so counters, latency distributions and delivery order are
// bit-identical with the recorder off, sampling 1-in-64, and sampling every
// packet — and, for each sampling rate, identical between serial and
// parallel runs, including the recorder contents themselves.
func TestObsDifferential(t *testing.T) {
	type cfg struct {
		every  int
		shards int
		mode   sim.ParallelMode
	}
	base, _ := runObsTraffic(t, 0, 1, sim.ParallelOff)
	if len(base.Delivery) == 0 {
		t.Fatal("baseline delivered nothing; differential proves nothing")
	}
	spanDumps := map[int][]string{}
	for _, c := range []cfg{
		{0, 4, sim.ParallelOn},
		{64, 1, sim.ParallelOff}, {64, 4, sim.ParallelOn}, {64, 2, sim.ParallelOn},
		{1, 1, sim.ParallelOff}, {1, 4, sim.ParallelOn},
	} {
		got, _ := runObsTraffic(t, c.every, c.shards, c.mode)
		label := fmt.Sprintf("every=%d shards=%d mode=%v", c.every, c.shards, c.mode)
		if got.Now != base.Now {
			t.Errorf("%s: Now=%d want %d", label, got.Now, base.Now)
		}
		if !reflect.DeepEqual(got.Counters, base.Counters) {
			t.Errorf("%s: counters diverge:\n%v\nvs\n%v", label, got.Counters, base.Counters)
		}
		if !reflect.DeepEqual(got.Hist, base.Hist) {
			t.Errorf("%s: histograms diverge", label)
		}
		if !reflect.DeepEqual(got.Delivery, base.Delivery) {
			t.Errorf("%s: delivery order diverges", label)
		}
		if c.every > 0 {
			if got.Total == 0 {
				t.Errorf("%s: recorder saw no spans", label)
			}
			if got.Correl == 0 {
				t.Errorf("%s: no replies correlated", label)
			}
			if prev, ok := spanDumps[c.every]; ok {
				if !reflect.DeepEqual(got.Spans, prev) {
					t.Errorf("%s: span contents diverge between serial and parallel", label)
				}
			} else {
				spanDumps[c.every] = got.Spans
			}
		}
	}
}

// TestSpanShape checks the per-hop timing invariants on real spans: XY
// routing visits exactly manhattan+1 routers, stage cycles are non-negative
// and ordered, and the stage decomposition never exceeds the total.
func TestSpanShape(t *testing.T) {
	_, rec := runObsTraffic(t, 1, 1, sim.ParallelOff)
	ents := rec.Entries()
	if len(ents) == 0 {
		t.Fatal("no spans")
	}
	for _, e := range ents {
		sp := e.Span
		dx := int(sp.Dst)%4 - int(sp.Src)%4
		dy := int(sp.Dst)/4 - int(sp.Src)/4
		if dx < 0 {
			dx = -dx
		}
		if dy < 0 {
			dy = -dy
		}
		if want := dx + dy + 1; len(sp.Hops) != want {
			t.Fatalf("span %d->%d: %d hops, want %d", sp.Src, sp.Dst, len(sp.Hops), want)
		}
		for i, h := range sp.Hops {
			if h.Grant < h.Arrive || h.Depart < h.Grant {
				t.Fatalf("hop %d not ordered: a=%d g=%d d=%d", i, h.Arrive, h.Grant, h.Depart)
			}
			if i > 0 && h.Arrive != sp.Hops[i-1].Depart {
				t.Fatalf("hop %d arrive %d != previous depart %d", i, h.Arrive, sp.Hops[i-1].Depart)
			}
		}
		bd := SpanBreakdown(sp)
		if sum := bd.NIQueue + bd.VCWait + bd.SwitchWait; sum > bd.Total {
			t.Fatalf("breakdown %d+%d+%d exceeds total %d", bd.NIQueue, bd.VCWait, bd.SwitchWait, bd.Total)
		}
		if e.Req != nil && sp.Queued < e.Req.Eject {
			t.Fatalf("reply queued at %d before request ejected at %d", sp.Queued, e.Req.Eject)
		}
	}
}

func TestRecorderSamplingRate(t *testing.T) {
	snap, rec := runObsTraffic(t, 64, 1, sim.ParallelOff)
	sent := snap.Counters["noc.msgs_sent"]
	// 1-in-64 of requests plus their correlated replies.
	if rec.Total() > sent/8 {
		t.Fatalf("sampled %d of %d sends — sampling not sparse", rec.Total(), sent)
	}
	if rec.Correlated() == 0 {
		t.Fatal("no correlated replies at 1-in-64")
	}
}

func TestRecorderRingBounded(t *testing.T) {
	rec := NewRecorder(1, 8)
	for i := 0; i < 100; i++ {
		rec.Complete(&noc.Span{Src: 1, Dst: 2, Type: msg.TCtlPing, Seq: uint32(i)})
	}
	ents := rec.Entries()
	if len(ents) != 8 {
		t.Fatalf("ring holds %d, want 8", len(ents))
	}
	if ents[0].Span.Seq != 92 || ents[7].Span.Seq != 99 {
		t.Fatalf("ring not oldest-first: %d..%d", ents[0].Span.Seq, ents[7].Span.Seq)
	}
	if rec.Total() != 100 {
		t.Fatalf("Total = %d", rec.Total())
	}
}

func TestRecorderPendingBounded(t *testing.T) {
	rec := NewRecorder(1, 16)
	for i := 0; i < 10_000; i++ {
		rec.Complete(&noc.Span{Src: msg.TileID(i % 16), Dst: 1, Type: msg.TRequest, Seq: uint32(i)})
	}
	if len(rec.pending) > rec.pendCap {
		t.Fatalf("pending table grew to %d (cap %d)", len(rec.pending), rec.pendCap)
	}
	if len(rec.pendQ) > 4*rec.pendCap+1 {
		t.Fatalf("pending queue grew to %d", len(rec.pendQ))
	}
}

func TestSummary(t *testing.T) {
	_, rec := runObsTraffic(t, 4, 1, sim.ParallelOff)
	s := rec.Summary()
	for _, want := range []string{"flight recorder:", "p50 breakdown", "p99 breakdown", "congestion on link", "service handling"} {
		if !strings.Contains(s, want) {
			t.Fatalf("summary missing %q:\n%s", want, s)
		}
	}
}

func TestExportChromeSpans(t *testing.T) {
	_, rec := runObsTraffic(t, 4, 1, sim.ParallelOff)
	var buf bytes.Buffer
	if err := ExportChromeSpans(&buf, rec.Entries(), 1); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("output is not a JSON array: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("no events exported")
	}
	var sawHop, sawService bool
	for _, ev := range events {
		if ev["ph"] != "X" {
			t.Fatalf("event ph = %v, want X", ev["ph"])
		}
		for _, k := range []string{"name", "ts", "dur", "pid", "tid"} {
			if _, ok := ev[k]; !ok {
				t.Fatalf("event missing %q: %v", k, ev)
			}
		}
		if ev["dur"].(float64) < 0 {
			t.Fatalf("negative duration: %v", ev)
		}
		name := ev["name"].(string)
		if strings.HasPrefix(name, "hop ") {
			sawHop = true
		}
		if args, ok := ev["args"].(map[string]any); ok {
			if _, ok := args["service_cy"]; ok {
				sawService = true
			}
		}
	}
	if !sawHop {
		t.Fatal("no per-hop slices exported")
	}
	if !sawService {
		t.Fatal("no correlated reply carried service_cy")
	}
}

// runWindowed drives traffic with a Windows sampler attached.
func runWindowed(t *testing.T, keep int) (*Windows, *noc.Network, *sim.Stats, sim.Cycle) {
	t.Helper()
	e := sim.NewEngine(5)
	defer e.Close()
	st := sim.NewStats()
	n := noc.NewNetwork(e, st, noc.Config{Dims: noc.Dims{W: 4, H: 4}, Shards: 1})
	w := NewWindows(e, n, st, WindowConfig{Every: 100, Keep: keep})
	tiles := n.Dims().Tiles()
	for i := 0; i < tiles; i++ {
		n.NI(msg.TileID(i)).SetDeliver(func(m *msg.Message, lat sim.Cycle) {})
	}
	rng := sim.NewRNG(5)
	for wv := 0; wv < 30; wv++ {
		e.Schedule(sim.Cycle(1+20*wv), func(now sim.Cycle) {
			for k := 0; k < 6; k++ {
				src := msg.TileID(rng.Intn(tiles))
				m := &msg.Message{Type: msg.TRequest, SrcTile: src,
					DstTile: msg.TileID(rng.Intn(tiles)), Payload: make([]byte, 32)}
				if err := n.NI(src).Send(m); err != nil {
					t.Errorf("send: %v", err)
				}
			}
		})
	}
	e.Run(1000)
	return w, n, st, e.Now()
}

func TestWindows(t *testing.T) {
	w, _, st, _ := runWindowed(t, 0)
	snaps := w.Snapshots()
	if len(snaps) != 10 {
		t.Fatalf("got %d snapshots over 1000 cycles at every=100, want 10", len(snaps))
	}
	var sent uint64
	for i, s := range snaps {
		if s.Cycle != sim.Cycle(100*(i+1)) {
			t.Fatalf("snapshot %d at cycle %d", i, s.Cycle)
		}
		sent += s.Sent
	}
	if total := st.Counter("noc.msgs_sent").Value(); sent != total {
		t.Fatalf("window deltas sum to %d, counter says %d", sent, total)
	}
	if got := w.Latest().Cycle; got != 1000 {
		t.Fatalf("Latest at cycle %d, want 1000", got)
	}
	busy := false
	for _, s := range snaps {
		if s.TilesBusy > 0 || len(s.Links) > 0 {
			busy = true
		}
		if s.Tiles != 16 {
			t.Fatalf("Tiles = %d", s.Tiles)
		}
	}
	if !busy {
		t.Fatal("no window ever saw activity")
	}
}

func TestWindowsRingBounded(t *testing.T) {
	w, _, _, _ := runWindowed(t, 4)
	snaps := w.Snapshots()
	if len(snaps) != 4 {
		t.Fatalf("ring holds %d, want 4", len(snaps))
	}
	if snaps[0].Cycle != 700 || snaps[3].Cycle != 1000 {
		t.Fatalf("ring kept cycles %d..%d, want 700..1000", snaps[0].Cycle, snaps[3].Cycle)
	}
}

func TestWindowsDisabled(t *testing.T) {
	var w *Windows
	if w.Latest() != nil || w.Snapshots() != nil || w.Every() != 0 {
		t.Fatal("nil Windows must be inert")
	}
	e := sim.NewEngine(1)
	defer e.Close()
	st := sim.NewStats()
	n := noc.NewNetwork(e, st, noc.Config{Dims: noc.Dims{W: 2, H: 2}})
	if NewWindows(e, n, st, WindowConfig{Every: 0}) != nil {
		t.Fatal("Every=0 should disable sampling")
	}
}

// promLine matches one Prometheus text-format sample line:
// name{labels} value — a lenient but structural check.
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? [-+]?([0-9]*\.)?[0-9]+([eE][-+]?[0-9]+)?$`)

func TestWriteProm(t *testing.T) {
	w, n, st, now := runWindowed(t, 0)
	rec := NewRecorder(4, 0)
	_ = n
	var buf bytes.Buffer
	WriteProm(&buf, now, 200, st, w, rec, []ServiceHealth{
		{Group: 30, Svc: 20, Tile: 4, Health: 2, State: "quarantined"},
		{Group: 30, Svc: 21, Tile: 5, Health: 0, State: "up", Primary: true},
	})
	out := buf.String()
	seen := map[string]bool{}
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !promLine.MatchString(line) {
			t.Fatalf("invalid Prometheus line: %q", line)
		}
		seen[strings.Fields(line)[0]] = true
	}
	for _, want := range []string{
		"apiary_cycle", "apiary_clock_mhz",
		"apiary_noc_msgs_sent_total", "apiary_noc_flits_routed_total",
		"apiary_window_cycles", "apiary_window_tiles_busy",
		"apiary_spans_recorded_total",
	} {
		if !seen[want] {
			t.Fatalf("missing metric %s in:\n%s", want, out)
		}
	}
	if !strings.Contains(out, `apiary_noc_msg_latency_cycles{quantile="0.99"}`) {
		t.Fatalf("missing latency summary quantiles:\n%s", out)
	}
	if !strings.Contains(out, `apiary_window_vc_occupancy{vc="0"}`) {
		t.Fatalf("missing vc occupancy gauge:\n%s", out)
	}
}

func TestHeatmap(t *testing.T) {
	w, n, _, _ := runWindowed(t, 0)
	var buf bytes.Buffer
	WriteHeatmap(&buf, n, w.Latest(), nil, nil)
	out := buf.String()
	if !strings.Contains(out, "NoC heatmap: window of 100 cycles") {
		t.Fatalf("missing header:\n%s", out)
	}
	if !strings.Contains(out, "scale:") {
		t.Fatalf("missing legend:\n%s", out)
	}
	// Cumulative view over the whole run must show a hottest link.
	buf.Reset()
	WriteHeatmap(&buf, n, nil, nil, nil)
	out = buf.String()
	if !strings.Contains(out, "cumulative") || !strings.Contains(out, "hottest link:") {
		t.Fatalf("cumulative heatmap incomplete:\n%s", out)
	}
	rows := 0
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "  ") {
			rows++
		}
	}
	if rows != 4 {
		t.Fatalf("grid has %d rows, want 4", rows)
	}

	buf.Reset()
	if err := WriteHeatmapJSON(&buf, n, w.Latest(), nil, nil); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc["w"].(float64) != 4 || doc["h"].(float64) != 4 {
		t.Fatalf("bad dims in JSON heatmap: %v", doc)
	}
	if len(doc["tile_flits"].([]any)) != 16 {
		t.Fatal("tile_flits not W*H")
	}
}
