package obs

import (
	"apiary/internal/msg"
	"apiary/internal/noc"
	"apiary/internal/sim"
)

// WindowConfig sizes the windowed time-series sampler.
type WindowConfig struct {
	// Every is the sampling period in cycles (<= 0 disables sampling).
	Every sim.Cycle
	// Keep bounds the snapshot ring (default DefaultWindowKeep).
	Keep int
}

// DefaultWindowKeep is the default snapshot ring capacity.
const DefaultWindowKeep = 256

// linkKey identifies a directed link for windowed deltas.
type linkKey struct {
	From noc.Coord
	Out  noc.Port
}

// LinkWindow is one directed link's traffic within a single window.
type LinkWindow struct {
	From  noc.Coord
	Out   noc.Port
	Flits uint64
}

// Snapshot is one sampling window's view of the system: per-link flit
// deltas, per-VC buffer occupancy, per-tile activity, and windowed deltas of
// the monitor and NoC counters. All values except VC occupancy and TilesBusy
// (instantaneous) are deltas over [Cycle-Window, Cycle).
type Snapshot struct {
	Cycle  sim.Cycle
	Window sim.Cycle

	Links     []LinkWindow // links with nonzero flits this window, tile order
	VCOcc     [noc.NumVCs]int
	TilesBusy int
	Tiles     int
	InFlight  int

	Sent         uint64 // noc.msgs_sent delta
	Delivered    uint64 // noc.msgs_delivered delta
	Denied       uint64 // mon.denied delta
	RateDrops    uint64 // mon.rate_drops delta
	Forwarded    uint64 // mon.forwarded delta
	Faults       uint64 // mon.faults delta
	Injected     uint64 // fault.injected delta
	Shed         uint64 // shell.shed delta (admission-control load sheds)
	Failovers    uint64 // kernel.failovers delta (replica-group re-binds)
	BreakerOpens uint64 // apps.breaker_opens delta (client circuit trips)

	ExpressHits         uint64 // noc.express_hits delta (bypass-scheduled packets)
	ExpressMaterialized uint64 // noc.express_materialized delta (bypasses forced back)
}

// windowCounters are the counters snapshotted as per-window deltas.
var windowCounters = []string{
	"noc.msgs_sent", "noc.msgs_delivered",
	"mon.denied", "mon.rate_drops", "mon.forwarded",
	"mon.faults", "fault.injected",
	"shell.shed", "kernel.failovers", "apps.breaker_opens",
	"noc.express_hits", "noc.express_materialized",
}

// Windows samples the NoC and monitor state every N cycles into a bounded
// ring of Snapshots. It registers a self-rescheduling engine event, so
// sampling happens on the main goroutine between cycles, after the previous
// cycle's commit — a consistent global view, safe to combine with both
// idle-skip (events bound the fast-forward) and the parallel scheduler.
// Like the recorder it is pure observation: no simulation state changes.
type Windows struct {
	net   *noc.Network
	st    *sim.Stats
	every sim.Cycle

	ring []Snapshot
	keep int
	next int
	full bool

	prevLink map[linkKey]uint64
	prevCtr  map[string]uint64
}

// NewWindows attaches a sampler to the engine. Call before the first cycle.
// Returns nil if cfg.Every <= 0 (sampling disabled); all methods on a nil
// *Windows are safe no-ops.
func NewWindows(e *sim.Engine, net *noc.Network, st *sim.Stats, cfg WindowConfig) *Windows {
	if cfg.Every <= 0 {
		return nil
	}
	keep := cfg.Keep
	if keep <= 0 {
		keep = DefaultWindowKeep
	}
	w := &Windows{
		net: net, st: st, every: cfg.Every, keep: keep,
		prevLink: make(map[linkKey]uint64),
		prevCtr:  make(map[string]uint64),
	}
	var fire func(now sim.Cycle)
	fire = func(now sim.Cycle) {
		w.sample(now)
		e.After(w.every, fire)
	}
	e.After(w.every, fire)
	return w
}

// Every reports the sampling period (0 when disabled).
func (w *Windows) Every() sim.Cycle {
	if w == nil {
		return 0
	}
	return w.every
}

// sample takes one snapshot. Runs as an engine event (main goroutine,
// between cycles).
func (w *Windows) sample(now sim.Cycle) {
	dims := w.net.Dims()
	s := Snapshot{
		Cycle: now, Window: w.every,
		VCOcc:    w.net.VCOccupancy(),
		Tiles:    dims.W * dims.H,
		InFlight: w.net.InFlight(),
	}
	for t := 0; t < s.Tiles; t++ {
		if w.net.TileActive(msg.TileID(t)) {
			s.TilesBusy++
		}
	}
	// Per-link deltas against the cumulative counters. LinkUtilization
	// reports links busiest-first; re-keying through the map and appending in
	// its order keeps output deterministic (ties broken by tile ID upstream).
	for _, l := range w.net.LinkUtilization() {
		k := linkKey{l.From, l.Out}
		if d := l.Flits - w.prevLink[k]; d > 0 {
			s.Links = append(s.Links, LinkWindow{From: l.From, Out: l.Out, Flits: d})
		}
		w.prevLink[k] = l.Flits
	}
	deltas := make([]uint64, len(windowCounters))
	for i, name := range windowCounters {
		v := w.st.Counter(name).Value()
		deltas[i] = v - w.prevCtr[name]
		w.prevCtr[name] = v
	}
	s.Sent, s.Delivered, s.Denied, s.RateDrops, s.Forwarded =
		deltas[0], deltas[1], deltas[2], deltas[3], deltas[4]
	s.Faults, s.Injected = deltas[5], deltas[6]
	s.Shed, s.Failovers, s.BreakerOpens = deltas[7], deltas[8], deltas[9]
	s.ExpressHits, s.ExpressMaterialized = deltas[10], deltas[11]

	if len(w.ring) < w.keep {
		w.ring = append(w.ring, s)
		return
	}
	w.full = true
	w.ring[w.next] = s
	w.next = (w.next + 1) % w.keep
}

// Latest returns the most recent snapshot, or nil before the first window.
func (w *Windows) Latest() *Snapshot {
	if w == nil || len(w.ring) == 0 {
		return nil
	}
	i := len(w.ring) - 1
	if w.full {
		i = (w.next - 1 + w.keep) % w.keep
	}
	return &w.ring[i]
}

// Snapshots returns the retained snapshots oldest-first.
func (w *Windows) Snapshots() []Snapshot {
	if w == nil {
		return nil
	}
	if !w.full {
		return append([]Snapshot(nil), w.ring...)
	}
	out := make([]Snapshot, 0, w.keep)
	out = append(out, w.ring[w.next:]...)
	out = append(out, w.ring[:w.next]...)
	return out
}
