package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"apiary/internal/msg"
)

func ev(tile msg.TileID, v Verdict, seq uint32) Event {
	return Event{Cycle: 10, Tile: tile, Verdict: v, Type: msg.TRequest, Seq: seq}
}

func TestRecordAndRetrieve(t *testing.T) {
	tr := New(10)
	tr.Record(ev(1, Forwarded, 1))
	tr.Record(ev(2, DeniedNoCap, 2))
	if tr.Total() != 2 {
		t.Fatalf("Total = %d", tr.Total())
	}
	evs := tr.Events()
	if len(evs) != 2 || evs[0].Seq != 1 || evs[1].Seq != 2 {
		t.Fatalf("events = %+v", evs)
	}
}

func TestRingEviction(t *testing.T) {
	tr := New(3)
	for i := uint32(1); i <= 5; i++ {
		tr.Record(ev(1, Forwarded, i))
	}
	evs := tr.Events()
	if len(evs) != 3 {
		t.Fatalf("retained = %d, want 3", len(evs))
	}
	if evs[0].Seq != 3 || evs[2].Seq != 5 {
		t.Fatalf("eviction order wrong: %+v", evs)
	}
	if tr.Total() != 5 {
		t.Fatalf("Total = %d, want 5", tr.Total())
	}
}

func TestNilTracerSafe(t *testing.T) {
	var tr *Tracer
	tr.Record(ev(1, Forwarded, 1)) // must not panic
	if tr.Total() != 0 || tr.Events() != nil {
		t.Fatal("nil tracer should discard")
	}
}

func TestFilters(t *testing.T) {
	tr := New(16)
	tr.Record(ev(1, Forwarded, 1))
	tr.Record(ev(2, DeniedNoCap, 2))
	tr.Record(ev(1, RateLimited, 3))
	if got := tr.ByTile(1); len(got) != 2 {
		t.Fatalf("ByTile(1) = %d events", len(got))
	}
	den := tr.Denials()
	if len(den) != 2 || den[0].Verdict != DeniedNoCap || den[1].Verdict != RateLimited {
		t.Fatalf("Denials = %+v", den)
	}
}

func TestSummary(t *testing.T) {
	tr := New(16)
	tr.Record(ev(1, Forwarded, 1))
	tr.Record(ev(1, DeniedFailStop, 2))
	s := tr.Summary()
	if !strings.Contains(s, "forwarded") || !strings.Contains(s, "denied-failstop") {
		t.Fatalf("summary:\n%s", s)
	}
}

func TestExportChrome(t *testing.T) {
	tr := New(4)
	tr.Record(ev(7, Forwarded, 42))
	var buf bytes.Buffer
	if err := tr.ExportChrome(&buf, 250); err != nil {
		t.Fatal(err)
	}
	var out []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("not valid JSON: %v", err)
	}
	if len(out) != 1 || out[0]["pid"].(float64) != 7 {
		t.Fatalf("chrome export = %v", out)
	}
}

func TestMatrix(t *testing.T) {
	tr := New(32)
	tr.Record(Event{Tile: 1, Dir: Egress, Verdict: Forwarded, Peer: 2, Bytes: 100})
	tr.Record(Event{Tile: 1, Dir: Egress, Verdict: Forwarded, Peer: 2, Bytes: 50})
	tr.Record(Event{Tile: 2, Dir: Egress, Verdict: Forwarded, Peer: 1, Bytes: 7})
	tr.Record(Event{Tile: 3, Dir: Egress, Verdict: DeniedNoCap, Peer: 2, Bytes: 99}) // not counted
	tr.Record(Event{Tile: 2, Dir: Ingress, Verdict: Forwarded, Peer: 1, Bytes: 99})  // not counted
	m := tr.Matrix()
	if m[Edge{1, 2}] != 150 || m[Edge{2, 1}] != 7 {
		t.Fatalf("matrix = %v", m)
	}
	if len(m) != 2 {
		t.Fatalf("matrix has %d edges, want 2", len(m))
	}
	s := tr.MatrixString()
	if !strings.Contains(s, "150") || !strings.Contains(s, "1 -> 2") {
		t.Fatalf("matrix render:\n%s", s)
	}
	// Largest flow first.
	if strings.Index(s, "150") > strings.Index(s, "7\n") {
		t.Fatalf("matrix not sorted:\n%s", s)
	}
}

func TestVerdictStrings(t *testing.T) {
	for v := Forwarded; v <= Faulted; v++ {
		if v.String() == "" {
			t.Fatal("empty verdict name")
		}
	}
	if Verdict(99).String() == "" || Ingress.String() != "ingress" || Egress.String() != "egress" {
		t.Fatal("stringer problems")
	}
}

func TestZeroCapacityClamped(t *testing.T) {
	tr := New(0)
	tr.Record(ev(1, Forwarded, 1))
	if len(tr.Events()) != 1 {
		t.Fatal("zero-capacity tracer should clamp to 1")
	}
}
