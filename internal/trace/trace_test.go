package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"apiary/internal/msg"
)

func ev(tile msg.TileID, v Verdict, seq uint32) Event {
	return Event{Cycle: 10, Tile: tile, Verdict: v, Type: msg.TRequest, Seq: seq}
}

func TestRecordAndRetrieve(t *testing.T) {
	tr := New(10)
	tr.Record(ev(1, Forwarded, 1))
	tr.Record(ev(2, DeniedNoCap, 2))
	if tr.Total() != 2 {
		t.Fatalf("Total = %d", tr.Total())
	}
	evs := tr.Events()
	if len(evs) != 2 || evs[0].Seq != 1 || evs[1].Seq != 2 {
		t.Fatalf("events = %+v", evs)
	}
}

func TestRingEviction(t *testing.T) {
	tr := New(3)
	for i := uint32(1); i <= 5; i++ {
		tr.Record(ev(1, Forwarded, i))
	}
	evs := tr.Events()
	if len(evs) != 3 {
		t.Fatalf("retained = %d, want 3", len(evs))
	}
	if evs[0].Seq != 3 || evs[2].Seq != 5 {
		t.Fatalf("eviction order wrong: %+v", evs)
	}
	if tr.Total() != 5 {
		t.Fatalf("Total = %d, want 5", tr.Total())
	}
}

func TestNilTracerSafe(t *testing.T) {
	var tr *Tracer
	tr.Record(ev(1, Forwarded, 1)) // must not panic
	if tr.Total() != 0 || tr.Events() != nil {
		t.Fatal("nil tracer should discard")
	}
}

func TestFilters(t *testing.T) {
	tr := New(16)
	tr.Record(ev(1, Forwarded, 1))
	tr.Record(ev(2, DeniedNoCap, 2))
	tr.Record(ev(1, RateLimited, 3))
	if got := tr.ByTile(1); len(got) != 2 {
		t.Fatalf("ByTile(1) = %d events", len(got))
	}
	den := tr.Denials()
	if len(den) != 2 || den[0].Verdict != DeniedNoCap || den[1].Verdict != RateLimited {
		t.Fatalf("Denials = %+v", den)
	}
}

func TestSummary(t *testing.T) {
	tr := New(16)
	tr.Record(ev(1, Forwarded, 1))
	tr.Record(ev(1, DeniedFailStop, 2))
	s := tr.Summary()
	if !strings.Contains(s, "forwarded") || !strings.Contains(s, "denied-failstop") {
		t.Fatalf("summary:\n%s", s)
	}
}

func TestExportChrome(t *testing.T) {
	tr := New(4)
	tr.Record(ev(7, Forwarded, 42))
	var buf bytes.Buffer
	if err := tr.ExportChrome(&buf, 250); err != nil {
		t.Fatal(err)
	}
	var out []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("not valid JSON: %v", err)
	}
	if len(out) != 1 || out[0]["pid"].(float64) != 7 {
		t.Fatalf("chrome export = %v", out)
	}
}

func TestMatrix(t *testing.T) {
	tr := New(32)
	tr.Record(Event{Tile: 1, Dir: Egress, Verdict: Forwarded, Peer: 2, Bytes: 100})
	tr.Record(Event{Tile: 1, Dir: Egress, Verdict: Forwarded, Peer: 2, Bytes: 50})
	tr.Record(Event{Tile: 2, Dir: Egress, Verdict: Forwarded, Peer: 1, Bytes: 7})
	tr.Record(Event{Tile: 3, Dir: Egress, Verdict: DeniedNoCap, Peer: 2, Bytes: 99}) // not counted
	tr.Record(Event{Tile: 2, Dir: Ingress, Verdict: Forwarded, Peer: 1, Bytes: 99})  // not counted
	m := tr.Matrix()
	if m[Edge{1, 2}] != 150 || m[Edge{2, 1}] != 7 {
		t.Fatalf("matrix = %v", m)
	}
	if len(m) != 2 {
		t.Fatalf("matrix has %d edges, want 2", len(m))
	}
	s := tr.MatrixString()
	if !strings.Contains(s, "150") || !strings.Contains(s, "1 -> 2") {
		t.Fatalf("matrix render:\n%s", s)
	}
	// Largest flow first.
	if strings.Index(s, "150") > strings.Index(s, "7\n") {
		t.Fatalf("matrix not sorted:\n%s", s)
	}
}

func TestVerdictStrings(t *testing.T) {
	for v := Forwarded; v <= Faulted; v++ {
		if v.String() == "" {
			t.Fatal("empty verdict name")
		}
	}
	if Verdict(99).String() == "" || Ingress.String() != "ingress" || Egress.String() != "egress" {
		t.Fatal("stringer problems")
	}
}

func TestZeroCapacityClamped(t *testing.T) {
	tr := New(0)
	tr.Record(ev(1, Forwarded, 1))
	if len(tr.Events()) != 1 {
		t.Fatal("zero-capacity tracer should clamp to 1")
	}
}

// TestExportChromeGolden pins the exact Chrome trace-event JSON for a fixed
// input, so format drift (field renames, ts scaling, arg changes) is caught
// as a diff rather than discovered inside Perfetto.
func TestExportChromeGolden(t *testing.T) {
	tr := New(4)
	tr.Record(Event{Cycle: 500, Tile: 3, Dir: Egress, Verdict: Forwarded,
		Type: msg.TRequest, Seq: 9, DstSvc: 16, Peer: 5, Bytes: 128})
	tr.Record(Event{Cycle: 750, Tile: 5, Dir: Ingress, Verdict: DeniedNoCap,
		Type: msg.TRequest, Seq: 9, DstSvc: 16, Peer: 3, Bytes: 128})
	var buf bytes.Buffer
	if err := tr.ExportChrome(&buf, 250); err != nil {
		t.Fatal(err)
	}
	want := `[{"name":"req forwarded","ph":"i","ts":2,"pid":3,"tid":0,"args":{"bytes":128,"peer":5,"seq":9,"svc":16}},` +
		`{"name":"req denied-nocap","ph":"i","ts":3,"pid":5,"tid":1,"args":{"bytes":128,"peer":3,"seq":9,"svc":16}}]` + "\n"
	if got := buf.String(); got != want {
		t.Fatalf("chrome export drifted:\ngot:  %swant: %s", got, want)
	}
}

// TestMatrixStringGolden pins the exact table rendering: largest flow first,
// ties broken by (src, dst).
func TestMatrixStringGolden(t *testing.T) {
	tr := New(16)
	tr.Record(Event{Tile: 1, Dir: Egress, Verdict: Forwarded, Peer: 2, Bytes: 100})
	tr.Record(Event{Tile: 4, Dir: Egress, Verdict: Forwarded, Peer: 0, Bytes: 25})
	tr.Record(Event{Tile: 2, Dir: Egress, Verdict: Forwarded, Peer: 1, Bytes: 25})
	want := "src -> dst        bytes\n" +
		"  1 -> 2             100\n" +
		"  2 -> 1              25\n" +
		"  4 -> 0              25\n"
	if got := tr.MatrixString(); got != want {
		t.Fatalf("matrix render drifted:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestCommitShardOrder proves the determinism contract of the staged path:
// whatever order shard workers stage events in during a tick phase, Commit
// flushes them into the ring in ascending shard order — i.e. tile order,
// matching what a serial tick would have recorded.
func TestCommitShardOrder(t *testing.T) {
	tr := New(16)
	tr.SetShards(4)
	// Stage in scrambled shard order, two events per shard.
	for _, s := range []int{2, 0, 3, 1} {
		tr.RecordShard(s, ev(msg.TileID(s), Forwarded, uint32(10*s)))
		tr.RecordShard(s, ev(msg.TileID(s), Forwarded, uint32(10*s+1)))
	}
	if len(tr.Events()) != 0 {
		t.Fatal("staged events reached the ring before Commit")
	}
	tr.Commit(11)
	evs := tr.Events()
	if len(evs) != 8 {
		t.Fatalf("flushed %d events, want 8", len(evs))
	}
	for i, e := range evs {
		wantSeq := uint32(10*(i/2) + i%2)
		if e.Seq != wantSeq {
			t.Fatalf("event %d has seq %d, want %d (not shard order)", i, e.Seq, wantSeq)
		}
	}
	// A second commit must not re-flush.
	tr.Commit(12)
	if tr.Total() != 8 {
		t.Fatalf("Commit re-flushed: total %d", tr.Total())
	}
	// Out-of-range shard falls back to direct Record.
	tr.RecordShard(99, ev(9, Forwarded, 99))
	if tr.Total() != 9 {
		t.Fatal("out-of-range shard did not fall back to Record")
	}
}
