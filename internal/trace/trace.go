// Package trace implements Apiary's message-level tracing and debugging
// support (paper §3 "Programmability": "debugging and tracing support at
// the message passing layer"). Monitors emit one event per message decision
// (forwarded, denied, dropped); the tracer keeps them in a bounded ring
// buffer and can render summaries, filter by tile, and export a Chrome
// trace-event JSON for visual inspection.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"apiary/internal/msg"
	"apiary/internal/sim"
)

// Verdict records what the monitor did with a message.
type Verdict uint8

// Verdicts.
const (
	Forwarded Verdict = iota
	DeniedNoCap
	DeniedRevoked
	DeniedRights
	DeniedNoService
	DeniedFailStop
	RateLimited
	Faulted // fault event, not a message
)

func (v Verdict) String() string {
	names := [...]string{
		"forwarded", "denied-nocap", "denied-revoked", "denied-rights",
		"denied-noservice", "denied-failstop", "rate-limited", "faulted",
	}
	if int(v) < len(names) {
		return names[v]
	}
	return fmt.Sprintf("verdict(%d)", uint8(v))
}

// Event is one traced monitor decision.
type Event struct {
	Cycle   sim.Cycle
	Tile    msg.TileID
	Dir     Dir
	Verdict Verdict
	Type    msg.Type
	Seq     uint32
	DstSvc  msg.ServiceID
	Peer    msg.TileID // the other end (dst on egress, src on ingress)
	Bytes   int
}

// Dir is the message direction relative to the monitored tile.
type Dir uint8

// Directions.
const (
	Egress Dir = iota
	Ingress
)

func (d Dir) String() string {
	if d == Egress {
		return "egress"
	}
	return "ingress"
}

// Tracer is a bounded ring buffer of events. A nil *Tracer is valid and
// discards everything, so monitors can trace unconditionally.
//
// The ring itself is not safe to append to from the engine's parallel tick
// phase; monitors running on a shard stage events with RecordShard instead,
// and the tracer — registered as a sim.Committer — flushes the staged
// events into the ring in ascending shard order each commit phase. Shard
// order equals tile order (shards are contiguous tile bands), so the flush
// order matches what a serial tick would have recorded directly.
type Tracer struct {
	cap    int
	events []Event
	next   int
	full   bool
	total  uint64

	staged [][]Event
}

// New returns a tracer holding at most capacity events.
func New(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = 1
	}
	return &Tracer{cap: capacity, events: make([]Event, 0, capacity)}
}

// Record appends an event, evicting the oldest when full.
func (t *Tracer) Record(e Event) {
	if t == nil {
		return
	}
	t.total++
	if len(t.events) < t.cap {
		t.events = append(t.events, e)
		return
	}
	t.full = true
	t.events[t.next] = e
	t.next = (t.next + 1) % t.cap
}

// SetShards sizes the per-shard staging buffers for RecordShard. Call once
// at system construction with the mesh's shard count, before the first
// cycle; callers that never shard can skip it.
func (t *Tracer) SetShards(n int) {
	if t == nil || n < 1 {
		return
	}
	t.staged = make([][]Event, n)
}

// RecordShard stages an event from shard s's tick-phase worker; the staged
// events reach the ring at the next Commit. An out-of-range shard (or a
// tracer without SetShards) falls back to Record, which is only correct
// from the main goroutine — sharded callers always pass their own index.
func (t *Tracer) RecordShard(s int, e Event) {
	if t == nil {
		return
	}
	if s < 0 || s >= len(t.staged) {
		t.Record(e)
		return
	}
	t.staged[s] = append(t.staged[s], e)
}

// Commit implements sim.Committer: staged events enter the ring in shard
// order. Register the tracer before the network so that tick-phase egress
// events flush ahead of the commit-phase ingress events of the same cycle,
// preserving the causal egress-before-ingress reading order.
func (t *Tracer) Commit(now sim.Cycle) {
	for s, buf := range t.staged {
		for i := range buf {
			t.Record(buf[i])
		}
		t.staged[s] = buf[:0]
	}
}

// Total reports how many events were ever recorded (including evicted).
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	return t.total
}

// Events returns the retained events oldest-first.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	if !t.full {
		return append([]Event(nil), t.events...)
	}
	out := make([]Event, 0, t.cap)
	out = append(out, t.events[t.next:]...)
	out = append(out, t.events[:t.next]...)
	return out
}

// Filter returns retained events satisfying keep, oldest-first.
func (t *Tracer) Filter(keep func(Event) bool) []Event {
	var out []Event
	for _, e := range t.Events() {
		if keep(e) {
			out = append(out, e)
		}
	}
	return out
}

// ByTile returns retained events observed at the given tile.
func (t *Tracer) ByTile(tile msg.TileID) []Event {
	return t.Filter(func(e Event) bool { return e.Tile == tile })
}

// Denials returns retained non-forwarded message events — the first thing a
// developer asks for when a pipeline stalls.
func (t *Tracer) Denials() []Event {
	return t.Filter(func(e Event) bool { return e.Verdict != Forwarded })
}

// Summary renders counts per verdict.
func (t *Tracer) Summary() string {
	counts := map[Verdict]int{}
	for _, e := range t.Events() {
		counts[e.Verdict]++
	}
	var b strings.Builder
	fmt.Fprintf(&b, "trace: %d events recorded, %d retained\n", t.Total(), len(t.Events()))
	for v := Forwarded; v <= Faulted; v++ {
		if counts[v] > 0 {
			fmt.Fprintf(&b, "  %-18s %d\n", v, counts[v])
		}
	}
	return b.String()
}

// Edge is one (source tile -> destination tile) entry of the communication
// matrix.
type Edge struct {
	Src, Dst msg.TileID
}

// Matrix aggregates retained *egress* events into a communication matrix:
// bytes forwarded per (src tile, dst tile) pair. This is the first artifact
// a developer wants when asking "who talks to whom, and how much" — the
// message-layer observability the paper's Programmability goal calls for.
func (t *Tracer) Matrix() map[Edge]uint64 {
	m := make(map[Edge]uint64)
	for _, e := range t.Events() {
		if e.Dir != Egress || e.Verdict != Forwarded {
			continue
		}
		m[Edge{Src: e.Tile, Dst: e.Peer}] += uint64(e.Bytes)
	}
	return m
}

// MatrixString renders the communication matrix as an aligned table,
// largest flows first.
func (t *Tracer) MatrixString() string {
	m := t.Matrix()
	type row struct {
		e Edge
		b uint64
	}
	rows := make([]row, 0, len(m))
	for e, b := range m {
		rows = append(rows, row{e, b})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].b != rows[j].b {
			return rows[i].b > rows[j].b
		}
		if rows[i].e.Src != rows[j].e.Src {
			return rows[i].e.Src < rows[j].e.Src
		}
		return rows[i].e.Dst < rows[j].e.Dst
	})
	var b strings.Builder
	b.WriteString("src -> dst        bytes\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%3d -> %-3d  %12d\n", r.e.Src, r.e.Dst, r.b)
	}
	return b.String()
}

// chromeEvent is the Chrome trace-event JSON schema (instant events).
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args"`
}

// ExportChrome writes the retained events as a Chrome trace (load in
// chrome://tracing or Perfetto). cyclesPerUs converts cycles to wall time.
func (t *Tracer) ExportChrome(w io.Writer, cyclesPerUs float64) error {
	if cyclesPerUs <= 0 {
		cyclesPerUs = 250
	}
	evs := t.Events()
	out := make([]chromeEvent, 0, len(evs))
	for _, e := range evs {
		out = append(out, chromeEvent{
			Name: fmt.Sprintf("%s %s", e.Type, e.Verdict),
			Ph:   "i",
			Ts:   float64(e.Cycle) / cyclesPerUs,
			Pid:  int(e.Tile),
			Tid:  int(e.Dir),
			Args: map[string]any{
				"seq":   e.Seq,
				"svc":   e.DstSvc,
				"peer":  e.Peer,
				"bytes": e.Bytes,
			},
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
