package apps

import (
	"testing"

	"apiary/internal/accel"
	"apiary/internal/msg"
	"apiary/internal/sim"
)

// stubPort drives a Requester directly: sends are captured, receives come
// from a scripted queue, and the clock is advanced by the test.
type stubPort struct {
	now   sim.Cycle
	inbox []*msg.Message
	sends []*msg.Message
	code  msg.ErrCode
}

func (p *stubPort) Now() sim.Cycle { return p.now }
func (p *stubPort) Recv() (*msg.Message, bool) {
	if len(p.inbox) == 0 {
		return nil, false
	}
	m := p.inbox[0]
	p.inbox = p.inbox[1:]
	return m, true
}
func (p *stubPort) Send(m *msg.Message) msg.ErrCode {
	if p.code != msg.EOK {
		return p.code
	}
	p.sends = append(p.sends, m)
	return msg.EOK
}
func (p *stubPort) Fault(uint8, accel.FaultReason) {}

func newRetryClient(total int) (*Requester, *stubPort) {
	r := NewRequester(msg.FirstUserService, total, 1,
		func(i int) []byte { return []byte{byte(i)} }, nil)
	r.TimeoutCycles = 1_000
	return r, &stubPort{}
}

// tickAt runs one Tick at the given cycle. Timeout scans only run on
// 512-aligned cycles, so tests advance the clock in those steps.
func tickAt(r *Requester, p *stubPort, at sim.Cycle) {
	p.now = at
	r.Tick(p)
}

func TestRequesterRetransmitThenReply(t *testing.T) {
	r, p := newRetryClient(1)
	r.RetryLimit = 2

	tickAt(r, p, 0)
	if len(p.sends) != 1 {
		t.Fatalf("initial send count = %d, want 1", len(p.sends))
	}
	// First 512-aligned scan past the timeout: 1536 - 0 > 1000.
	tickAt(r, p, 1536)
	if got := r.Retransmits(); got != 1 {
		t.Fatalf("Retransmits() = %d, want 1", got)
	}
	if len(p.sends) != 2 || p.sends[1].Seq != p.sends[0].Seq {
		t.Fatalf("retransmit did not reuse seq: sends=%v", p.sends)
	}
	// The retransmitted copy is answered: counted as a normal response.
	p.inbox = append(p.inbox, &msg.Message{Type: msg.TReply, Seq: p.sends[0].Seq})
	tickAt(r, p, 1600)
	if r.Responses() != 1 || r.Errors() != 0 || !r.Done() {
		t.Fatalf("responses=%d errs=%d done=%v, want 1/0/true",
			r.Responses(), r.Errors(), r.Done())
	}
}

func TestRequesterRetryExhaustion(t *testing.T) {
	r, p := newRetryClient(1)
	r.RetryLimit = 1

	tickAt(r, p, 0)
	tickAt(r, p, 1536) // retransmit #1 (limit reached)
	tickAt(r, p, 3072) // expires again: abandoned as an error
	if r.Retransmits() != 1 {
		t.Fatalf("Retransmits() = %d, want 1", r.Retransmits())
	}
	if r.Errors() != 1 || !r.Done() {
		t.Fatalf("errs=%d done=%v, want 1/true", r.Errors(), r.Done())
	}
	if len(p.sends) != 2 {
		t.Fatalf("send count = %d, want 2 (original + one retry)", len(p.sends))
	}
}

func TestRequesterZeroRetryKeepsHistoricalBehavior(t *testing.T) {
	r, p := newRetryClient(1)
	tickAt(r, p, 0)
	tickAt(r, p, 1536)
	if r.Retransmits() != 0 || r.Errors() != 1 {
		t.Fatalf("retransmits=%d errs=%d, want 0/1 (abandon on first timeout)",
			r.Retransmits(), r.Errors())
	}
}

func TestRequesterBackoffAfterNACK(t *testing.T) {
	r, p := newRetryClient(4)
	r.BackoffBase = 100
	r.BackoffMax = 400

	tickAt(r, p, 0)
	p.inbox = append(p.inbox, &msg.Message{Type: msg.TError, Seq: 0})
	tickAt(r, p, 1) // NACK arrives: backoff arms, issue pacing pushed out
	sendsAfterNACK := len(p.sends)
	tickAt(r, p, 50) // inside the 100-cycle hold-off: nothing issued
	if len(p.sends) != sendsAfterNACK {
		t.Fatalf("sent during backoff window: %d sends", len(p.sends))
	}
	tickAt(r, p, 101)
	if len(p.sends) != sendsAfterNACK+1 {
		t.Fatalf("backoff never released: %d sends, want %d",
			len(p.sends), sendsAfterNACK+1)
	}
	// A successful reply resets the schedule to the base delay.
	p.inbox = append(p.inbox, &msg.Message{Type: msg.TReply, Seq: p.sends[len(p.sends)-1].Seq})
	tickAt(r, p, 102)
	if r.Responses() != 1 {
		t.Fatalf("responses = %d, want 1", r.Responses())
	}
}

func TestRequesterHardDenialBacksOff(t *testing.T) {
	r, p := newRetryClient(3)
	r.BackoffBase = 200
	p.code = msg.ERevoked // every send is denied at egress

	tickAt(r, p, 0)
	if r.Errors() != 1 {
		t.Fatalf("errs = %d, want 1", r.Errors())
	}
	tickAt(r, p, 100) // still held off
	if r.Errors() != 1 {
		t.Fatalf("probed a revoked endpoint during hold-off: errs=%d", r.Errors())
	}
	tickAt(r, p, 201)
	if r.Errors() != 2 {
		t.Fatalf("errs = %d, want 2 (decaying probe)", r.Errors())
	}
}
