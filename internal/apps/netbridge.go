package apps

import (
	"apiary/internal/accel"
	"apiary/internal/msg"
	"apiary/internal/sim"
)

// NetBridge is the front-end accelerator of a direct-attached service: it
// listens on a network flow via the Apiary network service, turns each
// inbound datagram into work, and sends the result back over the network —
// no CPU anywhere on the path (paper §1).
//
// Work is either processed locally (Process set) or forwarded as a request
// to another on-board service (Target set), composing with the rest of the
// application.
type NetBridge struct {
	accel.TileLocalMarker // pure Port user: safe on the tile's shard
	// (Process, like Stage's, must be a pure function of its input.)

	// Flow is the network flow to listen on.
	Flow uint16
	// Target, when nonzero, receives a TRequest per datagram.
	Target msg.ServiceID
	// Process, used when Target is zero, computes the reply locally.
	Process ProcessFunc
	// BaseCycles models local pipeline occupancy for Process.
	BaseCycles sim.Cycle

	listened  bool
	listenSeq uint32
	nextSeq   uint32
	pend      map[uint32]bridgePend
	out       outQ
	busyTil   sim.Cycle

	// Served counts datagrams answered.
	Served uint64
	// ServedC, when set, mirrors Served into a stats counter (atomic, so
	// tick-phase safe); the fleet wiring points it at the per-service
	// goodput counter the aggregator rolls up.
	ServedC *sim.Counter
}

// bridgePend remembers a forwarded datagram's reply address and trace
// context while the on-board request is in flight.
type bridgePend struct {
	addr msg.NetAddr
	tc   msg.TraceCtx
}

// NewNetBridge builds a bridge listening on flow. Configure Target or
// Process before loading.
func NewNetBridge(flow uint16) *NetBridge {
	return &NetBridge{Flow: flow, pend: make(map[uint32]bridgePend)}
}

// Name implements accel.Accelerator.
func (b *NetBridge) Name() string { return "netbridge" }

// Contexts implements accel.Accelerator.
func (b *NetBridge) Contexts() int { return 1 }

// Reset implements accel.Accelerator.
func (b *NetBridge) Reset() {
	b.listened = false
	b.pend = make(map[uint32]bridgePend)
	b.out = outQ{}
	b.busyTil = 0
}

// Idle implements accel.Idler: until the listen registration succeeds the
// bridge retries it every tick, so it is only idle once listened with an
// empty send queue.
func (b *NetBridge) Idle() bool { return b.listened && b.out.empty() }

// Tick implements accel.Accelerator.
func (b *NetBridge) Tick(p accel.Port) {
	now := p.Now()
	if !b.listened {
		b.listenSeq = b.nextSeq
		b.nextSeq++
		code := p.Send(&msg.Message{
			Type: msg.TNetListen, DstSvc: msg.SvcNet, Seq: b.listenSeq,
			Payload: msg.EncodeNetListenReq(msg.NetListenReq{Flow: b.Flow}),
		})
		if code == msg.EOK {
			b.listened = true
		}
		return
	}
	for i := 0; i < 4; i++ {
		m, ok := p.Recv()
		if !ok {
			break
		}
		b.handle(m, now)
	}
	b.out.flush(p)
}

func (b *NetBridge) handle(m *msg.Message, now sim.Cycle) {
	switch m.Type {
	case msg.TNetRecv:
		ind, err := msg.DecodeNetRecvInd(m.Payload)
		if err != nil {
			return
		}
		if b.Target != 0 {
			seq := b.nextSeq
			b.nextSeq++
			b.pend[seq] = bridgePend{addr: ind.Remote, tc: m.Trace}
			b.out.push(now, &msg.Message{
				Type: msg.TRequest, DstSvc: b.Target, Seq: seq, Payload: ind.Data,
				Trace: m.Trace,
			})
			return
		}
		if b.Process == nil {
			return
		}
		reply, code := b.Process(ind.Data)
		if code != msg.EOK {
			reply = []byte{0xFF, byte(code)}
		}
		at := now
		if b.BaseCycles > 0 {
			if b.busyTil < now {
				b.busyTil = now
			}
			b.busyTil += b.BaseCycles
			at = b.busyTil
		}
		b.serve()
		b.out.push(at, b.netReply(ind.Remote, reply, m.Trace))
	case msg.TReply:
		// The listen ack carries listenSeq, which is never in pend, so it
		// falls through harmlessly.
		if pe, ok := b.pend[m.Seq]; ok {
			delete(b.pend, m.Seq)
			b.serve()
			tc := m.Trace
			if !tc.Valid() {
				tc = pe.tc
			}
			b.out.push(now, b.netReply(pe.addr, m.Payload, tc))
		}
	case msg.TError:
		if pe, ok := b.pend[m.Seq]; ok {
			delete(b.pend, m.Seq)
			b.out.push(now, b.netReply(pe.addr, []byte{0xFF, byte(m.Err)}, pe.tc))
		}
	}
}

func (b *NetBridge) serve() {
	b.Served++
	if b.ServedC != nil {
		b.ServedC.Inc()
	}
}

func (b *NetBridge) netReply(addr msg.NetAddr, data []byte, tc msg.TraceCtx) *msg.Message {
	return &msg.Message{
		Type: msg.TNetSend, DstSvc: msg.SvcNet,
		Payload: msg.EncodeNetSendReq(msg.NetSendReq{Remote: addr, Data: data}),
		Trace:   tc,
	}
}
