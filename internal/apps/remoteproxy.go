package apps

import (
	"encoding/binary"

	"apiary/internal/accel"
	"apiary/internal/msg"
	"apiary/internal/sim"
)

// RemoteProxy answers the paper's §6 question "Can we reasonably completely
// avoid an on-node hosting CPU?": functionality that is "either rarely used
// or exceptionally complex" is not built in hardware at all — a proxy tile
// registers the service locally and forwards each request over the
// datacenter network to a CPU *somewhere else*, keeping the FPGA
// independent of its on-node host. On-board clients are oblivious: they
// hold an ordinary endpoint capability for an ordinary service.
//
// Wire format on the network flow: [seq u32][payload]; the remote service
// echoes the seq with its reply.
type RemoteProxy struct {
	accel.TileLocalMarker // pure Port user: safe on the tile's shard

	// Remote is the CPU service's network address.
	Remote msg.NetAddr
	// Resolve, when set, is consulted per forwarded request instead of
	// Remote — a naming-plane hook: the cluster directory re-binds a fleet
	// service to another board's address on failover, and the proxy picks
	// the new backend up on its next send (including app-level retries of
	// requests the dead board swallowed). It must be a pure read of state
	// that only changes between epochs, so resolution stays deterministic.
	Resolve func() msg.NetAddr
	// Flow is the local flow replies arrive on.
	Flow uint16

	// TraceEvery, when > 0, originates a distributed-trace context on
	// 1-in-TraceEvery forwarded requests (by the proxy's own deterministic
	// request counter — never the simulation RNG, so runs are bit-exact with
	// tracing off or on). The context propagates across the cluster link and
	// back, producing one stitched multi-board span tree per traced request.
	TraceEvery int
	// TraceOrigin is the board ID stamped into originated contexts.
	TraceOrigin uint16
	// TraceSalt makes trace IDs fleet-unique across proxies (the cluster
	// wiring derives it from board and service identity).
	TraceSalt uint64

	// ForwardedC, when set, mirrors Forwarded into a stats counter
	// (tick-phase safe: sim.Counter is atomic).
	ForwardedC *sim.Counter
	// Lat, when set, observes request→reply round-trip cycles. Histogram is
	// normally commit-phase only; this one is a documented exception: it is
	// EXCLUSIVE to this proxy (one writer, the tile's shard worker), so
	// observation order equals the tile's deterministic event order, and
	// readers only look at epoch barriers where the cluster's WaitGroup edge
	// orders the memory — race-free and order-deterministic.
	Lat *sim.Histogram

	listened bool
	nextSeq  uint32
	pend     map[uint32]pendEntry
	out      outQ

	// Forwarded counts requests sent to the remote CPU.
	Forwarded uint64
}

// NewRemoteProxy builds a proxy for the CPU service at remote; replies are
// received on replyFlow.
func NewRemoteProxy(remote msg.NetAddr, replyFlow uint16) *RemoteProxy {
	return &RemoteProxy{Remote: remote, Flow: replyFlow, pend: make(map[uint32]pendEntry)}
}

// traceHash is one splitmix64 mixing step: well-distributed trace/span IDs
// from the proxy's deterministic counters, independent of simulation RNG.
func traceHash(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// EncodeProxyFrame frames a proxied request/reply datagram.
func EncodeProxyFrame(seq uint32, payload []byte) []byte {
	b := make([]byte, 4+len(payload))
	binary.LittleEndian.PutUint32(b, seq)
	copy(b[4:], payload)
	return b
}

// DecodeProxyFrame parses a proxied datagram.
func DecodeProxyFrame(b []byte) (seq uint32, payload []byte, ok bool) {
	if len(b) < 4 {
		return 0, nil, false
	}
	return binary.LittleEndian.Uint32(b), b[4:], true
}

// Name implements accel.Accelerator.
func (r *RemoteProxy) Name() string { return "remoteproxy" }

// Contexts implements accel.Accelerator.
func (r *RemoteProxy) Contexts() int { return 1 }

// Reset implements accel.Accelerator.
func (r *RemoteProxy) Reset() {
	r.listened = false
	r.pend = make(map[uint32]pendEntry)
	r.out = outQ{}
}

// Idle implements accel.Idler: idle once the listen registration stuck and
// nothing is queued to send. Replies from the remote CPU arrive as TNetRecv
// through the shell queue.
func (r *RemoteProxy) Idle() bool { return r.listened && r.out.empty() }

// Tick implements accel.Accelerator.
func (r *RemoteProxy) Tick(p accel.Port) {
	now := p.Now()
	if !r.listened {
		code := p.Send(&msg.Message{
			Type: msg.TNetListen, DstSvc: msg.SvcNet, Seq: 0xFFFFFFFF,
			Payload: msg.EncodeNetListenReq(msg.NetListenReq{Flow: r.Flow}),
		})
		if code == msg.EOK {
			r.listened = true
		}
		return
	}
	for i := 0; i < 4; i++ {
		m, ok := p.Recv()
		if !ok {
			break
		}
		r.handle(m, now)
	}
	r.out.flush(p)
}

func (r *RemoteProxy) handle(m *msg.Message, now sim.Cycle) {
	switch m.Type {
	case msg.TRequest:
		seq := r.nextSeq
		r.nextSeq++
		tc := m.Trace
		if !tc.Valid() && r.TraceEvery > 0 && seq%uint32(r.TraceEvery) == 0 {
			id := traceHash(r.TraceSalt ^ (uint64(seq) + 1))
			if id == 0 {
				id = 1
			}
			tc = msg.TraceCtx{ID: id, Origin: r.TraceOrigin}
		}
		if tc.Valid() {
			tc.Span = traceHash(tc.ID ^ uint64(seq))
		}
		r.pend[seq] = pendEntry{tile: m.SrcTile, ctx: m.SrcCtx, seq: m.Seq, tc: tc, sentAt: now}
		r.Forwarded++
		if r.ForwardedC != nil {
			r.ForwardedC.Inc()
		}
		remote := r.Remote
		if r.Resolve != nil {
			remote = r.Resolve()
		}
		r.out.push(now, &msg.Message{
			Type: msg.TNetSend, DstSvc: msg.SvcNet,
			Payload: msg.EncodeNetSendReq(msg.NetSendReq{
				Remote: remote,
				Data:   EncodeProxyFrame(seq, m.Payload),
			}),
			Trace: tc,
		})
	case msg.TNetRecv:
		ind, err := msg.DecodeNetRecvInd(m.Payload)
		if err != nil {
			return
		}
		seq, payload, ok := DecodeProxyFrame(ind.Data)
		if !ok {
			return
		}
		pe, found := r.pend[seq]
		if !found {
			return
		}
		delete(r.pend, seq)
		if r.Lat != nil {
			r.Lat.Observe(float64(now - pe.sentAt))
		}
		tc := m.Trace
		if !tc.Valid() {
			tc = pe.tc
		}
		r.out.push(now, &msg.Message{
			Type: msg.TReply, DstTile: pe.tile, DstCtx: pe.ctx, Seq: pe.seq,
			Payload: append([]byte(nil), payload...),
			Trace:   tc,
		})
	case msg.TReply, msg.TError:
		// Listen ack or netstack error; nothing to correlate.
	}
}
