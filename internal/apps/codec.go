// Package apps provides the accelerators used by Apiary's examples and
// experiments: the §2 video-encoding pipeline (DCT encoder + third-party
// compressor), a multi-tenant key-value store, checksum and matrix-vector
// kernels, a load-balancing splitter for scale-out, a synthetic requester,
// and a fault-injection wrapper.
//
// The kernels do real computation — the encoder is a genuine 8x8 integer
// DCT with quantization and run-length coding, the compressor a real
// LZ77-style codec — so experiments exercise true dataflow, not stubs.
package apps

import (
	"encoding/binary"
	"fmt"
)

// dctBlock is the 8x8 block size of the encoder.
const dctBlock = 8

// quantTable is a JPEG-luma-like quantization table (flattened 8x8).
var quantTable = [64]int32{
	16, 11, 10, 16, 24, 40, 51, 61,
	12, 12, 14, 19, 26, 58, 60, 55,
	14, 13, 16, 24, 40, 57, 69, 56,
	14, 17, 22, 29, 51, 87, 80, 62,
	18, 22, 37, 56, 68, 109, 103, 77,
	24, 35, 55, 64, 81, 104, 113, 92,
	49, 64, 78, 87, 103, 121, 120, 101,
	72, 92, 95, 98, 112, 100, 103, 99,
}

// zigzag maps scan order to block positions.
var zigzag = [64]int{
	0, 1, 8, 16, 9, 2, 3, 10,
	17, 24, 32, 25, 18, 11, 4, 5,
	12, 19, 26, 33, 40, 48, 41, 34,
	27, 20, 13, 6, 7, 14, 21, 28,
	35, 42, 49, 56, 57, 50, 43, 36,
	29, 22, 15, 23, 30, 37, 44, 51,
	58, 59, 52, 45, 38, 31, 39, 46,
	53, 60, 61, 54, 47, 55, 62, 63,
}

// dct1d is an integer 8-point DCT-II with fixed-point cosine factors,
// scaled by 1<<10.
var cosTab [8][8]int32

func init() {
	// cos((2x+1) u pi / 16) in Q10, computed from an integer-safe table to
	// keep determinism across platforms: round(cos * 1024).
	vals := [8][8]int32{
		{1024, 1024, 1024, 1024, 1024, 1024, 1024, 1024},
		{1004, 851, 569, 200, -200, -569, -851, -1004},
		{946, 392, -392, -946, -946, -392, 392, 946},
		{851, -200, -1004, -569, 569, 1004, 200, -851},
		{724, -724, -724, 724, 724, -724, -724, 724},
		{569, -1004, 200, 851, -851, -200, 1004, -569},
		{392, -946, 946, -392, -392, 946, -946, 392},
		{200, -569, 851, -1004, 1004, -851, 569, -200},
	}
	for u := 0; u < 8; u++ {
		for x := 0; x < 8; x++ {
			cosTab[u][x] = vals[u][x]
		}
	}
}

// fdct8x8 computes a scaled forward DCT of an 8x8 block of centred samples
// (in[i] in [-128,127]) into out.
func fdct8x8(in *[64]int32, out *[64]int32) {
	var tmp [64]int32
	// Rows.
	for y := 0; y < 8; y++ {
		for u := 0; u < 8; u++ {
			var s int32
			for x := 0; x < 8; x++ {
				s += in[y*8+x] * cosTab[u][x]
			}
			tmp[y*8+u] = s >> 10
		}
	}
	// Columns.
	for u := 0; u < 8; u++ {
		for v := 0; v < 8; v++ {
			var s int32
			for y := 0; y < 8; y++ {
				s += tmp[y*8+u] * cosTab[v][y]
			}
			// Normalize by 4 (2D DCT-II scale) after Q10 shift.
			out[v*8+u] = (s >> 10) / 4
		}
	}
}

// EncodeFrame DCT-encodes a frame chunk: the input is treated as a sequence
// of 64-byte blocks (8x8 samples); each block is transformed, quantized,
// zigzag-scanned and run-length coded. The output begins with the original
// length (u32) so decoders and tests can validate framing. Input length is
// padded up to a block multiple internally.
func EncodeFrame(frame []byte) []byte {
	nBlocks := (len(frame) + 63) / 64
	out := make([]byte, 4, 4+len(frame)/2+16)
	binary.LittleEndian.PutUint32(out, uint32(len(frame)))
	var in, coef [64]int32
	for b := 0; b < nBlocks; b++ {
		for i := 0; i < 64; i++ {
			idx := b*64 + i
			var v byte
			if idx < len(frame) {
				v = frame[idx]
			}
			in[i] = int32(v) - 128
		}
		fdct8x8(&in, &coef)
		// Quantize + zigzag + RLE of zeros: pairs (run u8, level i16).
		run := 0
		for s := 0; s < 64; s++ {
			q := coef[zigzag[s]] / quantTable[zigzag[s]]
			if q == 0 && run < 255 {
				run++
				continue
			}
			out = append(out, byte(run))
			var lv [2]byte
			binary.LittleEndian.PutUint16(lv[:], uint16(int16(q)))
			out = append(out, lv[0], lv[1])
			run = 0
		}
		// End-of-block marker: run=255, level=0x7FFF.
		out = append(out, 255, 0xFF, 0x7F)
	}
	return out
}

// DecodeFrameHeader returns the original frame length recorded by
// EncodeFrame.
func DecodeFrameHeader(enc []byte) (int, error) {
	if len(enc) < 4 {
		return 0, fmt.Errorf("apps: truncated encoded frame")
	}
	return int(binary.LittleEndian.Uint32(enc)), nil
}

// CountBlocks reports the number of encoded blocks (by EOB markers).
func CountBlocks(enc []byte) int {
	n := 0
	for i := 4; i+2 < len(enc); i += 3 {
		if enc[i] == 255 && enc[i+1] == 0xFF && enc[i+2] == 0x7F {
			n++
		}
	}
	return n
}

// Compress is an LZ77-style compressor with a 4 KiB window: output is a
// token stream of literals (0x00 len byte data) and matches (0x01 dist u16
// len u8). Small, real, deterministic.
func Compress(src []byte) []byte {
	const window = 4096
	const minMatch = 4
	const maxMatch = 255
	out := make([]byte, 4, len(src)/2+16)
	binary.LittleEndian.PutUint32(out, uint32(len(src)))

	var lit []byte
	flushLit := func() {
		for len(lit) > 0 {
			n := len(lit)
			if n > 255 {
				n = 255
			}
			out = append(out, 0x00, byte(n))
			out = append(out, lit[:n]...)
			lit = lit[n:]
		}
	}

	// Hash chain on 4-byte prefixes.
	head := make(map[uint32]int, 1024)
	hash := func(i int) uint32 {
		return binary.LittleEndian.Uint32(src[i:]) * 2654435761
	}
	i := 0
	for i < len(src) {
		if i+minMatch <= len(src) {
			h := hash(i)
			if j, ok := head[h]; ok && i-j <= window && j < i {
				// Verify and extend.
				n := 0
				for i+n < len(src) && n < maxMatch && src[j+n] == src[i+n] {
					n++
				}
				if n >= minMatch {
					flushLit()
					out = append(out, 0x01)
					var d [2]byte
					binary.LittleEndian.PutUint16(d[:], uint16(i-j))
					out = append(out, d[0], d[1], byte(n))
					// Update hash heads sparsely inside the match.
					for k := i; k < i+n && k+minMatch <= len(src); k += 2 {
						head[hash(k)] = k
					}
					i += n
					continue
				}
			}
			head[h] = i
		}
		lit = append(lit, src[i])
		i++
	}
	flushLit()
	return out
}

// Decompress inverts Compress.
func Decompress(comp []byte) ([]byte, error) {
	if len(comp) < 4 {
		return nil, fmt.Errorf("apps: truncated compressed data")
	}
	want := int(binary.LittleEndian.Uint32(comp))
	out := make([]byte, 0, want)
	i := 4
	for i < len(comp) {
		switch comp[i] {
		case 0x00:
			if i+2 > len(comp) {
				return nil, fmt.Errorf("apps: bad literal token at %d", i)
			}
			n := int(comp[i+1])
			if i+2+n > len(comp) {
				return nil, fmt.Errorf("apps: literal overruns input at %d", i)
			}
			out = append(out, comp[i+2:i+2+n]...)
			i += 2 + n
		case 0x01:
			if i+4 > len(comp) {
				return nil, fmt.Errorf("apps: bad match token at %d", i)
			}
			dist := int(binary.LittleEndian.Uint16(comp[i+1:]))
			n := int(comp[i+3])
			if dist == 0 || dist > len(out) {
				return nil, fmt.Errorf("apps: bad match distance %d at %d", dist, i)
			}
			for k := 0; k < n; k++ {
				out = append(out, out[len(out)-dist])
			}
			i += 4
		default:
			return nil, fmt.Errorf("apps: unknown token %#x at %d", comp[i], i)
		}
	}
	if len(out) != want {
		return nil, fmt.Errorf("apps: decompressed %d bytes, header says %d", len(out), want)
	}
	return out, nil
}

// Checksum64 is the FNV-1a checksum kernel used by the checksum accelerator.
func Checksum64(p []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, b := range p {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return h
}

// MatVec8 computes out = W·x over int8 with int32 accumulation; W is rows x
// cols in row-major order. It is the ML-inference-style kernel.
func MatVec8(w []int8, rows, cols int, x []int8) ([]int32, error) {
	if len(w) != rows*cols || len(x) != cols {
		return nil, fmt.Errorf("apps: matvec shape mismatch")
	}
	out := make([]int32, rows)
	for r := 0; r < rows; r++ {
		var acc int32
		row := w[r*cols : (r+1)*cols]
		for c := 0; c < cols; c++ {
			acc += int32(row[c]) * int32(x[c])
		}
		out[r] = acc
	}
	return out, nil
}
