package apps

import (
	"bytes"
	"testing"

	"apiary/internal/accel"
	"apiary/internal/msg"
	"apiary/internal/sim"
)

// Checkpoint/restore contract tests for the two checkpointable services,
// plus the client-side guarantee that makes a migration window survivable:
// EQuiescing bounces are retryable and exempt from the breaker trip budget.

func TestRequesterQuiescingExemptFromBreaker(t *testing.T) {
	r, p := newRetryClient(1)
	r.RetryNacks = true
	r.RetryLimit = 8
	r.BreakerThreshold = 1 // a single breaker failure would open it

	tickAt(r, p, 0)
	seq := p.sends[0].Seq
	// The target is quiescing for a migration: every request bounces with
	// the retryable EQuiescing. Unlike EBusy, these must NOT count toward
	// the breaker trip budget — a client rides the window out on backoff
	// alone.
	var at sim.Cycle
	for i := 0; i < 4; i++ {
		p.inbox = append(p.inbox, &msg.Message{Type: msg.TError,
			Err: msg.EQuiescing, Seq: seq})
		tickAt(r, p, at+1)
		at += 65 // parked resend delay
		tickAt(r, p, at)
	}
	if got := r.Breaker().Opens(); got != 0 {
		t.Fatalf("breaker opened %d times on EQuiescing bounces", got)
	}
	if r.Errors() != 0 {
		t.Fatalf("errs = %d, want 0 (EQuiescing is transient)", r.Errors())
	}
	if len(p.sends) != 5 {
		t.Fatalf("sends = %d, want 5 (initial + 4 retries)", len(p.sends))
	}
	// Migration done, the re-minted endpoint answers: zero lost.
	p.inbox = append(p.inbox, &msg.Message{Type: msg.TReply, Seq: seq})
	tickAt(r, p, at+1)
	if r.Responses() != 1 || r.Errors() != 0 {
		t.Fatalf("resp=%d errs=%d after migration window", r.Responses(), r.Errors())
	}
}

func TestKVStoreSaveRestoreFixedPoint(t *testing.T) {
	kv := NewKVStore(2)
	// Populate tenant 0 through the request path and tenant 1 directly via
	// restore, then check Save(Restore(Save(x))) == Save(x) per context.
	port := &stubPort{}
	for _, kvp := range [][2]string{{"alpha", "1"}, {"beta", "two"}, {"k", ""}} {
		port.inbox = append(port.inbox, &msg.Message{Type: msg.TRequest,
			Payload: EncodeKVReq(KVPut, kvp[0], kvp[1])})
	}
	for i := 0; i < 8; i++ {
		port.now = sim.Cycle(i * 10) // ride out the hash-probe busy window
		kv.Tick(port)
	}
	if kv.Len(0) != 3 {
		t.Fatalf("tenant 0 has %d keys, want 3", kv.Len(0))
	}

	for ctx := uint8(0); ctx < 2; ctx++ {
		blob, err := kv.SaveContext(ctx)
		if err != nil {
			t.Fatal(err)
		}
		other := NewKVStore(2)
		if err := other.RestoreContext(ctx, blob); err != nil {
			t.Fatal(err)
		}
		again, err := other.SaveContext(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(blob, again) {
			t.Fatalf("ctx %d: save-restore-save not a fixed point:\n%x\n%x",
				ctx, blob, again)
		}
		if other.Len(ctx) != kv.Len(ctx) {
			t.Fatalf("ctx %d: restored %d keys, want %d",
				ctx, other.Len(ctx), kv.Len(ctx))
		}
	}
	// Contexts restore independently: tenant 1 stayed empty.
	if kv.Len(1) != 0 {
		t.Fatal("tenant isolation broken")
	}
	if err := kv.RestoreContext(5, nil); err == nil {
		t.Fatal("restore into missing context accepted")
	}
}

func TestStageSaveRestoreFixedPoint(t *testing.T) {
	st := NewStage(StageConfig{Name: "xf", Next: 77,
		Process: func(in []byte) ([]byte, msg.ErrCode) { return in, msg.EOK }})
	// Drive a couple of requests through a port that swallows the
	// downstream sends, leaving pend entries in flight — exactly the state
	// a mid-pipeline checkpoint must carry.
	port := &stubPort{}
	port.inbox = append(port.inbox,
		&msg.Message{Type: msg.TRequest, Seq: 11, SrcTile: 3, Payload: []byte{1}},
		&msg.Message{Type: msg.TRequest, Seq: 12, SrcTile: 4, Payload: []byte{2}},
	)
	for i := 0; i < 6; i++ {
		port.now = sim.Cycle(i + 1)
		st.Tick(port)
	}
	if st.Quiescent() {
		t.Fatal("stage should have in-flight downstream calls")
	}

	blob, err := st.SaveContext(0)
	if err != nil {
		t.Fatal(err)
	}
	fresh := NewStage(StageConfig{Name: "xf", Next: 77,
		Process: func(in []byte) ([]byte, msg.ErrCode) { return in, msg.EOK }})
	if err := fresh.RestoreContext(0, blob); err != nil {
		t.Fatal(err)
	}
	again, err := fresh.SaveContext(0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, again) {
		t.Fatalf("save-restore-save not a fixed point:\n%x\n%x", blob, again)
	}
	if fresh.Quiescent() {
		t.Fatal("restored stage lost its pend table")
	}
	// Malformed blobs bounce with the stage untouched.
	if err := fresh.RestoreContext(0, blob[:len(blob)-1]); err == nil {
		t.Fatal("truncated blob accepted")
	}
	if err := fresh.RestoreContext(1, blob); err == nil {
		t.Fatal("restore into missing context accepted")
	}
	if got, _ := fresh.SaveContext(0); !bytes.Equal(got, blob) {
		t.Fatal("failed restore mutated the stage")
	}
}

var _ accel.Checkpointable = (*KVStore)(nil)
var _ accel.Checkpointable = (*Stage)(nil)
