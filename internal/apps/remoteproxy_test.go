package apps

import (
	"bytes"
	"strings"
	"testing"

	"apiary/internal/accel"
	"apiary/internal/core"
	"apiary/internal/msg"
	"apiary/internal/netsim"
	"apiary/internal/netstack"
)

const proxySvc = msg.FirstUserService + 9

// TestRemoteCPUService: an on-board client calls an ordinary service that
// is actually served by a remote CPU, through the RemoteProxy tile —
// the §6 "avoid the on-node CPU" pattern.
func TestRemoteCPUService(t *testing.T) {
	s, _ := bootNet(t)

	// The "remote CPU" is a software endpoint running an uppercase service.
	cpu := newCPUService(t, s)

	proxy := NewRemoteProxy(msg.NetAddr{Node: uint32(cpu), Flow: 9000}, 9001)
	lat := s.Stats.Histogram("proxy.lat")
	client := NewRequester(proxySvc, 20, 50,
		func(i int) []byte { return []byte("hello remote cpu") }, lat)
	if _, err := s.Kernel.LoadApp(core.AppSpec{
		Name: "proxied",
		Accels: []core.AppAccel{
			{Name: "proxy", New: func() accel.Accelerator { return proxy },
				Service: proxySvc, WantNet: true},
			{Name: "client", New: func() accel.Accelerator { return client },
				Connect: []msg.ServiceID{proxySvc}},
		},
	}); err != nil {
		t.Fatal(err)
	}
	if !s.RunUntil(client.Done, 50_000_000) {
		t.Fatalf("proxied requests incomplete: %d ok %d err",
			client.Responses(), client.Errors())
	}
	if client.Errors() != 0 {
		t.Fatalf("errors: %d", client.Errors())
	}
	if !bytes.Equal(client.LastReply(), []byte("HELLO REMOTE CPU")) {
		t.Fatalf("remote service reply = %q", client.LastReply())
	}
	if proxy.Forwarded != 20 {
		t.Fatalf("forwarded = %d", proxy.Forwarded)
	}
	// The network round trip must be visible in the latency: far more than
	// an on-chip IPC (tens of cycles).
	if lat.Median() < 500 {
		t.Fatalf("proxied latency %v cycles implausibly low for a network hop", lat.Median())
	}
}

// newCPUService attaches a software uppercase service to the board's fabric
// on flow 9000 and returns its node id.
func newCPUService(t *testing.T, s *core.System) netsim.NodeID {
	t.Helper()
	const node = netsim.NodeID(77)
	ep := newSoft(t, s, node)
	ep.OnDatagram(func(remote netsim.NodeID, flow uint16, data []byte, _ msg.TraceCtx) {
		seq, payload, ok := DecodeProxyFrame(data)
		if !ok {
			return
		}
		out := []byte(strings.ToUpper(string(payload)))
		// Reply to the proxy's listen flow.
		_ = ep.Send(remote, 9001, EncodeProxyFrame(seq, out))
	})
	return node
}

// newSoft attaches one more software endpoint to the board's fabric.
func newSoft(t *testing.T, s *core.System, node netsim.NodeID) *netstack.SoftEndpoint {
	t.Helper()
	return netstack.NewSoftEndpoint(s.Engine, s.Stats, s.Fabric, node,
		netsim.LinkConfig{Gbps: 100, LatencyNs: 500})
}

func TestProxyFrameRoundTrip(t *testing.T) {
	b := EncodeProxyFrame(42, []byte("x"))
	seq, payload, ok := DecodeProxyFrame(b)
	if !ok || seq != 42 || string(payload) != "x" {
		t.Fatalf("frame round trip: %v %v %v", seq, payload, ok)
	}
	if _, _, ok := DecodeProxyFrame([]byte{1, 2}); ok {
		t.Fatal("short frame decoded")
	}
}
