package apps

import (
	"encoding/binary"
	"sort"

	"apiary/internal/accel"
	"apiary/internal/msg"
	"apiary/internal/sim"
)

// KVStore is the multi-tenant key-value-store accelerator from the paper's
// §2 scenario (and the Caribou multi-tenancy discussion in §5). Each
// process context is an isolated tenant with its own keyspace. The
// accelerator is *preemptible*: per-context state can be saved, restored
// and killed, so a fault in one tenant's context does not fail-stop the
// tile (paper §4.4).
//
// Request payload:  op(1) klen(2) key vlen(2) value
// Reply payload:    status(1) [value]      status: 0 ok, 1 not-found
type KVStore struct {
	accel.TileLocalMarker // pure Port user: safe on the tile's shard

	tenants []map[string]string
	busyTil sim.Cycle
	out     outQ

	// SegRef, when set to a valid segment capability reference, enables
	// KVSnap/KVRestore persistence through the memory service.
	SegRef uint32

	memSeq  uint32
	pendMem map[uint32]pendingMemOp

	// Ops counts successful operations per tenant (observability).
	Ops []uint64
}

// pendingMemOp tracks one in-flight snapshot/restore.
type pendingMemOp struct {
	reply   pendEntry
	ctx     uint8
	restore bool
}

// KV opcodes. KVSnap/KVRestore checkpoint one tenant's keyspace into the
// store's memory segment through the memory service — the "state that it
// needs to maintain between invocations" of the paper's microservice
// discussion (§1), surviving a tile reconfiguration.
const (
	KVPut     = 1
	KVGet     = 2
	KVDel     = 3
	KVSnap    = 4
	KVRestore = 5
)

// EncodeKVReq builds a request payload.
func EncodeKVReq(op byte, key, value string) []byte {
	b := make([]byte, 0, 5+len(key)+len(value))
	b = append(b, op)
	var u [2]byte
	binary.LittleEndian.PutUint16(u[:], uint16(len(key)))
	b = append(b, u[0], u[1])
	b = append(b, key...)
	binary.LittleEndian.PutUint16(u[:], uint16(len(value)))
	b = append(b, u[0], u[1])
	b = append(b, value...)
	return b
}

// DecodeKVReq parses a request payload.
func DecodeKVReq(b []byte) (op byte, key, value string, ok bool) {
	if len(b) < 5 {
		return 0, "", "", false
	}
	op = b[0]
	kl := int(binary.LittleEndian.Uint16(b[1:]))
	if len(b) < 3+kl+2 {
		return 0, "", "", false
	}
	key = string(b[3 : 3+kl])
	vl := int(binary.LittleEndian.Uint16(b[3+kl:]))
	if len(b) < 5+kl+vl {
		return 0, "", "", false
	}
	value = string(b[5+kl : 5+kl+vl])
	return op, key, value, true
}

// NewKVStore builds a store with the given tenant (context) count.
func NewKVStore(tenants int) *KVStore {
	if tenants < 1 {
		tenants = 1
	}
	kv := &KVStore{Ops: make([]uint64, tenants), pendMem: make(map[uint32]pendingMemOp)}
	kv.tenants = make([]map[string]string, tenants)
	for i := range kv.tenants {
		kv.tenants[i] = make(map[string]string)
	}
	return kv
}

// Name implements accel.Accelerator.
func (k *KVStore) Name() string { return "kvstore" }

// Contexts implements accel.Accelerator.
func (k *KVStore) Contexts() int { return len(k.tenants) }

// Reset implements accel.Accelerator.
func (k *KVStore) Reset() {
	for i := range k.tenants {
		k.tenants[i] = make(map[string]string)
	}
	k.out = outQ{}
	k.busyTil = 0
	k.pendMem = make(map[uint32]pendingMemOp)
	// SegRef survives reset: the capability slot is re-installed by the
	// kernel with the tile's configuration, not by the accelerator.
}

// Idle implements accel.Idler: with an empty shell queue and an empty send
// queue, Tick does nothing. In-flight memory ops (pendMem) wake the tile
// when their TMemReply is delivered.
func (k *KVStore) Idle() bool { return k.out.empty() }

// Quiescent implements accel.Quiescer: the store holds no in-flight work
// once its send queue is empty AND no memory-service op is outstanding —
// Idle alone would let a checkpoint race an in-flight KVSnap/KVRestore.
func (k *KVStore) Quiescent() bool { return k.out.empty() && len(k.pendMem) == 0 }

// SetSegRef re-points the store at its snapshot segment reference. The
// kernel calls this after migration: the app lands in a new region whose
// segment capability may occupy a different table slot, and the reference
// is architectural state the snapshot deliberately does not carry.
func (k *KVStore) SetSegRef(ref uint32) { k.SegRef = ref }

// Tick implements accel.Accelerator. While a snapshot/restore is in flight
// the store stops accepting new requests: memory-service completions are
// asynchronous, and serving reads against a half-restored keyspace would
// violate the checkpoint's atomicity.
func (k *KVStore) Tick(p accel.Port) {
	now := p.Now()
	if now >= k.busyTil {
		if m, ok := p.Recv(); ok {
			if m.Type == msg.TRequest && len(k.pendMem) > 0 {
				// Stall: requeue is not possible, so bounce with EBusy;
				// the shell queue plus this are the flow-control story.
				k.out.push(now, m.ErrorReply(msg.EBusy))
			} else {
				k.handle(m, now)
			}
		}
	}
	k.out.flush(p)
}

func (k *KVStore) handle(m *msg.Message, now sim.Cycle) {
	if m.Type == msg.TMemReply || m.Type == msg.TError {
		k.handleMemReply(m, now)
		return
	}
	if m.Type != msg.TRequest {
		return
	}
	if int(m.DstCtx) >= len(k.tenants) {
		k.out.push(now, m.ErrorReply(msg.ENoContext))
		return
	}
	op, key, value, ok := DecodeKVReq(m.Payload)
	if !ok {
		k.out.push(now, m.ErrorReply(msg.EBadMsg))
		return
	}
	if op == KVSnap || op == KVRestore {
		k.startMemOp(m, op == KVRestore, now)
		return
	}
	t := k.tenants[m.DstCtx]
	// Hash-probe pipeline: a handful of cycles per op.
	k.busyTil = now + 6
	var reply []byte
	switch op {
	case KVPut:
		t[key] = value
		reply = []byte{0}
	case KVGet:
		v, found := t[key]
		if !found {
			reply = []byte{1}
		} else {
			reply = append([]byte{0}, v...)
		}
	case KVDel:
		if _, found := t[key]; !found {
			reply = []byte{1}
		} else {
			delete(t, key)
			reply = []byte{0}
		}
	default:
		k.out.push(now, m.ErrorReply(msg.EBadMsg))
		return
	}
	k.Ops[m.DstCtx]++
	k.out.push(k.busyTil, m.Reply(msg.TReply, reply))
}

// snapSlotBytes is the per-tenant region inside the store's segment.
const snapSlotBytes = 4096

// startMemOp issues the memory-service side of KVSnap/KVRestore. Each
// tenant checkpoints into its own snapSlotBytes slot: [len u32][state].
func (k *KVStore) startMemOp(m *msg.Message, restore bool, now sim.Cycle) {
	if k.SegRef == 0 {
		k.out.push(now, m.ErrorReply(msg.ENoCap))
		return
	}
	ctx := m.DstCtx
	off := uint64(ctx) * snapSlotBytes
	seq := 0x80000000 | k.memSeq // high bit avoids client-seq collisions
	k.memSeq++
	var req *msg.Message
	if restore {
		req = &msg.Message{
			Type: msg.TMemRead, DstSvc: msg.SvcMemory, CapRef: k.SegRef, Seq: seq,
			Payload: msg.EncodeMemReq(msg.MemReq{Offset: off, Length: snapSlotBytes}),
		}
	} else {
		state, err := k.SaveContext(ctx)
		if err != nil || 4+len(state) > snapSlotBytes {
			k.out.push(now, m.ErrorReply(msg.ETooBig))
			return
		}
		buf := make([]byte, 4+len(state))
		binary.LittleEndian.PutUint32(buf, uint32(len(state)))
		copy(buf[4:], state)
		req = &msg.Message{
			Type: msg.TMemWrite, DstSvc: msg.SvcMemory, CapRef: k.SegRef, Seq: seq,
			Payload: msg.EncodeMemReq(msg.MemReq{Offset: off, Data: buf}),
		}
	}
	k.pendMem[seq] = pendingMemOp{
		reply:   pendEntry{tile: m.SrcTile, ctx: m.SrcCtx, seq: m.Seq},
		ctx:     ctx,
		restore: restore,
	}
	k.out.push(now, req)
}

// handleMemReply completes an in-flight snapshot/restore.
func (k *KVStore) handleMemReply(m *msg.Message, now sim.Cycle) {
	op, ok := k.pendMem[m.Seq]
	if !ok {
		return
	}
	delete(k.pendMem, m.Seq)
	done := func(status byte) {
		k.out.push(now, &msg.Message{
			Type: msg.TReply, DstTile: op.reply.tile, DstCtx: op.reply.ctx,
			Seq: op.reply.seq, Payload: []byte{status},
		})
	}
	if m.Type == msg.TError {
		k.out.push(now, &msg.Message{
			Type: msg.TError, Err: m.Err, DstTile: op.reply.tile,
			DstCtx: op.reply.ctx, Seq: op.reply.seq,
		})
		return
	}
	if !op.restore {
		done(0)
		return
	}
	if len(m.Payload) < 4 {
		done(1)
		return
	}
	n := binary.LittleEndian.Uint32(m.Payload)
	if int(n) > len(m.Payload)-4 {
		done(1)
		return
	}
	if err := k.RestoreContext(op.ctx, m.Payload[4:4+n]); err != nil {
		done(1)
		return
	}
	k.Ops[op.ctx]++
	done(0)
}

// SaveContext implements accel.Preemptible: a deterministic serialization
// of one tenant's keyspace.
func (k *KVStore) SaveContext(ctx uint8) ([]byte, error) {
	if int(ctx) >= len(k.tenants) {
		return nil, msg.ENoContext.Error()
	}
	t := k.tenants[ctx]
	keys := make([]string, 0, len(t))
	for key := range t {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	var out []byte
	var u [2]byte
	for _, key := range keys {
		binary.LittleEndian.PutUint16(u[:], uint16(len(key)))
		out = append(out, u[0], u[1])
		out = append(out, key...)
		v := t[key]
		binary.LittleEndian.PutUint16(u[:], uint16(len(v)))
		out = append(out, u[0], u[1])
		out = append(out, v...)
	}
	return out, nil
}

// RestoreContext implements accel.Preemptible.
func (k *KVStore) RestoreContext(ctx uint8, state []byte) error {
	if int(ctx) >= len(k.tenants) {
		return msg.ENoContext.Error()
	}
	t := make(map[string]string)
	i := 0
	for i+2 <= len(state) {
		kl := int(binary.LittleEndian.Uint16(state[i:]))
		i += 2
		if i+kl+2 > len(state) {
			return msg.EBadMsg.Error()
		}
		key := string(state[i : i+kl])
		i += kl
		vl := int(binary.LittleEndian.Uint16(state[i:]))
		i += 2
		if i+vl > len(state) {
			return msg.EBadMsg.Error()
		}
		t[key] = string(state[i : i+vl])
		i += vl
	}
	k.tenants[ctx] = t
	return nil
}

// KillContext implements accel.Preemptible.
func (k *KVStore) KillContext(ctx uint8) {
	if int(ctx) < len(k.tenants) {
		k.tenants[ctx] = make(map[string]string)
	}
}

// Len reports tenant ctx's key count (for tests).
func (k *KVStore) Len(ctx uint8) int { return len(k.tenants[ctx]) }
