package apps

import (
	"encoding/binary"
	"sort"

	"apiary/internal/accel"
	"apiary/internal/msg"
	"apiary/internal/sim"
)

// ProcessFunc transforms one request payload into an output payload. err
// (as an Apiary error code) aborts the request with a TError to the caller.
type ProcessFunc func(in []byte) (out []byte, code msg.ErrCode)

// StageConfig parameterizes a Stage accelerator.
type StageConfig struct {
	Name string
	// Process is the stage's kernel. Stage is marked accel.TileLocal, so
	// Process must be a pure function of its input (the stock stages all
	// are); a closure over shared mutable state would break the sharded
	// tick contract.
	Process ProcessFunc
	// Next, when nonzero, forwards the processed output as a new request
	// to another service (pipeline composition, paper §2); the downstream
	// reply is routed back to the original requester. When zero the stage
	// replies directly.
	Next msg.ServiceID
	// BaseCycles + CyclesPerByte model the hardware pipeline's occupancy
	// per request.
	BaseCycles    sim.Cycle
	CyclesPerByte float64
}

// pendEntry remembers the original requester while a downstream call is in
// flight, plus the request's sideband trace context and send cycle (for
// proxy RTT observation).
type pendEntry struct {
	tile   msg.TileID
	ctx    uint8
	seq    uint32
	tc     msg.TraceCtx
	sentAt sim.Cycle
}

// timedMsg is a message that becomes sendable at a given cycle.
type timedMsg struct {
	at sim.Cycle
	m  *msg.Message
}

// outQ is a time-ordered send queue honouring monitor backpressure.
type outQ struct{ items []timedMsg }

func (q *outQ) push(at sim.Cycle, m *msg.Message) {
	q.items = append(q.items, timedMsg{at, m})
}

// empty reports whether no messages are queued (due now or later).
func (q *outQ) empty() bool { return len(q.items) == 0 }

// flush sends every due message; stops on backpressure (ERateLimited/EBusy)
// and drops on hard errors (the destination will have NACKed or is gone).
func (q *outQ) flush(p accel.Port) {
	for len(q.items) > 0 {
		it := q.items[0]
		if it.at > p.Now() {
			return
		}
		code := p.Send(it.m)
		if code == msg.ERateLimited || code == msg.EBusy {
			return // retry next tick
		}
		q.items = q.items[1:]
	}
}

// Stage is a generic single-context pipeline accelerator: consume a
// request, run the kernel, occupy the pipeline for the modelled time, then
// reply or forward. It is the workhorse behind the encoder, compressor,
// checksum and matvec accelerators.
type Stage struct {
	accel.TileLocalMarker // pure Port user: safe on the tile's shard

	cfg     StageConfig
	busyTil sim.Cycle
	nextSeq uint32
	pend    map[uint32]pendEntry
	out     outQ

	processed uint64
	errors    uint64
}

// NewStage builds a Stage accelerator.
func NewStage(cfg StageConfig) *Stage {
	return &Stage{cfg: cfg, pend: make(map[uint32]pendEntry)}
}

// Processed reports requests completed by the kernel.
func (s *Stage) Processed() uint64 { return s.processed }

// Name implements accel.Accelerator.
func (s *Stage) Name() string { return s.cfg.Name }

// Contexts implements accel.Accelerator.
func (s *Stage) Contexts() int { return 1 }

// Reset implements accel.Accelerator.
func (s *Stage) Reset() {
	s.busyTil = 0
	s.pend = make(map[uint32]pendEntry)
	s.out = outQ{}
}

// Idle implements accel.Idler: with no inbound messages (the shell's
// precondition for consulting us) and nothing queued to send, Tick does
// nothing. Replies the stage is still waiting for arrive through the shell
// queue, which wakes the tile.
func (s *Stage) Idle() bool { return s.out.empty() }

// Quiescent implements accel.Quiescer: drained means nothing parked in the
// send queue and no downstream call still awaiting its reply.
func (s *Stage) Quiescent() bool { return s.out.empty() && len(s.pend) == 0 }

// Stage checkpoint layout (little-endian): nextSeq u32, processed u64,
// errors u64, pend count u32, then per entry (ascending downstream seq):
// dseq u32, tile u16, ctx u8, seq u32, sentAt u64, trace id/span u64 u64,
// trace origin u16.
const stageHdrBytes = 4 + 8 + 8 + 4
const stagePendBytes = 4 + 2 + 1 + 4 + 8 + 8 + 8 + 2

// SaveContext implements accel.Checkpointable (deterministic: the pend
// table serializes in ascending downstream-sequence order). Stage is
// deliberately NOT Preemptible — its single context has no isolation to
// offer, so a fault keeps fail-stopping the tile — but a quiescent stage
// checkpoints completely: counters, the sequence cursor, and any pend
// entries a non-quiescent save catches in flight.
func (s *Stage) SaveContext(ctx uint8) ([]byte, error) {
	if ctx != 0 {
		return nil, msg.ENoContext.Error()
	}
	seqs := make([]uint32, 0, len(s.pend))
	for seq := range s.pend {
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	out := make([]byte, stageHdrBytes, stageHdrBytes+len(seqs)*stagePendBytes)
	binary.LittleEndian.PutUint32(out[0:], s.nextSeq)
	binary.LittleEndian.PutUint64(out[4:], s.processed)
	binary.LittleEndian.PutUint64(out[12:], s.errors)
	binary.LittleEndian.PutUint32(out[20:], uint32(len(seqs)))
	var e [stagePendBytes]byte
	for _, dseq := range seqs {
		pe := s.pend[dseq]
		binary.LittleEndian.PutUint32(e[0:], dseq)
		binary.LittleEndian.PutUint16(e[4:], uint16(pe.tile))
		e[6] = pe.ctx
		binary.LittleEndian.PutUint32(e[7:], pe.seq)
		binary.LittleEndian.PutUint64(e[11:], uint64(pe.sentAt))
		binary.LittleEndian.PutUint64(e[19:], pe.tc.ID)
		binary.LittleEndian.PutUint64(e[27:], pe.tc.Span)
		binary.LittleEndian.PutUint16(e[35:], pe.tc.Origin)
		out = append(out, e[:]...)
	}
	return out, nil
}

// RestoreContext implements accel.Checkpointable. Bounds are validated
// before any mutation: a malformed blob returns an error with the stage
// untouched.
func (s *Stage) RestoreContext(ctx uint8, state []byte) error {
	if ctx != 0 {
		return msg.ENoContext.Error()
	}
	if len(state) < stageHdrBytes {
		return msg.EBadMsg.Error()
	}
	n := binary.LittleEndian.Uint32(state[20:])
	if uint64(len(state)) != uint64(stageHdrBytes)+uint64(n)*stagePendBytes {
		return msg.EBadMsg.Error()
	}
	pend := make(map[uint32]pendEntry, n)
	for i := uint32(0); i < n; i++ {
		e := state[stageHdrBytes+int(i)*stagePendBytes:]
		dseq := binary.LittleEndian.Uint32(e[0:])
		if _, dup := pend[dseq]; dup {
			return msg.EBadMsg.Error()
		}
		pend[dseq] = pendEntry{
			tile:   msg.TileID(binary.LittleEndian.Uint16(e[4:])),
			ctx:    e[6],
			seq:    binary.LittleEndian.Uint32(e[7:]),
			sentAt: sim.Cycle(binary.LittleEndian.Uint64(e[11:])),
			tc: msg.TraceCtx{
				ID:     binary.LittleEndian.Uint64(e[19:]),
				Span:   binary.LittleEndian.Uint64(e[27:]),
				Origin: binary.LittleEndian.Uint16(e[35:]),
			},
		}
	}
	s.nextSeq = binary.LittleEndian.Uint32(state[0:])
	s.processed = binary.LittleEndian.Uint64(state[4:])
	s.errors = binary.LittleEndian.Uint64(state[12:])
	s.pend = pend
	s.busyTil = 0 // occupancy is wall-clock state; a restored stage is free
	return nil
}

// cost models pipeline occupancy for n payload bytes.
func (s *Stage) cost(n int) sim.Cycle {
	return s.cfg.BaseCycles + sim.Cycle(s.cfg.CyclesPerByte*float64(n))
}

// Tick implements accel.Accelerator.
func (s *Stage) Tick(p accel.Port) {
	now := p.Now()
	// Accept one new request per tick when the pipeline is free.
	if now >= s.busyTil {
		if m, ok := p.Recv(); ok {
			s.handle(p, m, now)
		}
	}
	s.out.flush(p)
}

func (s *Stage) handle(p accel.Port, m *msg.Message, now sim.Cycle) {
	switch m.Type {
	case msg.TRequest, msg.TOneway:
		out, code := s.cfg.Process(m.Payload)
		if code != msg.EOK {
			s.errors++
			if m.Type == msg.TRequest {
				s.out.push(now, m.ErrorReply(code))
			}
			return
		}
		s.processed++
		done := now + s.cost(len(m.Payload))
		s.busyTil = done
		if s.cfg.Next == 0 {
			if m.Type == msg.TRequest {
				s.out.push(done, m.Reply(msg.TReply, out))
			}
			return
		}
		// Forward downstream; remember who asked.
		seq := s.nextSeq
		s.nextSeq++
		s.pend[seq] = pendEntry{tile: m.SrcTile, ctx: m.SrcCtx, seq: m.Seq, tc: m.Trace}
		s.out.push(done, &msg.Message{
			Type: msg.TRequest, DstSvc: s.cfg.Next, Seq: seq, Payload: out,
			Trace: m.Trace,
		})
	case msg.TReply, msg.TError:
		pe, ok := s.pend[m.Seq]
		if !ok {
			return
		}
		delete(s.pend, m.Seq)
		r := &msg.Message{
			Type: m.Type, Err: m.Err, DstTile: pe.tile, DstCtx: pe.ctx,
			Seq: pe.seq, Payload: m.Payload, Trace: m.Trace,
		}
		if !r.Trace.Valid() {
			r.Trace = pe.tc
		}
		s.out.push(now, r)
	}
}

// NewEncoder builds the §2 video-encoder accelerator. next is the
// compression service to compose with (0 = reply directly).
func NewEncoder(next msg.ServiceID) *Stage {
	return NewStage(StageConfig{
		Name: "videoenc",
		Process: func(in []byte) ([]byte, msg.ErrCode) {
			if len(in) == 0 {
				return nil, msg.EBadMsg
			}
			return EncodeFrame(in), msg.EOK
		},
		Next:          next,
		BaseCycles:    32,
		CyclesPerByte: 0.5, // 2 samples/cycle through the DCT pipe
	})
}

// NewCompressor builds the third-party compression accelerator.
func NewCompressor() *Stage {
	return NewStage(StageConfig{
		Name: "compress",
		Process: func(in []byte) ([]byte, msg.ErrCode) {
			return Compress(in), msg.EOK
		},
		BaseCycles:    16,
		CyclesPerByte: 0.25,
	})
}

// NewChecksum builds a checksum accelerator returning the FNV-1a digest.
func NewChecksum() *Stage {
	return NewStage(StageConfig{
		Name: "checksum",
		Process: func(in []byte) ([]byte, msg.ErrCode) {
			h := Checksum64(in)
			out := make([]byte, 8)
			for i := 0; i < 8; i++ {
				out[i] = byte(h >> (8 * i))
			}
			return out, msg.EOK
		},
		BaseCycles:    8,
		CyclesPerByte: 0.0625, // 16 bytes/cycle
	})
}

// NewMatVec builds an inference-style accelerator with fixed internal
// weights of the given shape; requests carry x (int8), replies carry the
// int32 result vector little-endian.
func NewMatVec(rows, cols int, seed uint64) *Stage {
	w := make([]int8, rows*cols)
	rng := sim.NewRNG(seed)
	for i := range w {
		w[i] = int8(rng.Intn(256) - 128)
	}
	return NewStage(StageConfig{
		Name: "matvec",
		Process: func(in []byte) ([]byte, msg.ErrCode) {
			if len(in) != cols {
				return nil, msg.EBadMsg
			}
			x := make([]int8, cols)
			for i, b := range in {
				x[i] = int8(b)
			}
			y, err := MatVec8(w, rows, cols, x)
			if err != nil {
				return nil, msg.EBadMsg
			}
			out := make([]byte, 4*rows)
			for i, v := range y {
				out[4*i] = byte(v)
				out[4*i+1] = byte(v >> 8)
				out[4*i+2] = byte(v >> 16)
				out[4*i+3] = byte(v >> 24)
			}
			return out, msg.EOK
		},
		BaseCycles:    sim.Cycle(rows), // one row per cycle with full unroll
		CyclesPerByte: 0,
	})
}
