package apps

import (
	"testing"

	"apiary/internal/accel"
	"apiary/internal/core"
	"apiary/internal/msg"
	"apiary/internal/noc"
	"apiary/internal/sim"
)

const (
	svcEncoder  = msg.FirstUserService + 0
	svcCompress = msg.FirstUserService + 1
	svcKV       = msg.FirstUserService + 2
	svcLB       = msg.FirstUserService + 3
	svcRep1     = msg.FirstUserService + 4
	svcRep2     = msg.FirstUserService + 5
)

func boot(t *testing.T, w, h int) *core.System {
	t.Helper()
	s, err := core.NewSystem(core.SystemConfig{Dims: noc.Dims{W: w, H: h}})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// frame builds a synthetic video frame chunk with smooth structure.
func frame(n int) []byte {
	f := make([]byte, n)
	for i := range f {
		f[i] = byte(120 + i%16)
	}
	return f
}

func TestVideoPipelineEndToEnd(t *testing.T) {
	s := boot(t, 3, 3)
	lat := s.Stats.Histogram("client.latency")
	client := NewRequester(svcEncoder, 5, 100, func(int) []byte { return frame(1024) }, lat)
	enc := NewEncoder(svcCompress)
	comp := NewCompressor()
	_, err := s.Kernel.LoadApp(core.AppSpec{
		Name: "video",
		Accels: []core.AppAccel{
			{Name: "client", New: func() accel.Accelerator { return client }, Connect: []msg.ServiceID{svcEncoder}},
			{Name: "enc", New: func() accel.Accelerator { return enc }, Service: svcEncoder, Connect: []msg.ServiceID{svcCompress}},
			{Name: "comp", New: func() accel.Accelerator { return comp }, Service: svcCompress},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !s.RunUntil(client.Done, 5_000_000) {
		t.Fatalf("pipeline incomplete: %d responses, %d errors",
			client.Responses(), client.Errors())
	}
	if client.Errors() != 0 {
		t.Fatalf("pipeline errors: %d", client.Errors())
	}
	// The reply must be the compressed encoding of the frame.
	enc1 := EncodeFrame(frame(1024))
	want := Compress(enc1)
	got := client.LastReply()
	if string(got) != string(want) {
		t.Fatalf("pipeline output mismatch: got %d bytes, want %d", len(got), len(want))
	}
	if lat.Count() != 5 || lat.Mean() <= 0 {
		t.Fatal("latency histogram not populated")
	}
}

func TestStageErrorPropagatesThroughPipeline(t *testing.T) {
	s := boot(t, 3, 3)
	client := NewRequester(svcEncoder, 1, 10, func(int) []byte { return nil }, nil) // empty: encoder rejects
	enc := NewEncoder(svcCompress)
	comp := NewCompressor()
	_, err := s.Kernel.LoadApp(core.AppSpec{
		Name: "video",
		Accels: []core.AppAccel{
			{Name: "client", New: func() accel.Accelerator { return client }, Connect: []msg.ServiceID{svcEncoder}},
			{Name: "enc", New: func() accel.Accelerator { return enc }, Service: svcEncoder, Connect: []msg.ServiceID{svcCompress}},
			{Name: "comp", New: func() accel.Accelerator { return comp }, Service: svcCompress},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !s.RunUntil(client.Done, 2_000_000) {
		t.Fatal("no response")
	}
	if client.Errors() != 1 {
		t.Fatalf("errors = %d, want 1", client.Errors())
	}
}

func TestKVStoreMultiTenant(t *testing.T) {
	kv := NewKVStore(2)
	s := boot(t, 3, 3)
	// Two client accelerators address different contexts of the same tile.
	mkPayload := func(op byte, k, v string) []byte { return EncodeKVReq(op, k, v) }
	c0 := NewRequester(svcKV, 2, 10, func(i int) []byte {
		if i == 0 {
			return mkPayload(KVPut, "k", "tenant0")
		}
		return mkPayload(KVGet, "k", "")
	}, nil)
	c1 := NewRequester(svcKV, 2, 10, func(i int) []byte {
		if i == 0 {
			return mkPayload(KVGet, "k", "") // must miss: tenant isolation
		}
		return mkPayload(KVPut, "k", "tenant1")
	}, nil)
	// Route c1's requests to context 1 by wrapping payloads... context is
	// addressed via DstCtx; Requester doesn't set it, so wrap:
	_ = c1
	_, err := s.Kernel.LoadApp(core.AppSpec{
		Name: "kv",
		Accels: []core.AppAccel{
			{Name: "kv", New: func() accel.Accelerator { return kv }, Service: svcKV},
			{Name: "c0", New: func() accel.Accelerator { return c0 }, Connect: []msg.ServiceID{svcKV}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !s.RunUntil(c0.Done, 2_000_000) {
		t.Fatal("kv ops incomplete")
	}
	if c0.Errors() != 0 {
		t.Fatalf("kv errors: %d", c0.Errors())
	}
	if string(c0.LastReply()) != "\x00tenant0" {
		t.Fatalf("GET reply = %q", c0.LastReply())
	}
	if kv.Len(0) != 1 || kv.Len(1) != 0 {
		t.Fatalf("tenant key counts = %d,%d", kv.Len(0), kv.Len(1))
	}
}

func TestKVStorePreemptibleStateSaveRestore(t *testing.T) {
	kv := NewKVStore(3)
	kv.tenants[1]["a"] = "1"
	kv.tenants[1]["b"] = "2"
	state, err := kv.SaveContext(1)
	if err != nil {
		t.Fatal(err)
	}
	kv.KillContext(1)
	if kv.Len(1) != 0 {
		t.Fatal("kill did not clear tenant")
	}
	if err := kv.RestoreContext(1, state); err != nil {
		t.Fatal(err)
	}
	if kv.Len(1) != 2 || kv.tenants[1]["b"] != "2" {
		t.Fatal("restore incomplete")
	}
	if _, err := kv.SaveContext(9); err == nil {
		t.Fatal("save of bad context accepted")
	}
	if err := kv.RestoreContext(0, []byte{5, 0}); err == nil {
		t.Fatal("restore of corrupt state accepted")
	}
	var _ accel.Preemptible = kv // compile-time check
}

func TestLoadBalancerSpreadsAndRoutesReplies(t *testing.T) {
	s := boot(t, 3, 3)
	lb := NewLoadBalancer([]msg.ServiceID{svcRep1, svcRep2})
	r1 := NewChecksum()
	r2 := NewChecksum()
	client := NewRequester(svcLB, 10, 50, func(i int) []byte { return frame(256) }, nil)
	_, err := s.Kernel.LoadApp(core.AppSpec{
		Name: "scale",
		Accels: []core.AppAccel{
			{Name: "client", New: func() accel.Accelerator { return client }, Connect: []msg.ServiceID{svcLB}},
			{Name: "lb", New: func() accel.Accelerator { return lb }, Service: svcLB, Connect: []msg.ServiceID{svcRep1, svcRep2}},
			{Name: "r1", New: func() accel.Accelerator { return r1 }, Service: svcRep1},
			{Name: "r2", New: func() accel.Accelerator { return r2 }, Service: svcRep2},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !s.RunUntil(client.Done, 5_000_000) {
		t.Fatalf("scale-out incomplete: %d ok %d err", client.Responses(), client.Errors())
	}
	if client.Errors() != 0 {
		t.Fatalf("errors: %d", client.Errors())
	}
	if lb.PerReplica[0]+lb.PerReplica[1] != 10 || lb.PerReplica[0] == 0 || lb.PerReplica[1] == 0 {
		t.Fatalf("distribution = %v, want both replicas busy, 10 total", lb.PerReplica)
	}
	// The satellite fix: Completed mirrors dispatches once the run drains,
	// so dispatched-completed == in-flight == 0.
	for i := range lb.PerReplica {
		if lb.Completed[i] != lb.PerReplica[i] || lb.InFlight(i) != 0 {
			t.Fatalf("replica %d: dispatched %d completed %d inflight %d",
				i, lb.PerReplica[i], lb.Completed[i], lb.InFlight(i))
		}
	}
	if r1.Processed() == 0 || r2.Processed() == 0 {
		t.Fatal("a replica did no work")
	}
}

func TestFaultyWrapperTriggersFailStop(t *testing.T) {
	s := boot(t, 3, 3)
	faulty := NewFaulty(NewChecksum(), 3)
	client := NewRequester(msg.FirstUserService, 10, 200, func(int) []byte { return frame(64) }, nil)
	app, err := s.Kernel.LoadApp(core.AppSpec{
		Name: "crashy",
		Accels: []core.AppAccel{
			{Name: "client", New: func() accel.Accelerator { return client }, Connect: []msg.ServiceID{msg.FirstUserService}},
			{Name: "f", New: func() accel.Accelerator { return faulty }, Service: msg.FirstUserService},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	var faultTile = app.Placed[1].Tile
	s.RunUntil(func() bool {
		return s.Kernel.Shell(faultTile).State() != accel.Running
	}, 5_000_000)
	if s.Kernel.Shell(faultTile).State() == accel.Running {
		t.Fatal("injected fault did not fail-stop the tile")
	}
	// The client eventually gets EFailStopped errors instead of hanging.
	s.RunUntil(func() bool { return client.Errors() > 0 }, 5_000_000)
	if client.Errors() == 0 {
		t.Fatal("client never observed the failure")
	}
	if len(s.Kernel.Faults()) == 0 {
		t.Fatal("kernel did not receive a fault report")
	}
}

func TestRequesterPayloadsMatchedBySeq(t *testing.T) {
	s := boot(t, 3, 3)
	lat := s.Stats.Histogram("lat")
	client := NewRequester(svcRep1, 20, 10, func(i int) []byte { return frame(64) }, lat)
	sum := NewChecksum()
	if _, err := s.Kernel.LoadApp(core.AppSpec{
		Name: "reqtest",
		Accels: []core.AppAccel{
			{Name: "c", New: func() accel.Accelerator { return client }, Connect: []msg.ServiceID{svcRep1}},
			{Name: "s", New: func() accel.Accelerator { return sum }, Service: svcRep1},
		},
	}); err != nil {
		t.Fatal(err)
	}
	if !s.RunUntil(client.Done, 5_000_000) {
		t.Fatal("requester incomplete")
	}
	if lat.Count() != 20 {
		t.Fatalf("latency samples = %d", lat.Count())
	}
	if lat.Min() <= 0 {
		t.Fatal("nonpositive latency recorded")
	}
}

func TestMatVecAccel(t *testing.T) {
	s := boot(t, 3, 3)
	mv := NewMatVec(4, 16, 7)
	client := NewRequester(svcRep2, 3, 10, func(i int) []byte {
		x := make([]byte, 16)
		for j := range x {
			x[j] = byte(i + j)
		}
		return x
	}, nil)
	if _, err := s.Kernel.LoadApp(core.AppSpec{
		Name: "ml",
		Accels: []core.AppAccel{
			{Name: "c", New: func() accel.Accelerator { return client }, Connect: []msg.ServiceID{svcRep2}},
			{Name: "m", New: func() accel.Accelerator { return mv }, Service: svcRep2},
		},
	}); err != nil {
		t.Fatal(err)
	}
	if !s.RunUntil(client.Done, 2_000_000) {
		t.Fatal("matvec incomplete")
	}
	if client.Errors() != 0 || len(client.LastReply()) != 16 {
		t.Fatalf("matvec reply: errs=%d len=%d", client.Errors(), len(client.LastReply()))
	}
	// Wrong input size yields EBadMsg.
	bad := NewRequester(svcRep2, 1, 10, func(int) []byte { return make([]byte, 3) }, nil)
	if _, err := s.Kernel.LoadApp(core.AppSpec{
		Name: "mlbad",
		Accels: []core.AppAccel{
			{Name: "c", New: func() accel.Accelerator { return bad }, Connect: []msg.ServiceID{svcRep2}},
		},
	}); err == nil {
		t.Fatal("connect to unexported foreign service should fail")
	}
}

func TestStageBusyModelsOccupancy(t *testing.T) {
	// A stage with a large per-request cost must answer back-to-back
	// requests with increasing spacing (head-of-line occupancy).
	s := boot(t, 3, 3)
	slow := NewStage(StageConfig{
		Name:       "slow",
		Process:    func(in []byte) ([]byte, msg.ErrCode) { return in, msg.EOK },
		BaseCycles: 500,
	})
	lat := s.Stats.Histogram("slowlat")
	client := NewRequester(svcRep1, 4, 1, func(int) []byte { return frame(32) }, lat)
	client.MaxInFlight = 4
	if _, err := s.Kernel.LoadApp(core.AppSpec{
		Name: "slowapp",
		Accels: []core.AppAccel{
			{Name: "c", New: func() accel.Accelerator { return client }, Connect: []msg.ServiceID{svcRep1}},
			{Name: "s", New: func() accel.Accelerator { return slow }, Service: svcRep1},
		},
	}); err != nil {
		t.Fatal(err)
	}
	if !s.RunUntil(client.Done, 5_000_000) {
		t.Fatal("slow stage incomplete")
	}
	if lat.Max() < lat.Min()+1000 {
		t.Fatalf("no queueing visible: min=%v max=%v", lat.Min(), lat.Max())
	}
	var _ sim.Cycle = slow.busyTil // silence linters about field use
}
