package apps

import (
	"testing"

	"apiary/internal/accel"
	"apiary/internal/core"
	"apiary/internal/msg"
	"apiary/internal/netsim"
	"apiary/internal/netstack"
	"apiary/internal/noc"
)

// bootNet boots a board with the network service and returns an external
// software client attached to the same fabric.
func bootNet(t *testing.T) (*core.System, *netstack.SoftEndpoint) {
	t.Helper()
	s, err := core.NewSystem(core.SystemConfig{
		Dims: noc.Dims{W: 3, H: 3}, WithNet: true, NodeID: 1,
		LinkLatencyNs: 500,
	})
	if err != nil {
		t.Fatal(err)
	}
	client := netstack.NewSoftEndpoint(s.Engine, s.Stats, s.Fabric, 100,
		netsim.LinkConfig{Gbps: 100, LatencyNs: 500})
	return s, client
}

// TestDirectAttachedRoundTrip is the paper's headline path: an external
// client reaches an accelerator with no CPU anywhere — NIC, hardware
// netstack tile, NoC, compute tile, and back.
func TestDirectAttachedRoundTrip(t *testing.T) {
	s, client := bootNet(t)
	bridge := NewNetBridge(80)
	bridge.Process = func(in []byte) ([]byte, msg.ErrCode) {
		h := Checksum64(in)
		out := make([]byte, 8)
		for i := 0; i < 8; i++ {
			out[i] = byte(h >> (8 * i))
		}
		return out, msg.EOK
	}
	if _, err := s.Kernel.LoadApp(core.AppSpec{
		Name: "svc",
		Accels: []core.AppAccel{
			{Name: "b", New: func() accel.Accelerator { return bridge }, WantNet: true},
		},
	}); err != nil {
		t.Fatal(err)
	}
	var got []byte
	client.OnDatagram(func(_ netsim.NodeID, _ uint16, data []byte, _ msg.TraceCtx) { got = data })
	req := []byte("direct-attached request")
	if err := client.Send(1, 80, req); err != nil {
		t.Fatal(err)
	}
	if !s.RunUntil(func() bool { return got != nil }, 5_000_000) {
		t.Fatal("no reply over the network")
	}
	want := Checksum64(req)
	var gotSum uint64
	for i := 0; i < 8; i++ {
		gotSum |= uint64(got[i]) << (8 * i)
	}
	if gotSum != want {
		t.Fatalf("checksum over network = %x, want %x", gotSum, want)
	}
	if bridge.Served != 1 {
		t.Fatalf("bridge served = %d", bridge.Served)
	}
}

// TestNetBridgeForwardsToService checks the composed form: datagram ->
// bridge -> on-board KV service -> bridge -> network.
func TestNetBridgeForwardsToService(t *testing.T) {
	s, client := bootNet(t)
	bridge := NewNetBridge(81)
	bridge.Target = svcKV
	kv := NewKVStore(1)
	if _, err := s.Kernel.LoadApp(core.AppSpec{
		Name: "kvnet",
		Accels: []core.AppAccel{
			{Name: "b", New: func() accel.Accelerator { return bridge }, WantNet: true,
				Connect: []msg.ServiceID{svcKV}},
			{Name: "kv", New: func() accel.Accelerator { return kv }, Service: svcKV},
		},
	}); err != nil {
		t.Fatal(err)
	}
	var replies [][]byte
	client.OnDatagram(func(_ netsim.NodeID, _ uint16, data []byte, _ msg.TraceCtx) {
		replies = append(replies, data)
	})
	_ = client.Send(1, 81, EncodeKVReq(KVPut, "city", "banff"))
	if !s.RunUntil(func() bool { return len(replies) >= 1 }, 5_000_000) {
		t.Fatal("no PUT reply")
	}
	_ = client.Send(1, 81, EncodeKVReq(KVGet, "city", ""))
	if !s.RunUntil(func() bool { return len(replies) >= 2 }, 5_000_000) {
		t.Fatal("no GET reply")
	}
	if string(replies[1]) != "\x00banff" {
		t.Fatalf("GET over network = %q", replies[1])
	}
}

// TestNetBridgeErrorsSurfaceToClient: a bridge forwarding to a
// fail-stopped service returns an error datagram, not silence.
func TestNetBridgeErrorsSurfaceToClient(t *testing.T) {
	s, client := bootNet(t)
	bridge := NewNetBridge(82)
	bridge.Target = svcKV
	kv := NewKVStore(1)
	app, err := s.Kernel.LoadApp(core.AppSpec{
		Name: "kvnet",
		Accels: []core.AppAccel{
			{Name: "b", New: func() accel.Accelerator { return bridge }, WantNet: true,
				Connect: []msg.ServiceID{svcKV}},
			{Name: "kv", New: func() accel.Accelerator { return kv }, Service: svcKV},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Run(1000)
	s.Kernel.Monitor(app.Placed[1].Tile).ForceFault(0, accel.FaultExplicit)
	var got []byte
	client.OnDatagram(func(_ netsim.NodeID, _ uint16, data []byte, _ msg.TraceCtx) { got = data })
	_ = client.Send(1, 82, EncodeKVReq(KVGet, "k", ""))
	if !s.RunUntil(func() bool { return got != nil }, 5_000_000) {
		t.Fatal("client hung on fail-stopped backend")
	}
	// The KV store is preemptible, so the fault killed only context 0 and
	// the tile stayed up: the client sees ENoContext. (A concurrent-only
	// accelerator would have produced EFailStopped instead.)
	if len(got) != 2 || got[0] != 0xFF || msg.ErrCode(got[1]) != msg.ENoContext {
		t.Fatalf("error datagram = %v", got)
	}
}
