package apps

import (
	"testing"

	"apiary/internal/accel"
	"apiary/internal/msg"
)

// The RetryNacks + Breaker behaviors layered on the PR 4 retransmit
// machinery: transient NACKs are ridden out, busy streaks trip the breaker,
// and duplicate replies for parked sequences are absorbed.

func TestRequesterNackRetryRidesOutFailover(t *testing.T) {
	r, p := newRetryClient(1)
	r.RetryLimit = 2
	r.RetryNacks = true

	tickAt(r, p, 0)
	if len(p.sends) != 1 {
		t.Fatalf("sends = %d", len(p.sends))
	}
	seq := p.sends[0].Seq
	// The primary is fenced mid-failover: EFailStopped is transient under
	// RetryNacks — no error, the request parks for retransmit.
	p.inbox = append(p.inbox, &msg.Message{Type: msg.TError,
		Err: msg.EFailStopped, Seq: seq})
	tickAt(r, p, 1)
	if r.Errors() != 0 || r.Done() {
		t.Fatalf("transient NACK counted as error: errs=%d", r.Errors())
	}
	if r.Retransmits() != 1 {
		t.Fatalf("Retransmits = %d, want 1 (parked)", r.Retransmits())
	}
	// The parked resend fires after the fixed 64-cycle delay (backoff off).
	tickAt(r, p, 65)
	if len(p.sends) != 2 || p.sends[1].Seq != seq {
		t.Fatalf("resend did not fire with same seq: %v", p.sends)
	}
	// The replica (service re-bound by the kernel) answers: zero lost.
	p.inbox = append(p.inbox, &msg.Message{Type: msg.TReply, Seq: seq})
	tickAt(r, p, 70)
	if r.Responses() != 1 || r.Errors() != 0 || !r.Done() {
		t.Fatalf("responses=%d errs=%d done=%v", r.Responses(), r.Errors(), r.Done())
	}
}

func TestRequesterNackRetryExhaustion(t *testing.T) {
	r, p := newRetryClient(1)
	r.RetryLimit = 1
	r.RetryNacks = true

	tickAt(r, p, 0)
	seq := p.sends[0].Seq
	p.inbox = append(p.inbox, &msg.Message{Type: msg.TError,
		Err: msg.ERevoked, Seq: seq})
	tickAt(r, p, 1) // parked (retry 1 of 1)
	tickAt(r, p, 65)
	if len(p.sends) != 2 {
		t.Fatalf("sends = %d, want 2", len(p.sends))
	}
	// Second NACK: retry budget exhausted, now it is an error.
	p.inbox = append(p.inbox, &msg.Message{Type: msg.TError,
		Err: msg.ERevoked, Seq: seq})
	tickAt(r, p, 66)
	if r.Errors() != 1 || !r.Done() {
		t.Fatalf("errs=%d done=%v after exhaustion", r.Errors(), r.Done())
	}
}

func TestRequesterBreakerOpensAndProbes(t *testing.T) {
	r, p := newRetryClient(0) // unlimited
	r.Total = 0
	r.BreakerThreshold = 2

	tickAt(r, p, 0) // seq 0 out
	p.inbox = append(p.inbox, &msg.Message{Type: msg.TError, Err: msg.EBusy,
		Seq: p.sends[0].Seq})
	tickAt(r, p, 1) // busy 1; seq 1 out (still closed)
	if len(p.sends) != 2 {
		t.Fatalf("sends = %d, want 2", len(p.sends))
	}
	p.inbox = append(p.inbox, &msg.Message{Type: msg.TError, Err: msg.EBusy,
		Seq: p.sends[1].Seq})
	tickAt(r, p, 2) // busy 2: breaker trips, no issue
	if got := len(p.sends); got != 2 {
		t.Fatalf("issued while open: sends = %d", got)
	}
	if r.Breaker().Opens() != 1 || r.BusyNacks() != 2 {
		t.Fatalf("opens=%d busies=%d", r.Breaker().Opens(), r.BusyNacks())
	}
	tickAt(r, p, 500) // still cooling down (default base 1024)
	if len(p.sends) != 2 {
		t.Fatal("issued during cooldown")
	}
	// Cooldown expires at 2+1024: exactly one half-open probe goes out.
	tickAt(r, p, 1030)
	tickAt(r, p, 1031)
	if len(p.sends) != 3 {
		t.Fatalf("sends = %d, want 3 (single probe)", len(p.sends))
	}
	// Probe succeeds: breaker closes, traffic resumes.
	p.inbox = append(p.inbox, &msg.Message{Type: msg.TReply,
		Seq: p.sends[2].Seq})
	tickAt(r, p, 1032)
	if r.Breaker().Closes() != 1 || len(p.sends) != 4 {
		t.Fatalf("closes=%d sends=%d after probe success",
			r.Breaker().Closes(), len(p.sends))
	}
}

func TestRequesterTimeoutFeedsBreaker(t *testing.T) {
	r, p := newRetryClient(1)
	r.BreakerThreshold = 1

	tickAt(r, p, 0)
	// The request vanishes (no NACK). The timeout abandon must count as a
	// breaker failure, or a lost half-open probe would wedge it forever.
	tickAt(r, p, 1536)
	if r.Errors() != 1 {
		t.Fatalf("errs = %d", r.Errors())
	}
	if r.Breaker().Opens() != 1 || r.Breaker().State(1536) != accel.BreakerOpen {
		t.Fatalf("opens=%d state=%v", r.Breaker().Opens(), r.Breaker().State(1536))
	}
}

func TestRequesterDupReplyForParkedSeq(t *testing.T) {
	r, p := newRetryClient(1)
	r.RetryLimit = 2
	r.RetryNacks = true

	tickAt(r, p, 0)
	seq := p.sends[0].Seq
	p.inbox = append(p.inbox, &msg.Message{Type: msg.TError, Err: msg.EBusy,
		Seq: seq})
	tickAt(r, p, 1) // parked for resend at 65
	// A late answer to the first transmission arrives before the resend
	// fires: accept it and cancel the resend.
	p.inbox = append(p.inbox, &msg.Message{Type: msg.TReply, Seq: seq,
		Payload: []byte{7}})
	tickAt(r, p, 2)
	if r.Responses() != 1 || !r.Done() {
		t.Fatalf("dup reply not absorbed: responses=%d", r.Responses())
	}
	tickAt(r, p, 70)
	if len(p.sends) != 1 {
		t.Fatalf("cancelled resend still fired: sends=%d", len(p.sends))
	}
}

func TestRequesterLocalTransientDenialParks(t *testing.T) {
	r, p := newRetryClient(1)
	r.RetryLimit = 2
	r.RetryNacks = true

	// The endpoint is mid-re-mint: the monitor denies the send locally with
	// ERevoked. The request must park, not count as an error.
	p.code = msg.ERevoked
	tickAt(r, p, 0)
	if r.Errors() != 0 {
		t.Fatalf("local transient denial errored: %d", r.Errors())
	}
	if r.Retransmits() != 1 {
		t.Fatalf("Retransmits = %d", r.Retransmits())
	}
	// Capability re-installed: the parked send goes through.
	p.code = msg.EOK
	tickAt(r, p, 65)
	if len(p.sends) != 1 {
		t.Fatalf("parked request never sent: %d", len(p.sends))
	}
	p.inbox = append(p.inbox, &msg.Message{Type: msg.TReply,
		Seq: p.sends[0].Seq})
	tickAt(r, p, 66)
	if r.Responses() != 1 || !r.Done() {
		t.Fatalf("responses=%d done=%v", r.Responses(), r.Done())
	}
}
