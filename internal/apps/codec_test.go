package apps

import (
	"bytes"
	"testing"
	"testing/quick"

	"apiary/internal/sim"
)

func TestEncodeFrameHeader(t *testing.T) {
	frame := make([]byte, 300)
	enc := EncodeFrame(frame)
	n, err := DecodeFrameHeader(enc)
	if err != nil || n != 300 {
		t.Fatalf("header = %d, %v", n, err)
	}
	if _, err := DecodeFrameHeader([]byte{1}); err == nil {
		t.Fatal("short header decoded")
	}
}

func TestEncodeFrameBlockCount(t *testing.T) {
	for _, n := range []int{1, 64, 65, 128, 1000} {
		enc := EncodeFrame(make([]byte, n))
		want := (n + 63) / 64
		if got := CountBlocks(enc); got != want {
			t.Fatalf("frame of %d bytes: %d blocks, want %d", n, got, want)
		}
	}
}

func TestEncodeFrameCompressesSmoothData(t *testing.T) {
	// A smooth gradient has little high-frequency energy: the quantized
	// DCT + RLE output must be much smaller than the input.
	frame := make([]byte, 4096)
	for i := range frame {
		frame[i] = byte(128 + (i%64)/8) // gentle ramp per block row
	}
	enc := EncodeFrame(frame)
	if len(enc) > len(frame)/3 {
		t.Fatalf("smooth frame encoded to %d bytes from %d — DCT not concentrating energy",
			len(enc), len(frame))
	}
}

func TestEncodeFrameDeterministic(t *testing.T) {
	rng := sim.NewRNG(1)
	frame := make([]byte, 512)
	rng.Bytes(frame)
	a := EncodeFrame(frame)
	b := EncodeFrame(frame)
	if !bytes.Equal(a, b) {
		t.Fatal("encoder not deterministic")
	}
}

func TestDCTDCValue(t *testing.T) {
	// A constant block has only a DC coefficient.
	var in, out [64]int32
	for i := range in {
		in[i] = 100
	}
	fdct8x8(&in, &out)
	if out[0] == 0 {
		t.Fatal("DC coefficient zero for constant block")
	}
	for i := 1; i < 64; i++ {
		if out[i] != 0 {
			t.Fatalf("AC coefficient %d = %d for constant block", i, out[i])
		}
	}
}

func TestCompressRoundTripProperty(t *testing.T) {
	f := func(data []byte) bool {
		got, err := Decompress(Compress(data))
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCompressRepetitiveData(t *testing.T) {
	data := bytes.Repeat([]byte("abcdefgh"), 512)
	comp := Compress(data)
	if len(comp) > len(data)/4 {
		t.Fatalf("repetitive data compressed to %d from %d", len(comp), len(data))
	}
	got, err := Decompress(comp)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("round trip failed: %v", err)
	}
}

func TestCompressEmptyAndTiny(t *testing.T) {
	for _, data := range [][]byte{{}, {1}, {1, 2, 3}} {
		got, err := Decompress(Compress(data))
		if err != nil || !bytes.Equal(got, data) {
			t.Fatalf("round trip of %v failed: %v", data, err)
		}
	}
}

func TestDecompressMalformed(t *testing.T) {
	cases := [][]byte{
		nil,
		{1, 2},
		{0, 0, 0, 16, 0x02},         // unknown token
		{0, 0, 0, 16, 0x00, 10, 1},  // literal overrun
		{4, 0, 0, 0, 0x01, 9, 0, 4}, // match before start
		{9, 0, 0, 0, 0x00, 1, 7},    // length mismatch vs header
	}
	for i, c := range cases {
		if _, err := Decompress(c); err == nil {
			t.Fatalf("case %d: malformed input decompressed", i)
		}
	}
}

func TestChecksum64(t *testing.T) {
	a := Checksum64([]byte("apiary"))
	b := Checksum64([]byte("apiarz"))
	if a == b {
		t.Fatal("checksum collision on trivially different input")
	}
	if Checksum64(nil) != 14695981039346656037 {
		t.Fatal("empty checksum != FNV offset basis")
	}
}

func TestMatVec8(t *testing.T) {
	w := []int8{1, 2, 3, 4, 5, 6} // 2x3
	x := []int8{1, 0, -1}
	y, err := MatVec8(w, 2, 3, x)
	if err != nil {
		t.Fatal(err)
	}
	if y[0] != -2 || y[1] != -2 {
		t.Fatalf("y = %v", y)
	}
	if _, err := MatVec8(w, 2, 2, x); err == nil {
		t.Fatal("shape mismatch accepted")
	}
}

func TestKVReqRoundTrip(t *testing.T) {
	f := func(op byte, key, value string) bool {
		if len(key) > 60000 || len(value) > 60000 {
			return true
		}
		gotOp, gotK, gotV, ok := DecodeKVReq(EncodeKVReq(op, key, value))
		return ok && gotOp == op && gotK == key && gotV == value
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if _, _, _, ok := DecodeKVReq([]byte{1, 2}); ok {
		t.Fatal("short KV request decoded")
	}
}
