package apps

import (
	"testing"

	"apiary/internal/accel"
	"apiary/internal/core"
	"apiary/internal/msg"
	"apiary/internal/noc"
)

// pushDriver sends scripted messages one per tick and records replies.
type pushDriver struct {
	sends []*msg.Message
	in    []*msg.Message
	codes []msg.ErrCode
}

func (a *pushDriver) Name() string  { return "driver" }
func (a *pushDriver) Contexts() int { return 1 }
func (a *pushDriver) Reset()        {}
func (a *pushDriver) Tick(p accel.Port) {
	if len(a.sends) > 0 {
		m := a.sends[0]
		a.sends = a.sends[1:]
		a.codes = append(a.codes, p.Send(m))
	}
	if m, ok := p.Recv(); ok {
		a.in = append(a.in, m)
	}
}

// TestKVSnapshotSurvivesReconfiguration checkpoints a tenant into the
// store's memory segment, wipes the accelerator (as a partial
// reconfiguration would), restores, and reads the data back — the paper's
// "state that it needs to maintain between invocations".
func TestKVSnapshotSurvivesReconfiguration(t *testing.T) {
	s, err := core.NewSystem(core.SystemConfig{Dims: noc.Dims{W: 3, H: 3}})
	if err != nil {
		t.Fatal(err)
	}
	kv := NewKVStore(2)
	driver := &pushDriver{}
	app, err := s.Kernel.LoadApp(core.AppSpec{
		Name: "kvsnap",
		Accels: []core.AppAccel{
			{Name: "kv", New: func() accel.Accelerator { return kv },
				Service: svcKV, MemBytes: 16384},
			{Name: "driver", New: func() accel.Accelerator { return driver },
				Connect: []msg.ServiceID{svcKV}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	kv.SegRef = uint32(app.Placed[0].SegSlot)

	push := func(seq uint32, payload []byte) {
		driver.sends = append(driver.sends, &msg.Message{
			Type: msg.TRequest, DstSvc: svcKV, Seq: seq, Payload: payload,
		})
	}
	push(1, EncodeKVReq(KVPut, "durable", "yes"))
	push(2, EncodeKVReq(KVSnap, "", ""))
	if !s.RunUntil(func() bool { return len(driver.in) >= 2 }, 2_000_000) {
		t.Fatalf("put+snap incomplete: %d replies codes=%v", len(driver.in), driver.codes)
	}
	if driver.in[1].Type != msg.TReply || driver.in[1].Payload[0] != 0 {
		t.Fatalf("snap reply = %v", driver.in[1])
	}

	// "Reconfigure" the tile: accelerator state is wiped.
	kv.Reset()
	if kv.Len(0) != 0 {
		t.Fatal("reset did not wipe state")
	}

	// Restore, then GET only after the restore completes — the store
	// bounces requests with EBusy while a checkpoint op is in flight.
	push(3, EncodeKVReq(KVRestore, "", ""))
	if !s.RunUntil(func() bool { return len(driver.in) >= 3 }, 2_000_000) {
		t.Fatalf("restore incomplete: %d replies", len(driver.in))
	}
	if driver.in[2].Payload[0] != 0 {
		t.Fatalf("restore failed: %v", driver.in[2])
	}
	push(4, EncodeKVReq(KVGet, "durable", ""))
	if !s.RunUntil(func() bool { return len(driver.in) >= 4 }, 2_000_000) {
		t.Fatalf("get incomplete: %d replies", len(driver.in))
	}
	if string(driver.in[3].Payload) != "\x00yes" {
		t.Fatalf("restored GET = %q", driver.in[3].Payload)
	}
}

// TestKVSnapWithoutSegmentFails: persistence needs a segment capability.
func TestKVSnapWithoutSegmentFails(t *testing.T) {
	s, err := core.NewSystem(core.SystemConfig{Dims: noc.Dims{W: 3, H: 3}})
	if err != nil {
		t.Fatal(err)
	}
	kv := NewKVStore(1) // no SegRef configured
	driver := &pushDriver{}
	if _, err := s.Kernel.LoadApp(core.AppSpec{
		Name: "noseg",
		Accels: []core.AppAccel{
			{Name: "kv", New: func() accel.Accelerator { return kv }, Service: svcKV},
			{Name: "driver", New: func() accel.Accelerator { return driver },
				Connect: []msg.ServiceID{svcKV}},
		},
	}); err != nil {
		t.Fatal(err)
	}
	driver.sends = append(driver.sends, &msg.Message{
		Type: msg.TRequest, DstSvc: svcKV, Seq: 1,
		Payload: EncodeKVReq(KVSnap, "", ""),
	})
	if !s.RunUntil(func() bool { return len(driver.in) >= 1 }, 2_000_000) {
		t.Fatal("no reply")
	}
	if driver.in[0].Type != msg.TError || driver.in[0].Err != msg.ENoCap {
		t.Fatalf("snap without segment = %v", driver.in[0])
	}
}

// TestKVTenantsSnapshotIndependently: each tenant has its own slot.
func TestKVTenantsSnapshotIndependently(t *testing.T) {
	s, err := core.NewSystem(core.SystemConfig{Dims: noc.Dims{W: 3, H: 3}})
	if err != nil {
		t.Fatal(err)
	}
	kv := NewKVStore(2)
	driver := &pushDriver{}
	app, err := s.Kernel.LoadApp(core.AppSpec{
		Name: "multi",
		Accels: []core.AppAccel{
			{Name: "kv", New: func() accel.Accelerator { return kv },
				Service: svcKV, MemBytes: 16384},
			{Name: "driver", New: func() accel.Accelerator { return driver },
				Connect: []msg.ServiceID{svcKV}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	kv.SegRef = uint32(app.Placed[0].SegSlot)

	// Seed both tenants directly, snapshot both (ctx via DstCtx). Ops are
	// sequenced: the store serializes checkpoint operations.
	kvPutDirect(kv, 0, "who", "zero")
	kvPutDirect(kv, 1, "who", "one")
	step := 0
	doOp := func(ctx uint8, op byte) {
		t.Helper()
		driver.sends = append(driver.sends, &msg.Message{
			Type: msg.TRequest, DstSvc: svcKV, DstCtx: ctx, Seq: uint32(10 + step),
			Payload: EncodeKVReq(op, "", ""),
		})
		step++
		if !s.RunUntil(func() bool { return len(driver.in) >= step }, 2_000_000) {
			t.Fatalf("op %d incomplete", step)
		}
		if r := driver.in[step-1]; r.Type != msg.TReply || r.Payload[0] != 0 {
			t.Fatalf("op %d failed: %v", step, r)
		}
	}
	doOp(0, KVSnap)
	doOp(1, KVSnap)
	kv.Reset()
	doOp(0, KVRestore)
	doOp(1, KVRestore)
	if kv.tenants[0]["who"] != "zero" || kv.tenants[1]["who"] != "one" {
		t.Fatalf("tenant slots mixed: %v / %v", kv.tenants[0], kv.tenants[1])
	}
}

// kvPutDirect seeds a tenant map out of band.
func kvPutDirect(kv *KVStore, ctx uint8, k, v string) {
	kv.tenants[ctx][k] = v
}
