package apps

import (
	"testing"

	"apiary/internal/msg"
	"apiary/internal/sim"
)

const (
	lbSvcA = msg.ServiceID(40)
	lbSvcB = msg.ServiceID(41)
)

func newLB() (*LoadBalancer, *stubPort) {
	return NewLoadBalancer([]msg.ServiceID{lbSvcA, lbSvcB}), &stubPort{}
}

// repIdx maps a dispatched request back to the replica index it targeted.
func repIdx(t *testing.T, lb *LoadBalancer, m *msg.Message) int {
	t.Helper()
	for i, svc := range lb.Replicas() {
		if svc == m.DstSvc {
			return i
		}
	}
	t.Fatalf("send to unknown service %d", m.DstSvc)
	return -1
}

func clientReq(seq uint32, budget uint32) *msg.Message {
	return &msg.Message{Type: msg.TRequest, SrcTile: 9, SrcCtx: 1, Seq: seq,
		Budget: budget, Payload: []byte{0xAB}}
}

func TestLoadBalancerEjectsAndReroutesOnFencedNack(t *testing.T) {
	lb, p := newLB()
	p.inbox = append(p.inbox, clientReq(77, 500))
	lb.Tick(p)
	if len(p.sends) != 1 {
		t.Fatalf("sends = %d, want 1", len(p.sends))
	}
	first := p.sends[0]
	if first.Budget != 500 {
		t.Fatalf("budget not forwarded: %d", first.Budget)
	}
	dead := repIdx(t, lb, first)
	// The replica NACKs with a fencing error: eject it and re-dispatch the
	// request to the survivor without bothering the client.
	p.inbox = append(p.inbox, &msg.Message{Type: msg.TError,
		Err: msg.EFailStopped, Seq: first.Seq})
	lb.Tick(p)
	if len(p.sends) != 2 {
		t.Fatalf("sends after NACK = %d, want 2 (reroute)", len(p.sends))
	}
	second := p.sends[1]
	if repIdx(t, lb, second) == dead {
		t.Fatal("rerouted to the ejected replica")
	}
	if second.Payload[0] != 0xAB || second.Budget != 500 {
		t.Fatal("reroute lost the payload or budget")
	}
	if !lb.Ejected(dead) || lb.Ejects() != 1 || lb.Reroutes() != 1 {
		t.Fatalf("ejected=%v ejects=%d reroutes=%d",
			lb.Ejected(dead), lb.Ejects(), lb.Reroutes())
	}
	// The survivor answers: reply routed to the original client.
	p.inbox = append(p.inbox, &msg.Message{Type: msg.TReply, Seq: second.Seq,
		Payload: []byte{0xCD}})
	lb.Tick(p)
	last := p.sends[len(p.sends)-1]
	if last.Type != msg.TReply || last.DstTile != 9 || last.DstCtx != 1 ||
		last.Seq != 77 || last.Payload[0] != 0xCD {
		t.Fatalf("reply misrouted: %v", last)
	}
	// Accounting drains: dispatched == completed, nothing in flight.
	for i := range lb.PerReplica {
		if lb.Completed[i] != lb.PerReplica[i] || lb.InFlight(i) != 0 {
			t.Fatalf("replica %d: dispatched %d completed %d inflight %d",
				i, lb.PerReplica[i], lb.Completed[i], lb.InFlight(i))
		}
	}
}

func TestLoadBalancerProbeReadmits(t *testing.T) {
	lb, p := newLB()
	// Eject replica 0 directly.
	lb.eject(0, 0)
	if !lb.Ejected(0) {
		t.Fatal("eject did not mark the replica")
	}
	// Before the probe deadline every request goes to the survivor.
	p.now = 100
	p.inbox = append(p.inbox, clientReq(1, 0))
	lb.Tick(p)
	if got := repIdx(t, lb, p.sends[0]); got != 1 {
		t.Fatalf("request before probeAt went to replica %d", got)
	}
	// After the backoff the next request is the half-open probe.
	p.now = 100 + lb.EjectBase
	p.inbox = append(p.inbox, clientReq(2, 0))
	lb.Tick(p)
	probe := p.sends[len(p.sends)-1]
	if got := repIdx(t, lb, probe); got != 0 {
		t.Fatalf("probe went to replica %d, want ejected replica 0", got)
	}
	// Probe succeeds: the replica is re-admitted.
	p.inbox = append(p.inbox, &msg.Message{Type: msg.TReply, Seq: probe.Seq})
	lb.Tick(p)
	if lb.Ejected(0) || lb.Readmits() != 1 {
		t.Fatalf("ejected=%v readmits=%d after successful probe",
			lb.Ejected(0), lb.Readmits())
	}
}

func TestLoadBalancerFailedProbeBacksOff(t *testing.T) {
	lb, p := newLB()
	lb.eject(0, 0)
	p.now = lb.EjectBase
	p.inbox = append(p.inbox, clientReq(1, 0))
	lb.Tick(p)
	probe := p.sends[0]
	if got := repIdx(t, lb, probe); got != 0 {
		t.Fatalf("probe went to replica %d", got)
	}
	// Probe bounces: replica stays ejected with a doubled backoff, and the
	// request is rerouted to the survivor.
	p.inbox = append(p.inbox, &msg.Message{Type: msg.TError, Err: msg.EBusy,
		Seq: probe.Seq})
	lb.Tick(p)
	if !lb.Ejected(0) {
		t.Fatal("failed probe re-admitted the replica")
	}
	if got := repIdx(t, lb, p.sends[len(p.sends)-1]); got != 1 {
		t.Fatalf("bounced probe request rerouted to replica %d, want 1", got)
	}
	// The doubled window: no probe until EjectBase*2 later.
	p.now += lb.EjectBase
	p.inbox = append(p.inbox, clientReq(2, 0))
	lb.Tick(p)
	if got := repIdx(t, lb, p.sends[len(p.sends)-1]); got != 1 {
		t.Fatal("probe fired before the doubled backoff expired")
	}
	p.now += lb.EjectBase
	p.inbox = append(p.inbox, clientReq(3, 0))
	lb.Tick(p)
	if got := repIdx(t, lb, p.sends[len(p.sends)-1]); got != 0 {
		t.Fatal("no probe after the doubled backoff")
	}
}

func TestLoadBalancerShedsWhenAllReplicasFenced(t *testing.T) {
	lb, p := newLB()
	p.inbox = append(p.inbox, clientReq(5, 0))
	lb.Tick(p)
	first := p.sends[0]
	// Fence whichever replica got it, then the survivor too: the reroute
	// chain exhausts and the client gets EBusy back.
	p.inbox = append(p.inbox, &msg.Message{Type: msg.TError,
		Err: msg.EFailStopped, Seq: first.Seq})
	lb.Tick(p)
	second := p.sends[len(p.sends)-1]
	p.inbox = append(p.inbox, &msg.Message{Type: msg.TError,
		Err: msg.ERevoked, Seq: second.Seq})
	lb.Tick(p)
	last := p.sends[len(p.sends)-1]
	if last.Type != msg.TError || last.Err != msg.EBusy ||
		last.DstTile != 9 || last.Seq != 5 {
		t.Fatalf("want EBusy shed to client, got %v", last)
	}
	if lb.Ejects() != 2 {
		t.Fatalf("ejects = %d, want 2", lb.Ejects())
	}
	if len(lb.pend) != 0 {
		t.Fatal("shed request leaked a pend entry")
	}
}

func TestLoadBalancerEjectsOnLocalFencedDenial(t *testing.T) {
	lb, p := newLB()
	// Every local send is denied as fail-stopped (both replica endpoints
	// fenced): the balancer ejects both and sheds to the client. The shed
	// reply itself also bounces off the dead port — outQ drops it — but the
	// health bookkeeping must still happen.
	p.code = msg.EFailStopped
	p.inbox = append(p.inbox, clientReq(1, 0))
	lb.Tick(p)
	if lb.Ejects() != 2 {
		t.Fatalf("ejects = %d, want 2 after local fenced denials", lb.Ejects())
	}
	if !lb.Ejected(0) || !lb.Ejected(1) {
		t.Fatal("replicas not ejected")
	}
}

func TestLoadBalancerStaticRoundRobin(t *testing.T) {
	lb, p := newLB()
	lb.Static = true
	for i := 0; i < 4; i++ {
		p.inbox = append(p.inbox, clientReq(uint32(i), 0))
	}
	lb.Tick(p)
	if lb.PerReplica[0] != 2 || lb.PerReplica[1] != 2 {
		t.Fatalf("static distribution = %v, want 2/2", lb.PerReplica)
	}
	for i, m := range p.sends {
		want := lb.Replicas()[i%2]
		if m.DstSvc != want {
			t.Fatalf("send %d went to %d, want strict round-robin %d",
				i, m.DstSvc, want)
		}
	}
	// Static mode never ejects.
	p.inbox = append(p.inbox, &msg.Message{Type: msg.TError,
		Err: msg.EFailStopped, Seq: p.sends[0].Seq})
	lb.Tick(p)
	if lb.Ejects() != 0 {
		t.Fatal("static mode ejected a replica")
	}
	// And the NACK propagates straight to the client.
	last := p.sends[len(p.sends)-1]
	if last.Type != msg.TError || last.Err != msg.EFailStopped {
		t.Fatalf("static NACK not propagated: %v", last)
	}
}

func TestLoadBalancerPicksLessLoadedReplica(t *testing.T) {
	lb, p := newLB()
	// Pile requests up without answering: p2c must keep the in-flight
	// counts within 1 of each other (with two replicas it always compares
	// both, so it is exact least-loaded).
	for i := 0; i < 16; i++ {
		p.inbox = append(p.inbox, clientReq(uint32(i), 0))
		lb.Tick(p) // ≤4 recvs per tick, so feed one at a time
	}
	a, b := lb.InFlight(0), lb.InFlight(1)
	if a+b != 16 || a != 8 || b != 8 {
		t.Fatalf("in-flight = %d/%d, want 8/8 under least-loaded", a, b)
	}
	if lb.PerReplica[0] != 8 || lb.PerReplica[1] != 8 {
		t.Fatalf("dispatched = %v", lb.PerReplica)
	}
	if lb.Completed[0] != 0 || lb.Completed[1] != 0 {
		t.Fatalf("completed = %v with no replies", lb.Completed)
	}
}

func TestLoadBalancerBackpressureDefersDispatch(t *testing.T) {
	lb, p := newLB()
	p.code = msg.ERateLimited
	p.inbox = append(p.inbox, clientReq(3, 0))
	lb.Tick(p)
	if len(p.sends) != 0 {
		t.Fatal("send succeeded under rate limit")
	}
	if lb.Idle() {
		t.Fatal("balancer idle with a deferred dispatch")
	}
	// Backpressure clears: the deferred request goes out on the next tick.
	p.code = msg.EOK
	p.now = sim.Cycle(1)
	lb.Tick(p)
	if len(p.sends) != 1 || p.sends[0].Type != msg.TRequest {
		t.Fatalf("deferred dispatch did not fire: %v", p.sends)
	}
	if lb.Ejects() != 0 {
		t.Fatal("local backpressure must not eject")
	}
}
