package apps

import (
	"apiary/internal/accel"
	"apiary/internal/msg"
	"apiary/internal/sim"
)

// LoadBalancer is the scale-out splitter (paper §3 "Scalability": elements
// are "scaled out to meet the specific use case ... without manual
// optimization"). It exposes one service and spreads requests over N
// replica services, routing each reply back to its original requester.
//
// By default the balancer is health- and outstanding-aware: replicas are
// picked by power-of-two-choices on per-replica in-flight counts, replicas
// that NACK with fencing errors (fail-stopped, revoked, no-service) are
// ejected and re-admitted via half-open probes after a deterministic
// backoff, and requests bounced by one replica are re-dispatched to another
// before the error ever reaches the client. Static restores the historical
// blind round-robin.
type LoadBalancer struct {
	accel.TileLocalMarker // pure Port user: safe on the tile's shard

	// Static disables health and load awareness: blind round-robin, no
	// ejection, no reroutes (manifest knob health="static").
	Static bool
	// RerouteLimit bounds how many times one request is re-dispatched to
	// another replica after a NACK before the error propagates to the
	// client (default 2).
	RerouteLimit int
	// EjectBase/EjectMax configure the deterministic (doubling) backoff
	// between a replica's ejection and its half-open probe. Defaults
	// 2048/65536 cycles.
	EjectBase sim.Cycle
	EjectMax  sim.Cycle

	reps    []replicaState
	rr      int
	rng     uint64
	nextSeq uint32
	pend    map[uint32]lbPend
	out     outQ
	waitQ   []uint32 // seqs blocked on local egress backpressure

	// PerReplica counts requests dispatched to each replica (cumulative).
	PerReplica []uint64
	// Completed counts responses (replies and NACKs) received back from
	// each replica, so PerReplica[i]-Completed[i] is what is actually
	// outstanding — the satellite fix for "PerReplica never decrements".
	Completed []uint64

	ejects, readmits, reroutes uint64
	ejectC, readmitC, rerouteC *sim.Counter
}

// replicaState is one replica's health/load view.
type replicaState struct {
	svc      msg.ServiceID
	inflight int
	ejected  bool
	probing  bool
	probeAt  sim.Cycle
	backoff  accel.Backoff
}

// lbPend remembers one client request while it is outstanding: where the
// reply goes, which replica holds it, and enough to re-dispatch it.
type lbPend struct {
	tile    msg.TileID
	ctx     uint8
	seq     uint32 // client's sequence number
	rep     int    // replica index currently holding it (-1 = undispatched)
	budget  uint32
	tries   int
	payload []byte
}

// NewLoadBalancer builds a health-aware balancer over the given replica
// services.
func NewLoadBalancer(replicas []msg.ServiceID) *LoadBalancer {
	l := &LoadBalancer{
		RerouteLimit: 2,
		EjectBase:    2048,
		EjectMax:     65536,
		pend:         make(map[uint32]lbPend),
		PerReplica:   make([]uint64, len(replicas)),
		Completed:    make([]uint64, len(replicas)),
		rng:          0x9E3779B97F4A7C15, // fixed seed: replays bit-exact
	}
	for _, svc := range replicas {
		l.reps = append(l.reps, replicaState{svc: svc})
	}
	return l
}

// AttachStats implements accel.StatsUser.
func (l *LoadBalancer) AttachStats(st *sim.Stats) {
	l.ejectC = st.Counter("apps.lb_ejects")
	l.readmitC = st.Counter("apps.lb_readmits")
	l.rerouteC = st.Counter("apps.lb_reroutes")
}

// Replicas reports the replica service list.
func (l *LoadBalancer) Replicas() []msg.ServiceID {
	out := make([]msg.ServiceID, len(l.reps))
	for i := range l.reps {
		out[i] = l.reps[i].svc
	}
	return out
}

// InFlight reports replica i's outstanding request count.
func (l *LoadBalancer) InFlight(i int) int { return l.reps[i].inflight }

// Ejected reports whether replica i is currently ejected.
func (l *LoadBalancer) Ejected(i int) bool { return l.reps[i].ejected }

// Ejects, Readmits and Reroutes report lifetime health-policy actions.
func (l *LoadBalancer) Ejects() uint64 { return l.ejects }

// Readmits reports how many ejected replicas came back via probes.
func (l *LoadBalancer) Readmits() uint64 { return l.readmits }

// Reroutes reports requests re-dispatched to another replica after a NACK.
func (l *LoadBalancer) Reroutes() uint64 { return l.reroutes }

// Name implements accel.Accelerator.
func (l *LoadBalancer) Name() string { return "loadbal" }

// Contexts implements accel.Accelerator.
func (l *LoadBalancer) Contexts() int { return 1 }

// Reset implements accel.Accelerator.
func (l *LoadBalancer) Reset() {
	l.pend = make(map[uint32]lbPend)
	l.out = outQ{}
	l.waitQ = nil
	l.rr = 0
	l.rng = 0x9E3779B97F4A7C15
	for i := range l.reps {
		svc := l.reps[i].svc
		l.reps[i] = replicaState{svc: svc}
	}
}

// Idle implements accel.Idler.
func (l *LoadBalancer) Idle() bool { return l.out.empty() && len(l.waitQ) == 0 }

// Tick implements accel.Accelerator. The balancer is wiring, not compute:
// it moves up to 4 messages per cycle.
func (l *LoadBalancer) Tick(p accel.Port) {
	// Deferred dispatches first (FIFO): requests that bounced off local
	// egress backpressure last cycle.
	if len(l.waitQ) > 0 {
		kept := l.waitQ[:0]
		blocked := false
		for _, seq := range l.waitQ {
			if blocked || !l.dispatch(p, seq) {
				kept = append(kept, seq)
				blocked = true
			}
		}
		l.waitQ = kept
	}
	for i := 0; i < 4; i++ {
		m, ok := p.Recv()
		if !ok {
			break
		}
		l.handle(p, m)
	}
	l.out.flush(p)
}

func (l *LoadBalancer) handle(p accel.Port, m *msg.Message) {
	now := p.Now()
	switch m.Type {
	case msg.TRequest:
		if len(l.reps) == 0 {
			l.out.push(now, m.ErrorReply(msg.ENoService))
			return
		}
		seq := l.nextSeq
		l.nextSeq++
		l.pend[seq] = lbPend{
			tile: m.SrcTile, ctx: m.SrcCtx, seq: m.Seq, rep: -1,
			budget: m.Budget, payload: m.Payload,
		}
		if !l.dispatch(p, seq) {
			l.waitQ = append(l.waitQ, seq)
		}
	case msg.TReply, msg.TError:
		pe, ok := l.pend[m.Seq]
		if !ok || pe.rep < 0 {
			return
		}
		rs := &l.reps[pe.rep]
		rs.inflight--
		l.Completed[pe.rep]++
		if m.Type == msg.TReply {
			if rs.probing {
				// Successful half-open probe: re-admit the replica.
				rs.probing = false
				if rs.ejected {
					rs.ejected = false
					rs.backoff.Reset()
					l.readmits++
					if l.readmitC != nil {
						l.readmitC.Inc()
					}
				}
			}
			delete(l.pend, m.Seq)
			l.out.push(now, &msg.Message{
				Type: m.Type, Err: m.Err, DstTile: pe.tile, DstCtx: pe.ctx,
				Seq: pe.seq, Payload: m.Payload,
			})
			return
		}
		// NACK from the replica.
		if !l.Static {
			if rs.probing {
				// Failed probe: stay ejected, doubled backoff.
				rs.probing = false
				rs.probeAt = now + rs.backoff.Next()
			} else if fencedErr(m.Err) {
				l.eject(pe.rep, now)
			}
			if reroutableErr(m.Err) && pe.tries < l.RerouteLimit {
				pe.tries++
				pe.rep = -1
				l.pend[m.Seq] = pe
				l.reroutes++
				if l.rerouteC != nil {
					l.rerouteC.Inc()
				}
				if !l.dispatch(p, m.Seq) {
					l.waitQ = append(l.waitQ, m.Seq)
				}
				return
			}
		}
		delete(l.pend, m.Seq)
		l.out.push(now, &msg.Message{
			Type: m.Type, Err: m.Err, DstTile: pe.tile, DstCtx: pe.ctx,
			Seq: pe.seq, Payload: m.Payload,
		})
	}
}

// dispatch picks a replica for pend[seq] and sends. Reports false when the
// send bounced off local backpressure and must be retried next tick; any
// other outcome (sent, or terminally answered with an error) consumes the
// seq from the caller's perspective.
func (l *LoadBalancer) dispatch(p accel.Port, seq uint32) bool {
	pe, ok := l.pend[seq]
	if !ok {
		return true
	}
	now := p.Now()
	for range l.reps {
		idx, found := l.pick(now)
		if !found {
			break
		}
		m := &msg.Message{
			Type: msg.TRequest, DstSvc: l.reps[idx].svc, Seq: seq,
			Budget: pe.budget, Payload: pe.payload,
		}
		switch p.Send(m) {
		case msg.EOK:
			pe.rep = idx
			l.pend[seq] = pe
			l.reps[idx].inflight++
			l.PerReplica[idx]++
			return true
		case msg.ERateLimited, msg.EBusy:
			// Local egress backpressure, not a replica problem: undo a
			// probe claim and retry next tick.
			if l.reps[idx].probing && l.reps[idx].ejected {
				l.reps[idx].probing = false
			}
			return false
		default:
			// Local fenced denial for this replica (its endpoint is
			// revoked or its tile fail-stopped): eject it and try the
			// next one right now.
			if l.Static {
				delete(l.pend, seq)
				l.out.push(now, &msg.Message{
					Type: msg.TError, Err: msg.EFailStopped, DstTile: pe.tile,
					DstCtx: pe.ctx, Seq: pe.seq,
				})
				return true
			}
			l.eject(idx, now)
		}
	}
	// No replica can take it: shed at the balancer.
	delete(l.pend, seq)
	l.out.push(now, &msg.Message{
		Type: msg.TError, Err: msg.EBusy, DstTile: pe.tile, DstCtx: pe.ctx,
		Seq: pe.seq,
	})
	return true
}

// pick chooses a replica: a due half-open probe first (re-admission rides
// on live requests), else power-of-two-choices on in-flight among healthy
// replicas (blind round-robin in Static mode).
func (l *LoadBalancer) pick(now sim.Cycle) (int, bool) {
	if len(l.reps) == 0 {
		return 0, false
	}
	if l.Static {
		idx := l.rr % len(l.reps)
		l.rr++
		return idx, true
	}
	for i := range l.reps {
		rs := &l.reps[i]
		if rs.ejected && !rs.probing && now >= rs.probeAt {
			rs.probing = true
			return i, true
		}
	}
	cand := make([]int, 0, len(l.reps))
	for i := range l.reps {
		if !l.reps[i].ejected {
			cand = append(cand, i)
		}
	}
	switch len(cand) {
	case 0:
		return 0, false
	case 1:
		return cand[0], true
	}
	a := l.rngN(len(cand))
	b := l.rngN(len(cand) - 1)
	if b >= a {
		b++
	}
	i, j := cand[a], cand[b]
	if l.reps[j].inflight < l.reps[i].inflight ||
		(l.reps[j].inflight == l.reps[i].inflight && j < i) {
		return j, true
	}
	return i, true
}

// eject marks a replica unhealthy and schedules its half-open probe.
func (l *LoadBalancer) eject(idx int, now sim.Cycle) {
	rs := &l.reps[idx]
	rs.probing = false
	if rs.backoff.Base == 0 {
		rs.backoff = accel.Backoff{Base: l.EjectBase, Max: l.EjectMax}
	}
	rs.probeAt = now + rs.backoff.Next()
	if !rs.ejected {
		rs.ejected = true
		l.ejects++
		if l.ejectC != nil {
			l.ejectC.Inc()
		}
	}
}

// rngN returns a deterministic value in [0, n) (xorshift64; tile-local
// state, so the sequence is a pure function of the message history).
func (l *LoadBalancer) rngN(n int) int {
	l.rng ^= l.rng << 13
	l.rng ^= l.rng >> 7
	l.rng ^= l.rng << 17
	return int(l.rng % uint64(n))
}

// fencedErr reports whether a NACK code means the replica itself is fenced
// (as opposed to merely busy).
func fencedErr(e msg.ErrCode) bool {
	return e == msg.EFailStopped || e == msg.ERevoked || e == msg.ENoService
}

// reroutableErr reports whether a NACKed request is worth handing to a
// different replica.
func reroutableErr(e msg.ErrCode) bool {
	return fencedErr(e) || e == msg.EBusy || e == msg.ERateLimited
}

// Faulty wraps an accelerator and injects a panic after the wrapped logic
// has received the given number of messages — the fault-injection harness
// for E8/E9.
type Faulty struct {
	accel.Accelerator
	// PanicAfter is the message count that triggers the fault.
	PanicAfter int

	seen int
}

// NewFaulty wraps a.
func NewFaulty(a accel.Accelerator, panicAfter int) *Faulty {
	return &Faulty{Accelerator: a, PanicAfter: panicAfter}
}

// Unwrap exposes the wrapped accelerator so accel.IsTileLocal can look
// through the fault injector: Faulty's own behaviour (counting, panicking)
// is tile-local, so its shard safety is exactly its victim's.
func (f *Faulty) Unwrap() accel.Accelerator { return f.Accelerator }

// faultyPort counts Recv results so the wrapper knows when to blow up.
type faultyPort struct {
	accel.Port
	f *Faulty
}

func (fp *faultyPort) Recv() (*msg.Message, bool) {
	m, ok := fp.Port.Recv()
	if ok {
		fp.f.seen++
	}
	return m, ok
}

// Tick implements accel.Accelerator.
func (f *Faulty) Tick(p accel.Port) {
	if f.PanicAfter > 0 && f.seen >= f.PanicAfter {
		panic("apps: injected fault")
	}
	f.Accelerator.Tick(&faultyPort{Port: p, f: f})
}

// Idle implements accel.Idler. An armed trigger counts as work: the next
// Tick panics, which is very much not a no-op. Otherwise defer to the
// wrapped accelerator (embedding does not forward Idle — the embedded field
// is the plain Accelerator interface — so this must be explicit).
func (f *Faulty) Idle() bool {
	if f.PanicAfter > 0 && f.seen >= f.PanicAfter {
		return false
	}
	ih, ok := f.Accelerator.(accel.Idler)
	return ok && ih.Idle()
}

// Reset implements accel.Accelerator; the wrapped accelerator restarts
// clean and the trigger re-arms.
func (f *Faulty) Reset() {
	f.seen = 0
	f.Accelerator.Reset()
}
