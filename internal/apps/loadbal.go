package apps

import (
	"apiary/internal/accel"
	"apiary/internal/msg"
)

// LoadBalancer is the scale-out splitter (paper §3 "Scalability": elements
// are "scaled out to meet the specific use case ... without manual
// optimization"). It exposes one service and spreads requests round-robin
// over N replica services, routing each reply back to its original
// requester.
type LoadBalancer struct {
	accel.TileLocalMarker // pure Port user: safe on the tile's shard

	replicas []msg.ServiceID
	rr       int
	nextSeq  uint32
	pend     map[uint32]pendEntry
	out      outQ

	// PerReplica counts requests dispatched to each replica.
	PerReplica []uint64
}

// NewLoadBalancer builds a balancer over the given replica services.
func NewLoadBalancer(replicas []msg.ServiceID) *LoadBalancer {
	return &LoadBalancer{
		replicas:   append([]msg.ServiceID(nil), replicas...),
		pend:       make(map[uint32]pendEntry),
		PerReplica: make([]uint64, len(replicas)),
	}
}

// Name implements accel.Accelerator.
func (l *LoadBalancer) Name() string { return "loadbal" }

// Contexts implements accel.Accelerator.
func (l *LoadBalancer) Contexts() int { return 1 }

// Reset implements accel.Accelerator.
func (l *LoadBalancer) Reset() {
	l.pend = make(map[uint32]pendEntry)
	l.out = outQ{}
	l.rr = 0
}

// Idle implements accel.Idler.
func (l *LoadBalancer) Idle() bool { return l.out.empty() }

// Tick implements accel.Accelerator. The balancer is wiring, not compute:
// it moves up to 4 messages per cycle.
func (l *LoadBalancer) Tick(p accel.Port) {
	for i := 0; i < 4; i++ {
		m, ok := p.Recv()
		if !ok {
			break
		}
		l.handle(p, m)
	}
	l.out.flush(p)
}

func (l *LoadBalancer) handle(p accel.Port, m *msg.Message) {
	now := p.Now()
	switch m.Type {
	case msg.TRequest:
		if len(l.replicas) == 0 {
			l.out.push(now, m.ErrorReply(msg.ENoService))
			return
		}
		idx := l.rr % len(l.replicas)
		l.rr++
		l.PerReplica[idx]++
		seq := l.nextSeq
		l.nextSeq++
		l.pend[seq] = pendEntry{tile: m.SrcTile, ctx: m.SrcCtx, seq: m.Seq}
		l.out.push(now, &msg.Message{
			Type: msg.TRequest, DstSvc: l.replicas[idx], Seq: seq, Payload: m.Payload,
		})
	case msg.TReply, msg.TError:
		pe, ok := l.pend[m.Seq]
		if !ok {
			return
		}
		delete(l.pend, m.Seq)
		l.out.push(now, &msg.Message{
			Type: m.Type, Err: m.Err, DstTile: pe.tile, DstCtx: pe.ctx,
			Seq: pe.seq, Payload: m.Payload,
		})
	}
}

// Faulty wraps an accelerator and injects a panic after the wrapped logic
// has received the given number of messages — the fault-injection harness
// for E8/E9.
type Faulty struct {
	accel.Accelerator
	// PanicAfter is the message count that triggers the fault.
	PanicAfter int

	seen int
}

// NewFaulty wraps a.
func NewFaulty(a accel.Accelerator, panicAfter int) *Faulty {
	return &Faulty{Accelerator: a, PanicAfter: panicAfter}
}

// Unwrap exposes the wrapped accelerator so accel.IsTileLocal can look
// through the fault injector: Faulty's own behaviour (counting, panicking)
// is tile-local, so its shard safety is exactly its victim's.
func (f *Faulty) Unwrap() accel.Accelerator { return f.Accelerator }

// faultyPort counts Recv results so the wrapper knows when to blow up.
type faultyPort struct {
	accel.Port
	f *Faulty
}

func (fp *faultyPort) Recv() (*msg.Message, bool) {
	m, ok := fp.Port.Recv()
	if ok {
		fp.f.seen++
	}
	return m, ok
}

// Tick implements accel.Accelerator.
func (f *Faulty) Tick(p accel.Port) {
	if f.PanicAfter > 0 && f.seen >= f.PanicAfter {
		panic("apps: injected fault")
	}
	f.Accelerator.Tick(&faultyPort{Port: p, f: f})
}

// Idle implements accel.Idler. An armed trigger counts as work: the next
// Tick panics, which is very much not a no-op. Otherwise defer to the
// wrapped accelerator (embedding does not forward Idle — the embedded field
// is the plain Accelerator interface — so this must be explicit).
func (f *Faulty) Idle() bool {
	if f.PanicAfter > 0 && f.seen >= f.PanicAfter {
		return false
	}
	ih, ok := f.Accelerator.(accel.Idler)
	return ok && ih.Idle()
}

// Reset implements accel.Accelerator; the wrapped accelerator restarts
// clean and the trigger re-arms.
func (f *Faulty) Reset() {
	f.seen = 0
	f.Accelerator.Reset()
}
