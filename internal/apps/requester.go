package apps

import (
	"sort"

	"apiary/internal/accel"
	"apiary/internal/msg"
	"apiary/internal/sim"
)

// Requester is the synthetic closed/open-loop client accelerator used by
// experiments: it issues requests to a target service at a configured gap,
// matches replies by sequence number and records end-to-end latency.
//
// Requester is deliberately NOT marked accel.TileLocal: it Observes an
// injected, possibly shared latency Histogram during Tick and runs a
// caller-supplied Payload closure, both of which may reach beyond the tile.
// A board hosting a Requester therefore ticks serially — experiments
// measure latency distributions, where that is the right trade.
type Requester struct {
	Target msg.ServiceID
	// Payload generates the i-th request body.
	Payload func(i int) []byte
	// Total requests to issue (0 = unlimited).
	Total int
	// GapCycles between issues (closed loop if InFlight bound hit).
	GapCycles sim.Cycle
	// MaxInFlight bounds outstanding requests (default 8).
	MaxInFlight int
	// TimeoutCycles expires an unanswered request (counted as an error).
	// Requests can vanish without a NACK — e.g. they were queued in a
	// shell that fail-stopped — so a client without timeouts deadlocks
	// exactly when the system it measures misbehaves. Default 100000.
	TimeoutCycles sim.Cycle
	// RetryLimit is how many times a timed-out request is retransmitted
	// (same sequence number) before being abandoned as an error. 0 keeps
	// the historical abandon-on-first-timeout behavior.
	RetryLimit int
	// BackoffBase/BackoffMax configure deterministic exponential backoff
	// applied to the issue pacing after a timeout, denial or TError —
	// clients of a quarantined service retreat instead of hammering its
	// monitor. Zero BackoffBase disables backoff.
	BackoffBase sim.Cycle
	BackoffMax  sim.Cycle

	sent      int
	inFlight  int
	nextAt    sim.Cycle
	sentAt    map[uint32]sim.Cycle
	retries   map[uint32]int
	backoff   accel.Backoff
	retried   int
	latency   *sim.Histogram
	errs      int
	responses int
	lastReply []byte
}

// NewRequester builds a client for target issuing total requests.
func NewRequester(target msg.ServiceID, total int, gap sim.Cycle,
	payload func(i int) []byte, lat *sim.Histogram) *Requester {
	return &Requester{
		Target: target, Total: total, GapCycles: gap, Payload: payload,
		MaxInFlight: 8, TimeoutCycles: 100_000,
		sentAt:  make(map[uint32]sim.Cycle),
		retries: make(map[uint32]int), latency: lat,
	}
}

// Done reports whether every request has been answered.
func (r *Requester) Done() bool {
	return r.Total > 0 && r.responses+r.errs >= r.Total
}

// Responses reports successful replies received.
func (r *Requester) Responses() int { return r.responses }

// Errors reports TError replies received.
func (r *Requester) Errors() int { return r.errs }

// LastReply returns the most recent reply payload.
func (r *Requester) LastReply() []byte { return r.lastReply }

// Retransmits reports how many timed-out requests were resent.
func (r *Requester) Retransmits() int { return r.retried }

// Name implements accel.Accelerator.
func (r *Requester) Name() string { return "requester" }

// Contexts implements accel.Accelerator.
func (r *Requester) Contexts() int { return 1 }

// Reset implements accel.Accelerator.
func (r *Requester) Reset() {
	r.sentAt = make(map[uint32]sim.Cycle)
	r.retries = make(map[uint32]int)
	r.inFlight = 0
	r.backoff.Reset()
}

// Idle implements accel.Idler. A requester is a traffic source: it is busy
// while it still has requests to issue, a gap timer running, or replies
// outstanding (the timeout scan must keep running for those). Only a
// finished client — everything sent, nothing in flight — is idle.
func (r *Requester) Idle() bool {
	return r.Total > 0 && r.sent >= r.Total && r.inFlight == 0
}

// Tick implements accel.Accelerator.
func (r *Requester) Tick(p accel.Port) {
	now := p.Now()
	for {
		m, ok := p.Recv()
		if !ok {
			break
		}
		at, known := r.sentAt[m.Seq]
		if !known {
			continue
		}
		delete(r.sentAt, m.Seq)
		delete(r.retries, m.Seq)
		r.inFlight--
		switch m.Type {
		case msg.TReply, msg.TMemReply:
			r.responses++
			r.lastReply = m.Payload
			if r.latency != nil {
				r.latency.Observe(float64(now - at))
			}
			r.backoff.Reset()
		case msg.TError:
			r.errs++
			r.holdOff(now)
		}
	}

	// Expire lost requests (scan sparsely; in-flight counts are tiny).
	// Expired sequences are collected and sorted before retransmission so
	// the resend order never depends on map iteration order — retransmits
	// enter the NoC, and a nondeterministic order there would break the
	// serial-vs-parallel bit-exactness the chaos tests assert.
	if r.TimeoutCycles > 0 && r.inFlight > 0 && now%512 == 0 {
		var expired []uint32
		for seq, at := range r.sentAt {
			if now-at > r.TimeoutCycles {
				expired = append(expired, seq)
			}
		}
		sort.Slice(expired, func(i, j int) bool { return expired[i] < expired[j] })
		for _, seq := range expired {
			if r.RetryLimit > 0 && r.retries[seq] < r.RetryLimit {
				m := &msg.Message{
					Type: msg.TRequest, DstSvc: r.Target, Seq: seq,
					Payload: r.Payload(int(seq)),
				}
				switch p.Send(m) {
				case msg.EOK, msg.ERateLimited, msg.EBusy:
					// Sent (or transient push-back: leave it armed and let
					// the next scan retry). Either way the attempt counts.
					r.retries[seq]++
					r.retried++
					r.sentAt[seq] = now
					r.holdOff(now)
					continue
				}
				// Hard denial: fall through and abandon.
			}
			delete(r.sentAt, seq)
			delete(r.retries, seq)
			r.inFlight--
			r.errs++
			r.holdOff(now)
		}
	}

	if (r.Total == 0 || r.sent < r.Total) && now >= r.nextAt && r.inFlight < r.MaxInFlight {
		seq := uint32(r.sent)
		m := &msg.Message{
			Type: msg.TRequest, DstSvc: r.Target, Seq: seq,
			Payload: r.Payload(r.sent),
		}
		code := p.Send(m)
		switch code {
		case msg.EOK:
			r.sentAt[seq] = now
			r.sent++
			r.inFlight++
			r.nextAt = now + r.GapCycles
		case msg.ERateLimited, msg.EBusy:
			// Retry next tick.
		default:
			// Hard denial (no capability, no service): count as error so
			// experiments observe it, and move on — after backing off, so a
			// revoked endpoint is probed at a decaying rate rather than
			// every GapCycles.
			r.errs++
			r.sent++
			r.holdOff(now)
		}
	}
}

// holdOff pushes the next issue out by the current backoff delay (no-op
// when backoff is disabled or the pacing already waits longer).
func (r *Requester) holdOff(now sim.Cycle) {
	if r.BackoffBase == 0 {
		return
	}
	r.backoff.Base, r.backoff.Max = r.BackoffBase, r.BackoffMax
	if at := now + r.backoff.Next(); at > r.nextAt {
		r.nextAt = at
	}
}
