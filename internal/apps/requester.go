package apps

import (
	"sort"

	"apiary/internal/accel"
	"apiary/internal/msg"
	"apiary/internal/sim"
)

// Requester is the synthetic closed/open-loop client accelerator used by
// experiments: it issues requests to a target service at a configured gap,
// matches replies by sequence number and records end-to-end latency.
//
// Requester is deliberately NOT marked accel.TileLocal: it Observes an
// injected, possibly shared latency Histogram during Tick and runs a
// caller-supplied Payload closure, both of which may reach beyond the tile.
// A board hosting a Requester therefore ticks serially — experiments
// measure latency distributions, where that is the right trade.
type Requester struct {
	Target msg.ServiceID
	// Payload generates the i-th request body.
	Payload func(i int) []byte
	// Total requests to issue (0 = unlimited).
	Total int
	// GapCycles between issues (closed loop if InFlight bound hit).
	GapCycles sim.Cycle
	// MaxInFlight bounds outstanding requests (default 8).
	MaxInFlight int
	// TimeoutCycles expires an unanswered request (counted as an error).
	// Requests can vanish without a NACK — e.g. they were queued in a
	// shell that fail-stopped — so a client without timeouts deadlocks
	// exactly when the system it measures misbehaves. Default 100000.
	TimeoutCycles sim.Cycle
	// RetryLimit is how many times a timed-out (or, with RetryNacks, a
	// transiently NACKed) request is retransmitted with the same sequence
	// number before being abandoned as an error. 0 keeps the historical
	// abandon-on-first-timeout behavior.
	RetryLimit int
	// BackoffBase/BackoffMax configure deterministic exponential backoff
	// applied to the issue pacing after a timeout, denial or TError —
	// clients of a quarantined service retreat instead of hammering its
	// monitor. Zero BackoffBase disables backoff.
	BackoffBase sim.Cycle
	BackoffMax  sim.Cycle
	// Budget, when nonzero, stamps every request with a queueing deadline
	// (msg.Message.Budget): the destination shell sheds the request with
	// EBusy when its admission queue cannot meet it.
	Budget sim.Cycle
	// BreakerThreshold arms a circuit breaker: after this many consecutive
	// EBusy push-backs the client stops issuing for a (doubling) cooldown
	// and then sends a single half-open probe. 0 disables the breaker.
	BreakerThreshold int
	// RetryNacks treats transient failures — EBusy, EFailStopped, ERevoked,
	// ERateLimited, ENoService, whether remote NACKs or local denials — as
	// retryable within RetryLimit, instead of counting them as errors
	// immediately. This is what rides out a failover: requests bounced off
	// a fenced primary are retransmitted (after backoff) and land on the
	// replica once the kernel re-binds the service.
	RetryNacks bool

	sent      int
	inFlight  int
	nextAt    sim.Cycle
	sentAt    map[uint32]sim.Cycle
	retries   map[uint32]int
	resendQ   []resend
	backoff   accel.Backoff
	breaker   accel.Breaker
	retried   int
	busyNacks int
	latency   *sim.Histogram
	errs      int
	responses int
	lastReply []byte

	breakerOpenC  *sim.Counter
	breakerCloseC *sim.Counter
	nackRetryC    *sim.Counter
}

// resend is a retransmit scheduled by a transient NACK: the same sequence
// number goes out again once the backoff delay elapses (and the breaker
// admits it).
type resend struct {
	seq uint32
	at  sim.Cycle
}

// NewRequester builds a client for target issuing total requests.
func NewRequester(target msg.ServiceID, total int, gap sim.Cycle,
	payload func(i int) []byte, lat *sim.Histogram) *Requester {
	return &Requester{
		Target: target, Total: total, GapCycles: gap, Payload: payload,
		MaxInFlight: 8, TimeoutCycles: 100_000,
		sentAt:  make(map[uint32]sim.Cycle),
		retries: make(map[uint32]int), latency: lat,
	}
}

// AttachStats implements accel.StatsUser: breaker transitions and NACK
// retries surface as counters when the kernel places the client.
func (r *Requester) AttachStats(st *sim.Stats) {
	r.breakerOpenC = st.Counter("apps.breaker_opens")
	r.breakerCloseC = st.Counter("apps.breaker_closes")
	r.nackRetryC = st.Counter("apps.nack_retries")
}

// Done reports whether every request has been answered.
func (r *Requester) Done() bool {
	return r.Total > 0 && r.responses+r.errs >= r.Total
}

// Responses reports successful replies received.
func (r *Requester) Responses() int { return r.responses }

// Errors reports TError replies received.
func (r *Requester) Errors() int { return r.errs }

// LastReply returns the most recent reply payload.
func (r *Requester) LastReply() []byte { return r.lastReply }

// Retransmits reports how many requests were resent (timeouts and NACKs).
func (r *Requester) Retransmits() int { return r.retried }

// BusyNacks reports how many EBusy NACKs (load sheds) the client absorbed.
func (r *Requester) BusyNacks() int { return r.busyNacks }

// Breaker exposes the circuit breaker (state, open/close counts).
func (r *Requester) Breaker() *accel.Breaker { return &r.breaker }

// Name implements accel.Accelerator.
func (r *Requester) Name() string { return "requester" }

// Contexts implements accel.Accelerator.
func (r *Requester) Contexts() int { return 1 }

// Reset implements accel.Accelerator.
func (r *Requester) Reset() {
	r.sentAt = make(map[uint32]sim.Cycle)
	r.retries = make(map[uint32]int)
	r.resendQ = nil
	r.inFlight = 0
	r.backoff.Reset()
	r.breaker.Reset()
}

// Idle implements accel.Idler. A requester is a traffic source: it is busy
// while it still has requests to issue, a gap timer running, or replies
// outstanding (the timeout scan must keep running for those). Only a
// finished client — everything sent, nothing in flight — is idle.
func (r *Requester) Idle() bool {
	return r.Total > 0 && r.sent >= r.Total && r.inFlight == 0
}

// transientErr reports whether a NACK/denial code is worth retrying: the
// condition clears on its own (overload drains, a fenced service fails
// over, a revoked endpoint is re-minted after recovery, a quiescing tile
// resumes or its replacement comes up). EQuiescing mirrors the ERevoked
// treatment from the quarantine path: the bounce is the system doing its
// job, so it is retryable AND — because only EBusy feeds the breaker via
// onBusy — exempt from the circuit-breaker trip budget. A client rides out
// a migration window on backoff alone, without its breaker opening.
func transientErr(e msg.ErrCode) bool {
	switch e {
	case msg.EBusy, msg.EFailStopped, msg.ERevoked, msg.ERateLimited,
		msg.ENoService, msg.EQuiescing:
		return true
	}
	return false
}

// request builds the wire message for sequence seq.
func (r *Requester) request(seq uint32) *msg.Message {
	return &msg.Message{
		Type: msg.TRequest, DstSvc: r.Target, Seq: seq,
		Budget: uint32(r.Budget), Payload: r.Payload(int(seq)),
	}
}

// Tick implements accel.Accelerator.
func (r *Requester) Tick(p accel.Port) {
	now := p.Now()
	if r.BreakerThreshold > 0 && r.breaker.Threshold != r.BreakerThreshold {
		r.breaker.Threshold = r.BreakerThreshold
		base := r.BackoffBase
		if base == 0 {
			base = 1024
		}
		r.breaker.Cooldown = accel.Backoff{Base: base, Max: r.BackoffMax}
	}

	for {
		m, ok := p.Recv()
		if !ok {
			break
		}
		at, known := r.sentAt[m.Seq]
		if !known {
			// A reply can still arrive for a sequence parked in the resend
			// queue (a duplicate answer to an earlier transmission): accept
			// successes, drop anything else — the resend already covers it.
			if (m.Type == msg.TReply || m.Type == msg.TMemReply) && r.dropResend(m.Seq) {
				delete(r.retries, m.Seq)
				r.inFlight--
				r.responses++
				r.lastReply = m.Payload
				r.onSuccess()
			}
			continue
		}
		switch m.Type {
		case msg.TReply, msg.TMemReply:
			delete(r.sentAt, m.Seq)
			delete(r.retries, m.Seq)
			r.inFlight--
			r.responses++
			r.lastReply = m.Payload
			if r.latency != nil {
				r.latency.Observe(float64(now - at))
			}
			r.onSuccess()
		case msg.TError:
			if m.Err == msg.EBusy {
				r.busyNacks++
				r.onBusy(now)
			}
			if r.RetryNacks && transientErr(m.Err) &&
				r.RetryLimit > 0 && r.retries[m.Seq] < r.RetryLimit {
				// Still outstanding: same seq goes out again after backoff.
				r.retries[m.Seq]++
				r.retried++
				if r.nackRetryC != nil {
					r.nackRetryC.Inc()
				}
				delete(r.sentAt, m.Seq)
				r.holdOff(now)
				r.resendQ = append(r.resendQ, resend{seq: m.Seq, at: now + r.retransmitDelay()})
				continue
			}
			delete(r.sentAt, m.Seq)
			delete(r.retries, m.Seq)
			r.inFlight--
			r.errs++
			r.holdOff(now)
		}
	}

	// Fire scheduled retransmits (FIFO, so the order never depends on map
	// iteration; the breaker gates them like fresh issues — in half-open
	// the first due resend is the probe).
	if len(r.resendQ) > 0 {
		kept := r.resendQ[:0]
		for i, rs := range r.resendQ {
			if rs.at > now || !r.breaker.Allow(now) {
				kept = append(kept, r.resendQ[i])
				continue
			}
			switch p.Send(r.request(rs.seq)) {
			case msg.EOK:
				r.sentAt[rs.seq] = now
			case msg.ERateLimited, msg.EBusy:
				kept = append(kept, resend{seq: rs.seq, at: now + 1})
			default:
				// Hard local denial (revoked/fenced mid-failover): retry
				// within the budget, abandon past it.
				if r.RetryNacks && r.retries[rs.seq] < r.RetryLimit {
					r.retries[rs.seq]++
					r.retried++
					r.holdOff(now)
					kept = append(kept, resend{seq: rs.seq, at: now + r.retransmitDelay()})
				} else {
					delete(r.retries, rs.seq)
					r.inFlight--
					r.errs++
					r.holdOff(now)
				}
			}
		}
		r.resendQ = kept
	}

	// Expire lost requests (scan sparsely; in-flight counts are tiny).
	// Expired sequences are collected and sorted before retransmission so
	// the resend order never depends on map iteration order — retransmits
	// enter the NoC, and a nondeterministic order there would break the
	// serial-vs-parallel bit-exactness the chaos tests assert.
	if r.TimeoutCycles > 0 && r.inFlight > 0 && now%512 == 0 {
		var expired []uint32
		for seq, at := range r.sentAt {
			if now-at > r.TimeoutCycles {
				expired = append(expired, seq)
			}
		}
		sort.Slice(expired, func(i, j int) bool { return expired[i] < expired[j] })
		for _, seq := range expired {
			if r.RetryLimit > 0 && r.retries[seq] < r.RetryLimit {
				switch p.Send(r.request(seq)) {
				case msg.EOK, msg.ERateLimited, msg.EBusy:
					// Sent (or transient push-back: leave it armed and let
					// the next scan retry). Either way the attempt counts.
					r.retries[seq]++
					r.retried++
					r.sentAt[seq] = now
					r.holdOff(now)
					continue
				}
				// Hard denial: fall through and abandon.
			}
			delete(r.sentAt, seq)
			delete(r.retries, seq)
			r.inFlight--
			r.errs++
			r.holdOff(now)
			// A silently lost request is a failure verdict for the breaker
			// too; without this a half-open probe that vanishes would wedge
			// the breaker with its probe slot taken forever.
			r.onBusy(now)
		}
	}

	if (r.Total == 0 || r.sent < r.Total) && now >= r.nextAt &&
		r.inFlight < r.MaxInFlight && r.breaker.Allow(now) {
		seq := uint32(r.sent)
		code := p.Send(r.request(seq))
		switch code {
		case msg.EOK:
			r.sentAt[seq] = now
			r.sent++
			r.inFlight++
			r.nextAt = now + r.GapCycles
		case msg.ERateLimited, msg.EBusy:
			// Retry next tick.
		default:
			if r.RetryNacks && transientErr(code) && r.RetryLimit > 0 {
				// Transient local denial (e.g. the endpoint is being
				// re-minted mid-failover): park the request for resend
				// instead of losing it.
				r.sent++
				r.inFlight++
				r.retries[seq] = 1
				r.retried++
				if r.nackRetryC != nil {
					r.nackRetryC.Inc()
				}
				r.holdOff(now)
				r.resendQ = append(r.resendQ, resend{seq: seq, at: now + r.retransmitDelay()})
				r.nextAt = now + r.GapCycles
				return
			}
			// Hard denial (no capability, no service): count as error so
			// experiments observe it, and move on — after backing off, so a
			// revoked endpoint is probed at a decaying rate rather than
			// every GapCycles.
			r.errs++
			r.sent++
			r.holdOff(now)
		}
	}
}

// dropResend removes seq from the resend queue, reporting whether it was
// there.
func (r *Requester) dropResend(seq uint32) bool {
	for i, rs := range r.resendQ {
		if rs.seq == seq {
			r.resendQ = append(r.resendQ[:i], r.resendQ[i+1:]...)
			return true
		}
	}
	return false
}

// onSuccess feeds the breaker a success and counts the close if it was open.
func (r *Requester) onSuccess() {
	r.backoff.Reset()
	if r.breaker.OnSuccess() && r.breakerCloseC != nil {
		r.breakerCloseC.Inc()
	}
}

// onBusy feeds the breaker a failure and counts the trip if it opened.
func (r *Requester) onBusy(now sim.Cycle) {
	if r.breaker.OnBusy(now) && r.breakerOpenC != nil {
		r.breakerOpenC.Inc()
	}
}

// retransmitDelay is the deterministic delay before a NACKed request goes
// out again: the current backoff step, or a small fixed delay when backoff
// is disabled (an immediate resend would just bounce again).
func (r *Requester) retransmitDelay() sim.Cycle {
	if r.BackoffBase == 0 {
		return 64
	}
	return r.backoff.Current()
}

// holdOff pushes the next issue out by the current backoff delay (no-op
// when backoff is disabled or the pacing already waits longer).
func (r *Requester) holdOff(now sim.Cycle) {
	if r.BackoffBase == 0 {
		return
	}
	r.backoff.Base, r.backoff.Max = r.BackoffBase, r.BackoffMax
	if at := now + r.backoff.Next(); at > r.nextAt {
		r.nextAt = at
	}
}
