package hostos

import (
	"testing"

	"apiary/internal/msg"
	"apiary/internal/netsim"
	"apiary/internal/netstack"
	"apiary/internal/sim"
)

func echoCompute(req []byte) ([]byte, sim.Cycle) {
	return req, sim.Cycle(len(req)/8 + 10)
}

func TestHostedRoundTrip(t *testing.T) {
	e := sim.NewEngine(3)
	st := sim.NewStats()
	fab := netsim.New(e, st)
	client := netstack.NewSoftEndpoint(e, st, fab, 100,
		netsim.LinkConfig{Gbps: 100, LatencyNs: 1000})
	New(e, st, fab, Config{
		Node: 1, Link: netsim.LinkConfig{Gbps: 100, LatencyNs: 1000},
		Compute: echoCompute,
	})
	var got []byte
	client.OnDatagram(func(_ netsim.NodeID, _ uint16, data []byte, _ msg.TraceCtx) { got = data })
	start := e.Now()
	_ = client.Send(1, 7, []byte("hosted request"))
	if !e.RunUntil(func() bool { return got != nil }, 2_000_000) {
		t.Fatal("no hosted reply")
	}
	if string(got) != "hosted request" {
		t.Fatalf("reply = %q", got)
	}
	rtt := e.Now() - start
	// RTT must include 2x propagation (2x 2us = 1000cy) + CPU (2x 1.5us =
	// 750cy) + PCIe (2x ~0.9us = 450cy): well over 2000 cycles.
	if rtt < 2000 {
		t.Fatalf("hosted RTT = %d cycles, implausibly low", rtt)
	}
}

func TestHostedEnergyCharged(t *testing.T) {
	e := sim.NewEngine(3)
	st := sim.NewStats()
	fab := netsim.New(e, st)
	client := netstack.NewSoftEndpoint(e, st, fab, 100, netsim.LinkConfig{})
	n := New(e, st, fab, Config{Node: 1, Compute: echoCompute})
	done := false
	client.OnDatagram(func(netsim.NodeID, uint16, []byte, msg.TraceCtx) { done = true })
	_ = client.Send(1, 1, make([]byte, 256))
	e.RunUntil(func() bool { return done }, 2_000_000)
	m := n.Meter()
	if m.Category("cpu") == 0 || m.Category("pcie") == 0 || m.Category("mac") == 0 {
		t.Fatalf("energy categories missing: cpu=%v pcie=%v mac=%v",
			m.Category("cpu"), m.Category("pcie"), m.Category("mac"))
	}
	if m.Category("cpu") < m.Category("mac") {
		t.Fatal("CPU energy should dominate MAC energy for small requests")
	}
}

func TestCPUQueueingUnderLoad(t *testing.T) {
	// With one core, back-to-back requests must queue: the k-th reply
	// arrives roughly k CPU-times after the first.
	e := sim.NewEngine(3)
	st := sim.NewStats()
	fab := netsim.New(e, st)
	client := netstack.NewSoftEndpoint(e, st, fab, 100,
		netsim.LinkConfig{Gbps: 100, LatencyNs: 100})
	New(e, st, fab, Config{
		Node: 1, Cores: 1,
		Link:    netsim.LinkConfig{Gbps: 100, LatencyNs: 100},
		Compute: func(b []byte) ([]byte, sim.Cycle) { return b, 1 },
	})
	var arrivals []sim.Cycle
	client.OnDatagram(func(netsim.NodeID, uint16, []byte, msg.TraceCtx) {
		arrivals = append(arrivals, e.Now())
	})
	const N = 16
	for i := 0; i < N; i++ {
		_ = client.Send(1, 1, make([]byte, 64))
	}
	if !e.RunUntil(func() bool { return len(arrivals) == N }, 5_000_000) {
		t.Fatalf("served %d/%d", len(arrivals), N)
	}
	spread1 := arrivals[N-1] - arrivals[0]

	// Same load with 4 cores: the spread must shrink substantially.
	e2 := sim.NewEngine(3)
	st2 := sim.NewStats()
	fab2 := netsim.New(e2, st2)
	client2 := netstack.NewSoftEndpoint(e2, st2, fab2, 100,
		netsim.LinkConfig{Gbps: 100, LatencyNs: 100})
	New(e2, st2, fab2, Config{
		Node: 1, Cores: 4,
		Link:    netsim.LinkConfig{Gbps: 100, LatencyNs: 100},
		Compute: func(b []byte) ([]byte, sim.Cycle) { return b, 1 },
	})
	var arrivals2 []sim.Cycle
	client2.OnDatagram(func(netsim.NodeID, uint16, []byte, msg.TraceCtx) {
		arrivals2 = append(arrivals2, e2.Now())
	})
	for i := 0; i < N; i++ {
		_ = client2.Send(1, 1, make([]byte, 64))
	}
	if !e2.RunUntil(func() bool { return len(arrivals2) == N }, 5_000_000) {
		t.Fatalf("4-core served %d/%d", len(arrivals2), N)
	}
	spread4 := arrivals2[N-1] - arrivals2[0]
	if spread4*2 > spread1 {
		t.Fatalf("4 cores (spread %d) should be much faster than 1 (spread %d)",
			spread4, spread1)
	}
}

func TestReconfigMuxCycles(t *testing.T) {
	// 2 apps, 4 reqs each, batch 2, 10 cycles/req, 1000 cycles/reconfig:
	// rounds: (A:2 B:2)(A:2 B:2) = 4 reconfigs + 8 reqs = 4080.
	got := ReconfigMuxCycles(2, 4, 2, 10, 1000)
	if got != 4080 {
		t.Fatalf("ReconfigMuxCycles = %d, want 4080", got)
	}
	if ReconfigMuxCycles(0, 4, 1, 10, 10) != 0 {
		t.Fatal("zero apps should cost zero")
	}
	// Bigger batches amortize reconfiguration.
	small := ReconfigMuxCycles(4, 100, 1, 10, 1000)
	big := ReconfigMuxCycles(4, 100, 50, 10, 1000)
	if big >= small {
		t.Fatal("batching did not amortize reconfiguration cost")
	}
}
