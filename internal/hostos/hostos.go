// Package hostos implements the host-mediated baselines Apiary is compared
// against (paper §1, §5): a Coyote/AmorphOS-style deployment where the FPGA
// hangs off a server CPU and every network request crosses the CPU's
// software stack and the PCIe bus in both directions.
//
// The hosted node uses the same reliable transport, the same network
// fabric and the same accelerator compute model as the Apiary node, so the
// only difference in an E4/E5 comparison is the path structure — which is
// the paper's claim.
package hostos

import (
	"apiary/internal/energy"
	"apiary/internal/msg"
	"apiary/internal/netsim"
	"apiary/internal/netstack"
	"apiary/internal/sim"
)

// ComputeFunc is the accelerator kernel shared between the hosted and
// direct-attached deployments: payload in, reply plus compute-cycle cost
// out.
type ComputeFunc func(req []byte) (reply []byte, cycles sim.Cycle)

// Config parameterizes a hosted node. Zero values take the defaults noted.
type Config struct {
	Node netsim.NodeID
	Link netsim.LinkConfig

	// CPUBaseNs is software-stack time per request direction (syscall,
	// driver, stack traversal). Default 1500 ns — an optimistic kernel
	// bypass would be lower, a standard stack higher.
	CPUBaseNs float64
	// CPUPerByteNs is the per-byte CPU copy/checksum cost. Default 0.05.
	CPUPerByteNs float64
	// Cores is the number of CPU cores serving the dataplane. Default 1.
	Cores int
	// PCIeLatNs is the one-way PCIe+DMA-setup latency. Default 900 ns.
	PCIeLatNs float64
	// PCIeGBps is the DMA bandwidth. Default 12 (Gen3 x16-ish).
	PCIeGBps float64

	Compute ComputeFunc
}

func (c *Config) defaults() {
	if c.CPUBaseNs == 0 {
		c.CPUBaseNs = 1500
	}
	if c.CPUPerByteNs == 0 {
		c.CPUPerByteNs = 0.05
	}
	if c.Cores == 0 {
		c.Cores = 1
	}
	if c.PCIeLatNs == 0 {
		c.PCIeLatNs = 900
	}
	if c.PCIeGBps == 0 {
		c.PCIeGBps = 12
	}
}

// Node is a host-mediated FPGA deployment on the datacenter network.
type Node struct {
	cfg    Config
	engine *sim.Engine
	ep     *netstack.SoftEndpoint
	meter  *energy.Meter

	coreBusy  []sim.Cycle // per-core busy horizon
	pcieBusy  sim.Cycle
	accelBusy sim.Cycle

	served *sim.Counter
}

// New attaches a hosted node to the fabric.
func New(e *sim.Engine, st *sim.Stats, fab *netsim.Fabric, cfg Config) *Node {
	cfg.defaults()
	n := &Node{
		cfg:      cfg,
		engine:   e,
		meter:    energy.NewMeter(),
		coreBusy: make([]sim.Cycle, cfg.Cores),
		served:   st.Counter("hostos.served"),
	}
	n.ep = netstack.NewSoftEndpoint(e, st, fab, cfg.Node, cfg.Link)
	n.ep.OnDatagram(n.onRequest)
	return n
}

// Meter exposes the node's energy accounting.
func (n *Node) Meter() *energy.Meter { return n.meter }

// reserve books a shared resource and returns the completion cycle.
func reserve(busy *sim.Cycle, now, dur sim.Cycle) sim.Cycle {
	start := *busy
	if start < now {
		start = now
	}
	*busy = start + dur
	return *busy
}

// reserveCore books the earliest-free CPU core.
func (n *Node) reserveCore(now, dur sim.Cycle) sim.Cycle {
	best := 0
	for i := 1; i < len(n.coreBusy); i++ {
		if n.coreBusy[i] < n.coreBusy[best] {
			best = i
		}
	}
	return reserve(&n.coreBusy[best], now, dur)
}

func (n *Node) cpuCycles(bytes int) sim.Cycle {
	ns := n.cfg.CPUBaseNs + n.cfg.CPUPerByteNs*float64(bytes)
	return n.engine.CyclesForNanos(ns)
}

func (n *Node) pcieCycles(bytes int) sim.Cycle {
	ns := n.cfg.PCIeLatNs + float64(bytes)/n.cfg.PCIeGBps
	return n.engine.CyclesForNanos(ns)
}

// onRequest walks one request through the host-mediated pipeline:
// NIC -> CPU(rx) -> PCIe(to FPGA) -> accel -> PCIe(back) -> CPU(tx) -> NIC.
// Each stage is a shared resource with its own queue horizon, so the model
// exhibits real queueing under load, not just fixed latency.
func (n *Node) onRequest(remote netsim.NodeID, flow uint16, data []byte, _ msg.TraceCtx) {
	now := n.engine.Now()
	n.meter.MACBytes(uint64(len(data)))

	// CPU receive path.
	rxCycles := n.cpuCycles(len(data))
	n.meter.CPUBusyNs(n.engine.Nanos(rxCycles))
	t := n.reserveCore(now, rxCycles)

	// PCIe to the FPGA.
	n.meter.PCIeBytes(uint64(len(data)))
	t = reserve(&n.pcieBusy, t, n.pcieCycles(len(data)))

	// Accelerator compute.
	reply, compute := n.cfg.Compute(data)
	t = reserve(&n.accelBusy, t, compute)

	// PCIe back.
	n.meter.PCIeBytes(uint64(len(reply)))
	t = reserve(&n.pcieBusy, t, n.pcieCycles(len(reply)))

	// CPU transmit path.
	txCycles := n.cpuCycles(len(reply))
	n.meter.CPUBusyNs(n.engine.Nanos(txCycles))
	t = n.reserveCore(t, txCycles)

	n.meter.MACBytes(uint64(len(reply)))
	n.engine.Schedule(t+1, func(sim.Cycle) {
		n.served.Inc()
		_ = n.ep.Send(remote, flow, reply)
	})
}

// AmorphOS-style temporal multiplexing model (paper §5): one accelerator at
// a time occupies the fabric; switching applications costs a full or
// partial reconfiguration. Apiary's spatial multiplexing has no switch
// cost. ReconfigMuxCycles returns the total cycles to serve `perApp`
// requests from each of `apps` applications round-robin with the given
// batch size, for the throughput ablation in E12's discussion.
func ReconfigMuxCycles(apps, perApp, batch int, reqCycles, reconfigCycles sim.Cycle) sim.Cycle {
	if apps <= 0 || perApp <= 0 {
		return 0
	}
	if batch <= 0 {
		batch = 1
	}
	total := sim.Cycle(0)
	remaining := make([]int, apps)
	for i := range remaining {
		remaining[i] = perApp
	}
	done := false
	for !done {
		done = true
		for i := range remaining {
			if remaining[i] == 0 {
				continue
			}
			done = false
			total += reconfigCycles
			b := batch
			if remaining[i] < b {
				b = remaining[i]
			}
			remaining[i] -= b
			total += sim.Cycle(b) * reqCycles
		}
	}
	return total
}
