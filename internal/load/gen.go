package load

import (
	"fmt"

	"apiary/internal/accel"
	"apiary/internal/msg"
	"apiary/internal/obs"
	"apiary/internal/sim"
)

// BacklogCap bounds the generator's send backlog: arrivals the NoC or the
// local monitor pushed back on wait here (keeping their arrival stamp — the
// open loop never re-times a request), and past the cap new arrivals are
// shed immediately. The cap is what makes a saturated run terminate with a
// measured shed rate instead of an unbounded queue.
const BacklogCap = 4096

// pend is the in-flight record for one sent request.
type pend struct {
	arriveAt sim.Cycle
	class    uint8
	phase    uint8
}

// deadline is one entry in the timeout FIFO. Timeouts are uniform per
// scenario and sends are monotone in time, so deadlines expire in append
// order — a head check per tick replaces any sorted scan.
type deadline struct {
	seq uint32
	at  sim.Cycle
}

// PhaseAgg accumulates one phase's client-visible results. Completions are
// attributed to the phase that *offered* the arrival, even when the reply
// lands after the boundary — the per-phase curve answers "what did requests
// offered at this rate experience".
type PhaseAgg struct {
	Name     string
	Offered  uint64 // arrivals emitted in this phase
	OK       uint64
	Denied   uint64
	Timeout  uint64
	Shed     uint64
	Lat      sim.Histogram // arrival-to-reply latency of OK completions, cycles
	ClassCnt []uint64      // arrivals per class index
}

// Generator is the open-loop load source: an accelerator that converts a
// Scenario's rate curve into arrivals on the engine clock, multiplexes the
// session population over one pooled client tile, and records the
// client-visible stream.
//
// Generator is deliberately NOT marked accel.TileLocal, same as Requester:
// it observes latency histograms and writes the board event log during
// Tick. A board hosting a generator ticks serially; the NoC's sharded
// commit structure still varies with the shard count, which is exactly
// what the differential test exercises.
//
// Open-loop discipline: latency is measured from the scheduled arrival
// cycle, and the generator never retransmits — a denial or timeout is a
// client-visible outcome, not a reason to re-offer. A slow server
// therefore cannot slow the question rate down (no coordinated omission).
type Generator struct {
	scn     *Scenario
	target  msg.ServiceID
	timeout sim.Cycle
	end     sim.Cycle

	// Share i of n: this generator carries 1/n of the offered rate and
	// sessions [base, base+count) of the population.
	shareInc  uint64 // Q32 per-cycle increment divisor applied
	sessBase  int
	sessCount int

	// Events, when set, receives a scenario-phase record at each boundary;
	// Board labels it (-1 for single-board runs).
	Events *obs.EventLog
	Board  int

	rng      *sim.RNG
	acc      uint64
	seq      uint32
	curPhase int
	started  bool
	lastNow  sim.Cycle

	pending   map[uint32]pend
	deadlines []deadline
	backlog   []Arrival
	rec       Recording
	replay    *Recording
	replayIdx int

	phases   []PhaseAgg
	sessHits []uint32 // per-session request count (the "session record")
	weights  []int
	totalW   int

	arrC, okC, errC, shedC *sim.Counter
}

// NewGenerator builds the load source for scn, addressing target (the
// scenario's service on a single board, the fleet proxy doorway on a
// client board). share/shares split the offered rate and the session
// population across pooled generators; seed must already be derived
// per-generator by the caller.
func NewGenerator(scn *Scenario, target msg.ServiceID, seed uint64, share, shares int) *Generator {
	if shares < 1 {
		shares = 1
	}
	timeout := scn.Timeout
	if timeout == 0 {
		timeout = DefaultTimeout
	}
	per := scn.Sessions / shares
	base := share * per
	count := per
	if share == shares-1 {
		count = scn.Sessions - base // last share absorbs the remainder
	}
	g := &Generator{
		scn:       scn,
		target:    target,
		timeout:   timeout,
		end:       scn.Dur(),
		shareInc:  uint64(shares),
		sessBase:  base,
		sessCount: count,
		Board:     -1,
		rng:       sim.NewRNG(seed),
		pending:   make(map[uint32]pend),
		sessHits:  make([]uint32, count),
		totalW:    scn.TotalWeight(),
	}
	for _, c := range scn.Classes {
		g.weights = append(g.weights, c.Weight)
	}
	for _, p := range scn.Phases {
		g.phases = append(g.phases, PhaseAgg{
			Name:     p.Name,
			ClassCnt: make([]uint64, len(scn.Classes)),
		})
	}
	return g
}

// SetReplay switches the generator to replay mode: arrivals come from the
// recording (same seq/session/class at the same cycles) instead of the
// rate engine, so the delivered stream — and its fingerprint — must match
// the recorded run bit-exactly.
func (g *Generator) SetReplay(rec *Recording) { g.replay = rec }

// Recording exposes the captured stream.
func (g *Generator) Recording() *Recording { return &g.rec }

// Scenario exposes the compiled scenario driving this generator.
func (g *Generator) Scenario() *Scenario { return g.scn }

// Name implements accel.Accelerator.
func (g *Generator) Name() string { return "loadgen" }

// Contexts implements accel.Accelerator.
func (g *Generator) Contexts() int { return 1 }

// Reset implements accel.Accelerator.
func (g *Generator) Reset() {
	g.pending = make(map[uint32]pend)
	g.deadlines = nil
	g.backlog = nil
}

// AttachStats implements accel.StatsUser: headline counters surface in
// /metrics without constructor plumbing.
func (g *Generator) AttachStats(st *sim.Stats) {
	g.arrC = st.Counter("load.arrivals")
	g.okC = st.Counter("load.ok")
	g.errC = st.Counter("load.errors")
	g.shedC = st.Counter("load.shed")
}

// Done reports whether the scenario has ended and every arrival resolved.
func (g *Generator) Done(now sim.Cycle) bool {
	return now >= g.end && len(g.pending) == 0 && len(g.backlog) == 0 &&
		(g.replay == nil || g.replayIdx >= len(g.replay.Arrivals))
}

// Idle implements accel.Idler. The generator is a traffic source: never
// idle while the scenario runs or completions are outstanding.
func (g *Generator) Idle() bool {
	return g.started && g.Done(g.lastNow)
}

var _ accel.Idler = (*Generator)(nil)

// Tick implements accel.Accelerator.
func (g *Generator) Tick(p accel.Port) {
	now := p.Now()
	g.lastNow = now
	g.started = true

	// Phase tracking (boundaries land between ticks; observation only).
	if now < g.end {
		if pi, _ := g.scn.PhaseAt(now); pi != g.curPhase {
			g.curPhase = pi
			if g.Events != nil {
				g.Events.Record(now, obs.EvScenarioPhase, "scenario clock",
					fmt.Sprintf("phase %q begins (rate %d rpMc)",
						g.scn.Phases[pi].Name, g.scn.RateAt(now)))
			}
		}
	}

	// 1. Completions: match replies against in-flight arrivals.
	for {
		m, ok := p.Recv()
		if !ok {
			break
		}
		pd, known := g.pending[m.Seq]
		if !known {
			continue // late reply to a timed-out request
		}
		switch m.Type {
		case msg.TReply, msg.TMemReply:
			delete(g.pending, m.Seq)
			g.complete(m.Seq, OutcomeOK, now, &pd)
		case msg.TError:
			delete(g.pending, m.Seq)
			g.complete(m.Seq, OutcomeDenied, now, &pd)
		}
	}

	// 2. Timeouts: deadlines expire in FIFO order (uniform timeout).
	for len(g.deadlines) > 0 && g.deadlines[0].at <= now {
		dl := g.deadlines[0]
		g.deadlines = g.deadlines[1:]
		if pd, ok := g.pending[dl.seq]; ok {
			delete(g.pending, dl.seq)
			g.complete(dl.seq, OutcomeTimeout, now, &pd)
		}
	}

	// 3. New arrivals, from the rate curve or the replay log.
	if g.replay != nil {
		for g.replayIdx < len(g.replay.Arrivals) && g.replay.Arrivals[g.replayIdx].At <= now {
			a := g.replay.Arrivals[g.replayIdx]
			g.replayIdx++
			g.admit(a)
		}
	} else if now < g.end {
		g.acc += incQ32(g.scn.RateAt(now)) / g.shareInc
		for g.acc >= 1<<rateQ {
			g.acc -= 1 << rateQ
			cls := g.drawClass()
			sess := g.sessBase
			if g.sessCount > 0 {
				off := g.rng.Intn(g.sessCount)
				sess += off
				g.sessHits[off]++
			}
			a := Arrival{Seq: g.seq, Session: uint32(sess), Class: cls, At: now}
			g.seq++
			g.admit(a)
		}
	}

	// 4. Flush the send backlog, preserving arrival order (bounded work
	// per tick; local push-back parks the head for the next cycle).
	for tries := 0; tries < 4 && len(g.backlog) > 0; tries++ {
		a := g.backlog[0]
		code := p.Send(g.request(a))
		switch code {
		case msg.EOK:
			g.popBacklog()
			pi, _ := g.scn.PhaseAt(a.At)
			g.pending[a.Seq] = pend{arriveAt: a.At, class: a.Class, phase: uint8(pi)}
			g.deadlines = append(g.deadlines, deadline{seq: a.Seq, at: now + g.timeout})
		case msg.ERateLimited, msg.EBusy:
			return // transient local push-back: keep the stamp, retry next tick
		default:
			// Hard local denial (no capability, fenced): client-visible.
			g.popBacklog()
			pi, _ := g.scn.PhaseAt(a.At)
			pd := pend{arriveAt: a.At, class: a.Class, phase: uint8(pi)}
			g.complete(a.Seq, OutcomeDenied, now, &pd)
		}
	}
}

// admit records one arrival and queues it for sending, shedding when the
// backlog is full.
func (g *Generator) admit(a Arrival) {
	g.rec.Arrivals = append(g.rec.Arrivals, a)
	pi, _ := g.scn.PhaseAt(a.At)
	ph := &g.phases[pi]
	ph.Offered++
	if int(a.Class) < len(ph.ClassCnt) {
		ph.ClassCnt[a.Class]++
	}
	if g.arrC != nil {
		g.arrC.Inc()
	}
	if len(g.backlog) >= BacklogCap {
		pd := pend{arriveAt: a.At, class: a.Class, phase: uint8(pi)}
		g.complete(a.Seq, OutcomeShed, a.At, &pd)
		return
	}
	g.backlog = append(g.backlog, a)
}

// popBacklog drops the backlog head.
func (g *Generator) popBacklog() {
	copy(g.backlog, g.backlog[1:])
	g.backlog = g.backlog[:len(g.backlog)-1]
}

// complete records one client-visible outcome.
func (g *Generator) complete(seq uint32, out Outcome, now sim.Cycle, pd *pend) {
	g.rec.Completions = append(g.rec.Completions, Completion{Seq: seq, Outcome: out, At: now})
	ph := &g.phases[pd.phase]
	switch out {
	case OutcomeOK:
		ph.OK++
		ph.Lat.Observe(float64(now - pd.arriveAt))
		if g.okC != nil {
			g.okC.Inc()
		}
	case OutcomeDenied:
		ph.Denied++
		if g.errC != nil {
			g.errC.Inc()
		}
	case OutcomeTimeout:
		ph.Timeout++
		if g.errC != nil {
			g.errC.Inc()
		}
	case OutcomeShed:
		ph.Shed++
		if g.shedC != nil {
			g.shedC.Inc()
		}
	}
}

// drawClass picks a request class from the weighted mix.
func (g *Generator) drawClass() uint8 {
	if g.totalW <= 0 || len(g.weights) == 0 {
		return 0
	}
	v := g.rng.Intn(g.totalW)
	for i, w := range g.weights {
		if v < w {
			return uint8(i)
		}
		v -= w
	}
	return uint8(len(g.weights) - 1)
}

// request builds the wire message for one arrival: payload sized by the
// class, first bytes stamped with seq/session so the backend sees distinct
// requests without an RNG draw per byte.
func (g *Generator) request(a Arrival) *msg.Message {
	size := 1
	if int(a.Class) < len(g.scn.Classes) {
		size = g.scn.Classes[a.Class].Bytes
	}
	pl := make([]byte, size)
	for i := 0; i < size && i < 4; i++ {
		pl[i] = byte(a.Seq >> (8 * i))
	}
	if size > 4 {
		pl[4] = byte(a.Session)
	}
	return &msg.Message{Type: msg.TRequest, DstSvc: g.target, Seq: a.Seq, Payload: pl}
}

// SessionsTouched counts distinct sessions that issued at least one
// request.
func (g *Generator) SessionsTouched() int {
	n := 0
	for _, c := range g.sessHits {
		if c > 0 {
			n++
		}
	}
	return n
}

// Phases exposes the per-phase aggregates (live; callers snapshot outside
// the tick phase — at barriers, after Run steps, or holding the daemon's
// step mutex).
func (g *Generator) Phases() []PhaseAgg { return g.phases }

// Totals sums the per-phase aggregates.
func (g *Generator) Totals() (offered, ok, denied, timeout, shed uint64) {
	for i := range g.phases {
		ph := &g.phases[i]
		offered += ph.Offered
		ok += ph.OK
		denied += ph.Denied
		timeout += ph.Timeout
		shed += ph.Shed
	}
	return
}
