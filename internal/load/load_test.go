package load

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"apiary/internal/cluster"
	"apiary/internal/core"
	"apiary/internal/netsim"
	"apiary/internal/noc"
	"apiary/internal/sim"
)

// diffScn is the mixed scenario the differential tests run: a ramp, a
// burst+diurnal phase, a class mix, and a chaos-plan cross-product.
const diffScn = `
scenario diff
seed 11
sessions 5000
target svc=40
timeout 10000
class get weight=3 bytes=8
class put weight=1 bytes=48
phase ramp dur=16000 rate=2000..12000
phase rush dur=16000 rate=12000 burst=8000@5000x1000 diurnal=8000:3000
phase drain dur=8000 rate=1500
chaos stall at=12000 tile=4 port=E dur=1500
chaos hang at=18000 tile=5 dur=3000
`

// fleetScn adds a fleet stanza and a board kill to the same workload.
const fleetScn = `
scenario fleetdiff
seed 23
sessions 8000
target svc=40
timeout 12000
fleet boards=4 replicas=2 clients=2
class get weight=8 bytes=16
class put weight=2 bytes=96
phase ramp dur=12000 rate=1000..8000
phase rush dur=16000 rate=8000 burst=6000@4000x800
phase drain dur=8000 rate=1500
kill board=0 at=16000
chaos stall at=9000 tile=4 port=E dur=1200
`

func mustParse(t *testing.T, text string) *Scenario {
	t.Helper()
	scn, err := ParseScenario([]byte(text))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return scn
}

func TestParseTextRoundTrip(t *testing.T) {
	scn := mustParse(t, fleetScn)
	if err := scn.Validate(noc.Dims{W: 3, H: 3}); err != nil {
		t.Fatalf("validate: %v", err)
	}
	// String must re-parse to an identical scenario (fixed point).
	again := mustParse(t, scn.String())
	if scn.String() != again.String() {
		t.Fatalf("text round trip diverged:\n%s\nvs\n%s", scn.String(), again.String())
	}
	if again.Fleet == nil || again.Fleet.Boards != 4 || again.Chaos == nil {
		t.Fatalf("round trip lost stanzas: %+v", again)
	}
	if len(again.Phases) != 3 || again.Phases[1].Burst == nil {
		t.Fatalf("round trip lost phases: %+v", again.Phases)
	}
}

func TestParseJSONRoundTrip(t *testing.T) {
	scn := mustParse(t, diffScn)
	raw, err := json.Marshal(scn)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	again, err := ParseScenario(raw)
	if err != nil {
		t.Fatalf("parse json: %v", err)
	}
	if scn.String() != again.String() {
		t.Fatalf("json round trip diverged:\n%s\nvs\n%s", scn.String(), again.String())
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"bogus directive",
		"phase p rate=5",                   // missing dur
		"phase p dur=100",                  // missing rate
		"phase p dur=100 rate=1..2..3",     // bad ramp
		"phase p dur=100 rate=5 burst=1@2", // bad burst shape
		"phase p dur=100 rate=5 diurnal=9", // bad diurnal shape
		"class c weight=0",                 // missing bytes
		"kill board=1",                     // missing at
		"target svc=99999999",              // out of range
		"seed",                             // missing value
		"chaos explode at=1 tile=0",        // unknown chaos kind
		"phase p dur=100 rate=5 volume=11", // unknown phase key
		`{"scenario":"x","chaos":{"rates":[{"kind":"hang"}]}}`, // bad chaos rate
		`{"scenario":"x","sessions":-4}`,
	}
	for _, in := range bad {
		if _, err := ParseScenario([]byte(in)); err == nil {
			t.Errorf("no error for %q", in)
		}
	}
}

func TestRateCurve(t *testing.T) {
	scn := mustParse(t, diffScn)
	// Ramp: 2000 at 0, ~12000 at the end of phase 1.
	if got := scn.RateAt(0); got != 2000 {
		t.Fatalf("rate at 0 = %d, want 2000", got)
	}
	if got := scn.RateAt(15999); got < 11900 || got > 12000 {
		t.Fatalf("rate at ramp end = %d, want ~12000", got)
	}
	// Burst windows add 8000 for the first 1000 cycles of every 5000.
	inBurst := scn.RateAt(16000) // rush offset 0: burst active, diurnal 0
	if inBurst != 12000+8000 {
		t.Fatalf("burst rate = %d, want 20000", inBurst)
	}
	outBurst := scn.RateAt(16000 + 2000) // diurnal(2000 of 8000) = +swing
	if outBurst != 12000+3000 {
		t.Fatalf("diurnal peak rate = %d, want 15000", outBurst)
	}
	// Diurnal trough: offset 6000 of period 8000 = -swing.
	trough := scn.RateAt(16000 + 6000)
	if trough != 12000-3000 {
		t.Fatalf("diurnal trough rate = %d, want 9000", trough)
	}
	// After the end the rate is zero.
	if got := scn.RateAt(scn.Dur() + 5); got != 0 {
		t.Fatalf("rate past end = %d, want 0", got)
	}
	// Boundaries: next edge from 0 is the first phase end.
	if e := scn.NextBoundary(0); e != 16000 {
		t.Fatalf("boundary from 0 = %d, want 16000", e)
	}
	if e := scn.NextBoundary(16000); e != 32000 {
		t.Fatalf("boundary from 16000 = %d, want 32000", e)
	}
	if e := scn.NextBoundary(scn.Dur()); e != scn.Dur() {
		t.Fatalf("boundary at end = %d, want %d", e, scn.Dur())
	}
}

// boardCfg is the single-board test system.
func boardCfg(shards int) core.SystemConfig {
	return core.SystemConfig{
		Dims:            noc.Dims{W: 4, H: 4},
		Shards:          shards,
		ManagedMemBytes: 1 << 20,
	}
}

// runBoard executes the diff scenario at the given shard count and
// returns the run for inspection.
func runBoard(t *testing.T, scn *Scenario, shards int) *BoardRun {
	t.Helper()
	br, err := NewBoardRun(scn, boardCfg(shards))
	if err != nil {
		t.Fatalf("board run (shards=%d): %v", shards, err)
	}
	br.RunScenario(30000)
	return br
}

func TestScenarioDifferential(t *testing.T) {
	scn := mustParse(t, diffScn)

	// Serial vs sharded single board: bit-exact at shards 1/2/4.
	base := runBoard(t, scn, 0)
	if !base.Done() {
		t.Fatalf("serial run did not drain: %+v", base.Status())
	}
	_, ok, _, _, _ := base.Gen.Totals()
	if ok == 0 {
		t.Fatalf("serial run completed nothing: %+v", base.Status())
	}
	want := base.Fingerprint()
	for _, shards := range []int{1, 2, 4} {
		got := runBoard(t, scn, shards).Fingerprint()
		if got != want {
			t.Fatalf("shards=%d fingerprint %#x != serial %#x", shards, got, want)
		}
	}

	// Fleet workers 1 vs 4: bit-exact, kill and chaos included.
	fscn := mustParse(t, fleetScn)
	var fps []uint64
	for _, workers := range []int{1, 4} {
		fr, err := NewFleetRun(fscn, fleetCfg(workers))
		if err != nil {
			t.Fatalf("fleet run (workers=%d): %v", workers, err)
		}
		fr.RunScenario(40000)
		if !fr.Done() {
			t.Fatalf("fleet run (workers=%d) did not drain: %+v", workers, fr.Status())
		}
		st := fr.Status()
		if st.OK == 0 {
			t.Fatalf("fleet run (workers=%d) completed nothing: %+v", workers, st)
		}
		t.Logf("fleet workers=%d: %+v", workers, st)
		fps = append(fps, fr.Fingerprint())
		fr.Close()
	}
	if fps[0] != fps[1] {
		t.Fatalf("fleet workers 1 vs 4 fingerprints differ: %#x vs %#x", fps[0], fps[1])
	}
}

func fleetCfg(workers int) cluster.Config {
	return cluster.Config{
		Workers: workers,
		Board: core.SystemConfig{
			Dims:            noc.Dims{W: 3, H: 3},
			ManagedMemBytes: 1 << 20,
		},
		Link: netsim.LinkConfig{LatencyNs: 1000},
	}
}

func TestReplayFingerprint(t *testing.T) {
	scn := mustParse(t, diffScn)
	rec := runBoard(t, scn, 0)
	recording := rec.Recording()

	// The recording survives its text format.
	var buf bytes.Buffer
	if _, err := recording.WriteTo(&buf); err != nil {
		t.Fatalf("write recording: %v", err)
	}
	parsed, err := ParseRecording(buf.Bytes())
	if err != nil {
		t.Fatalf("parse recording: %v", err)
	}
	if parsed.Fingerprint() != recording.Fingerprint() {
		t.Fatalf("recording round trip changed fingerprint")
	}

	// Replaying the arrivals yields an identical delivered stream.
	br, err := NewBoardRun(scn, boardCfg(0))
	if err != nil {
		t.Fatalf("replay board: %v", err)
	}
	br.Gen.SetReplay(parsed)
	br.RunScenario(30000)
	if !br.Done() {
		t.Fatalf("replay did not drain: %+v", br.Status())
	}
	if got, want := br.Fingerprint(), recording.Fingerprint(); got != want {
		t.Fatalf("replay fingerprint %#x != recorded %#x", got, want)
	}
}

// Recording accessor for tests.
func (b *BoardRun) Recording() *Recording { return b.Gen.Recording() }

func TestScenarioGolden(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("testdata", "smoke.scn"))
	if err != nil {
		t.Fatalf("read smoke scenario: %v", err)
	}
	scn, err := ParseScenario(raw)
	if err != nil {
		t.Fatalf("parse smoke scenario: %v", err)
	}
	fr, err := NewFleetRun(scn, fleetCfg(0))
	if err != nil {
		t.Fatalf("fleet run: %v", err)
	}
	defer fr.Close()
	fr.RunScenario(40000)
	if !fr.Done() {
		t.Fatalf("smoke scenario did not drain: %+v", fr.Status())
	}
	got := "0x" + strconv.FormatUint(fr.Fingerprint(), 16) + "\n"

	goldenPath := filepath.Join("testdata", "smoke.golden")
	if os.Getenv("UPDATE_SCENARIO_GOLDEN") == "1" {
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatalf("update golden: %v", err)
		}
		t.Logf("golden refreshed: %s", strings.TrimSpace(got))
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden (run with UPDATE_SCENARIO_GOLDEN=1 to create): %v", err)
	}
	if got != string(want) {
		t.Fatalf("smoke fingerprint %s != golden %s (deliberate change? make scenario-golden and commit with scenario-baseline-refresh)",
			strings.TrimSpace(got), strings.TrimSpace(string(want)))
	}
}

func TestStatusAndReport(t *testing.T) {
	scn := mustParse(t, diffScn)
	br := runBoard(t, scn, 0)
	st := br.Status()
	if st.Scenario != "diff" || st.Offered == 0 || st.OK == 0 {
		t.Fatalf("status: %+v", st)
	}
	if st.Touched == 0 || st.Touched > scn.Sessions {
		t.Fatalf("sessions touched %d outside (0, %d]", st.Touched, scn.Sessions)
	}
	rep := br.Report()
	if len(rep) != 3 {
		t.Fatalf("want 3 phase reports, got %d", len(rep))
	}
	var offered uint64
	for _, pr := range rep {
		offered += pr.Offered
		if pr.Offered != pr.OK+pr.Denied+pr.Timeout+pr.Shed {
			t.Fatalf("phase %q books don't balance: %+v", pr.Name, pr)
		}
	}
	if offered != st.Offered {
		t.Fatalf("report offered %d != status offered %d", offered, st.Offered)
	}
	// The ramp phase offered roughly (2000+12000)/2 rpMc.
	if rep[0].OfferedRpMc < 6000 || rep[0].OfferedRpMc > 8000 {
		t.Fatalf("ramp offered rate %d rpMc, want ~7000", rep[0].OfferedRpMc)
	}
	if rep[0].OK > 0 && rep[0].P99 < rep[0].P50 {
		t.Fatalf("p99 %.0f < p50 %.0f", rep[0].P99, rep[0].P50)
	}
	// JSON encoding (the /scenario.json payload) must round-trip.
	raw, err := json.Marshal(st)
	if err != nil {
		t.Fatalf("status marshal: %v", err)
	}
	var back Status
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("status unmarshal: %v", err)
	}
	if back != st {
		t.Fatalf("status round trip: %+v vs %+v", back, st)
	}
}

func TestTriangleWave(t *testing.T) {
	// One full period: 0 -> +s -> 0 -> -s -> 0.
	const period, swing = 1000, 400
	pts := map[sim.Cycle]int64{0: 0, 250: swing, 500: 0, 750: -swing}
	for pos, want := range pts {
		if got := triangle(pos, period, swing); got != want {
			t.Fatalf("triangle(%d) = %d, want %d", pos, got, want)
		}
	}
}
